#include <gtest/gtest.h>

#include "noc/mesh.hh"

namespace infs {
namespace {

NocConfig
cfg8x8()
{
    return NocConfig{};
}

TEST(MeshNoc, CoordinateRoundTrip)
{
    MeshNoc noc(cfg8x8());
    for (BankId n = 0; n < noc.numNodes(); ++n)
        EXPECT_EQ(noc.node(noc.coord(n)), n);
    EXPECT_EQ(noc.coord(0), (MeshCoord{0, 0}));
    EXPECT_EQ(noc.coord(7), (MeshCoord{7, 0}));
    EXPECT_EQ(noc.coord(8), (MeshCoord{0, 1}));
    EXPECT_EQ(noc.coord(63), (MeshCoord{7, 7}));
}

TEST(MeshNoc, ManhattanHops)
{
    MeshNoc noc(cfg8x8());
    EXPECT_EQ(noc.hops(0, 0), 0u);
    EXPECT_EQ(noc.hops(0, 7), 7u);
    EXPECT_EQ(noc.hops(0, 63), 14u);
    EXPECT_EQ(noc.hops(63, 0), 14u);
    EXPECT_EQ(noc.hops(9, 18), 2u); // (1,1) -> (2,2).
}

TEST(MeshNoc, SendAccountsHopBytes)
{
    MeshNoc noc(cfg8x8());
    noc.send(0, 7, 64, TrafficClass::Data);
    EXPECT_DOUBLE_EQ(noc.hopBytes(TrafficClass::Data), 64.0 * 7);
    EXPECT_DOUBLE_EQ(noc.hopBytes(TrafficClass::Control), 0.0);
    noc.send(0, 1, 8, TrafficClass::Control);
    EXPECT_DOUBLE_EQ(noc.hopBytes(TrafficClass::Control), 8.0);
    EXPECT_DOUBLE_EQ(noc.totalHopBytes(), 64.0 * 7 + 8.0);
}

TEST(MeshNoc, SendLatencyModel)
{
    MeshNoc noc(cfg8x8());
    // 1 hop: 5 router stages + 1 link cycle; 64B over 32B links adds 1
    // extra serialization cycle.
    EXPECT_EQ(noc.send(0, 1, 64, TrafficClass::Data), 6u + 1u);
    // Local delivery costs only serialization.
    EXPECT_EQ(noc.send(5, 5, 32, TrafficClass::Data), 0u);
}

TEST(MeshNoc, LocalMessageChargesNothing)
{
    MeshNoc noc(cfg8x8());
    noc.send(3, 3, 4096, TrafficClass::Data);
    EXPECT_DOUBLE_EQ(noc.totalHopBytes(), 0.0);
    EXPECT_DOUBLE_EQ(noc.utilization(1000), 0.0);
}

TEST(MeshNoc, MulticastSharesTreeLinks)
{
    MeshNoc noc(cfg8x8());
    // From node 0 to nodes 1,2,3 along the same row: X-Y routes share
    // links 0->1 and 1->2, so the tree has exactly 3 links.
    noc.multicast(0, {1, 2, 3}, 32, TrafficClass::Data);
    EXPECT_DOUBLE_EQ(noc.hopBytes(TrafficClass::Data), 32.0 * 3);
    // A unicast version would charge 1 + 2 + 3 = 6 link-traversals.
    MeshNoc noc2(cfg8x8());
    for (BankId d : {1u, 2u, 3u})
        noc2.send(0, d, 32, TrafficClass::Data);
    EXPECT_DOUBLE_EQ(noc2.hopBytes(TrafficClass::Data), 32.0 * 6);
}

TEST(MeshNoc, MulticastLatencyIsFarthestLeaf)
{
    MeshNoc noc(cfg8x8());
    Tick lat = noc.multicast(0, {63}, 32, TrafficClass::Data);
    EXPECT_EQ(lat, 14u * 6u);
}

TEST(MeshNoc, UtilizationGrowsWithTraffic)
{
    MeshNoc noc(cfg8x8());
    EXPECT_DOUBLE_EQ(noc.utilization(100), 0.0);
    noc.send(0, 63, 3200, TrafficClass::Data);
    double u1 = noc.utilization(100);
    EXPECT_GT(u1, 0.0);
    noc.send(63, 0, 3200, TrafficClass::Data);
    EXPECT_GT(noc.utilization(100), u1);
    EXPECT_LT(noc.utilization(1u << 30), 1e-3);
}

TEST(MeshNoc, ResetClearsAccounting)
{
    MeshNoc noc(cfg8x8());
    noc.send(0, 5, 64, TrafficClass::Offload);
    noc.resetStats();
    EXPECT_DOUBLE_EQ(noc.totalHopBytes(), 0.0);
    EXPECT_DOUBLE_EQ(noc.utilization(10), 0.0);
}

TEST(MeshNoc, XYRoutingIsDeterministicPath)
{
    // Route 0 -> 9 must go east then north: through node 1, not node 8.
    // Verify by checking which links get charged via utilization delta.
    MeshNoc a(cfg8x8()), b(cfg8x8());
    a.send(0, 9, 32, TrafficClass::Data);
    // Same hop count for the Y-X path, so hopBytes match:
    b.send(1, 8, 32, TrafficClass::Data);
    EXPECT_DOUBLE_EQ(a.hopBytes(TrafficClass::Data),
                     b.hopBytes(TrafficClass::Data));
    EXPECT_EQ(a.hops(0, 9), 2u);
}

TEST(MeshNoc, TrafficClassNames)
{
    EXPECT_STREQ(trafficClassName(TrafficClass::Control), "control");
    EXPECT_STREQ(trafficClassName(TrafficClass::InterTile), "inter_tile");
}

} // namespace
} // namespace infs
