#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace infs {
namespace {

TEST(EventQueue, StartsAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, DispatchesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(7, [&, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, PriorityBreaksTiesBeforeFifo)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(2); }, EventPriority::Stats);
    eq.schedule(5, [&] { order.push_back(1); }, EventPriority::Default);
    eq.schedule(5, [&] { order.push_back(0); }, EventPriority::Control);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick seen = maxTick;
    eq.schedule(100, [&] {
        eq.scheduleIn(5, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 105u);
}

TEST(EventQueue, DescheduleCancelsPendingEvent)
{
    EventQueue eq;
    bool ran = false;
    auto id = eq.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(eq.deschedule(id));
    EXPECT_FALSE(eq.deschedule(id)); // Second cancel is a no-op.
    eq.run();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, RunHonorsLimit)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { ++count; });
    eq.schedule(20, [&] { ++count; });
    eq.schedule(30, [&] { ++count; });
    eq.run(20);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 10)
            eq.scheduleIn(1, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(eq.now(), 9u);
    EXPECT_EQ(eq.dispatched(), 10u);
}

TEST(EventQueue, ResetClearsStateAndTime)
{
    EventQueue eq;
    eq.schedule(50, [] {});
    eq.run();
    EXPECT_EQ(eq.now(), 50u);
    eq.reset();
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
    bool ran = false;
    eq.schedule(1, [&] { ran = true; });
    eq.run();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty)
{
    EventQueue eq;
    EXPECT_FALSE(eq.step());
    eq.schedule(3, [] {});
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
}

} // namespace
} // namespace infs
