#include <gtest/gtest.h>

#include "sim/config.hh"

namespace infs {
namespace {

TEST(SystemConfig, Table2Defaults)
{
    SystemConfig cfg = defaultSystemConfig();
    EXPECT_EQ(cfg.numCores(), 64u);
    EXPECT_EQ(cfg.l3.numBanks, 64u);
    EXPECT_EQ(cfg.l3.arrayBytes(), 8u * 1024u);
    // 64 banks x 18 ways x 16 arrays x 8kB = 144 MB (Table 2).
    EXPECT_EQ(cfg.l3.totalBytes(), 144ull << 20);
    // 16 compute ways => 128 MB reservable (paper's "128MB L3" claim).
    EXPECT_EQ(cfg.l3.computeBytes(), 128ull << 20);
    // 4M bitlines ("In total, it has 4M bitlines").
    EXPECT_EQ(cfg.l3.totalBitlines(), 4ull << 20);
    // Eq. 1 baseline: 64 cores x 16 fp32 lanes = 1024 ops/cycle.
    EXPECT_DOUBLE_EQ(cfg.basePeakOpsPerCycle(), 1024.0);
}

TEST(SystemConfig, Equation1PeakThroughput)
{
    SystemConfig cfg = defaultSystemConfig();
    // T = Nbank x Nway x Narray/way x Nbitline / Latency (int32 add = 32).
    double peak = double(cfg.l3.totalBitlines()) / 32.0;
    EXPECT_DOUBLE_EQ(peak, 131072.0);
    EXPECT_DOUBLE_EQ(peak / cfg.basePeakOpsPerCycle(), 128.0);
}

TEST(SystemConfig, DramBandwidthConversion)
{
    SystemConfig cfg = defaultSystemConfig();
    // 25.6 GB/s at 2 GHz = 12.8 bytes per core cycle.
    EXPECT_DOUBLE_EQ(cfg.dram.bytesPerCycle(cfg.core.ghz), 12.8);
}

TEST(SystemConfig, TestConfigKeepsShape)
{
    SystemConfig cfg = testSystemConfig();
    EXPECT_EQ(cfg.numCores(), cfg.l3.numBanks);
    EXPECT_EQ(cfg.l3.wordlines, 256u);
    EXPECT_EQ(cfg.l3.bitlines, 256u);
    EXPECT_LT(cfg.l3.totalBytes(), defaultSystemConfig().l3.totalBytes());
}

TEST(SystemConfig, BackendNamesRoundTrip)
{
    for (ExecBackendKind k :
         {ExecBackendKind::Fabric, ExecBackendKind::Functional,
          ExecBackendKind::Timing}) {
        ExecBackendKind parsed;
        ASSERT_TRUE(parseBackendName(backendName(k), parsed));
        EXPECT_EQ(parsed, k);
    }
    EXPECT_STREQ(backendName(ExecBackendKind::Fabric), "fabric");
    EXPECT_STREQ(backendName(ExecBackendKind::Functional), "functional");
    EXPECT_STREQ(backendName(ExecBackendKind::Timing), "timing");
}

TEST(SystemConfig, UnknownBackendNameRejected)
{
    ExecBackendKind parsed = ExecBackendKind::Timing;
    EXPECT_FALSE(parseBackendName("cycle_exact", parsed));
    EXPECT_FALSE(parseBackendName("", parsed));
    // A failed parse leaves the out-parameter untouched.
    EXPECT_EQ(parsed, ExecBackendKind::Timing);
}

TEST(SystemConfig, DefaultBackendIsFabric)
{
    EXPECT_EQ(testSystemConfig().backend, ExecBackendKind::Fabric);
    EXPECT_EQ(defaultSystemConfig().backend, ExecBackendKind::Fabric);
}

TEST(SystemConfig, SummaryMentionsKeyNumbers)
{
    auto s = defaultSystemConfig().summary();
    EXPECT_NE(s.find("64 cores"), std::string::npos);
    EXPECT_NE(s.find("144MB"), std::string::npos);
    EXPECT_NE(s.find("25.6GB/s"), std::string::npos);
}

} // namespace
} // namespace infs
