#include <gtest/gtest.h>

#include "sim/rng.hh"

namespace infs {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        double v = r.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, BoundedStaysInBound)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.nextBounded(13), 13u);
}

TEST(Rng, FloatRange)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        float v = r.nextFloat(-2.0f, 3.0f);
        EXPECT_GE(v, -2.0f);
        EXPECT_LT(v, 3.0f);
    }
}

TEST(Rng, ReseedReproduces)
{
    Rng r(5);
    auto first = r.next();
    r.next();
    r.reseed(5);
    EXPECT_EQ(r.next(), first);
}

TEST(Rng, RoughlyUniformBuckets)
{
    Rng r(123);
    int buckets[8] = {};
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        ++buckets[r.nextBounded(8)];
    for (int b : buckets) {
        EXPECT_GT(b, n / 8 - n / 80);
        EXPECT_LT(b, n / 8 + n / 80);
    }
}

} // namespace
} // namespace infs
