/**
 * @file
 * Fault injection and graceful degradation: the injector's deterministic
 * per-domain schedules, recovery accounting, full-system reproducibility
 * under a fixed seed, bit-identity when disabled, and the
 * In-L3 -> Near-L3 -> core degradation chain for regions that cannot run
 * in memory (unlowerable tDFGs, hard command faults, bad forced tiles).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/executor.hh"
#include "sim/fault.hh"
#include "uarch/bit_exec.hh"
#include "workloads/workloads.hh"

namespace infs {
namespace {

// ----------------------------------------------------------------------
// Injector unit tests.
// ----------------------------------------------------------------------

TEST(FaultInjector, SameSeedSameSchedule)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.sramBitFlipRate = 0.3;
    fc.nocFaultRate = 0.2;
    fc.cmdTransientRate = 0.4;
    fc.persistentFraction = 0.5;
    FaultInjector a(fc), b(fc);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.sampleSramFlip(), b.sampleSramFlip());
        CmdFault fa = a.sampleCmdFault();
        CmdFault fb = b.sampleCmdFault();
        EXPECT_EQ(fa.faulted, fb.faulted);
        EXPECT_EQ(fa.persistent, fb.persistent);
        EXPECT_EQ(a.sampleNocPacketFault(), b.sampleNocPacketFault());
    }
    FaultStats sa = a.snapshot();
    FaultStats sb = b.snapshot();
    EXPECT_GT(sa.totalInjected(), 0u);
    EXPECT_EQ(sa.sramBitFlips, sb.sramBitFlips);
    EXPECT_EQ(sa.nocPacketFaults, sb.nocPacketFaults);
    EXPECT_EQ(sa.cmdFaults, sb.cmdFaults);
}

TEST(FaultInjector, DomainStreamsAreIndependent)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.sramBitFlipRate = 0.3;
    fc.nocFaultRate = 0.3;
    FaultInjector a(fc), b(fc);
    // b consults the NoC stream heavily; its SRAM schedule must not move.
    for (int i = 0; i < 500; ++i)
        (void)b.sampleNocPacketFault();
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(a.sampleSramFlip(), b.sampleSramFlip()) << i;
}

TEST(FaultInjector, DisabledNeverFires)
{
    FaultConfig fc;
    fc.enabled = false;
    fc.sramBitFlipRate = 1.0;
    fc.nocFaultRate = 1.0;
    fc.cmdTransientRate = 1.0;
    FaultInjector f(fc);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(f.sampleSramFlip());
        EXPECT_FALSE(f.sampleNocPacketFault());
        EXPECT_FALSE(f.sampleCmdFault().faulted);
    }
    EXPECT_EQ(f.sampleNocBulkFaults(1000), 0u);
    EXPECT_EQ(f.snapshot().totalInjected(), 0u);
}

TEST(FaultInjector, ResetRestartsTheSchedule)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.sramBitFlipRate = 0.37;
    FaultInjector f(fc);
    std::vector<bool> first;
    for (int i = 0; i < 300; ++i)
        first.push_back(f.sampleSramFlip());
    f.reset();
    EXPECT_EQ(f.snapshot().sramBitFlips, 0u);
    for (int i = 0; i < 300; ++i)
        EXPECT_EQ(f.sampleSramFlip(), first[static_cast<std::size_t>(i)])
            << i;
}

TEST(FaultInjector, BulkFaultsTrackExpectedValue)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.nocFaultRate = 0.25;
    FaultInjector f(fc);
    // 100000 * 0.25 is integral: no stochastic rounding draw needed.
    EXPECT_EQ(f.sampleNocBulkFaults(100000), 25000u);
    // Tiny flows round stochastically but never exceed the flow size.
    EXPECT_LE(f.sampleNocBulkFaults(2), 2u);
}

TEST(FaultInjector, RecoveryAccountingSumsPenalties)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.detectCycles = 4;
    fc.retryPenaltyCycles = 8;
    FaultInjector f(fc);
    EXPECT_EQ(f.recordDetection(), 4u);
    EXPECT_EQ(f.recordRetry(100), 108u);
    f.recordExhausted();
    FaultStats s = f.snapshot();
    EXPECT_EQ(s.detected, 1u);
    EXPECT_EQ(s.retries, 1u);
    EXPECT_EQ(s.exhausted, 1u);
    EXPECT_EQ(s.retryCycles, 112u);
}

TEST(FaultInjector, RegistersCountersWithStatRegistry)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.sramBitFlipRate = 1.0;
    FaultInjector f(fc);
    StatRegistry reg;
    f.registerWith(reg);
    EXPECT_TRUE(reg.hasCounter("fault.injected.sram_bit_flip"));
    EXPECT_TRUE(reg.hasCounter("fault.detected"));
    EXPECT_TRUE(f.sampleSramFlip());
    EXPECT_DOUBLE_EQ(reg.counter("fault.injected.sram_bit_flip").value(),
                     1.0);
    EXPECT_DOUBLE_EQ(reg.sumByPrefix("fault.injected."), 1.0);
}

// ----------------------------------------------------------------------
// NoC retransmission.
// ----------------------------------------------------------------------

TEST(NocFault, RetransmissionGrowsLatencyAndTraffic)
{
    NocConfig ncfg;
    MeshNoc clean(ncfg);
    MeshNoc faulty(ncfg);
    FaultConfig fc;
    fc.enabled = true;
    fc.nocFaultRate = 1.0;
    FaultInjector inj(fc);
    faulty.attachFaultInjector(&inj);

    Tick t_clean = clean.send(0, 7, 64, TrafficClass::Data);
    Tick t_faulty = faulty.send(0, 7, 64, TrafficClass::Data);
    EXPECT_GT(t_faulty, t_clean);
    // The retransmitted packet crosses every link again.
    EXPECT_DOUBLE_EQ(faulty.hopBytes(TrafficClass::Data),
                     2.0 * clean.hopBytes(TrafficClass::Data));
    FaultStats fs = inj.snapshot();
    EXPECT_EQ(fs.nocPacketFaults, 1u);
    EXPECT_EQ(fs.detected, 1u);
    EXPECT_EQ(fs.retries, 1u);
}

// ----------------------------------------------------------------------
// Bit-accurate fabric: inject, detect via row parity, repair — the
// co-simulation against the tDFG interpreter stays exact.
// ----------------------------------------------------------------------

unsigned
slotOf(const InMemProgram &prog, ArrayId a)
{
    for (auto &[id, wl] : prog.arraySlots)
        if (id == a)
            return wl;
    infs_panic("array %d has no slot", a);
}

unsigned
outputSlotOf(const InMemProgram &prog, ArrayId a)
{
    for (auto &[id, wl] : prog.outputSlots)
        if (id == a)
            return wl;
    infs_panic("array %d has no output slot", a);
}

TEST(FabricFault, InjectedFlipsAreDetectedAndRepaired)
{
    SystemConfig cfg = testSystemConfig();
    AddressMap map(cfg.l3);
    JitCompiler jit(cfg);
    const Coord n = 1024;
    TdfgGraph g(1, "mul_add");
    NodeId a = g.tensor(0, HyperRect::interval(0, n));
    NodeId b = g.tensor(1, HyperRect::interval(0, n));
    g.output(g.compute(BitOp::Add, {g.compute(BitOp::Mul, {a, b}), a}), 2);
    TiledLayout lay({n}, {256});
    auto prog = jit.lower(g, lay, map);

    FaultConfig fc;
    fc.enabled = true;
    fc.sramBitFlipRate = 1.0; // Every compute command suffers a flip.
    FaultInjector inj(fc);
    BitAccurateFabric fab(lay);
    fab.attachFaultInjector(&inj);

    std::vector<float> va(n), vb(n), out(n);
    Rng rng(7);
    for (Coord i = 0; i < n; ++i) {
        va[static_cast<std::size_t>(i)] = rng.nextFloat(-10, 10);
        vb[static_cast<std::size_t>(i)] = rng.nextFloat(-10, 10);
    }
    fab.loadArray(va, slotOf(*prog, 0));
    fab.loadArray(vb, slotOf(*prog, 1));
    fab.execute(*prog);
    fab.storeArray(out, outputSlotOf(*prog, 2));
    for (Coord i = 0; i < n; ++i) {
        auto s = static_cast<std::size_t>(i);
        EXPECT_FLOAT_EQ(out[s], va[s] * vb[s] + va[s]) << i;
    }
    FaultStats fs = inj.snapshot();
    EXPECT_GE(fs.sramBitFlips, 2u); // Two compute commands in the graph.
    EXPECT_EQ(fs.detected, fs.sramBitFlips);
    EXPECT_EQ(fs.retries, fs.sramBitFlips);
}

// ----------------------------------------------------------------------
// Full-system runs.
// ----------------------------------------------------------------------

TEST(FaultSystem, SameSeedReproducesCountersAndCycles)
{
    SystemConfig cfg = testSystemConfig();
    cfg.fault.enabled = true;
    cfg.fault.seed = 0xabcdef;
    cfg.fault.sramBitFlipRate = 0.5;
    cfg.fault.cmdTransientRate = 0.25;
    cfg.fault.nocFaultRate = 0.001;
    InfinitySystem sys(cfg);
    // Stencil lowers to many shift + compute commands, so the schedule
    // gets plenty of draws at these rates.
    Workload w = makeStencil2d(256, 256, 4);
    w.assumeTransposed = true; // Commit to in-memory so faults sample.
    Executor exec(sys, Paradigm::InfS);
    // Executor::run resets system stats, which also restarts the fault
    // schedule: two runs on one system must be identical.
    ExecStats a = exec.run(w);
    ExecStats b = exec.run(w);
    EXPECT_GT(a.faultsInjected, 0u);
    EXPECT_EQ(a.faultsInjected, b.faultsInjected);
    EXPECT_EQ(a.faultsDetected, b.faultsDetected);
    EXPECT_EQ(a.faultRetries, b.faultRetries);
    EXPECT_EQ(a.retryCycles, b.retryCycles);
    EXPECT_EQ(a.regionsDegraded, b.regionsDegraded);
    EXPECT_EQ(a.cycles, b.cycles);
}

TEST(FaultSystem, ZeroRatesAreBitIdenticalToDisabled)
{
    Workload w = makeVecAdd(1 << 18);
    w.assumeTransposed = true;
    SystemConfig cfg = testSystemConfig();
    InfinitySystem clean(cfg);
    ExecStats a = Executor(clean, Paradigm::InfS).run(w);
    cfg.fault.enabled = true; // All rates stay at their 0.0 default.
    InfinitySystem armed(cfg);
    ExecStats b = Executor(armed, Paradigm::InfS).run(w);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.computeCycles, b.computeCycles);
    EXPECT_EQ(a.moveCycles, b.moveCycles);
    EXPECT_DOUBLE_EQ(a.energyJoules, b.energyJoules);
    EXPECT_EQ(b.faultsInjected, 0u);
    EXPECT_EQ(b.retryCycles, 0u);
}

TEST(FaultSystem, TransientFaultsAddLatencyNotErrors)
{
    Workload w = makeVecAdd(1 << 18);
    w.assumeTransposed = true; // Commit to in-memory so faults sample.
    SystemConfig cfg = testSystemConfig();
    InfinitySystem clean(cfg);
    ExecStats base = Executor(clean, Paradigm::InfS).run(w);

    cfg.fault.enabled = true;
    cfg.fault.sramBitFlipRate = 1.0;
    cfg.fault.cmdTransientRate = 1.0;
    cfg.fault.persistentFraction = 0.0; // Transients clear on retry.
    InfinitySystem faulty(cfg);
    Executor exec(faulty, Paradigm::InfS);
    ArrayStore got;
    ExecStats st = exec.run(w, &got);

    EXPECT_GT(st.faultsInjected, 0u);
    EXPECT_EQ(st.faultsDetected, st.faultsInjected);
    EXPECT_GT(st.faultRetries, 0u);
    EXPECT_GT(st.retryCycles, 0u);
    EXPECT_EQ(st.regionsDegraded, 0u); // Everything recovered in place.
    EXPECT_GT(st.cycles, base.cycles);

    // Function is untouched by recovered faults.
    ArrayStore want;
    w.setup(want);
    w.reference(want);
    const auto &gc = got.array(2).data;
    const auto &wc = want.array(2).data;
    ASSERT_EQ(gc.size(), wc.size());
    for (std::size_t i = 0; i < gc.size(); ++i)
        ASSERT_FLOAT_EQ(gc[i], wc[i]) << i;
}

// ----------------------------------------------------------------------
// Graceful degradation.
// ----------------------------------------------------------------------

/**
 * A 1-D elementwise sum of @p arrays input arrays. Lowering needs one
 * wordline slot per live array, so with more inputs than slots the JIT
 * reports OutOfSlots (§6: no spilling) and the executor must degrade the
 * region to the near-memory stream form.
 */
Workload
makeWideSum(Coord n, unsigned arrays)
{
    Workload w;
    w.name = "wide_sum";
    w.primaryShape = {n};
    w.footprintBytes = static_cast<Bytes>((arrays + 1) * n * 4);
    w.dirtyBytes = static_cast<Bytes>(n * 4);
    w.setup = [n, arrays](ArrayStore &s) {
        for (unsigned a = 0; a < arrays; ++a) {
            ArrayId id = s.declare("A" + std::to_string(a), {n});
            for (Coord i = 0; i < n; ++i)
                s.array(id).data[static_cast<std::size_t>(i)] =
                    static_cast<float>(a + 1) +
                    0.25f * static_cast<float>(i % 7);
        }
        s.declare("Out", {n});
    };
    w.reference = [n, arrays](ArrayStore &s) {
        for (Coord i = 0; i < n; ++i) {
            float acc = 0.0f;
            for (unsigned a = 0; a < arrays; ++a)
                acc += s.array(static_cast<ArrayId>(a))
                           .data[static_cast<std::size_t>(i)];
            s.array(static_cast<ArrayId>(arrays))
                .data[static_cast<std::size_t>(i)] = acc;
        }
    };
    Phase p;
    p.name = "wide_sum";
    p.buildTdfg = [n, arrays](std::uint64_t) {
        TdfgGraph g(1, "wide_sum");
        NodeId acc = g.tensor(0, HyperRect::interval(0, n), "A0");
        for (unsigned a = 1; a < arrays; ++a)
            acc = g.compute(
                BitOp::Add,
                {acc, g.tensor(static_cast<ArrayId>(a),
                               HyperRect::interval(0, n))});
        g.output(acc, static_cast<ArrayId>(arrays));
        return g;
    };
    for (unsigned a = 0; a < arrays; ++a) {
        NearStream s;
        s.pattern =
            AccessPattern::linear(static_cast<ArrayId>(a), 0, n);
        s.forwardTo = static_cast<ArrayId>(arrays);
        p.streams.push_back(s);
    }
    NearStream out;
    out.pattern =
        AccessPattern::linear(static_cast<ArrayId>(arrays), 0, n);
    out.isStore = true;
    out.flopsPerElem = arrays - 1;
    p.streams.push_back(out);
    p.coreFlopsPerIter = std::uint64_t(arrays - 1) * std::uint64_t(n);
    p.coreBytesPerIter = static_cast<Bytes>((arrays + 1) * n * 4);
    w.phases.push_back(std::move(p));
    return w;
}

TEST(Degradation, UnlowerableRegionFallsBackToNearMemory)
{
    // testSystemConfig has 256 wordlines -> 7 fp32 slots; 9 live input
    // arrays exceed them, so In-L3 cannot lower the region. It must
    // still complete — correctly — via the Near-L3 stream form.
    SystemConfig cfg = testSystemConfig();
    InfinitySystem sys(cfg);
    Workload w = makeWideSum(4096, 9);
    w.assumeTransposed = true; // Commit to in-memory (Fig 2 mode).
    Executor exec(sys, Paradigm::InL3);
    ArrayStore got;
    ExecStats st = exec.run(w, &got);

    EXPECT_EQ(st.regionsDegraded, 1u);
    EXPECT_GT(st.nearMemCycles, 0u);
    EXPECT_EQ(st.computeCycles, 0u); // Nothing ran in memory.

    ArrayStore want;
    w.setup(want);
    w.reference(want);
    const auto &go = got.array(9).data;
    const auto &wo = want.array(9).data;
    ASSERT_EQ(go.size(), wo.size());
    for (std::size_t i = 0; i < go.size(); ++i)
        ASSERT_NEAR(go[i], wo[i], 1e-3) << i;
}

TEST(Degradation, LowerableRegionDoesNotDegrade)
{
    // Control for the previous test: 4 live arrays fit the 7 slots.
    InfinitySystem sys(testSystemConfig());
    Workload w = makeWideSum(4096, 4);
    w.assumeTransposed = true;
    Executor exec(sys, Paradigm::InL3);
    ExecStats st = exec.run(w);
    EXPECT_EQ(st.regionsDegraded, 0u);
    EXPECT_GT(st.computeCycles, 0u);
}

TEST(Degradation, PersistentCommandFaultExhaustsRetriesAndDegrades)
{
    SystemConfig cfg = testSystemConfig();
    cfg.fault.enabled = true;
    cfg.fault.cmdTransientRate = 1.0;
    cfg.fault.persistentFraction = 1.0; // Hard fault: retries never help.
    cfg.fault.retryBudget = 2;
    InfinitySystem sys(cfg);
    Workload w = makeVecAdd(4096);
    w.assumeTransposed = true;
    Executor exec(sys, Paradigm::InfS);
    ArrayStore got;
    ExecStats st = exec.run(w, &got);

    EXPECT_GE(st.regionsDegraded, 1u);
    EXPECT_GT(st.nearMemCycles, 0u); // Region reran near memory.
    EXPECT_GT(st.faultsInjected, 0u);
    EXPECT_GT(st.faultRetries, 0u);
    EXPECT_GE(sys.faultInjector().snapshot().exhausted, 1u);

    ArrayStore want;
    w.setup(want);
    w.reference(want);
    const auto &gc = got.array(2).data;
    for (std::size_t i = 0; i < gc.size(); ++i)
        ASSERT_FLOAT_EQ(gc[i], want.array(2).data[i]) << i;
}

TEST(Degradation, InvalidForcedTileDegradesInsteadOfAborting)
{
    InfinitySystem sys(testSystemConfig());
    Workload w = makeVecAdd(4096);
    w.forceTile = {0}; // Violates the layout constraint (tile > 0).
    Executor exec(sys, Paradigm::InfS);
    ExecStats st = exec.run(w);
    EXPECT_EQ(st.regionsDegraded, 1u);
    EXPECT_GT(st.nearMemCycles, 0u); // Whole workload fell to Near-L3.
    EXPECT_EQ(st.computeCycles, 0u);
}

} // namespace
} // namespace infs
