#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sim/stats.hh"

namespace infs {
namespace {

TEST(Counter, AccumulatesAndResets)
{
    Counter c("x");
    EXPECT_DOUBLE_EQ(c.value(), 0.0);
    c += 2.5;
    ++c;
    EXPECT_DOUBLE_EQ(c.value(), 3.5);
    c.reset();
    EXPECT_DOUBLE_EQ(c.value(), 0.0);
}

TEST(Distribution, TracksMoments)
{
    Distribution d("lat");
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 8u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
    EXPECT_NEAR(d.stddev(), 2.0, 1e-12);
}

TEST(Distribution, EmptyIsZero)
{
    Distribution d("empty");
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
}

TEST(StatRegistry, SumByPrefix)
{
    Counter a("noc.hops.data"), b("noc.hops.control"), c("dram.bytes");
    a += 10;
    b += 5;
    c += 100;
    StatRegistry reg;
    reg.add(a);
    reg.add(b);
    reg.add(c);
    EXPECT_DOUBLE_EQ(reg.sumByPrefix("noc.hops."), 15.0);
    EXPECT_DOUBLE_EQ(reg.sumByPrefix("noc."), 15.0);
    EXPECT_DOUBLE_EQ(reg.sumByPrefix("dram."), 100.0);
    EXPECT_DOUBLE_EQ(reg.sumByPrefix("nope."), 0.0);
}

TEST(StatRegistry, LookupAndReset)
{
    Counter a("a");
    a += 7;
    StatRegistry reg;
    reg.add(a);
    EXPECT_TRUE(reg.hasCounter("a"));
    EXPECT_FALSE(reg.hasCounter("b"));
    EXPECT_DOUBLE_EQ(reg.counter("a").value(), 7.0);
    reg.resetAll();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
}

TEST(StatRegistry, DumpIsSortedByName)
{
    Counter b("b.two"), a("a.one");
    a += 1;
    b += 2;
    StatRegistry reg;
    reg.add(b);
    reg.add(a);
    std::ostringstream os;
    reg.dump(os);
    auto text = os.str();
    EXPECT_LT(text.find("a.one"), text.find("b.two"));
}

} // namespace
} // namespace infs
