/**
 * @file
 * Work-stealing thread pool unit tests: inline (size-1) semantics,
 * parallelFor index coverage and deterministic chunking, nesting without
 * deadlock, runTasks completion, and the stealing path.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "sim/thread_pool.hh"

namespace infs {
namespace {

TEST(ThreadPool, SizeOneIsInline)
{
    ThreadPool pool(1);
    EXPECT_TRUE(pool.inlineOnly());
    EXPECT_EQ(pool.threads(), 1u);

    // Everything runs on the calling thread, in order.
    std::vector<std::int64_t> order;
    pool.parallelFor(8, [&](std::int64_t i) { order.push_back(i); });
    std::vector<std::int64_t> want(8);
    std::iota(want.begin(), want.end(), 0);
    EXPECT_EQ(order, want);
    EXPECT_EQ(pool.stolenTasks(), 0u);
    EXPECT_EQ(pool.pendingTasks(), 0u);
}

TEST(ThreadPool, ZeroResolvesToHardware)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.threads(), 1u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    const std::int64_t n = 10'000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&](std::int64_t i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (std::int64_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << i;
}

TEST(ThreadPool, ParallelForRespectsGrain)
{
    ThreadPool pool(4);
    // n <= grain runs inline as one chunk on the calling thread.
    std::thread::id caller = std::this_thread::get_id();
    std::vector<std::thread::id> seen(4);
    pool.parallelFor(
        4,
        [&](std::int64_t i) {
            seen[static_cast<std::size_t>(i)] = std::this_thread::get_id();
        },
        /*grain=*/8);
    for (const auto &id : seen)
        EXPECT_EQ(id, caller);
}

TEST(ThreadPool, ParallelForEmptyAndSingle)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(0, [&](std::int64_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallelFor(1, [&](std::int64_t) { ++calls; });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, DeterministicShardingAcrossPoolSizes)
{
    // The per-index slot pattern: results must be identical for any pool
    // size because each index writes only its own slot and the merge is
    // a pure fold on the calling thread.
    auto run = [](unsigned threads) {
        ThreadPool pool(threads);
        const std::int64_t n = 4096;
        std::vector<double> slot(n);
        pool.parallelFor(n, [&](std::int64_t i) {
            slot[static_cast<std::size_t>(i)] =
                static_cast<double>(i) * 1.25 + 3.0;
        });
        double acc = 0.0;
        for (double v : slot) // In-order fold: bit-exact.
            acc += v;
        return acc;
    };
    const double seq = run(1);
    EXPECT_EQ(seq, run(2));
    EXPECT_EQ(seq, run(8));
}

TEST(ThreadPool, RunTasksExecutesAll)
{
    ThreadPool pool(4);
    std::atomic<int> done{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 64; ++i)
        tasks.push_back([&done] { done.fetch_add(1); });
    pool.runTasks(std::move(tasks));
    EXPECT_EQ(done.load(), 64);
    EXPECT_EQ(pool.pendingTasks(), 0u);
}

TEST(ThreadPool, RunTasksEmptyAndSingle)
{
    ThreadPool pool(4);
    pool.runTasks({});
    int x = 0;
    pool.runTasks({[&x] { x = 7; }});
    EXPECT_EQ(x, 7);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    ThreadPool pool(4);
    const std::int64_t outer = 16, inner = 64;
    std::vector<std::atomic<int>> hits(outer * inner);
    pool.parallelFor(outer, [&](std::int64_t o) {
        pool.parallelFor(inner, [&](std::int64_t i) {
            hits[static_cast<std::size_t>(o * inner + i)].fetch_add(1);
        });
    });
    for (auto &h : hits)
        ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedRunTasksInsideParallelFor)
{
    ThreadPool pool(3);
    std::atomic<int> done{0};
    pool.parallelFor(8, [&](std::int64_t) {
        std::vector<std::function<void()>> tasks;
        for (int i = 0; i < 8; ++i)
            tasks.push_back([&done] { done.fetch_add(1); });
        pool.runTasks(std::move(tasks));
    });
    EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, WorkersActuallyRun)
{
    // With enough long-ish tasks, at least one must execute off the
    // calling thread (the pool spawns workers lazily on first use).
    ThreadPool pool(4);
    if (pool.inlineOnly())
        GTEST_SKIP() << "single hardware thread";
    std::atomic<int> off_caller{0};
    std::thread::id caller = std::this_thread::get_id();
    // Whether a steal happens in one batch depends on OS scheduling (a
    // worker can drain its own share before anyone goes idle), so skew
    // the durations and retry a few batches: the probability of zero
    // steals across all rounds is negligible, keeping the assertion
    // meaningful without being timing-flaky.
    for (int round = 0; round < 10 && pool.stolenTasks() == 0; ++round) {
        std::vector<std::function<void()>> tasks;
        for (int i = 0; i < 256; ++i) {
            const int spins = i < 64 ? 80'000 : 500;
            tasks.push_back([&off_caller, caller, spins] {
                volatile double x = 1.0;
                for (int k = 0; k < spins; ++k)
                    x = x * 1.000001 + 0.5;
                if (std::this_thread::get_id() != caller)
                    off_caller.fetch_add(1);
            });
        }
        pool.runTasks(std::move(tasks));
    }
    EXPECT_GT(off_caller.load(), 0);
    EXPECT_GT(pool.stolenTasks(), 0u);
}

TEST(ThreadPool, ManySmallBatchesStress)
{
    ThreadPool pool(4);
    std::atomic<std::int64_t> sum{0};
    for (int round = 0; round < 50; ++round) {
        pool.parallelFor(100, [&](std::int64_t i) {
            sum.fetch_add(i);
        });
    }
    EXPECT_EQ(sum.load(), 50 * (99 * 100 / 2));
}

} // namespace
} // namespace infs
