#include <gtest/gtest.h>

#include "mem/address_map.hh"
#include "mem/dram.hh"
#include "mem/l3_model.hh"

namespace infs {
namespace {

TEST(AddressMap, InterleavesAtOneKb)
{
    AddressMap map(L3Config{});
    EXPECT_EQ(map.homeBank(0), 0u);
    EXPECT_EQ(map.homeBank(1023), 0u);
    EXPECT_EQ(map.homeBank(1024), 1u);
    EXPECT_EQ(map.homeBank(64 * 1024), 0u); // Wraps at 64 banks.
    EXPECT_EQ(map.homeBank(65 * 1024), 1u);
}

TEST(AddressMap, TileArrayRoundTrip)
{
    AddressMap map(L3Config{});
    EXPECT_EQ(map.totalArrays(), 64ull * 16 * 16);
    std::uint64_t probes[] = {0, 1, 63, 64, 1000, map.totalArrays() - 1};
    for (std::uint64_t t : probes) {
        ArrayLocation loc = map.tileToArray(t);
        EXPECT_EQ(map.arrayToTile(loc), t);
        EXPECT_LT(loc.bank, 64u);
        EXPECT_LT(loc.way, 16u);
        EXPECT_LT(loc.arrayInWay, 16u);
    }
}

TEST(AddressMap, TilesMapContiguouslyToArrays)
{
    // §5.2: tiles map contiguously to SRAM arrays, filling one bank's
    // 256 compute arrays before moving to the next bank.
    AddressMap map(L3Config{});
    EXPECT_EQ(map.tileToArray(0).bank, 0u);
    EXPECT_EQ(map.tileToArray(1).bank, 0u);
    EXPECT_EQ(map.tileToArray(1).arrayInWay, 1u);
    EXPECT_EQ(map.tileToArray(255).bank, 0u);
    EXPECT_EQ(map.tileToArray(255).way, 15u);
    EXPECT_EQ(map.tileToArray(256).bank, 1u);
    EXPECT_EQ(map.tileToArray(256 * 64 - 1).bank, 63u);
    // Beyond the pool: waves wrap.
    EXPECT_EQ(map.tileToArray(256ull * 64).bank, 0u);
}

TEST(Dram, BandwidthConversion)
{
    DramModel dram(DramConfig{}, 2.0);
    // 12.8 B/cycle: 1 MB takes 81920 cycles of occupancy.
    EXPECT_EQ(dram.occupancy(1 << 20), 81920u);
    Tick t = dram.transfer(1 << 20);
    EXPECT_EQ(t, 81920u + DramConfig{}.latency);
    EXPECT_EQ(dram.totalBytes(), Bytes(1 << 20));
}

TEST(Dram, StatsReset)
{
    DramModel dram(DramConfig{});
    dram.transfer(100);
    dram.resetStats();
    EXPECT_EQ(dram.totalBytes(), 0u);
}

TEST(L3Model, StreamBandwidthScalesWithBanks)
{
    L3Model l3{L3Config{}};
    // 64 banks x 64 B/cycle = 4096 B/cycle.
    Tick t64 = l3.streamCycles(4096 * 100, 64);
    EXPECT_EQ(t64, 100u + L3Config{}.bankLatency);
    Tick t1 = l3.streamCycles(4096 * 100, 1);
    EXPECT_EQ(t1, 6400u + L3Config{}.bankLatency);
}

TEST(L3Model, WayReservation)
{
    L3Model l3{L3Config{}};
    EXPECT_TRUE(l3.reserveWays(16));
    EXPECT_EQ(l3.reservedWays(0), 16u);
    EXPECT_FALSE(l3.reserveWays(1)); // No compute ways left.
    // Normal capacity = 2 remaining ways worth.
    EXPECT_EQ(l3.normalCapacity(),
              Bytes(2) * 16 * 8 * 1024 * 64);
    l3.releaseWays(16);
    EXPECT_EQ(l3.reservedWays(0), 0u);
    EXPECT_TRUE(l3.reserveWays(8));
    l3.releaseWays(8);
}

TEST(L3Model, ReadWriteAccounting)
{
    L3Model l3{L3Config{}};
    l3.read(0, 64);
    l3.read(63, 64);
    l3.write(5, 128);
    EXPECT_EQ(l3.bytesRead(), 128u);
    EXPECT_EQ(l3.bytesWritten(), 128u);
    l3.resetStats();
    EXPECT_EQ(l3.bytesRead(), 0u);
}

} // namespace
} // namespace infs
