/**
 * @file
 * Paradigm-level timing sanity at the paper's scales (timing-only runs).
 * These tests check the *shape* of the paper's results: who wins, in what
 * order, and where the traffic goes.
 */

#include <gtest/gtest.h>

#include "core/executor.hh"
#include "workloads/workloads.hh"

namespace infs {
namespace {

ExecStats
runOn(InfinitySystem &sys, Paradigm p, const Workload &w)
{
    Executor exec(sys, p);
    return exec.run(w);
}

class ParadigmTest : public ::testing::Test
{
  protected:
    InfinitySystem sys; // Full Table 2 system.
};

TEST_F(ParadigmTest, VecAdd4MOrdering)
{
    // Fig 2's headline: In-L3 > Near-L3 > Base-64 > Base-1 on 4M fp32.
    // Fig 2 assumes "data is cached in L3 and already transposed".
    Workload w = makeVecAdd(4 << 20);
    w.assumeTransposed = true;
    Tick base1 = runOn(sys, Paradigm::Base1T, w).cycles;
    Tick base = runOn(sys, Paradigm::Base, w).cycles;
    Tick near = runOn(sys, Paradigm::NearL3, w).cycles;
    Tick inl3 = runOn(sys, Paradigm::InL3, w).cycles;
    EXPECT_LT(base, base1);
    EXPECT_LT(near, base);
    EXPECT_LT(inl3, near);
    // In-L3 beats Near-L3 by an integer factor at this size (paper: 21x
    // when transposed; we include preparation, so demand less).
    EXPECT_GT(double(near) / double(inl3), 2.0);
}

TEST_F(ParadigmTest, VecAddSmallSizeFavorsNearMemory)
{
    // Fig 2: in-L3 struggles at small sizes — Eq. 2 keeps Inf-S near
    // memory, so Inf-S never does worse than Near-L3.
    Workload w = makeVecAdd(16 << 10);
    Tick near = runOn(sys, Paradigm::NearL3, w).cycles;
    Tick infs = runOn(sys, Paradigm::InfS, w).cycles;
    EXPECT_LE(infs, near + near / 4);
}

TEST_F(ParadigmTest, InfSReducesTrafficMassively)
{
    // Fig 12: 90% NoC traffic reduction over Base for Inf-S.
    Workload w = makeStencil2d(2048, 2048, 10);
    double base_traffic = 0.0, infs_traffic = 0.0;
    {
        ExecStats st = runOn(sys, Paradigm::Base, w);
        for (double v : st.nocHopBytes)
            base_traffic += v;
    }
    {
        ExecStats st = runOn(sys, Paradigm::InfS, w);
        for (double v : st.nocHopBytes)
            infs_traffic += v;
    }
    EXPECT_LT(infs_traffic, 0.4 * base_traffic);
}

TEST_F(ParadigmTest, StencilIntraTileDominatesInterTile)
{
    // Fig 13: with a reasonable tile, most movement becomes intra-tile.
    Workload w = makeStencil2d(2048, 2048, 10);
    ExecStats st = runOn(sys, Paradigm::InfS, w);
    EXPECT_GT(st.intraTileBytes, 5.0 * st.interTileBytes);
}

TEST_F(ParadigmTest, NearL3HurtsKmeansTraffic)
{
    // §8: "for kmeans Near-L3 introduces 2.6x extra NoC traffic" — the
    // indirect update is reuse-blind near memory.
    Workload w = makeKmeans(32 << 10, 128, 128, true);
    double base_traffic = 0.0, near_traffic = 0.0;
    {
        ExecStats st = runOn(sys, Paradigm::Base, w);
        for (double v : st.nocHopBytes)
            base_traffic += v;
    }
    {
        ExecStats st = runOn(sys, Paradigm::NearL3, w);
        for (double v : st.nocHopBytes)
            near_traffic += v;
    }
    EXPECT_GT(near_traffic, base_traffic);
}

TEST_F(ParadigmTest, MmDataflowPreferences)
{
    // Fig 15: Base favors inner product; Inf-S favors outer product.
    Workload inner = makeMm(2048, 2048, 2048, false);
    Workload outer = makeMm(2048, 2048, 2048, true);
    Tick base_in = runOn(sys, Paradigm::Base, inner).cycles;
    Tick base_out = runOn(sys, Paradigm::Base, outer).cycles;
    EXPECT_LT(base_in, base_out);
    Tick infs_in = runOn(sys, Paradigm::InfS, inner).cycles;
    Tick infs_out = runOn(sys, Paradigm::InfS, outer).cycles;
    EXPECT_LT(infs_out, infs_in);
    // And Inf-S outer beats the best Base (paper: 4.4x).
    EXPECT_LT(infs_out, base_in);
}

TEST_F(ParadigmTest, NoJitIsNeverSlowerWhenDecisionsAgree)
{
    // Skipping JIT lowering can only help when both variants make the
    // same offload decision; on borderline sizes Eq. 2's conservative
    // estimate may flip (§4.3), so test at unambiguous scales.
    for (Workload w : {makeStencil1d(4 << 20, 10),
                       makeGaussElim(2048)}) {
        Tick with_jit = runOn(sys, Paradigm::InfS, w).cycles;
        Tick no_jit = runOn(sys, Paradigm::InfSNoJit, w).cycles;
        EXPECT_LE(no_jit, with_jit) << w.name;
    }
}

TEST_F(ParadigmTest, GaussJitShareIsHigh)
{
    // §8: gauss_elim cannot reuse lowered commands — JIT can exceed 50%
    // of runtime; stencils amortize to a small share.
    Workload gauss = makeGaussElim(2048);
    ExecStats g = runOn(sys, Paradigm::InfS, gauss);
    double g_share = double(g.jitCycles) / double(g.cycles);
    Workload sten = makeStencil1d(4 << 20, 10);
    ExecStats s = runOn(sys, Paradigm::InfS, sten);
    double s_share = double(s.jitCycles) / double(s.cycles);
    EXPECT_GT(g_share, 0.2);
    EXPECT_LT(s_share, 0.1);
    EXPECT_GT(g_share, 3.0 * s_share);
}

TEST_F(ParadigmTest, InMemOpFractionNearOne)
{
    // Fig 14 dots: nearly all ops execute in bitlines for the dense
    // workloads.
    Workload w = makeStencil2d(2048, 2048, 10);
    ExecStats st = runOn(sys, Paradigm::InfS, w);
    EXPECT_GT(st.inMemOpFraction(), 0.9);
    ExecStats base = runOn(sys, Paradigm::Base, w);
    EXPECT_DOUBLE_EQ(base.inMemOpFraction(), 0.0);
}

TEST_F(ParadigmTest, EnergyOrderingMatchesFig18)
{
    // Fig 18: Inf-S is the most energy efficient on low-reuse workloads.
    Workload w = makeStencil1d(4 << 20, 10);
    double e_base = runOn(sys, Paradigm::Base, w).energyJoules;
    double e_near = runOn(sys, Paradigm::NearL3, w).energyJoules;
    double e_infs = runOn(sys, Paradigm::InfS, w).energyJoules;
    EXPECT_LT(e_near, e_base);
    EXPECT_LT(e_infs, e_near);
}

TEST_F(ParadigmTest, PhaseCyclesCoverTotal)
{
    Workload w = makeKmeans(32 << 10, 128, 128, true);
    ExecStats st = runOn(sys, Paradigm::InfS, w);
    ASSERT_EQ(st.phaseCycles.size(), w.phases.size());
    Tick sum = 0;
    for (const auto &[name, t] : st.phaseCycles)
        sum += t;
    // Phases plus prepare/release cover the makespan.
    EXPECT_LE(sum, st.cycles);
    EXPECT_GT(sum, st.cycles / 2);
}

TEST_F(ParadigmTest, UntileableArrayFallsBack)
{
    // §4.1: S0 not line-aligned -> in-memory disabled. In-L3 falls back
    // to the core, Inf-S to near-memory; both still complete.
    Workload w = makeVecAdd(1000); // 1000 % 16 != 0.
    ExecStats inl3 = runOn(sys, Paradigm::InL3, w);
    ExecStats infs = runOn(sys, Paradigm::InfS, w);
    EXPECT_EQ(inl3.inMemOps, 0u);
    EXPECT_EQ(infs.inMemOps, 0u);
    EXPECT_GT(inl3.cycles, 0u);
    EXPECT_GT(infs.cycles, 0u);
}

TEST_F(ParadigmTest, Fig2CurveInL3FavorsLargeSizes)
{
    // Fig 2: In-L3's advantage grows with input size.
    double ratio_small, ratio_large;
    {
        Workload w = makeVecAdd(64 << 10);
        w.assumeTransposed = true;
        ratio_small = double(runOn(sys, Paradigm::Base, w).cycles) /
                      double(runOn(sys, Paradigm::InL3, w).cycles);
    }
    {
        Workload w = makeVecAdd(4 << 20);
        w.assumeTransposed = true;
        ratio_large = double(runOn(sys, Paradigm::Base, w).cycles) /
                      double(runOn(sys, Paradigm::InL3, w).cycles);
    }
    EXPECT_GT(ratio_large, ratio_small);
}

} // namespace
} // namespace infs
