/**
 * @file
 * Differential determinism: the bank-parallel engine must be bit-exact
 * against the sequential path. Fabric outputs, every ExecStats field,
 * and the fault-injection counters have to match between hostThreads=1
 * and hostThreads=8 — the pool changes wall-clock time only, never the
 * simulated machine (DESIGN.md §10).
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "core/executor.hh"
#include "sim/rng.hh"
#include "sim/thread_pool.hh"
#include "uarch/bit_exec.hh"
#include "uarch/system.hh"
#include "workloads/workloads.hh"

namespace infs {
namespace {

unsigned
slotOf(const InMemProgram &prog, ArrayId a)
{
    for (auto &[id, wl] : prog.arraySlots)
        if (id == a)
            return wl;
    infs_panic("array %d has no slot", a);
}

unsigned
outputSlotOf(const InMemProgram &prog, ArrayId a)
{
    for (auto &[id, wl] : prog.outputSlots)
        if (id == a)
            return wl;
    infs_panic("array %d has no output slot", a);
}

// ----------------------------------------------------------------------
// Fabric level: same program, pooled vs. sequential execution.
// ----------------------------------------------------------------------

/** Stencil with inter-tile shifts: the hardest command mix (gather/
 * scatter crossings plus multi-tile computes). */
TEST(ParallelFabric, StencilBitExactAcrossPoolSizes)
{
    SystemConfig cfg = testSystemConfig();
    AddressMap map(cfg.l3);
    JitCompiler jit(cfg);
    const Coord n = 2048;
    TdfgGraph g(1, "stencil1d");
    NodeId a0 = g.tensor(0, HyperRect::interval(0, n - 2));
    NodeId a1 = g.tensor(0, HyperRect::interval(1, n - 1));
    NodeId a2 = g.tensor(0, HyperRect::interval(2, n));
    g.output(g.compute(BitOp::Add,
                       {g.move(a0, 0, 1), a1, g.move(a2, 0, -1)}),
             1);
    TiledLayout lay({n}, {256});
    auto prog = jit.lower(g, lay, map);
    ASSERT_GT(prog->numInterShift, 0u);

    std::vector<float> va(n);
    Rng rng(11);
    for (auto &v : va)
        v = rng.nextFloat(-8, 8);

    auto run = [&](ThreadPool *pool) {
        BitAccurateFabric fab(lay);
        if (pool) {
            fab.setThreadPool(pool);
            fab.setHazardCheck(true);
        }
        std::vector<float> out(n);
        fab.loadArray(va, slotOf(*prog, 0));
        fab.execute(*prog);
        fab.storeArray(out, outputSlotOf(*prog, 1));
        return out;
    };

    const std::vector<float> seq = run(nullptr);
    ThreadPool pool8(8);
    const std::vector<float> par = run(&pool8);
    ASSERT_EQ(seq.size(), par.size());
    for (Coord i = 0; i < n; ++i) {
        auto s = static_cast<std::size_t>(i);
        // Bit-exact, not approximately equal.
        ASSERT_EQ(std::bit_cast<std::uint32_t>(seq[s]),
                  std::bit_cast<std::uint32_t>(par[s]))
            << i;
    }
}

/** 2-D broadcast + elementwise chain across many tiles. */
TEST(ParallelFabric, BroadcastChainBitExactAcrossPoolSizes)
{
    SystemConfig cfg = testSystemConfig();
    AddressMap map(cfg.l3);
    JitCompiler jit(cfg);
    const Coord n0 = 64, n1 = 512;
    TdfgGraph g(2, "bc_chain");
    NodeId a = g.tensor(0, HyperRect::array({n0, n1}));
    NodeId b = g.tensor(1, HyperRect::array({n0, n1}));
    NodeId m = g.compute(BitOp::Mul, {a, b});
    g.output(g.compute(BitOp::Add, {m, g.constant(0.25)}), 2);
    TiledLayout lay({n0, n1}, {16, 16}); // Tile volume = 256 bitlines.
    auto prog = jit.lower(g, lay, map);

    const std::size_t vol = static_cast<std::size_t>(n0 * n1);
    std::vector<float> va(vol), vb(vol);
    Rng rng(13);
    for (std::size_t i = 0; i < vol; ++i) {
        va[i] = rng.nextFloat(-4, 4);
        vb[i] = rng.nextFloat(-4, 4);
    }

    auto run = [&](ThreadPool *pool) {
        BitAccurateFabric fab(lay);
        if (pool) {
            fab.setThreadPool(pool);
            fab.setHazardCheck(true);
        }
        std::vector<float> out(vol);
        fab.loadArray(va, slotOf(*prog, 0));
        fab.loadArray(vb, slotOf(*prog, 1));
        fab.execute(*prog);
        fab.storeArray(out, outputSlotOf(*prog, 2));
        return out;
    };

    const std::vector<float> seq = run(nullptr);
    ThreadPool pool8(8);
    const std::vector<float> par = run(&pool8);
    for (std::size_t i = 0; i < vol; ++i)
        ASSERT_EQ(std::bit_cast<std::uint32_t>(seq[i]),
                  std::bit_cast<std::uint32_t>(par[i]))
            << i;
}

/** Faults: the planned-fault path must inject the same flips at the
 * same commands for any pool size, and repair all of them. */
TEST(ParallelFabric, FaultInjectionIdenticalAcrossPoolSizes)
{
    SystemConfig cfg = testSystemConfig();
    AddressMap map(cfg.l3);
    JitCompiler jit(cfg);
    const Coord n = 1024;
    TdfgGraph g(1, "mul_add");
    NodeId a = g.tensor(0, HyperRect::interval(0, n));
    NodeId b = g.tensor(1, HyperRect::interval(0, n));
    g.output(g.compute(BitOp::Add, {g.compute(BitOp::Mul, {a, b}), a}), 2);
    TiledLayout lay({n}, {256});
    auto prog = jit.lower(g, lay, map);

    std::vector<float> va(n), vb(n);
    Rng rng(17);
    for (Coord i = 0; i < n; ++i) {
        va[static_cast<std::size_t>(i)] = rng.nextFloat(-10, 10);
        vb[static_cast<std::size_t>(i)] = rng.nextFloat(-10, 10);
    }

    auto run = [&](ThreadPool *pool, FaultStats &fs_out) {
        FaultConfig fc;
        fc.enabled = true;
        fc.sramBitFlipRate = 1.0; // Every compute command draws a flip.
        FaultInjector inj(fc);
        BitAccurateFabric fab(lay);
        fab.attachFaultInjector(&inj);
        if (pool) {
            fab.setThreadPool(pool);
            fab.setHazardCheck(true);
        }
        std::vector<float> out(n);
        fab.loadArray(va, slotOf(*prog, 0));
        fab.loadArray(vb, slotOf(*prog, 1));
        fab.execute(*prog);
        fab.storeArray(out, outputSlotOf(*prog, 2));
        fs_out = inj.snapshot();
        return out;
    };

    FaultStats fs_seq, fs_par;
    const std::vector<float> seq = run(nullptr, fs_seq);
    ThreadPool pool8(8);
    const std::vector<float> par = run(&pool8, fs_par);

    // Same flip schedule, same detections, same retries.
    EXPECT_GE(fs_seq.sramBitFlips, 2u);
    EXPECT_EQ(fs_seq.sramBitFlips, fs_par.sramBitFlips);
    EXPECT_EQ(fs_seq.detected, fs_par.detected);
    EXPECT_EQ(fs_seq.retries, fs_par.retries);
    // And every fault was repaired: outputs are correct and identical.
    for (Coord i = 0; i < n; ++i) {
        auto s = static_cast<std::size_t>(i);
        EXPECT_FLOAT_EQ(seq[s], va[s] * vb[s] + va[s]) << i;
        ASSERT_EQ(std::bit_cast<std::uint32_t>(seq[s]),
                  std::bit_cast<std::uint32_t>(par[s]))
            << i;
    }
}

// ----------------------------------------------------------------------
// System level: full Executor runs, hostThreads=1 vs hostThreads=8.
// ----------------------------------------------------------------------

/** Field-by-field ExecStats equality. Floating-point fields are summed
 * in a fixed order by the engine, so even they must match exactly. */
void
expectStatsEqual(const ExecStats &a, const ExecStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.dramCycles, b.dramCycles);
    EXPECT_EQ(a.jitCycles, b.jitCycles);
    EXPECT_EQ(a.moveCycles, b.moveCycles);
    EXPECT_EQ(a.computeCycles, b.computeCycles);
    EXPECT_EQ(a.finalReduceCycles, b.finalReduceCycles);
    EXPECT_EQ(a.mixCycles, b.mixCycles);
    EXPECT_EQ(a.nearMemCycles, b.nearMemCycles);
    EXPECT_EQ(a.coreCycles, b.coreCycles);
    EXPECT_EQ(a.syncCycles, b.syncCycles);
    ASSERT_EQ(a.nocHopBytes.size(), b.nocHopBytes.size());
    for (std::size_t c = 0; c < a.nocHopBytes.size(); ++c)
        EXPECT_DOUBLE_EQ(a.nocHopBytes[c], b.nocHopBytes[c]) << c;
    EXPECT_DOUBLE_EQ(a.nocUtilization, b.nocUtilization);
    EXPECT_DOUBLE_EQ(a.intraTileBytes, b.intraTileBytes);
    EXPECT_DOUBLE_EQ(a.interTileBytes, b.interTileBytes);
    EXPECT_DOUBLE_EQ(a.interTileNocBytes, b.interTileNocBytes);
    EXPECT_EQ(a.totalOps, b.totalOps);
    EXPECT_EQ(a.inMemOps, b.inMemOps);
    EXPECT_DOUBLE_EQ(a.energyJoules, b.energyJoules);
    EXPECT_DOUBLE_EQ(a.dramBytes, b.dramBytes);
    EXPECT_EQ(a.faultsInjected, b.faultsInjected);
    EXPECT_EQ(a.faultsDetected, b.faultsDetected);
    EXPECT_EQ(a.faultRetries, b.faultRetries);
    EXPECT_EQ(a.retryCycles, b.retryCycles);
    EXPECT_EQ(a.regionsDegraded, b.regionsDegraded);
    EXPECT_EQ(a.phaseCycles, b.phaseCycles);
    EXPECT_EQ(a.chosenTile, b.chosenTile);
}

ExecStats
runWith(unsigned host_threads, const Workload &w, Paradigm p,
        bool faults = false)
{
    SystemConfig cfg = testSystemConfig();
    cfg.hostThreads = host_threads;
    if (faults) {
        cfg.fault.enabled = true;
        cfg.fault.seed = 0x5eed;
        cfg.fault.sramBitFlipRate = 0.5;
        cfg.fault.cmdTransientRate = 0.25;
    }
    InfinitySystem sys(cfg);
    return Executor(sys, p).run(w);
}

class HostThreadsTest : public ::testing::TestWithParam<Paradigm>
{
};

TEST_P(HostThreadsTest, StencilStatsIdentical)
{
    Workload w = makeStencil2d(512, 512, 6);
    w.assumeTransposed = true;
    expectStatsEqual(runWith(1, w, GetParam()), runWith(8, w, GetParam()));
}

TEST_P(HostThreadsTest, MmStatsIdentical)
{
    Workload w = makeMm(64, 64, 64, 2);
    w.assumeTransposed = true;
    expectStatsEqual(runWith(1, w, GetParam()), runWith(8, w, GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Paradigms, HostThreadsTest,
                         ::testing::Values(Paradigm::InfS,
                                           Paradigm::InfSNoJit,
                                           Paradigm::InL3));

TEST(HostThreads, FaultCountersIdentical)
{
    Workload w = makeStencil2d(256, 256, 4);
    w.assumeTransposed = true;
    ExecStats a = runWith(1, w, Paradigm::InfS, true);
    ExecStats b = runWith(8, w, Paradigm::InfS, true);
    EXPECT_GT(a.faultsInjected, 0u);
    expectStatsEqual(a, b);
}

TEST(HostThreads, FunctionalResultsIdentical)
{
    // Not just timing: the computed arrays themselves must agree.
    Workload w = makeStencil1d(4096, 5);
    w.assumeTransposed = true;

    auto run = [&](unsigned host_threads) {
        SystemConfig cfg = testSystemConfig();
        cfg.hostThreads = host_threads;
        InfinitySystem sys(cfg);
        ArrayStore store;
        Executor(sys, Paradigm::InfS).run(w, &store);
        return store;
    };
    ArrayStore s1 = run(1);
    ArrayStore s8 = run(8);
    ASSERT_EQ(s1.size(), s8.size());
    for (ArrayId a = 0; a < static_cast<ArrayId>(s1.size()); ++a) {
        const auto &d1 = s1.array(a).data;
        const auto &d8 = s8.array(a).data;
        ASSERT_EQ(d1.size(), d8.size()) << "array " << a;
        for (std::size_t i = 0; i < d1.size(); ++i)
            ASSERT_EQ(std::bit_cast<std::uint32_t>(d1[i]),
                      std::bit_cast<std::uint32_t>(d8[i]))
                << "array " << a << " elem " << i;
    }
}

TEST(HostThreads, GaussElimNonMemoizedPathIdentical)
{
    // gauss_elim rebuilds its tDFG every iteration (no memo key), so it
    // exercises the block-parallel per-iteration lowering path.
    Workload w = makeGaussElim(96);
    w.assumeTransposed = true;
    expectStatsEqual(runWith(1, w, Paradigm::InfS),
                     runWith(8, w, Paradigm::InfS));
}

} // namespace
} // namespace infs
