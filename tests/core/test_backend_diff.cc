/**
 * @file
 * Differential tests for the execution backends (DESIGN.md §12): the
 * fidelity contract is that for the SAME planned job,
 *  - the functional backend's checksum is byte-identical to the fabric's
 *    (word-level replay == bit-serial fabric, bit for bit), and
 *  - the timing backend's sim_cycles equal the fabric's replay exactly
 *    (both run the identical cycle-replay path).
 *
 * Compiled twice: the default target covers a fast scenario subset plus
 * randomized tDFGs (tier1 + differential labels); with INFS_DIFF_FULL it
 * covers all 17 registry scenarios and a deeper random sweep
 * (differential + slow labels, nightly CI).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/backend.hh"
#include "jit/jit.hh"
#include "mem/address_map.hh"
#include "sim/rng.hh"
#include "workloads/registry.hh"

namespace infs {
namespace {

constexpr std::int64_t kDiffVolumeCap = 1 << 18;

/** The lowering config under test. The test_backend_diff_nocmdopt twin
 * compiles with INFS_NO_CMDOPT to certify the raw (pre-optimizer)
 * streams too, so a fidelity break is attributable in one CI run. */
SystemConfig
diffConfig()
{
    SystemConfig cfg = testSystemConfig();
#ifdef INFS_NO_CMDOPT
    cfg.cmdOpt = false;
#endif
    return cfg;
}

/** Run @p job on all three backends and pin the fidelity contract. */
void
expectBackendsAgree(const BackendJob &job, const std::string &what)
{
    SystemConfig cfg = testSystemConfig();
    BackendResult fab = makeBackend(ExecBackendKind::Fabric, cfg)
                            ->runJob(job);
    BackendResult fun = makeBackend(ExecBackendKind::Functional, cfg)
                            ->runJob(job);
    BackendResult tim = makeBackend(ExecBackendKind::Timing, cfg)
                            ->runJob(job);

    EXPECT_TRUE(fab.bitAccurate) << what;
    EXPECT_TRUE(fab.hasTiming) << what;
    EXPECT_TRUE(fun.bitAccurate) << what;
    EXPECT_TRUE(tim.hasTiming) << what;

    // Bits: functional must reproduce the fabric byte for byte.
    EXPECT_EQ(fun.checksum, fab.checksum) << what;
    // Time: the replay is a pure function of (program, layout, config),
    // so fabric and timing must report identical cycles — and traffic
    // and energy, which are sums over the same command walk.
    EXPECT_EQ(tim.simCycles, fab.simCycles) << what;
    EXPECT_EQ(tim.nocHopBytes, fab.nocHopBytes) << what;
    EXPECT_EQ(tim.energyJoules, fab.energyJoules) << what;
}

/** Plan the scenario's primary job and diff it; some scenarios plan no
 * job (near-memory only or untileable) — vacuously consistent. */
void
diffScenario(const char *name, bool full_size = false)
{
    SCOPED_TRACE(name);
    const BenchScenario *sc = findScenario(name);
    ASSERT_NE(sc, nullptr);
    Workload w = full_size ? sc->full() : sc->quick();
    SystemConfig cfg = diffConfig();
    auto job = planPrimaryJob(w, cfg, nullptr, kDiffVolumeCap);
    if (!job)
        return;
    expectBackendsAgree(*job, name);
}

#ifdef INFS_DIFF_FULL

// Nightly: every registry scenario, bit for bit and cycle for cycle.
TEST(BackendDiffFull, AllScenarios)
{
    for (const BenchScenario &sc : benchRegistry())
        diffScenario(sc.name);
}

// And again at paper-scale sizes (those under the volume cap): the
// boundary-tile and multi-bank paths only open up at full size.
TEST(BackendDiffFull, FullSizeScenarios)
{
    for (const BenchScenario &sc : benchRegistry())
        diffScenario(sc.name, /*full_size=*/true);
}

#else // !INFS_DIFF_FULL

// Per-PR tier-1 subset: cheap scenarios spanning the command mix —
// aligned compute (vec_add), tree reduction (array_sum), intra/inter
// shifts (stencil1d), 2-D shifts + subsampling (dwt2d), broadcast +
// reduce (mm_outer), and the iterative kmeans inner loop.
TEST(BackendDiff, FastScenarioSubset)
{
    for (const char *name : {"vec_add", "array_sum", "stencil1d", "dwt2d",
                             "mm_outer", "kmeans_inner"})
        diffScenario(name);
}

#endif // INFS_DIFF_FULL

/**
 * Randomized tDFGs: layered graphs over a 1-D lattice mixing computes,
 * immediates, moves, broadcasts, and a final optional reduce — lowered
 * with the real JIT and diffed across backends. Seeds are fixed, so
 * failures replay exactly.
 */
void
diffRandomGraphs(std::uint64_t seed_base, unsigned count)
{
    SystemConfig cfg = diffConfig();
    AddressMap map(cfg.l3, cfg.noc.memCtrls);
    JitCompiler jit(cfg);
    const Coord n = 1024;
    const std::vector<BitOp> ops = {BitOp::Add, BitOp::Sub, BitOp::Mul,
                                    BitOp::Max, BitOp::Min};
    unsigned lowered = 0;
    for (unsigned g_i = 0; g_i < count; ++g_i) {
        Rng rng(seed_base + g_i);
        TdfgGraph g(1, "rand" + std::to_string(g_i));
        std::vector<NodeId> pool;
        const unsigned n_inputs = 2 + rng.nextBounded(2);
        for (unsigned a = 0; a < n_inputs; ++a)
            pool.push_back(g.tensor(static_cast<ArrayId>(a),
                                    HyperRect::interval(0, n)));
        const unsigned n_ops = 3 + rng.nextBounded(5);
        for (unsigned k = 0; k < n_ops; ++k) {
            NodeId a = pool[rng.nextBounded(pool.size())];
            switch (rng.nextBounded(4)) {
            case 0: { // Binary compute of two live nodes.
                NodeId b = pool[rng.nextBounded(pool.size())];
                pool.push_back(g.compute(ops[rng.nextBounded(ops.size())],
                                         {a, b}));
                break;
            }
            case 1: // Compute against an immediate constant.
                pool.push_back(
                    g.compute(ops[rng.nextBounded(ops.size())],
                              {a, g.constant(0.25 * (1 + rng.nextBounded(
                                                          16)))}));
                break;
            case 2: { // Shift by a mixed intra/inter-tile distance.
                Coord dist = static_cast<Coord>(rng.nextBounded(40)) - 20;
                pool.push_back(g.move(a, 0, dist == 0 ? 1 : dist));
                break;
            }
            default: { // Short-range broadcast along dim 0.
                Coord cnt = 2 + static_cast<Coord>(rng.nextBounded(3));
                pool.push_back(g.broadcast(a, 0, 0, cnt));
                break;
            }
            }
        }
        NodeId out = pool.back();
        if (rng.nextBounded(3) == 0)
            out = g.reduce(pool.back(), BitOp::Add, 0);
        g.output(out, static_cast<ArrayId>(n_inputs));

        TiledLayout lay({n}, {256});
        auto prog_or = jit.tryLower(g, lay, map);
        if (!prog_or)
            continue; // Constraint refusals are fine; diff what lowers.
        ++lowered;
        BackendJob job;
        job.layout = lay;
        job.prog = *prog_or;
        job.volume = n;
        expectBackendsAgree(job, g.name());
    }
    // The generator must actually exercise the contract, not skip
    // everything through lowering refusals.
    EXPECT_GE(lowered, count / 2) << "random generator mostly unlowerable";
}

#ifdef INFS_DIFF_FULL
TEST(BackendDiffFull, RandomizedGraphs)
{
    diffRandomGraphs(/*seed_base=*/7000, /*count=*/24);
}
#else
TEST(BackendDiff, RandomizedGraphs)
{
    diffRandomGraphs(/*seed_base=*/4000, /*count=*/8);
}
#endif

/** The registry itself: stable names, both factories callable. */
TEST(BackendDiff, RegistryIsComplete)
{
    EXPECT_EQ(benchRegistry().size(), 17u);
    EXPECT_NE(findScenario("vec_add"), nullptr);
    EXPECT_NE(findScenario("pointnet_msg"), nullptr);
    EXPECT_EQ(findScenario("no_such_scenario"), nullptr);
}

} // namespace
} // namespace infs
