/**
 * @file
 * Fat-binary schedule selection (DESIGN.md §14): the tiling policy's
 * candidate enumeration contract, the occupancy-driven selector's cost
 * model and determinism for a fixed FabricStats snapshot, the
 * bit-identity of every candidate schedule's results, and the dispatch
 * provenance the Executor records in ExecStats.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bitserial/simd.hh"
#include "core/backend.hh"
#include "core/executor.hh"
#include "jit/jit.hh"
#include "uarch/bit_exec.hh"
#include "workloads/registry.hh"
#include "workloads/workloads.hh"

namespace infs {
namespace {

/** Layout hints exactly as planPrimaryJob / the Executor derive them:
 * merged over every tensor phase of the workload. */
LayoutHints
workloadHints(const Workload &w)
{
    LayoutHints hints;
    for (const Phase &p : w.phases) {
        if (!p.buildTdfg)
            continue;
        LayoutHints h = LayoutHints::fromGraph(p.buildTdfg(0));
        hints.shiftDims.insert(h.shiftDims.begin(), h.shiftDims.end());
        hints.broadcastDims.insert(h.broadcastDims.begin(),
                                   h.broadcastDims.end());
        if (h.reduceDim)
            hints.reduceDim = h.reduceDim;
    }
    return hints;
}

TEST(TilingCandidates, WinnerFirstPinnedAndBounded)
{
    SystemConfig cfg = testSystemConfig();
    TilingPolicy policy(cfg.l3);
    for (const char *name : {"mm_outer", "array_sum", "stencil2d"}) {
        SCOPED_TRACE(name);
        const BenchScenario *sc = findScenario(name);
        ASSERT_NE(sc, nullptr);
        Workload w = sc->quick();
        LayoutHints hints = workloadHints(w);
        TileDecision best = policy.choose(w.primaryShape, w.elemBytes,
                                          hints);
        if (!best.valid)
            continue;
        for (unsigned max_n : {1u, 2u, 3u, 8u}) {
            std::vector<TileDecision> cands = policy.candidates(
                w.primaryShape, w.elemBytes, hints, max_n);
            ASSERT_FALSE(cands.empty());
            EXPECT_LE(cands.size(), max_n);
            // Candidate 0 is exactly the single-schedule choice, so a
            // fat binary degrades to the legacy plan when selection is
            // disabled or every other candidate fails to lower.
            EXPECT_EQ(cands.front().tile, best.tile);
            for (const TileDecision &c : cands) {
                EXPECT_TRUE(c.valid);
                // The reduce dimension is pinned across candidates: the
                // fp reduction tree shape (and so the fp result bits)
                // depends only on tile[reduceDim].
                if (hints.reduceDim)
                    EXPECT_EQ(c.tile[*hints.reduceDim],
                              best.tile[*hints.reduceDim]);
            }
        }
    }
}

TEST(FabricStatsOccupancy, ImbalanceMetric)
{
    FabricStats s;
    // No history at all: neutral (selector reduces to pure makespan).
    EXPECT_DOUBLE_EQ(s.occupancyImbalance(), 0.0);
    // Perfectly balanced across any number of active banks: 0.
    for (unsigned b = 0; b < 8; ++b)
        s.bankOps[b] = 100;
    EXPECT_DOUBLE_EQ(s.occupancyImbalance(), 0.0);
    // One hot bank out of two active: max/mean = 300/200 -> I = 0.5.
    FabricStats t;
    t.bankOps[0] = 300;
    t.bankOps[1] = 100;
    EXPECT_DOUBLE_EQ(t.occupancyImbalance(), 0.5);
}

ScheduleCandidate
syntheticCandidate(std::vector<Coord> shape, std::vector<Coord> tile,
                   Tick replay)
{
    ScheduleCandidate c;
    c.layout = TiledLayout(std::move(shape), std::move(tile));
    c.replayCycles = replay;
    return c;
}

TEST(ChooseSchedule, BalancedHistoryPicksFastestReplay)
{
    // 64 tiles vs 4 tiles; with a balanced (or empty) occupancy history
    // the imbalance term vanishes and replay cycles alone decide.
    std::vector<ScheduleCandidate> cands;
    cands.push_back(syntheticCandidate({4096}, {64}, 1000));
    cands.push_back(syntheticCandidate({4096}, {1024}, 900));
    FabricStats empty;
    EXPECT_EQ(chooseSchedule(cands, empty), 1u);
}

TEST(ChooseSchedule, ImbalancedHistoryFavorsSpread)
{
    // Same candidates, but the observed history is almost fully
    // serialized (I ~ 1): the narrow schedule pays cost_1 ~ 900 *
    // (1 + 0.25 * I * (16 - 1)) ~ 4268 while the wide one stays at its
    // replay makespan of 1000 (spread = 1), so it wins despite being
    // slower in isolation.
    std::vector<ScheduleCandidate> cands;
    cands.push_back(syntheticCandidate({4096}, {64}, 1000));
    cands.push_back(syntheticCandidate({4096}, {1024}, 900));
    FabricStats skewed;
    skewed.bankOps[0] = 1000;
    skewed.bankOps[2] = 1;
    ASSERT_GT(skewed.occupancyImbalance(), 0.9);
    EXPECT_EQ(chooseSchedule(cands, skewed), 0u);
}

TEST(ChooseSchedule, DeterministicAndTieBreaksLowestIndex)
{
    std::vector<ScheduleCandidate> cands;
    cands.push_back(syntheticCandidate({4096}, {256}, 700));
    cands.push_back(syntheticCandidate({4096}, {256}, 700));
    cands.push_back(syntheticCandidate({4096}, {256}, 700));
    FabricStats snap;
    snap.bankOps[3] = 50;
    snap.bankOps[7] = 10;
    const unsigned first = chooseSchedule(cands, snap);
    EXPECT_EQ(first, 0u); // Exact tie -> lowest index.
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(chooseSchedule(cands, snap), first);
}

/**
 * The bit-identity guarantee the fat binary rests on: every candidate
 * schedule of a scenario, lowered and executed on the fabric backend,
 * produces byte-identical output checksums (the shared reduce-dim tile
 * keeps fp reduction trees identical; everything else is reordered
 * bit-exact compute).
 */
TEST(ChooseSchedule, EveryCandidateChecksumIdentical)
{
    constexpr std::int64_t kVolumeCap = 1 << 16;
    SystemConfig cfg = testSystemConfig();
    AddressMap map(cfg.l3, cfg.noc.memCtrls);
    JitCompiler jit(cfg);
    TilingPolicy policy(cfg.l3);
    unsigned multi = 0;
    for (const char *name : {"vec_add", "array_sum", "mm_outer", "dwt2d",
                             "stencil1d"}) {
        SCOPED_TRACE(name);
        const BenchScenario *sc = findScenario(name);
        ASSERT_NE(sc, nullptr);
        Workload w = sc->quick();
        LayoutHints hints = workloadHints(w);
        std::int64_t volume = 1;
        for (Coord s : w.primaryShape)
            volume *= s;
        if (volume > kVolumeCap)
            continue;
        std::vector<TiledLayout> layouts;
        for (TileDecision &d :
             policy.candidates(w.primaryShape, w.elemBytes, hints, 3))
            layouts.emplace_back(w.primaryShape, d.tile);
        if (layouts.empty())
            continue;
        // First primary-layout tDFG phase, as planPrimaryJob picks it.
        const Phase *phase = nullptr;
        for (const Phase &p : w.phases) {
            if (!p.buildTdfg || !p.latticeShape.empty())
                continue;
            if (p.buildTdfg(0).dims() == layouts.front().dims()) {
                phase = &p;
                break;
            }
        }
        if (!phase)
            continue;
        TdfgGraph g = phase->buildTdfg(0);
        auto progs = jit.lowerCandidates(g, layouts, map, "");
        ASSERT_EQ(progs.size(), layouts.size());
        bool have_ref = false;
        std::uint64_t ref = 0;
        unsigned lowered = 0;
        for (unsigned c = 0; c < progs.size(); ++c) {
            if (!progs[c])
                continue;
            ++lowered;
            BackendJob job;
            job.layout = layouts[c];
            job.prog = *progs[c];
            job.volume = volume;
            BackendResult r =
                makeBackend(ExecBackendKind::Fabric, cfg)->runJob(job);
            if (!have_ref) {
                ref = r.checksum;
                have_ref = true;
            } else {
                EXPECT_EQ(r.checksum, ref) << "candidate " << c;
            }
        }
        if (lowered > 1)
            ++multi;
    }
    // The sweep is vacuous unless at least one scenario really exercised
    // multiple lowered schedules.
    EXPECT_GE(multi, 1u);
}

/** The Executor records dispatch provenance, deterministically. */
TEST(ChooseSchedule, ExecutorRecordsProvenance)
{
    const BenchScenario *sc = findScenario("mm_outer");
    ASSERT_NE(sc, nullptr);

    SystemConfig cfg = defaultSystemConfig();
    InfinitySystem sys(cfg);
    Executor exec(sys, Paradigm::InfS);
    ExecStats a = exec.run(sc->quick());
    EXPECT_EQ(a.simdIsa, simd::activeIsa());
    EXPECT_GE(a.numaNodes, 1u);
    if (a.scheduleCandidates > 1)
        EXPECT_GE(a.scheduleId, 0);

    // Bit-for-bit repeatable: same system, same workload, same pick.
    InfinitySystem sys2(cfg);
    Executor exec2(sys2, Paradigm::InfS);
    ExecStats b = exec2.run(sc->quick());
    EXPECT_EQ(b.scheduleId, a.scheduleId);
    EXPECT_EQ(b.scheduleCandidates, a.scheduleCandidates);
    EXPECT_EQ(b.chosenTile, a.chosenTile);
    EXPECT_EQ(b.cycles, a.cycles);

    // Selection off: the legacy single-schedule plan, flagged as such.
    SystemConfig off = cfg;
    off.fatBinary = false;
    InfinitySystem sys3(off);
    Executor exec3(sys3, Paradigm::InfS);
    ExecStats c = exec3.run(sc->quick());
    EXPECT_EQ(c.scheduleId, -1);
    EXPECT_EQ(c.scheduleCandidates, 0u);
}

TEST(ChooseSchedule, SteadyStateDispatchEngages)
{
    // Steady-state mode (assumeTransposed: data in place, commands
    // precompiled) is the fat binary's home turf — the candidates were
    // lowered ahead of time and only the dispatch-time pick remains.
    // makeMm outer on the big machine stays in-memory with 3 candidate
    // schedules, so the dispatcher MUST engage and record its pick.
    Workload w = makeMm(64, 64, 64, true);
    w.assumeTransposed = true;

    SystemConfig cfg = defaultSystemConfig();
    InfinitySystem sys(cfg);
    ExecStats a = Executor(sys, Paradigm::InfS).run(w);
    ASSERT_GT(a.scheduleCandidates, 1u);
    EXPECT_GE(a.scheduleId, 0);
    EXPECT_LT(a.scheduleId, static_cast<int>(a.scheduleCandidates));
    EXPECT_GT(a.inMemOpFraction(), 0.9);

    // The pick and the resulting timing are deterministic run-to-run.
    InfinitySystem sys2(cfg);
    ExecStats b = Executor(sys2, Paradigm::InfS).run(w);
    EXPECT_EQ(b.scheduleId, a.scheduleId);
    EXPECT_EQ(b.scheduleCandidates, a.scheduleCandidates);
    EXPECT_EQ(b.chosenTile, a.chosenTile);
    EXPECT_EQ(b.cycles, a.cycles);

    // The functional result is candidate-invariant: the store must match
    // the single-schedule (fatBinary off) run exactly.
    ArrayStore picked;
    {
        InfinitySystem s(cfg);
        Executor(s, Paradigm::InfS).run(w, &picked);
    }
    SystemConfig off = cfg;
    off.fatBinary = false;
    ArrayStore legacy;
    {
        InfinitySystem s(off);
        ExecStats st = Executor(s, Paradigm::InfS).run(w, &legacy);
        EXPECT_EQ(st.scheduleId, -1);
        EXPECT_EQ(st.scheduleCandidates, 0u);
    }
    ASSERT_EQ(picked.size(), legacy.size());
    for (ArrayId id = 0; id < static_cast<ArrayId>(picked.size()); ++id)
        EXPECT_EQ(picked.array(id).data, legacy.array(id).data) << id;
}

} // namespace
} // namespace infs
