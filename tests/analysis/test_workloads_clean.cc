/**
 * @file
 * Differential check: every seed workload verifies clean at
 * VerifyLevel::Full — each phase's tDFG as built, the e-graph-optimized
 * form, and (through the executor with the verify hook installed) the
 * lowered command streams. A verifier regression that misreads legal JIT
 * output shows up here as a degraded region.
 */

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "analysis/verify_tdfg.hh"
#include "core/executor.hh"
#include "egraph/egraph.hh"
#include "workloads/pointnet.hh"
#include "workloads/workloads.hh"

namespace infs {
namespace {

const std::vector<std::pair<std::string, std::function<Workload()>>> &
seedWorkloads()
{
    static const std::vector<std::pair<std::string, std::function<Workload()>>>
        entries = {
            {"vec_add", [] { return makeVecAdd(512); }},
            {"array_sum", [] { return makeArraySum(1000); }},
            {"stencil1d", [] { return makeStencil1d(256, 4); }},
            {"stencil2d", [] { return makeStencil2d(32, 24, 3); }},
            {"stencil3d", [] { return makeStencil3d(16, 12, 8, 2); }},
            {"dwt2d", [] { return makeDwt2d(32, 32); }},
            {"gauss_elim", [] { return makeGaussElim(24); }},
            {"conv2d", [] { return makeConv2d(24, 20); }},
            {"conv3d", [] { return makeConv3d(10, 8, 4, 3); }},
            {"mm_outer", [] { return makeMm(12, 16, 8, true); }},
            {"mm_inner", [] { return makeMm(12, 16, 8, false); }},
            {"kmeans", [] { return makeKmeans(64, 8, 4, true); }},
            {"gather_mlp", [] { return makeGatherMlp(24, 8, 6, 40, true); }},
            {"pointnet_ssg", [] { return makePointNetSSG(128); }},
            {"pointnet_msg", [] { return makePointNetMSG(64); }},
        };
    return entries;
}

TEST(WorkloadsClean, TdfgsVerifyBeforeAndAfterOptimization)
{
    for (const auto &[name, make] : seedWorkloads()) {
        Workload w = make();
        for (const Phase &p : w.phases) {
            if (!p.buildTdfg)
                continue;
            TdfgGraph g = p.buildTdfg(0);
            VerifyReport rep = verifyTdfg(g);
            EXPECT_TRUE(rep.clean())
                << name << " phase '" << p.name << "': " << rep.str();

            // tryOptimize re-verifies the extracted graph internally
            // (Options::verifyExtraction); an error here means a rewrite
            // or extraction produced an unsound graph.
            TdfgOptimizer opt;
            Expected<ExtractionResult> res = opt.tryOptimize(g);
            ASSERT_TRUE(res.ok())
                << name << " phase '" << p.name
                << "': " << res.error().str();
            VerifyReport rep2 = verifyTdfg(res->graph);
            EXPECT_TRUE(rep2.clean())
                << name << " phase '" << p.name
                << "' optimized: " << rep2.str();
        }
    }
}

TEST(WorkloadsClean, ExecutorAtFullVerifyDegradesNothing)
{
    // testSystemConfig() runs at VerifyLevel::Full: the verify hook vets
    // every lowered program. Any false positive degrades the region.
    for (const auto &[name, make] : seedWorkloads()) {
        InfinitySystem sys(testSystemConfig());
        Executor exec(sys, Paradigm::InfS);
        ExecStats st = exec.run(make());
        EXPECT_EQ(st.regionsDegraded, 0u) << name;
        EXPECT_GT(st.cycles, 0u) << name;
    }
}

} // namespace
} // namespace infs
