/**
 * @file
 * Adversarial corpus for the command hazard analyzer: mutated command
 * streams must trigger their specific diagnostic codes, and the legal
 * patterns the JIT emits (disjoint-mask shift pairs, fold chains,
 * restated reduce rounds) must stay clean.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/verify_cmds.hh"

namespace infs {
namespace {

/**
 * 1-D lattice of 256 cells in 16-cell tiles on the 16-bank test system:
 * tile t lives in bank t, fp32 gives slots at wordlines 0,32,...,192.
 */
class VerifyCmds : public ::testing::Test
{
  protected:
    VerifyCmds()
        : cfg(testSystemConfig()), map(cfg.l3, cfg.noc.memCtrls),
          layout(*TiledLayout::make({256}, {16}))
    {
    }

    InMemCommand
    shift(CmdKind kind, unsigned group, Coord lo, Coord hi, Coord inter,
          Coord intra, unsigned wl_a, unsigned wl_dst)
    {
        InMemCommand c;
        c.kind = kind;
        c.group = group;
        c.tensor = HyperRect::interval(lo, hi);
        c.dim = 0;
        c.maskLo = 0;
        c.maskHi = 16;
        c.interTileDist = inter;
        c.intraTileDist = intra;
        c.wlA = wl_a;
        c.wlDst = wl_dst;
        const HyperRect dst = c.tensor.shifted(0, inter * 16 + intra);
        c.banks = layout.banksFor(
            c.tensor.intersect(HyperRect::array(layout.shape())), map);
        for (BankId b :
             layout.banksFor(dst.intersect(HyperRect::array(layout.shape())),
                             map)) {
            if (std::find(c.banks.begin(), c.banks.end(), b) ==
                c.banks.end())
                c.banks.push_back(b);
        }
        return c;
    }

    InMemCommand
    computeImm(unsigned group, Coord lo, Coord hi, unsigned wl_a,
               unsigned wl_dst)
    {
        InMemCommand c;
        c.kind = CmdKind::Compute;
        c.group = group;
        c.tensor = HyperRect::interval(lo, hi);
        c.useImm = true;
        c.wlA = wl_a;
        c.wlDst = wl_dst;
        c.banks = layout.banksFor(c.tensor, map);
        return c;
    }

    InMemCommand
    sync()
    {
        InMemCommand c;
        c.kind = CmdKind::Sync;
        return c;
    }

    VerifyReport
    verify(std::vector<InMemCommand> cmds)
    {
        InMemProgram prog;
        prog.commands = std::move(cmds);
        return verifyCommands(prog, layout, map, cfg);
    }

    SystemConfig cfg;
    AddressMap map;
    TiledLayout layout;
};

TEST_F(VerifyCmds, InterShiftWithSyncIsClean)
{
    VerifyReport rep = verify({
        shift(CmdKind::InterShift, 1, 0, 16, 1, 0, 0, 32),
        sync(),
        computeImm(2, 16, 32, 32, 64),
    });
    EXPECT_TRUE(rep.clean()) << rep.str();
}

TEST_F(VerifyCmds, DroppedSyncBeforeComputeIsMissingSync)
{
    VerifyReport rep = verify({
        shift(CmdKind::InterShift, 1, 0, 16, 1, 0, 0, 32),
        computeImm(2, 16, 32, 32, 64),
    });
    EXPECT_TRUE(rep.has(VerifyCode::MissingSync)) << rep.str();
}

TEST_F(VerifyCmds, DroppedSyncBeforeShiftIsRawHazard)
{
    VerifyReport rep = verify({
        shift(CmdKind::InterShift, 1, 0, 16, 1, 0, 0, 32),
        shift(CmdKind::IntraShift, 2, 16, 32, 0, 2, 32, 64),
    });
    EXPECT_TRUE(rep.has(VerifyCode::RawHazard)) << rep.str();
}

TEST_F(VerifyCmds, OverwriteBeforeSyncIsWawHazard)
{
    VerifyReport rep = verify({
        shift(CmdKind::InterShift, 1, 0, 16, 1, 0, 0, 32),
        computeImm(3, 16, 32, 64, 32), // Reads an untouched slot, but
                                       // lands in the in-flight one.
    });
    EXPECT_TRUE(rep.has(VerifyCode::WawHazard)) << rep.str();
}

TEST_F(VerifyCmds, OverlappingIntraGroupShiftsAreReported)
{
    // Same group, same tile set, different distances: Alg. 1 tiles must
    // be disjoint, so these would double-move the overlap.
    VerifyReport rep = verify({
        shift(CmdKind::IntraShift, 7, 0, 16, 0, 1, 0, 32),
        shift(CmdKind::IntraShift, 7, 0, 16, 0, 2, 0, 32),
    });
    EXPECT_TRUE(rep.has(VerifyCode::IntraGroupOverlap)) << rep.str();
}

TEST_F(VerifyCmds, DisjointMaskShiftPairIsClean)
{
    // Alg. 2 emits complementary masks over the same rect: disjoint
    // element sets, no overlap diagnostic.
    InMemCommand a = shift(CmdKind::IntraShift, 7, 0, 16, 0, 2, 0, 32);
    a.maskLo = 0;
    a.maskHi = 8;
    InMemCommand b = shift(CmdKind::IntraShift, 7, 0, 16, 0, 2, 0, 32);
    b.maskLo = 8;
    b.maskHi = 16;
    VerifyReport rep = verify({a, b});
    EXPECT_TRUE(rep.clean()) << rep.str();
}

TEST_F(VerifyCmds, RestatedEffectOverSubtensorsIsClean)
{
    // The reduce lowering restates one inter-tile round per subtensor:
    // identical effect parameters, different windows — legal.
    VerifyReport rep = verify({
        shift(CmdKind::IntraShift, 9, 0, 16, 0, 4, 0, 32),
        shift(CmdKind::IntraShift, 9, 8, 24, 0, 4, 0, 32),
    });
    EXPECT_TRUE(rep.clean()) << rep.str();
}

TEST_F(VerifyCmds, SlotBeyondCapacityIsReported)
{
    // fp32 on 256 wordlines: 7 usable slots, top slot reserved, so
    // wordline 224 is out of range.
    VerifyReport rep = verify({computeImm(1, 0, 16, 0, 224)});
    EXPECT_TRUE(rep.has(VerifyCode::CmdSlotOutOfRange)) << rep.str();
}

TEST_F(VerifyCmds, MisalignedSlotIsReported)
{
    VerifyReport rep = verify({computeImm(1, 0, 16, 5, 64)});
    EXPECT_TRUE(rep.has(VerifyCode::CmdSlotMisaligned)) << rep.str();
}

TEST_F(VerifyCmds, MaskBeyondTileIsReported)
{
    InMemCommand c = shift(CmdKind::IntraShift, 1, 0, 16, 0, 2, 0, 32);
    c.maskHi = 20; // Tile holds positions [0, 16).
    VerifyReport rep = verify({c});
    EXPECT_TRUE(rep.has(VerifyCode::CmdBadMask)) << rep.str();
}

TEST_F(VerifyCmds, MissingBanksAreReported)
{
    InMemCommand c = computeImm(1, 0, 16, 0, 64);
    c.banks.clear();
    VerifyReport rep = verify({c});
    EXPECT_TRUE(rep.has(VerifyCode::CmdBankInvalid)) << rep.str();
}

TEST_F(VerifyCmds, DuplicateLotHomeIsReported)
{
    InMemProgram prog;
    prog.arraySlots = {{0, 0}, {0, 32}};
    VerifyReport rep = verifyCommands(prog, layout, map, cfg);
    EXPECT_TRUE(rep.has(VerifyCode::LotInconsistent)) << rep.str();
}

TEST_F(VerifyCmds, OutputWithoutHomeIsReported)
{
    InMemProgram prog;
    prog.outputSlots = {{3, 64}};
    VerifyReport rep = verifyCommands(prog, layout, map, cfg);
    EXPECT_TRUE(rep.has(VerifyCode::LotInconsistent)) << rep.str();
}

TEST_F(VerifyCmds, LocalWriterMissingDependenceBanksIsRawHazard)
{
    // Tiles map to banks in 64-tile blocks on the test system, so a
    // cross-bank dependence needs a >64-tile layout: cells [1024,1040)
    // live in bank 1. The writer claims them in its rect but only
    // issues on bank 0, so the reader's cells are never produced — and
    // no Sync can fix a local write that never happens.
    TiledLayout wide = *TiledLayout::make({2048}, {16});
    InMemCommand w = computeImm(1, 0, 1040, 0, 32);
    w.banks = wide.banksFor(HyperRect::interval(0, 16), map);
    InMemCommand r = computeImm(2, 1024, 1040, 32, 64);
    r.banks = wide.banksFor(r.tensor, map);
    ASSERT_NE(w.banks, r.banks); // The layout really crosses banks.
    InMemProgram prog;
    prog.commands = {w, r};
    VerifyReport rep = verifyCommands(prog, wide, map, cfg);
    EXPECT_TRUE(rep.has(VerifyCode::RawHazard)) << rep.str();
}

TEST_F(VerifyCmds, LocalFoldChainIsClean)
{
    VerifyReport rep = verify({
        computeImm(1, 0, 16, 0, 32),
        computeImm(2, 0, 16, 32, 64),
        computeImm(3, 0, 16, 64, 64), // Fold into the same slot.
    });
    EXPECT_TRUE(rep.clean()) << rep.str();
}

} // namespace
} // namespace infs
