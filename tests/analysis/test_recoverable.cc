/**
 * @file
 * Recoverable-diagnostic paths in the e-graph layer: malformed ids and
 * failed extractions must come back as infs::Expected errors, never
 * aborts.
 */

#include <gtest/gtest.h>

#include "egraph/egraph.hh"

namespace infs {
namespace {

TEST(Recoverable, TryMergeRejectsMalformedIds)
{
    EGraph eg(1);
    ENode t;
    t.kind = TdfgKind::Tensor;
    t.array = 0;
    t.rect = HyperRect::interval(0, 8);
    EClassId a = eg.add(t);
    EXPECT_TRUE(eg.validId(a));
    EXPECT_FALSE(eg.validId(a + 100));

    Expected<bool> res = eg.tryMerge(a, a + 100);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().code, ErrCode::InvalidArgument);

    res = eg.tryMerge(invalidEClass, a);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().code, ErrCode::InvalidArgument);
}

TEST(Recoverable, TryMergeStillRejectsDomainMismatch)
{
    EGraph eg(1);
    ENode t1;
    t1.kind = TdfgKind::Tensor;
    t1.array = 0;
    t1.rect = HyperRect::interval(0, 8);
    ENode t2 = t1;
    t2.array = 1;
    t2.rect = HyperRect::interval(0, 16);
    EClassId a = eg.add(t1);
    EClassId b = eg.add(t2);
    Expected<bool> res = eg.tryMerge(a, b);
    ASSERT_TRUE(res.ok());
    EXPECT_FALSE(*res); // Valid ids, incompatible domains.
}

TEST(Recoverable, TryOptimizeSucceedsOnWellFormedGraph)
{
    TdfgGraph g(1, "opt");
    NodeId a = g.tensor(0, HyperRect::interval(0, 64));
    NodeId b = g.tensor(1, HyperRect::interval(0, 64));
    NodeId s = g.compute(BitOp::Mul, {a, b});
    g.output(s, 2);
    TdfgOptimizer opt;
    Expected<ExtractionResult> res = opt.tryOptimize(g);
    ASSERT_TRUE(res.ok()) << res.error().str();
    EXPECT_EQ(res->graph.outputs().size(), 1u);
}

} // namespace
} // namespace infs
