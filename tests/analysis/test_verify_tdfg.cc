/**
 * @file
 * Adversarial corpus for the tDFG verifier: each corrupted graph must
 * trigger its specific diagnostic code, with no aborts.
 */

#include <gtest/gtest.h>

#include "analysis/verify_tdfg.hh"

namespace infs {
namespace {

TdfgNode
tensorNode(HyperRect dom, ArrayId array = 0)
{
    TdfgNode n;
    n.kind = TdfgKind::Tensor;
    n.domain = std::move(dom);
    n.array = array;
    return n;
}

TEST(VerifyTdfg, CleanGraphHasNoDiagnostics)
{
    TdfgGraph g(1, "clean");
    NodeId a = g.tensor(0, HyperRect::interval(0, 64));
    NodeId b = g.tensor(1, HyperRect::interval(0, 64));
    NodeId s = g.compute(BitOp::Add, {a, b});
    NodeId m = g.move(s, 0, 2);
    g.output(m, 2);
    VerifyReport rep = verifyTdfg(g);
    EXPECT_TRUE(rep.clean()) << rep.str();
    EXPECT_TRUE(checkTdfg(g).ok());
}

TEST(VerifyTdfg, DanglingOperandIsReported)
{
    TdfgGraph g(1, "dangling");
    TdfgNode n;
    n.kind = TdfgKind::Move;
    n.operands = {7}; // Node table holds only this node.
    n.domain = HyperRect::interval(0, 8);
    g.appendUnchecked(std::move(n));
    VerifyReport rep = verifyTdfg(g);
    EXPECT_TRUE(rep.has(VerifyCode::OperandOutOfRange)) << rep.str();
}

TEST(VerifyTdfg, SelfReferenceBreaksTopologicalOrder)
{
    TdfgGraph g(1, "cycle");
    g.appendUnchecked(tensorNode(HyperRect::interval(0, 8)));
    TdfgNode n;
    n.kind = TdfgKind::Move;
    n.operands = {1}; // Its own id: the smallest possible cycle.
    n.domain = HyperRect::interval(0, 8);
    g.appendUnchecked(std::move(n));
    VerifyReport rep = verifyTdfg(g);
    EXPECT_TRUE(rep.has(VerifyCode::OperandOrder)) << rep.str();
}

TEST(VerifyTdfg, DimBeyondRankIsReported)
{
    TdfgGraph g(1, "rank");
    g.appendUnchecked(tensorNode(HyperRect::interval(0, 8)));
    TdfgNode n;
    n.kind = TdfgKind::Move;
    n.operands = {0};
    n.dim = 5; // Rank-1 lattice.
    n.dist = 1;
    n.domain = HyperRect::interval(1, 9);
    g.appendUnchecked(std::move(n));
    VerifyReport rep = verifyTdfg(g);
    EXPECT_TRUE(rep.has(VerifyCode::DimOutOfRank)) << rep.str();
}

TEST(VerifyTdfg, DisjointComputeOperandsAreReported)
{
    TdfgGraph g(1, "disjoint");
    g.appendUnchecked(tensorNode(HyperRect::interval(0, 8), 0));
    g.appendUnchecked(tensorNode(HyperRect::interval(16, 24), 1));
    TdfgNode n;
    n.kind = TdfgKind::Compute;
    n.operands = {0, 1};
    n.domain = HyperRect::interval(0, 8);
    g.appendUnchecked(std::move(n));
    VerifyReport rep = verifyTdfg(g);
    EXPECT_TRUE(rep.has(VerifyCode::EmptyComputeDomain)) << rep.str();
}

TEST(VerifyTdfg, WrongMoveDomainIsReported)
{
    TdfgGraph g(1, "baddom");
    g.appendUnchecked(tensorNode(HyperRect::interval(0, 8)));
    TdfgNode n;
    n.kind = TdfgKind::Move;
    n.operands = {0};
    n.dim = 0;
    n.dist = 3;
    n.domain = HyperRect::interval(0, 8); // Should be [3, 11).
    g.appendUnchecked(std::move(n));
    VerifyReport rep = verifyTdfg(g);
    EXPECT_TRUE(rep.has(VerifyCode::DomainMismatch)) << rep.str();
}

TEST(VerifyTdfg, NonAssociativeReduceIsReported)
{
    TdfgGraph g(1, "badop");
    g.appendUnchecked(tensorNode(HyperRect::interval(0, 8)));
    TdfgNode n;
    n.kind = TdfgKind::Reduce;
    n.operands = {0};
    n.fn = BitOp::Sub;
    n.domain = HyperRect::interval(0, 1);
    g.appendUnchecked(std::move(n));
    VerifyReport rep = verifyTdfg(g);
    EXPECT_TRUE(rep.has(VerifyCode::BadReduceOp)) << rep.str();
}

TEST(VerifyTdfg, ConstFlagMismatchIsReported)
{
    TdfgGraph g(1, "inf");
    TdfgNode n;
    n.kind = TdfgKind::Tensor;
    n.infiniteDomain = true; // Only ConstVal may cover the lattice.
    g.appendUnchecked(std::move(n));
    VerifyReport rep = verifyTdfg(g);
    EXPECT_TRUE(rep.has(VerifyCode::InfiniteMismatch)) << rep.str();
}

TEST(VerifyTdfg, BadShrinkRangeIsReported)
{
    TdfgGraph g(1, "shrink");
    g.appendUnchecked(tensorNode(HyperRect::interval(4, 12)));
    TdfgNode n;
    n.kind = TdfgKind::Shrink;
    n.operands = {0};
    n.dim = 0;
    n.domain = HyperRect::interval(0, 8); // Escapes the source's [4,12).
    g.appendUnchecked(std::move(n));
    VerifyReport rep = verifyTdfg(g);
    EXPECT_TRUE(rep.has(VerifyCode::BadShrinkRange)) << rep.str();
}

TEST(VerifyTdfg, CheckTdfgCollapsesToVerifyFailed)
{
    TdfgGraph g(1, "err");
    TdfgNode n;
    n.kind = TdfgKind::Move;
    n.operands = {3};
    n.domain = HyperRect::interval(0, 8);
    g.appendUnchecked(std::move(n));
    Expected<bool> ok = checkTdfg(g);
    ASSERT_FALSE(ok.ok());
    EXPECT_EQ(ok.error().code, ErrCode::VerifyFailed);
}

} // namespace
} // namespace infs
