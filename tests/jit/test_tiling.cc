#include <gtest/gtest.h>

#include "jit/tiling.hh"

namespace infs {
namespace {

L3Config
l3()
{
    return L3Config{};
}

TEST(Tiling, ValidTilesSatisfyConstraints)
{
    TilingPolicy pol(l3());
    // 2k x 2k fp32 array (Table 3): L = 16 elems/line.
    auto tiles = pol.validTiles({2048, 2048}, 4);
    ASSERT_FALSE(tiles.empty());
    const std::int64_t B = 256;
    const std::int64_t W = 16 * 16;
    const std::int64_t L = 16;
    for (const auto &t : tiles) {
        std::int64_t prod = 1;
        for (Coord v : t)
            prod *= v;
        EXPECT_EQ(prod, B);                    // Constraint 1.
        EXPECT_EQ((t[0] * W) % L, 0);          // Constraint 2.
    }
    // All power-of-two factorizations of 256 over 2 dims: 9 options.
    EXPECT_EQ(tiles.size(), 9u);
}

TEST(Tiling, UnalignedInnermostDimDisablesInMemory)
{
    TilingPolicy pol(l3());
    // S0 = 1000 not divisible by 16 -> in-memory computing disabled.
    EXPECT_TRUE(pol.validTiles({1000, 64}, 4).empty());
    // But 1024 works.
    EXPECT_FALSE(pol.validTiles({1024, 64}, 4).empty());
}

TEST(Tiling, ShiftPrefersSquare)
{
    TilingPolicy pol(l3());
    LayoutHints hints;
    hints.shiftDims = {0, 1};
    TileDecision d = pol.choose({2048, 2048}, 4, hints);
    ASSERT_TRUE(d.valid);
    // §8: "picking a balanced tile size (16x16 for 2D arrays)".
    EXPECT_EQ(d.tile, (std::vector<Coord>{16, 16}));
}

TEST(Tiling, ReducePrefersLargeReducedDim)
{
    TilingPolicy pol(l3());
    LayoutHints hints;
    hints.reduceDim = 0;
    hints.broadcastDims = {1};
    // kmeans/in-like: reduced dim has extent 128; tiling by 128 allows
    // pure in-memory reduction (§8 Fig 16 discussion).
    TileDecision d = pol.choose({128, 32768}, 4, hints);
    ASSERT_TRUE(d.valid);
    EXPECT_EQ(d.tile[0], 128);
    EXPECT_EQ(d.tile[1], 2);
}

TEST(Tiling, BroadcastPrefersSmallInnermost)
{
    TilingPolicy pol(l3());
    LayoutHints hints;
    hints.broadcastDims = {0, 1};
    TileDecision d = pol.choose({2048, 2048}, 4, hints);
    ASSERT_TRUE(d.valid);
    // Smallest valid innermost tile (constraint 2 allows T0 = 1 since
    // W = 256 is a multiple of L = 16).
    EXPECT_EQ(d.tile[0], 1);
}

TEST(Tiling, ReductionOutranksBroadcast)
{
    // §4.1 priority: reduction > broadcast. With no shifts, the reduced
    // dimension takes the whole tile even though broadcast would prefer
    // a small innermost tile on the same axis.
    TilingPolicy pol(l3());
    LayoutHints hints;
    hints.reduceDim = 1;
    hints.broadcastDims = {0};
    TileDecision d = pol.choose({4096, 4096}, 4, hints);
    ASSERT_TRUE(d.valid);
    EXPECT_EQ(d.tile[1], 256);
}

TEST(Tiling, ShiftsTemperTheReducedDimension)
{
    // With shifts in play the balanced tile beats an extreme reduced-dim
    // tile (conv3d's regime, Fig 17): the reduced dimension still gets a
    // larger share than a pure-shift square would give it.
    TilingPolicy pol(l3());
    LayoutHints hints;
    hints.reduceDim = 2;
    hints.shiftDims = {0, 1};
    TileDecision d = pol.choose({256, 256, 64}, 4, hints);
    ASSERT_TRUE(d.valid);
    EXPECT_LT(d.tile[2], 64);  // Not the extreme full-reduce tile...
    EXPECT_GT(d.tile[2], 1);   // ...but more than a pure-shift square.
}

TEST(Tiling, HintsFromGraph)
{
    TdfgGraph g(2);
    NodeId a = g.tensor(0, HyperRect::box2(0, 64, 0, 64));
    NodeId m = g.move(a, 0, 1);
    NodeId b = g.broadcast(a, 1, 0, 2);
    NodeId r = g.reduce(g.compute(BitOp::Add, {m, b}), BitOp::Add, 1);
    (void)r;
    LayoutHints h = LayoutHints::fromGraph(g);
    EXPECT_TRUE(h.shiftDims.count(0));
    EXPECT_TRUE(h.broadcastDims.count(1));
    ASSERT_TRUE(h.reduceDim.has_value());
    EXPECT_EQ(*h.reduceDim, 1u);
}

TEST(TiledLayout, TileIndexingRoundTrip)
{
    TiledLayout lay({64, 32}, {16, 16});
    EXPECT_EQ(lay.grid(), (std::vector<Coord>{4, 2}));
    EXPECT_EQ(lay.numTiles(), 8);
    EXPECT_EQ(lay.tileVolume(), 256);
    EXPECT_EQ(lay.tileOf({0, 0}), 0);
    EXPECT_EQ(lay.tileOf({16, 0}), 1);
    EXPECT_EQ(lay.tileOf({0, 16}), 4);
    EXPECT_EQ(lay.tileOf({63, 31}), 7);
    EXPECT_EQ(lay.positionInTile({17, 2}), 1 + 2 * 16);
}

TEST(TiledLayout, BoundaryTiles)
{
    // 20x10 with 16x16 tiles: 2x1 grid, boundary tiles with unused
    // bitlines (§4.1 "boundary tiles with unused bitlines").
    TiledLayout lay({20, 10}, {16, 16});
    EXPECT_EQ(lay.numTiles(), 2);
    EXPECT_EQ(lay.tileOf({19, 9}), 1);
}

TEST(TiledLayout, TilesIntersecting)
{
    TiledLayout lay({64, 64}, {16, 16});
    auto all = lay.tilesIntersecting(HyperRect::box2(0, 64, 0, 64));
    EXPECT_EQ(all.size(), 16u);
    auto one = lay.tilesIntersecting(HyperRect::box2(3, 5, 3, 5));
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], 0);
    auto row = lay.tilesIntersecting(HyperRect::box2(0, 64, 16, 17));
    EXPECT_EQ(row.size(), 4u);
    // Out-of-array coordinates are clamped.
    auto clamped = lay.tilesIntersecting(HyperRect::box2(-5, 8, 60, 99));
    ASSERT_EQ(clamped.size(), 1u);
    EXPECT_EQ(clamped[0], 12);
}

TEST(TiledLayout, BanksForContiguousMapping)
{
    AddressMap map(L3Config{});
    TiledLayout lay({2048, 2048}, {16, 16});
    EXPECT_EQ(lay.numTiles(), 128 * 128);
    // With the contiguous tile->array mapping (256 arrays/bank), one
    // row of 128 tiles stays within a single bank...
    auto row = lay.banksFor(HyperRect::box2(0, 2048, 0, 16), map);
    EXPECT_EQ(row.size(), 1u);
    // ...while the whole array (16384 tiles) covers all 64 banks.
    auto all = lay.banksFor(HyperRect::box2(0, 2048, 0, 2048), map);
    EXPECT_EQ(all.size(), 64u);
    // A single tile -> one bank.
    auto one = lay.banksFor(HyperRect::box2(0, 16, 0, 16), map);
    EXPECT_EQ(one.size(), 1u);
}

TEST(TiledLayout, MakeReportsLayoutConstraintViolations)
{
    auto bad_rank = TiledLayout::make({128, 128}, {16});
    ASSERT_FALSE(bad_rank.ok());
    EXPECT_EQ(bad_rank.error().code, ErrCode::LayoutConstraint);
    auto bad_tile = TiledLayout::make({128}, {0});
    ASSERT_FALSE(bad_tile.ok());
    EXPECT_EQ(bad_tile.error().code, ErrCode::LayoutConstraint);
    auto good = TiledLayout::make({128}, {16});
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(good->numTiles(), 8);
}

TEST(TiledLayout, FitsChecksCapacity)
{
    AddressMap map(L3Config{});
    // 4M elements at 1 elem/bitline = 16384 tiles = exactly all arrays.
    TiledLayout ok({4096, 1024}, {16, 16});
    EXPECT_TRUE(ok.fits(map));
    TiledLayout too_big({8192, 1024}, {16, 16});
    EXPECT_FALSE(too_big.fits(map));
}

} // namespace
} // namespace infs
