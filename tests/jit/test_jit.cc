#include <gtest/gtest.h>

#include "jit/jit.hh"

namespace infs {
namespace {

TEST(CompileMove, PaperFig9RightShiftByOne)
{
    // Fig 9: right shift column [0,4) by 1 with tile size 2 generates one
    // intra-tile shift for even positions (+1) and one inter-tile shift
    // for odd positions (cross one tile, land at -1).
    auto cmds = compileMove(HyperRect::box2(0, 4, 0, 2), 0, 1, 2);
    ASSERT_EQ(cmds.size(), 2u);
    EXPECT_EQ(cmds[0].kind, CmdKind::IntraShift);
    EXPECT_EQ(cmds[0].maskLo, 0);
    EXPECT_EQ(cmds[0].maskHi, 1);
    EXPECT_EQ(cmds[0].interTileDist, 0);
    EXPECT_EQ(cmds[0].intraTileDist, 1);
    EXPECT_EQ(cmds[1].kind, CmdKind::InterShift);
    EXPECT_EQ(cmds[1].maskLo, 1);
    EXPECT_EQ(cmds[1].maskHi, 2);
    EXPECT_EQ(cmds[1].interTileDist, 1);
    EXPECT_EQ(cmds[1].intraTileDist, -1);
}

TEST(CompileMove, TileAlignedDistanceIsPureInterTile)
{
    auto cmds = compileMove(HyperRect::interval(0, 64), 0, 16, 16);
    ASSERT_EQ(cmds.size(), 1u);
    EXPECT_EQ(cmds[0].kind, CmdKind::InterShift);
    EXPECT_EQ(cmds[0].interTileDist, 1);
    EXPECT_EQ(cmds[0].intraTileDist, 0);
    EXPECT_EQ(cmds[0].maskLo, 0);
    EXPECT_EQ(cmds[0].maskHi, 16);
}

TEST(CompileMove, BackwardShift)
{
    // Alg. 2 lines 9-12 with d = -1, t = 2.
    auto cmds = compileMove(HyperRect::interval(0, 4), 0, -1, 2);
    ASSERT_EQ(cmds.size(), 2u);
    EXPECT_EQ(cmds[0].kind, CmdKind::InterShift);
    EXPECT_EQ(cmds[0].maskLo, 0);
    EXPECT_EQ(cmds[0].maskHi, 1);
    EXPECT_EQ(cmds[0].interTileDist, -1);
    EXPECT_EQ(cmds[0].intraTileDist, 1);
    EXPECT_EQ(cmds[1].kind, CmdKind::IntraShift);
    EXPECT_EQ(cmds[1].maskLo, 1);
    EXPECT_EQ(cmds[1].maskHi, 2);
    EXPECT_EQ(cmds[1].intraTileDist, -1);
}

TEST(CompileMove, ZeroDistanceNoCommands)
{
    EXPECT_TRUE(compileMove(HyperRect::interval(0, 8), 0, 0, 4).empty());
}

TEST(CompileMove, EmptyMaskIntersectionFiltered)
{
    // Paper Fig 9 CMD 2: AR[0,4)x[2,3) shifted right by one needs only an
    // intra-tile shift; the inter-tile command's mask [1,2) does not
    // intersect the tensor's dim-0 coverage... here we test the 1-D
    // analogue: tensor occupying only position 0 of each tile, shift +1.
    auto cmds = compileMove(HyperRect::interval(2, 3), 0, 1, 2);
    ASSERT_EQ(cmds.size(), 1u); // Only the intra-tile command survives.
    EXPECT_EQ(cmds[0].kind, CmdKind::IntraShift);
}

TEST(CompileMove, PropertyEveryElementMovesByDist)
{
    // Functional check of Alg. 2: simulate commands over a 1-D array of
    // positions and verify every element lands exactly dist away.
    for (Coord dist : {1, -1, 3, -3, 7, 16, -16, 21, -21}) {
        const Coord n = 64, t = 8;
        auto cmds = compileMove(HyperRect::interval(0, n), 0, dist, t);
        std::vector<Coord> dst(n, -1);
        for (const auto &c : cmds) {
            for (Coord x = 0; x < n; ++x) {
                Coord pos = x % t;
                if (pos < c.maskLo || pos >= c.maskHi)
                    continue;
                Coord moved = x + c.interTileDist * t + c.intraTileDist;
                if (moved >= 0 && moved < n) {
                    EXPECT_EQ(dst[x], -1) << "double move of " << x;
                    dst[x] = moved;
                }
            }
        }
        for (Coord x = 0; x < n; ++x) {
            Coord want = x + dist;
            if (want >= 0 && want < n)
                EXPECT_EQ(dst[x], want)
                    << "dist " << dist << " elem " << x;
        }
    }
}

class JitLowerTest : public ::testing::Test
{
  protected:
    JitLowerTest()
        : cfg(testSystemConfig()), map(cfg.l3), jit(cfg)
    {
    }

    SystemConfig cfg;
    AddressMap map;
    JitCompiler jit;
};

TEST_F(JitLowerTest, VecAddProgram)
{
    const Coord n = 4096;
    TdfgGraph g(1, "vec_add");
    NodeId a = g.tensor(0, HyperRect::interval(0, n));
    NodeId b = g.tensor(1, HyperRect::interval(0, n));
    NodeId c = g.compute(BitOp::Add, {a, b});
    g.output(c, 2);
    TiledLayout lay({n}, {256});
    auto prog = jit.lower(g, lay, map);
    // One aligned compute command, no movement, no syncs.
    EXPECT_EQ(prog->numCompute, 1u);
    EXPECT_EQ(prog->numIntraShift, 0u);
    EXPECT_EQ(prog->numInterShift, 0u);
    EXPECT_EQ(prog->numSync, 0u);
    EXPECT_GT(prog->jitTicks, 0u);
    // The compute touches 16 tiles; contiguous tile->array mapping puts
    // them all in bank 0 (64 arrays/bank in the test config).
    EXPECT_EQ(prog->commands[0].banks.size(), 1u);
}

TEST_F(JitLowerTest, StencilProgramHasShiftsAndSync)
{
    const Coord n = 4096;
    TdfgGraph g(1, "stencil1d");
    NodeId a0 = g.tensor(0, HyperRect::interval(0, n - 2));
    NodeId a1 = g.tensor(0, HyperRect::interval(1, n - 1));
    NodeId a2 = g.tensor(0, HyperRect::interval(2, n));
    NodeId s = g.compute(BitOp::Add,
                         {g.move(a0, 0, 1), a1, g.move(a2, 0, -1)});
    g.output(s, 1);
    TiledLayout lay({n}, {256});
    auto prog = jit.lower(g, lay, map);
    EXPECT_GT(prog->numIntraShift, 0u);
    EXPECT_GT(prog->numInterShift, 0u);
    // Sync must separate inter-tile shifts from the consuming compute.
    EXPECT_GE(prog->numSync, 1u);
    bool sync_before_compute = false;
    bool seen_sync = false;
    for (const auto &c : prog->commands) {
        if (c.kind == CmdKind::Sync)
            seen_sync = true;
        if (c.kind == CmdKind::Compute && seen_sync)
            sync_before_compute = true;
    }
    EXPECT_TRUE(sync_before_compute);
}

TEST_F(JitLowerTest, ConstantsBecomeImmediates)
{
    TdfgGraph g(1, "scale");
    NodeId a = g.tensor(0, HyperRect::interval(0, 1024));
    NodeId c = g.constant(2.5);
    NodeId m = g.compute(BitOp::Mul, {a, c});
    g.output(m, 1);
    TiledLayout lay({1024}, {256});
    auto prog = jit.lower(g, lay, map);
    ASSERT_EQ(prog->numCompute, 1u);
    EXPECT_TRUE(prog->commands[0].useImm);
    EXPECT_DOUBLE_EQ(prog->commands[0].imm, 2.5);
}

TEST_F(JitLowerTest, ReduceLowersToShiftAddRounds)
{
    TdfgGraph g(1, "sum");
    NodeId a = g.tensor(0, HyperRect::interval(0, 4096));
    g.reduce(a, BitOp::Add, 0);
    TiledLayout lay({4096}, {256});
    auto prog = jit.lower(g, lay, map);
    // log2(256) = 8 in-tile rounds of (intra shift + add), then
    // log2(16 tiles) = 4 synchronized inter-tile rounds for the
    // partials.
    EXPECT_EQ(prog->numIntraShift, 8u);
    EXPECT_EQ(prog->numInterShift, 4u);
    EXPECT_EQ(prog->numCompute, 12u);
    EXPECT_GE(prog->numSync, 4u);
}

TEST_F(JitLowerTest, MemoizationReusesPrograms)
{
    TdfgGraph g(1, "iter");
    NodeId a = g.tensor(0, HyperRect::interval(0, 1024));
    g.output(g.compute(BitOp::Add, {g.move(a, 0, 1), a}), 1);
    TiledLayout lay({1024}, {256});
    auto p1 = jit.lower(g, lay, map, "iter/1024/256");
    auto p2 = jit.lower(g, lay, map, "iter/1024/256");
    EXPECT_EQ(jit.stats().lowerings, 1u);
    EXPECT_EQ(jit.stats().memoHits, 1u);
    EXPECT_FALSE(p1->memoized);
    EXPECT_TRUE(p2->memoized);
    EXPECT_EQ(p2->jitTicks, 0u); // Cached reuse skips lowering time.
    EXPECT_EQ(p1->commands.size(), p2->commands.size());
}

TEST_F(JitLowerTest, BoundaryTilesSkipUninvolvedBanks)
{
    // A tensor covering only the first tile maps to exactly one bank.
    TdfgGraph g(1, "small");
    NodeId a = g.tensor(0, HyperRect::interval(0, 256));
    NodeId b = g.tensor(1, HyperRect::interval(0, 256));
    g.output(g.compute(BitOp::Add, {a, b}), 2);
    TiledLayout lay({4096}, {256});
    auto prog = jit.lower(g, lay, map);
    ASSERT_EQ(prog->numCompute, 1u);
    EXPECT_EQ(prog->commands[0].banks.size(), 1u);
}

TEST_F(JitLowerTest, RegisterPressurePanicsWithoutSpilling)
{
    // §6 limitation 3: deliberately exceed the wordline slots.
    TdfgGraph g(1, "pressure");
    std::vector<NodeId> live;
    // Chain of moves each needing a fresh slot while all stay live.
    NodeId a = g.tensor(0, HyperRect::interval(0, 1024));
    for (int i = 0; i < 12; ++i)
        live.push_back(g.move(a, 0, i + 1));
    std::vector<NodeId> all = live;
    NodeId acc = all[0];
    for (std::size_t i = 1; i < all.size(); ++i)
        acc = g.compute(BitOp::Add, {acc, all[i]});
    g.output(acc, 1);
    TiledLayout lay({1024}, {256});
    EXPECT_DEATH((void)jit.lower(g, lay, map), "wordline");
}

TEST_F(JitLowerTest, TryLowerReportsOutOfSlotsAsDiagnostic)
{
    // Same register pressure as above, but through the recoverable entry
    // point: no death, a typed error the executor can degrade on.
    TdfgGraph g(1, "pressure");
    std::vector<NodeId> live;
    NodeId a = g.tensor(0, HyperRect::interval(0, 1024));
    for (int i = 0; i < 12; ++i)
        live.push_back(g.move(a, 0, i + 1));
    NodeId acc = live[0];
    for (std::size_t i = 1; i < live.size(); ++i)
        acc = g.compute(BitOp::Add, {acc, live[i]});
    g.output(acc, 1);
    TiledLayout lay({1024}, {256});
    auto res = jit.tryLower(g, lay, map);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().code, ErrCode::OutOfSlots);
    EXPECT_NE(res.error().message.find("wordline"), std::string::npos);
    EXPECT_EQ(jit.stats().lowerings, 0u); // Failures are not counted.
}

TEST_F(JitLowerTest, TryLowerRejectsOversizedMoveDistance)
{
    // A move spanning the whole array extent cannot be expressed as
    // intra-/inter-tile shifts within the bounding rect.
    TdfgGraph g(1, "far_move");
    NodeId a = g.tensor(0, HyperRect::interval(0, 1024));
    g.output(g.move(a, 0, 1024), 1);
    TiledLayout lay({1024}, {256});
    auto res = jit.tryLower(g, lay, map);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().code, ErrCode::UnsupportedMove);
}

TEST_F(JitLowerTest, TryLowerRejectsMoveAlongMissingDim)
{
    TdfgGraph g(2, "bad_dim");
    NodeId a = g.tensor(0, HyperRect::box2(0, 64, 0, 4));
    g.output(g.move(a, 1, 1), 1);
    TiledLayout lay({1024}, {256}); // Rank-1 layout: dim 1 is missing.
    auto res = jit.tryLower(g, lay, map);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().code, ErrCode::UnsupportedMove);
}

TEST(JitNumSlots, TracksElementTypeAndGuardsUnderflow)
{
    SystemConfig cfg = testSystemConfig(); // 256 wordlines.
    EXPECT_EQ(JitCompiler(cfg).numSlots(), 7u); // 256/32 - 1 (scratch).
    cfg.tensor.elemType = DType::Int64;
    EXPECT_EQ(JitCompiler(cfg).numSlots(), 3u);
    cfg.tensor.elemType = DType::Int8;
    EXPECT_EQ(JitCompiler(cfg).numSlots(), 31u);
    // Fewer wordlines than element bits: zero slots, no underflow wrap.
    cfg.tensor.elemType = DType::Fp32;
    cfg.l3.wordlines = 16;
    EXPECT_EQ(JitCompiler(cfg).numSlots(), 0u);
    // A single slot is all scratch: still unusable.
    cfg.l3.wordlines = 32;
    EXPECT_EQ(JitCompiler(cfg).numSlots(), 0u);
}

TEST(OffloadDecision, LargeTensorsGoInMemory)
{
    SystemConfig cfg = defaultSystemConfig();
    TdfgSummary s;
    s.numNodes = 8;
    s.numCompute = 3;
    s.maxTensorElems = 4 << 20; // 4M elements.
    OffloadDecision d = decideOffload(s, cfg);
    EXPECT_TRUE(d.inMemory);
    EXPECT_GT(d.coreCycles, d.inMemCycles);
}

TEST(OffloadDecision, TinyTensorsStayNearMemory)
{
    SystemConfig cfg = defaultSystemConfig();
    TdfgSummary s;
    s.numNodes = 8;
    s.numCompute = 3;
    s.maxTensorElems = 1024; // Small input (Fig 2's small sizes).
    OffloadDecision d = decideOffload(s, cfg);
    EXPECT_FALSE(d.inMemory);
}

TEST(OffloadDecision, PrecompiledJitLowersTheBar)
{
    SystemConfig cfg = defaultSystemConfig();
    TdfgSummary s;
    s.numNodes = 40;
    s.numCompute = 4;
    s.maxTensorElems = 40000;
    OffloadDecision with_jit = decideOffload(s, cfg, false);
    OffloadDecision no_jit = decideOffload(s, cfg, true);
    EXPECT_LT(no_jit.inMemCycles, with_jit.inMemCycles);
}

} // namespace
} // namespace infs
