/**
 * @file
 * Property test for Alg. 2 movement lowering executed on the batched
 * run-length coalesced fabric path (DESIGN.md §10): a tDFG move by
 * `dist` along `dim` must land every element exactly `dist` away — for
 * randomized shapes, tile sizes, and distances, covering intra-tile,
 * inter-tile, and mixed decompositions as well as the coalesced-segment
 * splitting at destination tile boundaries.
 */

#include <gtest/gtest.h>

#include <bit>
#include <optional>
#include <vector>

#include "sim/rng.hh"
#include "uarch/bit_exec.hh"
#include "uarch/system.hh"

namespace infs {
namespace {

unsigned
slotOf(const InMemProgram &prog, ArrayId a)
{
    for (auto &[id, wl] : prog.arraySlots)
        if (id == a)
            return wl;
    infs_panic("array %d has no slot", a);
}

unsigned
outputSlotOf(const InMemProgram &prog, ArrayId a)
{
    for (auto &[id, wl] : prog.outputSlots)
        if (id == a)
            return wl;
    infs_panic("array %d has no output slot", a);
}

TEST(MoveProperty, ShiftMovesExactlyDistRandomized)
{
    SystemConfig cfg = testSystemConfig();
    AddressMap map(cfg.l3);
    JitCompiler jit(cfg);
    Rng rng(21);

    unsigned lowered = 0;
    for (int iter = 0; iter < 40; ++iter) {
        const unsigned nd = 1 + static_cast<unsigned>(rng.next() % 2);
        std::vector<Coord> shape(nd), tsz(nd);
        std::int64_t vol = 1;
        for (unsigned d = 0; d < nd; ++d) {
            shape[d] = 8 + static_cast<Coord>(rng.next() % 56);
            vol *= shape[d];
        }
        for (unsigned d = 0; d < nd; ++d)
            tsz[d] = 2 + static_cast<Coord>(
                             rng.next() % std::min<Coord>(shape[d] - 1, 14));
        const unsigned dim = static_cast<unsigned>(rng.next() % nd);
        // |dist| stays below the tile extent so Alg. 2 can express the
        // move as one intra-tile + one inter-tile shift pair.
        Coord dist = 1 + static_cast<Coord>(rng.next() % tsz[dim]);
        if (rng.next() & 1)
            dist = -dist;

        // out = move(A over the slab that stays in bounds, dim, dist).
        std::vector<Coord> lo(nd, 0), hi(shape);
        if (dist > 0)
            hi[dim] -= dist;
        else
            lo[dim] -= dist;
        if (lo[dim] >= hi[dim])
            continue;
        TdfgGraph g(nd, "move_prop");
        NodeId t = g.tensor(0, HyperRect(lo, hi));
        g.output(g.move(t, dim, dist), 1);

        TiledLayout lay(shape, tsz);
        auto prog_or = jit.tryLower(g, lay, map);
        if (!prog_or)
            continue; // Untileable combination — not under test.
        ++lowered;
        const InMemProgram &prog = **prog_or;

        // Identity coding: element value == its linear lattice index.
        std::vector<float> in(static_cast<std::size_t>(vol)),
            out(static_cast<std::size_t>(vol));
        for (std::size_t i = 0; i < in.size(); ++i)
            in[i] = static_cast<float>(i);
        BitAccurateFabric fab(lay);
        fab.loadArray(in, slotOf(prog, 0));
        fab.execute(prog);
        fab.storeArray(out, outputSlotOf(prog, 1));

        // Every destination point p must hold the source at p - dist
        // along dim — no element lost, duplicated, or off by one.
        std::int64_t dim_stride = 1;
        for (unsigned d = 0; d < dim; ++d)
            dim_stride *= shape[d];
        std::vector<Coord> pt(lo);
        for (;;) {
            std::int64_t src_idx = 0, mul = 1;
            for (unsigned d = 0; d < nd; ++d) {
                src_idx += pt[d] * mul;
                mul *= shape[d];
            }
            const std::int64_t dst_idx = src_idx + dist * dim_stride;
            ASSERT_EQ(out[static_cast<std::size_t>(dst_idx)],
                      static_cast<float>(src_idx))
                << "iter " << iter << " dim " << dim << " dist " << dist;
            unsigned d = 0;
            for (; d < nd; ++d) {
                if (++pt[d] < hi[d])
                    break;
                pt[d] = lo[d];
            }
            if (d >= nd)
                break;
        }
    }
    // The property must have actually been exercised.
    EXPECT_GE(lowered, 20u);
}

} // namespace
} // namespace infs
