#include <gtest/gtest.h>

#include <set>

#include "jit/decompose.hh"
#include "sim/rng.hh"

namespace infs {
namespace {

/** Property: the decomposition exactly partitions the tensor. */
void
expectPartition(const HyperRect &tensor, const std::vector<Coord> &tile)
{
    auto parts = decomposeTensor(tensor, tile);
    // Volumes sum to the original.
    std::int64_t vol = 0;
    for (const HyperRect &p : parts) {
        EXPECT_FALSE(p.empty());
        EXPECT_TRUE(tensor.containsRect(p)) << p.str();
        vol += p.volume();
    }
    EXPECT_EQ(vol, tensor.volume());
    // Pairwise disjoint.
    for (std::size_t i = 0; i < parts.size(); ++i)
        for (std::size_t j = i + 1; j < parts.size(); ++j)
            EXPECT_TRUE(parts[i].intersect(parts[j]).empty())
                << parts[i].str() << " vs " << parts[j].str();
    // Each part either spans full tiles or stays inside one tile row, per
    // dimension: its [lo, hi) in dim d is tile-aligned or within one tile.
    auto floordiv = [](Coord a, Coord b) {
        return a >= 0 ? a / b : -((-a + b - 1) / b);
    };
    for (const HyperRect &p : parts) {
        for (unsigned d = 0; d < p.dims(); ++d) {
            bool aligned = p.lo(d) - floordiv(p.lo(d), tile[d]) * tile[d] ==
                               0 &&
                           p.hi(d) - floordiv(p.hi(d), tile[d]) * tile[d] ==
                               0;
            bool in_one_tile =
                floordiv(p.lo(d), tile[d]) == floordiv(p.hi(d) - 1, tile[d]);
            EXPECT_TRUE(aligned || in_one_tile)
                << p.str() << " dim " << d << " tile " << tile[d];
        }
    }
}

TEST(Decompose, PaperFig9Example)
{
    // A[0,4)x[0,3) with 2x2 tiles decomposes into [0,4)x[0,2) (full tiles
    // 0 and 2) and [0,4)x[2,3) (partial tiles 1 and 3). Note the paper
    // labels the example with dim 0 = rows; we use dim 0 innermost, so the
    // example maps to dims (0, 1) directly.
    auto parts = decomposeTensor(HyperRect::box2(0, 4, 0, 3), {2, 2});
    ASSERT_EQ(parts.size(), 2u);
    std::set<std::string> got{parts[0].str(), parts[1].str()};
    EXPECT_TRUE(got.count("[0,4)x[0,2)"));
    EXPECT_TRUE(got.count("[0,4)x[2,3)"));
}

TEST(Decompose, AlignedTensorIsNotDecomposed)
{
    auto parts = decomposeTensor(HyperRect::box2(0, 8, 0, 8), {4, 4});
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], HyperRect::box2(0, 8, 0, 8));
}

TEST(Decompose, WithinOneTileNoDecomposition)
{
    auto parts = decomposeTensor(HyperRect::interval(5, 7), {8});
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], HyperRect::interval(5, 7));
}

TEST(Decompose, HeadMiddleTail1D)
{
    // [3, 21) with tile 8: head [3,8), middle [8,16), tail [16,21).
    auto parts = decomposeTensor(HyperRect::interval(3, 21), {8});
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], HyperRect::interval(3, 8));
    EXPECT_EQ(parts[1], HyperRect::interval(8, 16));
    EXPECT_EQ(parts[2], HyperRect::interval(16, 21));
}

TEST(Decompose, HeadTailWithoutMiddle)
{
    // [3, 13) with tile 8: head [3,8), tail [8,13); no aligned middle.
    auto parts = decomposeTensor(HyperRect::interval(3, 13), {8});
    ASSERT_EQ(parts.size(), 2u);
    EXPECT_EQ(parts[0], HyperRect::interval(3, 8));
    EXPECT_EQ(parts[1], HyperRect::interval(8, 13));
}

TEST(Decompose, AlignedStartUnalignedEnd)
{
    auto parts = decomposeTensor(HyperRect::interval(8, 21), {8});
    ASSERT_EQ(parts.size(), 2u);
    EXPECT_EQ(parts[0], HyperRect::interval(8, 16));
    EXPECT_EQ(parts[1], HyperRect::interval(16, 21));
}

TEST(Decompose, CrossProductOfDims)
{
    // Both dims head+middle+tail: 3 x 3 = 9 parts.
    auto parts =
        decomposeTensor(HyperRect::box2(1, 17, 2, 19), {8, 8});
    EXPECT_EQ(parts.size(), 9u);
    expectPartition(HyperRect::box2(1, 17, 2, 19), {8, 8});
}

TEST(Decompose, NegativeCoordinates)
{
    // Moved tensors can have negative lattice coordinates.
    auto parts = decomposeTensor(HyperRect::interval(-3, 5), {4});
    expectPartition(HyperRect::interval(-3, 5), {4});
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], HyperRect::interval(-3, -0));
    EXPECT_EQ(parts[1], HyperRect::interval(0, 4));
    EXPECT_EQ(parts[2], HyperRect::interval(4, 5));
}

TEST(Decompose, PartitionPropertyRandomized)
{
    Rng rng(99);
    for (int trial = 0; trial < 50; ++trial) {
        unsigned dims = 1 + static_cast<unsigned>(rng.nextBounded(3));
        std::vector<Coord> lo(dims), hi(dims), tile(dims);
        for (unsigned d = 0; d < dims; ++d) {
            lo[d] = static_cast<Coord>(rng.nextBounded(40)) - 20;
            hi[d] = lo[d] + 1 + static_cast<Coord>(rng.nextBounded(60));
            tile[d] = Coord(1) << rng.nextBounded(5); // 1..16
        }
        expectPartition(HyperRect(lo, hi), tile);
    }
}

TEST(Decompose, EmptyTensorYieldsNothing)
{
    EXPECT_TRUE(decomposeTensor(HyperRect::interval(5, 5), {8}).empty());
}

TEST(Decompose, TryDecomposeReportsRankMismatch)
{
    auto res = tryDecomposeTensor(HyperRect::interval(0, 8), {2, 2});
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().code, ErrCode::LayoutConstraint);
    auto bad_tile = tryDecomposeTensor(HyperRect::interval(0, 8), {0});
    ASSERT_FALSE(bad_tile.ok());
    EXPECT_EQ(bad_tile.error().code, ErrCode::LayoutConstraint);
}

TEST(Decompose, 3DStencilBoundary)
{
    // stencil3d-like shape, unaligned in two dims.
    HyperRect t = HyperRect::box3(0, 64, 1, 63, 1, 15);
    expectPartition(t, {16, 4, 4});
}

} // namespace
} // namespace infs
