/**
 * @file
 * Property and unit tests for the command-stream optimizer (DESIGN.md
 * §13, src/jit/cmdopt.hh). The contract pinned here:
 *
 *  - the optimized stream still passes the full hazard analyzer;
 *  - functional checksums are byte-identical raw vs optimized, and the
 *    fabric agrees with the functional backend on the optimized stream;
 *  - no per-kind command count ever increases;
 *  - replayTiming sim_cycles never increase (rewrites only remove work
 *    or merge same-group commands that already overlapped).
 *
 * The property sweep mirrors test_backend_diff's random generator so a
 * failing seed replays exactly; the unit cases pin the individual
 * rewrite rules (idempotent dedup, in-place exclusion, exact-partition
 * coalescing, async-pending Sync retention).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/verify_cmds.hh"
#include "core/backend.hh"
#include "jit/cmdopt.hh"
#include "jit/jit.hh"
#include "mem/address_map.hh"
#include "sim/rng.hh"
#include "workloads/registry.hh"

namespace infs {
namespace {

constexpr std::int64_t kVolumeCap = 1 << 18;

std::uint64_t
runChecksum(ExecBackendKind kind, const BackendJob &job)
{
    SystemConfig cfg = testSystemConfig();
    return makeBackend(kind, cfg)->runJob(job).checksum;
}

/** Optimized twin of @p job (job.prog untouched). */
BackendJob
optimizedJob(const BackendJob &job, const SystemConfig &cfg,
             const AddressMap &map, CmdStats *stats = nullptr)
{
    auto opt = std::make_shared<InMemProgram>(*job.prog);
    CmdStats st = optimizeCommands(*opt, job.layout, map, cfg);
    if (stats)
        *stats = st;
    BackendJob out;
    out.layout = job.layout;
    out.prog = std::move(opt);
    out.volume = job.volume;
    return out;
}

/** The four-part contract, for any raw job. */
void
expectOptimizerSound(const BackendJob &raw, const std::string &what)
{
    SystemConfig cfg = testSystemConfig();
    AddressMap map(cfg.l3, cfg.noc.memCtrls);
    BackendJob opt = optimizedJob(raw, cfg, map);

    // Hazard-freedom is preserved: the optimizer may never introduce a
    // diagnostic. Random graphs can lower with benign pre-existing ones
    // (empty-tensor commands the generator produces at lattice edges),
    // so the property is "no worse than raw", which for every clean raw
    // stream means the optimized stream is clean too.
    VerifyReport raw_rep =
        verifyCommands(*raw.prog, raw.layout, map, cfg);
    VerifyReport opt_rep =
        verifyCommands(*opt.prog, opt.layout, map, cfg);
    if (raw_rep.clean())
        EXPECT_TRUE(opt_rep.clean()) << what << ": " << opt_rep.str();
    else
        EXPECT_LE(opt_rep.size(), raw_rep.size())
            << what << ": " << opt_rep.str();

    // Bytes: raw and optimized agree, and the bit fabric agrees with the
    // word-level replay on the optimized stream.
    const std::uint64_t raw_sum =
        runChecksum(ExecBackendKind::Functional, raw);
    const std::uint64_t opt_sum =
        runChecksum(ExecBackendKind::Functional, opt);
    EXPECT_EQ(raw_sum, opt_sum) << what;
    EXPECT_EQ(runChecksum(ExecBackendKind::Fabric, opt), opt_sum) << what;

    // Work only shrinks: per-kind counts and replay cycles.
    EXPECT_LE(opt.prog->numIntraShift, raw.prog->numIntraShift) << what;
    EXPECT_LE(opt.prog->numInterShift, raw.prog->numInterShift) << what;
    EXPECT_LE(opt.prog->numCompute, raw.prog->numCompute) << what;
    EXPECT_LE(opt.prog->numBroadcast, raw.prog->numBroadcast) << what;
    EXPECT_LE(opt.prog->numSync, raw.prog->numSync) << what;
    EXPECT_LE(replayTiming(cfg, opt, nullptr).simCycles,
              replayTiming(cfg, raw, nullptr).simCycles)
        << what;
}

/** Raw (cmdOpt off) primary job of a registry scenario, if it plans. */
std::optional<BackendJob>
rawScenarioJob(const char *name)
{
    const BenchScenario *sc = findScenario(name);
    if (sc == nullptr)
        return std::nullopt;
    Workload w = sc->quick();
    SystemConfig cfg = testSystemConfig();
    cfg.cmdOpt = false;
    return planPrimaryJob(w, cfg, nullptr, kVolumeCap);
}

// ---- property sweep ----------------------------------------------------

// Same layered-graph generator as test_backend_diff (fixed seeds replay
// exactly), but diffing raw against optimized instead of backend pairs.
TEST(CmdOptProperty, RandomizedGraphs)
{
    SystemConfig cfg = testSystemConfig();
    cfg.cmdOpt = false; // The JIT must hand us the raw stream.
    AddressMap map(cfg.l3, cfg.noc.memCtrls);
    JitCompiler jit(cfg);
    const Coord n = 1024;
    const std::vector<BitOp> ops = {BitOp::Add, BitOp::Sub, BitOp::Mul,
                                    BitOp::Max, BitOp::Min};
    unsigned lowered = 0;
    for (unsigned g_i = 0; g_i < 10; ++g_i) {
        Rng rng(5000 + g_i);
        TdfgGraph g(1, "cmdopt_rand" + std::to_string(g_i));
        std::vector<NodeId> pool;
        const unsigned n_inputs = 2 + rng.nextBounded(2);
        for (unsigned a = 0; a < n_inputs; ++a)
            pool.push_back(g.tensor(static_cast<ArrayId>(a),
                                    HyperRect::interval(0, n)));
        const unsigned n_ops = 3 + rng.nextBounded(5);
        for (unsigned k = 0; k < n_ops; ++k) {
            NodeId a = pool[rng.nextBounded(pool.size())];
            switch (rng.nextBounded(4)) {
            case 0: {
                NodeId b = pool[rng.nextBounded(pool.size())];
                pool.push_back(g.compute(ops[rng.nextBounded(ops.size())],
                                         {a, b}));
                break;
            }
            case 1:
                pool.push_back(
                    g.compute(ops[rng.nextBounded(ops.size())],
                              {a, g.constant(0.25 * (1 + rng.nextBounded(
                                                          16)))}));
                break;
            case 2: {
                Coord dist = static_cast<Coord>(rng.nextBounded(40)) - 20;
                pool.push_back(g.move(a, 0, dist == 0 ? 1 : dist));
                break;
            }
            default: {
                Coord cnt = 2 + static_cast<Coord>(rng.nextBounded(3));
                pool.push_back(g.broadcast(a, 0, 0, cnt));
                break;
            }
            }
        }
        NodeId out = pool.back();
        if (rng.nextBounded(3) == 0)
            out = g.reduce(pool.back(), BitOp::Add, 0);
        g.output(out, static_cast<ArrayId>(n_inputs));

        TiledLayout lay({n}, {256});
        auto prog_or = jit.tryLower(g, lay, map);
        if (!prog_or)
            continue;
        ++lowered;
        BackendJob raw;
        raw.layout = lay;
        raw.prog = *prog_or;
        raw.volume = n;
        expectOptimizerSound(raw, g.name());
    }
    EXPECT_GE(lowered, 5u) << "random generator mostly unlowerable";
}

// And over every registry scenario that plans a job: the streams the
// executor actually runs.
TEST(CmdOptProperty, AllScenarioJobs)
{
    unsigned planned = 0;
    for (const BenchScenario &sc : benchRegistry()) {
        SCOPED_TRACE(sc.name);
        auto raw = rawScenarioJob(sc.name);
        if (!raw)
            continue;
        ++planned;
        expectOptimizerSound(*raw, sc.name);
    }
    EXPECT_GE(planned, 9u);
}

// ---- scenario-pinned rewrite behavior ---------------------------------

// stencil2d's reduce-style lowering restates moves per subtensor: the
// coalescer must merge them, and every Sync there guards a live
// move-to-compute chain, so none may be elided.
TEST(CmdOptScenario, Stencil2dCoalescesButKeepsSyncs)
{
    auto raw = rawScenarioJob("stencil2d");
    ASSERT_TRUE(raw.has_value());
    SystemConfig cfg = testSystemConfig();
    AddressMap map(cfg.l3, cfg.noc.memCtrls);
    CmdStats st;
    BackendJob opt = optimizedJob(*raw, cfg, map, &st);
    EXPECT_EQ(st.fusedMoves, 5u);
    EXPECT_EQ(st.elidedSyncs, 0u);
    EXPECT_EQ(opt.prog->numSync, raw->prog->numSync);
    EXPECT_LT(opt.prog->commands.size(), raw->prog->commands.size());
}

// dwt2d's even/odd subsampling emits four barriers of which exactly two
// guard live move-to-compute chains: the other two must be elided.
TEST(CmdOptScenario, Dwt2dElidesHalfItsSyncs)
{
    auto raw = rawScenarioJob("dwt2d");
    ASSERT_TRUE(raw.has_value());
    ASSERT_EQ(raw->prog->numSync, 4u);
    SystemConfig cfg = testSystemConfig();
    AddressMap map(cfg.l3, cfg.noc.memCtrls);
    CmdStats st;
    BackendJob opt = optimizedJob(*raw, cfg, map, &st);
    EXPECT_EQ(st.elidedSyncs, 2u);
    EXPECT_EQ(opt.prog->numSync, 2u);
}

// mm_outer's single barrier commits the broadcast its computes consume;
// it is load-bearing and must survive.
TEST(CmdOptScenario, MmOuterKeepsItsSync)
{
    auto raw = rawScenarioJob("mm_outer");
    ASSERT_TRUE(raw.has_value());
    ASSERT_EQ(raw->prog->numSync, 1u);
    SystemConfig cfg = testSystemConfig();
    AddressMap map(cfg.l3, cfg.noc.memCtrls);
    CmdStats st;
    BackendJob opt = optimizedJob(*raw, cfg, map, &st);
    EXPECT_EQ(st.elidedSyncs, 0u);
    EXPECT_EQ(opt.prog->numSync, 1u);
}

// pointnet's gather phase ends with movement nothing consumes in-stream
// plus one barrier guarding a real chain: exactly one of two elides.
TEST(CmdOptScenario, PointnetElidesHalfItsSyncs)
{
    auto raw = rawScenarioJob("pointnet_ssg");
    ASSERT_TRUE(raw.has_value());
    ASSERT_EQ(raw->prog->numSync, 2u);
    SystemConfig cfg = testSystemConfig();
    AddressMap map(cfg.l3, cfg.noc.memCtrls);
    CmdStats st;
    BackendJob opt = optimizedJob(*raw, cfg, map, &st);
    EXPECT_EQ(st.elidedSyncs, 1u);
    EXPECT_EQ(opt.prog->numSync, 1u);
}

// The per-pass switches drive the ablation harness: with syncElision
// off, dwt2d's elidable barriers must survive untouched.
TEST(CmdOptScenario, SyncElisionSwitchedOff)
{
    auto raw = rawScenarioJob("dwt2d");
    ASSERT_TRUE(raw.has_value());
    SystemConfig cfg = testSystemConfig();
    AddressMap map(cfg.l3, cfg.noc.memCtrls);
    InMemProgram prog = *raw->prog;
    CmdOptOptions opts;
    opts.syncElision = false;
    CmdStats st = optimizeCommands(prog, raw->layout, map, cfg, opts);
    EXPECT_EQ(st.elidedSyncs, 0u);
    EXPECT_EQ(prog.numSync, raw->prog->numSync);
    EXPECT_GT(st.fusedMoves, 0u); // The other passes still ran.
}

// ---- hand-crafted single-rule cases -----------------------------------

/** 1-D fixture: 1024 cells in 256-wide tiles, test bank mapping. */
struct CmdOptFixture {
    SystemConfig cfg = testSystemConfig();
    TiledLayout layout{{1024}, {256}};
    AddressMap map{cfg.l3, cfg.noc.memCtrls};

    std::vector<BankId> banksOf(const HyperRect &r) const
    {
        return layout.banksFor(r, map);
    }

    InMemCommand intraShift(unsigned group, Coord lo, Coord hi,
                            Coord dist, unsigned wl_a, unsigned wl_dst)
    {
        InMemCommand c;
        c.kind = CmdKind::IntraShift;
        c.group = group;
        c.tensor = HyperRect::interval(lo, hi);
        c.dim = 0;
        c.maskLo = 0;
        c.maskHi = 256;
        c.intraTileDist = dist;
        c.wlA = wl_a;
        c.wlDst = wl_dst;
        c.banks = banksOf(c.tensor);
        return c;
    }

    InMemCommand interShift(unsigned group, Coord lo, Coord hi,
                            Coord tiles, unsigned wl_a, unsigned wl_dst)
    {
        InMemCommand c;
        c.kind = CmdKind::InterShift;
        c.group = group;
        c.tensor = HyperRect::interval(lo, hi);
        c.dim = 0;
        c.maskLo = 0;
        c.maskHi = 256;
        c.interTileDist = tiles;
        c.wlA = wl_a;
        c.wlDst = wl_dst;
        HyperRect dst = c.tensor.shifted(0, tiles * 256)
                            .intersect(HyperRect::array({1024}));
        c.banks = banksOf(c.tensor.boundingUnion(dst));
        return c;
    }

    InMemCommand compute(unsigned group, Coord lo, Coord hi,
                         unsigned wl_a, unsigned wl_dst,
                         bool in_place_imm = false)
    {
        InMemCommand c;
        c.kind = CmdKind::Compute;
        c.group = group;
        c.tensor = HyperRect::interval(lo, hi);
        c.op = BitOp::Add;
        c.wlA = wl_a;
        c.wlB = wl_a;
        c.wlDst = wl_dst;
        if (in_place_imm) {
            c.useImm = true;
            c.imm = 1.0;
        }
        c.banks = banksOf(c.tensor);
        return c;
    }

    InMemCommand sync()
    {
        InMemCommand c;
        c.kind = CmdKind::Sync;
        return c;
    }

    CmdStats optimize(InMemProgram &prog, const CmdOptOptions &opts = {})
    {
        return optimizeCommands(prog, layout, map, cfg, opts);
    }
};

// A repeated identical broadcast is byte-idempotent: the second copy
// must be removed.
TEST(CmdOptUnit, IdenticalBroadcastDeduped)
{
    CmdOptFixture fx;
    InMemCommand bc;
    bc.kind = CmdKind::BroadcastBl;
    bc.group = 0;
    bc.tensor = HyperRect::interval(0, 1);
    bc.dim = 0;
    bc.bcCount = 4;
    bc.bcDist = 0;
    bc.wlA = 0;
    bc.wlDst = 1;
    bc.banks = fx.banksOf(HyperRect::interval(0, 4));
    InMemCommand bc2 = bc;
    bc2.group = 1;

    InMemProgram prog;
    prog.commands = {bc, bc2};
    prog.recount();
    CmdStats st = fx.optimize(prog);
    EXPECT_EQ(st.dedupedBroadcasts, 1u);
    EXPECT_EQ(prog.commands.size(), 1u);
}

// An intervening write to the broadcast's destination makes re-execution
// observable: nothing may be removed.
TEST(CmdOptUnit, CloberredBroadcastKept)
{
    CmdOptFixture fx;
    InMemCommand bc;
    bc.kind = CmdKind::BroadcastBl;
    bc.group = 0;
    bc.tensor = HyperRect::interval(0, 1);
    bc.dim = 0;
    bc.bcCount = 4;
    bc.bcDist = 0;
    bc.wlA = 0;
    bc.wlDst = 1;
    bc.banks = fx.banksOf(HyperRect::interval(0, 4));
    InMemCommand bc2 = bc;
    bc2.group = 2;

    InMemProgram prog;
    // The compute overwrites wordline 1 over [0, 4): the second
    // broadcast re-populates it and is NOT redundant.
    prog.commands = {bc, fx.compute(1, 0, 4, 0, 1), bc2};
    prog.recount();
    CmdStats st = fx.optimize(prog);
    EXPECT_EQ(st.dedupedBroadcasts, 0u);
    EXPECT_EQ(prog.commands.size(), 3u);
}

// In-place commands (x = f(x)) are never idempotent: two identical
// accumulating computes must both survive.
TEST(CmdOptUnit, InPlaceComputeNeverDeduped)
{
    CmdOptFixture fx;
    InMemProgram prog;
    prog.commands = {fx.compute(0, 0, 256, 0, 0, /*in_place_imm=*/true),
                     fx.compute(1, 0, 256, 0, 0, /*in_place_imm=*/true)};
    prog.recount();
    CmdStats st = fx.optimize(prog);
    EXPECT_EQ(st.dedupedCommands, 0u);
    EXPECT_EQ(prog.commands.size(), 2u);
}

// Two same-group shifts whose rects exactly partition their bounding
// union are one logical move: coalesce into a single wider command.
TEST(CmdOptUnit, AdjacentShiftsCoalesce)
{
    CmdOptFixture fx;
    InMemProgram prog;
    prog.commands = {fx.intraShift(0, 0, 256, 4, 0, 1),
                     fx.intraShift(0, 256, 512, 4, 0, 1)};
    prog.recount();
    CmdStats st = fx.optimize(prog);
    EXPECT_EQ(st.fusedMoves, 1u);
    ASSERT_EQ(prog.commands.size(), 1u);
    EXPECT_EQ(prog.commands[0].tensor, HyperRect::interval(0, 512));
}

// A gap between the windows breaks the exact-partition precondition:
// merging would move cells neither original touched.
TEST(CmdOptUnit, GappedShiftsNotCoalesced)
{
    CmdOptFixture fx;
    InMemProgram prog;
    prog.commands = {fx.intraShift(0, 0, 256, 4, 0, 1),
                     fx.intraShift(0, 512, 768, 4, 0, 1)};
    prog.recount();
    CmdStats st = fx.optimize(prog);
    EXPECT_EQ(st.fusedMoves, 0u);
    EXPECT_EQ(prog.commands.size(), 2u);
}

// Cross-group shifts never merge, however compatible: group order is
// the execution model's dependence carrier.
TEST(CmdOptUnit, CrossGroupShiftsNotCoalesced)
{
    CmdOptFixture fx;
    InMemProgram prog;
    prog.commands = {fx.intraShift(0, 0, 256, 4, 0, 1),
                     fx.intraShift(1, 256, 512, 4, 0, 1)};
    prog.recount();
    CmdStats st = fx.optimize(prog);
    EXPECT_EQ(st.fusedMoves, 0u);
    EXPECT_EQ(prog.commands.size(), 2u);
}

// A barrier with no pending asynchronous movement orders nothing:
// IntraShifts issue synchronously per bank, so this Sync is elided.
TEST(CmdOptUnit, SyncAfterSynchronousMoveElided)
{
    CmdOptFixture fx;
    InMemProgram prog;
    prog.commands = {fx.intraShift(0, 0, 256, 4, 0, 1), fx.sync(),
                     fx.compute(1, 0, 256, 1, 2)};
    prog.recount();
    CmdStats st = fx.optimize(prog);
    EXPECT_EQ(st.elidedSyncs, 1u);
    EXPECT_EQ(prog.numSync, 0u);
}

// The same shape with asynchronous movement (InterShift) and a consumer
// of the moved slot: the barrier carries the RAW edge and must stay.
TEST(CmdOptUnit, SyncGuardingAsyncRawKept)
{
    CmdOptFixture fx;
    InMemProgram prog;
    prog.commands = {fx.interShift(0, 0, 256, 1, 0, 1), fx.sync(),
                     fx.compute(1, 256, 512, 1, 2)};
    prog.recount();
    CmdStats st = fx.optimize(prog);
    EXPECT_EQ(st.elidedSyncs, 0u);
    EXPECT_EQ(prog.numSync, 1u);
}

// Async movement with NO dependent consumer in the stream: the trailing
// commit barrier must still be kept (§5.3 — results only become visible
// to the host at a Sync).
TEST(CmdOptUnit, TrailingCommitSyncKeptWhileAsyncPending)
{
    CmdOptFixture fx;
    InMemProgram prog;
    prog.commands = {fx.interShift(0, 0, 256, 1, 0, 1), fx.sync()};
    prog.recount();
    CmdStats st = fx.optimize(prog);
    EXPECT_EQ(st.elidedSyncs, 0u);
    EXPECT_EQ(prog.numSync, 1u);
}

} // namespace
} // namespace infs
