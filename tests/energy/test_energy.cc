#include <gtest/gtest.h>

#include "energy/energy.hh"

namespace infs {
namespace {

TEST(Energy, ChargesAccumulate)
{
    EnergyAccount acc;
    acc.charge(EnergyEvent::DramAccess, 10);
    acc.charge(EnergyEvent::CoreOp, 1000);
    EXPECT_DOUBLE_EQ(acc.count(EnergyEvent::DramAccess), 10.0);
    EXPECT_DOUBLE_EQ(acc.joules(EnergyEvent::DramAccess),
                     10 * 1300.0 * 1e-12);
    EXPECT_DOUBLE_EQ(acc.totalJoules(),
                     (10 * 1300.0 + 1000 * 15.0) * 1e-12);
}

TEST(Energy, DramDominatesCacheAccessPerByte)
{
    // Sanity on the cost ordering that drives Fig. 18: DRAM line >> L3
    // line >> SRAM row op.
    EnergyCosts c;
    EXPECT_GT(c.of(EnergyEvent::DramAccess), c.of(EnergyEvent::L3Access));
    EXPECT_GT(c.of(EnergyEvent::L3Access),
              c.of(EnergyEvent::SramRowActivate));
    EXPECT_GT(c.of(EnergyEvent::L3Access), c.of(EnergyEvent::L1Access));
}

TEST(Energy, ResetZeroes)
{
    EnergyAccount acc;
    acc.charge(EnergyEvent::NocHopFlit, 5);
    acc.reset();
    EXPECT_DOUBLE_EQ(acc.totalJoules(), 0.0);
}

TEST(Energy, EventNames)
{
    EXPECT_STREQ(energyEventName(EnergyEvent::SramRowActivate),
                 "sram_row_activate");
    EXPECT_STREQ(energyEventName(EnergyEvent::HtreeRowMove),
                 "htree_row_move");
}

TEST(Area, PaperOverheadNumbers)
{
    AreaModel area;
    // §8: 66.75 mm² in-memory + 28.16 mm² near-memory = 6.52% of chip.
    EXPECT_NEAR(area.overheadFraction(), 0.0652, 0.0005);
    EXPECT_DOUBLE_EQ(area.inMemoryMm2, 66.75);
    EXPECT_DOUBLE_EQ(area.nearMemoryMm2, 28.16);
}

} // namespace
} // namespace infs
