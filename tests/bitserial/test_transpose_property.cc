/**
 * @file
 * Property tests for the word-parallel transpose paths (DESIGN.md §10):
 * the chunked bit-transpose in BitAccurateFabric::loadArray/storeArray
 * and the word-level element/range primitives it rests on must round-trip
 * bit-exactly for arbitrary shapes, tile sizes, and alignments — and the
 * bit-serial kernels must stop allocating once their scratch pool is warm.
 */

#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "bitserial/bit_matrix.hh"
#include "bitserial/compute_sram.hh"
#include "sim/rng.hh"
#include "uarch/bit_exec.hh"

namespace infs {
namespace {

TEST(TransposeProperty, ElementReadWriteMatchesBitReference)
{
    Rng rng(11);
    BitMatrix bm(256, 256);
    for (int iter = 0; iter < 500; ++iter) {
        const unsigned bits = 1 + static_cast<unsigned>(rng.next() % 33);
        const unsigned bl = static_cast<unsigned>(rng.next() % 256);
        const unsigned wl = static_cast<unsigned>(rng.next() % (256 - bits));
        const std::uint64_t v =
            rng.next() & ((bits == 64) ? ~0ULL : (1ULL << bits) - 1);
        bm.writeElement(bl, wl, bits, v);
        // Bit-by-bit reference of the transposed format: bit i of the
        // element lives at wordline wl + i of bitline bl.
        for (unsigned i = 0; i < bits; ++i)
            ASSERT_EQ(bm.get(wl + i, bl), (v >> i) & 1ULL);
        ASSERT_EQ(bm.readElement(bl, wl, bits), v);
    }
}

TEST(TransposeProperty, ExtractDepositRoundTripAnyAlignment)
{
    Rng rng(12);
    for (int iter = 0; iter < 300; ++iter) {
        const unsigned nbits = 65 + static_cast<unsigned>(rng.next() % 400);
        BitRow src(nbits), dst(nbits);
        for (unsigned i = 0; i < nbits; ++i) {
            src.set(i, rng.next() & 1);
            dst.set(i, rng.next() & 1);
        }
        const unsigned len = 1 + static_cast<unsigned>(rng.next() % nbits);
        const unsigned lo_s = static_cast<unsigned>(rng.next() %
                                                    (nbits - len + 1));
        const unsigned lo_d = static_cast<unsigned>(rng.next() %
                                                    (nbits - len + 1));
        std::vector<std::uint64_t> buf((len + 63) / 64);
        src.extractTo(buf.data(), lo_s, len);
        const BitRow before = dst;
        dst.depositFrom(buf.data(), lo_d, len);
        for (unsigned i = 0; i < nbits; ++i) {
            const bool expect = (i >= lo_d && i < lo_d + len)
                                    ? src.get(lo_s + (i - lo_d))
                                    : before.get(i);
            ASSERT_EQ(dst.get(i), expect)
                << "bit " << i << " lo_s " << lo_s << " lo_d " << lo_d
                << " len " << len;
        }
    }
}

TEST(TransposeProperty, FillRangeMatchesBitReference)
{
    Rng rng(13);
    for (int iter = 0; iter < 300; ++iter) {
        const unsigned nbits = 1 + static_cast<unsigned>(rng.next() % 500);
        BitRow row(nbits);
        for (unsigned i = 0; i < nbits; ++i)
            row.set(i, rng.next() & 1);
        const unsigned lo = static_cast<unsigned>(rng.next() % (nbits + 1));
        const unsigned hi =
            lo + static_cast<unsigned>(rng.next() % (nbits - lo + 1));
        const bool v = rng.next() & 1;
        const BitRow before = row;
        row.fillRange(lo, hi, v);
        for (unsigned i = 0; i < nbits; ++i)
            ASSERT_EQ(row.get(i),
                      (i >= lo && i < hi) ? v : before.get(i));
    }
}

TEST(TransposeProperty, FabricLoadStoreRoundTripRandomShapes)
{
    // The chunked 64-element bit-transpose must be the exact inverse of
    // itself for any shape/tile combination, including tile sizes that
    // do not divide the shape and runs that straddle 64-bit word edges.
    Rng rng(14);
    for (int iter = 0; iter < 25; ++iter) {
        const unsigned nd = 1 + static_cast<unsigned>(rng.next() % 3);
        std::vector<Coord> shape(nd), tsz(nd);
        std::int64_t vol = 1;
        for (unsigned d = 0; d < nd; ++d) {
            shape[d] = 2 + static_cast<Coord>(rng.next() % (nd > 2 ? 9 : 40));
            vol *= shape[d];
        }
        // Tile volume must fit the 256 bitlines.
        for (unsigned d = 0; d < nd; ++d)
            tsz[d] = 1 + static_cast<Coord>(
                             rng.next() % std::min<Coord>(shape[d], 6));
        TiledLayout lay(shape, tsz);
        BitAccurateFabric fab(lay);

        std::vector<float> in(static_cast<std::size_t>(vol)),
            out(static_cast<std::size_t>(vol));
        for (auto &v : in)
            v = rng.nextFloat(-1e6f, 1e6f);
        fab.loadArray(in, 3);
        fab.storeArray(out, 3);
        for (std::size_t i = 0; i < in.size(); ++i)
            ASSERT_EQ(std::bit_cast<std::uint32_t>(in[i]),
                      std::bit_cast<std::uint32_t>(out[i]))
                << "iter " << iter << " elem " << i;

        // The dense order must be the lattice order: spot-check elements
        // against the per-point accessor.
        for (int probe = 0; probe < 8; ++probe) {
            std::vector<Coord> pt(nd);
            std::size_t idx = 0;
            std::int64_t mul = 1;
            for (unsigned d = 0; d < nd; ++d) {
                pt[d] = static_cast<Coord>(
                    rng.next() % static_cast<std::uint64_t>(shape[d]));
                idx += static_cast<std::size_t>(pt[d] * mul);
                mul *= shape[d];
            }
            ASSERT_EQ(std::bit_cast<std::uint32_t>(fab.element(pt, 3)),
                      std::bit_cast<std::uint32_t>(in[idx]));
        }
    }
}

TEST(TransposeProperty, KernelsStopAllocatingOnceScratchIsWarm)
{
    // The per-bit loops of the word-parallel kernels draw rows from the
    // ComputeSram scratch pool; after a warm-up pass the pool is sized
    // for the widest kernel and steady-state execution performs zero
    // heap allocation (the PR's no-alloc acceptance gate).
    ComputeSram s(256, 256);
    Rng rng(15);
    for (unsigned bl = 0; bl < 256; ++bl) {
        s.writeFloat(bl, 0, rng.nextFloat(-100, 100));
        s.writeFloat(bl, 32, rng.nextFloat(-100, 100));
    }
    const BitRow mask = s.fullMask();
    auto exercise = [&] {
        s.execBinary(BitOp::Add, DType::Fp32, 0, 32, 64, mask);
        s.execBinary(BitOp::Mul, DType::Fp32, 0, 32, 96, mask);
        s.execBinary(BitOp::Sub, DType::Fp32, 0, 32, 128, mask);
        s.execBinary(BitOp::Max, DType::Fp32, 0, 32, 160, mask);
    };
    exercise(); // Warm the scratch pool.
    const std::uint64_t warm = s.scratchAllocs();
    exercise();
    exercise();
    EXPECT_EQ(s.scratchAllocs(), warm)
        << "bit-serial kernels allocated in steady state";
}

} // namespace
} // namespace infs
