#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "bitserial/transpose.hh"
#include "sim/rng.hh"

namespace infs {
namespace {

TEST(Transpose, RoundTripInt32)
{
    ComputeSram sram(256, 256);
    TensorTransposeUnit ttu;
    std::vector<std::uint64_t> in(100), out(100);
    Rng rng(5);
    for (auto &v : in)
        v = rng.next() & 0xffffffffULL;
    ttu.loadTransposed(sram, in, DType::Int32, 0);
    ttu.storeFromTransposed(sram, out, DType::Int32, 0);
    EXPECT_EQ(in, out);
}

TEST(Transpose, RoundTripFp32WithOffsetBitline)
{
    ComputeSram sram(256, 256);
    TensorTransposeUnit ttu;
    std::vector<float> vals{1.0f, -2.5f, 3.25e7f, -0.0f};
    std::vector<std::uint64_t> in, out(vals.size());
    for (float f : vals)
        in.push_back(std::bit_cast<std::uint32_t>(f));
    ttu.loadTransposed(sram, in, DType::Fp32, 64, 10);
    // Check elements landed on the right bitlines.
    EXPECT_FLOAT_EQ(sram.readFloat(10, 64), 1.0f);
    EXPECT_FLOAT_EQ(sram.readFloat(12, 64), 3.25e7f);
    ttu.storeFromTransposed(sram, out, DType::Fp32, 64, 10);
    EXPECT_EQ(in, out);
}

TEST(Transpose, CostScalesWithLines)
{
    TensorTransposeUnit ttu(4);
    // 16 fp32 elements = 64 bytes = 1 line.
    EXPECT_EQ(ttu.conversionCycles(16, DType::Fp32), 4u);
    // 17 elements spill into a second line.
    EXPECT_EQ(ttu.conversionCycles(17, DType::Fp32), 8u);
    // 1M elements = 4MB = 65536 lines.
    EXPECT_EQ(ttu.conversionCycles(1 << 20, DType::Fp32), 65536u * 4u);
}

TEST(Transpose, TransposedDataIsBitSerialComputable)
{
    // End-to-end: transpose in, compute bit-serially, transpose out.
    ComputeSram sram(256, 256);
    TensorTransposeUnit ttu;
    std::vector<std::uint64_t> a{3, 5, 7}, b{10, 20, 30}, c(3);
    ttu.loadTransposed(sram, a, DType::Int32, 0);
    ttu.loadTransposed(sram, b, DType::Int32, 32);
    sram.execBinary(BitOp::Add, DType::Int32, 0, 32, 64, sram.fullMask());
    ttu.storeFromTransposed(sram, c, DType::Int32, 64);
    EXPECT_EQ(c, (std::vector<std::uint64_t>{13, 25, 37}));
}

} // namespace
} // namespace infs
