#include <gtest/gtest.h>

#include "bitserial/bit_matrix.hh"
#include "sim/rng.hh"

namespace infs {
namespace {

TEST(BitRow, SetGetClear)
{
    BitRow r(256);
    EXPECT_FALSE(r.any());
    r.set(0, true);
    r.set(63, true);
    r.set(64, true);
    r.set(255, true);
    EXPECT_TRUE(r.get(0));
    EXPECT_TRUE(r.get(63));
    EXPECT_TRUE(r.get(64));
    EXPECT_TRUE(r.get(255));
    EXPECT_FALSE(r.get(1));
    EXPECT_EQ(r.popcount(), 4u);
    r.clear();
    EXPECT_FALSE(r.any());
}

TEST(BitRow, SetRangeAndStrided)
{
    BitRow r(256);
    r.setRange(10, 20);
    EXPECT_EQ(r.popcount(), 10u);
    EXPECT_TRUE(r.get(10));
    EXPECT_TRUE(r.get(19));
    EXPECT_FALSE(r.get(20));

    BitRow s(256);
    s.setStrided(1, 2, 4); // bits 1, 3, 5, 7
    EXPECT_EQ(s.popcount(), 4u);
    EXPECT_TRUE(s.get(1));
    EXPECT_TRUE(s.get(7));
    EXPECT_FALSE(s.get(2));
}

TEST(BitRow, StridedStopsAtBoundary)
{
    BitRow s(16);
    s.setStrided(10, 4, 100); // Only 10 and 14 fit.
    EXPECT_EQ(s.popcount(), 2u);
}

TEST(BitRow, LogicOps)
{
    BitRow a(128), b(128);
    a.setRange(0, 64);
    b.setRange(32, 96);
    EXPECT_EQ((a & b).popcount(), 32u);
    EXPECT_EQ((a | b).popcount(), 96u);
    EXPECT_EQ((a ^ b).popcount(), 64u);
    EXPECT_EQ((~a).popcount(), 64u);
}

TEST(BitRow, NotMasksTailBits)
{
    BitRow a(100); // Non-multiple of 64 — tail must stay clean.
    BitRow n = ~a;
    EXPECT_EQ(n.popcount(), 100u);
    EXPECT_EQ((~n).popcount(), 0u);
}

TEST(BitRow, ShiftUpDown)
{
    BitRow r(256);
    r.set(0, true);
    r.set(100, true);
    BitRow up = r.shiftedUp(3);
    EXPECT_TRUE(up.get(3));
    EXPECT_TRUE(up.get(103));
    EXPECT_EQ(up.popcount(), 2u);
    BitRow down = up.shiftedDown(3);
    EXPECT_TRUE(down == r);
}

TEST(BitRow, ShiftDropsBitsAtEdges)
{
    BitRow r(256);
    r.set(255, true);
    EXPECT_EQ(r.shiftedUp(1).popcount(), 0u);
    r.clear();
    r.set(0, true);
    EXPECT_EQ(r.shiftedDown(1).popcount(), 0u);
}

TEST(BitRow, ShiftAcrossWordBoundary)
{
    BitRow r(256);
    r.set(60, true);
    BitRow up = r.shiftedUp(10);
    EXPECT_TRUE(up.get(70));
    EXPECT_EQ(up.popcount(), 1u);
    BitRow down = BitRow(256);
    down.set(70, true);
    EXPECT_TRUE(down.shiftedDown(10).get(60));
}

TEST(BitRow, ShiftByWholeRowIsEmpty)
{
    BitRow r(128);
    r.setRange(0, 128);
    EXPECT_EQ(r.shiftedUp(128).popcount(), 0u);
    EXPECT_EQ(r.shiftedDown(500).popcount(), 0u);
}

TEST(BitMatrix, ElementRoundTrip)
{
    BitMatrix m(256, 256);
    m.writeElement(5, 0, 32, 0xdeadbeefULL);
    EXPECT_EQ(m.readElement(5, 0, 32), 0xdeadbeefULL);
    // Neighbouring bitlines untouched.
    EXPECT_EQ(m.readElement(4, 0, 32), 0u);
    EXPECT_EQ(m.readElement(6, 0, 32), 0u);
}

TEST(BitMatrix, ElementsArePlacedLsbFirst)
{
    BitMatrix m(64, 8);
    m.writeElement(3, 10, 8, 0b10000001);
    EXPECT_TRUE(m.get(10, 3));   // LSB at the base wordline.
    EXPECT_TRUE(m.get(17, 3));   // MSB at base + 7.
    EXPECT_FALSE(m.get(11, 3));
}

TEST(BitMatrix, MaskedWriteOnlyTouchesMask)
{
    BitMatrix m(4, 64);
    BitRow ones(64);
    ones.setRange(0, 64);
    BitRow mask(64);
    mask.setRange(0, 32);
    m.writeMasked(0, ones, mask);
    EXPECT_EQ(m.row(0).popcount(), 32u);
    // Now clear via mask of upper half; lower half persists.
    BitRow zeros(64);
    BitRow hi(64);
    hi.setRange(32, 64);
    m.writeMasked(0, zeros, hi);
    EXPECT_EQ(m.row(0).popcount(), 32u);
}

TEST(BitMatrix, RandomElementRoundTrip)
{
    BitMatrix m(256, 256);
    Rng rng(77);
    for (int i = 0; i < 200; ++i) {
        unsigned bl = static_cast<unsigned>(rng.nextBounded(256));
        unsigned wl = static_cast<unsigned>(rng.nextBounded(256 - 32));
        std::uint64_t v = rng.next() & 0xffffffffULL;
        m.writeElement(bl, wl, 32, v);
        EXPECT_EQ(m.readElement(bl, wl, 32), v);
    }
}

} // namespace
} // namespace infs
