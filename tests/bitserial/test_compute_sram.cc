#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "bitserial/compute_sram.hh"
#include "sim/rng.hh"

namespace infs {
namespace {

class ComputeSramTest : public ::testing::Test
{
  protected:
    ComputeSramTest() : sram(256, 256), mask(sram.fullMask()) {}

    void
    fillInt32(unsigned wl, const std::vector<std::int32_t> &vals)
    {
        for (unsigned i = 0; i < vals.size(); ++i)
            sram.writeElement(i, wl, DType::Int32,
                              static_cast<std::uint32_t>(vals[i]));
    }

    std::int32_t
    readInt32(unsigned bl, unsigned wl)
    {
        return static_cast<std::int32_t>(
            static_cast<std::uint32_t>(sram.readElement(bl, wl,
                                                        DType::Int32)));
    }

    ComputeSram sram;
    BitRow mask;
};

TEST_F(ComputeSramTest, BitSerialInt32Add)
{
    std::vector<std::int32_t> a{1, -1, 100, -100, 0x7fffffff, 0, 12345};
    std::vector<std::int32_t> b{2, 1, -300, -5, 1, 0, 54321};
    fillInt32(0, a);
    fillInt32(32, b);
    Tick cost = sram.execBinary(BitOp::Add, DType::Int32, 0, 32, 64, mask);
    EXPECT_EQ(cost, 32u); // Eq. 1: int32 add latency = 32 cycles.
    for (unsigned i = 0; i < a.size(); ++i)
        EXPECT_EQ(readInt32(i, 64),
                  static_cast<std::int32_t>(
                      static_cast<std::uint32_t>(a[i]) +
                      static_cast<std::uint32_t>(b[i])))
            << "lane " << i;
}

TEST_F(ComputeSramTest, BitSerialInt32Sub)
{
    std::vector<std::int32_t> a{10, -10, 0, 7, -1000000};
    std::vector<std::int32_t> b{3, -20, 5, 7, 1};
    fillInt32(0, a);
    fillInt32(32, b);
    sram.execBinary(BitOp::Sub, DType::Int32, 0, 32, 64, mask);
    for (unsigned i = 0; i < a.size(); ++i)
        EXPECT_EQ(readInt32(i, 64), a[i] - b[i]) << "lane " << i;
}

TEST_F(ComputeSramTest, BitSerialInt32MulMatchesCSemantics)
{
    std::vector<std::int32_t> a{3, -4, 12345, 0, 65536, -7};
    std::vector<std::int32_t> b{5, 6, 6789, 99, 65536, -8};
    fillInt32(0, a);
    fillInt32(32, b);
    Tick cost = sram.execBinary(BitOp::Mul, DType::Int32, 0, 32, 64, mask);
    EXPECT_EQ(cost, 32u * 32u + 5u * 32u); // n^2 + 5n (§5.2).
    for (unsigned i = 0; i < a.size(); ++i)
        EXPECT_EQ(readInt32(i, 64),
                  static_cast<std::int32_t>(
                      static_cast<std::uint32_t>(a[i]) *
                      static_cast<std::uint32_t>(b[i])))
            << "lane " << i;
}

TEST_F(ComputeSramTest, RandomizedIntAddMulAgainstScalar)
{
    Rng rng(31);
    std::vector<std::int32_t> a(256), b(256);
    for (unsigned i = 0; i < 256; ++i) {
        a[i] = static_cast<std::int32_t>(rng.next());
        b[i] = static_cast<std::int32_t>(rng.next());
    }
    fillInt32(0, a);
    fillInt32(32, b);
    sram.execBinary(BitOp::Add, DType::Int32, 0, 32, 64, mask);
    sram.execBinary(BitOp::Mul, DType::Int32, 0, 32, 96, mask);
    for (unsigned i = 0; i < 256; ++i) {
        EXPECT_EQ(static_cast<std::uint32_t>(readInt32(i, 64)),
                  static_cast<std::uint32_t>(a[i]) +
                      static_cast<std::uint32_t>(b[i]));
        EXPECT_EQ(static_cast<std::uint32_t>(readInt32(i, 96)),
                  static_cast<std::uint32_t>(a[i]) *
                      static_cast<std::uint32_t>(b[i]));
    }
}

TEST_F(ComputeSramTest, SignedLessThanAndMax)
{
    std::vector<std::int32_t> a{1, -5, 100, -100, 0, 0x7fffffff, -2147483648};
    std::vector<std::int32_t> b{2, -6, 100, 100, 0, -1, 2147483647};
    fillInt32(0, a);
    fillInt32(32, b);
    sram.execBinary(BitOp::CmpLt, DType::Int32, 0, 32, 64, mask);
    for (unsigned i = 0; i < a.size(); ++i)
        EXPECT_EQ(sram.bits().get(64, i), a[i] < b[i]) << "lane " << i;

    sram.execBinary(BitOp::Max, DType::Int32, 0, 32, 96, mask);
    sram.execBinary(BitOp::Min, DType::Int32, 0, 32, 128, mask);
    for (unsigned i = 0; i < a.size(); ++i) {
        EXPECT_EQ(readInt32(i, 96), std::max(a[i], b[i])) << "lane " << i;
        EXPECT_EQ(readInt32(i, 128), std::min(a[i], b[i])) << "lane " << i;
    }
}

TEST_F(ComputeSramTest, MaskLimitsLanes)
{
    std::vector<std::int32_t> a{1, 1, 1, 1};
    std::vector<std::int32_t> b{2, 2, 2, 2};
    fillInt32(0, a);
    fillInt32(32, b);
    BitRow half(256);
    half.setRange(0, 2);
    sram.execBinary(BitOp::Add, DType::Int32, 0, 32, 64, half);
    EXPECT_EQ(readInt32(0, 64), 3);
    EXPECT_EQ(readInt32(1, 64), 3);
    EXPECT_EQ(readInt32(2, 64), 0); // Untouched lanes stay zero.
}

TEST_F(ComputeSramTest, Fp32AddMulMax)
{
    std::vector<float> a{1.5f, -2.25f, 1e10f, 0.0f, 3.14159f};
    std::vector<float> b{2.5f, 2.25f, 1e10f, -0.5f, 2.71828f};
    for (unsigned i = 0; i < a.size(); ++i) {
        sram.writeFloat(i, 0, a[i]);
        sram.writeFloat(i, 32, b[i]);
    }
    Tick add_cost = sram.execBinary(BitOp::Add, DType::Fp32, 0, 32, 64, mask);
    Tick mul_cost = sram.execBinary(BitOp::Mul, DType::Fp32, 0, 32, 96, mask);
    sram.execBinary(BitOp::Max, DType::Fp32, 0, 32, 128, mask);
    EXPECT_EQ(add_cost, sram.latency().fp32Add);
    EXPECT_EQ(mul_cost, sram.latency().fp32Mul);
    for (unsigned i = 0; i < a.size(); ++i) {
        EXPECT_FLOAT_EQ(sram.readFloat(i, 64), a[i] + b[i]);
        EXPECT_FLOAT_EQ(sram.readFloat(i, 96), a[i] * b[i]);
        EXPECT_FLOAT_EQ(sram.readFloat(i, 128), std::max(a[i], b[i]));
    }
}

TEST_F(ComputeSramTest, ReluClampsNegativesRowParallel)
{
    std::vector<float> a{1.5f, -2.25f, 0.0f, -1e-20f, 7.0f};
    for (unsigned i = 0; i < a.size(); ++i)
        sram.writeFloat(i, 0, a[i]);
    sram.execUnary(BitOp::Relu, DType::Fp32, 0, 32, mask);
    for (unsigned i = 0; i < a.size(); ++i)
        EXPECT_FLOAT_EQ(sram.readFloat(i, 32), std::max(a[i], 0.0f));
}

TEST_F(ComputeSramTest, SelectPicksPerLane)
{
    std::vector<std::int32_t> a{10, 20, 30};
    std::vector<std::int32_t> b{-1, -2, -3};
    fillInt32(0, a);
    fillInt32(32, b);
    BitRow pred(256);
    pred.set(1, true); // Only lane 1 takes a.
    sram.bits().row(100) = pred;
    sram.execSelect(DType::Int32, 100, 0, 32, 64, mask);
    EXPECT_EQ(readInt32(0, 64), -1);
    EXPECT_EQ(readInt32(1, 64), 20);
    EXPECT_EQ(readInt32(2, 64), -3);
}

TEST_F(ComputeSramTest, ImmediateBroadcast)
{
    sram.writeImmediate(DType::Int32, 0x12345678u, 0, mask);
    for (unsigned bl : {0u, 17u, 255u})
        EXPECT_EQ(sram.readElement(bl, 0, DType::Int32), 0x12345678u);
}

TEST_F(ComputeSramTest, BinaryImmAddsConstant)
{
    std::vector<std::int32_t> a{5, 10, 0};
    fillInt32(0, a);
    sram.execBinaryImm(BitOp::Add, DType::Int32, 0, 7, 64, mask);
    EXPECT_EQ(readInt32(0, 64), 12);
    EXPECT_EQ(readInt32(1, 64), 17);
    EXPECT_EQ(readInt32(2, 64), 7);
}

TEST_F(ComputeSramTest, IntraArrayShiftMovesElements)
{
    std::vector<std::int32_t> a{11, 22, 33, 44};
    fillInt32(0, a);
    BitRow m(256);
    m.setRange(0, 4);
    Tick cost = sram.shift(DType::Int32, 0, 32, 1, m);
    EXPECT_EQ(cost, 32u); // One cycle per bit row.
    EXPECT_EQ(readInt32(1, 32), 11);
    EXPECT_EQ(readInt32(2, 32), 22);
    EXPECT_EQ(readInt32(4, 32), 44);
    EXPECT_EQ(readInt32(0, 32), 0); // Nothing shifted into lane 0.
}

TEST_F(ComputeSramTest, ShiftNegativeDirection)
{
    std::vector<std::int32_t> a{11, 22, 33, 44};
    fillInt32(0, a);
    BitRow m(256);
    m.setRange(0, 4);
    sram.shift(DType::Int32, 0, 32, -2, m);
    EXPECT_EQ(readInt32(0, 32), 33);
    EXPECT_EQ(readInt32(1, 32), 44);
}

TEST_F(ComputeSramTest, ShiftDiscardsBeyondArray)
{
    BitRow m(256);
    m.setRange(254, 256);
    sram.writeElement(254, 0, DType::Int32, 7);
    sram.writeElement(255, 0, DType::Int32, 9);
    sram.shift(DType::Int32, 0, 32, 2, m);
    // 254 -> discarded would be 256; only 254+2=256 OOB, 255+2 OOB too...
    // Actually 254+2 = 256 (out), 255+2 = 257 (out): nothing lands.
    for (unsigned bl = 0; bl < 256; ++bl)
        EXPECT_EQ(sram.readElement(bl, 32, DType::Int32), 0u);
}

TEST_F(ComputeSramTest, BroadcastOneToMany)
{
    sram.writeElement(3, 0, DType::Int32, 0xabcdu);
    BitRow m(256);
    m.setRange(0, 8);
    sram.broadcast(DType::Int32, 3, 0, 32, m);
    for (unsigned bl = 0; bl < 8; ++bl)
        EXPECT_EQ(sram.readElement(bl, 32, DType::Int32), 0xabcdu);
    EXPECT_EQ(sram.readElement(8, 32, DType::Int32), 0u);
}

TEST_F(ComputeSramTest, StatsCountActivations)
{
    std::vector<std::int32_t> a{1};
    fillInt32(0, a);
    fillInt32(32, a);
    sram.resetStats();
    sram.execBinary(BitOp::Add, DType::Int32, 0, 32, 64, mask);
    // 32 bit-steps: 2 reads + 1 write each.
    EXPECT_EQ(sram.stats().rowReads, 64u);
    EXPECT_EQ(sram.stats().rowWrites, 32u);
    EXPECT_EQ(sram.stats().opCount, 1u);
}

} // namespace
} // namespace infs
