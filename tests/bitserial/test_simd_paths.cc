/**
 * @file
 * Differential certification of the SIMD dispatch layer (DESIGN.md §14):
 * every kernel table reachable on this host — Off, Portable, and the
 * native one (AVX2 on x86, NEON on arm) — must be bit-identical to the
 * portable table at every level: raw row kernels, the 32x32 transpose,
 * the 64-lane fp32 block ops, ComputeSram's fp path (blocked vs legacy),
 * and whole lowered-job checksums on the fabric backend. The same binary
 * re-certifies any single path when ctest runs under a forced INFS_SIMD
 * (scripts/check.sh --simd), because InfinitySystem resolves Auto from
 * the environment.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "bitserial/compute_sram.hh"
#include "bitserial/simd.hh"
#include "core/backend.hh"
#include "sim/rng.hh"
#include "workloads/registry.hh"

namespace infs {
namespace {

/** Every ISA whose table can execute on this host. Portable is listed
 * first so differential loops can treat it as the reference. */
std::vector<SimdIsa>
reachableIsas()
{
    std::vector<SimdIsa> out{SimdIsa::Portable, SimdIsa::Off};
    for (SimdIsa isa : {SimdIsa::Avx2, SimdIsa::Neon})
        if (simd::available(isa))
            out.push_back(isa);
    return out;
}

/** Restores the process-global kernel table after each test so forcing
 * an ISA here cannot leak into later tests in the same binary. */
class SimdPathTest : public ::testing::Test
{
  protected:
    SimdPathTest() : saved_(simd::activeIsa()) {}
    ~SimdPathTest() override { simd::setActive(saved_); }

  private:
    SimdIsa saved_;
};

std::vector<std::uint64_t>
randomWords(Rng &rng, std::size_t n)
{
    std::vector<std::uint64_t> v(n);
    for (auto &w : v)
        w = rng.next();
    return v;
}

TEST_F(SimdPathTest, RowKernelsMatchPortable)
{
    const simd::SimdKernels &ref = simd::kernelsFor(SimdIsa::Portable);
    // Odd word counts exercise every vector-tail path.
    for (std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{8},
                          std::size_t{33}}) {
        Rng rng(0x51D0 + n);
        const auto a = randomWords(rng, n);
        const auto b = randomWords(rng, n);
        const auto c = randomWords(rng, n);
        for (SimdIsa isa : reachableIsas()) {
            SCOPED_TRACE(std::string(simdIsaName(isa)) + " n=" +
                         std::to_string(n));
            const simd::SimdKernels &k = simd::kernelsFor(isa);

            auto sum_r = a, carry_r = c, sum_k = a, carry_k = c;
            ref.rowFullAdder(sum_r.data(), b.data(), carry_r.data(), n);
            k.rowFullAdder(sum_k.data(), b.data(), carry_k.data(), n);
            EXPECT_EQ(sum_k, sum_r);
            EXPECT_EQ(carry_k, carry_r);

            auto maj_r = c, maj_k = c;
            ref.rowMaj(maj_r.data(), a.data(), b.data(), n);
            k.rowMaj(maj_k.data(), a.data(), b.data(), n);
            EXPECT_EQ(maj_k, maj_r);

            std::vector<std::uint64_t> sel_r(n), sel_k(n);
            ref.rowSelect(sel_r.data(), a.data(), b.data(), c.data(), n);
            k.rowSelect(sel_k.data(), a.data(), b.data(), c.data(), n);
            EXPECT_EQ(sel_k, sel_r);

            auto mrg_r = a, mrg_k = a;
            ref.rowMergeMasked(mrg_r.data(), b.data(), c.data(), n);
            k.rowMergeMasked(mrg_k.data(), b.data(), c.data(), n);
            EXPECT_EQ(mrg_k, mrg_r);

            std::vector<std::uint64_t> and_r(n), and_k(n);
            ref.rowAssignAnd(and_r.data(), a.data(), b.data(), n);
            k.rowAssignAnd(and_k.data(), a.data(), b.data(), n);
            EXPECT_EQ(and_k, and_r);

            std::vector<std::uint64_t> na_r(n), na_k(n);
            ref.rowNotAnd(na_r.data(), a.data(), b.data(), n);
            k.rowNotAnd(na_k.data(), a.data(), b.data(), n);
            EXPECT_EQ(na_k, na_r);

            auto acc_r = a, acc_k = a;
            ref.rowAnd(acc_r.data(), b.data(), n);
            k.rowAnd(acc_k.data(), b.data(), n);
            ref.rowOr(acc_r.data(), c.data(), n);
            k.rowOr(acc_k.data(), c.data(), n);
            ref.rowXor(acc_r.data(), b.data(), n);
            k.rowXor(acc_k.data(), b.data(), n);
            EXPECT_EQ(acc_k, acc_r);
        }
    }
}

TEST_F(SimdPathTest, Transpose32IsExactAndMatchesPortable)
{
    Rng rng(0x7245);
    std::uint32_t in[32], ref_out[32];
    for (auto &w : in)
        w = static_cast<std::uint32_t>(rng.next());
    simd::kernelsFor(SimdIsa::Portable).transpose32(in, ref_out);
    // Reference semantics: out[c] bit r == in[r] bit c, LSB first.
    for (unsigned r = 0; r < 32; ++r)
        for (unsigned c = 0; c < 32; ++c)
            ASSERT_EQ((ref_out[c] >> r) & 1u, (in[r] >> c) & 1u)
                << "r=" << r << " c=" << c;
    for (SimdIsa isa : reachableIsas()) {
        SCOPED_TRACE(simdIsaName(isa));
        const simd::SimdKernels &k = simd::kernelsFor(isa);
        std::uint32_t out[32], back[32];
        k.transpose32(in, out);
        for (unsigned i = 0; i < 32; ++i)
            EXPECT_EQ(out[i], ref_out[i]) << "plane " << i;
        k.transpose32(out, back);
        for (unsigned i = 0; i < 32; ++i)
            EXPECT_EQ(back[i], in[i]) << "round trip word " << i;
    }
}

TEST_F(SimdPathTest, LanesPlanesRoundTrip)
{
    Rng rng(0xB10C);
    std::uint32_t lanes[64];
    for (auto &l : lanes)
        l = static_cast<std::uint32_t>(rng.next());
    for (SimdIsa isa : reachableIsas()) {
        SCOPED_TRACE(simdIsaName(isa));
        const simd::SimdKernels &k = simd::kernelsFor(isa);
        std::uint64_t planes[32];
        std::uint32_t back[64];
        simd::lanesToPlanes(k, lanes, planes);
        simd::planesToLanes(k, planes, back);
        for (unsigned i = 0; i < 64; ++i)
            EXPECT_EQ(back[i], lanes[i]) << "lane " << i;
    }
}

/** fp32 bit patterns spanning the awkward corners: NaN payloads, signed
 * zeros, infinities, denormals — the lanes where vector min/max and
 * compare semantics classically diverge from scalar C. */
std::vector<std::uint32_t>
awkwardFloats(Rng &rng, unsigned n)
{
    std::vector<std::uint32_t> v{
        std::bit_cast<std::uint32_t>(0.0f),
        std::bit_cast<std::uint32_t>(-0.0f),
        std::bit_cast<std::uint32_t>(1.0f),
        std::bit_cast<std::uint32_t>(-2.5f),
        std::bit_cast<std::uint32_t>(
            std::numeric_limits<float>::infinity()),
        std::bit_cast<std::uint32_t>(
            -std::numeric_limits<float>::infinity()),
        std::bit_cast<std::uint32_t>(
            std::numeric_limits<float>::quiet_NaN()),
        0x7f800001u, // Signaling-NaN pattern.
        0x00000001u, // Smallest denormal.
        0x807fffffu, // Largest negative denormal.
    };
    while (v.size() < n)
        v.push_back(static_cast<std::uint32_t>(rng.next()));
    return v;
}

TEST_F(SimdPathTest, FpLanesAndLtMaskMatchPortable)
{
    Rng rng(0xF9);
    const auto a = awkwardFloats(rng, 64);
    const auto b = awkwardFloats(rng, 64);
    const simd::SimdKernels &ref = simd::kernelsFor(SimdIsa::Portable);
    for (SimdIsa isa : reachableIsas()) {
        SCOPED_TRACE(simdIsaName(isa));
        const simd::SimdKernels &k = simd::kernelsFor(isa);
        for (simd::FpOp op :
             {simd::FpOp::Add, simd::FpOp::Sub, simd::FpOp::Mul,
              simd::FpOp::Div, simd::FpOp::Max, simd::FpOp::Min}) {
            std::uint32_t r_ref[64], r_k[64];
            ref.fpLanes(op, a.data(), b.data(), r_ref, 64);
            k.fpLanes(op, a.data(), b.data(), r_k, 64);
            for (unsigned i = 0; i < 64; ++i)
                EXPECT_EQ(r_k[i], r_ref[i])
                    << "op " << static_cast<int>(op) << " lane " << i;
        }
        // Partial lane counts exercise the tail masking.
        for (unsigned n : {1u, 17u, 64u})
            EXPECT_EQ(k.fpLtMask(a.data(), b.data(), n),
                      ref.fpLtMask(a.data(), b.data(), n))
                << "n=" << n;
    }
}

void
expectStatsEqual(const SramOpStats &got, const SramOpStats &want)
{
    EXPECT_EQ(got.rowReads, want.rowReads);
    EXPECT_EQ(got.rowWrites, want.rowWrites);
    EXPECT_EQ(got.htreeRowMoves, want.htreeRowMoves);
    EXPECT_EQ(got.opCount, want.opCount);
}

/**
 * ComputeSram fp32 compute under every ISA, including Off (the legacy
 * per-element path with blockedFp disabled): result bit patterns, cycle
 * costs, and SramOpStats must all be identical to the portable run.
 */
TEST_F(SimdPathTest, ComputeSramFp32PathsAreBitIdentical)
{
    struct Run {
        std::vector<std::uint64_t> bits;
        std::vector<Tick> costs;
        SramOpStats stats;
    };
    Rng rng(0x5FA3);
    const auto a = awkwardFloats(rng, 100);
    const auto b = awkwardFloats(rng, 100);

    auto run_with = [&](SimdIsa isa) {
        simd::setActive(isa);
        ComputeSram sram(256, 128);
        BitRow mask = sram.fullMask();
        // A partial mask too: the blocked path must merge untouched
        // lanes exactly as the legacy path leaves them.
        BitRow half = mask;
        for (unsigned i = 0; i < sram.bitlines(); i += 2)
            half.set(i, false);
        for (unsigned i = 0; i < sram.bitlines(); ++i) {
            sram.writeElement(i, 0, DType::Fp32, a[i % a.size()]);
            sram.writeElement(i, 32, DType::Fp32, b[i % b.size()]);
        }
        Run r;
        for (BitOp op : {BitOp::Add, BitOp::Sub, BitOp::Mul, BitOp::Div,
                         BitOp::Max, BitOp::Min})
            r.costs.push_back(sram.execBinary(op, DType::Fp32, 0, 32, 64,
                                              op == BitOp::Mul ? half
                                                               : mask));
        r.costs.push_back(
            sram.execBinary(BitOp::CmpLt, DType::Fp32, 0, 32, 96, mask));
        for (unsigned i = 0; i < sram.bitlines(); ++i) {
            r.bits.push_back(sram.readElement(i, 64, DType::Fp32));
            r.bits.push_back(sram.readElement(i, 96, DType::Fp32));
        }
        r.stats = sram.stats();
        return r;
    };

    const Run ref = run_with(SimdIsa::Portable);
    for (SimdIsa isa : reachableIsas()) {
        SCOPED_TRACE(simdIsaName(isa));
        Run got = run_with(isa);
        EXPECT_EQ(got.bits, ref.bits);
        EXPECT_EQ(got.costs, ref.costs);
        expectStatsEqual(got.stats, ref.stats);
    }
}

/**
 * Whole-job differential: lowered scenario programs run on the fabric
 * backend under every reachable ISA must reproduce the portable
 * checksum byte for byte and the same sim_cycles (timing never depends
 * on the host ISA).
 */
TEST_F(SimdPathTest, FabricJobChecksumsIsaInvariant)
{
    constexpr std::int64_t kVolumeCap = 1 << 16;
    SystemConfig cfg = testSystemConfig();
    for (const char *name : {"vec_add", "array_sum", "dwt2d"}) {
        SCOPED_TRACE(name);
        const BenchScenario *sc = findScenario(name);
        ASSERT_NE(sc, nullptr);
        auto job = planPrimaryJob(sc->quick(), cfg, nullptr, kVolumeCap);
        if (!job)
            continue;
        simd::setActive(SimdIsa::Portable);
        BackendResult ref =
            makeBackend(ExecBackendKind::Fabric, cfg)->runJob(*job);
        for (SimdIsa isa : reachableIsas()) {
            SCOPED_TRACE(simdIsaName(isa));
            simd::setActive(isa);
            BackendResult got =
                makeBackend(ExecBackendKind::Fabric, cfg)->runJob(*job);
            EXPECT_EQ(got.checksum, ref.checksum);
            EXPECT_EQ(got.simCycles, ref.simCycles);
        }
    }
}

} // namespace
} // namespace infs
