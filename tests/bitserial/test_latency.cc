#include <gtest/gtest.h>

#include "bitserial/latency.hh"

namespace infs {
namespace {

TEST(Latency, IntAddIsLinearInWidth)
{
    LatencyTable lat;
    EXPECT_EQ(lat.opCycles(BitOp::Add, DType::Int8), 8u);
    EXPECT_EQ(lat.opCycles(BitOp::Add, DType::Int16), 16u);
    EXPECT_EQ(lat.opCycles(BitOp::Add, DType::Int32), 32u);
    EXPECT_EQ(lat.opCycles(BitOp::Add, DType::Int64), 64u);
}

TEST(Latency, IntMulIsQuadratic)
{
    LatencyTable lat;
    // n^2 + 5n per §5.2.
    EXPECT_EQ(lat.opCycles(BitOp::Mul, DType::Int32), 32u * 32u + 5u * 32u);
    EXPECT_EQ(lat.opCycles(BitOp::Mul, DType::Int8), 8u * 8u + 5u * 8u);
}

TEST(Latency, Fp32UsesCalibratedConstants)
{
    LatencyTable lat;
    EXPECT_EQ(lat.opCycles(BitOp::Add, DType::Fp32), lat.fp32Add);
    EXPECT_EQ(lat.opCycles(BitOp::Mul, DType::Fp32), lat.fp32Mul);
    EXPECT_EQ(lat.opCycles(BitOp::Max, DType::Fp32), lat.fp32Max);
    // fp32 mul costs more than int32 mul's bit-serial shift-add.
    EXPECT_GT(lat.opCycles(BitOp::Div, DType::Fp32),
              lat.opCycles(BitOp::Mul, DType::Fp32));
}

TEST(Latency, DTypeWidths)
{
    EXPECT_EQ(dtypeBits(DType::Fp32), 32u);
    EXPECT_EQ(dtypeBytes(DType::Int64), 8u);
    EXPECT_EQ(dtypeBytes(DType::Int8), 1u);
}

TEST(Latency, IntraShiftIsOneCyclePerBit)
{
    LatencyTable lat;
    EXPECT_EQ(lat.intraShiftCycles(DType::Fp32), 32u);
    EXPECT_EQ(lat.intraShiftCycles(DType::Int8), 8u);
}

} // namespace
} // namespace infs
