/**
 * @file
 * Functional validation: each workload's tDFG/interpreter execution must
 * match its independent scalar reference implementation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/executor.hh"
#include "workloads/pointnet.hh"
#include "workloads/workloads.hh"

namespace infs {
namespace {

/** Run @p w functionally and compare every array against the reference. */
void
expectFunctionalMatch(const Workload &w, double tol = 1e-3)
{
    // Functional path (builder + interpreter).
    InfinitySystem sys(testSystemConfig());
    Executor exec(sys, Paradigm::InfS);
    ArrayStore got;
    exec.run(w, &got);

    // Independent scalar reference.
    ArrayStore want;
    w.setup(want);
    ASSERT_TRUE(static_cast<bool>(w.reference)) << w.name;
    w.reference(want);

    ASSERT_EQ(got.size(), want.size()) << w.name;
    for (ArrayId a = 0; a < static_cast<ArrayId>(got.size()); ++a) {
        const auto &ga = got.array(a);
        const auto &wa = want.array(a);
        // Hardware staging buffers have no reference counterpart.
        if (ga.name == "WSlice" || ga.name == "OSlice")
            continue;
        ASSERT_EQ(ga.data.size(), wa.data.size())
            << w.name << " array " << ga.name;
        for (std::size_t i = 0; i < ga.data.size(); ++i) {
            double scale =
                std::max(1.0, std::abs(double(wa.data[i])));
            EXPECT_NEAR(ga.data[i], wa.data[i], tol * scale)
                << w.name << " array " << ga.name << " elem " << i;
        }
    }
}

TEST(Functional, VecAdd)
{
    expectFunctionalMatch(makeVecAdd(512));
}

TEST(Functional, ArraySum)
{
    expectFunctionalMatch(makeArraySum(1000));
}

TEST(Functional, Stencil1d)
{
    expectFunctionalMatch(makeStencil1d(256, 4));
}

TEST(Functional, Stencil2d)
{
    expectFunctionalMatch(makeStencil2d(32, 24, 3));
}

TEST(Functional, Stencil3d)
{
    expectFunctionalMatch(makeStencil3d(16, 12, 8, 2));
}

TEST(Functional, Dwt2d)
{
    expectFunctionalMatch(makeDwt2d(32, 32));
}

TEST(Functional, GaussElim)
{
    expectFunctionalMatch(makeGaussElim(24), 1e-2);
}

TEST(Functional, Conv2d)
{
    expectFunctionalMatch(makeConv2d(24, 20));
}

TEST(Functional, Conv3d)
{
    expectFunctionalMatch(makeConv3d(10, 8, 4, 3), 1e-2);
}

TEST(Functional, MmOuter)
{
    expectFunctionalMatch(makeMm(12, 16, 8, true), 1e-2);
}

TEST(Functional, MmInner)
{
    expectFunctionalMatch(makeMm(12, 16, 8, false), 1e-2);
}

TEST(Functional, KmeansOuter)
{
    expectFunctionalMatch(makeKmeans(64, 8, 4, true), 1e-2);
}

TEST(Functional, KmeansInner)
{
    expectFunctionalMatch(makeKmeans(64, 8, 4, false), 1e-2);
}

TEST(Functional, GatherMlpOuter)
{
    expectFunctionalMatch(makeGatherMlp(24, 8, 6, 40, true), 1e-2);
}

TEST(Functional, GatherMlpInner)
{
    expectFunctionalMatch(makeGatherMlp(24, 8, 6, 40, false), 1e-2);
}

TEST(Functional, PointNetSsgRunsAndClassifies)
{
    // PointNet++ has no separate scalar reference (its functional
    // fallbacks ARE the scalar stages); validate shape and sanity of the
    // pipeline end to end on a small cloud.
    Workload w = makePointNetSSG(128);
    InfinitySystem sys(testSystemConfig());
    Executor exec(sys, Paradigm::InfS);
    ArrayStore got;
    exec.run(w, &got);
    // The last declared array is fc3.out: 10 class scores.
    const StoredArray &scores =
        got.array(static_cast<ArrayId>(got.size() - 1));
    ASSERT_EQ(scores.data.size(), 10u);
    // ReLU output: non-negative, and not all zero for random input.
    double total = 0.0;
    for (float v : scores.data) {
        EXPECT_GE(v, 0.0f);
        total += v;
    }
    EXPECT_GT(total, 0.0);
}

TEST(Functional, PointNetSa1StagesConsistent)
{
    // Furthest sampling picks distinct points; ball query respects N.
    Workload w = makePointNetSSG(64);
    InfinitySystem sys(testSystemConfig());
    Executor exec(sys, Paradigm::Base);
    ArrayStore s;
    exec.run(w, &s);
    const StoredArray &idx = s.array(1); // SA1.idx
    ASSERT_EQ(idx.name, "SA1.idx");
    // K=512 > 64 points: indices stay in range.
    for (float v : idx.data) {
        EXPECT_GE(v, 0.0f);
        EXPECT_LT(v, 64.0f);
    }
    const StoredArray &nbr = s.array(2); // SA1.nbr
    ASSERT_EQ(nbr.name, "SA1.nbr");
    for (float v : nbr.data) {
        EXPECT_GE(v, 0.0f);
        EXPECT_LT(v, 64.0f);
    }
}

} // namespace
} // namespace infs
