#include <gtest/gtest.h>

#include "tdfg/hyperrect.hh"

namespace infs {
namespace {

TEST(HyperRect, BasicProperties)
{
    HyperRect r = HyperRect::box2(0, 4, 1, 3);
    EXPECT_EQ(r.dims(), 2u);
    EXPECT_EQ(r.size(0), 4);
    EXPECT_EQ(r.size(1), 2);
    EXPECT_EQ(r.volume(), 8);
    EXPECT_FALSE(r.empty());
}

TEST(HyperRect, EmptyWhenAnyDimEmpty)
{
    EXPECT_TRUE(HyperRect::box2(0, 4, 3, 3).empty());
    EXPECT_TRUE(HyperRect::interval(5, 2).empty());
    EXPECT_TRUE(HyperRect().empty());
    EXPECT_EQ(HyperRect::box2(0, 4, 3, 3).volume(), 0);
}

TEST(HyperRect, Contains)
{
    HyperRect r = HyperRect::box2(0, 4, 0, 4);
    EXPECT_TRUE(r.contains({0, 0}));
    EXPECT_TRUE(r.contains({3, 3}));
    EXPECT_FALSE(r.contains({4, 0}));
    EXPECT_FALSE(r.contains({0, -1}));
}

TEST(HyperRect, ContainsRect)
{
    HyperRect outer = HyperRect::box2(0, 10, 0, 10);
    EXPECT_TRUE(outer.containsRect(HyperRect::box2(2, 5, 3, 9)));
    EXPECT_FALSE(outer.containsRect(HyperRect::box2(2, 11, 3, 9)));
    EXPECT_TRUE(outer.containsRect(HyperRect::box2(5, 5, 0, 0))); // empty
}

TEST(HyperRect, Intersect)
{
    HyperRect a = HyperRect::box2(0, 4, 0, 4);
    HyperRect b = HyperRect::box2(2, 6, 1, 3);
    HyperRect i = a.intersect(b);
    EXPECT_EQ(i, HyperRect::box2(2, 4, 1, 3));
    // Disjoint -> empty.
    EXPECT_TRUE(a.intersect(HyperRect::box2(10, 12, 0, 4)).empty());
}

TEST(HyperRect, BoundingUnion)
{
    HyperRect a = HyperRect::box2(0, 2, 0, 2);
    HyperRect b = HyperRect::box2(5, 6, 1, 8);
    EXPECT_EQ(a.boundingUnion(b), HyperRect::box2(0, 6, 0, 8));
    EXPECT_EQ(a.boundingUnion(HyperRect::box2(3, 3, 0, 0)), a); // w/ empty
}

TEST(HyperRect, ShiftedMatchesMoveSemantics)
{
    // Fig 4(a): A[0,N-2) moved right by 1 aligns with A[1,N-1).
    const Coord n = 100;
    HyperRect a0 = HyperRect::interval(0, n - 2);
    EXPECT_EQ(a0.shifted(0, 1), HyperRect::interval(1, n - 1));
    EXPECT_EQ(a0.shifted(0, -1), HyperRect::interval(-1, n - 3));
}

TEST(HyperRect, WithDim)
{
    HyperRect r = HyperRect::box2(0, 4, 0, 4);
    EXPECT_EQ(r.withDim(1, 2, 3), HyperRect::box2(0, 4, 2, 3));
}

TEST(HyperRect, StrFormat)
{
    EXPECT_EQ(HyperRect::box2(0, 4, 1, 3).str(), "[0,4)x[1,3)");
}

TEST(HyperRect, ArrayAnchorsAtOrigin)
{
    HyperRect r = HyperRect::array({16, 8, 4});
    EXPECT_EQ(r.dims(), 3u);
    EXPECT_EQ(r.lo(0), 0);
    EXPECT_EQ(r.hi(2), 4);
    EXPECT_EQ(r.volume(), 16 * 8 * 4);
}

} // namespace
} // namespace infs
