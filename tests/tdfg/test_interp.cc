#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hh"
#include "tdfg/interp.hh"

namespace infs {
namespace {

TEST(Interp, VecAddMatchesScalarLoop)
{
    const Coord n = 257; // Deliberately not a power of two.
    ArrayStore store;
    ArrayId A = store.declare("A", {n});
    ArrayId B = store.declare("B", {n});
    ArrayId C = store.declare("C", {n});
    Rng rng(1);
    for (Coord i = 0; i < n; ++i) {
        store.array(A).data[i] = rng.nextFloat(-10, 10);
        store.array(B).data[i] = rng.nextFloat(-10, 10);
    }

    TdfgGraph g(1, "vec_add");
    NodeId a = g.tensor(A, HyperRect::interval(0, n));
    NodeId b = g.tensor(B, HyperRect::interval(0, n));
    NodeId c = g.compute(BitOp::Add, {a, b});
    g.output(c, C);

    TdfgInterpreter interp(store);
    interp.run(g);
    for (Coord i = 0; i < n; ++i)
        EXPECT_FLOAT_EQ(store.array(C).data[i],
                        store.array(A).data[i] + store.array(B).data[i]);
    EXPECT_EQ(interp.flopCount(), static_cast<std::uint64_t>(n));
}

TEST(Interp, Fig4aStencil1D)
{
    const Coord n = 64;
    ArrayStore store;
    ArrayId A = store.declare("A", {n});
    ArrayId B = store.declare("B", {n});
    for (Coord i = 0; i < n; ++i)
        store.array(A).data[i] = static_cast<float>(i * i % 17);

    TdfgGraph g(1, "stencil1d");
    NodeId a0 = g.tensor(A, HyperRect::interval(0, n - 2));
    NodeId a1 = g.tensor(A, HyperRect::interval(1, n - 1));
    NodeId a2 = g.tensor(A, HyperRect::interval(2, n));
    NodeId s = g.compute(BitOp::Add,
                         {g.move(a0, 0, 1), a1, g.move(a2, 0, -1)});
    g.output(s, B);

    TdfgInterpreter interp(store);
    interp.run(g);
    const auto &av = store.array(A).data;
    const auto &bv = store.array(B).data;
    for (Coord i = 1; i < n - 1; ++i)
        EXPECT_FLOAT_EQ(bv[i], av[i - 1] + av[i] + av[i + 1]) << i;
    // Boundary cells untouched (outside the compute domain).
    EXPECT_FLOAT_EQ(bv[0], 0.0f);
    EXPECT_FLOAT_EQ(bv[n - 1], 0.0f);
}

TEST(Interp, ConstMultiply)
{
    const Coord n = 16;
    ArrayStore store;
    ArrayId A = store.declare("A", {n});
    for (Coord i = 0; i < n; ++i)
        store.array(A).data[i] = static_cast<float>(i);
    TdfgGraph g(1);
    NodeId a = g.tensor(A, HyperRect::interval(0, n));
    NodeId c = g.constant(2.5);
    NodeId m = g.compute(BitOp::Mul, {a, c});
    g.output(m, A);
    TdfgInterpreter(store).run(g);
    for (Coord i = 0; i < n; ++i)
        EXPECT_FLOAT_EQ(store.array(A).data[i], 2.5f * i);
}

TEST(Interp, BroadcastReplicatesAlongDim)
{
    // Row vector broadcast down a 2-D tensor.
    const Coord n = 4, m = 3;
    ArrayStore store;
    ArrayId R = store.declare("R", {n, 1});
    ArrayId O = store.declare("O", {n, m});
    for (Coord j = 0; j < n; ++j)
        store.array(R).data[j] = static_cast<float>(j + 1);
    TdfgGraph g(2);
    NodeId r = g.tensor(R, HyperRect::box2(0, n, 0, 1));
    NodeId bc = g.broadcast(r, 1, 0, m);
    g.output(bc, O);
    TdfgInterpreter(store).run(g);
    for (Coord i = 0; i < m; ++i)
        for (Coord j = 0; j < n; ++j)
            EXPECT_FLOAT_EQ(store.array(O).at({j, i}),
                            static_cast<float>(j + 1));
}

TEST(Interp, OuterProductGemmStepMatchesInnerProduct)
{
    // One k-round of Fig 8's outer-product GEMM == rank-1 update.
    const Coord M = 8, N = 12;
    ArrayStore store;
    ArrayId Acol = store.declare("Acol", {1, M});
    ArrayId Brow = store.declare("Brow", {N, 1});
    ArrayId C = store.declare("C", {N, M});
    Rng rng(3);
    for (Coord i = 0; i < M; ++i)
        store.array(Acol).data[i] = rng.nextFloat(-1, 1);
    for (Coord j = 0; j < N; ++j)
        store.array(Brow).data[j] = rng.nextFloat(-1, 1);

    TdfgGraph g(2, "mm_outer_step");
    NodeId a = g.tensor(Acol, HyperRect::box2(0, 1, 0, M));
    NodeId b = g.tensor(Brow, HyperRect::box2(0, N, 0, 1));
    NodeId c0 = g.tensor(C, HyperRect::box2(0, N, 0, M));
    NodeId prod = g.compute(BitOp::Mul,
                            {g.broadcast(a, 0, 0, N),
                             g.broadcast(b, 1, 0, M)});
    NodeId acc = g.compute(BitOp::Add, {c0, prod});
    g.output(acc, C);
    TdfgInterpreter(store).run(g);

    for (Coord i = 0; i < M; ++i)
        for (Coord j = 0; j < N; ++j)
            EXPECT_FLOAT_EQ(store.array(C).at({j, i}),
                            store.array(Acol).data[i] *
                                store.array(Brow).data[j]);
}

TEST(Interp, ReduceAddAndMax)
{
    const Coord n = 8, m = 4;
    ArrayStore store;
    ArrayId A = store.declare("A", {n, m});
    float expect_sum[4] = {};
    float expect_max[4] = {-1e30f, -1e30f, -1e30f, -1e30f};
    Rng rng(9);
    for (Coord i = 0; i < m; ++i)
        for (Coord j = 0; j < n; ++j) {
            float v = rng.nextFloat(-5, 5);
            store.array(A).at({j, i}) = v;
            expect_sum[i] += v;
            expect_max[i] = std::max(expect_max[i], v);
        }
    TdfgGraph g(2);
    NodeId a = g.tensor(A, HyperRect::box2(0, n, 0, m));
    NodeId rs = g.reduce(a, BitOp::Add, 0);
    NodeId rm = g.reduce(a, BitOp::Max, 0);
    TdfgInterpreter interp(store);
    g.validate();
    interp.run(g);
    for (Coord i = 0; i < m; ++i) {
        EXPECT_NEAR(interp.value(rs).at({0, i}), expect_sum[i], 1e-4);
        EXPECT_FLOAT_EQ(interp.value(rm).at({0, i}), expect_max[i]);
    }
}

TEST(Interp, ArraySumViaPartialReduceAndStream)
{
    // Fig 4(b): in-memory partial reduce, then near-memory final reduce.
    const Coord n = 1000;
    ArrayStore store;
    ArrayId A = store.declare("A", {n});
    double expect = 0.0;
    for (Coord i = 0; i < n; ++i) {
        store.array(A).data[i] = static_cast<float>((i % 13) - 6);
        expect += (i % 13) - 6;
    }
    TdfgGraph g(1, "array_sum");
    NodeId a = g.tensor(A, HyperRect::interval(0, n));
    NodeId part = g.reduce(a, BitOp::Add, 0);
    NodeId fin = g.stream(StreamRole::Reduce,
                          AccessPattern::linear(A, 0, n), part);
    TdfgInterpreter interp(store);
    interp.run(g);
    EXPECT_NEAR(interp.streamReduceResult(fin), expect, 1e-3);
}

TEST(Interp, LoadStreamGather)
{
    // A[B[i]] gather through an indirect load stream.
    const Coord n = 10;
    ArrayStore store;
    ArrayId A = store.declare("A", {n});
    ArrayId B = store.declare("B", {4});
    ArrayId O = store.declare("O", {4});
    for (Coord i = 0; i < n; ++i)
        store.array(A).data[i] = static_cast<float>(100 + i);
    float idx[4] = {7, 0, 3, 3};
    for (int i = 0; i < 4; ++i)
        store.array(B).data[i] = idx[i];

    TdfgGraph g(1, "gather");
    NodeId ld = g.stream(StreamRole::Load, AccessPattern::gather(A, B, 4),
                         invalidNode, HyperRect::interval(0, 4));
    g.output(ld, O);
    TdfgInterpreter(store).run(g);
    EXPECT_FLOAT_EQ(store.array(O).data[0], 107.0f);
    EXPECT_FLOAT_EQ(store.array(O).data[1], 100.0f);
    EXPECT_FLOAT_EQ(store.array(O).data[2], 103.0f);
    EXPECT_FLOAT_EQ(store.array(O).data[3], 103.0f);
}

TEST(Interp, StoreStreamScatter)
{
    const Coord n = 10;
    ArrayStore store;
    ArrayId Src = store.declare("S", {3});
    ArrayId Idx = store.declare("I", {3});
    ArrayId Dst = store.declare("D", {n});
    float sv[3] = {1.5f, 2.5f, 3.5f};
    float iv[3] = {8, 1, 5};
    for (int i = 0; i < 3; ++i) {
        store.array(Src).data[i] = sv[i];
        store.array(Idx).data[i] = iv[i];
    }
    TdfgGraph g(1, "scatter");
    NodeId t = g.tensor(Src, HyperRect::interval(0, 3));
    g.stream(StreamRole::Store, AccessPattern::gather(Dst, Idx, 3), t,
             HyperRect::interval(0, n));
    TdfgInterpreter(store).run(g);
    EXPECT_FLOAT_EQ(store.array(Dst).data[8], 1.5f);
    EXPECT_FLOAT_EQ(store.array(Dst).data[1], 2.5f);
    EXPECT_FLOAT_EQ(store.array(Dst).data[5], 3.5f);
    EXPECT_FLOAT_EQ(store.array(Dst).data[0], 0.0f);
}

TEST(Interp, MoveOutsideArrayIsDiscardedOnOutput)
{
    // §3.2: data moved outside the bounding hyperrectangle is discarded.
    const Coord n = 8;
    ArrayStore store;
    ArrayId A = store.declare("A", {n});
    ArrayId B = store.declare("B", {n});
    for (Coord i = 0; i < n; ++i)
        store.array(A).data[i] = static_cast<float>(i + 1);
    TdfgGraph g(1);
    NodeId a = g.tensor(A, HyperRect::interval(0, n));
    NodeId mv = g.move(a, 0, 3); // Domain [3, n+3); cells n..n+2 dropped.
    g.output(mv, B);
    TdfgInterpreter(store).run(g);
    for (Coord i = 0; i < 3; ++i)
        EXPECT_FLOAT_EQ(store.array(B).data[i], 0.0f);
    for (Coord i = 3; i < n; ++i)
        EXPECT_FLOAT_EQ(store.array(B).data[i], static_cast<float>(i - 2));
}

TEST(Interp, SelectViaCmpAndArith)
{
    // max(a, b) == a*(a>=b) + b*(1-(a>=b)) exercised via CmpLt.
    const Coord n = 32;
    ArrayStore store;
    ArrayId A = store.declare("A", {n});
    ArrayId B = store.declare("B", {n});
    ArrayId O = store.declare("O", {n});
    Rng rng(17);
    for (Coord i = 0; i < n; ++i) {
        store.array(A).data[i] = rng.nextFloat(-4, 4);
        store.array(B).data[i] = rng.nextFloat(-4, 4);
    }
    TdfgGraph g(1);
    NodeId a = g.tensor(A, HyperRect::interval(0, n));
    NodeId b = g.tensor(B, HyperRect::interval(0, n));
    NodeId lt = g.compute(BitOp::CmpLt, {a, b});    // 1 when a < b
    NodeId one = g.constant(1.0);
    NodeId ge = g.compute(BitOp::Sub, {one, lt});   // 1 when a >= b
    NodeId m = g.compute(
        BitOp::Add,
        {g.compute(BitOp::Mul, {a, ge}), g.compute(BitOp::Mul, {b, lt})});
    g.output(m, O);
    TdfgInterpreter(store).run(g);
    for (Coord i = 0; i < n; ++i)
        EXPECT_FLOAT_EQ(store.array(O).data[i],
                        std::max(store.array(A).data[i],
                                 store.array(B).data[i]));
}

TEST(Interp, RectIterVisitsAllCellsInOrder)
{
    HyperRect r = HyperRect::box2(1, 3, 5, 7);
    std::vector<std::vector<Coord>> pts;
    for (RectIter it(r); !it.done(); it.next())
        pts.push_back(*it);
    ASSERT_EQ(pts.size(), 4u);
    EXPECT_EQ(pts[0], (std::vector<Coord>{1, 5}));
    EXPECT_EQ(pts[1], (std::vector<Coord>{2, 5})); // dim 0 fastest
    EXPECT_EQ(pts[2], (std::vector<Coord>{1, 6}));
    EXPECT_EQ(pts[3], (std::vector<Coord>{2, 6}));
}

} // namespace
} // namespace infs
