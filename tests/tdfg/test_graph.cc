#include <gtest/gtest.h>

#include "tdfg/graph.hh"

namespace infs {
namespace {

TEST(TdfgGraph, Fig4a1DFilterStructure)
{
    // B[i] = A[i-1] + A[i] + A[i+1] on i in [1, N-1): three tensors, two
    // mv nodes to align, two adds.
    const Coord n = 1024;
    TdfgGraph g(1, "stencil1d");
    NodeId a0 = g.tensor(0, HyperRect::interval(0, n - 2), "A0");
    NodeId a1 = g.tensor(0, HyperRect::interval(1, n - 1), "A1");
    NodeId a2 = g.tensor(0, HyperRect::interval(2, n), "A2");
    NodeId mv0 = g.move(a0, 0, 1);
    NodeId mv2 = g.move(a2, 0, -1);
    NodeId s1 = g.compute(BitOp::Add, {mv0, a1});
    NodeId s2 = g.compute(BitOp::Add, {s1, mv2});
    g.output(s2, 1);

    EXPECT_TRUE(g.validate(false));
    // Moved tensors align exactly with A1's domain.
    EXPECT_EQ(g.domainOf(mv0), HyperRect::interval(1, n - 1));
    EXPECT_EQ(g.domainOf(mv2), HyperRect::interval(1, n - 1));
    EXPECT_EQ(g.domainOf(s2), HyperRect::interval(1, n - 1));

    TdfgSummary s = g.summarize();
    EXPECT_EQ(s.numCompute, 2u);
    EXPECT_EQ(s.numMove, 2u);
    EXPECT_EQ(s.maxTensorElems, n - 2);
}

TEST(TdfgGraph, ComputeDomainIsIntersection)
{
    TdfgGraph g(2);
    NodeId a = g.tensor(0, HyperRect::box2(0, 4, 0, 4));
    NodeId b = g.tensor(1, HyperRect::box2(2, 6, 1, 3));
    NodeId c = g.compute(BitOp::Mul, {a, b});
    EXPECT_EQ(g.domainOf(c), HyperRect::box2(2, 4, 1, 3));
}

TEST(TdfgGraph, ConstOperandsDoNotShrinkDomain)
{
    TdfgGraph g(1);
    NodeId a = g.tensor(0, HyperRect::interval(0, 100));
    NodeId c = g.constant(3.0);
    NodeId m = g.compute(BitOp::Mul, {a, c});
    EXPECT_EQ(g.domainOf(m), HyperRect::interval(0, 100));
}

TEST(TdfgGraph, BroadcastDomainGaussElim)
{
    // Fig 4(c): A[k,k+1)x[k+1,N) broadcast downwards (dim 0 here is
    // columns j, dim 1 rows i) to align with A[k+1,N)x[k+1,N).
    const Coord n = 64, k = 3;
    TdfgGraph g(2, "gauss");
    // Row k, columns [k+1, N): dim0 = column, dim1 = row.
    NodeId akj = g.tensor(0, HyperRect::box2(k + 1, n, k, k + 1), "Akj");
    NodeId bc = g.broadcast(akj, 1, 1, n - k - 1);
    EXPECT_EQ(g.domainOf(bc), HyperRect::box2(k + 1, n, k + 1, n));
}

TEST(TdfgGraph, Fig8OuterProductGemm)
{
    // C[m][n] += A[m][k] * B[k][n]: column of A and row of B broadcast to
    // the whole C (dim0 = n, dim1 = m).
    const Coord M = 32, N = 48, K = 16;
    (void)K;
    TdfgGraph g(2, "mm_outer");
    // A[:,k] as a (1 x M) tensor at column 0; broadcast across dim0 to N.
    NodeId amk = g.tensor(0, HyperRect::box2(0, 1, 0, M), "Amk");
    NodeId bkn = g.tensor(1, HyperRect::box2(0, N, 0, 1), "Bkn");
    NodeId c_in = g.tensor(2, HyperRect::box2(0, N, 0, M), "C");
    NodeId a_bc = g.broadcast(amk, 0, 0, N);
    NodeId b_bc = g.broadcast(bkn, 1, 0, M);
    EXPECT_EQ(g.domainOf(a_bc), HyperRect::box2(0, N, 0, M));
    EXPECT_EQ(g.domainOf(b_bc), HyperRect::box2(0, N, 0, M));
    NodeId prod = g.compute(BitOp::Mul, {a_bc, b_bc});
    NodeId acc = g.compute(BitOp::Add, {c_in, prod});
    g.output(acc, 2);
    EXPECT_TRUE(g.validate(false));
    EXPECT_EQ(g.domainOf(acc).volume(), M * N);
}

TEST(TdfgGraph, ReduceCollapsesDimension)
{
    TdfgGraph g(2);
    NodeId a = g.tensor(0, HyperRect::box2(0, 8, 0, 16));
    NodeId r = g.reduce(a, BitOp::Add, 0);
    EXPECT_EQ(g.domainOf(r), HyperRect::box2(0, 1, 0, 16));
    NodeId r2 = g.reduce(r, BitOp::Max, 1);
    EXPECT_EQ(g.domainOf(r2).volume(), 1);
}

TEST(TdfgGraph, ShrinkValidatesBounds)
{
    TdfgGraph g(1);
    NodeId a = g.tensor(0, HyperRect::interval(0, 10));
    NodeId s = g.shrink(a, 0, 2, 8);
    EXPECT_EQ(g.domainOf(s), HyperRect::interval(2, 8));
}

TEST(TdfgGraph, StreamNodesEmbed)
{
    // Fig 4(b) vector sum: in-memory partial reduce + near-memory final
    // reduce stream.
    const Coord n = 4096;
    TdfgGraph g(1, "array_sum");
    NodeId a = g.tensor(0, HyperRect::interval(0, n));
    NodeId partial = g.reduce(a, BitOp::Add, 0);
    NodeId fin = g.stream(StreamRole::Reduce, AccessPattern::linear(0, 0, n),
                          partial);
    EXPECT_TRUE(g.validate(false));
    EXPECT_EQ(g.node(fin).streamRole, StreamRole::Reduce);
    EXPECT_EQ(g.summarize().numStream, 1u);
    EXPECT_EQ(g.summarize().numReduce, 1u);
}

TEST(TdfgGraph, DumpShowsStructure)
{
    TdfgGraph g(1, "t");
    NodeId a = g.tensor(0, HyperRect::interval(0, 4), "A");
    NodeId c = g.constant(2.0);
    NodeId m = g.compute(BitOp::Mul, {a, c});
    g.output(m, 1);
    std::string d = g.dump();
    EXPECT_NE(d.find("tensor"), std::string::npos);
    EXPECT_NE(d.find("mul"), std::string::npos);
    EXPECT_NE(d.find("output"), std::string::npos);
}

TEST(TdfgGraphDeath, OperandMustPrecede)
{
    TdfgGraph g(1);
    NodeId a = g.tensor(0, HyperRect::interval(0, 4));
    EXPECT_DEATH(g.compute(BitOp::Add, {a, NodeId(99)}), "out of");
}

TEST(TdfgGraphDeath, EmptyComputeDomainPanics)
{
    TdfgGraph g(1);
    NodeId a = g.tensor(0, HyperRect::interval(0, 4));
    NodeId b = g.tensor(1, HyperRect::interval(10, 14));
    EXPECT_DEATH(g.compute(BitOp::Add, {a, b}), "empty domain");
}

} // namespace
} // namespace infs
