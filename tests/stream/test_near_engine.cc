#include <gtest/gtest.h>

#include "stream/near_engine.hh"

namespace infs {
namespace {

class NearEngineTest : public ::testing::Test
{
  protected:
    NearEngineTest()
        : cfg(defaultSystemConfig()), noc(cfg.noc), l3(cfg.l3),
          dram(cfg.dram, cfg.core.ghz), map(cfg.l3),
          engine(cfg, noc, l3, dram, map, energy)
    {
    }

    SystemConfig cfg;
    MeshNoc noc;
    L3Model l3;
    DramModel dram;
    AddressMap map;
    EnergyAccount energy;
    NearStreamEngine engine;
};

TEST_F(NearEngineTest, VecAddStreams)
{
    // C[i] = A[i] + B[i]: two load streams forwarding to one store stream
    // (Fig 1b). 1M elements each, fully L3 resident.
    const std::int64_t n = 1 << 20;
    std::vector<NearStream> streams(3);
    streams[0].pattern = AccessPattern::linear(0, 0, n);
    streams[0].forwardTo = 2;
    streams[1].pattern = AccessPattern::linear(1, 0, n);
    streams[1].forwardTo = 2;
    streams[2].pattern = AccessPattern::linear(2, 0, n);
    streams[2].isStore = true;
    streams[2].flopsPerElem = 1;
    NearExecResult r = engine.run(streams, 0);
    EXPECT_EQ(r.elements, 3u << 20);
    EXPECT_EQ(r.l3Bytes, Bytes(3) * 4 * n);
    EXPECT_EQ(r.dramBytes, 0u);
    EXPECT_EQ(r.flops, Bytes(n));
    // Bandwidth bound: 12 MB over 64 x 64 B/cycle = 3072 cycles + fixed.
    EXPECT_GT(r.cycles, 3000u);
    EXPECT_LT(r.cycles, 4000u);
    // Forwarding traffic exists but is far below core-centric movement
    // (which would be ~bytes x avg_hops for all three arrays).
    EXPECT_GT(noc.hopBytes(TrafficClass::Data), 0.0);
    EXPECT_GT(noc.hopBytes(TrafficClass::Offload), 0.0);
}

TEST_F(NearEngineTest, DramBoundWhenNotResident)
{
    const std::int64_t n = 1 << 20;
    std::vector<NearStream> streams(1);
    streams[0].pattern = AccessPattern::linear(0, 0, n);
    streams[0].l3Residency = 0.0;
    NearExecResult r = engine.run(streams, 0);
    EXPECT_EQ(r.dramBytes, Bytes(4) * n);
    // 4 MB at 12.8 B/cycle ~ 327k cycles.
    EXPECT_GT(r.cycles, 300000u);
    EXPECT_EQ(dram.totalBytes(), Bytes(4) * n);
}

TEST_F(NearEngineTest, ComputeBoundWithHeavyPerElementWork)
{
    const std::int64_t n = 1 << 18;
    std::vector<NearStream> streams(1);
    streams[0].pattern = AccessPattern::linear(0, 0, n);
    streams[0].flopsPerElem = 100;
    NearExecResult r = engine.run(streams, 0);
    // 26.2M flops / 1024 per cycle ~ 25.6k cycles, above the bw bound.
    EXPECT_GT(r.cycles, 25000u);
}

TEST_F(NearEngineTest, IndirectStreamsCostReuseBlindTraffic)
{
    const std::int64_t n = 1 << 16;
    std::vector<NearStream> affine(1), indirect(1);
    affine[0].pattern = AccessPattern::linear(0, 0, n);
    indirect[0].pattern = AccessPattern::gather(0, 1, n);
    NearExecResult ra = engine.run(affine, 0);
    double affine_traffic = noc.totalHopBytes();
    noc.resetStats();
    NearExecResult ri = engine.run(indirect, 0);
    double indirect_traffic = noc.totalHopBytes();
    EXPECT_GT(indirect_traffic, 5.0 * affine_traffic);
    EXPECT_EQ(ra.elements, ri.elements);
}

TEST_F(NearEngineTest, ReduceSendsResultToCore)
{
    const std::int64_t n = 4096;
    std::vector<NearStream> streams(1);
    streams[0].pattern = AccessPattern::linear(0, 0, n);
    streams[0].isReduce = true;
    streams[0].flopsPerElem = 1;
    NearExecResult r = engine.run(streams, 42);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(noc.hopBytes(TrafficClass::Offload), 0.0);
}

TEST_F(NearEngineTest, EnergyCharged)
{
    const std::int64_t n = 1 << 16;
    std::vector<NearStream> streams(1);
    streams[0].pattern = AccessPattern::linear(0, 0, n);
    streams[0].flopsPerElem = 2;
    engine.run(streams, 0);
    EXPECT_GT(energy.count(EnergyEvent::L3Access), 0.0);
    EXPECT_DOUBLE_EQ(energy.count(EnergyEvent::StreamEngineOp),
                     2.0 * n);
}

} // namespace
} // namespace infs
