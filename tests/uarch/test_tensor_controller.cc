#include <gtest/gtest.h>

#include "uarch/system.hh"

namespace infs {
namespace {

class TcTest : public ::testing::Test
{
  protected:
    TcTest() : sys(defaultSystemConfig()) {}

    std::shared_ptr<const InMemProgram>
    lowerVecAdd(std::int64_t n, TiledLayout &lay)
    {
        TdfgGraph g(1, "vec_add");
        NodeId a = g.tensor(0, HyperRect::interval(0, n));
        NodeId b = g.tensor(1, HyperRect::interval(0, n));
        g.output(g.compute(BitOp::Add, {a, b}), 2);
        lay = TiledLayout({n}, {256});
        return sys.jit().lower(g, lay, sys.map());
    }

    InfinitySystem sys;
};

TEST_F(TcTest, VecAddTimingIsOneBitSerialAdd)
{
    TiledLayout lay;
    auto prog = lowerVecAdd(1 << 22, lay); // 4M elements fill all bitlines.
    InMemExecResult r =
        sys.tensorController().execute(*prog, lay, 0);
    // One fp32 add across all banks: makespan ~ fp32Add latency.
    LatencyTable lat;
    EXPECT_EQ(r.computeCycles, lat.fp32Add);
    EXPECT_GE(r.cycles, lat.fp32Add);
    EXPECT_LT(r.cycles, lat.fp32Add + 100);
    EXPECT_EQ(r.inMemOps, 1u << 22);
    EXPECT_EQ(r.interTileNocBytes, 0.0);
}

TEST_F(TcTest, StencilShiftsProduceIntraAndInterTraffic)
{
    const std::int64_t n = 1 << 20;
    TdfgGraph g(1, "stencil1d");
    NodeId a0 = g.tensor(0, HyperRect::interval(0, n - 2));
    NodeId a1 = g.tensor(0, HyperRect::interval(1, n - 1));
    NodeId a2 = g.tensor(0, HyperRect::interval(2, n));
    g.output(g.compute(BitOp::Add,
                       {g.move(a0, 0, 1), a1, g.move(a2, 0, -1)}),
             1);
    TiledLayout lay({n}, {256});
    auto prog = sys.jit().lower(g, lay, sys.map());
    InMemExecResult r = sys.tensorController().execute(*prog, lay, 0);
    // Shifting by 1 with tile 256: nearly all elements move intra-tile;
    // one element per tile crosses tiles.
    EXPECT_GT(r.intraTileBytes, 100.0 * r.interTileBytes);
    EXPECT_GT(r.interTileNocBytes, 0.0);
    EXPECT_GT(r.syncCycles, 0u);
    EXPECT_GT(sys.noc().hopBytes(TrafficClass::InterTile), 0.0);
}

TEST_F(TcTest, SyncBarriersSerialize)
{
    // Two programs identical except for sync count: more syncs => more
    // cycles.
    const std::int64_t n = 1 << 20;
    TdfgGraph g(1, "shifty");
    NodeId a = g.tensor(0, HyperRect::interval(0, n));
    NodeId m1 = g.move(a, 0, 256);       // Pure inter-tile.
    NodeId s1 = g.compute(BitOp::Add, {g.shrink(a, 0, 256, n), m1});
    NodeId m2 = g.move(s1, 0, 256);
    NodeId s2 = g.compute(BitOp::Add, {g.shrink(s1, 0, 512, n), m2});
    g.output(s2, 1);
    TiledLayout lay({n}, {256});
    auto prog = sys.jit().lower(g, lay, sys.map());
    EXPECT_GE(prog->numSync, 2u);
    InMemExecResult r = sys.tensorController().execute(*prog, lay, 0);
    EXPECT_GT(r.syncCycles, 0u);
}

TEST_F(TcTest, EnergyScalesWithTilesTouched)
{
    TiledLayout lay_small, lay_big;
    auto small = lowerVecAdd(1 << 12, lay_small);
    double e0 = sys.energy().count(EnergyEvent::SramRowActivate);
    sys.tensorController().execute(*small, lay_small, 0);
    double e1 = sys.energy().count(EnergyEvent::SramRowActivate);
    auto big = lowerVecAdd(1 << 22, lay_big);
    sys.tensorController().execute(*big, lay_big, 0);
    double e2 = sys.energy().count(EnergyEvent::SramRowActivate);
    EXPECT_GT(e1 - e0, 0.0);
    EXPECT_GT(e2 - e1, 100.0 * (e1 - e0));
}

TEST_F(TcTest, PrepareAndRelease)
{
    PrepareResult p = sys.prepareTransposed(16 << 20, 0.5);
    EXPECT_EQ(p.movedBytes, Bytes(16) << 20);
    EXPECT_EQ(p.dramBytes, Bytes(8) << 20);
    EXPECT_GT(p.cycles, 0u);
    EXPECT_EQ(sys.l3().reservedWays(0), 16u);
    // Delayed release: dirty data within the normal L3 capacity stays
    // cached; only overflow is written back.
    Tick rel_small = sys.releaseTransposed(4 << 20);
    EXPECT_EQ(rel_small, 0u);
    EXPECT_EQ(sys.l3().reservedWays(0), 0u);
    sys.prepareTransposed(16 << 20, 1.0);
    // Only dirty data beyond the whole (released) L3 capacity is evicted.
    Tick rel_big = sys.releaseTransposed(Bytes(256) << 20);
    EXPECT_GT(rel_big, 0u);
}

TEST_F(TcTest, LotInstallAndLookup)
{
    LotEntry e;
    e.array = 7;
    e.base = 0x10000;
    e.end = 0x20000;
    e.layout = TiledLayout({4096}, {256});
    auto idx = sys.lot().install(e);
    ASSERT_TRUE(idx.has_value());
    EXPECT_NE(sys.lot().findByAddr(0x15000), nullptr);
    EXPECT_EQ(sys.lot().findByAddr(0x25000), nullptr);
    EXPECT_EQ(sys.lot().findByArray(7)->base, 0x10000u);
    EXPECT_EQ(sys.lot().findByArray(8), nullptr);
}

TEST_F(TcTest, LotCapacityBounded)
{
    for (unsigned i = 0; i < 16; ++i) {
        LotEntry e;
        e.array = static_cast<ArrayId>(i);
        e.base = i * 0x1000;
        e.end = e.base + 0x1000;
        EXPECT_TRUE(sys.lot().install(e).has_value());
    }
    LotEntry extra;
    extra.array = 99;
    EXPECT_FALSE(sys.lot().install(extra).has_value());
}

TEST_F(TcTest, LotSingleThreadLock)
{
    EXPECT_TRUE(sys.lot().lock(1));
    EXPECT_TRUE(sys.lot().lock(1));  // Re-entrant for the owner.
    EXPECT_FALSE(sys.lot().lock(2)); // §6 limitation 1.
    sys.lot().unlock(1);
    EXPECT_TRUE(sys.lot().lock(2));
}

TEST_F(TcTest, ResetStatsClearsEverything)
{
    TiledLayout lay;
    auto prog = lowerVecAdd(1 << 16, lay);
    sys.tensorController().execute(*prog, lay, 0);
    sys.prepareTransposed(1 << 20, 0.0);
    sys.releaseTransposed(0);
    EXPECT_GT(sys.noc().totalHopBytes(), 0.0);
    sys.resetStats();
    EXPECT_DOUBLE_EQ(sys.noc().totalHopBytes(), 0.0);
    EXPECT_EQ(sys.dram().totalBytes(), 0u);
    EXPECT_DOUBLE_EQ(sys.energy().totalJoules(), 0.0);
}

} // namespace
} // namespace infs
