/**
 * @file
 * Differential tests for the sharded tile-mask memo (DESIGN.md §10):
 * every cached mask must equal a fresh uncached build of the same key —
 * including under concurrent lookups from the bank-parallel thread pool,
 * where distinct threads race to insert the same shard entries.
 */

#include <gtest/gtest.h>

#include <vector>

#include "jit/commands.hh"
#include "sim/rng.hh"
#include "sim/thread_pool.hh"
#include "uarch/bit_exec.hh"

namespace infs {
namespace {

InMemCommand
randomMaskCmd(Rng &rng, const std::vector<Coord> &shape,
              const std::vector<Coord> &tsz)
{
    const unsigned nd = static_cast<unsigned>(shape.size());
    InMemCommand cmd;
    std::vector<Coord> lo(nd), hi(nd);
    for (unsigned d = 0; d < nd; ++d) {
        lo[d] = static_cast<Coord>(
            rng.next() % static_cast<std::uint64_t>(shape[d]));
        hi[d] = lo[d] + 1 +
                static_cast<Coord>(
                    rng.next() %
                    static_cast<std::uint64_t>(shape[d] - lo[d]));
    }
    cmd.tensor = HyperRect(lo, hi);
    cmd.dim = static_cast<unsigned>(rng.next() % nd);
    // Positional window inside the tile (may be empty or full).
    const auto tk = static_cast<std::uint64_t>(tsz[cmd.dim]);
    cmd.maskLo = static_cast<Coord>(rng.next() % tk);
    cmd.maskHi = cmd.maskLo + 1 + static_cast<Coord>(rng.next() % tk);
    return cmd;
}

TEST(MaskCache, CachedEqualsUncachedRandomized)
{
    Rng rng(31);
    for (int round = 0; round < 8; ++round) {
        const unsigned nd = 1 + static_cast<unsigned>(rng.next() % 2);
        std::vector<Coord> shape(nd), tsz(nd);
        for (unsigned d = 0; d < nd; ++d) {
            shape[d] = 8 + static_cast<Coord>(rng.next() % 40);
            tsz[d] = 2 + static_cast<Coord>(
                             rng.next() % std::min<Coord>(shape[d], 12));
        }
        TiledLayout lay(shape, tsz);
        BitAccurateFabric fab(lay);
        for (int c = 0; c < 20; ++c) {
            InMemCommand cmd = randomMaskCmd(rng, shape, tsz);
            for (bool shift_mask : {false, true})
                for (std::int64_t t = 0; t < lay.numTiles(); ++t) {
                    const BitRow &cached =
                        fab.tileMask(cmd, t, shift_mask);
                    ASSERT_EQ(cached,
                              fab.tileMaskUncached(cmd, t, shift_mask))
                        << "round " << round << " cmd " << c << " tile "
                        << t << " shift_mask " << shift_mask;
                }
        }
    }
}

TEST(MaskCache, RepeatLookupsHitAndStayStable)
{
    TiledLayout lay({64, 48}, {16, 8});
    BitAccurateFabric fab(lay);
    Rng rng(32);
    InMemCommand cmd = randomMaskCmd(rng, {64, 48}, {16, 8});

    const BitRow first = fab.tileMask(cmd, 3, true);
    const FabricStats cold = fab.stats();
    EXPECT_GT(cold.maskCacheMisses, 0u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(fab.tileMask(cmd, 3, true), first);
    const FabricStats warm = fab.stats();
    EXPECT_EQ(warm.maskCacheMisses, cold.maskCacheMisses);
    EXPECT_EQ(warm.maskCacheHits, cold.maskCacheHits + 10);
}

TEST(MaskCache, ConcurrentLookupsAreDifferentiallyCorrect)
{
    // Many threads hammer the same small key set through one shared
    // fabric: racing inserts must converge to one stable entry per key,
    // and every returned mask must equal its uncached build.
    TiledLayout lay({96, 40}, {16, 10});
    BitAccurateFabric fab(lay);
    Rng rng(33);
    std::vector<InMemCommand> cmds;
    for (int c = 0; c < 12; ++c)
        cmds.push_back(randomMaskCmd(rng, {96, 40}, {16, 10}));

    ThreadPool pool(8);
    const std::int64_t jobs =
        static_cast<std::int64_t>(cmds.size()) * lay.numTiles() * 4;
    std::vector<int> bad(static_cast<std::size_t>(jobs), 0);
    pool.parallelFor(jobs, [&](std::int64_t j) {
        const auto c = static_cast<std::size_t>(j) % cmds.size();
        const std::int64_t t =
            (j / static_cast<std::int64_t>(cmds.size())) % lay.numTiles();
        const bool shift_mask = (j & 1) != 0;
        const BitRow &cached = fab.tileMask(cmds[c], t, shift_mask);
        if (!(cached == fab.tileMaskUncached(cmds[c], t, shift_mask)))
            bad[static_cast<std::size_t>(j)] = 1;
    });
    for (std::int64_t j = 0; j < jobs; ++j)
        ASSERT_EQ(bad[static_cast<std::size_t>(j)], 0) << "job " << j;

    // Each distinct (cmd, tile, shift_mask) key missed at most a few
    // times (benign insert races), then everything hit.
    const FabricStats s = fab.stats();
    EXPECT_EQ(s.maskCacheHits + s.maskCacheMisses,
              static_cast<std::uint64_t>(jobs));
    EXPECT_GT(s.maskCacheHits, s.maskCacheMisses);
}

} // namespace
} // namespace infs
