/**
 * @file
 * End-to-end bit-accurate validation: build a tDFG, JIT-lower it
 * (Alg. 1 + Alg. 2), execute the commands on real bit-serial SRAM
 * arrays, and compare against the tDFG interpreter. This closes the loop
 * from IR to bits.
 */

#include <gtest/gtest.h>

#include "sim/rng.hh"
#include "tdfg/interp.hh"
#include "uarch/bit_exec.hh"
#include "uarch/system.hh"

namespace infs {
namespace {

class BitExecTest : public ::testing::Test
{
  protected:
    BitExecTest() : cfg(testSystemConfig()), map(cfg.l3), jit(cfg) {}

    /** Find the wordline slot the program assigned to an array. */
    static unsigned
    slotOf(const InMemProgram &prog, ArrayId a)
    {
        for (auto &[id, wl] : prog.arraySlots)
            if (id == a)
                return wl;
        infs_panic("array %d has no slot", a);
    }

    static unsigned
    outputSlotOf(const InMemProgram &prog, ArrayId a)
    {
        for (auto &[id, wl] : prog.outputSlots)
            if (id == a)
                return wl;
        infs_panic("array %d has no output slot", a);
    }

    SystemConfig cfg;
    AddressMap map;
    JitCompiler jit;
};

TEST_F(BitExecTest, VecAddThroughRealBitlines)
{
    const Coord n = 1024;
    TdfgGraph g(1, "vec_add");
    NodeId a = g.tensor(0, HyperRect::interval(0, n));
    NodeId b = g.tensor(1, HyperRect::interval(0, n));
    g.output(g.compute(BitOp::Add, {a, b}), 2);
    TiledLayout lay({n}, {256});
    auto prog = jit.lower(g, lay, map);

    BitAccurateFabric fab(lay);
    std::vector<float> va(n), vb(n), out(n);
    Rng rng(4);
    for (Coord i = 0; i < n; ++i) {
        va[i] = rng.nextFloat(-10, 10);
        vb[i] = rng.nextFloat(-10, 10);
    }
    fab.loadArray(va, slotOf(*prog, 0));
    fab.loadArray(vb, slotOf(*prog, 1));
    fab.execute(*prog);
    fab.storeArray(out, outputSlotOf(*prog, 2));
    for (Coord i = 0; i < n; ++i)
        EXPECT_FLOAT_EQ(out[i], va[i] + vb[i]) << i;
}

TEST_F(BitExecTest, ConstantMultiplyUsesImmediateBroadcast)
{
    const Coord n = 512;
    TdfgGraph g(1, "scale");
    NodeId a = g.tensor(0, HyperRect::interval(0, n));
    g.output(g.compute(BitOp::Mul, {a, g.constant(1.5)}), 1);
    TiledLayout lay({n}, {256});
    auto prog = jit.lower(g, lay, map);

    BitAccurateFabric fab(lay);
    std::vector<float> va(n), out(n);
    for (Coord i = 0; i < n; ++i)
        va[i] = static_cast<float>(i) - 100.0f;
    fab.loadArray(va, slotOf(*prog, 0));
    fab.execute(*prog);
    fab.storeArray(out, outputSlotOf(*prog, 1));
    for (Coord i = 0; i < n; ++i)
        EXPECT_FLOAT_EQ(out[i], va[i] * 1.5f) << i;
}

TEST_F(BitExecTest, StencilWithIntraAndInterTileShifts)
{
    // The decisive test: Alg. 2 shift commands (boundary decomposition,
    // masks, inter-tile crossings) must reproduce the interpreter's
    // result exactly.
    const Coord n = 1024;
    TdfgGraph g(1, "stencil1d");
    NodeId a0 = g.tensor(0, HyperRect::interval(0, n - 2));
    NodeId a1 = g.tensor(0, HyperRect::interval(1, n - 1));
    NodeId a2 = g.tensor(0, HyperRect::interval(2, n));
    NodeId s = g.compute(BitOp::Add,
                         {g.move(a0, 0, 1), a1, g.move(a2, 0, -1)});
    g.output(s, 1);
    TiledLayout lay({n}, {256});
    auto prog = jit.lower(g, lay, map);
    EXPECT_GT(prog->numInterShift, 0u);

    // Interpreter reference.
    ArrayStore store;
    ArrayId A = store.declare("A", {n});
    store.declare("B", {n});
    Rng rng(6);
    for (auto &v : store.array(A).data)
        v = rng.nextFloat(-4, 4);
    std::vector<float> va = store.array(A).data;
    TdfgInterpreter interp(store);
    interp.run(g);

    BitAccurateFabric fab(lay);
    fab.loadArray(va, slotOf(*prog, 0));
    fab.execute(*prog);
    std::vector<float> out(n);
    fab.storeArray(out, outputSlotOf(*prog, 1));
    // Interior matches the interpreter exactly (same fp32 ops).
    for (Coord i = 1; i < n - 1; ++i)
        EXPECT_FLOAT_EQ(out[i], store.array(1).data[i]) << i;
}

TEST_F(BitExecTest, TwoDimensionalShifts)
{
    const Coord n0 = 64, n1 = 48;
    TdfgGraph g(2, "stencil2d");
    HyperRect inner = HyperRect::box2(1, n0 - 1, 1, n1 - 1);
    NodeId acc = g.tensor(0, inner);
    for (unsigned dim = 0; dim < 2; ++dim)
        for (Coord d : {Coord(-1), Coord(1)}) {
            NodeId t = g.tensor(0, inner.shifted(dim, d));
            acc = g.compute(BitOp::Add, {acc, g.move(t, dim, -d)});
        }
    g.output(acc, 1);
    TiledLayout lay({n0, n1}, {16, 16});
    auto prog = jit.lower(g, lay, map);

    ArrayStore store;
    ArrayId A = store.declare("A", {n0, n1});
    store.declare("B", {n0, n1});
    Rng rng(8);
    for (auto &v : store.array(A).data)
        v = rng.nextFloat(-2, 2);
    std::vector<float> va = store.array(A).data;
    TdfgInterpreter(store).run(g);

    BitAccurateFabric fab(lay);
    fab.loadArray(va, slotOf(*prog, 0));
    fab.execute(*prog);
    std::vector<float> out(static_cast<std::size_t>(n0) * n1);
    fab.storeArray(out, outputSlotOf(*prog, 1));
    for (Coord j = 1; j < n1 - 1; ++j)
        for (Coord i = 1; i < n0 - 1; ++i)
            EXPECT_FLOAT_EQ(out[static_cast<std::size_t>(i + j * n0)],
                            store.array(1).at({i, j}))
                << i << "," << j;
}

TEST_F(BitExecTest, BroadcastRankOneUpdate)
{
    // One outer-product round (Fig 8): bc commands replicate A's column
    // and B's row across the C lattice.
    const Coord m = 32, n = 48;
    TdfgGraph g(2, "rank1");
    NodeId acol = g.tensor(0, HyperRect::box2(0, 1, 0, m));
    NodeId brow = g.tensor(1, HyperRect::box2(0, n, 0, 1));
    NodeId a_bc = g.broadcast(acol, 0, 0, n);
    NodeId b_bc = g.broadcast(brow, 1, 0, m);
    g.output(g.compute(BitOp::Mul, {a_bc, b_bc}), 2);
    TiledLayout lay({n, m}, {16, 16});
    auto prog = jit.lower(g, lay, map);

    ArrayStore store;
    store.declare("Acol", {1, m});
    store.declare("Brow", {n, 1});
    store.declare("C", {n, m});
    Rng rng(10);
    for (auto &v : store.array(0).data)
        v = rng.nextFloat(-1, 1);
    for (auto &v : store.array(1).data)
        v = rng.nextFloat(-1, 1);
    TdfgInterpreter(store).run(g);

    // The fabric's lattice holds all three arrays at their slots; load
    // the inputs at their lattice positions.
    BitAccurateFabric fab(lay);
    for (Coord i = 0; i < m; ++i)
        fab.tile(lay.tileOf({0, i}))
            .writeFloat(static_cast<unsigned>(lay.positionInTile({0, i})),
                        slotOf(*prog, 0), store.array(0).data[
                            static_cast<std::size_t>(i)]);
    for (Coord j = 0; j < n; ++j)
        fab.tile(lay.tileOf({j, 0}))
            .writeFloat(static_cast<unsigned>(lay.positionInTile({j, 0})),
                        slotOf(*prog, 1), store.array(1).data[
                            static_cast<std::size_t>(j)]);
    fab.execute(*prog);
    for (Coord i = 0; i < m; ++i)
        for (Coord j = 0; j < n; ++j)
            EXPECT_FLOAT_EQ(fab.element({j, i},
                                        outputSlotOf(*prog, 2)),
                            store.array(2).at({j, i}))
                << j << "," << i;
}

TEST_F(BitExecTest, InTileReductionPartials)
{
    // Reduce 512 values with tile 256: after the in-tile rounds plus one
    // inter-tile round, lane {0} holds the total.
    const Coord n = 512;
    TdfgGraph g(1, "sum");
    NodeId a = g.tensor(0, HyperRect::interval(0, n));
    NodeId r = g.reduce(a, BitOp::Add, 0);
    g.output(r, 1);
    TiledLayout lay({n}, {256});
    auto prog = jit.lower(g, lay, map);

    BitAccurateFabric fab(lay);
    std::vector<float> va(n);
    double expect = 0.0;
    Rng rng(12);
    for (auto &v : va) {
        v = rng.nextFloat(0, 1);
        expect += v;
    }
    fab.loadArray(va, slotOf(*prog, 0));
    fab.execute(*prog);
    float total = fab.element({0}, outputSlotOf(*prog, 1));
    EXPECT_NEAR(total, expect, 1e-2);
}

} // namespace
} // namespace infs
