#include <gtest/gtest.h>

#include "egraph/egraph.hh"

namespace infs {
namespace {

ENode
tensorNode(ArrayId a, HyperRect r)
{
    ENode n;
    n.kind = TdfgKind::Tensor;
    n.array = a;
    n.rect = std::move(r);
    return n;
}

ENode
computeNode(BitOp fn, std::vector<EClassId> kids)
{
    ENode n;
    n.kind = TdfgKind::Compute;
    n.fn = fn;
    n.children = std::move(kids);
    return n;
}

TEST(EGraph, HashConsingDeduplicates)
{
    EGraph eg(1);
    EClassId a = eg.add(tensorNode(0, HyperRect::interval(0, 8)));
    EClassId b = eg.add(tensorNode(0, HyperRect::interval(0, 8)));
    EXPECT_EQ(a, b);
    EClassId c = eg.add(tensorNode(0, HyperRect::interval(0, 9)));
    EXPECT_NE(a, c);
    EXPECT_EQ(eg.numClasses(), 2u);
}

TEST(EGraph, DomainsComputedPerSemantics)
{
    EGraph eg(1);
    EClassId a = eg.add(tensorNode(0, HyperRect::interval(0, 8)));
    EClassId b = eg.add(tensorNode(1, HyperRect::interval(2, 12)));
    EClassId c = eg.add(computeNode(BitOp::Add, {a, b}));
    EXPECT_EQ(eg.eclass(c).domain, HyperRect::interval(2, 8));

    ENode mv;
    mv.kind = TdfgKind::Move;
    mv.dim = 0;
    mv.dist = 3;
    mv.children = {a};
    EClassId m = eg.add(std::move(mv));
    EXPECT_EQ(eg.eclass(m).domain, HyperRect::interval(3, 11));
}

TEST(EGraph, MergeRejectsDomainMismatch)
{
    EGraph eg(1);
    EClassId a = eg.add(tensorNode(0, HyperRect::interval(0, 8)));
    EClassId b = eg.add(tensorNode(0, HyperRect::interval(0, 9)));
    EXPECT_FALSE(eg.merge(a, b));
    EXPECT_NE(eg.find(a), eg.find(b));
}

TEST(EGraph, MergeUnionsEqualDomains)
{
    EGraph eg(1);
    EClassId a = eg.add(tensorNode(0, HyperRect::interval(0, 8)));
    EClassId b = eg.add(tensorNode(1, HyperRect::interval(0, 8)));
    EXPECT_TRUE(eg.merge(a, b));
    EXPECT_EQ(eg.find(a), eg.find(b));
    EXPECT_EQ(eg.eclass(a).nodes.size(), 2u);
}

TEST(EGraph, CongruenceClosureAfterMerge)
{
    // If A == B then f(A) == f(B) after rebuild.
    EGraph eg(1);
    EClassId a = eg.add(tensorNode(0, HyperRect::interval(0, 8)));
    EClassId b = eg.add(tensorNode(1, HyperRect::interval(0, 8)));
    EClassId fa = eg.add(computeNode(BitOp::Relu, {a}));
    EClassId fb = eg.add(computeNode(BitOp::Relu, {b}));
    EXPECT_NE(eg.find(fa), eg.find(fb));
    eg.merge(a, b);
    eg.rebuild();
    EXPECT_EQ(eg.find(fa), eg.find(fb));
}

TEST(EGraph, FindPathCompression)
{
    EGraph eg(1);
    std::vector<EClassId> ids;
    for (int i = 0; i < 5; ++i)
        ids.push_back(eg.add(tensorNode(static_cast<ArrayId>(i),
                                        HyperRect::interval(0, 4))));
    for (int i = 1; i < 5; ++i)
        eg.merge(ids[0], ids[i]);
    eg.rebuild();
    EClassId root = eg.find(ids[0]);
    for (EClassId id : ids)
        EXPECT_EQ(eg.find(id), root);
    EXPECT_EQ(eg.eclass(root).nodes.size(), 5u);
}

} // namespace
} // namespace infs
