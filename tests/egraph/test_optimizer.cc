#include <gtest/gtest.h>

#include "egraph/egraph.hh"
#include "sim/rng.hh"
#include "tdfg/interp.hh"

namespace infs {
namespace {

/** Count nodes of a kind (optionally a specific compute fn). */
unsigned
countKind(const TdfgGraph &g, TdfgKind k, BitOp fn = BitOp::Copy)
{
    unsigned n = 0;
    for (const TdfgNode &node : g.nodes())
        if (node.kind == k && (fn == BitOp::Copy || node.fn == fn))
            ++n;
    return n;
}

/** Run both graphs through the interpreter and compare the out array. */
void
expectSameResult(const TdfgGraph &a, const TdfgGraph &b, ArrayId in,
                 ArrayId out, Coord n, unsigned seed = 11)
{
    auto run = [&](const TdfgGraph &g) {
        ArrayStore store;
        ArrayId A = store.declare("A", {n});
        ArrayId O = store.declare("O", {n});
        infs_assert(A == in && O == out, "test array ids drifted");
        Rng rng(seed);
        for (Coord i = 0; i < n; ++i)
            store.array(A).data[i] = rng.nextFloat(-3, 3);
        TdfgInterpreter interp(store);
        interp.run(g);
        return store.array(O).data;
    };
    auto va = run(a);
    auto vb = run(b);
    ASSERT_EQ(va.size(), vb.size());
    for (std::size_t i = 0; i < va.size(); ++i)
        EXPECT_NEAR(va[i], vb[i], 1e-4) << "element " << i;
}

/**
 * The appendix's worked example (Fig 20):
 *   out = mv(A[0,n-2)*V, +1) + mv(A[2,n)*V, -1)
 * The optimizer should discover the shared multiply over the expanded
 * tensor A[0,n) and compute it once.
 */
TdfgGraph
fig20Graph(Coord n, ArrayId A, ArrayId O)
{
    TdfgGraph g(1, "fig20");
    NodeId a0 = g.tensor(A, HyperRect::interval(0, n - 2), "A0");
    NodeId a2 = g.tensor(A, HyperRect::interval(2, n), "A2");
    NodeId v = g.constant(3.0, "V");
    NodeId m0 = g.compute(BitOp::Mul, {a0, v});
    NodeId m2 = g.compute(BitOp::Mul, {a2, v});
    NodeId s = g.compute(BitOp::Add,
                         {g.move(m0, 0, 1), g.move(m2, 0, -1)});
    g.output(s, O);
    return g;
}

TEST(Optimizer, Fig20SharesTheMultiply)
{
    const Coord n = 64;
    TdfgGraph g = fig20Graph(n, 0, 1);
    EXPECT_EQ(countKind(g, TdfgKind::Compute, BitOp::Mul), 2u);

    TdfgOptimizer opt;
    ExtractionResult res = opt.optimize(g);
    EXPECT_TRUE(res.graph.validate(false));
    // The two multiplies collapse into one on the expanded tensor.
    EXPECT_EQ(countKind(res.graph, TdfgKind::Compute, BitOp::Mul), 1u);
    EXPECT_GT(opt.rewritesApplied(), 0u);
    expectSameResult(g, res.graph, 0, 1, n);
}

TEST(Optimizer, Fig20OptimizedCostIsLower)
{
    TdfgGraph g = fig20Graph(64, 0, 1);
    // Cost of the extracted graph must not exceed the cost of extracting
    // with rewrites disabled (identity).
    TdfgOptimizer::Options off;
    off.maxIterations = 0;
    ExtractionResult base = TdfgOptimizer(off).optimize(g);
    ExtractionResult opt = TdfgOptimizer().optimize(g);
    EXPECT_LT(opt.cost, base.cost);
}

TEST(Optimizer, IdentityWhenNoRewritesApply)
{
    // Plain vec_add: nothing to optimize; semantics must be preserved.
    const Coord n = 32;
    TdfgGraph g(1, "vec_add");
    NodeId a = g.tensor(0, HyperRect::interval(0, n));
    NodeId b = g.compute(BitOp::Relu, {a});
    g.output(b, 1);
    ExtractionResult res = TdfgOptimizer().optimize(g);
    EXPECT_TRUE(res.graph.validate(false));
    EXPECT_EQ(countKind(res.graph, TdfgKind::Compute), 1u);
    expectSameResult(g, res.graph, 0, 1, n);
}

TEST(Optimizer, StencilWithSymmetricCoefficients)
{
    // B[i] = C0*A[i-1] + C1*A[i] + C0*A[i+1]: the two C0 multiplies are
    // shareable after move-exchange + expansion (Fig 6's pattern in 1-D).
    const Coord n = 48;
    TdfgGraph g(1, "sym_stencil");
    NodeId a0 = g.tensor(0, HyperRect::interval(0, n - 2));
    NodeId a1 = g.tensor(0, HyperRect::interval(1, n - 1));
    NodeId a2 = g.tensor(0, HyperRect::interval(2, n));
    NodeId c0 = g.constant(0.25);
    NodeId c1 = g.constant(0.5);
    NodeId t0 = g.move(g.compute(BitOp::Mul, {a0, c0}), 0, 1);
    NodeId t1 = g.compute(BitOp::Mul, {a1, c1});
    NodeId t2 = g.move(g.compute(BitOp::Mul, {a2, c0}), 0, -1);
    NodeId s = g.compute(BitOp::Add, {g.compute(BitOp::Add, {t0, t1}), t2});
    g.output(s, 1);

    ExtractionResult res = TdfgOptimizer().optimize(g);
    EXPECT_TRUE(res.graph.validate(false));
    // Three multiplies shrink to two (C0 shared, C1 kept).
    EXPECT_LE(countKind(res.graph, TdfgKind::Compute, BitOp::Mul), 2u);
    expectSameResult(g, res.graph, 0, 1, n);
}

TEST(Optimizer, PreservesStreamNodes)
{
    const Coord n = 128;
    TdfgGraph g(1, "sum");
    NodeId a = g.tensor(0, HyperRect::interval(0, n));
    NodeId part = g.reduce(a, BitOp::Add, 0);
    g.stream(StreamRole::Reduce, AccessPattern::linear(0, 0, n), part);
    ExtractionResult res = TdfgOptimizer().optimize(g);
    EXPECT_EQ(countKind(res.graph, TdfgKind::Stream), 1u);
    EXPECT_EQ(countKind(res.graph, TdfgKind::Reduce), 1u);
}

TEST(Optimizer, RespectsNodeBudget)
{
    TdfgGraph g = fig20Graph(64, 0, 1);
    TdfgOptimizer::Options opts;
    opts.maxNodes = 4; // Force early termination.
    TdfgOptimizer opt(opts);
    ExtractionResult res = opt.optimize(g);
    EXPECT_TRUE(res.graph.validate(false));
    EXPECT_LE(opt.iterationsRun(), opts.maxIterations);
    expectSameResult(g, res.graph, 0, 1, 64);
}

TEST(Optimizer, AblationFlagsDisableRules)
{
    TdfgGraph g = fig20Graph(64, 0, 1);
    TdfgOptimizer::Options opts;
    opts.enableExpansion = false;
    opts.enableAlgebra = false; // Distributivity can also factor out V.
    ExtractionResult res = TdfgOptimizer(opts).optimize(g);
    // Without expansion or algebra the multiplies cannot be shared.
    EXPECT_EQ(countKind(res.graph, TdfgKind::Compute, BitOp::Mul), 2u);
    expectSameResult(g, res.graph, 0, 1, 64);
}

TEST(Optimizer, ExtractionNeverIncreasesCost)
{
    // Property: for several random stencil shapes, optimized cost <=
    // unoptimized cost and semantics hold.
    for (unsigned seed = 0; seed < 4; ++seed) {
        const Coord n = 40 + 8 * seed;
        TdfgGraph g = fig20Graph(n, 0, 1);
        TdfgOptimizer::Options off;
        off.maxIterations = 0;
        double base = TdfgOptimizer(off).optimize(g).cost;
        ExtractionResult res = TdfgOptimizer().optimize(g);
        EXPECT_LE(res.cost, base + 1e-9);
        expectSameResult(g, res.graph, 0, 1, n, seed + 1);
    }
}

} // namespace
} // namespace infs
