/**
 * @file
 * Recoverable error reporting: a lightweight StatusOr-style Expected<T>.
 * The Inf-S runtime must keep serving when a region cannot be lowered or
 * a modeled hardware fault persists — such user-triggerable conditions
 * return an Error diagnostic instead of aborting the whole simulation
 * (infs_fatal remains for genuinely unrecoverable configuration errors,
 * infs_panic for simulator bugs).
 */

#ifndef INFS_SIM_EXPECTED_HH
#define INFS_SIM_EXPECTED_HH

#include <string>
#include <utility>
#include <variant>

#include "sim/logging.hh"

namespace infs {

/** Machine-readable classification of recoverable runtime errors. */
enum class ErrCode : std::uint8_t {
    Ok,               ///< No error (never stored in an Error).
    OutOfSlots,       ///< Tensor set exceeds the wordline slots (§6).
    UnsupportedMove,  ///< mv distance the shift compiler cannot honor.
    LayoutConstraint, ///< Shape/tile violates a layout constraint (§4.1).
    CommandFailed,    ///< In-memory command faulted past the retry budget.
    InvalidArgument,  ///< Malformed user input (rank mismatch, zero dim).
    VerifyFailed,     ///< Static analysis found the IR/commands invalid.
};

/** Human-readable error-code name. */
const char *errCodeName(ErrCode c);

/** One recoverable diagnostic: code + human-readable message. */
struct Error {
    ErrCode code = ErrCode::Ok;
    std::string message;

    /** "code: message" rendering for logs and tests. */
    std::string
    str() const
    {
        return std::string(errCodeName(code)) + ": " + message;
    }
};

/**
 * Either a value or an Error. Deliberately minimal: enough for the
 * runtime's recoverable paths without pulling in std::expected (C++23).
 */
template <typename T>
class Expected
{
  public:
    Expected(T value) : state_(std::move(value)) {}
    Expected(Error err) : state_(std::move(err)) {}

    static Expected
    failure(ErrCode code, std::string message)
    {
        return Expected(Error{code, std::move(message)});
    }

    bool ok() const { return std::holds_alternative<T>(state_); }
    explicit operator bool() const { return ok(); }

    /** The contained value; panics when holding an error. */
    T &
    value()
    {
        infs_assert(ok(), "Expected::value() on error: %s",
                    std::get<Error>(state_).str().c_str());
        return std::get<T>(state_);
    }

    const T &
    value() const
    {
        infs_assert(ok(), "Expected::value() on error: %s",
                    std::get<Error>(state_).str().c_str());
        return std::get<T>(state_);
    }

    T &operator*() { return value(); }
    const T &operator*() const { return value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

    /** The contained error; panics when holding a value. */
    const Error &
    error() const
    {
        infs_assert(!ok(), "Expected::error() on value");
        return std::get<Error>(state_);
    }

  private:
    std::variant<T, Error> state_;
};

} // namespace infs

#endif // INFS_SIM_EXPECTED_HH
