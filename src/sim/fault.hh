/**
 * @file
 * Deterministic, seed-driven fault injection (the robustness counterpart
 * of the paper's silent in-/near-memory fallback, §4.3). One injector per
 * simulated system samples transient hardware faults — bit flips in the
 * bit-serial SRAM wordlines, dropped/corrupted NoC packets, and failing
 * in-memory commands — from independent per-domain xoshiro streams, so
 * the fault schedule of one domain never depends on how often another
 * domain is consulted. The same SystemConfig seed always reproduces the
 * same schedule.
 */

#ifndef INFS_SIM_FAULT_HH
#define INFS_SIM_FAULT_HH

#include <cstdint>

#include "sim/config.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace infs {

class StatRegistry;

/** Fault domains, each with an independent deterministic draw stream. */
enum class FaultDomain : std::uint8_t {
    Sram,     ///< Bit flips in compute-SRAM wordlines.
    Noc,      ///< Dropped or corrupted mesh packets.
    Command,  ///< Transiently failing in-memory commands.
};

/** Outcome of sampling a command-level fault. */
struct CmdFault {
    bool faulted = false;     ///< The command failed this issue.
    bool persistent = false;  ///< Retries will not clear it (hard fault).
};

/** Integer snapshot of the injector's counters (for tests). */
struct FaultStats {
    std::uint64_t sramBitFlips = 0;
    std::uint64_t nocPacketFaults = 0;
    std::uint64_t cmdFaults = 0;
    std::uint64_t detected = 0;
    std::uint64_t retries = 0;
    std::uint64_t exhausted = 0;   ///< Faults persisting past the budget.
    std::uint64_t retryCycles = 0; ///< Modeled detect + re-issue time.

    std::uint64_t
    totalInjected() const
    {
        return sramBitFlips + nocPacketFaults + cmdFaults;
    }
};

/**
 * The fault injector. Components hold a pointer (null or disabled means
 * zero overhead and bit-identical behavior to a fault-free build) and ask
 * it whether the event they are about to model faults. Detection and
 * recovery accounting (parity/ECC checks, bounded retries) also flow
 * through here so every counter ends up in one place.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultConfig &cfg);

    const FaultConfig &config() const { return cfg_; }
    bool enabled() const { return cfg_.enabled; }

    // ------------------------------------------------------------------
    // Sampling (each advances only its own domain's stream).
    // ------------------------------------------------------------------

    /** Does the SRAM compute about to issue suffer a wordline bit flip? */
    bool sampleSramFlip();

    /** Does this NoC packet get dropped or corrupted in flight? */
    bool sampleNocPacketFault();

    /**
     * Faulted packet count for a bulk flow of @p packets (expected value
     * packets x rate, deterministically rounded via the NoC stream).
     */
    std::uint64_t sampleNocBulkFaults(std::uint64_t packets);

    /** Does the in-memory command about to issue fail, and persistently? */
    CmdFault sampleCmdFault();

    /** Uniform draw in [0, bound) from @p domain's stream (site picking). */
    std::uint64_t draw(FaultDomain domain, std::uint64_t bound);

    // ------------------------------------------------------------------
    // Recovery accounting.
    // ------------------------------------------------------------------

    /** A parity/ECC/CRC check caught a fault. @return detection cycles. */
    Tick recordDetection();

    /** One bounded retry (re-execute / retransmit). @return its penalty. */
    Tick recordRetry(Tick reissue_cycles = 0);

    /** A fault persisted past the retry budget (region will degrade). */
    void recordExhausted();

    // ------------------------------------------------------------------
    // Stats.
    // ------------------------------------------------------------------

    FaultStats snapshot() const;

    /** Register every counter with a stats registry ("fault.*" names). */
    void registerWith(StatRegistry &reg);

    /** Zero all counters and restart the schedule from the config seed. */
    void reset();

  private:
    Rng &rng(FaultDomain d);

    FaultConfig cfg_;
    Rng rngs_[3];

    Counter sramFlips_{"fault.injected.sram_bit_flip"};
    Counter nocFaults_{"fault.injected.noc_packet"};
    Counter cmdFaults_{"fault.injected.cmd_transient"};
    Counter detected_{"fault.detected"};
    Counter retries_{"fault.retried"};
    Counter exhausted_{"fault.exhausted"};
    Counter retryCycles_{"fault.retry_cycles"};
};

} // namespace infs

#endif // INFS_SIM_FAULT_HH
