/**
 * @file
 * System and microarchitecture parameters (paper Table 2). All simulated
 * components are constructed from one SystemConfig so experiments can sweep
 * parameters without recompiling.
 */

#ifndef INFS_SIM_CONFIG_HH
#define INFS_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace infs {

/** Core pipeline model parameters (issue-limited abstract OOO8). */
struct CoreConfig {
    double ghz = 2.0;              ///< Clock frequency.
    unsigned issueWidth = 8;       ///< Micro-ops issued per cycle.
    unsigned simdLanesFp32 = 16;   ///< One 512-bit vector op per cycle.
    Tick fpAluLatency = 4;         ///< FP ALU/SIMD latency.
    Tick intAluLatency = 1;        ///< Int ALU latency.
    Tick fpDivLatency = 12;
    Tick intMulLatency = 3;
};

/** Private cache parameters. */
struct CacheConfig {
    Bytes l1Bytes = 32 * 1024;
    Tick l1Latency = 2;
    Bytes l2Bytes = 256 * 1024;
    Tick l2Latency = 16;
    /** L1/L2 prefetchers modeled as a hit-rate boost for streaming loads. */
    double prefetchAccuracy = 0.9;
};

/** Shared L3 (NUCA) parameters. */
struct L3Config {
    unsigned numBanks = 64;           ///< One bank per tile, 8x8.
    unsigned waysPerBank = 18;        ///< 18 ways; 16 reservable.
    unsigned computeWays = 16;        ///< Ways reservable for in-memory.
    unsigned arraysPerWay = 16;       ///< 256x256 SRAM arrays per way.
    unsigned wordlines = 256;         ///< Rows per SRAM array.
    unsigned bitlines = 256;          ///< Columns (PEs) per SRAM array.
    Tick bankLatency = 20;            ///< Access latency per Table 2.
    Bytes interleave = 1024;          ///< Static NUCA interleave granule.
    Bytes htreeBandwidth = 64;        ///< H-tree total bytes/cycle per bank.

    /** Bytes of one SRAM array (256x256 bits = 8kB). */
    Bytes arrayBytes() const { return Bytes(wordlines) * bitlines / 8; }
    /** Total capacity in bytes across all ways. */
    Bytes totalBytes() const
    {
        return Bytes(numBanks) * waysPerBank * arraysPerWay * arrayBytes();
    }
    /** Compute-reservable capacity in bytes. */
    Bytes computeBytes() const
    {
        return Bytes(numBanks) * computeWays * arraysPerWay * arrayBytes();
    }
    /** Total compute SRAM arrays available for in-memory execution. */
    std::uint64_t totalComputeArrays() const
    {
        return std::uint64_t(numBanks) * computeWays * arraysPerWay;
    }
    /** Total bitlines (PEs) available for in-memory execution. */
    std::uint64_t totalBitlines() const
    {
        return totalComputeArrays() * bitlines;
    }
};

/** Mesh network-on-chip parameters. */
struct NocConfig {
    unsigned meshX = 8;
    unsigned meshY = 8;
    Bytes linkBytes = 32;      ///< Bytes per link per cycle.
    Tick linkLatency = 1;
    Tick routerStages = 5;     ///< Pipeline stages per router hop.
    unsigned memCtrls = 16;    ///< Memory controllers on the mesh edge.
};

/** Main memory parameters. */
struct DramConfig {
    double bandwidthGBs = 25.6;   ///< DDR4-3200 per Table 2.
    Tick latency = 200;           ///< Loaded access latency in core cycles.

    /** Bytes deliverable per core cycle at the given core frequency. */
    double bytesPerCycle(double ghz = 2.0) const
    {
        return bandwidthGBs / ghz; // GB/s over Gcycle/s.
    }
};

/** Stream engine parameters (NSC near-memory baseline). */
struct StreamConfig {
    unsigned coreStreams = 12;       ///< SEcore FIFO streams.
    Bytes coreFifoBytes = 2048;
    unsigned l3Streams = 768;        ///< SEL3 stream contexts.
    Bytes l3BufferBytes = 64 * 1024;
    Tick computeInitLatency = 4;     ///< SEL3 compute initiation.
    unsigned flowControlLines = 8;   ///< Sync every N cache lines.
    /** fp32 lanes per bank for near-stream computation (NSC executes
     * SIMD ops on a spare hardware context, §2.1). */
    unsigned sel3LanesFp32 = 16;
};

/**
 * Fault-injection parameters. Rates are per-event probabilities; with
 * `enabled == false` (the default) every fault hook is skipped entirely
 * and simulation results are bit-identical to a fault-free build.
 */
struct FaultConfig {
    bool enabled = false;          ///< Master switch for all injection.
    std::uint64_t seed = 0x1f5eedULL; ///< Deterministic schedule seed.

    /** Probability a compute command suffers an SRAM wordline bit flip. */
    double sramBitFlipRate = 0.0;
    /** Probability a NoC packet is dropped or corrupted in flight. */
    double nocFaultRate = 0.0;
    /** Probability an in-memory command fails transiently at issue. */
    double cmdTransientRate = 0.0;
    /** Fraction of command faults that persist across retries. */
    double persistentFraction = 0.0;

    unsigned retryBudget = 3;      ///< Bounded retries before degrading.
    Tick detectCycles = 4;         ///< Parity/ECC check latency per fault.
    Tick retryPenaltyCycles = 8;   ///< Re-issue overhead per retry.
};

/**
 * How much static analysis (src/analysis) the runtime performs on its own
 * intermediate artifacts before executing them.
 */
enum class VerifyLevel : std::uint8_t {
    Off,    ///< No verification (production default).
    Graphs, ///< tDFG verifier on every graph the runtime handles.
    Full,   ///< Graphs + command-stream hazard analysis per lowering.
};

/** Human-readable verify-level name ("off"/"graphs"/"full"). */
const char *verifyLevelName(VerifyLevel v);

/**
 * Which execution backend runs lowered in-memory jobs (src/core/backend.hh).
 * The enum lives here, next to VerifyLevel, so SystemConfig can carry the
 * selection without the sim layer depending on core.
 */
enum class ExecBackendKind : std::uint8_t {
    Fabric,     ///< Bit-accurate SRAM fabric: ground truth for bits.
    Functional, ///< Word-level command replay: bit-identical, no bit-serial.
    Timing,     ///< Cycle replay only: sim_cycles/NoC/energy, no bits.
};

/** Human-readable backend name ("fabric"/"functional"/"timing"). */
const char *backendName(ExecBackendKind b);

/** Parse a backend name; returns false (leaving @p out untouched) on an
 * unknown name so CLIs can fail loudly with a usage message. */
bool parseBackendName(const std::string &name, ExecBackendKind &out);

/**
 * Which SIMD instruction set the bit-plane kernels (src/bitserial/simd.hh)
 * dispatch to. One binary carries every path; the active one is picked at
 * runtime from this knob, the INFS_SIMD environment variable, or cpuid
 * detection (in that order). All paths are bit-identical by construction
 * and certified by tests/bitserial/test_simd_paths.cc.
 */
enum class SimdIsa : std::uint8_t {
    Auto,     ///< Resolve from INFS_SIMD, else detect the best available.
    Off,      ///< Legacy inline word loops (no dispatch-layer kernels).
    Portable, ///< Dispatch-layer kernels in portable scalar code.
    Avx2,     ///< x86 AVX2 kernels (requires hardware support).
    Neon,     ///< AArch64 NEON kernels (requires hardware support).
};

/** Human-readable ISA name ("auto"/"off"/"portable"/"avx2"/"neon"). */
const char *simdIsaName(SimdIsa isa);

/** Parse an ISA name; returns false (leaving @p out untouched) on an
 * unknown name so CLIs can fail loudly with a usage message. */
bool parseSimdIsaName(const std::string &name, SimdIsa &out);

/** Tensor controller / JIT runtime parameters. */
struct TensorConfig {
    unsigned lotEntries = 16;          ///< Layout override table regions.
    DType elemType = DType::Fp32;      ///< In-memory element type.
    Bytes commandCacheBytes = 2048;    ///< TCcore command cache.
    std::uint64_t releaseRequestThreshold = 100000;
    Tick releaseTimerTicks = 100000;
    double l3MissRateReleaseThreshold = 0.5;
    /** JIT cost per lowered tDFG node in core cycles (calibrated so the
     * Table 3 regions land near the paper's 220 us mean with gauss_elim
     * as the 1616 us outlier, §8). */
    Tick jitPerNodeCycles = 100;
    /** JIT cost per generated command in core cycles. */
    Tick jitPerCommandCycles = 12;
    /** Fixed JIT invocation overhead in cycles. */
    Tick jitFixedCycles = 400;
};

/** Full system configuration (Table 2 defaults). */
struct SystemConfig {
    CoreConfig core;
    CacheConfig cache;
    L3Config l3;
    NocConfig noc;
    DramConfig dram;
    StreamConfig stream;
    TensorConfig tensor;
    FaultConfig fault;
    /** Static-analysis level for graphs and lowered command streams. */
    VerifyLevel verifyLevel = VerifyLevel::Off;

    /**
     * Lowered-command optimizer (src/jit/cmdopt.hh): movement coalescing,
     * redundant-command elimination, and hazard-driven Sync elision on
     * every cold lowering, between Alg. 2 lowering and backend execution.
     * Byte-preserving on the output slots by construction and certified
     * by the backend differential tests; at verifyLevel Full the hazard
     * analyzer additionally re-checks every optimized stream and the JIT
     * falls back to the raw stream on any diagnostic (DESIGN.md §13).
     */
    bool cmdOpt = true;

    /** Sync-elision sub-pass of the command optimizer; separate knob so
     * the ablation harness (`infs-bench --ablate`) can quantify barrier
     * elision apart from the peephole rewrites. No effect when cmdOpt is
     * off. */
    bool cmdOptSyncElision = true;

    /** Execution backend for lowered in-memory jobs. Fabric is the
     * bit-accurate ground truth; functional and timing are the fast
     * backends certified against it by tests/core/test_backend_diff.cc. */
    ExecBackendKind backend = ExecBackendKind::Fabric;

    /** SIMD ISA for the bit-plane kernels (DESIGN.md §14). Auto resolves
     * from the INFS_SIMD environment variable, then cpuid detection.
     * Every path produces byte-identical bits and identical ExecStats. */
    SimdIsa simd = SimdIsa::Auto;

    /**
     * NUMA-aware placement (DESIGN.md §14): pin thread-pool workers
     * round-robin across the NUMA nodes of the host and construct bank
     * shards (fabric tiles) on the workers that will execute them, so
     * first-touch allocation lands tile state on the node that computes
     * it. On single-node hosts (or with the knob off) behavior is exactly
     * today's: no affinity calls, identical results either way — NUMA
     * placement is purely a wall-clock knob like hostThreads.
     */
    bool numaAware = true;

    /**
     * Fat-binary schedule selection (DESIGN.md §14): the JIT lowers up to
     * fatBinaryCandidates tile schedules per memoized region and the
     * executor picks at dispatch time by replayed cost weighted with
     * observed bank occupancy. Candidates sharing the reduced dimension's
     * tile size are byte-identical on outputs, so selection never changes
     * results — only simulated time. Off = today's single-schedule path.
     */
    bool fatBinary = true;

    /** Max candidate schedules the JIT pre-lowers per region (>= 1). */
    unsigned fatBinaryCandidates = 3;

    /**
     * Host threads the simulator's parallel engine may use (bank-parallel
     * fabric execution, per-subtensor JIT lowering, region pre-lowering —
     * DESIGN.md §10). 0 = `hardware_concurrency`; 1 = exact legacy
     * single-thread behavior. Simulation results are bit-identical for
     * every value (the engine shards deterministically and merges in a
     * fixed order), so this is purely a wall-clock knob.
     */
    unsigned hostThreads = 0;

    unsigned numCores() const { return noc.meshX * noc.meshY; }

    /** Peak fp32 multicore throughput in ops/cycle (Eq. 1 baseline). */
    double basePeakOpsPerCycle() const
    {
        return double(numCores()) * core.simdLanesFp32;
    }

    /** Human-readable one-line summary for bench headers. */
    std::string summary() const;
};

/** The default Table 2 configuration. */
SystemConfig defaultSystemConfig();

/** A scaled-down configuration for fast unit tests (same shape). */
SystemConfig testSystemConfig();

} // namespace infs

#endif // INFS_SIM_CONFIG_HH
