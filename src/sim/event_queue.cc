#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace infs {

std::uint64_t
EventQueue::schedule(Tick when, Callback cb, EventPriority prio)
{
    infs_assert(when >= curTick_,
                "scheduling into the past: when=%llu now=%llu",
                static_cast<unsigned long long>(when),
                static_cast<unsigned long long>(curTick_));
    std::uint64_t seq = nextSeq_++;
    heap_.push(Entry{when, static_cast<int>(prio), seq});
    callbacks_.emplace(seq, std::move(cb));
    return seq;
}

bool
EventQueue::deschedule(std::uint64_t id)
{
    return callbacks_.erase(id) > 0;
}

bool
EventQueue::step()
{
    while (!heap_.empty()) {
        Entry e = heap_.top();
        heap_.pop();
        auto it = callbacks_.find(e.seq);
        if (it == callbacks_.end())
            continue; // Cancelled; keep draining.
        curTick_ = e.when;
        Callback run = std::move(it->second);
        callbacks_.erase(it);
        ++numDispatched_;
        run();
        return true;
    }
    return false;
}

Tick
EventQueue::run(Tick limit)
{
    while (!heap_.empty() && heap_.top().when <= limit) {
        if (!step())
            break;
    }
    return curTick_;
}

void
EventQueue::reset()
{
    heap_ = decltype(heap_)();
    callbacks_.clear();
    curTick_ = 0;
    nextSeq_ = 0;
    numDispatched_ = 0;
}

} // namespace infs
