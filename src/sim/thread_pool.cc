#include "sim/thread_pool.hh"

#include <algorithm>

#include "sim/logging.hh"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace infs {

/** Completion tracking for one batch of tasks. */
struct ThreadPool::TaskGroup {
    std::atomic<std::size_t> remaining{0};
};

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    threads_ = threads;
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(sleepMu_);
        stopping_.store(true);
    }
    sleepCv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::setNumaPinning(std::vector<std::vector<unsigned>> node_cpus)
{
    std::lock_guard<std::mutex> lk(startMu_);
    if (started_.load(std::memory_order_relaxed))
        return; // Workers already placed; too late to move them.
    // Drop nodes with no CPUs (memory-only nodes take no workers); a
    // single remaining node means pinning buys nothing.
    std::erase_if(node_cpus,
                  [](const std::vector<unsigned> &c) { return c.empty(); });
    if (node_cpus.size() <= 1)
        return;
    nodeCpus_ = std::move(node_cpus);
}

void
ThreadPool::pinWorker(std::thread &t, unsigned index) const
{
#ifdef __linux__
    if (nodeCpus_.empty())
        return;
    // Round-robin workers across nodes: worker i serves the deterministic
    // chunk i of every parallelFor, so bank shards first-touched by worker
    // i stay local to its node for the whole run.
    const auto &cpus = nodeCpus_[index % nodeCpus_.size()];
    cpu_set_t set;
    CPU_ZERO(&set);
    for (unsigned c : cpus) {
        if (c < CPU_SETSIZE)
            CPU_SET(c, &set);
    }
    if (CPU_COUNT(&set) > 0)
        pthread_setaffinity_np(t.native_handle(), sizeof(set), &set);
#else
    (void)t;
    (void)index;
#endif
}

void
ThreadPool::startWorkers()
{
    if (started_.load(std::memory_order_acquire))
        return;
    std::lock_guard<std::mutex> lk(startMu_);
    if (started_.load(std::memory_order_relaxed))
        return;
    const unsigned n_workers = threads_ - 1;
    queues_.reserve(n_workers);
    for (unsigned i = 0; i < n_workers; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    workers_.reserve(n_workers);
    for (unsigned i = 0; i < n_workers; ++i) {
        workers_.emplace_back([this, i] { workerLoop(i); });
        pinWorker(workers_.back(), i);
    }
    started_.store(true, std::memory_order_release);
}

void
ThreadPool::submit(std::vector<Task> &&tasks)
{
    startWorkers();
    // Round-robin across worker deques (plus the injection queue) so a
    // batch spreads before any stealing is needed.
    const std::size_t lanes = queues_.size() + 1;
    std::size_t lane = 0;
    for (Task &t : tasks) {
        WorkerQueue &q =
            lane < queues_.size() ? *queues_[lane] : inject_;
        {
            std::lock_guard<std::mutex> lk(q.mu);
            q.dq.push_back(std::move(t));
        }
        lane = (lane + 1) % lanes;
    }
    {
        // Empty critical section pairs with the workers' predicate check
        // so a notify cannot slip between their scan and their wait.
        std::lock_guard<std::mutex> lk(sleepMu_);
    }
    sleepCv_.notify_all();
}

bool
ThreadPool::tryTake(unsigned self, Task &out)
{
    // Own queue first, newest task (LIFO keeps caches warm) ...
    if (self < queues_.size()) {
        WorkerQueue &own = *queues_[self];
        std::lock_guard<std::mutex> lk(own.mu);
        if (!own.dq.empty()) {
            out = std::move(own.dq.back());
            own.dq.pop_back();
            return true;
        }
    }
    // ... then the injection queue, then steal the *oldest* task from a
    // victim (FIFO stealing takes the largest remaining chunk of work).
    {
        std::lock_guard<std::mutex> lk(inject_.mu);
        if (!inject_.dq.empty()) {
            out = std::move(inject_.dq.front());
            inject_.dq.pop_front();
            if (self != ~0u)
                stolen_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    for (std::size_t v = 0; v < queues_.size(); ++v) {
        if (v == self)
            continue;
        WorkerQueue &victim = *queues_[v];
        std::lock_guard<std::mutex> lk(victim.mu);
        if (!victim.dq.empty()) {
            out = std::move(victim.dq.front());
            victim.dq.pop_front();
            if (self != ~0u)
                stolen_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    return false;
}

void
ThreadPool::runTask(Task &&t)
{
    t.fn();
    if (t.group != nullptr) {
        if (t.group->remaining.fetch_sub(1, std::memory_order_acq_rel) ==
            1) {
            std::lock_guard<std::mutex> lk(sleepMu_);
            sleepCv_.notify_all();
        }
    }
}

void
ThreadPool::workerLoop(unsigned self)
{
    auto anyPending = [this] {
        {
            std::lock_guard<std::mutex> lk(inject_.mu);
            if (!inject_.dq.empty())
                return true;
        }
        for (const auto &q : queues_) {
            std::lock_guard<std::mutex> lk(q->mu);
            if (!q->dq.empty())
                return true;
        }
        return false;
    };
    for (;;) {
        Task t;
        if (tryTake(self, t)) {
            runTask(std::move(t));
            continue;
        }
        std::unique_lock<std::mutex> lk(sleepMu_);
        if (stopping_.load())
            return;
        sleepCv_.wait(lk, [&] { return stopping_.load() || anyPending(); });
        if (stopping_.load())
            return;
    }
}

void
ThreadPool::helpUntilDone(TaskGroup &group)
{
    auto anyPending = [this] {
        {
            std::lock_guard<std::mutex> lk(inject_.mu);
            if (!inject_.dq.empty())
                return true;
        }
        for (const auto &q : queues_) {
            std::lock_guard<std::mutex> lk(q->mu);
            if (!q->dq.empty())
                return true;
        }
        return false;
    };
    for (;;) {
        if (group.remaining.load(std::memory_order_acquire) == 0)
            return;
        // Help: run *any* pending task (ours or a nested batch's) rather
        // than blocking — this is what makes nested parallelism safe.
        Task t;
        if (tryTake(~0u, t)) {
            runTask(std::move(t));
            continue;
        }
        std::unique_lock<std::mutex> lk(sleepMu_);
        if (group.remaining.load(std::memory_order_acquire) == 0)
            return;
        sleepCv_.wait(lk, [&] {
            return group.remaining.load(std::memory_order_acquire) == 0 ||
                   anyPending();
        });
    }
}

void
ThreadPool::runTasks(std::vector<std::function<void()>> tasks)
{
    if (tasks.empty())
        return;
    if (inlineOnly() || tasks.size() == 1) {
        for (auto &fn : tasks)
            fn();
        return;
    }
    TaskGroup group;
    group.remaining.store(tasks.size(), std::memory_order_relaxed);
    std::vector<Task> wrapped;
    wrapped.reserve(tasks.size());
    for (auto &fn : tasks)
        wrapped.push_back(Task{std::move(fn), &group});
    submit(std::move(wrapped));
    helpUntilDone(group);
}

void
ThreadPool::parallelFor(std::int64_t n,
                        const std::function<void(std::int64_t)> &fn,
                        std::int64_t grain)
{
    if (n <= 0)
        return;
    grain = std::max<std::int64_t>(grain, 1);
    if (inlineOnly() || n <= grain) {
        for (std::int64_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    // Deterministic chunking: a pure function of (n, grain, threads) so
    // callers sharding per-chunk state get reproducible shards. ~4 chunks
    // per thread balances stealing against per-task overhead.
    const std::int64_t target_chunks =
        static_cast<std::int64_t>(threads_) * 4;
    const std::int64_t chunk = std::max<std::int64_t>(
        grain, (n + target_chunks - 1) / target_chunks);
    const std::int64_t n_chunks = (n + chunk - 1) / chunk;
    if (n_chunks <= 1) {
        for (std::int64_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    TaskGroup group;
    group.remaining.store(static_cast<std::size_t>(n_chunks),
                          std::memory_order_relaxed);
    std::vector<Task> tasks;
    tasks.reserve(static_cast<std::size_t>(n_chunks));
    for (std::int64_t c = 0; c < n_chunks; ++c) {
        const std::int64_t lo = c * chunk;
        const std::int64_t hi = std::min(n, lo + chunk);
        tasks.push_back(Task{[&fn, lo, hi] {
                                 for (std::int64_t i = lo; i < hi; ++i)
                                     fn(i);
                             },
                             &group});
    }
    submit(std::move(tasks));
    helpUntilDone(group);
}

std::size_t
ThreadPool::pendingTasks() const
{
    std::size_t n = 0;
    {
        std::lock_guard<std::mutex> lk(inject_.mu);
        n += inject_.dq.size();
    }
    for (const auto &q : queues_) {
        std::lock_guard<std::mutex> lk(q->mu);
        n += q->dq.size();
    }
    return n;
}

} // namespace infs
