/**
 * @file
 * gem5-style status and error reporting: panic() for internal invariant
 * violations (simulator bug), fatal() for user errors (bad configuration),
 * warn()/inform() for status messages that never stop the run.
 */

#ifndef INFS_SIM_LOGGING_HH
#define INFS_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace infs {

/** Global verbosity: 0 silent, 1 inform, 2 debug. */
int logVerbosity();

/** Set global verbosity (returns previous value). */
int setLogVerbosity(int level);

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

std::string formatMessage(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

} // namespace infs

/** Abort on a condition that should never happen (simulator bug). */
#define infs_panic(...) \
    ::infs::detail::panicImpl(__FILE__, __LINE__, \
                              ::infs::detail::formatMessage(__VA_ARGS__))

/** Exit on a condition that is the user's fault (bad configuration). */
#define infs_fatal(...) \
    ::infs::detail::fatalImpl(__FILE__, __LINE__, \
                              ::infs::detail::formatMessage(__VA_ARGS__))

/** Panic when a required invariant does not hold. */
#define infs_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::infs::detail::panicImpl( \
                __FILE__, __LINE__, \
                std::string("assertion failed: " #cond " — ") + \
                    ::infs::detail::formatMessage(__VA_ARGS__)); \
        } \
    } while (0)

/** Non-fatal diagnostic about questionable behaviour. */
#define infs_warn(...) \
    ::infs::detail::warnImpl(::infs::detail::formatMessage(__VA_ARGS__))

/** Normal operating message, gated by verbosity. */
#define infs_inform(...) \
    do { \
        if (::infs::logVerbosity() >= 1) { \
            ::infs::detail::informImpl( \
                ::infs::detail::formatMessage(__VA_ARGS__)); \
        } \
    } while (0)

#endif // INFS_SIM_LOGGING_HH
