/**
 * @file
 * Lightweight statistics package: named scalar counters, distributions, and
 * a registry for dumping. Modeled loosely on gem5's Stats but minimal.
 */

#ifndef INFS_SIM_STATS_HH
#define INFS_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace infs {

/** A named monotonically accumulating scalar statistic. */
class Counter
{
  public:
    Counter() = default;
    explicit Counter(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    double value() const { return value_; }

    Counter &operator+=(double v) { value_ += v; return *this; }
    Counter &operator++() { value_ += 1.0; return *this; }
    void reset() { value_ = 0.0; }

  private:
    std::string name_;
    double value_ = 0.0;
};

/** Running distribution: count/sum/min/max/mean/variance (Welford). */
class Distribution
{
  public:
    Distribution() = default;
    explicit Distribution(std::string name) : name_(std::move(name)) {}

    void sample(double v);

    const std::string &name() const { return name_; }
    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    /** Population standard deviation. */
    double stddev() const;
    void reset();

  private:
    std::string name_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/**
 * A flat registry of statistics keyed by dotted path
 * (e.g. "noc.hops.data"). Owners register references; the registry does
 * not own the stats.
 */
class StatRegistry
{
  public:
    void add(Counter &c);
    void add(Distribution &d);

    /** Sum of all counters whose name starts with @p prefix. */
    double sumByPrefix(const std::string &prefix) const;

    /** Look up a counter by exact name; panics when missing. */
    const Counter &counter(const std::string &name) const;

    /** True when a counter with this exact name is registered. */
    bool hasCounter(const std::string &name) const;

    /** Reset every registered stat to zero. */
    void resetAll();

    /** Print "name value" lines sorted by name. */
    void dump(std::ostream &os) const;

  private:
    std::map<std::string, Counter *> counters_;
    std::map<std::string, Distribution *> dists_;
};

} // namespace infs

#endif // INFS_SIM_STATS_HH
