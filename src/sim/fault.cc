/**
 * @file
 * FaultInjector implementation. Every domain draws from its own xoshiro
 * stream, salted from the one config seed, so the schedule in one domain
 * is independent of how often the others sample — a run that consults
 * the NoC more (e.g. a different tile choice) still sees the same SRAM
 * flip schedule for the same seed.
 */

#include "sim/fault.hh"

#include <cmath>

#include "sim/expected.hh"
#include "sim/logging.hh"

namespace infs {

const char *
errCodeName(ErrCode c)
{
    switch (c) {
      case ErrCode::Ok: return "ok";
      case ErrCode::OutOfSlots: return "out_of_slots";
      case ErrCode::UnsupportedMove: return "unsupported_move";
      case ErrCode::LayoutConstraint: return "layout_constraint";
      case ErrCode::CommandFailed: return "command_failed";
      case ErrCode::InvalidArgument: return "invalid_argument";
      case ErrCode::VerifyFailed: return "verify_failed";
    }
    return "unknown";
}

FaultInjector::FaultInjector(const FaultConfig &cfg) : cfg_(cfg)
{
    reset();
}

Rng &
FaultInjector::rng(FaultDomain d)
{
    return rngs_[static_cast<unsigned>(d)];
}

bool
FaultInjector::sampleSramFlip()
{
    if (!cfg_.enabled || cfg_.sramBitFlipRate <= 0.0)
        return false;
    if (rng(FaultDomain::Sram).nextDouble() >= cfg_.sramBitFlipRate)
        return false;
    ++sramFlips_;
    return true;
}

bool
FaultInjector::sampleNocPacketFault()
{
    if (!cfg_.enabled || cfg_.nocFaultRate <= 0.0)
        return false;
    if (rng(FaultDomain::Noc).nextDouble() >= cfg_.nocFaultRate)
        return false;
    ++nocFaults_;
    return true;
}

std::uint64_t
FaultInjector::sampleNocBulkFaults(std::uint64_t packets)
{
    if (!cfg_.enabled || cfg_.nocFaultRate <= 0.0 || packets == 0)
        return 0;
    // Expected value with deterministic stochastic rounding: a bulk flow
    // of N packets sees floor(N*rate) faults plus one more with
    // probability frac(N*rate), drawn from the NoC stream.
    const double expect = double(packets) * cfg_.nocFaultRate;
    std::uint64_t faults = static_cast<std::uint64_t>(expect);
    const double frac = expect - std::floor(expect);
    if (frac > 0.0 && rng(FaultDomain::Noc).nextDouble() < frac)
        ++faults;
    if (faults > packets)
        faults = packets;
    nocFaults_ += double(faults);
    return faults;
}

CmdFault
FaultInjector::sampleCmdFault()
{
    CmdFault f;
    if (!cfg_.enabled || cfg_.cmdTransientRate <= 0.0)
        return f;
    auto &r = rng(FaultDomain::Command);
    if (r.nextDouble() >= cfg_.cmdTransientRate)
        return f;
    f.faulted = true;
    f.persistent = r.nextDouble() < cfg_.persistentFraction;
    ++cmdFaults_;
    return f;
}

std::uint64_t
FaultInjector::draw(FaultDomain domain, std::uint64_t bound)
{
    infs_assert(bound > 0, "FaultInjector::draw with zero bound");
    return rng(domain).nextBounded(bound);
}

Tick
FaultInjector::recordDetection()
{
    ++detected_;
    retryCycles_ += double(cfg_.detectCycles);
    return cfg_.detectCycles;
}

Tick
FaultInjector::recordRetry(Tick reissue_cycles)
{
    ++retries_;
    const Tick penalty = cfg_.retryPenaltyCycles + reissue_cycles;
    retryCycles_ += double(penalty);
    return penalty;
}

void
FaultInjector::recordExhausted()
{
    ++exhausted_;
}

FaultStats
FaultInjector::snapshot() const
{
    FaultStats s;
    s.sramBitFlips = static_cast<std::uint64_t>(sramFlips_.value());
    s.nocPacketFaults = static_cast<std::uint64_t>(nocFaults_.value());
    s.cmdFaults = static_cast<std::uint64_t>(cmdFaults_.value());
    s.detected = static_cast<std::uint64_t>(detected_.value());
    s.retries = static_cast<std::uint64_t>(retries_.value());
    s.exhausted = static_cast<std::uint64_t>(exhausted_.value());
    s.retryCycles = static_cast<std::uint64_t>(retryCycles_.value());
    return s;
}

void
FaultInjector::registerWith(StatRegistry &reg)
{
    reg.add(sramFlips_);
    reg.add(nocFaults_);
    reg.add(cmdFaults_);
    reg.add(detected_);
    reg.add(retries_);
    reg.add(exhausted_);
    reg.add(retryCycles_);
}

void
FaultInjector::reset()
{
    sramFlips_.reset();
    nocFaults_.reset();
    cmdFaults_.reset();
    detected_.reset();
    retries_.reset();
    exhausted_.reset();
    retryCycles_.reset();
    // Distinct odd salts keep the three schedules decorrelated while
    // remaining a pure function of the one config seed.
    rngs_[0].reseed(cfg_.seed ^ 0x53a5a17b17f1195ULL);
    rngs_[1].reseed(cfg_.seed ^ 0x0c0ffee1badd00d5ULL);
    rngs_[2].reseed(cfg_.seed ^ 0x7ac71ca1c0deba5eULL);
}

} // namespace infs
