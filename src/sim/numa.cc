#include "sim/numa.hh"

#include <algorithm>
#include <cstdio>
#include <string>

namespace infs {

std::vector<unsigned>
parseCpuList(const std::string &list)
{
    std::vector<unsigned> cpus;
    std::size_t pos = 0;
    while (pos < list.size()) {
        std::size_t end = list.find(',', pos);
        if (end == std::string::npos)
            end = list.size();
        const std::string chunk = list.substr(pos, end - pos);
        pos = end + 1;
        if (chunk.empty())
            continue;
        unsigned lo = 0, hi = 0;
        if (std::sscanf(chunk.c_str(), "%u-%u", &lo, &hi) == 2) {
            if (hi < lo || hi - lo > 4096)
                continue;
            for (unsigned c = lo; c <= hi; ++c)
                cpus.push_back(c);
        } else if (std::sscanf(chunk.c_str(), "%u", &lo) == 1) {
            cpus.push_back(lo);
        }
    }
    return cpus;
}

namespace {

NumaTopology
discover()
{
    NumaTopology topo;
#ifdef __linux__
    for (unsigned n = 0; n < 1024; ++n) {
        char path[96];
        std::snprintf(path, sizeof(path),
                      "/sys/devices/system/node/node%u/cpulist", n);
        std::FILE *f = std::fopen(path, "r");
        if (f == nullptr)
            break;
        char buf[4096];
        std::string list;
        if (std::fgets(buf, sizeof(buf), f) != nullptr)
            list = buf;
        std::fclose(f);
        while (!list.empty() &&
               (list.back() == '\n' || list.back() == '\r'))
            list.pop_back();
        topo.nodeCpus.push_back(parseCpuList(list));
    }
#endif
    if (topo.nodeCpus.empty())
        topo.nodeCpus.emplace_back();
    topo.nodes = static_cast<unsigned>(topo.nodeCpus.size());
    return topo;
}

} // namespace

const NumaTopology &
numaTopology()
{
    static const NumaTopology topo = discover();
    return topo;
}

} // namespace infs
