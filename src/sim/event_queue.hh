/**
 * @file
 * Discrete-event simulation kernel. The event queue orders callbacks by
 * (tick, priority, sequence). Components schedule events against the queue;
 * run() drains events until the queue is empty or a tick limit is hit.
 */

#ifndef INFS_SIM_EVENT_QUEUE_HH
#define INFS_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace infs {

/** Relative ordering of events scheduled at the same tick. */
enum class EventPriority : int {
    Control = 0,  ///< Barriers, configuration — run first.
    Default = 1,
    Stats = 2,    ///< Sampling events — run after all work at a tick.
};

/**
 * Orders and dispatches simulation events. Deterministic: ties at a tick
 * break by priority then FIFO insertion order.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return curTick_; }

    /** Number of events dispatched so far. */
    std::uint64_t dispatched() const { return numDispatched_; }

    /** Number of events currently pending. */
    std::size_t pending() const { return heap_.size(); }

    /**
     * Schedule a callback at an absolute tick.
     * @param when Absolute tick; must be >= now().
     * @param cb Callback to run.
     * @param prio Same-tick ordering class.
     * @return Event id usable with deschedule().
     */
    std::uint64_t schedule(Tick when, Callback cb,
                           EventPriority prio = EventPriority::Default);

    /** Schedule a callback @p delta ticks in the future. */
    std::uint64_t
    scheduleIn(Tick delta, Callback cb,
               EventPriority prio = EventPriority::Default)
    {
        return schedule(curTick_ + delta, std::move(cb), prio);
    }

    /**
     * Cancel a pending event by id.
     * @return true if the event was pending and is now cancelled.
     */
    bool deschedule(std::uint64_t id);

    /**
     * Dispatch events in order until the queue drains or @p limit is
     * reached.
     * @return Final simulated tick.
     */
    Tick run(Tick limit = maxTick);

    /** Dispatch a single event. @return false when the queue is empty. */
    bool step();

    /** Drop all pending events and reset time to zero. */
    void reset();

  private:
    struct Entry {
        Tick when;
        int prio;
        std::uint64_t seq;
        bool operator>(const Entry &o) const
        {
            if (when != o.when) return when > o.when;
            if (prio != o.prio) return prio > o.prio;
            return seq > o.seq;
        }
    };

    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t numDispatched_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
    // seq -> callback; erased entries mark cancelled events.
    std::unordered_map<std::uint64_t, Callback> callbacks_;
};

} // namespace infs

#endif // INFS_SIM_EVENT_QUEUE_HH
