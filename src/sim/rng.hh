/**
 * @file
 * Deterministic pseudo-random number generation (splitmix64 + xoshiro256**)
 * so simulations and tests are reproducible across platforms.
 */

#ifndef INFS_SIM_RNG_HH
#define INFS_SIM_RNG_HH

#include <cstdint>

namespace infs {

/** Deterministic 64-bit PRNG (xoshiro256**), seeded via splitmix64. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x1234abcdULL) { reseed(seed); }

    /** Reset the generator state from a single seed word. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t x = seed;
        for (auto &word : s_) {
            // splitmix64 expansion.
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit word. */
    std::uint64_t
    next()
    {
        std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t nextBounded(std::uint64_t bound) { return next() % bound; }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform float in [lo, hi). */
    float
    nextFloat(float lo, float hi)
    {
        return lo + static_cast<float>(nextDouble()) * (hi - lo);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t v, int k)
    {
        return (v << k) | (v >> (64 - k));
    }

    std::uint64_t s_[4] = {};
};

} // namespace infs

#endif // INFS_SIM_RNG_HH
