#include "sim/config.hh"

#include <sstream>

namespace infs {

std::string
SystemConfig::summary() const
{
    std::ostringstream os;
    os << numCores() << " cores @ " << core.ghz << "GHz, "
       << noc.meshX << "x" << noc.meshY << " mesh, L3 "
       << (l3.totalBytes() >> 20) << "MB (" << l3.numBanks << " banks x "
       << l3.waysPerBank << " ways x " << l3.arraysPerWay << " arrays of "
       << l3.wordlines << "x" << l3.bitlines << "), "
       << (l3.totalBitlines() >> 20) << "M bitlines, DRAM "
       << dram.bandwidthGBs << "GB/s";
    return os.str();
}

const char *
verifyLevelName(VerifyLevel v)
{
    switch (v) {
      case VerifyLevel::Off: return "off";
      case VerifyLevel::Graphs: return "graphs";
      case VerifyLevel::Full: return "full";
    }
    return "?";
}

const char *
backendName(ExecBackendKind b)
{
    switch (b) {
      case ExecBackendKind::Fabric: return "fabric";
      case ExecBackendKind::Functional: return "functional";
      case ExecBackendKind::Timing: return "timing";
    }
    return "?";
}

bool
parseBackendName(const std::string &name, ExecBackendKind &out)
{
    if (name == "fabric") {
        out = ExecBackendKind::Fabric;
    } else if (name == "functional") {
        out = ExecBackendKind::Functional;
    } else if (name == "timing") {
        out = ExecBackendKind::Timing;
    } else {
        return false;
    }
    return true;
}

const char *
simdIsaName(SimdIsa isa)
{
    switch (isa) {
      case SimdIsa::Auto: return "auto";
      case SimdIsa::Off: return "off";
      case SimdIsa::Portable: return "portable";
      case SimdIsa::Avx2: return "avx2";
      case SimdIsa::Neon: return "neon";
    }
    return "?";
}

bool
parseSimdIsaName(const std::string &name, SimdIsa &out)
{
    if (name == "auto") {
        out = SimdIsa::Auto;
    } else if (name == "off") {
        out = SimdIsa::Off;
    } else if (name == "portable") {
        out = SimdIsa::Portable;
    } else if (name == "avx2") {
        out = SimdIsa::Avx2;
    } else if (name == "neon") {
        out = SimdIsa::Neon;
    } else {
        return false;
    }
    return true;
}

SystemConfig
defaultSystemConfig()
{
    return SystemConfig{};
}

SystemConfig
testSystemConfig()
{
    SystemConfig cfg;
    cfg.noc.meshX = 4;
    cfg.noc.meshY = 4;
    cfg.l3.numBanks = 16;
    cfg.l3.waysPerBank = 18;
    cfg.l3.computeWays = 16;
    cfg.l3.arraysPerWay = 4;
    cfg.l3.wordlines = 256;
    cfg.l3.bitlines = 256;
    cfg.stream.l3Streams = 192;
    // Tests run every graph and command stream through the verifier so a
    // lowering bug surfaces as a diagnostic, not silently wrong numbers.
    cfg.verifyLevel = VerifyLevel::Full;
    return cfg;
}

} // namespace infs
