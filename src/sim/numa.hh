/**
 * @file
 * Host NUMA topology discovery for bank-shard placement (DESIGN.md §14).
 * The simulator shards fabric bank state across worker threads; on a
 * multi-node host it pins lane partitions to the node whose memory holds
 * their bank shards (first-touch allocation from the pinned worker). On a
 * single-node host everything here degenerates to "1 node, no pinning" and
 * the thread pool behaves exactly as before.
 */

#ifndef INFS_SIM_NUMA_HH
#define INFS_SIM_NUMA_HH

#include <string>
#include <vector>

namespace infs {

/** One host's NUMA layout: the online nodes and each node's CPUs. */
struct NumaTopology {
    /** Online node count; 1 on non-NUMA (or non-Linux) hosts. */
    unsigned nodes = 1;
    /** nodeCpus[n] = CPU ids owned by node n (may be empty for
     * memory-only nodes; such nodes take no pinned workers). */
    std::vector<std::vector<unsigned>> nodeCpus;
};

/**
 * The running host's topology, parsed once from the per-node sysfs
 * cpulist files under /sys/devices/system/node and cached. Falls back to
 * a single node when sysfs is unavailable.
 */
const NumaTopology &numaTopology();

/** Parse a Linux cpulist string ("0-3,8,10-11") into CPU ids. Exposed for
 * tests; malformed chunks are skipped. */
std::vector<unsigned> parseCpuList(const std::string &list);

} // namespace infs

#endif // INFS_SIM_NUMA_HH
