/**
 * @file
 * Fundamental simulation types shared by every subsystem.
 */

#ifndef INFS_SIM_TYPES_HH
#define INFS_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace infs {

/** Simulated time in core clock cycles (2 GHz per Table 2). */
using Tick = std::uint64_t;

/** Sentinel for "never" / unscheduled. */
inline constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Physical byte address within the simulated machine. */
using Addr = std::uint64_t;

/** Number of bytes. */
using Bytes = std::uint64_t;

/** Identifier of a tile / L3 bank / core on the mesh (0..63). */
using BankId = std::uint32_t;

/** Identifier of an SRAM array within a bank's compute ways. */
using SramArrayId = std::uint32_t;

/** Cache-line size used throughout the model. */
inline constexpr Bytes lineBytes = 64;

/** Element data types supported by the in-memory engine. */
enum class DType : std::uint8_t {
    Int8,
    Int16,
    Int32,
    Int64,
    Fp32,
};

/** Bit width of a data type. */
constexpr unsigned
dtypeBits(DType t)
{
    switch (t) {
      case DType::Int8: return 8;
      case DType::Int16: return 16;
      case DType::Int32: return 32;
      case DType::Int64: return 64;
      case DType::Fp32: return 32;
    }
    return 0;
}

/** Byte width of a data type. */
constexpr unsigned
dtypeBytes(DType t)
{
    return dtypeBits(t) / 8;
}

/** Convert a nanosecond quantity to ticks at the given core frequency. */
constexpr Tick
nsToTicks(double ns, double ghz = 2.0)
{
    return static_cast<Tick>(ns * ghz);
}

/** Convert ticks to microseconds at the given core frequency. */
constexpr double
ticksToUs(Tick t, double ghz = 2.0)
{
    return static_cast<double>(t) / (ghz * 1e3);
}

} // namespace infs

#endif // INFS_SIM_TYPES_HH
