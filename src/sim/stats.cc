#include "sim/stats.hh"

#include <cmath>

namespace infs {

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        if (v < min_) min_ = v;
        if (v > max_) max_ = v;
    }
    ++count_;
    sum_ += v;
    double delta = v - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (v - mean_);
}

double
Distribution::stddev() const
{
    if (count_ < 2)
        return 0.0;
    return std::sqrt(m2_ / static_cast<double>(count_));
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = min_ = max_ = mean_ = m2_ = 0.0;
}

void
StatRegistry::add(Counter &c)
{
    infs_assert(!c.name().empty(), "counter must be named");
    counters_[c.name()] = &c;
}

void
StatRegistry::add(Distribution &d)
{
    infs_assert(!d.name().empty(), "distribution must be named");
    dists_[d.name()] = &d;
}

double
StatRegistry::sumByPrefix(const std::string &prefix) const
{
    double total = 0.0;
    for (auto it = counters_.lower_bound(prefix); it != counters_.end();
         ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        total += it->second->value();
    }
    return total;
}

const Counter &
StatRegistry::counter(const std::string &name) const
{
    auto it = counters_.find(name);
    infs_assert(it != counters_.end(), "unknown counter '%s'", name.c_str());
    return *it->second;
}

bool
StatRegistry::hasCounter(const std::string &name) const
{
    return counters_.count(name) > 0;
}

void
StatRegistry::resetAll()
{
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, d] : dists_)
        d->reset();
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, c] : counters_)
        os << name << " " << c->value() << "\n";
    for (const auto &[name, d] : dists_) {
        os << name << ".count " << d->count() << "\n";
        os << name << ".mean " << d->mean() << "\n";
        os << name << ".stddev " << d->stddev() << "\n";
    }
}

} // namespace infs
