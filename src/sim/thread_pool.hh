/**
 * @file
 * Work-stealing host thread pool: the simulator's counterpart of the
 * modeled hardware's bank parallelism (DESIGN.md §10). Commands between
 * Sync barriers touch disjoint banks, per-tile SRAM state is independent,
 * and per-subtensor JIT lowering is pure — so the simulator farms that
 * work out to host threads the same way Inf-S farms bit-serial compute
 * out to 64 L3 banks.
 *
 * Design rules that keep simulation results bit-exact across pool sizes:
 *  - work is *split* deterministically (by index, never by thread id);
 *  - workers only ever compute into pre-allocated, per-index slots;
 *  - merging happens on the calling thread in index order.
 * The pool therefore never owns simulation state; it only runs closures.
 *
 * A pool of size 1 executes everything inline on the calling thread with
 * no worker threads, no locks taken on the hot path, and no allocation —
 * exact legacy behavior.
 */

#ifndef INFS_SIM_THREAD_POOL_HH
#define INFS_SIM_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace infs {

/**
 * The pool. Worker threads are spawned lazily on the first parallel call
 * so that a `hostThreads = 1` system (or a pool that is never exercised)
 * costs nothing. Parallel calls may nest: a task that itself calls
 * parallelFor() publishes the inner work to the same pool, and any thread
 * waiting for a task group *helps* by stealing pending tasks instead of
 * blocking — so nesting can never deadlock.
 */
class ThreadPool
{
  public:
    /**
     * @param threads Total parallelism including the calling thread.
     * 0 means `std::thread::hardware_concurrency()`; 1 means inline
     * execution (no workers).
     */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total parallelism (calling thread + workers). */
    unsigned threads() const { return threads_; }

    /** True when the pool executes everything inline (size 1). */
    bool inlineOnly() const { return threads_ <= 1; }

    /**
     * Pin future worker threads round-robin across the given per-node CPU
     * sets (DESIGN.md §14). Must be called before the first parallel call
     * (workers spawn lazily); ignored once workers exist, on single-node
     * sets, or on non-Linux hosts. Pinning changes only *where* workers
     * run — chunking stays a pure function of (n, grain, threads), so
     * results remain bit-exact.
     */
    void setNumaPinning(std::vector<std::vector<unsigned>> node_cpus);

    /** NUMA nodes the pool pins across (1 = no pinning). */
    unsigned numaNodes() const
    {
        return nodeCpus_.empty()
                   ? 1u
                   : static_cast<unsigned>(nodeCpus_.size());
    }

    /**
     * Run @p fn(i) for every i in [0, n). Blocks until all iterations
     * completed; the calling thread participates. Iterations are grouped
     * into contiguous chunks of at least @p grain indices; chunking is a
     * pure function of (n, grain, threads), never of scheduling, so any
     * per-chunk state a caller shards is reproducible.
     *
     * @p fn must be safe to call concurrently for distinct i.
     */
    void parallelFor(std::int64_t n,
                     const std::function<void(std::int64_t)> &fn,
                     std::int64_t grain = 1);

    /**
     * Run every task in @p tasks to completion (unordered, concurrent).
     * Blocks; the calling thread participates.
     */
    void runTasks(std::vector<std::function<void()>> tasks);

    /** Number of pending (not yet started) tasks — test introspection. */
    std::size_t pendingTasks() const;

    /** Total tasks executed by worker threads (not the caller) — test
     * introspection for the stealing path. */
    std::uint64_t stolenTasks() const { return stolen_.load(); }

  private:
    struct TaskGroup;

    struct Task {
        std::function<void()> fn;
        TaskGroup *group = nullptr;
    };

    /** Per-worker deque; workers pop LIFO locally and steal FIFO. */
    struct WorkerQueue {
        mutable std::mutex mu;
        std::deque<Task> dq;
    };

    void startWorkers();
    /** Apply the node-local CPU mask for worker @p index (Linux only). */
    void pinWorker(std::thread &t, unsigned index) const;
    void workerLoop(unsigned self);
    /** Pop from own queue (back) or steal from a victim (front). */
    bool tryTake(unsigned self, Task &out);
    void runTask(Task &&t);
    /** Help execute pending tasks until @p group completes. */
    void helpUntilDone(TaskGroup &group);
    void submit(std::vector<Task> &&tasks);

    unsigned threads_ = 1;
    /** Per-node CPU sets for worker pinning; empty = no pinning. */
    std::vector<std::vector<unsigned>> nodeCpus_;
    std::atomic<bool> started_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> stolen_{0};

    std::mutex startMu_;
    std::vector<std::thread> workers_;
    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    /** Overflow/injection queue for submissions from non-worker threads. */
    WorkerQueue inject_;

    std::mutex sleepMu_;
    std::condition_variable sleepCv_;
};

} // namespace infs

#endif // INFS_SIM_THREAD_POOL_HH
