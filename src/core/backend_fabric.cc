/**
 * @file
 * The fabric backend: bit-accurate execution on real bitlines
 * (BitAccurateFabric) for the checksum, plus the shared cycle replay for
 * sim_cycles/NoC/energy. Ground truth on both axes.
 */

#include "core/backend.hh"

#include "sim/logging.hh"

namespace infs {

namespace {

class FabricBackend final : public ExecBackend
{
  public:
    using ExecBackend::ExecBackend;

    ExecBackendKind kind() const override
    {
        return ExecBackendKind::Fabric;
    }

    BackendResult runJob(const BackendJob &job) override
    {
        infs_assert(job.prog != nullptr, "fabric backend needs a program");
        BackendResult res;
        BitAccurateFabric fab(job.layout, cfg_.l3.wordlines,
                              cfg_.l3.bitlines);
        fab.setThreadPool(pool_);
        seedJobInputs(fab, job);
        fab.execute(*job.prog);
        res.checksum = checksumJobOutputs(fab, job);
        res.bitAccurate = true;
        res.fabric = fab.stats();

        TimingReplayResult t = replayTiming(cfg_, job, pool_);
        res.simCycles = t.simCycles;
        res.nocHopBytes = t.nocHopBytes;
        res.energyJoules = t.energyJoules;
        res.hasTiming = true;
        return res;
    }
};

} // namespace

std::unique_ptr<ExecBackend>
makeFabricBackend(const SystemConfig &cfg)
{
    return std::make_unique<FabricBackend>(cfg);
}

} // namespace infs
