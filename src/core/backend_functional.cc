/**
 * @file
 * The functional backend: executes a lowered in-memory program at word
 * level — one float per lattice cell per wordline slot — instead of
 * simulating bit-serial wordline arithmetic. Every command mirrors the
 * bit fabric's cell-level semantics exactly (masks, positional windows,
 * boundary clipping, scratch immediates), and fp32 arithmetic uses the
 * same native float expressions ComputeSram::fpBinary uses per bitline,
 * so results are byte-identical to the fabric — including the junk in
 * boundary and intermediate cells that full-lattice checksums hash.
 *
 * Constructs outside the value model (1-bit CmpLt rows, non-fp32 dtypes,
 * unaligned wordlines) fall back to the bit fabric for the whole job, so
 * the backend never silently diverges.
 */

#include "core/backend.hh"

#include <cmath>

#include "sim/logging.hh"
#include "tdfg/hyperrect.hh"

namespace infs {

namespace {

/** Word-level replay fabric: per-slot dense float lattices. */
class WordFabric
{
  public:
    WordFabric(const TiledLayout &layout, unsigned wordlines,
               unsigned bitlines)
        : layout_(layout), wordlines_(wordlines), bitlines_(bitlines),
          arrayRect_(HyperRect::array(layout.shape()))
    {
        volume_ = 1;
        for (Coord s : layout_.shape())
            volume_ *= s;
        slots_.assign(wordlines_ / 32,
                      std::vector<float>(
                          static_cast<std::size_t>(volume_), 0.0f));
    }

    void
    loadArray(std::span<const float> data, unsigned wl)
    {
        // The dense array order is the lattice row-major order (dim 0
        // innermost) — the bit fabric's loadArray/storeArray transpose is
        // an identity at word level.
        auto &s = slot(wl);
        infs_assert(data.size() == s.size(), "array size mismatch");
        std::copy(data.begin(), data.end(), s.begin());
    }

    void
    storeArray(std::span<float> out, unsigned wl) const
    {
        const auto &s = slots_[slotIndex(wl)];
        infs_assert(out.size() == s.size(), "array size mismatch");
        std::copy(s.begin(), s.end(), out.begin());
    }

    /** Replay @p prog; nullopt on success, an Error when a command falls
     * outside the value model (caller falls back to the bit fabric). */
    std::optional<Error>
    execute(const InMemProgram &prog)
    {
        if (wordlines_ % 32 != 0)
            return Error{ErrCode::InvalidArgument,
                         "functional backend needs 32-bit-aligned "
                         "wordlines"};
        for (const InMemCommand &cmd : prog.commands) {
            std::optional<Error> err;
            switch (cmd.kind) {
              case CmdKind::Compute:
                err = execCompute(cmd);
                break;
              case CmdKind::IntraShift:
                err = execIntraShift(cmd);
                break;
              case CmdKind::InterShift:
                err = execInterShift(cmd);
                break;
              case CmdKind::BroadcastBl:
                execBroadcastBl(cmd);
                break;
              case CmdKind::BroadcastVal:
                err = execBroadcastVal(cmd);
                break;
              case CmdKind::Sync:
                break; // Ordering only.
            }
            if (err)
                return err;
        }
        return std::nullopt;
    }

  private:
    std::size_t
    slotIndex(unsigned wl) const
    {
        infs_assert(wl % 32 == 0 && wl / 32 < slots_.size(),
                    "wordline %u is not a valid fp32 slot", wl);
        return wl / 32;
    }
    std::vector<float> &slot(unsigned wl) { return slots_[slotIndex(wl)]; }

    bool
    fp32Slots(const InMemCommand &cmd) const
    {
        if (cmd.dtype != DType::Fp32)
            return false;
        if (cmd.wlA % 32 != 0 || cmd.wlDst % 32 != 0)
            return false;
        if (cmd.kind == CmdKind::Compute && !cmd.useImm &&
            cmd.wlB % 32 != 0)
            return false;
        return true;
    }

    std::size_t
    index(const std::vector<Coord> &pt) const
    {
        const auto &shape = layout_.shape();
        std::int64_t idx = 0;
        for (unsigned d = static_cast<unsigned>(shape.size()); d-- > 0;)
            idx = idx * shape[d] + pt[d];
        return static_cast<std::size_t>(idx);
    }

    /** Odometer over the cells of @p r (dim 0 innermost). */
    template <class Fn>
    void
    forEachCell(const HyperRect &r, Fn &&fn) const
    {
        if (r.empty())
            return;
        const unsigned nd = r.dims();
        std::vector<Coord> pt(nd);
        for (unsigned d = 0; d < nd; ++d)
            pt[d] = r.lo(d);
        for (;;) {
            fn(pt);
            unsigned d = 0;
            for (; d < nd; ++d) {
                if (++pt[d] < r.hi(d))
                    break;
                pt[d] = r.lo(d);
            }
            if (d >= nd)
                break;
        }
    }

    std::optional<Error>
    execCompute(const InMemCommand &cmd)
    {
        if (!fp32Slots(cmd))
            return Error{ErrCode::InvalidArgument,
                         "functional backend: non-fp32-slot compute"};
        const bool unary = !cmd.useImm && cmd.wlA == cmd.wlB &&
                           (cmd.op == BitOp::Relu || cmd.op == BitOp::Copy);
        switch (cmd.op) {
          case BitOp::Add:
          case BitOp::Sub:
          case BitOp::Mul:
          case BitOp::Div:
          case BitOp::Max:
          case BitOp::Min:
          case BitOp::AndB:
          case BitOp::OrB:
          case BitOp::XorB:
            break;
          case BitOp::Relu:
          case BitOp::Copy:
            if (!unary)
                return Error{ErrCode::InvalidArgument,
                             "functional backend: binary relu/copy"};
            break;
          default:
            return Error{ErrCode::InvalidArgument,
                         "functional backend: op outside the value model"};
        }
        const bool positional = cmd.maskHi > cmd.maskLo;
        const Coord tile_d = layout_.tile()[cmd.dim];
        auto &a = slot(cmd.wlA);
        auto &dst = slot(cmd.wlDst);
        // The hardware stages immediates through the top scratch slot
        // (ComputeSram::execBinaryImm); mirror the staging write so that
        // slot's lattice contents stay bit-identical too.
        const float imm = static_cast<float>(cmd.imm);
        std::vector<float> *scratch = nullptr;
        std::vector<float> *b = nullptr;
        if (cmd.useImm)
            scratch = &slot(wordlines_ - 32);
        else
            b = &slot(cmd.wlB);
        HyperRect clipped = cmd.tensor.intersect(arrayRect_);
        forEachCell(clipped, [&](const std::vector<Coord> &pt) {
            if (positional) {
                const Coord pos = pt[cmd.dim] % tile_d;
                if (pos < cmd.maskLo || pos >= cmd.maskHi)
                    return;
            }
            const std::size_t i = index(pt);
            const float av = a[i];
            float bv = 0.0f;
            if (cmd.useImm) {
                (*scratch)[i] = imm;
                bv = imm;
            } else {
                bv = (*b)[i];
            }
            if (unary) {
                dst[i] = cmd.op == BitOp::Copy
                             ? av
                             : (std::bit_cast<std::uint32_t>(av) >> 31
                                    ? 0.0f
                                    : av);
                return;
            }
            float r = 0.0f;
            switch (cmd.op) {
              case BitOp::Add: r = av + bv; break;
              case BitOp::Sub: r = av - bv; break;
              case BitOp::Mul: r = av * bv; break;
              case BitOp::Div: r = av / bv; break;
              case BitOp::Max: r = av > bv ? av : bv; break;
              case BitOp::Min: r = av < bv ? av : bv; break;
              case BitOp::AndB:
                r = std::bit_cast<float>(
                    std::bit_cast<std::uint32_t>(av) &
                    std::bit_cast<std::uint32_t>(bv));
                break;
              case BitOp::OrB:
                r = std::bit_cast<float>(
                    std::bit_cast<std::uint32_t>(av) |
                    std::bit_cast<std::uint32_t>(bv));
                break;
              case BitOp::XorB:
                r = std::bit_cast<float>(
                    std::bit_cast<std::uint32_t>(av) ^
                    std::bit_cast<std::uint32_t>(bv));
                break;
              default: break; // Filtered above.
            }
            dst[i] = r;
        });
        return std::nullopt;
    }

    std::optional<Error>
    execIntraShift(const InMemCommand &cmd)
    {
        if (!fp32Slots(cmd))
            return Error{ErrCode::InvalidArgument,
                         "functional backend: non-fp32-slot shift"};
        // ComputeSram::shift moves masked bitlines by delta within each
        // array; mirror the bitline arithmetic exactly, dropping
        // destinations beyond the array edge or outside the lattice
        // (invisible cells, same as the hardware).
        std::int64_t stride = 1;
        const auto &tile = layout_.tile();
        for (unsigned d = 0; d < cmd.dim; ++d)
            stride *= tile[d];
        const std::int64_t delta = cmd.intraTileDist * stride;
        const Coord tile_d = tile[cmd.dim];
        const std::int64_t tvol = layout_.tileVolume();
        const unsigned nd = layout_.dims();
        const auto &shape = layout_.shape();
        auto &src = slot(cmd.wlA);
        auto &dst = slot(cmd.wlDst);

        std::vector<std::pair<std::size_t, float>> moves;
        std::vector<Coord> dpt(nd);
        HyperRect clipped = cmd.tensor.intersect(arrayRect_);
        forEachCell(clipped, [&](const std::vector<Coord> &pt) {
            // The positional window (Alg. 2) is always applied to shifts.
            const Coord pos = pt[cmd.dim] % tile_d;
            if (pos < cmd.maskLo || pos >= cmd.maskHi)
                return;
            const std::int64_t bl = layout_.positionInTile(pt);
            const std::int64_t nbl = bl + delta;
            if (nbl < 0 || nbl >= tvol ||
                nbl >= static_cast<std::int64_t>(bitlines_))
                return; // Shifted off the array edge.
            // Decompose the destination bitline back into a lattice cell
            // of the same tile; partial-tile cells beyond the shape are
            // invisible.
            const HyperRect trect = layout_.tileRect(layout_.tileOf(pt));
            std::int64_t rest = nbl;
            bool visible = true;
            for (unsigned d = 0; d < nd; ++d) {
                const Coord local = rest % tile[d];
                rest /= tile[d];
                dpt[d] = trect.lo(d) - trect.lo(d) % tile[d] + local;
                if (dpt[d] >= shape[d])
                    visible = false;
            }
            if (visible)
                moves.emplace_back(index(dpt), src[index(pt)]);
        });
        for (const auto &[di, v] : moves)
            dst[di] = v;
        return std::nullopt;
    }

    std::optional<Error>
    execInterShift(const InMemCommand &cmd)
    {
        if (!fp32Slots(cmd))
            return Error{ErrCode::InvalidArgument,
                         "functional backend: non-fp32-slot shift"};
        const Coord tile_d = layout_.tile()[cmd.dim];
        const Coord dist = cmd.interTileDist * tile_d + cmd.intraTileDist;
        const Coord shape_d = layout_.shape()[cmd.dim];
        auto &src = slot(cmd.wlA);
        auto &dst = slot(cmd.wlDst);

        std::vector<std::pair<std::size_t, float>> moves;
        std::vector<Coord> dpt(layout_.dims());
        HyperRect clipped = cmd.tensor.intersect(arrayRect_);
        forEachCell(clipped, [&](const std::vector<Coord> &pt) {
            const Coord pos = pt[cmd.dim] % tile_d;
            if (pos < cmd.maskLo || pos >= cmd.maskHi)
                return;
            const Coord dst_k = pt[cmd.dim] + dist;
            if (dst_k < 0 || dst_k >= shape_d)
                return; // Discarded outside the rect (§3.2).
            dpt.assign(pt.begin(), pt.end());
            dpt[cmd.dim] = dst_k;
            moves.emplace_back(index(dpt), src[index(pt)]);
        });
        for (const auto &[di, v] : moves)
            dst[di] = v;
        return std::nullopt;
    }

    void
    execBroadcastBl(const InMemCommand &cmd)
    {
        const Coord span = cmd.tensor.size(cmd.dim);
        const Coord shape_d = layout_.shape()[cmd.dim];
        auto &src = slot(cmd.wlA);
        auto &dst = slot(cmd.wlDst);

        std::vector<std::pair<std::size_t, float>> moves;
        std::vector<Coord> dpt(layout_.dims());
        HyperRect clipped = cmd.tensor.intersect(arrayRect_);
        forEachCell(clipped, [&](const std::vector<Coord> &pt) {
            const float v = src[index(pt)];
            for (Coord j = 0; j < cmd.bcCount; ++j) {
                const Coord dst_k = pt[cmd.dim] + cmd.bcDist + j * span;
                if (dst_k < 0 || dst_k >= shape_d)
                    continue; // Discarded outside the rect (§3.2).
                dpt.assign(pt.begin(), pt.end());
                dpt[cmd.dim] = dst_k;
                moves.emplace_back(index(dpt), v);
            }
        });
        for (const auto &[di, v] : moves)
            dst[di] = v;
    }

    std::optional<Error>
    execBroadcastVal(const InMemCommand &cmd)
    {
        if (cmd.dtype != DType::Fp32 || cmd.wlDst % 32 != 0)
            return Error{ErrCode::InvalidArgument,
                         "functional backend: non-fp32-slot immediate"};
        // The hardware writes every bitline of every tile (fullMask); the
        // lattice-visible part is the whole lattice.
        auto &dst = slot(cmd.wlDst);
        std::fill(dst.begin(), dst.end(), static_cast<float>(cmd.imm));
        return std::nullopt;
    }

    const TiledLayout &layout_;
    unsigned wordlines_;
    unsigned bitlines_;
    HyperRect arrayRect_;
    std::int64_t volume_ = 0;
    std::vector<std::vector<float>> slots_;
};

class FunctionalBackend final : public ExecBackend
{
  public:
    using ExecBackend::ExecBackend;

    ExecBackendKind kind() const override
    {
        return ExecBackendKind::Functional;
    }

    BackendResult runJob(const BackendJob &job) override
    {
        infs_assert(job.prog != nullptr,
                    "functional backend needs a program");
        BackendResult res;
        WordFabric fab(job.layout, cfg_.l3.wordlines, cfg_.l3.bitlines);
        seedJobInputs(fab, job);
        if (auto err = fab.execute(*job.prog)) {
            // Outside the value model: keep the fidelity contract by
            // running the bit fabric for this job instead of diverging.
            infs_warn("functional backend: %s; falling back to the bit "
                      "fabric for this job",
                      err->str().c_str());
            BitAccurateFabric bit(job.layout, cfg_.l3.wordlines,
                                  cfg_.l3.bitlines);
            bit.setThreadPool(pool_);
            seedJobInputs(bit, job);
            bit.execute(*job.prog);
            res.checksum = checksumJobOutputs(bit, job);
            res.bitAccurate = true;
            return res;
        }
        res.checksum = checksumJobOutputs(fab, job);
        res.bitAccurate = true;
        return res;
    }
};

} // namespace

std::unique_ptr<ExecBackend>
makeFunctionalBackend(const SystemConfig &cfg)
{
    return std::make_unique<FunctionalBackend>(cfg);
}

} // namespace infs
