/**
 * @file
 * Workload description: what the compiler would embed into an infinity
 * stream fat binary for each program region (§3.4). A workload is a
 * sequence of phases; each phase carries its tDFG (in-memory form), its
 * sDFG (near-memory stream form), and aggregate costs for the in-core
 * baseline — both representations of the *same* computation, enabling the
 * runtime's dynamic paradigm choice.
 */

#ifndef INFS_CORE_WORKLOAD_HH
#define INFS_CORE_WORKLOAD_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "stream/near_engine.hh"
#include "tdfg/array_store.hh"
#include "tdfg/graph.hh"

namespace infs {

/** Execution paradigms evaluated in the paper (§7). */
enum class Paradigm : std::uint8_t {
    Base1T,     ///< Single-thread AVX-512 core.
    Base,       ///< 64-thread AVX-512 multicore.
    NearL3,     ///< Near-stream computing at SEL3 (the NSC baseline).
    InL3,       ///< In-memory only: tDFG + JIT, no near-memory support.
    InfS,       ///< Fused in-/near-memory (the paper's full system).
    InfSNoJit,  ///< InfS with precompiled commands (no JIT time).
};

const char *paradigmName(Paradigm p);

/** One offloadable program region (an inf_cfg .. inf_end pair). */
struct Phase {
    std::string name;

    /**
     * Build the tDFG for iteration @p iter (in-memory form). Null when
     * the phase has no regular tensor part (irregular-only phases run
     * near memory or in the core).
     */
    std::function<TdfgGraph(std::uint64_t iter)> buildTdfg;

    /** Times the region executes (outer loop trip count). */
    std::uint64_t iterations = 1;

    /**
     * Lattice shape for this phase when it differs from the workload's
     * primary shape (e.g. a 3-D aggregation phase inside a 2-D
     * workload); empty means use the workload layout.
     */
    std::vector<Coord> latticeShape;

    /**
     * True when every iteration lowers to the same commands, enabling
     * JIT memoization (§4.2); gauss_elim's shrinking tensors are the
     * counterexample.
     */
    bool sameTdfgEachIter = true;

    /** Near-memory stream form of one iteration (the sDFG). */
    std::vector<NearStream> streams;

    /**
     * Optional per-iteration stream builder for phases whose stream
     * extents change across iterations (gauss_elim); overrides @p streams
     * when set.
     */
    std::function<std::vector<NearStream>(std::uint64_t iter)> buildStreams;

    /**
     * Functional implementation for phases without a tDFG (irregular
     * stages like furthest sampling); called once per iteration when the
     * executor runs in functional mode.
     */
    std::function<void(ArrayStore &, std::uint64_t iter)>
        functionalFallback;

    /**
     * Stream form of the residual work that accompanies the in-memory
     * part under InfS (e.g. kmeans' indirect centroid update, final
     * reductions beyond the tile). Executed near-memory by InfS, in the
     * core by InL3.
     */
    std::vector<NearStream> residualStreams;

    /** Scalar fp ops per iteration (in-core cost). */
    std::uint64_t coreFlopsPerIter = 0;

    /** Bytes streamed through L3 per iteration after private caching. */
    Bytes coreBytesPerIter = 0;

    /** Residual (non-tensor) flops per iteration, run by the core under
     * InL3 and near memory under InfS. */
    std::uint64_t residualFlopsPerIter = 0;
    Bytes residualBytesPerIter = 0;

    /** Per-iteration parallel-section overhead for the multicore Base
     * (OpenMP fork/join + barrier; dominates furthest-sample, §8). */
    Tick baseSyncPerIter = 3000;
};

/** A full workload (one Table 3 benchmark or PointNet++ stage). */
struct Workload {
    std::string name;

    /** Primary array shape (dim 0 innermost) — drives tiling (§4.1). */
    std::vector<Coord> primaryShape;
    unsigned elemBytes = 4;

    std::vector<Phase> phases;

    /** Total array footprint to transpose before in-memory phases. */
    Bytes footprintBytes = 0;
    /** Dirty bytes written back on release. */
    Bytes dirtyBytes = 0;
    /** Fraction of the footprint resident in L3 at region start. */
    double l3Residency = 1.0;

    /** Fig 2 mode: data already cached in L3 and transposed; skip the
     * preparation and release phases. */
    bool assumeTransposed = false;

    /** Fig 16/17 sweeps: force this tile size instead of the runtime
     * heuristic (empty = let the runtime choose, §4.1). */
    std::vector<Coord> forceTile;

    /** Initialize arrays (functional mode). */
    std::function<void(ArrayStore &)> setup;
    /** Independent scalar implementation (golden reference). */
    std::function<void(ArrayStore &)> reference;
};

} // namespace infs

#endif // INFS_CORE_WORKLOAD_HH
