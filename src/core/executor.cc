#include "core/executor.hh"

#include <algorithm>
#include <cmath>
#include <functional>
#include <optional>

#include "analysis/verify_tdfg.hh"
#include "bitserial/simd.hh"
#include "tdfg/interp.hh"

namespace infs {

const char *
paradigmName(Paradigm p)
{
    switch (p) {
      case Paradigm::Base1T: return "Base-1T";
      case Paradigm::Base: return "Base";
      case Paradigm::NearL3: return "Near-L3";
      case Paradigm::InL3: return "In-L3";
      case Paradigm::InfS: return "Inf-S";
      case Paradigm::InfSNoJit: return "Inf-S-noJIT";
    }
    return "?";
}

ExecStats
Executor::run(const Workload &w, ArrayStore *store)
{
    sys_.resetStats();
    if (store != nullptr)
        backend_->runWorkloadFunctional(w, *store);

    ExecStats st;
    st.backend = sys_.config().backend;
    // Total element ops (for the in-memory fraction dots of Fig 14).
    for (const Phase &p : w.phases)
        st.totalOps +=
            (p.coreFlopsPerIter + p.residualFlopsPerIter) * p.iterations;

    switch (paradigm_) {
      case Paradigm::Base1T:
        runBase(w, st, 1);
        break;
      case Paradigm::Base:
        runBase(w, st, sys_.config().numCores());
        break;
      case Paradigm::NearL3:
        runNearL3(w, st);
        break;
      case Paradigm::InL3:
        runInMemory(w, st, /*fused=*/false, /*jit=*/true);
        break;
      case Paradigm::InfS:
        runInMemory(w, st, /*fused=*/true, /*jit=*/true);
        break;
      case Paradigm::InfSNoJit:
        runInMemory(w, st, /*fused=*/true, /*jit=*/false);
        break;
    }
    finalizeStats(st);
    return st;
}

Tick
Executor::corePhaseCycles(const Phase &p, unsigned threads, ExecStats &st,
                          std::uint64_t iters) const
{
    const SystemConfig &cfg = sys_.config();
    const std::uint64_t flops =
        p.coreFlopsPerIter + p.residualFlopsPerIter;
    const Bytes bytes = p.coreBytesPerIter + p.residualBytesPerIter;
    const double rep = static_cast<double>(iters);

    double compute_cycles =
        static_cast<double>(flops) /
        (static_cast<double>(threads) * cfg.core.simdLanesFp32);

    // Memory: data streams from L3 home banks to the cores' private
    // caches; per-line request control precedes each response line.
    // Traffic and energy scale with the iteration count.
    double lines = static_cast<double>(bytes) / lineBytes;
    sys_.noc().accountBulk(static_cast<double>(bytes) * rep,
                           sys_.noc().avgHops(), TrafficClass::Data);
    sys_.noc().accountBulk(lines * 16.0 * rep, sys_.noc().avgHops(),
                           TrafficClass::Control);
    sys_.l3().read(0, static_cast<Bytes>(bytes * iters));

    double core_side_bw =
        static_cast<double>(threads) * cfg.noc.linkBytes;
    double l3_bw = static_cast<double>(cfg.l3.numBanks) *
                   cfg.l3.htreeBandwidth;
    double mem_cycles =
        static_cast<double>(bytes) / std::min(core_side_bw, l3_bw);

    // L3 misses go to DRAM (the phase-level residency knob).
    // Handled at workload granularity via l3Residency during in-memory
    // preparation; for the core paths charge DRAM per-phase.
    double dram_cycles = 0.0;

    // Energy: core op + cache line movements.
    sys_.energy().charge(EnergyEvent::CoreOp,
                         static_cast<double>(flops) * rep);
    sys_.energy().charge(EnergyEvent::L1Access, lines * rep);
    sys_.energy().charge(EnergyEvent::L2Access, lines * rep);
    sys_.energy().charge(EnergyEvent::L3Access, lines * rep);

    Tick overhead = threads > 1 ? p.baseSyncPerIter : 200;
    (void)st;
    return static_cast<Tick>(
               std::max({compute_cycles, mem_cycles, dram_cycles})) +
           overhead;
}

void
Executor::degradeRegion(const Phase &p, ExecStats &st,
                        std::uint64_t first_iter, std::uint64_t iters,
                        const Error &err)
{
    ++st.regionsDegraded;
    const bool near_ok =
        !p.streams.empty() || static_cast<bool>(p.buildStreams);
    infs_warn("phase '%s': in-memory region failed (%s); degrading to %s",
              p.name.c_str(), err.str().c_str(),
              near_ok ? "near-memory streams" : "the core");
    if (near_ok) {
        // Near-L3 fallback: the stream form covers the whole phase
        // (including final reductions), mirroring runNearL3. This is the
        // In-L3 -> Near-L3 step of the degradation chain, so it applies
        // even when the paradigm is not fused.
        for (std::uint64_t i = 0; i < iters; ++i) {
            NearExecResult r = sys_.nearEngine().run(
                p.buildStreams ? p.buildStreams(first_iter + i)
                               : p.streams,
                0);
            st.nearMemCycles += r.cycles;
            st.cycles += r.cycles;
        }
    } else {
        Tick per_iter =
            corePhaseCycles(p, sys_.config().numCores(), st, iters);
        st.coreCycles += per_iter * iters;
        st.cycles += per_iter * iters;
    }
}

void
Executor::runBase(const Workload &w, ExecStats &st, unsigned threads)
{
    // Cold data comes from DRAM once per workload.
    Bytes dram_bytes = static_cast<Bytes>(
        static_cast<double>(w.footprintBytes) * (1.0 - w.l3Residency));
    if (dram_bytes > 0) {
        Tick t = sys_.dram().transfer(dram_bytes);
        st.dramCycles += t;
        st.cycles += t;
    }
    for (const Phase &p : w.phases) {
        Tick before = st.cycles;
        Tick per_iter = corePhaseCycles(p, threads, st, p.iterations);
        st.coreCycles += per_iter * p.iterations;
        st.cycles += per_iter * p.iterations;
        st.phaseCycles.emplace_back(p.name, st.cycles - before);
    }
}

void
Executor::runNearL3(const Workload &w, ExecStats &st)
{
    Bytes dram_bytes = static_cast<Bytes>(
        static_cast<double>(w.footprintBytes) * (1.0 - w.l3Residency));
    if (dram_bytes > 0) {
        Tick t = sys_.dram().transfer(dram_bytes);
        st.dramCycles += t;
        st.cycles += t;
    }
    for (const Phase &p : w.phases) {
        Tick phase_start = st.cycles;
        bool per_iter_streams = static_cast<bool>(p.buildStreams);
        if (p.streams.empty() && !per_iter_streams) {
            // Not offloadable: run in the core.
            Tick per_iter = corePhaseCycles(
                p, sys_.config().numCores(), st, p.iterations);
            st.coreCycles += per_iter * p.iterations;
            st.cycles += per_iter * p.iterations;
            st.phaseCycles.emplace_back(p.name, st.cycles - phase_start);
            continue;
        }
        if (per_iter_streams) {
            for (std::uint64_t it = 0; it < p.iterations; ++it) {
                NearExecResult r =
                    sys_.nearEngine().run(p.buildStreams(it), 0);
                st.nearMemCycles += r.cycles;
                st.cycles += r.cycles;
            }
        } else {
            for (std::uint64_t it = 0; it < p.iterations; ++it) {
                NearExecResult r = sys_.nearEngine().run(p.streams, 0);
                st.nearMemCycles += r.cycles;
                st.cycles += r.cycles;
            }
        }
        st.phaseCycles.emplace_back(p.name, st.cycles - phase_start);
    }
}

void
Executor::runInMemory(const Workload &w, ExecStats &st, bool fused,
                      bool jit_enabled)
{
    const SystemConfig &cfg = sys_.config();
    // Steady-state mode (Fig 2): data transposed and commands already
    // lowered in earlier invocations.
    if (w.assumeTransposed)
        jit_enabled = false;

    // §4.1: pick the transposed layout from the first tensor phase's
    // hints; one primary layout serves all arrays of the region.
    LayoutHints hints;
    bool have_tdfg = false;
    for (const Phase &p : w.phases) {
        if (p.buildTdfg) {
            TdfgGraph g = p.buildTdfg(0);
            LayoutHints h = LayoutHints::fromGraph(g);
            hints.shiftDims.insert(h.shiftDims.begin(), h.shiftDims.end());
            hints.broadcastDims.insert(h.broadcastDims.begin(),
                                       h.broadcastDims.end());
            if (h.reduceDim)
                hints.reduceDim = h.reduceDim;
            have_tdfg = true;
        }
    }
    TilingPolicy policy(cfg.l3);
    TileDecision tile;
    if (!w.forceTile.empty()) {
        tile.valid = w.forceTile.size() == w.primaryShape.size();
        tile.tile = w.forceTile;
    } else if (have_tdfg) {
        tile = policy.choose(w.primaryShape, w.elemBytes, hints);
    }
    TiledLayout layout;
    if (tile.valid) {
        auto made = TiledLayout::make(w.primaryShape, tile.tile);
        if (!made) {
            // A forced tile violating the layout constraints is a
            // recoverable user error, not a crash: degrade the whole
            // region to the fallback paradigm below.
            infs_warn("workload '%s': %s; disabling in-memory execution",
                      w.name.c_str(), made.error().str().c_str());
            ++st.regionsDegraded;
            tile.valid = false;
        } else {
            layout = std::move(*made);
        }
    }
    if (!have_tdfg || !tile.valid) {
        // In-memory computing disabled (§4.1): fall back to near-memory
        // when fused, else to the core.
        if (fused)
            runNearL3(w, st);
        else
            runBase(w, st, cfg.numCores());
        return;
    }
    st.chosenTile = tile.tile;

    // Fat-binary candidate schedules (DESIGN.md §14): when enabled, every
    // memoized primary-layout phase lowers each candidate and the
    // dispatcher below picks one per phase from replayed makespans and
    // the occupancy observed so far. Candidates share the winner's
    // reduce-dim tile size, so any pick is bit-identical. Deliberately
    // independent of jit_enabled: steady-state runs (data transposed,
    // commands precompiled) are exactly where a fat binary applies — the
    // schedules were lowered ahead of time and only the dispatch-time
    // pick remains. Only the chosen program's jitTicks are ever charged,
    // and only when jit_enabled, so timing semantics are unchanged.
    std::vector<TiledLayout> candLayouts;
    if (cfg.fatBinary && w.forceTile.empty() &&
        cfg.fatBinaryCandidates > 1) {
        for (TileDecision &d :
             policy.candidates(w.primaryShape, w.elemBytes, hints,
                               cfg.fatBinaryCandidates))
            candLayouts.emplace_back(w.primaryShape, d.tile);
        if (candLayouts.size() <= 1)
            candLayouts.clear();
    }

    // Data preparation (§5.2) happens lazily, at the first phase that
    // actually commits to in-memory execution (small regions that Eq. 2
    // keeps near memory never pay the transposition).
    bool prepared = w.assumeTransposed;
    auto prepareOnce = [&]() {
        if (prepared)
            return;
        prepared = true;
        PrepareResult prep =
            sys_.prepareTransposed(w.footprintBytes, w.l3Residency);
        st.dramCycles += prep.cycles;
        st.cycles += prep.cycles;
        st.dramBytes += prep.dramBytes;
    };

    // Waves: element sets larger than the bitline pool execute in passes.
    std::int64_t primary_elems = 1;
    for (Coord s : w.primaryShape)
        primary_elems *= s;
    Tick waves = static_cast<Tick>(
        (primary_elems + cfg.l3.totalBitlines() - 1) /
        cfg.l3.totalBitlines());
    waves = std::max<Tick>(waves, 1);

    // ---- Plan (DESIGN.md §10): resolve each phase's route with the pure
    // checks only — graph invariants, layout choice, Eq. 2 — so the JIT
    // work of independent regions can fan out before the sequential
    // timing walk below. The checks are side-effect free; hoisting them
    // is behavior-identical to the former in-loop order.
    enum class Route {
        Irregular,   ///< No tDFG: near memory (fused) or the core.
        DegradeTdfg, ///< Graph verification failed; degrade the region.
        Fallback,    ///< No valid phase layout, or Eq. 2 said no.
        InMemory,    ///< Offloaded to the fabric.
    };
    struct PhasePlan {
        const Phase *phase = nullptr;
        Route route = Route::Irregular;
        Error error;          ///< DegradeTdfg diagnostic.
        // Rank-1 placeholder until the phase's graph is built (TdfgGraph
        // has no empty state).
        TdfgGraph g0{1};      ///< First-iteration graph (set when built).
        bool usesOwnLayout = false;
        TiledLayout ownLayout; ///< Phase-specific layout when set.
        std::string memoKey;   ///< Non-empty on the memoized path.
        /** Pre-lowered program (memoized path), set bank-parallel. */
        std::optional<Expected<std::shared_ptr<const InMemProgram>>> prog;
        /** Fat-binary: one program per candidate layout, index-aligned
         * with candLayouts (primary-layout memoized phases only). */
        std::vector<Expected<std::shared_ptr<const InMemProgram>>>
            candProgs;
    };
    std::vector<PhasePlan> plans;
    plans.reserve(w.phases.size());
    for (const Phase &p : w.phases) {
        PhasePlan plan;
        plan.phase = &p;
        if (!p.buildTdfg) {
            plans.push_back(std::move(plan));
            continue;
        }
        plan.g0 = p.buildTdfg(0);

        // Pre-offload verification (DESIGN.md §9): a graph that fails its
        // invariants never reaches the offload decision or the JIT.
        if (cfg.verifyLevel != VerifyLevel::Off) {
            if (auto ok = checkTdfg(plan.g0); !ok) {
                plan.route = Route::DegradeTdfg;
                plan.error = ok.error();
                plans.push_back(std::move(plan));
                continue;
            }
        }

        // Phases whose lattice rank differs from the workload layout get
        // their own layout (or fall back when none is valid).
        if (!p.latticeShape.empty() || plan.g0.dims() != layout.dims()) {
            std::vector<Coord> shape =
                p.latticeShape.empty() ? w.primaryShape : p.latticeShape;
            TileDecision td;
            if (shape.size() == plan.g0.dims())
                td = policy.choose(shape, w.elemBytes,
                                   LayoutHints::fromGraph(plan.g0));
            if (!td.valid) {
                plan.route = Route::Fallback;
                plans.push_back(std::move(plan));
                continue;
            }
            plan.ownLayout = TiledLayout(shape, td.tile);
            plan.usesOwnLayout = true;
        }

        TdfgSummary summary = plan.g0.summarize();
        // Eq. 2 (§4.3): Inf-S chooses between in- and near-memory; In-L3
        // (no near-memory support) between in-memory and the core. The
        // Fig 2 steady-state mode forces in-memory to plot the paradigm
        // itself.
        OffloadDecision dec = decideOffload(summary, cfg, !jit_enabled);
        if (!w.assumeTransposed && !dec.inMemory) {
            plan.route = Route::Fallback;
            plans.push_back(std::move(plan));
            continue;
        }
        plan.route = Route::InMemory;
        if (p.sameTdfgEachIter)
            plan.memoKey = w.name + "/" + p.name;
        plans.push_back(std::move(plan));
    }

    // ---- Pre-lower independent regions bank-parallel (DESIGN.md §10).
    // Each memoized phase lowers exactly once here; the timing walk
    // consumes the cold program directly, so the JIT time lands on the
    // same iteration and JitStats match the sequential order.
    {
        std::vector<PhasePlan *> jobs;
        for (PhasePlan &plan : plans)
            if (plan.route == Route::InMemory && !plan.memoKey.empty())
                jobs.push_back(&plan);
        auto lowerOne = [&](PhasePlan *plan) {
            if (!plan->usesOwnLayout && !candLayouts.empty()) {
                plan->candProgs = sys_.jit().lowerCandidates(
                    plan->g0, candLayouts, sys_.map(), plan->memoKey);
                // Candidate 0 is the policy winner — the legacy choice —
                // so the degradation path below is unchanged when it
                // fails.
                plan->prog = plan->candProgs.front();
            } else {
                const TiledLayout &use_layout =
                    plan->usesOwnLayout ? plan->ownLayout : layout;
                plan->prog = sys_.jit().tryLower(
                    plan->g0, use_layout, sys_.map(), plan->memoKey);
            }
        };
        ThreadPool &pool = sys_.pool();
        if (pool.inlineOnly() || jobs.size() <= 1) {
            for (PhasePlan *job : jobs)
                lowerOne(job);
        } else {
            std::vector<std::function<void()>> tasks;
            tasks.reserve(jobs.size());
            for (PhasePlan *job : jobs)
                tasks.push_back([&lowerOne, job] { lowerOne(job); });
            pool.runTasks(std::move(tasks));
        }
    }

    // ---- Sequential timing walk: all simulated-time, traffic, energy,
    // and fault accounting happens here, in phase order, exactly as the
    // single-thread engine did.

    // Bank occupancy observed across the regions executed so far; feeds
    // the fat-binary dispatcher of later phases (empty history means the
    // cost reduces to the replayed makespan alone).
    FabricStats observed;
    for (PhasePlan &plan : plans) {
        const Phase &p = *plan.phase;
        Tick phase_start = st.cycles;
        if (plan.route == Route::Irregular) {
            // Irregular-only phase: near memory when fused, core when not.
            if (fused &&
                (!p.streams.empty() || p.buildStreams)) {
                if (p.buildStreams) {
                    for (std::uint64_t it = 0; it < p.iterations; ++it) {
                        NearExecResult r =
                            sys_.nearEngine().run(p.buildStreams(it), 0);
                        st.nearMemCycles += r.cycles;
                        st.cycles += r.cycles;
                    }
                } else {
                    for (std::uint64_t it = 0; it < p.iterations; ++it) {
                        NearExecResult r =
                            sys_.nearEngine().run(p.streams, 0);
                        st.nearMemCycles += r.cycles;
                        st.cycles += r.cycles;
                    }
                }
            } else {
                Tick per_iter = corePhaseCycles(p, cfg.numCores(), st,
                                                p.iterations);
                st.coreCycles += per_iter * p.iterations;
                st.cycles += per_iter * p.iterations;
            }
            st.phaseCycles.emplace_back(p.name, st.cycles - phase_start);
            continue;
        }
        if (plan.route == Route::DegradeTdfg) {
            degradeRegion(p, st, 0, p.iterations, plan.error);
            st.phaseCycles.emplace_back(p.name, st.cycles - phase_start);
            continue;
        }
        if (plan.route == Route::Fallback) {
            // Eq. 2 says in-memory does not pay (or no valid layout):
            // fused runs the stream form near memory; In-L3 falls back to
            // the core.
            if (fused && !p.streams.empty()) {
                for (std::uint64_t it = 0; it < p.iterations; ++it) {
                    NearExecResult r = sys_.nearEngine().run(p.streams, 0);
                    st.nearMemCycles += r.cycles;
                    st.cycles += r.cycles;
                }
            } else {
                Tick per_iter = corePhaseCycles(p, cfg.numCores(), st,
                                                p.iterations);
                st.coreCycles += per_iter * p.iterations;
                st.cycles += per_iter * p.iterations;
            }
            st.phaseCycles.emplace_back(p.name, st.cycles - phase_start);
            continue;
        }

        const TiledLayout &use_layout =
            plan.usesOwnLayout ? plan.ownLayout : layout;
        prepareOnce();
        auto accumulate = [&](const InMemExecResult &r) {
            st.computeCycles += r.computeCycles * waves;
            st.moveCycles += r.moveCycles * waves;
            st.syncCycles += r.syncCycles * waves;
            st.cycles += r.cycles * waves;
            st.inMemOps += r.inMemOps;
            st.intraTileBytes += r.intraTileBytes;
            st.interTileBytes += r.interTileBytes;
            st.interTileNocBytes += r.interTileNocBytes;
            for (std::size_t b = 0; b < r.bankBusy.size(); ++b)
                observed.bankOps[b % FabricStats::kBankSlots] +=
                    static_cast<std::uint64_t>(r.bankBusy[b]);
        };

        if (!plan.memoKey.empty()) {
            // The first iteration pays the JIT; the rest reuse the
            // memoized program (§4.2). Lowered bank-parallel above.
            auto &prog_or = *plan.prog;
            if (!prog_or) {
                degradeRegion(p, st, 0, p.iterations, prog_or.error());
                st.phaseCycles.emplace_back(p.name,
                                            st.cycles - phase_start);
                continue;
            }
            std::shared_ptr<const InMemProgram> prog = *prog_or;
            const TiledLayout *exec_layout = &use_layout;
            if (!plan.candProgs.empty()) {
                // Fat-binary dispatch (DESIGN.md §14): probe each cleanly
                // lowered candidate's makespan on private replay models,
                // then pick with the occupancy observed so far. Only the
                // chosen program's JIT time is charged below — the others
                // were lowered ahead of dispatch (that is the fat binary).
                std::vector<ScheduleCandidate> cands;
                std::vector<unsigned> ids;
                for (unsigned c = 0; c < plan.candProgs.size(); ++c) {
                    if (!plan.candProgs[c])
                        continue; // Candidate failed to lower: drop it.
                    ScheduleCandidate sc;
                    sc.layout = candLayouts[c];
                    sc.prog = *plan.candProgs[c];
                    BackendJob job{candLayouts[c], sc.prog, primary_elems};
                    sc.replayCycles =
                        replayTiming(cfg, job, &sys_.pool()).simCycles;
                    cands.push_back(std::move(sc));
                    ids.push_back(c);
                }
                if (cands.size() > 1) {
                    unsigned pick = chooseSchedule(cands, observed);
                    prog = cands[pick].prog;
                    exec_layout = &candLayouts[ids[pick]];
                    if (st.scheduleId < 0) {
                        st.scheduleId = static_cast<int>(ids[pick]);
                        st.scheduleCandidates =
                            static_cast<unsigned>(cands.size());
                        st.chosenTile = exec_layout->tile();
                    }
                }
            }
            if (jit_enabled) {
                st.jitCycles += prog->jitTicks;
                st.cycles += prog->jitTicks;
            }
            InMemExecResult r = sys_.tensorController().execute(
                *prog, *exec_layout, 0, p.iterations);
            if (r.failed) {
                // The aborted attempt (including its retry time) is sunk
                // cost; the region then reruns on the fallback path.
                st.cycles += r.cycles;
                degradeRegion(p, st, 0, p.iterations,
                              Error{ErrCode::CommandFailed,
                                    "in-memory command fault persisted "
                                    "past the retry budget"});
                st.phaseCycles.emplace_back(p.name,
                                            st.cycles - phase_start);
                continue;
            }
            accumulate(r);
        } else {
            // Changing parameters defeat memoization (gauss_elim, §8).
            // Graphs build sequentially; lowering fans out in bounded
            // blocks. When a lowering fails, the block may have lowered a
            // few graphs past the failing iteration speculatively — that
            // shows in JitStats only; ExecStats and the degradation point
            // are unchanged (DESIGN.md §10).
            ThreadPool &pool = sys_.pool();
            const std::uint64_t block =
                pool.inlineOnly()
                    ? 1
                    : std::max<std::uint64_t>(2 * pool.threads(), 4);
            bool degraded = false;
            for (std::uint64_t it0 = 0;
                 it0 < p.iterations && !degraded; it0 += block) {
                const std::uint64_t n =
                    std::min<std::uint64_t>(block, p.iterations - it0);
                std::vector<TdfgGraph> graphs;
                graphs.reserve(n);
                for (std::uint64_t k = 0; k < n; ++k) {
                    graphs.push_back(it0 + k == 0
                                         ? std::move(plan.g0)
                                         : p.buildTdfg(it0 + k));
                }
                using ProgOr =
                    Expected<std::shared_ptr<const InMemProgram>>;
                std::vector<std::optional<ProgOr>> progs(n);
                auto lowerK = [&](std::uint64_t k) {
                    progs[k] = sys_.jit().tryLower(graphs[k], use_layout,
                                                   sys_.map());
                };
                if (pool.inlineOnly() || n == 1) {
                    for (std::uint64_t k = 0; k < n; ++k)
                        lowerK(k);
                } else {
                    std::vector<std::function<void()>> tasks;
                    tasks.reserve(n);
                    for (std::uint64_t k = 0; k < n; ++k)
                        tasks.push_back([&lowerK, k] { lowerK(k); });
                    pool.runTasks(std::move(tasks));
                }
                for (std::uint64_t k = 0; k < n; ++k) {
                    const std::uint64_t it = it0 + k;
                    ProgOr &prog_or = *progs[k];
                    if (!prog_or) {
                        degradeRegion(p, st, it, p.iterations - it,
                                      prog_or.error());
                        degraded = true;
                        break;
                    }
                    const auto &prog = *prog_or;
                    if (jit_enabled) {
                        st.jitCycles += prog->jitTicks;
                        st.cycles += prog->jitTicks;
                    }
                    InMemExecResult r = sys_.tensorController().execute(
                        *prog, use_layout, 0);
                    if (r.failed) {
                        st.cycles += r.cycles;
                        degradeRegion(p, st, it, p.iterations - it,
                                      Error{ErrCode::CommandFailed,
                                            "in-memory command fault "
                                            "persisted past the retry "
                                            "budget"});
                        degraded = true;
                        break;
                    }
                    accumulate(r);
                }
            }
            if (degraded) {
                st.phaseCycles.emplace_back(p.name,
                                            st.cycles - phase_start);
                continue;
            }
        }

        // Residual work: final reductions / irregular updates coupled to
        // the in-memory part.
        if (!p.residualStreams.empty()) {
            if (fused) {
                bool any_reduce = false;
                for (const NearStream &s : p.residualStreams)
                    any_reduce |= s.isReduce;
                for (std::uint64_t it = 0; it < p.iterations; ++it) {
                    NearExecResult r =
                        sys_.nearEngine().run(p.residualStreams, 0);
                    if (any_reduce)
                        st.finalReduceCycles += r.cycles;
                    else
                        st.mixCycles += r.cycles;
                    st.cycles += r.cycles;
                }
            } else {
                // In-L3 has no near-memory support: the core does it.
                Phase residual;
                residual.coreFlopsPerIter = p.residualFlopsPerIter;
                residual.coreBytesPerIter = p.residualBytesPerIter;
                Tick per_iter = corePhaseCycles(
                    residual, cfg.numCores(), st, p.iterations);
                st.finalReduceCycles += per_iter * p.iterations;
                st.cycles += per_iter * p.iterations;
            }
        }
        st.phaseCycles.emplace_back(p.name, st.cycles - phase_start);
    }

    // Delayed release of the transposed data (§5.2).
    if (prepared && !w.assumeTransposed) {
        Tick rel = sys_.releaseTransposed(w.dirtyBytes);
        st.dramCycles += rel;
        st.cycles += rel;
    } else if (prepared) {
        sys_.releaseTransposed(0);
    }
}

void
Executor::finalizeStats(ExecStats &st) const
{
    MeshNoc &noc = sys_.noc();
    for (unsigned c = 0; c < numTrafficClasses; ++c)
        st.nocHopBytes[c] = noc.hopBytes(static_cast<TrafficClass>(c));
    st.nocUtilization = noc.utilization(std::max<Tick>(st.cycles, 1));
    st.dramBytes = sys_.dram().totalBytes();

    // Central energy charges from model totals.
    sys_.energy().charge(EnergyEvent::NocHopFlit,
                         noc.totalHopBytes() /
                             sys_.config().noc.linkBytes);
    sys_.energy().charge(EnergyEvent::DramAccess,
                         static_cast<double>(st.dramBytes) / lineBytes);
    st.energyJoules = sys_.energy().totalJoules();

    // Dispatch provenance (schema v5): which SIMD table the bitserial
    // layer resolved to and how many NUMA nodes the pool pins across.
    st.simdIsa = simd::activeIsa();
    st.numaNodes = sys_.pool().numaNodes();

    // Fault and recovery totals come from the injector — the single
    // source of truth across the NoC, the controller, and the fabric.
    FaultStats fs = sys_.faultInjector().snapshot();
    st.faultsInjected = fs.totalInjected();
    st.faultsDetected = fs.detected;
    st.faultRetries = fs.retries;
    st.retryCycles = static_cast<Tick>(fs.retryCycles);
}

} // namespace infs
