/**
 * @file
 * Execution backends: the Executor and the tools run lowered in-memory
 * jobs through one ExecBackend chosen by SystemConfig::backend.
 *
 * Three implementations are registered (DESIGN.md §12):
 *  - fabric:     the bit-accurate SRAM fabric plus the cycle replay —
 *                ground truth for both bits and time;
 *  - functional: a word-level replay of the same lowered command stream
 *                (one float per lattice cell per slot) — bit-identical
 *                checksums without bit-serial simulation;
 *  - timing:     the cycle replay alone — sim_cycles/NoC/energy without
 *                touching bits.
 *
 * The fidelity contract is certified continuously by
 * tests/core/test_backend_diff.cc: functional checksums byte-identical to
 * fabric, timing sim_cycles exactly equal to fabric's.
 */

#ifndef INFS_CORE_BACKEND_HH
#define INFS_CORE_BACKEND_HH

#include <bit>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/workload.hh"
#include "jit/jit.hh"
#include "jit/tiling.hh"
#include "sim/config.hh"
#include "sim/rng.hh"
#include "sim/thread_pool.hh"
#include "tdfg/array_store.hh"
#include "uarch/bit_exec.hh"

namespace infs {

/** One planned in-memory job: a lowered program and its layout. */
struct BackendJob {
    TiledLayout layout;
    std::shared_ptr<const InMemProgram> prog;
    std::int64_t volume = 0; ///< Lattice volume (elements per slot).
};

/** What a backend produced for one job. */
struct BackendResult {
    /** FNV-1a over the output slots' full-lattice bit patterns; only
     * meaningful when bitAccurate is set. */
    std::uint64_t checksum = 0;
    bool bitAccurate = false; ///< Checksum certified identical to fabric.

    Tick simCycles = 0;       ///< Cycle-replay makespan (hasTiming only).
    double nocHopBytes = 0.0; ///< Replay NoC traffic (bytes x hops).
    double energyJoules = 0.0;
    bool hasTiming = false;

    FabricStats fabric; ///< Per-command-kind breakdown (fabric only).
};

/**
 * One execution backend. Stateless across jobs: runJob builds whatever
 * per-job machinery it needs (fabric tiles, replay models) so repeated
 * calls are independent and deterministic.
 */
class ExecBackend
{
  public:
    explicit ExecBackend(const SystemConfig &cfg) : cfg_(cfg) {}
    virtual ~ExecBackend() = default;

    virtual ExecBackendKind kind() const = 0;

    /** Execute @p job on deterministic inputs (seedJobInputs). */
    virtual BackendResult runJob(const BackendJob &job) = 0;

    /** Host thread pool for bank-parallel sections (nullptr = inline);
     * results are bit-identical for any pool. */
    void setThreadPool(ThreadPool *pool) { pool_ = pool; }

    /**
     * Workload-level functional co-simulation on an ArrayStore: the
     * reference tDFG-interpreter path every backend shares (promoted from
     * the Executor's private runFunctional). This is semantics-only —
     * reduction order may differ from the lowered tree reductions, so its
     * results are reference values, not fabric bit patterns.
     */
    void runWorkloadFunctional(const Workload &w, ArrayStore &store) const;

  protected:
    SystemConfig cfg_;
    ThreadPool *pool_ = nullptr;
};

/** Construct the registered backend implementation for @p kind. */
std::unique_ptr<ExecBackend> makeBackend(ExecBackendKind kind,
                                         const SystemConfig &cfg);

/**
 * Plan the canonical per-scenario job (shared by infs-bench, infs-verify,
 * and the differential tests): choose the primary layout from all tensor
 * phases' hints (§4.1) and lower the first primary-layout phase.
 * Scenarios whose lattice exceeds @p volume_cap, or with no lowerable
 * primary-layout phase, plan nothing (nullopt).
 */
std::optional<BackendJob> planPrimaryJob(const Workload &w,
                                         const SystemConfig &cfg,
                                         ThreadPool *pool,
                                         std::int64_t volume_cap);

/** Cycle replay of a lowered program on private system models (fault
 * injection off): the timing half shared by the fabric and timing
 * backends, reusing latency.hh via the tensor controller. */
struct TimingReplayResult {
    Tick simCycles = 0;
    double nocHopBytes = 0.0;
    double energyJoules = 0.0;
};
TimingReplayResult replayTiming(const SystemConfig &cfg,
                                const BackendJob &job, ThreadPool *pool);

/**
 * One fat-binary schedule candidate: a lowered program for one candidate
 * tile layout plus its predicted cycle-replay makespan (DESIGN.md §14).
 */
struct ScheduleCandidate {
    TiledLayout layout;
    std::shared_ptr<const InMemProgram> prog;
    Tick replayCycles = 0;
};

/**
 * Dispatch-time fat-binary selection (DESIGN.md §14): pick the candidate
 * minimizing the Eq. 2-style cost
 *
 *     cost_c = R_c * (1 + beta * I * (G / g_c - 1))
 *
 * where R_c is the candidate's replayed makespan, I the observed bank
 * occupancy imbalance (FabricStats::occupancyImbalance — a deterministic
 * function of the command stream, never wall time), g_c the candidate's
 * tile count and G the largest tile count in the set: under imbalance,
 * schedules that spread work over more tiles are favored. Ties resolve to
 * the lowest index (the tiling policy's preference order), so selection
 * is a pure function of (candidates, observed). Asserts on an empty set.
 */
unsigned chooseSchedule(const std::vector<ScheduleCandidate> &candidates,
                        const FabricStats &observed);

/** FNV-1a over one 32-bit word, byte by byte (the bench checksum). */
inline std::uint64_t
fnv1aWord(std::uint64_t h, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Seed of the deterministic per-array job inputs. */
constexpr std::uint64_t kJobInputSeedBase = 101;

/**
 * Load deterministic inputs into every program array slot of a fabric-like
 * target (anything with loadArray(span<const float>, unsigned)); the same
 * streams for every backend, so checksums are comparable.
 */
template <class Fab>
void
seedJobInputs(Fab &fab, const BackendJob &job)
{
    const auto vol = static_cast<std::size_t>(job.volume);
    for (const auto &[id, wl] : job.prog->arraySlots) {
        std::vector<float> data(vol);
        Rng rng(static_cast<std::uint64_t>(id) + kJobInputSeedBase);
        for (auto &v : data)
            v = rng.nextFloat(-4, 4);
        fab.loadArray(data, wl);
    }
}

/** FNV-1a over the full lattice of every output slot, in slot order —
 * the quantity the differential tests pin across backends. */
template <class Fab>
std::uint64_t
checksumJobOutputs(const Fab &fab, const BackendJob &job)
{
    const auto vol = static_cast<std::size_t>(job.volume);
    std::uint64_t h = 0xcbf29ce484222325ull;
    std::vector<float> out(vol);
    for (const auto &[id, wl] : job.prog->outputSlots) {
        fab.storeArray(out, wl);
        for (float v : out)
            h = fnv1aWord(h, std::bit_cast<std::uint32_t>(v));
    }
    return h;
}

} // namespace infs

#endif // INFS_CORE_BACKEND_HH
