/**
 * @file
 * Paradigm executors: run a Workload under Base / Near-L3 / In-L3 /
 * Inf-S, co-simulating function (optional, via the tDFG interpreter) and
 * timing (always, via the system models). The cycle breakdown mirrors
 * Fig 14's categories.
 */

#ifndef INFS_CORE_EXECUTOR_HH
#define INFS_CORE_EXECUTOR_HH

#include <array>
#include <string>
#include <utility>
#include <vector>

#include "core/backend.hh"
#include "core/workload.hh"
#include "sim/expected.hh"
#include "uarch/system.hh"

namespace infs {

/** Aggregate execution statistics for one workload run. */
struct ExecStats {
    Tick cycles = 0;

    /** Which execution backend produced this run's in-memory results
     * (SystemConfig::backend). */
    ExecBackendKind backend = ExecBackendKind::Fabric;

    // Fig 14 cycle breakdown.
    Tick dramCycles = 0;        ///< Fetch + transpose from/to DRAM.
    Tick jitCycles = 0;         ///< tDFG lowering (JIT Lower).
    Tick moveCycles = 0;        ///< Tensor moves (shift/broadcast).
    Tick computeCycles = 0;     ///< Bit-serial in-memory compute.
    Tick finalReduceCycles = 0; ///< Near-memory final reductions.
    Tick mixCycles = 0;         ///< Hybrid in-/near-memory overlap.
    Tick nearMemCycles = 0;     ///< Pure near-memory phases.
    Tick coreCycles = 0;        ///< In-core execution.
    Tick syncCycles = 0;        ///< In-memory barriers.

    // Traffic (bytes x hops per Fig 12/13 class) and utilization.
    std::array<double, numTrafficClasses> nocHopBytes{};
    double nocUtilization = 0.0;
    double intraTileBytes = 0.0;
    double interTileBytes = 0.0;
    double interTileNocBytes = 0.0;

    // Ops accounting (Fig 14 dots: fraction of ops executed in-memory).
    std::uint64_t totalOps = 0;
    std::uint64_t inMemOps = 0;

    double energyJoules = 0.0;
    Bytes dramBytes = 0;

    // Robustness accounting (fault injection + graceful degradation).
    std::uint64_t faultsInjected = 0; ///< Faults the injector produced.
    std::uint64_t faultsDetected = 0; ///< Caught by parity/ECC/CRC.
    std::uint64_t faultRetries = 0;   ///< Bounded re-issues performed.
    Tick retryCycles = 0;             ///< Detection + retry time modeled.
    /** Regions that could not run in memory (lowering failure or fault
     * persisting past the retry budget) and fell back In-L3 -> Near-L3 ->
     * core. Excludes the pre-existing Eq. 2 / untileable fallbacks. */
    std::uint64_t regionsDegraded = 0;

    /** Per-phase makespan in phase order (drives the Fig 19 timeline). */
    std::vector<std::pair<std::string, Tick>> phaseCycles;

    /** Tile size the runtime chose for the primary layout (in-memory
     * paradigms only). */
    std::vector<Coord> chosenTile;

    // Dispatch provenance (bench schema v5, DESIGN.md §14).
    /** SIMD kernel table the bitserial layer ran with. */
    SimdIsa simdIsa = SimdIsa::Portable;
    /** NUMA nodes the host pool pins bank shards across (1 = none). */
    unsigned numaNodes = 1;
    /** Fat-binary candidate the dispatcher picked for the primary layout
     * (index into the tiling policy's candidate list); -1 when only one
     * schedule was lowered. */
    int scheduleId = -1;
    /** Candidate schedules lowered for the primary layout. */
    unsigned scheduleCandidates = 0;
    /** Fabric-side cache effectiveness, copied from FabricStats when a
     * bit-accurate fabric ran this workload (bench path); 0 under the
     * pure timing walk. */
    std::uint64_t maskCacheHits = 0;
    std::uint64_t maskCacheMisses = 0;
    std::uint64_t scratchAllocs = 0;

    /** Fraction of element ops executed in bitlines. */
    double
    inMemOpFraction() const
    {
        return totalOps ? static_cast<double>(inMemOps) / totalOps : 0.0;
    }
};

/** Runs workloads under a chosen paradigm. */
class Executor
{
  public:
    Executor(InfinitySystem &sys, Paradigm paradigm)
        : sys_(sys), paradigm_(paradigm),
          backend_(makeBackend(sys.config().backend, sys.config()))
    {
        backend_->setThreadPool(&sys.pool());
    }

    /**
     * Execute @p w. When @p store is non-null the tDFG interpreter also
     * computes the functional result into the store (validated against
     * the workload's scalar reference in tests).
     * Stats in the system (traffic/energy) are reset at entry.
     */
    ExecStats run(const Workload &w, ArrayStore *store = nullptr);

    Paradigm paradigm() const { return paradigm_; }

    /** The execution backend this run drives (SystemConfig::backend). */
    ExecBackend &backend() { return *backend_; }

  private:
    void runBase(const Workload &w, ExecStats &st, unsigned threads);
    void runNearL3(const Workload &w, ExecStats &st);
    void runInMemory(const Workload &w, ExecStats &st, bool fused,
                     bool jit_enabled);
    /** In-core cost of one phase iteration for the Base paradigms;
     * traffic and energy are charged for all @p iters at once. */
    Tick corePhaseCycles(const Phase &p, unsigned threads, ExecStats &st,
                         std::uint64_t iters) const;

    /**
     * Graceful degradation of an in-memory region that failed (lowering
     * diagnostic or a fault past the retry budget): run iterations
     * [@p first_iter, first_iter + iters) of @p p near memory when the
     * phase has a stream form — even for In-L3, completing the
     * In-L3 -> Near-L3 -> core chain — else in the core.
     */
    void degradeRegion(const Phase &p, ExecStats &st,
                       std::uint64_t first_iter, std::uint64_t iters,
                       const Error &err);

    void finalizeStats(ExecStats &st) const;

    InfinitySystem &sys_;
    Paradigm paradigm_;
    std::unique_ptr<ExecBackend> backend_;
};

} // namespace infs

#endif // INFS_CORE_EXECUTOR_HH
