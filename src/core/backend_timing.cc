/**
 * @file
 * The timing backend: replays lowered-command cycle costs through the
 * tensor controller (latency.hh per-op costs, per-bank busy fold, NoC
 * crossings, barriers) without touching bits. sim_cycles is exactly the
 * fabric backend's — both run the same replay — which the differential
 * tests certify.
 */

#include "core/backend.hh"

#include "sim/logging.hh"

namespace infs {

namespace {

class TimingBackend final : public ExecBackend
{
  public:
    using ExecBackend::ExecBackend;

    ExecBackendKind kind() const override
    {
        return ExecBackendKind::Timing;
    }

    BackendResult runJob(const BackendJob &job) override
    {
        infs_assert(job.prog != nullptr, "timing backend needs a program");
        BackendResult res;
        TimingReplayResult t = replayTiming(cfg_, job, pool_);
        res.simCycles = t.simCycles;
        res.nocHopBytes = t.nocHopBytes;
        res.energyJoules = t.energyJoules;
        res.hasTiming = true;
        return res;
    }
};

} // namespace

std::unique_ptr<ExecBackend>
makeTimingBackend(const SystemConfig &cfg)
{
    return std::make_unique<TimingBackend>(cfg);
}

} // namespace infs
