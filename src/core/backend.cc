#include "core/backend.hh"

#include <array>

#include "energy/energy.hh"
#include "mem/address_map.hh"
#include "noc/mesh.hh"
#include "tdfg/interp.hh"
#include "uarch/tensor_controller.hh"

namespace infs {

void
ExecBackend::runWorkloadFunctional(const Workload &w,
                                   ArrayStore &store) const
{
    if (w.setup)
        w.setup(store);
    for (const Phase &p : w.phases) {
        for (std::uint64_t it = 0; it < p.iterations; ++it) {
            if (p.functionalFallback) {
                // Overrides the interpreter when set (it may stage data
                // and invoke the interpreter itself).
                p.functionalFallback(store, it);
            } else if (p.buildTdfg) {
                TdfgGraph g = p.buildTdfg(it);
                TdfgInterpreter interp(store);
                interp.run(g);
            }
        }
    }
}

// Factories defined in backend_fabric.cc / backend_functional.cc /
// backend_timing.cc; registered here.
std::unique_ptr<ExecBackend> makeFabricBackend(const SystemConfig &cfg);
std::unique_ptr<ExecBackend> makeFunctionalBackend(const SystemConfig &cfg);
std::unique_ptr<ExecBackend> makeTimingBackend(const SystemConfig &cfg);

namespace {

struct BackendEntry {
    ExecBackendKind kind;
    std::unique_ptr<ExecBackend> (*make)(const SystemConfig &);
};

constexpr std::array<BackendEntry, 3> kBackendRegistry{{
    {ExecBackendKind::Fabric, &makeFabricBackend},
    {ExecBackendKind::Functional, &makeFunctionalBackend},
    {ExecBackendKind::Timing, &makeTimingBackend},
}};

} // namespace

std::unique_ptr<ExecBackend>
makeBackend(ExecBackendKind kind, const SystemConfig &cfg)
{
    for (const BackendEntry &e : kBackendRegistry)
        if (e.kind == kind)
            return e.make(cfg);
    infs_panic("unregistered backend kind %u",
               static_cast<unsigned>(kind));
}

std::optional<BackendJob>
planPrimaryJob(const Workload &w, const SystemConfig &cfg,
               ThreadPool *pool, std::int64_t volume_cap)
{
    // §4.1 layout choice exactly as the executor resolves it: hints from
    // every tensor phase, one primary layout for the region.
    LayoutHints hints;
    bool have_tdfg = false;
    for (const Phase &p : w.phases) {
        if (!p.buildTdfg)
            continue;
        LayoutHints h = LayoutHints::fromGraph(p.buildTdfg(0));
        hints.shiftDims.insert(h.shiftDims.begin(), h.shiftDims.end());
        hints.broadcastDims.insert(h.broadcastDims.begin(),
                                   h.broadcastDims.end());
        if (h.reduceDim)
            hints.reduceDim = h.reduceDim;
        have_tdfg = true;
    }
    if (!have_tdfg)
        return std::nullopt;
    TilingPolicy policy(cfg.l3);
    TileDecision tile = policy.choose(w.primaryShape, w.elemBytes, hints);
    if (!tile.valid)
        return std::nullopt;
    auto made = TiledLayout::make(w.primaryShape, tile.tile);
    if (!made)
        return std::nullopt;
    BackendJob job;
    job.layout = std::move(*made);
    job.volume = 1;
    for (Coord s : job.layout.shape())
        job.volume *= s;
    if (volume_cap > 0 && job.volume > volume_cap)
        return std::nullopt;

    AddressMap map(cfg.l3, cfg.noc.memCtrls);
    JitCompiler jit(cfg);
    jit.setThreadPool(pool);
    for (const Phase &p : w.phases) {
        if (!p.buildTdfg)
            continue;
        TdfgGraph g = p.buildTdfg(0);
        if (!p.latticeShape.empty() || g.dims() != job.layout.dims())
            continue; // Primary-layout phases only.
        auto prog_or = jit.tryLower(g, job.layout, map);
        if (!prog_or)
            continue;
        job.prog = *prog_or;
        return job;
    }
    return std::nullopt;
}

TimingReplayResult
replayTiming(const SystemConfig &cfg, const BackendJob &job,
             ThreadPool *pool)
{
    // Private system models, fault injection off: the replay is a pure
    // function of (program, layout, config), so fabric and timing report
    // the same sim_cycles by construction — and the differential tests
    // certify it stays that way.
    MeshNoc noc(cfg.noc);
    AddressMap map(cfg.l3, cfg.noc.memCtrls);
    EnergyAccount energy;
    TensorController tc(cfg, noc, map, energy, nullptr);
    tc.setThreadPool(pool);
    InMemExecResult r = tc.execute(*job.prog, job.layout, 0);
    TimingReplayResult out;
    out.simCycles = r.cycles;
    out.nocHopBytes = noc.totalHopBytes();
    out.energyJoules = energy.totalJoules();
    return out;
}

unsigned
chooseSchedule(const std::vector<ScheduleCandidate> &candidates,
               const FabricStats &observed)
{
    infs_assert(!candidates.empty(), "no schedule candidates");
    // Imbalance sensitivity: beta = 0.25 means a fully serialized
    // occupancy history (I = 1) penalizes a half-tile-count schedule by
    // 25% of its replayed makespan.
    constexpr double beta = 0.25;
    const double imb = observed.occupancyImbalance();
    std::int64_t max_tiles = 1;
    for (const ScheduleCandidate &c : candidates)
        max_tiles = std::max(max_tiles, c.layout.numTiles());
    unsigned best = 0;
    double best_cost = 0.0;
    for (unsigned i = 0; i < candidates.size(); ++i) {
        const ScheduleCandidate &c = candidates[i];
        const double spread = static_cast<double>(max_tiles) /
                              static_cast<double>(
                                  std::max<std::int64_t>(
                                      c.layout.numTiles(), 1));
        const double cost = static_cast<double>(c.replayCycles) *
                            (1.0 + beta * imb * (spread - 1.0));
        if (i == 0 || cost < best_cost) {
            best = i;
            best_cost = cost;
        }
    }
    return best;
}

} // namespace infs
