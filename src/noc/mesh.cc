#include "noc/mesh.hh"

#include <algorithm>
#include <set>

#include "sim/fault.hh"
#include "sim/logging.hh"

namespace infs {

const char *
trafficClassName(TrafficClass c)
{
    switch (c) {
      case TrafficClass::Control: return "control";
      case TrafficClass::Data: return "data";
      case TrafficClass::Offload: return "offload";
      case TrafficClass::InterTile: return "inter_tile";
    }
    return "?";
}

MeshNoc::MeshNoc(const NocConfig &cfg) : cfg_(cfg)
{
    // Directed links: 4 per node is an overestimate at edges but indexing
    // is simple; nonexistent edge links are simply never charged.
    links_.assign(static_cast<std::size_t>(numNodes()) * 4, 0.0);
}

MeshCoord
MeshNoc::coord(BankId node) const
{
    infs_assert(node < numNodes(), "node %u out of %u", node, numNodes());
    return MeshCoord{node % cfg_.meshX, node / cfg_.meshX};
}

BankId
MeshNoc::node(MeshCoord c) const
{
    infs_assert(c.x < cfg_.meshX && c.y < cfg_.meshY, "coord out of mesh");
    return c.y * cfg_.meshX + c.x;
}

unsigned
MeshNoc::hops(BankId src, BankId dst) const
{
    MeshCoord a = coord(src), b = coord(dst);
    unsigned dx = a.x > b.x ? a.x - b.x : b.x - a.x;
    unsigned dy = a.y > b.y ? a.y - b.y : b.y - a.y;
    return dx + dy;
}

unsigned
MeshNoc::linkIndex(BankId from, BankId to) const
{
    MeshCoord a = coord(from), b = coord(to);
    unsigned dir;
    if (b.x == a.x + 1 && b.y == a.y)
        dir = 0; // east
    else if (a.x == b.x + 1 && b.y == a.y)
        dir = 1; // west
    else if (b.y == a.y + 1 && b.x == a.x)
        dir = 2; // north
    else if (a.y == b.y + 1 && b.x == a.x)
        dir = 3; // south
    else
        infs_panic("nodes %u and %u are not adjacent", from, to);
    return from * 4 + dir;
}

void
MeshNoc::route(BankId src, BankId dst, std::vector<unsigned> &out) const
{
    // X-Y dimension-ordered routing: travel X first, then Y.
    MeshCoord cur = coord(src);
    MeshCoord end = coord(dst);
    while (cur.x != end.x) {
        MeshCoord next = cur;
        next.x += (end.x > cur.x) ? 1 : -1;
        out.push_back(linkIndex(node(cur), node(next)));
        cur = next;
    }
    while (cur.y != end.y) {
        MeshCoord next = cur;
        next.y += (end.y > cur.y) ? 1 : -1;
        out.push_back(linkIndex(node(cur), node(next)));
        cur = next;
    }
}

void
MeshNoc::chargeLink(unsigned link, Bytes bytes)
{
    links_[link] += static_cast<double>(bytes);
}

Tick
MeshNoc::send(BankId src, BankId dst, Bytes bytes, TrafficClass cls)
{
    unsigned h = hops(src, dst);
    hopBytes_[static_cast<unsigned>(cls)] +=
        static_cast<double>(bytes) * h;
    if (h > 0) {
        scratchRoute_.clear();
        route(src, dst, scratchRoute_);
        for (unsigned link : scratchRoute_)
            chargeLink(link, bytes);
    }
    Tick serialization = (bytes + cfg_.linkBytes - 1) / cfg_.linkBytes;
    Tick latency = Tick(h) * (cfg_.routerStages + cfg_.linkLatency) +
                   (serialization > 0 ? serialization - 1 : 0);
    if (fault_ && fault_->sampleNocPacketFault()) {
        // The link CRC catches the dropped/corrupted packet; retransmit,
        // charging the route a second time.
        hopBytes_[static_cast<unsigned>(cls)] +=
            static_cast<double>(bytes) * h;
        for (unsigned link : scratchRoute_)
            chargeLink(link, bytes);
        latency += fault_->recordDetection() + fault_->recordRetry(latency);
    }
    return latency;
}

Tick
MeshNoc::multicast(BankId src, const std::vector<BankId> &dsts, Bytes bytes,
                   TrafficClass cls)
{
    // Union of X-Y routes; each tree link charged once.
    std::set<unsigned> tree;
    unsigned max_hops = 0;
    std::vector<unsigned> r;
    for (BankId dst : dsts) {
        if (dst == src)
            continue;
        r.clear();
        route(src, dst, r);
        tree.insert(r.begin(), r.end());
        max_hops = std::max(max_hops, hops(src, dst));
    }
    hopBytes_[static_cast<unsigned>(cls)] +=
        static_cast<double>(bytes) * tree.size();
    for (unsigned link : tree)
        chargeLink(link, bytes);
    Tick serialization = (bytes + cfg_.linkBytes - 1) / cfg_.linkBytes;
    Tick latency = Tick(max_hops) * (cfg_.routerStages + cfg_.linkLatency) +
                   (serialization > 0 ? serialization - 1 : 0);
    if (fault_ && fault_->sampleNocPacketFault()) {
        // Retransmit down the whole tree (the routers replay multicasts
        // from the source on a CRC failure).
        hopBytes_[static_cast<unsigned>(cls)] +=
            static_cast<double>(bytes) * tree.size();
        for (unsigned link : tree)
            chargeLink(link, bytes);
        latency += fault_->recordDetection() + fault_->recordRetry(latency);
    }
    return latency;
}

void
MeshNoc::accountBulk(double bytes, double avg_hops, TrafficClass cls)
{
    double hop_bytes = bytes * avg_hops;
    if (fault_) {
        // Line-sized packets; faulted ones are retransmitted, so the flow
        // carries that many extra packets' worth of hop-bytes.
        auto packets = static_cast<std::uint64_t>(
            (bytes + double(lineBytes) - 1.0) / double(lineBytes));
        std::uint64_t faulted = fault_->sampleNocBulkFaults(packets);
        for (std::uint64_t i = 0; i < faulted; ++i) {
            fault_->recordDetection();
            fault_->recordRetry();
        }
        hop_bytes += double(faulted) * double(lineBytes) * avg_hops;
    }
    hopBytes_[static_cast<unsigned>(cls)] += hop_bytes;
    // Spread occupancy uniformly over the physical links.
    double per_link = hop_bytes / static_cast<double>(links_.size());
    for (double &l : links_)
        l += per_link;
}

double
MeshNoc::avgHops() const
{
    // Mean Manhattan distance on an X x Y mesh: (X^2-1)/(3X) + (Y^2-1)/(3Y).
    double x = cfg_.meshX, y = cfg_.meshY;
    return (x * x - 1.0) / (3.0 * x) + (y * y - 1.0) / (3.0 * y);
}

double
MeshNoc::hopBytes(TrafficClass cls) const
{
    return hopBytes_[static_cast<unsigned>(cls)];
}

double
MeshNoc::totalHopBytes() const
{
    double t = 0.0;
    for (double v : hopBytes_)
        t += v;
    return t;
}

double
MeshNoc::utilization(Tick elapsed) const
{
    if (elapsed == 0)
        return 0.0;
    double busy_cycles = 0.0;
    for (double b : links_)
        busy_cycles += b / static_cast<double>(cfg_.linkBytes);
    // Count only links that physically exist (interior of the mesh):
    // horizontal: (X-1)*Y per direction, vertical: X*(Y-1) per direction.
    double real_links =
        2.0 * ((cfg_.meshX - 1) * cfg_.meshY + cfg_.meshX * (cfg_.meshY - 1));
    return busy_cycles / (real_links * static_cast<double>(elapsed));
}

void
MeshNoc::resetStats()
{
    hopBytes_.fill(0.0);
    std::fill(links_.begin(), links_.end(), 0.0);
}

} // namespace infs
