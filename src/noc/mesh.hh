/**
 * @file
 * 8x8 mesh network-on-chip model: X-Y dimension-ordered routing, per-link
 * bandwidth and utilization accounting, multicast trees, and traffic
 * categorization matching the paper's Fig. 12/13 breakdown (control / data /
 * offload / inter-tile).
 */

#ifndef INFS_NOC_MESH_HH
#define INFS_NOC_MESH_HH

#include <array>
#include <cstdint>
#include <vector>

#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace infs {

class FaultInjector;

/** Traffic categories for the paper's breakdown figures. */
enum class TrafficClass : std::uint8_t {
    Control,     ///< Coherence control messages.
    Data,        ///< Moving data (request/response payloads).
    Offload,     ///< Managing offloaded computation (streams, sync).
    InterTile,   ///< Inter-tile shifts routed over the NoC (Inf-S only).
};

inline constexpr unsigned numTrafficClasses = 4;

/** Human-readable traffic class name. */
const char *trafficClassName(TrafficClass c);

/** (x, y) position on the mesh. */
struct MeshCoord {
    unsigned x = 0;
    unsigned y = 0;
    bool operator==(const MeshCoord &o) const = default;
};

/**
 * The mesh NoC. Messages are accounted analytically: each message charges
 * bytes x hops to its traffic class and occupies the traversed links for
 * its serialization time, which feeds the utilization statistic.
 */
class MeshNoc
{
  public:
    explicit MeshNoc(const NocConfig &cfg);

    unsigned numNodes() const { return cfg_.meshX * cfg_.meshY; }
    unsigned numLinks() const { return static_cast<unsigned>(links_.size()); }

    MeshCoord coord(BankId node) const;
    BankId node(MeshCoord c) const;

    /** Manhattan hop distance between two nodes. */
    unsigned hops(BankId src, BankId dst) const;

    /**
     * Account a unicast message.
     * @return Latency in ticks for the head to reach dst plus
     * serialization of the payload.
     */
    Tick send(BankId src, BankId dst, Bytes bytes, TrafficClass cls);

    /**
     * Account a multicast along the X-Y tree from @p src to @p dsts.
     * Shared tree links are charged once (the paper's routers support
     * multicast). @return Latency to the farthest destination.
     */
    Tick multicast(BankId src, const std::vector<BankId> &dsts, Bytes bytes,
                   TrafficClass cls);

    /**
     * Account bulk traffic analytically: @p bytes moving an average of
     * @p avg_hops hops. Used for aggregate flows (stream forwarding)
     * where per-message routing is not enumerated; link occupancy is
     * spread uniformly.
     */
    void accountBulk(double bytes, double avg_hops, TrafficClass cls);

    /** Mean hop distance between two uniformly random distinct nodes. */
    double avgHops() const;

    /** Total bytes x hops accounted to a class. */
    double hopBytes(TrafficClass cls) const;

    /** Total bytes x hops across all classes. */
    double totalHopBytes() const;

    /**
     * Average link utilization in [0, 1] over @p elapsed ticks: busy
     * link-cycles / (links x elapsed).
     */
    double utilization(Tick elapsed) const;

    /** Zero all traffic accounting. */
    void resetStats();

    /**
     * Attach a fault injector (nullptr detaches). Injected packet faults
     * are caught by the link-level CRC and retransmitted: the message's
     * links are charged again and the latency grows by the detection and
     * retry penalty, so faulty runs stay functionally correct but slower.
     */
    void attachFaultInjector(FaultInjector *f) { fault_ = f; }

    const NocConfig &config() const { return cfg_; }

  private:
    /** Link index for the hop from node @p from toward adjacent @p to. */
    unsigned linkIndex(BankId from, BankId to) const;

    /** Enumerate the X-Y route src -> dst as a list of link indices. */
    void route(BankId src, BankId dst, std::vector<unsigned> &out) const;

    void chargeLink(unsigned link, Bytes bytes);

    NocConfig cfg_;
    FaultInjector *fault_ = nullptr;
    std::array<double, numTrafficClasses> hopBytes_{};
    // Busy byte-count per directed link (bytes / linkBytes = busy cycles).
    std::vector<double> links_;
    mutable std::vector<unsigned> scratchRoute_;
};

} // namespace infs

#endif // INFS_NOC_MESH_HH
