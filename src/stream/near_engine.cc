#include "stream/near_engine.hh"

#include <algorithm>

namespace infs {

NearExecResult
NearStreamEngine::run(const std::vector<NearStream> &streams, BankId core,
                      unsigned elem_bytes)
{
    NearExecResult res;
    const unsigned banks = cfg_.l3.numBanks;
    const double avg_hops = noc_.avgHops();
    double flops = 0.0;
    Bytes l3_bytes = 0;
    Bytes dram_bytes = 0;
    std::uint64_t flow_msgs = 0;

    // Offload configuration: one message per stream to its first bank.
    for (const NearStream &s : streams) {
        infs_assert(s.pattern.valid(), "invalid near-stream pattern");
        noc_.send(core, core == 0 ? banks - 1 : 0, 32,
                  TrafficClass::Offload);
    }

    for (const NearStream &s : streams) {
        const std::uint64_t elems =
            static_cast<std::uint64_t>(s.pattern.numElements());
        const Bytes bytes = elems * elem_bytes;
        res.elements += elems;
        flops += static_cast<double>(elems) * s.flopsPerElem;

        // Bank-side data movement: streams read/write the banks directly.
        l3_bytes += bytes;
        if (s.isStore)
            l3_.write(0, bytes);
        else
            l3_.read(0, bytes);

        // Non-resident data comes from DRAM.
        Bytes miss_bytes = static_cast<Bytes>(
            static_cast<double>(bytes) * (1.0 - s.l3Residency));
        dram_bytes += miss_bytes;

        if (s.pattern.indirect()) {
            // Irregular gathers/scatters issue per-element remote requests
            // from the SE to the element's home bank: the reuse-blind
            // traffic the paper calls out for kmeans (§8).
            noc_.accountBulk(static_cast<double>(elems) *
                                 (elem_bytes + 8.0),
                             avg_hops, TrafficClass::Data);
            // The index stream itself is affine and stays bank-local.
        } else {
            // Stream migration: a control hand-off each interleave granule
            // (usually to the adjacent bank).
            std::uint64_t migrations =
                bytes / static_cast<Bytes>(cfg_.l3.interleave);
            noc_.accountBulk(static_cast<double>(migrations) * 16.0, 1.0,
                             TrafficClass::Offload);
        }

        // Forwarding to a consumer stream crosses banks (the producing
        // element's home bank vs the consumer element's home bank are
        // generally different under 1 kB interleave).
        if (s.forwardTo >= 0) {
            noc_.accountBulk(static_cast<double>(bytes), avg_hops,
                             TrafficClass::Data);
        }

        // Coarse-grained flow control with the core (§5.1).
        flow_msgs += (bytes / lineBytes) / cfg_.stream.flowControlLines + 1;

        // Reduce streams ship the final value back to the core.
        if (s.isReduce)
            noc_.send(0, core, elem_bytes, TrafficClass::Offload);
    }

    noc_.accountBulk(static_cast<double>(flow_msgs) * 16.0, avg_hops,
                     TrafficClass::Offload);

    // Energy: line-granular bank accesses, per-op SE energy, NoC + DRAM
    // charged by the callers of the noc/dram models at dump time; charge
    // the direct events here.
    // NoC and DRAM energy is charged centrally from the model totals at
    // stats finalization; charge only the engine-local events here.
    energy_.charge(EnergyEvent::L3Access,
                   static_cast<double>(l3_bytes) / lineBytes);
    energy_.charge(EnergyEvent::StreamEngineOp, flops);

    // Timing: concurrent streams are jointly limited by bank bandwidth,
    // SEL3 compute throughput, and DRAM bandwidth.
    double bw_cycles = static_cast<double>(l3_bytes) /
                       (static_cast<double>(cfg_.l3.htreeBandwidth) * banks);
    double compute_cycles =
        flops / (static_cast<double>(cfg_.stream.sel3LanesFp32) * banks);
    double dram_cycles = static_cast<double>(dram_bytes) /
                         cfg_.dram.bytesPerCycle(cfg_.core.ghz);
    if (dram_bytes > 0)
        dram_.transfer(dram_bytes);

    double cycles = std::max({bw_cycles, compute_cycles, dram_cycles});
    res.cycles = static_cast<Tick>(cycles) + cfg_.l3.bankLatency +
                 cfg_.stream.computeInitLatency +
                 static_cast<Tick>(avg_hops *
                                   (cfg_.noc.routerStages +
                                    cfg_.noc.linkLatency));
    res.l3Bytes = l3_bytes;
    res.dramBytes = dram_bytes;
    res.flops = static_cast<std::uint64_t>(flops);
    res.nocHopBytes = noc_.totalHopBytes();
    return res;
}

} // namespace infs
