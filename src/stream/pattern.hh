/**
 * @file
 * Stream access patterns (§3.1, Fig 5): up to three affine dimensions plus
 * an optional dependent one-level indirect access. Patterns address
 * elements of a named array; linearization places dimension 0 innermost.
 */

#ifndef INFS_STREAM_PATTERN_HH
#define INFS_STREAM_PATTERN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace infs {

/** Identifier for an array declared via inf_array. */
using ArrayId = std::int32_t;
inline constexpr ArrayId invalidArray = -1;

/**
 * Affine access pattern: start + sum_k (i_k * stride_k) for
 * i_k in [0, count_k). Up to three dimensions (Fig 5). An optional
 * indirect source turns it into A[B[i]]: the affine part generates
 * indices into @p indirectArray whose values index @p array.
 */
struct AccessPattern {
    ArrayId array = invalidArray;     ///< Target array.
    std::int64_t start = 0;           ///< Start element offset.
    std::vector<std::int64_t> strides; ///< Per-level stride in elements.
    std::vector<std::int64_t> counts;  ///< Per-level trip count.
    ArrayId indirectArray = invalidArray; ///< Index array for A[B[i]].

    bool indirect() const { return indirectArray != invalidArray; }

    /** Total elements accessed. */
    std::int64_t
    numElements() const
    {
        std::int64_t n = 1;
        for (auto c : counts)
            n *= c;
        return counts.empty() ? 0 : n;
    }

    /** Validate: matching ranks, <=3 affine dims, positive counts. */
    bool
    valid() const
    {
        if (array == invalidArray)
            return false;
        if (strides.size() != counts.size())
            return false;
        if (counts.empty() || counts.size() > 3)
            return false;
        for (auto c : counts)
            if (c <= 0)
                return false;
        return true;
    }

    /** Linear 1-D pattern over [start, start+n). */
    static AccessPattern
    linear(ArrayId array, std::int64_t start, std::int64_t n)
    {
        AccessPattern p;
        p.array = array;
        p.start = start;
        p.strides = {1};
        p.counts = {n};
        return p;
    }

    /** Strided 2-D pattern (row-major over a [rows x rowStride] array). */
    static AccessPattern
    affine2(ArrayId array, std::int64_t start, std::int64_t inner_count,
            std::int64_t outer_stride, std::int64_t outer_count)
    {
        AccessPattern p;
        p.array = array;
        p.start = start;
        p.strides = {1, outer_stride};
        p.counts = {inner_count, outer_count};
        return p;
    }

    /** Indirect gather A[B[i]] driven by a linear index stream. */
    static AccessPattern
    gather(ArrayId array, ArrayId index_array, std::int64_t n)
    {
        AccessPattern p = linear(array, 0, n);
        p.indirectArray = index_array;
        return p;
    }
};

} // namespace infs

#endif // INFS_STREAM_PATTERN_HH
