/**
 * @file
 * Near-stream computing model (the NSC baseline, §2.1/§5.1): streams and
 * their computations execute at the L3 stream engines (SEL3), reading and
 * writing banks directly and forwarding operands to consumer streams over
 * the NoC, with coarse-grained flow control back to the core.
 */

#ifndef INFS_STREAM_NEAR_ENGINE_HH
#define INFS_STREAM_NEAR_ENGINE_HH

#include <string>
#include <vector>

#include "energy/energy.hh"
#include "mem/address_map.hh"
#include "mem/dram.hh"
#include "mem/l3_model.hh"
#include "noc/mesh.hh"
#include "sim/config.hh"
#include "stream/pattern.hh"

namespace infs {

/** One stream offloaded near memory. */
struct NearStream {
    AccessPattern pattern;
    bool isStore = false;       ///< Writes results to L3.
    bool isReduce = false;      ///< Produces a scalar for the core.
    unsigned flopsPerElem = 0;  ///< Near-stream computation per element.
    /**
     * Index of the consumer stream this stream forwards its data to
     * (§2.1: "Stream A[i] and B[i] directly forward their data to stream
     * C[i]"), or -1 when consumed locally.
     */
    int forwardTo = -1;
    /** Fraction of elements resident in L3 (rest fetched from DRAM). */
    double l3Residency = 1.0;
};

/** Aggregate result of executing a group of streams near memory. */
struct NearExecResult {
    Tick cycles = 0;
    Bytes l3Bytes = 0;
    Bytes dramBytes = 0;
    double nocHopBytes = 0.0;   ///< For reporting convenience.
    std::uint64_t elements = 0;
    std::uint64_t flops = 0;
};

/**
 * Analytic near-memory execution: accounts bank bandwidth, SEL3 compute
 * throughput, stream migration and forwarding traffic, flow control, and
 * energy. Streams in one group execute concurrently (one kernel phase).
 */
class NearStreamEngine
{
  public:
    NearStreamEngine(const SystemConfig &cfg, MeshNoc &noc, L3Model &l3,
                     DramModel &dram, const AddressMap &map,
                     EnergyAccount &energy)
        : cfg_(cfg), noc_(noc), l3_(l3), dram_(dram), map_(map),
          energy_(energy)
    {
    }

    /**
     * Execute a group of concurrent streams near L3.
     * @param streams The offloaded streams.
     * @param core The core tile that configured the offload (for control
     * traffic).
     * @param elem_bytes Element size (fp32 = 4).
     */
    NearExecResult run(const std::vector<NearStream> &streams, BankId core,
                       unsigned elem_bytes = 4);

  private:
    SystemConfig cfg_;
    MeshNoc &noc_;
    L3Model &l3_;
    DramModel &dram_;
    const AddressMap &map_;
    EnergyAccount &energy_;
};

} // namespace infs

#endif // INFS_STREAM_NEAR_ENGINE_HH
