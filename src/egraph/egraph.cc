#include "egraph/egraph.hh"

#include <algorithm>
#include <sstream>
#include <string>

namespace infs {

bool
ENode::operator==(const ENode &o) const
{
    return kind == o.kind && fn == o.fn && dim == o.dim && dist == o.dist &&
           count == o.count && shrinkLo == o.shrinkLo &&
           shrinkHi == o.shrinkHi && array == o.array &&
           constValue == o.constValue && rect == o.rect &&
           streamTag == o.streamTag && children == o.children;
}

std::size_t
ENodeHash::operator()(const ENode &n) const
{
    auto mix = [](std::size_t h, std::size_t v) {
        return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
    };
    std::size_t h = static_cast<std::size_t>(n.kind);
    h = mix(h, static_cast<std::size_t>(n.fn));
    h = mix(h, n.dim);
    h = mix(h, static_cast<std::size_t>(n.dist));
    h = mix(h, static_cast<std::size_t>(n.count));
    h = mix(h, static_cast<std::size_t>(n.shrinkLo));
    h = mix(h, static_cast<std::size_t>(n.shrinkHi));
    h = mix(h, static_cast<std::size_t>(n.array));
    h = mix(h, std::hash<double>()(n.constValue));
    h = mix(h, static_cast<std::size_t>(n.streamTag));
    for (unsigned d = 0; d < n.rect.dims(); ++d) {
        h = mix(h, static_cast<std::size_t>(n.rect.lo(d)));
        h = mix(h, static_cast<std::size_t>(n.rect.hi(d)));
    }
    for (EClassId c : n.children)
        h = mix(h, c);
    return h;
}

EClassId
EGraph::find(EClassId id) const
{
    infs_assert(id < parent_.size(), "eclass %u out of %zu", id,
                parent_.size());
    while (parent_[id] != id) {
        parent_[id] = parent_[parent_[id]]; // Path halving.
        id = parent_[id];
    }
    return id;
}

ENode
EGraph::canonicalize(const ENode &n) const
{
    ENode c = n;
    for (EClassId &ch : c.children)
        ch = find(ch);
    return c;
}

void
EGraph::domainOf(const ENode &n, HyperRect &out, bool &infinite) const
{
    infinite = false;
    switch (n.kind) {
      case TdfgKind::Tensor:
        out = n.rect;
        return;
      case TdfgKind::ConstVal:
        infinite = true;
        return;
      case TdfgKind::Compute: {
        bool have = false;
        for (EClassId ch : n.children) {
            const EClass &c = eclass(ch);
            if (c.infiniteDomain)
                continue;
            if (!have) {
                out = c.domain;
                have = true;
            } else {
                out = out.intersect(c.domain);
            }
        }
        if (!have)
            infinite = true;
        return;
      }
      case TdfgKind::Move:
        out = eclass(n.children[0]).domain.shifted(n.dim, n.dist);
        return;
      case TdfgKind::Broadcast: {
        const HyperRect &src = eclass(n.children[0]).domain;
        Coord span = src.size(n.dim);
        out = src.withDim(n.dim, src.lo(n.dim) + n.dist,
                          src.lo(n.dim) + n.dist + n.count * span);
        return;
      }
      case TdfgKind::Shrink:
        out = eclass(n.children[0]).domain.withDim(n.dim, n.shrinkLo,
                                                   n.shrinkHi);
        return;
      case TdfgKind::Reduce: {
        const HyperRect &src = eclass(n.children[0]).domain;
        out = src.withDim(n.dim, src.lo(n.dim), src.lo(n.dim) + 1);
        return;
      }
      case TdfgKind::Stream:
        // Stream domains are carried in rect (opaque to rewriting).
        out = n.rect;
        return;
    }
    infs_panic("domainOf: unknown kind");
}

EClassId
EGraph::add(ENode n)
{
    ENode c = canonicalize(n);
    auto it = hashcons_.find(c);
    if (it != hashcons_.end())
        return find(it->second);

    HyperRect dom;
    bool infinite = false;
    domainOf(c, dom, infinite);

    EClassId id = static_cast<EClassId>(classes_.size());
    EClass cls;
    cls.nodes.push_back(c);
    cls.domain = dom;
    cls.infiniteDomain = infinite;
    classes_.push_back(std::move(cls));
    parent_.push_back(id);
    hashcons_.emplace(std::move(c), id);
    return id;
}

Expected<bool>
EGraph::tryMerge(EClassId a, EClassId b)
{
    if (!validId(a) || !validId(b)) {
        return Error{ErrCode::InvalidArgument,
                     "egraph merge(" + std::to_string(a) + ", " +
                         std::to_string(b) + ") beyond the " +
                         std::to_string(parent_.size()) +
                         " allocated classes"};
    }
    return merge(a, b);
}

bool
EGraph::merge(EClassId a, EClassId b)
{
    a = find(a);
    b = find(b);
    if (a == b)
        return true;
    const EClass &ca = classes_[a];
    const EClass &cb = classes_[b];
    // Equivalence requires identical domains (§appendix): reject unsound
    // merges defensively.
    if (ca.infiniteDomain != cb.infiniteDomain)
        return false;
    if (!ca.infiniteDomain && !(ca.domain == cb.domain))
        return false;
    // Union into the smaller id for determinism.
    if (b < a)
        std::swap(a, b);
    parent_[b] = a;
    auto &na = classes_[a].nodes;
    auto &nb = classes_[b].nodes;
    na.insert(na.end(), nb.begin(), nb.end());
    nb.clear();
    dirty_ = true;
    return true;
}

void
EGraph::rebuild()
{
    while (dirty_) {
        dirty_ = false;
        hashcons_.clear();
        for (EClassId id = 0; id < classes_.size(); ++id) {
            if (find(id) != id)
                continue;
            auto &nodes = classes_[id].nodes;
            std::vector<ENode> canon;
            canon.reserve(nodes.size());
            for (const ENode &n : nodes) {
                ENode c = canonicalize(n);
                if (std::find(canon.begin(), canon.end(), c) == canon.end())
                    canon.push_back(std::move(c));
            }
            nodes = std::move(canon);
            for (const ENode &n : nodes) {
                auto [it, inserted] = hashcons_.emplace(n, id);
                if (!inserted && find(it->second) != id) {
                    // Congruence: identical nodes in different classes.
                    merge(it->second, id);
                }
            }
        }
    }
}

std::size_t
EGraph::numClasses() const
{
    std::size_t n = 0;
    for (EClassId id = 0; id < classes_.size(); ++id)
        if (find(id) == id)
            ++n;
    return n;
}

std::size_t
EGraph::numNodes() const
{
    std::size_t n = 0;
    for (EClassId id = 0; id < classes_.size(); ++id)
        if (find(id) == id)
            n += classes_[id].nodes.size();
    return n;
}

const EClass &
EGraph::eclass(EClassId id) const
{
    return classes_[find(id)];
}

std::vector<EClassId>
EGraph::canonicalClasses() const
{
    std::vector<EClassId> out;
    for (EClassId id = 0; id < classes_.size(); ++id)
        if (find(id) == id && !classes_[id].nodes.empty())
            out.push_back(id);
    return out;
}


std::string
EGraph::dump() const
{
    std::ostringstream os;
    for (EClassId id : canonicalClasses()) {
        const EClass &c = classes_[id];
        os << "class " << id;
        if (c.infiniteDomain)
            os << " (inf)";
        else
            os << " " << c.domain.str();
        os << ":\n";
        for (const ENode &n : c.nodes) {
            os << "  " << tdfgKindName(n.kind);
            if (n.kind == TdfgKind::Compute || n.kind == TdfgKind::Reduce)
                os << "/" << bitOpName(n.fn);
            if (n.kind == TdfgKind::Tensor)
                os << " a" << n.array << " " << n.rect.str();
            if (n.kind == TdfgKind::ConstVal)
                os << " " << n.constValue;
            if (n.kind == TdfgKind::Move)
                os << " d" << n.dim << ":" << n.dist;
            if (n.kind == TdfgKind::Shrink)
                os << " d" << n.dim << ":[" << n.shrinkLo << ","
                   << n.shrinkHi << ")";
            for (EClassId ch : n.children)
                os << " %" << find(ch);
            os << "\n";
        }
    }
    return os.str();
}

} // namespace infs

