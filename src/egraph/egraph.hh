/**
 * @file
 * Equality graph (e-graph) for tDFG optimization (§3.2 "Optimizing tDFG"
 * and the appendix). A from-scratch reimplementation of the equality-
 * saturation substrate the paper builds with the egg library: union-find
 * over equivalence classes, hash-consed e-nodes, batched rewriting, and
 * cost-based extraction.
 *
 * Two tDFG nodes are equivalent iff they represent the same result AND
 * share the same lattice domain, so every e-class carries its domain and
 * merges across differing domains are rejected.
 */

#ifndef INFS_EGRAPH_EGRAPH_HH
#define INFS_EGRAPH_EGRAPH_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/expected.hh"
#include "tdfg/graph.hh"

namespace infs {

/** Equivalence class id. */
using EClassId = std::uint32_t;
inline constexpr EClassId invalidEClass = ~EClassId(0);

/**
 * One operator application over e-classes. Parameter fields mirror
 * TdfgNode; children refer to e-classes rather than nodes.
 */
struct ENode {
    TdfgKind kind = TdfgKind::Tensor;
    BitOp fn = BitOp::Add;
    unsigned dim = 0;
    Coord dist = 0;
    Coord count = 0;
    Coord shrinkLo = 0;     ///< Shrink target range.
    Coord shrinkHi = 0;
    ArrayId array = invalidArray;
    double constValue = 0.0;
    HyperRect rect;         ///< Tensor: source rect (identity-relevant).
    /** Original node id for opaque Stream nodes (not rewritten). */
    std::int32_t streamTag = -1;
    std::vector<EClassId> children;

    bool operator==(const ENode &o) const;
};

/** Hash for hash-consing. */
struct ENodeHash {
    std::size_t operator()(const ENode &n) const;
};

/** One equivalence class: its e-nodes and semantic domain. */
struct EClass {
    std::vector<ENode> nodes;
    HyperRect domain;
    bool infiniteDomain = false;
};

/**
 * The e-graph. Nodes are added with canonical children; merge() unions
 * classes and rebuild() restores congruence (hash-consing invariants).
 */
class EGraph
{
  public:
    explicit EGraph(unsigned dims) : dims_(dims) {}

    unsigned dims() const { return dims_; }

    /** Add (or find) an e-node; returns its class. */
    EClassId add(ENode n);

    /** Canonical representative of a class. */
    EClassId find(EClassId id) const;

    /** True when @p id names an allocated class (canonical or not). */
    bool validId(EClassId id) const { return id < parent_.size(); }

    /**
     * Union two classes. Rejected (returns false) when their domains
     * differ — equivalence in the tDFG requires equal domains.
     */
    bool merge(EClassId a, EClassId b);

    /**
     * merge() for untrusted callers: a malformed id becomes a
     * recoverable InvalidArgument diagnostic instead of an abort. The
     * value carries merge()'s domain-compatibility verdict.
     */
    Expected<bool> tryMerge(EClassId a, EClassId b);

    /** Restore congruence closure after a batch of merges. */
    void rebuild();

    /** Number of canonical classes. */
    std::size_t numClasses() const;

    /** Total e-nodes across canonical classes. */
    std::size_t numNodes() const;

    const EClass &eclass(EClassId id) const;

    /** All canonical class ids (stable snapshot). */
    std::vector<EClassId> canonicalClasses() const;

    /** Compute the semantic domain an e-node would produce. */
    void domainOf(const ENode &n, HyperRect &out, bool &infinite) const;

    /** Multi-line dump of every canonical class for debugging. */
    std::string dump() const;

  private:
    ENode canonicalize(const ENode &n) const;

    unsigned dims_;
    mutable std::vector<EClassId> parent_;  // Union-find.
    std::vector<EClass> classes_;
    std::unordered_map<ENode, EClassId, ENodeHash> hashcons_;
    bool dirty_ = false;
};

/**
 * Architecture-informed extraction cost model (appendix: "estimated
 * latency of move vs. compute node, the amount of moved/broadcast data,
 * and the number of computations").
 */
struct ExtractionCost {
    double bitlinesTotal = 4.0 * 1024 * 1024;  ///< PEs available.
    LatencyTable latency;

    /** Cost of one e-node excluding children. */
    double nodeCost(const ENode &n, const EClass &cls) const;
};

/** Result of extraction: a tDFG rebuilt from the cheapest e-nodes. */
struct ExtractionResult {
    TdfgGraph graph;
    double cost = 0.0;
    std::vector<NodeId> rootNodes;  ///< tDFG node per requested root.
};

/**
 * Equality-saturation optimizer implementing the appendix's rewrite rules
 * (Eqs. 3-9 plus tensor expansion and compute reuse).
 */
class TdfgOptimizer
{
  public:
    struct Options {
        unsigned maxIterations = 8;   ///< Saturation rounds budget.
        std::size_t maxNodes = 20000; ///< Early-termination node budget.
        bool enableExpansion = true;  ///< Tensor expansion (Eq. 5).
        bool enableExchange = true;   ///< Compute/move/bc exchange (Eq. 4).
        bool enableAlgebra = true;    ///< Assoc/comm/distrib (Eq. 3).
        /** Re-run the tDFG verifier on every extracted graph, so a bad
         * rewrite surfaces as a diagnostic at the rewrite (DESIGN.md §9). */
        bool verifyExtraction = true;
    };

    TdfgOptimizer() = default;
    explicit TdfgOptimizer(Options opts) : opts_(opts) {}

    /**
     * Optimize @p g: ingest into an e-graph, saturate, extract the
     * cheapest equivalent graph. Outputs are preserved. Extraction
     * failures (cyclic or incomplete selections, an extracted graph that
     * fails verification) are recoverable diagnostics: callers keep the
     * unoptimized graph and move on.
     */
    Expected<ExtractionResult>
    tryOptimize(const TdfgGraph &g,
                const ExtractionCost &cost = ExtractionCost{});

    /** tryOptimize() for callers with no fallback; failures are fatal. */
    ExtractionResult optimize(const TdfgGraph &g,
                              const ExtractionCost &cost = ExtractionCost{});

    /** Number of rewrite matches applied in the last run. */
    unsigned rewritesApplied() const { return rewrites_; }
    /** Number of saturation iterations performed in the last run. */
    unsigned iterationsRun() const { return iterations_; }

  private:
    unsigned applyRules(EGraph &eg);
    unsigned ruleCommutative(EGraph &eg);
    unsigned ruleComputeMoveExchange(EGraph &eg);
    unsigned ruleComputeBroadcastExchange(EGraph &eg);
    unsigned ruleTensorExpansion(EGraph &eg);
    unsigned ruleShrinkThroughCompute(EGraph &eg);
    unsigned ruleShrinkThroughMove(EGraph &eg);
    unsigned ruleShrinkCombine(EGraph &eg);
    unsigned ruleMoveFusion(EGraph &eg);
    unsigned ruleDistributive(EGraph &eg);

    Expected<ExtractionResult> extract(const EGraph &eg,
                                       const std::vector<EClassId> &roots,
                                       const ExtractionCost &cost,
                                       const TdfgGraph &original) const;

    Options opts_{};
    unsigned rewrites_ = 0;
    unsigned iterations_ = 0;
};

} // namespace infs

#endif // INFS_EGRAPH_EGRAPH_HH
