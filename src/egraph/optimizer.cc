/**
 * @file
 * Equality-saturation rules (appendix Eqs. 3-9) and cost-based extraction.
 */

#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>

#include "analysis/verify_tdfg.hh"
#include "egraph/egraph.hh"

namespace infs {

namespace {

bool
isCommutative(BitOp fn)
{
    return fn == BitOp::Add || fn == BitOp::Mul || fn == BitOp::Max ||
           fn == BitOp::Min;
}

/** Find an e-node of @p kind in class @p id; nullptr when absent. */
const ENode *
findKind(const EGraph &eg, EClassId id, TdfgKind kind)
{
    for (const ENode &n : eg.eclass(id).nodes)
        if (n.kind == kind)
            return &n;
    return nullptr;
}

} // namespace

Expected<ExtractionResult>
TdfgOptimizer::tryOptimize(const TdfgGraph &g, const ExtractionCost &cost)
{
    rewrites_ = 0;
    iterations_ = 0;
    EGraph eg(g.dims());

    // Ingest: one e-class per original node (hash-consing may alias).
    std::vector<EClassId> classOf(g.size(), invalidEClass);
    for (NodeId id = 0; id < g.size(); ++id) {
        const TdfgNode &n = g.node(id);
        ENode en;
        en.kind = n.kind;
        en.fn = n.fn;
        en.dim = n.dim;
        en.dist = n.dist;
        en.count = n.count;
        en.array = n.array;
        en.constValue = n.constValue;
        if (n.kind == TdfgKind::Tensor)
            en.rect = n.domain;
        if (n.kind == TdfgKind::Shrink) {
            en.shrinkLo = n.domain.lo(n.dim);
            en.shrinkHi = n.domain.hi(n.dim);
        }
        if (n.kind == TdfgKind::Stream) {
            en.streamTag = static_cast<std::int32_t>(id);
            en.rect = n.domain;
        }
        for (NodeId op : n.operands)
            en.children.push_back(classOf[op]);
        classOf[id] = eg.add(std::move(en));
    }

    // Saturate within budgets ("can be exhaustive or terminated early").
    for (unsigned it = 0; it < opts_.maxIterations; ++it) {
        ++iterations_;
        unsigned applied = applyRules(eg);
        eg.rebuild();
        rewrites_ += applied;
        if (applied == 0 || eg.numNodes() > opts_.maxNodes)
            break;
    }

    if (logVerbosity() >= 3)
        std::fprintf(stderr, "%s", eg.dump().c_str());

    // Roots: every output plus every (side-effecting) stream node.
    std::vector<EClassId> roots;
    std::vector<NodeId> rootOrigins;
    for (const auto &o : g.outputs()) {
        roots.push_back(eg.find(classOf[o.node]));
        rootOrigins.push_back(o.node);
    }
    for (NodeId id = 0; id < g.size(); ++id) {
        if (g.node(id).kind == TdfgKind::Stream) {
            roots.push_back(eg.find(classOf[id]));
            rootOrigins.push_back(id);
        }
    }
    Expected<ExtractionResult> res = extract(eg, roots, cost, g);
    if (!res)
        return res.error();
    // Re-attach outputs.
    for (std::size_t i = 0; i < g.outputs().size(); ++i)
        res->graph.output(res->rootNodes[i], g.outputs()[i].array);
    if (opts_.verifyExtraction) {
        if (auto ok = checkTdfg(res->graph); !ok)
            return ok.error();
    }
    return res;
}

ExtractionResult
TdfgOptimizer::optimize(const TdfgGraph &g, const ExtractionCost &cost)
{
    Expected<ExtractionResult> res = tryOptimize(g, cost);
    if (!res) {
        infs_fatal("tDFG '%s': optimization failed with no fallback: %s",
                   g.name().c_str(), res.error().str().c_str());
    }
    return std::move(*res);
}

unsigned
TdfgOptimizer::applyRules(EGraph &eg)
{
    unsigned n = 0;
    if (opts_.enableAlgebra) {
        n += ruleCommutative(eg);
        n += ruleDistributive(eg);
    }
    if (opts_.enableExchange) {
        n += ruleComputeMoveExchange(eg);
        n += ruleComputeBroadcastExchange(eg);
    }
    if (opts_.enableExpansion)
        n += ruleTensorExpansion(eg);
    n += ruleShrinkThroughCompute(eg);
    n += ruleShrinkThroughMove(eg);
    n += ruleShrinkCombine(eg);
    n += ruleMoveFusion(eg);
    return n;
}

unsigned
TdfgOptimizer::ruleCommutative(EGraph &eg)
{
    // Eq. 3b: C(f, A, B) <=> C(f, B, A).
    unsigned applied = 0;
    for (EClassId c : eg.canonicalClasses()) {
        std::vector<ENode> snapshot = eg.eclass(c).nodes;
        for (const ENode &n : snapshot) {
            if (n.kind != TdfgKind::Compute || n.children.size() != 2 ||
                !isCommutative(n.fn))
                continue;
            ENode sw = n;
            std::swap(sw.children[0], sw.children[1]);
            EClassId sc = eg.add(std::move(sw));
            if (eg.find(sc) != eg.find(c) && eg.merge(c, sc))
                ++applied;
        }
    }
    return applied;
}

unsigned
TdfgOptimizer::ruleDistributive(EGraph &eg)
{
    // Eq. 3c with g = multiply-by-shared-operand:
    // C(+, C(*, A, K), C(*, B, K)) => C(*, C(+, A, B), K).
    unsigned applied = 0;
    for (EClassId c : eg.canonicalClasses()) {
        std::vector<ENode> snapshot = eg.eclass(c).nodes;
        for (const ENode &n : snapshot) {
            if (n.kind != TdfgKind::Compute || n.fn != BitOp::Add ||
                n.children.size() != 2)
                continue;
            const ENode *lm = findKind(eg, n.children[0], TdfgKind::Compute);
            const ENode *rm = findKind(eg, n.children[1], TdfgKind::Compute);
            if (!lm || !rm || lm->fn != BitOp::Mul || rm->fn != BitOp::Mul)
                continue;
            if (lm->children.size() != 2 || rm->children.size() != 2)
                continue;
            // Find the shared factor K.
            for (int li = 0; li < 2; ++li) {
                for (int ri = 0; ri < 2; ++ri) {
                    if (eg.find(lm->children[li]) !=
                        eg.find(rm->children[ri]))
                        continue;
                    ENode sum;
                    sum.kind = TdfgKind::Compute;
                    sum.fn = BitOp::Add;
                    sum.children = {lm->children[1 - li],
                                    rm->children[1 - ri]};
                    EClassId sum_c = eg.add(std::move(sum));
                    ENode mul;
                    mul.kind = TdfgKind::Compute;
                    mul.fn = BitOp::Mul;
                    mul.children = {sum_c, lm->children[li]};
                    EClassId mc = eg.add(std::move(mul));
                    if (eg.find(mc) != eg.find(c) && eg.merge(c, mc))
                        ++applied;
                }
            }
        }
    }
    return applied;
}

unsigned
TdfgOptimizer::ruleComputeMoveExchange(EGraph &eg)
{
    // Eq. 4a: C(f, M(A0,i,d), M(A1,i,d), ...) <=> M(C(f, A0, A1, ...),i,d).
    // Constant operands are translation-invariant and pass through.
    unsigned applied = 0;
    for (EClassId c : eg.canonicalClasses()) {
        std::vector<ENode> snapshot = eg.eclass(c).nodes;
        for (const ENode &n : snapshot) {
            if (n.kind == TdfgKind::Compute) {
                // Hoist: all non-const children contain a Move with the
                // same (dim, dist).
                bool ok = true, found = false;
                unsigned dim = 0;
                Coord dist = 0;
                std::vector<EClassId> inner;
                for (EClassId ch : n.children) {
                    if (eg.eclass(ch).infiniteDomain) {
                        inner.push_back(ch);
                        continue;
                    }
                    const ENode *mv = findKind(eg, ch, TdfgKind::Move);
                    if (!mv) {
                        ok = false;
                        break;
                    }
                    if (!found) {
                        dim = mv->dim;
                        dist = mv->dist;
                        found = true;
                    } else if (mv->dim != dim || mv->dist != dist) {
                        ok = false;
                        break;
                    }
                    inner.push_back(mv->children[0]);
                }
                if (!ok || !found || dist == 0)
                    continue;
                ENode cmp;
                cmp.kind = TdfgKind::Compute;
                cmp.fn = n.fn;
                cmp.children = std::move(inner);
                EClassId cmp_c = eg.add(std::move(cmp));
                ENode mv;
                mv.kind = TdfgKind::Move;
                mv.dim = dim;
                mv.dist = dist;
                mv.children = {cmp_c};
                EClassId mv_c = eg.add(std::move(mv));
                if (eg.find(mv_c) != eg.find(c) && eg.merge(c, mv_c))
                    ++applied;
            } else if (n.kind == TdfgKind::Move) {
                // Sink: M(C(f, A...), i, d) => C(f, M(A,i,d)...).
                const ENode *cm = findKind(eg, n.children[0],
                                           TdfgKind::Compute);
                if (!cm)
                    continue;
                ENode cmp;
                cmp.kind = TdfgKind::Compute;
                cmp.fn = cm->fn;
                for (EClassId ch : cm->children) {
                    if (eg.eclass(ch).infiniteDomain) {
                        cmp.children.push_back(ch);
                        continue;
                    }
                    ENode mv;
                    mv.kind = TdfgKind::Move;
                    mv.dim = n.dim;
                    mv.dist = n.dist;
                    mv.children = {ch};
                    cmp.children.push_back(eg.add(std::move(mv)));
                }
                EClassId cc = eg.add(std::move(cmp));
                if (eg.find(cc) != eg.find(c) && eg.merge(c, cc))
                    ++applied;
            }
        }
    }
    return applied;
}

unsigned
TdfgOptimizer::ruleComputeBroadcastExchange(EGraph &eg)
{
    // Eq. 4b: C(f, B(A,i,dist,cnt)) <=> B(C(f, A),i,dist,cnt) (unary form:
    // other operands must be constants).
    unsigned applied = 0;
    for (EClassId c : eg.canonicalClasses()) {
        std::vector<ENode> snapshot = eg.eclass(c).nodes;
        for (const ENode &n : snapshot) {
            if (n.kind != TdfgKind::Compute)
                continue;
            const ENode *bc = nullptr;
            std::vector<EClassId> inner;
            bool ok = true;
            for (EClassId ch : n.children) {
                if (eg.eclass(ch).infiniteDomain) {
                    inner.push_back(ch);
                    continue;
                }
                if (bc != nullptr) {
                    ok = false; // Only the unary (one tensor) form.
                    break;
                }
                bc = findKind(eg, ch, TdfgKind::Broadcast);
                if (!bc) {
                    ok = false;
                    break;
                }
                inner.push_back(bc->children[0]);
            }
            if (!ok || bc == nullptr)
                continue;
            ENode cmp;
            cmp.kind = TdfgKind::Compute;
            cmp.fn = n.fn;
            cmp.children = std::move(inner);
            EClassId cmp_c = eg.add(std::move(cmp));
            ENode nb;
            nb.kind = TdfgKind::Broadcast;
            nb.dim = bc->dim;
            nb.dist = bc->dist;
            nb.count = bc->count;
            nb.children = {cmp_c};
            EClassId bc_c = eg.add(std::move(nb));
            if (eg.find(bc_c) != eg.find(c) && eg.merge(c, bc_c))
                ++applied;
        }
    }
    return applied;
}

unsigned
TdfgOptimizer::ruleTensorExpansion(EGraph &eg)
{
    // Eq. 5: T(..., p, q, ...) <=> S(i, p, q, T(..., p', q', ...)) for any
    // containing range. We expand pairs of tensors over the same array to
    // their bounding union — exactly the "tensor expansion" transformation
    // of §3.2, which unlocks compute reuse.
    unsigned applied = 0;
    // Collect tensor nodes (array, rect, class).
    struct TensorRef {
        ArrayId array;
        HyperRect rect;
        EClassId cls;
    };
    std::vector<TensorRef> tensors;
    for (EClassId c : eg.canonicalClasses())
        for (const ENode &n : eg.eclass(c).nodes)
            if (n.kind == TdfgKind::Tensor)
                tensors.push_back({n.array, n.rect, c});

    for (std::size_t i = 0; i < tensors.size(); ++i) {
        for (std::size_t j = i + 1; j < tensors.size(); ++j) {
            if (tensors[i].array != tensors[j].array)
                continue;
            if (tensors[i].rect == tensors[j].rect)
                continue;
            HyperRect uni = tensors[i].rect.boundingUnion(tensors[j].rect);
            ENode big;
            big.kind = TdfgKind::Tensor;
            big.array = tensors[i].array;
            big.rect = uni;
            EClassId big_c = eg.add(std::move(big));
            for (const TensorRef *t : {&tensors[i], &tensors[j]}) {
                if (t->rect == uni)
                    continue;
                // Chain shrinks per differing dimension.
                EClassId cur = big_c;
                HyperRect cur_rect = uni;
                for (unsigned d = 0; d < uni.dims(); ++d) {
                    if (t->rect.lo(d) == cur_rect.lo(d) &&
                        t->rect.hi(d) == cur_rect.hi(d))
                        continue;
                    ENode s;
                    s.kind = TdfgKind::Shrink;
                    s.dim = d;
                    s.shrinkLo = t->rect.lo(d);
                    s.shrinkHi = t->rect.hi(d);
                    s.children = {cur};
                    cur = eg.add(std::move(s));
                    cur_rect = cur_rect.withDim(d, t->rect.lo(d),
                                                t->rect.hi(d));
                }
                if (eg.find(cur) != eg.find(t->cls) &&
                    eg.merge(t->cls, cur))
                    ++applied;
            }
        }
    }
    return applied;
}

unsigned
TdfgOptimizer::ruleShrinkThroughCompute(EGraph &eg)
{
    // Eq. 9: C(f, S(i,p,q,A), consts...) => S(i,p,q, C(f, A, consts...)).
    // Multi-tensor form requires every tensor operand to carry the same
    // shrink. A class may hold several shrink nodes (one per expansion
    // pairing), so every candidate of the first tensor operand is tried.
    unsigned applied = 0;
    for (EClassId c : eg.canonicalClasses()) {
        std::vector<ENode> snapshot = eg.eclass(c).nodes;
        for (const ENode &n : snapshot) {
            if (n.kind != TdfgKind::Compute)
                continue;
            // Candidate shrinks of the first non-const child.
            std::vector<ENode> candidates;
            for (EClassId ch : n.children) {
                if (eg.eclass(ch).infiniteDomain)
                    continue;
                for (const ENode &s : eg.eclass(ch).nodes)
                    if (s.kind == TdfgKind::Shrink)
                        candidates.push_back(s);
                break; // Only the first tensor child seeds candidates.
            }
            for (const ENode &cand : candidates) {
                unsigned dim = cand.dim;
                Coord lo = cand.shrinkLo, hi = cand.shrinkHi;
                bool ok = true, first_tensor = true;
                std::vector<EClassId> inner;
                for (EClassId ch : n.children) {
                    if (eg.eclass(ch).infiniteDomain) {
                        inner.push_back(ch);
                        continue;
                    }
                    if (first_tensor) {
                        inner.push_back(cand.children[0]);
                        first_tensor = false;
                        continue;
                    }
                    const ENode *match = nullptr;
                    for (const ENode &s : eg.eclass(ch).nodes) {
                        if (s.kind == TdfgKind::Shrink && s.dim == dim &&
                            s.shrinkLo == lo && s.shrinkHi == hi) {
                            match = &s;
                            break;
                        }
                    }
                    if (!match) {
                        ok = false;
                        break;
                    }
                    inner.push_back(match->children[0]);
                }
                if (!ok)
                    continue;
                ENode cmp;
                cmp.kind = TdfgKind::Compute;
                cmp.fn = n.fn;
                cmp.children = std::move(inner);
                EClassId cmp_c = eg.add(std::move(cmp));
                ENode s;
                s.kind = TdfgKind::Shrink;
                s.dim = dim;
                s.shrinkLo = lo;
                s.shrinkHi = hi;
                s.children = {cmp_c};
                EClassId sc = eg.add(std::move(s));
                if (eg.find(sc) != eg.find(c) && eg.merge(c, sc))
                    ++applied;
            }
        }
    }
    return applied;
}

unsigned
TdfgOptimizer::ruleShrinkThroughMove(EGraph &eg)
{
    // Eq. 7a/7b: M(S(i,p,q,A), j, d) <=> S(i', p', q', M(A, j, d)) where
    // the shrink range shifts by d when i == j.
    unsigned applied = 0;
    for (EClassId c : eg.canonicalClasses()) {
        std::vector<ENode> snapshot = eg.eclass(c).nodes;
        for (const ENode &n : snapshot) {
            if (n.kind != TdfgKind::Move)
                continue;
            const ENode *s = findKind(eg, n.children[0], TdfgKind::Shrink);
            if (!s)
                continue;
            ENode mv;
            mv.kind = TdfgKind::Move;
            mv.dim = n.dim;
            mv.dist = n.dist;
            mv.children = {s->children[0]};
            EClassId mv_c = eg.add(std::move(mv));
            ENode ns;
            ns.kind = TdfgKind::Shrink;
            ns.dim = s->dim;
            ns.shrinkLo = s->shrinkLo + (s->dim == n.dim ? n.dist : 0);
            ns.shrinkHi = s->shrinkHi + (s->dim == n.dim ? n.dist : 0);
            ns.children = {mv_c};
            EClassId sc = eg.add(std::move(ns));
            if (eg.find(sc) != eg.find(c) && eg.merge(c, sc))
                ++applied;
        }
    }
    return applied;
}

unsigned
TdfgOptimizer::ruleShrinkCombine(EGraph &eg)
{
    // Eq. 6b plus elimination: a shrink whose range equals its child's
    // domain is the identity.
    unsigned applied = 0;
    for (EClassId c : eg.canonicalClasses()) {
        std::vector<ENode> snapshot = eg.eclass(c).nodes;
        for (const ENode &n : snapshot) {
            if (n.kind != TdfgKind::Shrink)
                continue;
            const EClass &child = eg.eclass(n.children[0]);
            if (!child.infiniteDomain &&
                child.domain.lo(n.dim) == n.shrinkLo &&
                child.domain.hi(n.dim) == n.shrinkHi) {
                if (eg.merge(c, n.children[0]))
                    ++applied;
                continue;
            }
            const ENode *s = findKind(eg, n.children[0], TdfgKind::Shrink);
            if (s && s->dim == n.dim) {
                ENode ns;
                ns.kind = TdfgKind::Shrink;
                ns.dim = n.dim;
                ns.shrinkLo = std::max(n.shrinkLo, s->shrinkLo);
                ns.shrinkHi = std::min(n.shrinkHi, s->shrinkHi);
                ns.children = {s->children[0]};
                EClassId sc = eg.add(std::move(ns));
                if (eg.find(sc) != eg.find(c) && eg.merge(c, sc))
                    ++applied;
            }
        }
    }
    return applied;
}

unsigned
TdfgOptimizer::ruleMoveFusion(EGraph &eg)
{
    // M(M(A,i,d1),i,d2) => M(A,i,d1+d2); M(A,i,0) => A.
    unsigned applied = 0;
    for (EClassId c : eg.canonicalClasses()) {
        std::vector<ENode> snapshot = eg.eclass(c).nodes;
        for (const ENode &n : snapshot) {
            if (n.kind != TdfgKind::Move)
                continue;
            if (n.dist == 0) {
                if (eg.merge(c, n.children[0]))
                    ++applied;
                continue;
            }
            const ENode *m = findKind(eg, n.children[0], TdfgKind::Move);
            if (m && m->dim == n.dim) {
                Coord total = m->dist + n.dist;
                if (total == 0) {
                    if (eg.merge(c, m->children[0]))
                        ++applied;
                } else {
                    ENode nm;
                    nm.kind = TdfgKind::Move;
                    nm.dim = n.dim;
                    nm.dist = total;
                    nm.children = {m->children[0]};
                    EClassId mc = eg.add(std::move(nm));
                    if (eg.find(mc) != eg.find(c) && eg.merge(c, mc))
                        ++applied;
                }
            }
        }
    }
    return applied;
}

double
ExtractionCost::nodeCost(const ENode &n, const EClass &cls) const
{
    double vol = cls.infiniteDomain
                     ? 1.0
                     : static_cast<double>(std::max<std::int64_t>(
                           cls.domain.volume(), 1));
    double waves = std::ceil(vol / bitlinesTotal);
    switch (n.kind) {
      case TdfgKind::Tensor:
      case TdfgKind::ConstVal:
        return 0.01;
      case TdfgKind::Shrink:
        return 0.01; // Lowered to a nop by the JIT (appendix).
      case TdfgKind::Compute:
        return static_cast<double>(latency.opCycles(n.fn, DType::Fp32)) *
               waves * std::max<double>(1.0, n.children.size() - 1.0);
      case TdfgKind::Move:
        // Intra-array shift latency plus a traffic term growing with the
        // amount of moved data.
        return static_cast<double>(
                   latency.intraShiftCycles(DType::Fp32)) * waves +
               vol / bitlinesTotal;
      case TdfgKind::Broadcast:
        // Broadcast reuses the read data through the H tree: cheap.
        return static_cast<double>(
                   latency.intraShiftCycles(DType::Fp32)) * waves * 0.5;
      case TdfgKind::Reduce: {
        double rounds = 1.0;
        if (!cls.infiniteDomain) {
            // log2 of the reduced extent, at least 1.
            rounds = 1.0;
            (void)rounds;
        }
        return static_cast<double>(latency.opCycles(n.fn, DType::Fp32)) *
               10.0 * waves;
      }
      case TdfgKind::Stream:
        return 1000.0; // Opaque near-memory work.
    }
    return 1.0;
}

namespace {

/** Per-class chosen e-node, produced by one cost fixpoint. */
using Selection = std::unordered_map<EClassId, const ENode *>;

/**
 * Relax class costs to a fixpoint. @p refs optionally amortizes a child's
 * cost across its (candidate) consumers, which lets extraction see sharing
 * (tree-cost extraction double-counts shared subgraphs).
 */
void
relaxCosts(const EGraph &eg, const ExtractionCost &cost,
           const std::unordered_map<EClassId, unsigned> *refs,
           std::unordered_map<EClassId, double> &best, Selection &sel)
{
    const double inf = std::numeric_limits<double>::infinity();
    // Near-ties (within cost_tol) break toward the candidate whose
    // children span larger domains: computes over expanded tensors cost
    // the same cycles on bitline-parallel hardware, and the expanded form
    // is the canonical one that hash-consing shares across shrunk
    // consumers (§3.2 "tensor expansion", appendix Eq. 5).
    const double cost_tol = 0.5;
    auto classes = eg.canonicalClasses();
    std::unordered_map<EClassId, double> vol;
    for (EClassId c : classes) {
        best[c] = inf;
        vol[c] = -inf;
    }
    auto childVolume = [&](const ENode &n) {
        double v = 0.0;
        for (EClassId ch : n.children) {
            const EClass &cc = eg.eclass(ch);
            if (!cc.infiniteDomain)
                v += static_cast<double>(cc.domain.volume());
        }
        return v;
    };
    for (unsigned round = 0; round < 64; ++round) {
        bool changed = false;
        for (EClassId c : classes) {
            for (const ENode &n : eg.eclass(c).nodes) {
                double total = cost.nodeCost(n, eg.eclass(c));
                bool feasible = true;
                for (EClassId ch : n.children) {
                    EClassId cc = eg.find(ch);
                    double bc = best[cc];
                    if (bc == inf) {
                        feasible = false;
                        break;
                    }
                    double share = 1.0;
                    if (refs != nullptr) {
                        auto it = refs->find(cc);
                        if (it != refs->end() && it->second > 1)
                            share = it->second;
                    }
                    total += bc / share;
                }
                if (!feasible)
                    continue;
                double v = childVolume(n);
                bool better = total < best[c] - cost_tol ||
                              (total < best[c] + cost_tol && v > vol[c]);
                if (better) {
                    best[c] = std::min(best[c], total);
                    vol[c] = v;
                    sel[c] = &n;
                    changed = true;
                }
            }
        }
        if (!changed)
            break;
    }
}

/**
 * Build a tDFG from a selection; memoized so shared classes emit once.
 * The amortized selection may contain cycles (its relaxation is only
 * asymptotically convergent); on re-entry we fall back to the tree
 * selection, which positive node costs guarantee to be acyclic.
 */
struct GraphBuilder {
    const EGraph &eg;
    const Selection &sel;
    const Selection &fallback;
    const TdfgGraph &original;
    TdfgGraph &g;
    std::unordered_map<EClassId, NodeId> built;
    std::unordered_map<EClassId, bool> inProgress;
    /** First failure; once set, build() unwinds returning invalidNode. */
    std::optional<Error> err;

    NodeId
    build(EClassId c, bool use_fallback = false)
    {
        if (err)
            return invalidNode;
        c = eg.find(c);
        auto it = built.find(c);
        if (it != built.end())
            return it->second;
        if (inProgress[c]) {
            if (use_fallback) {
                // The tree selection's positive node costs should make
                // it acyclic; a cycle here means the cost fixpoint was
                // corrupted, so reject the extraction rather than abort.
                err = Error{ErrCode::VerifyFailed,
                            "extraction: cycle in acyclic tree selection "
                            "at class " + std::to_string(c)};
                return invalidNode;
            }
            use_fallback = true;
        }
        const Selection &s = use_fallback ? fallback : sel;
        auto si = s.find(c);
        if (si == s.end()) {
            err = Error{ErrCode::VerifyFailed,
                        "extraction: class " + std::to_string(c) +
                            " unreachable in the cost fixpoint"};
            return invalidNode;
        }
        const ENode &n = *si->second;
        inProgress[c] = true;
        std::vector<NodeId> kids;
        for (EClassId ch : n.children)
            kids.push_back(build(ch, use_fallback));
        inProgress[c] = false;
        if (err)
            return invalidNode;
        // A deeper frame may have completed this class via the fallback
        // path; reuse it rather than emitting a duplicate node.
        it = built.find(c);
        if (it != built.end())
            return it->second;
        NodeId id = invalidNode;
        switch (n.kind) {
          case TdfgKind::Tensor:
            id = g.tensor(n.array, n.rect);
            break;
          case TdfgKind::ConstVal:
            id = g.constant(n.constValue);
            break;
          case TdfgKind::Compute:
            id = g.compute(n.fn, kids);
            break;
          case TdfgKind::Move:
            id = g.move(kids[0], n.dim, n.dist);
            break;
          case TdfgKind::Broadcast:
            id = g.broadcast(kids[0], n.dim, n.dist, n.count);
            break;
          case TdfgKind::Shrink:
            id = g.shrink(kids[0], n.dim, n.shrinkLo, n.shrinkHi);
            break;
          case TdfgKind::Reduce:
            id = g.reduce(kids[0], n.fn, n.dim);
            break;
          case TdfgKind::Stream: {
            const TdfgNode &orig = original.node(
                static_cast<NodeId>(n.streamTag));
            id = g.stream(orig.streamRole, orig.pattern,
                          kids.empty() ? invalidNode : kids[0],
                          orig.domain, orig.name, orig.fn);
            break;
          }
        }
        built.emplace(c, id);
        return id;
    }
};

} // namespace

Expected<ExtractionResult>
TdfgOptimizer::extract(const EGraph &eg, const std::vector<EClassId> &roots,
                       const ExtractionCost &cost,
                       const TdfgGraph &original) const
{
    // Phase 1: plain tree-cost fixpoint.
    std::unordered_map<EClassId, double> cost1;
    Selection sel1;
    relaxCosts(eg, cost, nullptr, cost1, sel1);

    // Reference counts over classes reachable from the roots: how many
    // candidate e-nodes consume each class. Classes consumed more than
    // once are sharing opportunities.
    std::unordered_map<EClassId, unsigned> refs;
    {
        std::vector<EClassId> stack;
        std::unordered_map<EClassId, bool> seen;
        for (EClassId r : roots)
            stack.push_back(eg.find(r));
        while (!stack.empty()) {
            EClassId c = stack.back();
            stack.pop_back();
            if (seen[c])
                continue;
            seen[c] = true;
            for (const ENode &n : eg.eclass(c).nodes) {
                for (EClassId ch : n.children) {
                    EClassId cc = eg.find(ch);
                    ++refs[cc];
                    if (!seen[cc])
                        stack.push_back(cc);
                }
            }
        }
    }

    // Phase 2: sharing-amortized fixpoint.
    std::unordered_map<EClassId, double> cost2;
    Selection sel2;
    relaxCosts(eg, cost, &refs, cost2, sel2);

    // Build both candidate graphs and keep the one whose *true* cost (each
    // node charged once) is lower — never worse than tree extraction.
    auto buildGraph = [&](const Selection &sel,
                          ExtractionResult &res) -> std::optional<Error> {
        GraphBuilder b{eg, sel, sel1, original, res.graph, {}, {}, {}};
        for (EClassId r : roots)
            res.rootNodes.push_back(b.build(r));
        if (b.err)
            return b.err;
        res.cost = 0.0;
        for (NodeId id = 0; id < res.graph.size(); ++id) {
            const TdfgNode &n = res.graph.node(id);
            ENode en;
            en.kind = n.kind;
            en.fn = n.fn;
            en.children.resize(n.operands.size());
            EClass pseudo;
            pseudo.domain = n.infiniteDomain ? HyperRect{} : n.domain;
            pseudo.infiniteDomain = n.infiniteDomain;
            res.cost += cost.nodeCost(en, pseudo);
        }
        return std::nullopt;
    };

    ExtractionResult tree{TdfgGraph(eg.dims(), original.name() + ".opt")};
    if (std::optional<Error> e = buildGraph(sel1, tree))
        return *std::move(e); // No tree selection: nothing to extract.
    ExtractionResult shared{TdfgGraph(eg.dims(), original.name() + ".opt")};
    if (std::optional<Error> e = buildGraph(sel2, shared)) {
        // The amortized selection is an optimization attempt on top of
        // the sound tree extraction; losing it costs performance only.
        infs_warn("extract: amortized selection rejected (%s); using tree "
                  "extraction", e->str().c_str());
        return tree;
    }
    if (logVerbosity() >= 2)
        std::fprintf(stderr, "extract: tree=%.2f shared=%.2f\n", tree.cost,
                     shared.cost);
    return shared.cost <= tree.cost ? std::move(shared) : std::move(tree);
}

} // namespace infs
