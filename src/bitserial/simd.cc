#include "bitserial/simd.hh"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <string>

#include "sim/logging.hh"

#if defined(__x86_64__) || defined(__i386__)
#define INFS_SIMD_X86 1
#include <immintrin.h>
#endif
#if defined(__ARM_NEON)
#define INFS_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace infs::simd {

// =====================================================================
// Portable kernels: the same fused word loops PR 4 inlined into BitRow,
// now behind the dispatch table so every ISA shares one call shape.
// =====================================================================

namespace {

void
portRowFullAdder(std::uint64_t *sum, const std::uint64_t *addend,
                 std::uint64_t *carry, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t aw = sum[i];
        const std::uint64_t bw = addend[i];
        const std::uint64_t cw = carry[i];
        const std::uint64_t axb = aw ^ bw;
        sum[i] = axb ^ cw;
        carry[i] = (aw & bw) | (cw & axb);
    }
}

void
portRowMaj(std::uint64_t *dst, const std::uint64_t *a,
           const std::uint64_t *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t aw = a[i], bw = b[i];
        dst[i] = (aw & bw) | (dst[i] & (aw ^ bw));
    }
}

void
portRowSelect(std::uint64_t *dst, const std::uint64_t *a,
              const std::uint64_t *b, const std::uint64_t *pred,
              std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t p = pred[i];
        dst[i] = (a[i] & p) | (b[i] & ~p);
    }
}

void
portRowMergeMasked(std::uint64_t *dst, const std::uint64_t *val,
                   const std::uint64_t *mask, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t m = mask[i];
        dst[i] = (dst[i] & ~m) | (val[i] & m);
    }
}

void
portRowAssignAnd(std::uint64_t *dst, const std::uint64_t *a,
                 const std::uint64_t *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = a[i] & b[i];
}

void
portRowNotAnd(std::uint64_t *dst, const std::uint64_t *a,
              const std::uint64_t *m, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = ~a[i] & m[i];
}

void
portRowAnd(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] &= src[i];
}

void
portRowOr(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] |= src[i];
}

void
portRowXor(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] ^= src[i];
}

/**
 * LSB-first recursive block-swap transpose (Hacker's Delight 7-3 adapted
 * to LSB-first bit order): swaps bit (k|j) of row k with bit k of row
 * (k|j) one power-of-two block at a time.
 */
void
portTranspose32(const std::uint32_t *in, std::uint32_t *out)
{
    std::uint32_t x[32];
    for (unsigned i = 0; i < 32; ++i)
        x[i] = in[i];
    std::uint32_t m = 0x0000FFFFu;
    for (unsigned j = 16; j != 0; j >>= 1, m ^= m << j) {
        for (unsigned k = 0; k < 32; k = (k + j + 1) & ~j) {
            const std::uint32_t t = ((x[k] >> j) ^ x[k | j]) & m;
            x[k] ^= t << j;
            x[k | j] ^= t;
        }
    }
    for (unsigned i = 0; i < 32; ++i)
        out[i] = x[i];
}

inline float
fpApply(FpOp op, float a, float b)
{
    switch (op) {
      case FpOp::Add: return a + b;
      case FpOp::Sub: return a - b;
      case FpOp::Mul: return a * b;
      case FpOp::Div: return a / b;
      case FpOp::Max: return a > b ? a : b;
      case FpOp::Min: return a < b ? a : b;
    }
    return 0.0f;
}

void
portFpLanes(FpOp op, const std::uint32_t *a, const std::uint32_t *b,
            std::uint32_t *r, unsigned n)
{
    for (unsigned i = 0; i < n; ++i)
        r[i] = std::bit_cast<std::uint32_t>(
            fpApply(op, std::bit_cast<float>(a[i]),
                    std::bit_cast<float>(b[i])));
}

std::uint64_t
portFpLtMask(const std::uint32_t *a, const std::uint32_t *b, unsigned n)
{
    std::uint64_t m = 0;
    for (unsigned i = 0; i < n; ++i)
        if (std::bit_cast<float>(a[i]) < std::bit_cast<float>(b[i]))
            m |= 1ULL << i;
    return m;
}

constexpr SimdKernels
makeTable(SimdIsa isa, bool blocked_fp)
{
    SimdKernels k;
    k.isa = isa;
    k.blockedFp = blocked_fp;
    k.rowFullAdder = portRowFullAdder;
    k.rowMaj = portRowMaj;
    k.rowSelect = portRowSelect;
    k.rowMergeMasked = portRowMergeMasked;
    k.rowAssignAnd = portRowAssignAnd;
    k.rowNotAnd = portRowNotAnd;
    k.rowAnd = portRowAnd;
    k.rowOr = portRowOr;
    k.rowXor = portRowXor;
    k.transpose32 = portTranspose32;
    k.fpLanes = portFpLanes;
    k.fpLtMask = portFpLtMask;
    return k;
}

} // namespace

// =====================================================================
// AVX2 kernels. Compiled with a per-function target attribute so the
// translation unit builds without -mavx2 and the binary stays runnable
// on machines without AVX2 (the table is only installed after a cpuid
// check).
// =====================================================================

#ifdef INFS_SIMD_X86

namespace {

#define INFS_AVX2 __attribute__((target("avx2")))

INFS_AVX2 void
avx2RowFullAdder(std::uint64_t *sum, const std::uint64_t *addend,
                 std::uint64_t *carry, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i aw = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(sum + i));
        const __m256i bw = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(addend + i));
        const __m256i cw = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(carry + i));
        const __m256i axb = _mm256_xor_si256(aw, bw);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(sum + i),
                            _mm256_xor_si256(axb, cw));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(carry + i),
            _mm256_or_si256(_mm256_and_si256(aw, bw),
                            _mm256_and_si256(cw, axb)));
    }
    if (i < n)
        portRowFullAdder(sum + i, addend + i, carry + i, n - i);
}

INFS_AVX2 void
avx2RowMaj(std::uint64_t *dst, const std::uint64_t *a,
           const std::uint64_t *b, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i aw = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        const __m256i bw = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i));
        const __m256i dw = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(dst + i));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(dst + i),
            _mm256_or_si256(
                _mm256_and_si256(aw, bw),
                _mm256_and_si256(dw, _mm256_xor_si256(aw, bw))));
    }
    if (i < n)
        portRowMaj(dst + i, a + i, b + i, n - i);
}

INFS_AVX2 void
avx2RowSelect(std::uint64_t *dst, const std::uint64_t *a,
              const std::uint64_t *b, const std::uint64_t *pred,
              std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i av = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        const __m256i bv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i));
        const __m256i pv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(pred + i));
        // (a & p) | (b & ~p) == blend of b/a under p.
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(dst + i),
            _mm256_or_si256(_mm256_and_si256(av, pv),
                            _mm256_andnot_si256(pv, bv)));
    }
    if (i < n)
        portRowSelect(dst + i, a + i, b + i, pred + i, n - i);
}

INFS_AVX2 void
avx2RowMergeMasked(std::uint64_t *dst, const std::uint64_t *val,
                   const std::uint64_t *mask, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i dv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(dst + i));
        const __m256i vv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(val + i));
        const __m256i mv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(mask + i));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(dst + i),
            _mm256_or_si256(_mm256_andnot_si256(mv, dv),
                            _mm256_and_si256(vv, mv)));
    }
    if (i < n)
        portRowMergeMasked(dst + i, val + i, mask + i, n - i);
}

INFS_AVX2 void
avx2RowAssignAnd(std::uint64_t *dst, const std::uint64_t *a,
                 const std::uint64_t *b, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i av = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        const __m256i bv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),
                            _mm256_and_si256(av, bv));
    }
    if (i < n)
        portRowAssignAnd(dst + i, a + i, b + i, n - i);
}

INFS_AVX2 void
avx2RowNotAnd(std::uint64_t *dst, const std::uint64_t *a,
              const std::uint64_t *m, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i av = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        const __m256i mv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(m + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),
                            _mm256_andnot_si256(av, mv));
    }
    if (i < n)
        portRowNotAnd(dst + i, a + i, m + i, n - i);
}

INFS_AVX2 void
avx2RowAnd(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i dv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(dst + i));
        const __m256i sv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),
                            _mm256_and_si256(dv, sv));
    }
    if (i < n)
        portRowAnd(dst + i, src + i, n - i);
}

INFS_AVX2 void
avx2RowOr(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i dv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(dst + i));
        const __m256i sv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),
                            _mm256_or_si256(dv, sv));
    }
    if (i < n)
        portRowOr(dst + i, src + i, n - i);
}

INFS_AVX2 void
avx2RowXor(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i dv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(dst + i));
        const __m256i sv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),
                            _mm256_xor_si256(dv, sv));
    }
    if (i < n)
        portRowXor(dst + i, src + i, n - i);
}

/**
 * movemask-based 32x32 bit transpose: MOVMSKPS extracts the MSB of each
 * of 8 rows at once, so 4 vectors x 32 left-shifts sweep out the whole
 * column space — out[b] bit r = in[r] bit b.
 */
INFS_AVX2 void
avx2Transpose32(const std::uint32_t *in, std::uint32_t *out)
{
    __m256i v0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(in + 0));
    __m256i v1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(in + 8));
    __m256i v2 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(in + 16));
    __m256i v3 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(in + 24));
    for (int b = 31; b >= 0; --b) {
        const std::uint32_t m0 = static_cast<std::uint32_t>(
            _mm256_movemask_ps(_mm256_castsi256_ps(v0)));
        const std::uint32_t m1 = static_cast<std::uint32_t>(
            _mm256_movemask_ps(_mm256_castsi256_ps(v1)));
        const std::uint32_t m2 = static_cast<std::uint32_t>(
            _mm256_movemask_ps(_mm256_castsi256_ps(v2)));
        const std::uint32_t m3 = static_cast<std::uint32_t>(
            _mm256_movemask_ps(_mm256_castsi256_ps(v3)));
        out[b] = m0 | (m1 << 8) | (m2 << 16) | (m3 << 24);
        v0 = _mm256_slli_epi32(v0, 1);
        v1 = _mm256_slli_epi32(v1, 1);
        v2 = _mm256_slli_epi32(v2, 1);
        v3 = _mm256_slli_epi32(v3, 1);
    }
}

/** VMAXPS/VMINPS return the second operand on NaN and on equal-magnitude
 * zeros, exactly matching the scalar `a > b ? a : b` / `a < b ? a : b`
 * reference — so the AVX2 lanes are bit-identical to portable. */
INFS_AVX2 void
avx2FpLanes(FpOp op, const std::uint32_t *a, const std::uint32_t *b,
            std::uint32_t *r, unsigned n)
{
    unsigned i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 av = _mm256_castsi256_ps(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i)));
        const __m256 bv = _mm256_castsi256_ps(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i)));
        __m256 rv;
        switch (op) {
          case FpOp::Add: rv = _mm256_add_ps(av, bv); break;
          case FpOp::Sub: rv = _mm256_sub_ps(av, bv); break;
          case FpOp::Mul: rv = _mm256_mul_ps(av, bv); break;
          case FpOp::Div: rv = _mm256_div_ps(av, bv); break;
          case FpOp::Max: rv = _mm256_max_ps(av, bv); break;
          case FpOp::Min: rv = _mm256_min_ps(av, bv); break;
          default: rv = _mm256_setzero_ps(); break;
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(r + i),
                            _mm256_castps_si256(rv));
    }
    if (i < n)
        portFpLanes(op, a + i, b + i, r + i, n - i);
}

INFS_AVX2 std::uint64_t
avx2FpLtMask(const std::uint32_t *a, const std::uint32_t *b, unsigned n)
{
    std::uint64_t m = 0;
    unsigned i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 av = _mm256_castsi256_ps(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i)));
        const __m256 bv = _mm256_castsi256_ps(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i)));
        const __m256 lt = _mm256_cmp_ps(av, bv, _CMP_LT_OQ);
        m |= static_cast<std::uint64_t>(
                 static_cast<std::uint32_t>(_mm256_movemask_ps(lt)))
             << i;
    }
    if (i < n)
        m |= portFpLtMask(a + i, b + i, n - i) << i;
    return m;
}

#undef INFS_AVX2

SimdKernels
makeAvx2Table()
{
    SimdKernels k = makeTable(SimdIsa::Avx2, true);
    k.rowFullAdder = avx2RowFullAdder;
    k.rowMaj = avx2RowMaj;
    k.rowSelect = avx2RowSelect;
    k.rowMergeMasked = avx2RowMergeMasked;
    k.rowAssignAnd = avx2RowAssignAnd;
    k.rowNotAnd = avx2RowNotAnd;
    k.rowAnd = avx2RowAnd;
    k.rowOr = avx2RowOr;
    k.rowXor = avx2RowXor;
    k.transpose32 = avx2Transpose32;
    k.fpLanes = avx2FpLanes;
    k.fpLtMask = avx2FpLtMask;
    return k;
}

} // namespace

#endif // INFS_SIMD_X86

// =====================================================================
// NEON kernels (AArch64). The bitwise row kernels use 128-bit vectors;
// the fp lanes use explicit compare+select for Max/Min because VMAX/VMIN
// NaN semantics differ from the scalar reference.
// =====================================================================

#ifdef INFS_SIMD_NEON

namespace {

void
neonRowFullAdder(std::uint64_t *sum, const std::uint64_t *addend,
                 std::uint64_t *carry, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const uint64x2_t aw = vld1q_u64(sum + i);
        const uint64x2_t bw = vld1q_u64(addend + i);
        const uint64x2_t cw = vld1q_u64(carry + i);
        const uint64x2_t axb = veorq_u64(aw, bw);
        vst1q_u64(sum + i, veorq_u64(axb, cw));
        vst1q_u64(carry + i,
                  vorrq_u64(vandq_u64(aw, bw), vandq_u64(cw, axb)));
    }
    if (i < n)
        portRowFullAdder(sum + i, addend + i, carry + i, n - i);
}

void
neonRowMaj(std::uint64_t *dst, const std::uint64_t *a,
           const std::uint64_t *b, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const uint64x2_t aw = vld1q_u64(a + i);
        const uint64x2_t bw = vld1q_u64(b + i);
        const uint64x2_t dw = vld1q_u64(dst + i);
        vst1q_u64(dst + i,
                  vorrq_u64(vandq_u64(aw, bw),
                            vandq_u64(dw, veorq_u64(aw, bw))));
    }
    if (i < n)
        portRowMaj(dst + i, a + i, b + i, n - i);
}

void
neonRowSelect(std::uint64_t *dst, const std::uint64_t *a,
              const std::uint64_t *b, const std::uint64_t *pred,
              std::size_t n)
{
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const uint64x2_t av = vld1q_u64(a + i);
        const uint64x2_t bv = vld1q_u64(b + i);
        const uint64x2_t pv = vld1q_u64(pred + i);
        vst1q_u64(dst + i, vbslq_u64(pv, av, bv));
    }
    if (i < n)
        portRowSelect(dst + i, a + i, b + i, pred + i, n - i);
}

void
neonRowMergeMasked(std::uint64_t *dst, const std::uint64_t *val,
                   const std::uint64_t *mask, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const uint64x2_t dv = vld1q_u64(dst + i);
        const uint64x2_t vv = vld1q_u64(val + i);
        const uint64x2_t mv = vld1q_u64(mask + i);
        vst1q_u64(dst + i, vbslq_u64(mv, vv, dv));
    }
    if (i < n)
        portRowMergeMasked(dst + i, val + i, mask + i, n - i);
}

void
neonRowAssignAnd(std::uint64_t *dst, const std::uint64_t *a,
                 const std::uint64_t *b, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2)
        vst1q_u64(dst + i, vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
    if (i < n)
        portRowAssignAnd(dst + i, a + i, b + i, n - i);
}

void
neonRowNotAnd(std::uint64_t *dst, const std::uint64_t *a,
              const std::uint64_t *m, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2)
        vst1q_u64(dst + i,
                  vbicq_u64(vld1q_u64(m + i), vld1q_u64(a + i)));
    if (i < n)
        portRowNotAnd(dst + i, a + i, m + i, n - i);
}

void
neonRowAnd(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2)
        vst1q_u64(dst + i,
                  vandq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
    if (i < n)
        portRowAnd(dst + i, src + i, n - i);
}

void
neonRowOr(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2)
        vst1q_u64(dst + i,
                  vorrq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
    if (i < n)
        portRowOr(dst + i, src + i, n - i);
}

void
neonRowXor(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2)
        vst1q_u64(dst + i,
                  veorq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
    if (i < n)
        portRowXor(dst + i, src + i, n - i);
}

void
neonFpLanes(FpOp op, const std::uint32_t *a, const std::uint32_t *b,
            std::uint32_t *r, unsigned n)
{
    unsigned i = 0;
    for (; i + 4 <= n; i += 4) {
        const float32x4_t av = vreinterpretq_f32_u32(vld1q_u32(a + i));
        const float32x4_t bv = vreinterpretq_f32_u32(vld1q_u32(b + i));
        float32x4_t rv;
        switch (op) {
          case FpOp::Add: rv = vaddq_f32(av, bv); break;
          case FpOp::Sub: rv = vsubq_f32(av, bv); break;
          case FpOp::Mul: rv = vmulq_f32(av, bv); break;
          case FpOp::Div: rv = vdivq_f32(av, bv); break;
          // Explicit compare+select: `a > b ? a : b` bit-exact, unlike
          // vmaxq's NaN handling.
          case FpOp::Max:
            rv = vbslq_f32(vcgtq_f32(av, bv), av, bv);
            break;
          case FpOp::Min:
            rv = vbslq_f32(vcltq_f32(av, bv), av, bv);
            break;
          default: rv = vdupq_n_f32(0.0f); break;
        }
        vst1q_u32(r + i, vreinterpretq_u32_f32(rv));
    }
    if (i < n)
        portFpLanes(op, a + i, b + i, r + i, n - i);
}

SimdKernels
makeNeonTable()
{
    SimdKernels k = makeTable(SimdIsa::Neon, true);
    k.rowFullAdder = neonRowFullAdder;
    k.rowMaj = neonRowMaj;
    k.rowSelect = neonRowSelect;
    k.rowMergeMasked = neonRowMergeMasked;
    k.rowAssignAnd = neonRowAssignAnd;
    k.rowNotAnd = neonRowNotAnd;
    k.rowAnd = neonRowAnd;
    k.rowOr = neonRowOr;
    k.rowXor = neonRowXor;
    k.fpLanes = neonFpLanes;
    return k;
}

} // namespace

#endif // INFS_SIMD_NEON

// =====================================================================
// Dispatch state.
// =====================================================================

namespace {

const SimdKernels kOffTable = makeTable(SimdIsa::Off, false);
const SimdKernels kPortableTable = makeTable(SimdIsa::Portable, true);
#ifdef INFS_SIMD_X86
const SimdKernels kAvx2Table = makeAvx2Table();
#endif
#ifdef INFS_SIMD_NEON
const SimdKernels kNeonTable = makeNeonTable();
#endif

std::atomic<const SimdKernels *> g_active{nullptr};

} // namespace

SimdIsa
detect()
{
#ifdef INFS_SIMD_X86
    if (__builtin_cpu_supports("avx2"))
        return SimdIsa::Avx2;
#endif
#ifdef INFS_SIMD_NEON
    return SimdIsa::Neon;
#endif
    return SimdIsa::Portable;
}

bool
available(SimdIsa isa)
{
    switch (isa) {
      case SimdIsa::Auto:
      case SimdIsa::Off:
      case SimdIsa::Portable:
        return true;
      case SimdIsa::Avx2:
#ifdef INFS_SIMD_X86
        return __builtin_cpu_supports("avx2") != 0;
#else
        return false;
#endif
      case SimdIsa::Neon:
#ifdef INFS_SIMD_NEON
        return true;
#else
        return false;
#endif
    }
    return false;
}

SimdIsa
resolve(SimdIsa requested)
{
    if (requested == SimdIsa::Auto) {
        if (const char *env = std::getenv("INFS_SIMD");
            env != nullptr && *env != '\0') {
            SimdIsa parsed;
            if (parseSimdIsaName(env, parsed)) {
                requested = parsed;
            } else {
                infs_warn("INFS_SIMD=%s: unknown ISA, using detection",
                          env);
            }
        }
    }
    if (requested == SimdIsa::Auto)
        return detect();
    if (!available(requested)) {
        const SimdIsa best = detect();
        infs_warn("SIMD ISA %s unavailable on this host; using %s",
                  simdIsaName(requested), simdIsaName(best));
        return best;
    }
    return requested;
}

const SimdKernels &
kernelsFor(SimdIsa isa)
{
    switch (isa) {
      case SimdIsa::Off:
        return kOffTable;
      case SimdIsa::Avx2:
#ifdef INFS_SIMD_X86
        if (available(SimdIsa::Avx2))
            return kAvx2Table;
#endif
        break;
      case SimdIsa::Neon:
#ifdef INFS_SIMD_NEON
        return kNeonTable;
#else
        break;
#endif
      default:
        break;
    }
    return kPortableTable;
}

void
setActive(SimdIsa isa)
{
    g_active.store(&kernelsFor(resolve(isa)), std::memory_order_release);
}

const SimdKernels &
active()
{
    const SimdKernels *k = g_active.load(std::memory_order_acquire);
    if (k == nullptr) {
        setActive(SimdIsa::Auto);
        k = g_active.load(std::memory_order_acquire);
    }
    return *k;
}

} // namespace infs::simd
