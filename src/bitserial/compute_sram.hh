/**
 * @file
 * One compute-enabled SRAM array (Neural-Cache-style): 256x256 bits with
 * per-bitline bit-serial PEs. Integer add/sub/mul/compare/max execute
 * genuinely bit-serially on the stored bits (one wordline of all bitlines
 * per step); fp32 operations are computed functionally per bitline with
 * cycle costs charged from the LatencyTable (the paper's own methodology:
 * circuits from prior work, architecture modeled).
 */

#ifndef INFS_BITSERIAL_COMPUTE_SRAM_HH
#define INFS_BITSERIAL_COMPUTE_SRAM_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "bitserial/bit_matrix.hh"
#include "bitserial/latency.hh"
#include "sim/types.hh"

namespace infs {

/** Event counts for energy accounting. */
struct SramOpStats {
    std::uint64_t rowReads = 0;    ///< Wordline activations for sensing.
    std::uint64_t rowWrites = 0;   ///< Wordline activations for writing.
    std::uint64_t htreeRowMoves = 0; ///< Rows moved through the H tree.
    std::uint64_t opCount = 0;     ///< Bit-serial compute commands run.

    SramOpStats &
    operator+=(const SramOpStats &o)
    {
        rowReads += o.rowReads;
        rowWrites += o.rowWrites;
        htreeRowMoves += o.htreeRowMoves;
        opCount += o.opCount;
        return *this;
    }
};

/**
 * A compute SRAM array. Operands are identified by their starting wordline;
 * an n-bit element occupies wordlines [wl, wl+n) of one bitline, LSB first.
 * All operations are predicated by a bitline mask (which PEs participate).
 */
class ComputeSram
{
  public:
    ComputeSram(unsigned wordlines, unsigned bitlines)
        : bits_(wordlines, bitlines)
    {
    }

    unsigned wordlines() const { return bits_.wordlines(); }
    unsigned bitlines() const { return bits_.bitlines(); }

    const BitMatrix &bits() const { return bits_; }
    BitMatrix &bits() { return bits_; }

    const SramOpStats &stats() const { return stats_; }
    void resetStats() { stats_ = SramOpStats{}; }

    /** A mask with every bitline selected. */
    BitRow fullMask() const;

    // ------------------------------------------------------------------
    // Element access (used by the transpose unit model and by tests).
    // ------------------------------------------------------------------

    /** Read the raw bits of the element at (bitline, wl). */
    std::uint64_t
    readElement(unsigned bitline, unsigned wl, DType t) const
    {
        return bits_.readElement(bitline, wl, dtypeBits(t));
    }

    /** Write the raw bits of the element at (bitline, wl). */
    void
    writeElement(unsigned bitline, unsigned wl, DType t, std::uint64_t v)
    {
        bits_.writeElement(bitline, wl, dtypeBits(t), v);
    }

    float readFloat(unsigned bitline, unsigned wl) const;
    void writeFloat(unsigned bitline, unsigned wl, float v);

    // ------------------------------------------------------------------
    // Fault-injection support.
    // ------------------------------------------------------------------

    /** Flip one stored bit in place (models a transient SRAM upset). */
    void
    flipBit(unsigned wl, unsigned bitline)
    {
        bits_.set(wl, bitline, !bits_.get(wl, bitline));
    }

    /** Even parity over wordline @p wl (the per-row parity code that
     * detects single-bit upsets). */
    bool
    rowParity(unsigned wl) const
    {
        return (bits_.row(wl).popcount() & 1u) != 0;
    }

    // ------------------------------------------------------------------
    // Bit-serial compute. Each returns the cycle cost from the latency
    // table; the bits in the matrix are updated as the hardware would.
    // ------------------------------------------------------------------

    /**
     * dst = a op b elementwise across masked bitlines.
     * For CmpLt, dst is a single wordline holding the 1-bit result mask.
     * @return Cycle cost of the command.
     */
    Tick execBinary(BitOp op, DType t, unsigned wl_a, unsigned wl_b,
                    unsigned wl_dst, const BitRow &mask);

    /** dst = a op constant (constant broadcast to all masked bitlines). */
    Tick execBinaryImm(BitOp op, DType t, unsigned wl_a, std::uint64_t imm,
                       unsigned wl_dst, const BitRow &mask);

    /** Unary ops: Copy, Relu. */
    Tick execUnary(BitOp op, DType t, unsigned wl_a, unsigned wl_dst,
                   const BitRow &mask);

    /**
     * Predicated select: dst = pred ? a : b, where @p wl_pred names a
     * single wordline holding a 1-bit predicate per bitline.
     */
    Tick execSelect(DType t, unsigned wl_pred, unsigned wl_a, unsigned wl_b,
                    unsigned wl_dst, const BitRow &mask);

    /** Broadcast an immediate value into the masked bitlines at wl_dst. */
    Tick writeImmediate(DType t, std::uint64_t imm, unsigned wl_dst,
                        const BitRow &mask);

    // ------------------------------------------------------------------
    // H-tree data movement within the array.
    // ------------------------------------------------------------------

    /**
     * Shift masked elements horizontally by @p dist bitlines (positive =
     * toward higher bitline index). Elements shifted outside the array are
     * discarded; destination bitlines outside the mask-shift are untouched.
     * @return Cycle cost.
     */
    Tick shift(DType t, unsigned wl_src, unsigned wl_dst, int dist,
               const BitRow &mask);

    /**
     * Broadcast the element of @p src_bitline at wl_src to every masked
     * bitline at wl_dst (the buffered H tree's one-to-many mode).
     * @return Cycle cost.
     */
    Tick broadcast(DType t, unsigned src_bitline, unsigned wl_src,
                   unsigned wl_dst, const BitRow &mask);

    const LatencyTable &latency() const { return lat_; }

    /**
     * Heap allocations performed inside bit-serial kernels since
     * construction. The scratch-row pool makes the per-bit loops
     * allocation-free: after one warm-up call per kernel shape this
     * counter stays flat (asserted by tests/bitserial).
     */
    std::uint64_t scratchAllocs() const { return scratchAllocs_; }

  private:
    Tick intAddSub(bool subtract, DType t, unsigned wl_a, unsigned wl_b,
                   unsigned wl_dst, const BitRow &mask);
    Tick intMul(DType t, unsigned wl_a, unsigned wl_b, unsigned wl_dst,
                const BitRow &mask);
    /** Compute the signed less-than mask row for a < b into @p lt. */
    void lessThanMask(DType t, unsigned wl_a, unsigned wl_b,
                      const BitRow &mask, BitRow &lt);
    Tick fpBinary(BitOp op, unsigned wl_a, unsigned wl_b, unsigned wl_dst,
                  const BitRow &mask);

    /** Read wordline @p wl, counting the activation. */
    const BitRow &senseRow(unsigned wl);
    /** Predicated write of wordline @p wl, counting the activation. */
    void driveRow(unsigned wl, const BitRow &value, const BitRow &mask);

    /**
     * Reusable scratch row @p i (PE latches / sense-amp copies). Grows
     * the pool on first use only — per-bit loops acquire their rows up
     * front, so the loops themselves never allocate. The caller owns the
     * contents (no implicit clear). One ComputeSram is always driven by
     * one thread at a time (the fabric's per-tile fan-out guarantees
     * this), so the pool needs no locking.
     */
    BitRow &scratch(unsigned i);

    /** Visit every set bit of @p mask as a bitline index (word-scan with
     * count-trailing-zeros; the fp32 functional paths iterate only the
     * selected lanes). */
    template <typename Fn>
    void
    forEachSetBit(const BitRow &mask, Fn &&fn) const
    {
        const auto words = mask.words();
        for (std::size_t wi = 0; wi < words.size(); ++wi) {
            std::uint64_t w = words[wi];
            while (w != 0) {
                const unsigned bl = static_cast<unsigned>(wi) * 64 +
                                    std::countr_zero(w);
                fn(bl);
                w &= w - 1;
            }
        }
    }

    BitMatrix bits_;
    LatencyTable lat_;
    SramOpStats stats_;
    std::vector<BitRow> pool_;
    std::uint64_t scratchAllocs_ = 0;
};

} // namespace infs

#endif // INFS_BITSERIAL_COMPUTE_SRAM_HH
