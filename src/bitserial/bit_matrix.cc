#include "bitserial/bit_matrix.hh"

#include <bit>

namespace infs {

void
BitRow::setRange(unsigned lo, unsigned hi)
{
    infs_assert(lo <= hi && hi <= bits_, "range [%u,%u) out of %u", lo, hi,
                bits_);
    for (unsigned i = lo; i < hi; ++i)
        set(i, true);
}

void
BitRow::setStrided(unsigned lo, unsigned stride, unsigned count)
{
    infs_assert(stride > 0, "stride must be positive");
    for (unsigned k = 0; k < count; ++k) {
        unsigned i = lo + k * stride;
        if (i >= bits_)
            break;
        set(i, true);
    }
}

unsigned
BitRow::popcount() const
{
    unsigned n = 0;
    for (auto w : words_)
        n += static_cast<unsigned>(std::popcount(w));
    return n;
}

bool
BitRow::any() const
{
    for (auto w : words_)
        if (w != 0)
            return true;
    return false;
}

BitRow
BitRow::apply(const BitRow &o, OpKind k) const
{
    infs_assert(bits_ == o.bits_, "row width mismatch %u vs %u", bits_,
                o.bits_);
    BitRow r(bits_);
    for (std::size_t i = 0; i < words_.size(); ++i) {
        switch (k) {
          case OpAnd: r.words_[i] = words_[i] & o.words_[i]; break;
          case OpOr: r.words_[i] = words_[i] | o.words_[i]; break;
          case OpXor: r.words_[i] = words_[i] ^ o.words_[i]; break;
        }
    }
    return r;
}

void
BitRow::inplace(const BitRow &o, OpKind k)
{
    infs_assert(bits_ == o.bits_, "row width mismatch %u vs %u", bits_,
                o.bits_);
    for (std::size_t i = 0; i < words_.size(); ++i) {
        switch (k) {
          case OpAnd: words_[i] &= o.words_[i]; break;
          case OpOr: words_[i] |= o.words_[i]; break;
          case OpXor: words_[i] ^= o.words_[i]; break;
        }
    }
}

BitRow
BitRow::operator~() const
{
    BitRow r(bits_);
    for (std::size_t i = 0; i < words_.size(); ++i)
        r.words_[i] = ~words_[i];
    r.maskTail();
    return r;
}

void
BitRow::maskTail()
{
    unsigned rem = bits_ % 64;
    if (rem != 0 && !words_.empty())
        words_.back() &= (1ULL << rem) - 1;
}

BitRow
BitRow::shiftedUp(unsigned n) const
{
    BitRow r(bits_);
    if (n >= bits_)
        return r;
    unsigned word_shift = n / 64;
    unsigned bit_shift = n % 64;
    for (std::size_t i = words_.size(); i-- > 0;) {
        std::uint64_t v = 0;
        if (i >= word_shift) {
            v = words_[i - word_shift] << bit_shift;
            if (bit_shift != 0 && i > word_shift)
                v |= words_[i - word_shift - 1] >> (64 - bit_shift);
        }
        r.words_[i] = v;
    }
    r.maskTail();
    return r;
}

BitRow
BitRow::shiftedDown(unsigned n) const
{
    BitRow r(bits_);
    if (n >= bits_)
        return r;
    unsigned word_shift = n / 64;
    unsigned bit_shift = n % 64;
    for (std::size_t i = 0; i < words_.size(); ++i) {
        std::uint64_t v = 0;
        if (i + word_shift < words_.size()) {
            v = words_[i + word_shift] >> bit_shift;
            if (bit_shift != 0 && i + word_shift + 1 < words_.size())
                v |= words_[i + word_shift + 1] << (64 - bit_shift);
        }
        r.words_[i] = v;
    }
    return r;
}

std::uint64_t
BitMatrix::readElement(unsigned bitline, unsigned wl, unsigned bits) const
{
    infs_assert(bits <= 64, "element too wide: %u", bits);
    infs_assert(wl + bits <= wordlines_, "element [%u,%u) beyond wordlines",
                wl, wl + bits);
    std::uint64_t v = 0;
    for (unsigned i = 0; i < bits; ++i)
        if (row(wl + i).get(bitline))
            v |= 1ULL << i;
    return v;
}

void
BitMatrix::writeElement(unsigned bitline, unsigned wl, unsigned bits,
                        std::uint64_t value)
{
    infs_assert(bits <= 64, "element too wide: %u", bits);
    infs_assert(wl + bits <= wordlines_, "element [%u,%u) beyond wordlines",
                wl, wl + bits);
    for (unsigned i = 0; i < bits; ++i)
        row(wl + i).set(bitline, (value >> i) & 1ULL);
}

} // namespace infs
