#include "bitserial/bit_matrix.hh"

#include <algorithm>
#include <bit>

#include "bitserial/simd.hh"

namespace infs {

void
BitRow::setRange(unsigned lo, unsigned hi)
{
    infs_assert(lo <= hi && hi <= bits_, "range [%u,%u) out of %u", lo, hi,
                bits_);
    if (lo >= hi)
        return;
    // Word-level fill: partial head word, full middle words, partial tail.
    const unsigned w_lo = lo / 64, w_hi = (hi - 1) / 64;
    const std::uint64_t head = ~0ULL << (lo % 64);
    const std::uint64_t tail = ~0ULL >> (63 - (hi - 1) % 64);
    if (w_lo == w_hi) {
        words_[w_lo] |= head & tail;
        return;
    }
    words_[w_lo] |= head;
    for (unsigned w = w_lo + 1; w < w_hi; ++w)
        words_[w] = ~0ULL;
    words_[w_hi] |= tail;
}

void
BitRow::fillRange(unsigned lo, unsigned hi, bool v)
{
    infs_assert(lo <= hi && hi <= bits_, "range [%u,%u) out of %u", lo, hi,
                bits_);
    if (v) {
        setRange(lo, hi);
        return;
    }
    if (lo >= hi)
        return;
    const unsigned w_lo = lo / 64, w_hi = (hi - 1) / 64;
    const std::uint64_t head = ~0ULL << (lo % 64);
    const std::uint64_t tail = ~0ULL >> (63 - (hi - 1) % 64);
    if (w_lo == w_hi) {
        words_[w_lo] &= ~(head & tail);
        return;
    }
    words_[w_lo] &= ~head;
    for (unsigned w = w_lo + 1; w < w_hi; ++w)
        words_[w] = 0;
    words_[w_hi] &= ~tail;
}

void
BitRow::setStrided(unsigned lo, unsigned stride, unsigned count)
{
    infs_assert(stride > 0, "stride must be positive");
    for (unsigned k = 0; k < count; ++k) {
        unsigned i = lo + k * stride;
        if (i >= bits_)
            break;
        set(i, true);
    }
}

unsigned
BitRow::popcount() const
{
    unsigned n = 0;
    for (auto w : words_)
        n += static_cast<unsigned>(std::popcount(w));
    return n;
}

bool
BitRow::any() const
{
    for (auto w : words_)
        if (w != 0)
            return true;
    return false;
}

BitRow
BitRow::apply(const BitRow &o, OpKind k) const
{
    infs_assert(bits_ == o.bits_, "row width mismatch %u vs %u", bits_,
                o.bits_);
    BitRow r(bits_);
    for (std::size_t i = 0; i < words_.size(); ++i) {
        switch (k) {
          case OpAnd: r.words_[i] = words_[i] & o.words_[i]; break;
          case OpOr: r.words_[i] = words_[i] | o.words_[i]; break;
          case OpXor: r.words_[i] = words_[i] ^ o.words_[i]; break;
        }
    }
    return r;
}

void
BitRow::inplace(const BitRow &o, OpKind k)
{
    infs_assert(bits_ == o.bits_, "row width mismatch %u vs %u", bits_,
                o.bits_);
    for (std::size_t i = 0; i < words_.size(); ++i) {
        switch (k) {
          case OpAnd: words_[i] &= o.words_[i]; break;
          case OpOr: words_[i] |= o.words_[i]; break;
          case OpXor: words_[i] ^= o.words_[i]; break;
        }
    }
}

void
BitRow::andInto(const BitRow &o)
{
    infs_assert(bits_ == o.bits_, "row width mismatch %u vs %u", bits_,
                o.bits_);
    simd::active().rowAnd(words_.data(), o.words_.data(), words_.size());
}

void
BitRow::xorInto(const BitRow &o)
{
    infs_assert(bits_ == o.bits_, "row width mismatch %u vs %u", bits_,
                o.bits_);
    simd::active().rowXor(words_.data(), o.words_.data(), words_.size());
}

void
BitRow::orInto(const BitRow &o)
{
    infs_assert(bits_ == o.bits_, "row width mismatch %u vs %u", bits_,
                o.bits_);
    simd::active().rowOr(words_.data(), o.words_.data(), words_.size());
}

void
BitRow::notAndInto(const BitRow &a, const BitRow &m)
{
    infs_assert(bits_ == a.bits_ && bits_ == m.bits_,
                "row width mismatch %u vs %u/%u", bits_, a.bits_, m.bits_);
    simd::active().rowNotAnd(words_.data(), a.words_.data(),
                             m.words_.data(), words_.size());
    maskTail();
}

void
BitRow::assignAnd(const BitRow &a, const BitRow &b)
{
    infs_assert(bits_ == a.bits_ && bits_ == b.bits_,
                "row width mismatch %u vs %u/%u", bits_, a.bits_, b.bits_);
    simd::active().rowAssignAnd(words_.data(), a.words_.data(),
                                b.words_.data(), words_.size());
}

void
BitRow::majInto(const BitRow &a, const BitRow &b)
{
    infs_assert(bits_ == a.bits_ && bits_ == b.bits_,
                "row width mismatch %u vs %u/%u", bits_, a.bits_, b.bits_);
    simd::active().rowMaj(words_.data(), a.words_.data(), b.words_.data(),
                          words_.size());
}

void
BitRow::fullAdderInto(const BitRow &addend, BitRow &carry)
{
    infs_assert(bits_ == addend.bits_ && bits_ == carry.bits_,
                "row width mismatch %u vs %u/%u", bits_, addend.bits_,
                carry.bits_);
    simd::active().rowFullAdder(words_.data(), addend.words_.data(),
                                carry.words_.data(), words_.size());
}

void
BitRow::assignSelect(const BitRow &a, const BitRow &b, const BitRow &pred)
{
    infs_assert(bits_ == a.bits_ && bits_ == b.bits_ &&
                    bits_ == pred.bits_,
                "row width mismatch in select (%u bits)", bits_);
    simd::active().rowSelect(words_.data(), a.words_.data(),
                             b.words_.data(), pred.words_.data(),
                             words_.size());
    maskTail();
}

void
BitRow::copyFrom(const BitRow &src)
{
    infs_assert(bits_ == src.bits_, "row width mismatch %u vs %u", bits_,
                src.bits_);
    for (std::size_t i = 0; i < words_.size(); ++i)
        words_[i] = src.words_[i];
}

void
BitRow::assignShifted(const BitRow &src, int dist)
{
    infs_assert(bits_ == src.bits_, "row width mismatch %u vs %u", bits_,
                src.bits_);
    infs_assert(&src != this, "assignShifted cannot alias");
    const unsigned n =
        static_cast<unsigned>(dist < 0 ? -dist : dist);
    if (n >= bits_) {
        clear();
        return;
    }
    const unsigned word_shift = n / 64;
    const unsigned bit_shift = n % 64;
    if (dist >= 0) {
        for (std::size_t i = words_.size(); i-- > 0;) {
            std::uint64_t v = 0;
            if (i >= word_shift) {
                v = src.words_[i - word_shift] << bit_shift;
                if (bit_shift != 0 && i > word_shift)
                    v |= src.words_[i - word_shift - 1] >> (64 - bit_shift);
            }
            words_[i] = v;
        }
        maskTail();
    } else {
        for (std::size_t i = 0; i < words_.size(); ++i) {
            std::uint64_t v = 0;
            if (i + word_shift < words_.size()) {
                v = src.words_[i + word_shift] >> bit_shift;
                if (bit_shift != 0 && i + word_shift + 1 < words_.size())
                    v |= src.words_[i + word_shift + 1] << (64 - bit_shift);
            }
            words_[i] = v;
        }
    }
}

void
BitRow::extractTo(std::uint64_t *out, unsigned lo, unsigned len) const
{
    infs_assert(lo + len <= bits_, "span [%u,%u) out of %u", lo, lo + len,
                bits_);
    const unsigned out_words = (len + 63) / 64;
    const unsigned w0 = lo / 64;
    const unsigned sh = lo % 64;
    for (unsigned i = 0; i < out_words; ++i) {
        std::uint64_t v = words_[w0 + i] >> sh;
        if (sh != 0 && w0 + i + 1 < words_.size())
            v |= words_[w0 + i + 1] << (64 - sh);
        out[i] = v;
    }
    // Mask the tail of the last word so staged values compare cleanly.
    const unsigned rem = len % 64;
    if (rem != 0)
        out[out_words - 1] &= (1ULL << rem) - 1;
}

void
BitRow::depositFrom(const std::uint64_t *in, unsigned lo, unsigned len)
{
    infs_assert(lo + len <= bits_, "span [%u,%u) out of %u", lo, lo + len,
                bits_);
    // Deposit word-by-word of the input: each input word lands in at most
    // two destination words.
    unsigned done = 0;
    while (done < len) {
        const unsigned chunk = std::min(64u, len - done);
        const std::uint64_t m =
            chunk == 64 ? ~0ULL : ((1ULL << chunk) - 1);
        const std::uint64_t v = in[done / 64] & m;
        const unsigned pos = lo + done;
        const unsigned w = pos / 64;
        const unsigned sh = pos % 64;
        words_[w] = (words_[w] & ~(m << sh)) | (v << sh);
        if (sh != 0 && sh + chunk > 64) {
            const unsigned spill = sh + chunk - 64;
            const std::uint64_t sm = (1ULL << spill) - 1;
            words_[w + 1] =
                (words_[w + 1] & ~sm) | ((v >> (64 - sh)) & sm);
        }
        done += chunk;
    }
}

void
BitRow::mergeMasked(const BitRow &value, const BitRow &mask)
{
    infs_assert(bits_ == value.bits_ && bits_ == mask.bits_,
                "row width mismatch %u vs %u/%u", bits_, value.bits_,
                mask.bits_);
    simd::active().rowMergeMasked(words_.data(), value.words_.data(),
                                  mask.words_.data(), words_.size());
}

BitRow
BitRow::operator~() const
{
    BitRow r(bits_);
    for (std::size_t i = 0; i < words_.size(); ++i)
        r.words_[i] = ~words_[i];
    r.maskTail();
    return r;
}

void
BitRow::maskTail()
{
    unsigned rem = bits_ % 64;
    if (rem != 0 && !words_.empty())
        words_.back() &= (1ULL << rem) - 1;
}

BitRow
BitRow::shiftedUp(unsigned n) const
{
    BitRow r(bits_);
    if (n >= bits_)
        return r;
    unsigned word_shift = n / 64;
    unsigned bit_shift = n % 64;
    for (std::size_t i = words_.size(); i-- > 0;) {
        std::uint64_t v = 0;
        if (i >= word_shift) {
            v = words_[i - word_shift] << bit_shift;
            if (bit_shift != 0 && i > word_shift)
                v |= words_[i - word_shift - 1] >> (64 - bit_shift);
        }
        r.words_[i] = v;
    }
    r.maskTail();
    return r;
}

BitRow
BitRow::shiftedDown(unsigned n) const
{
    BitRow r(bits_);
    if (n >= bits_)
        return r;
    unsigned word_shift = n / 64;
    unsigned bit_shift = n % 64;
    for (std::size_t i = 0; i < words_.size(); ++i) {
        std::uint64_t v = 0;
        if (i + word_shift < words_.size()) {
            v = words_[i + word_shift] >> bit_shift;
            if (bit_shift != 0 && i + word_shift + 1 < words_.size())
                v |= words_[i + word_shift + 1] << (64 - bit_shift);
        }
        r.words_[i] = v;
    }
    return r;
}

std::uint64_t
BitMatrix::readElement(unsigned bitline, unsigned wl, unsigned bits) const
{
    infs_assert(bits <= 64, "element too wide: %u", bits);
    infs_assert(wl + bits <= wordlines_, "element [%u,%u) beyond wordlines",
                wl, wl + bits);
    infs_assert(bitline < bitlines_, "bitline %u out of %u", bitline,
                bitlines_);
    // Word index and shift computed once; one masked word read per bit
    // row (the per-bit get() with its bounds checks is the hot path).
    const unsigned wi = bitline / 64;
    const unsigned sh = bitline % 64;
    std::uint64_t v = 0;
    for (unsigned i = 0; i < bits; ++i)
        v |= ((rows_[wl + i].words()[wi] >> sh) & 1ULL) << i;
    return v;
}

void
BitMatrix::writeElement(unsigned bitline, unsigned wl, unsigned bits,
                        std::uint64_t value)
{
    infs_assert(bits <= 64, "element too wide: %u", bits);
    infs_assert(wl + bits <= wordlines_, "element [%u,%u) beyond wordlines",
                wl, wl + bits);
    infs_assert(bitline < bitlines_, "bitline %u out of %u", bitline,
                bitlines_);
    // Word index and shift computed once; one masked word update per bit
    // row (the readElement fast path, inverted).
    const unsigned wi = bitline / 64;
    const unsigned sh = bitline % 64;
    const std::uint64_t m = 1ULL << sh;
    for (unsigned i = 0; i < bits; ++i) {
        std::uint64_t &w = rows_[wl + i].words_[wi];
        w = (w & ~m) | (((value >> i) & 1ULL) << sh);
    }
}

} // namespace infs
