#include "bitserial/compute_sram.hh"

#include <bit>
#include <cmath>
#include <cstring>

#include "bitserial/simd.hh"

namespace infs {

namespace {

simd::FpOp
toFpOp(BitOp op)
{
    switch (op) {
      case BitOp::Add: return simd::FpOp::Add;
      case BitOp::Sub: return simd::FpOp::Sub;
      case BitOp::Mul: return simd::FpOp::Mul;
      case BitOp::Div: return simd::FpOp::Div;
      case BitOp::Max: return simd::FpOp::Max;
      case BitOp::Min: return simd::FpOp::Min;
      default: infs_panic("fpBinary: unsupported op %s", bitOpName(op));
    }
}

} // namespace

BitRow
ComputeSram::fullMask() const
{
    BitRow m(bitlines());
    m.setRange(0, bitlines());
    return m;
}

float
ComputeSram::readFloat(unsigned bitline, unsigned wl) const
{
    std::uint32_t raw =
        static_cast<std::uint32_t>(bits_.readElement(bitline, wl, 32));
    return std::bit_cast<float>(raw);
}

void
ComputeSram::writeFloat(unsigned bitline, unsigned wl, float v)
{
    bits_.writeElement(bitline, wl, 32, std::bit_cast<std::uint32_t>(v));
}

const BitRow &
ComputeSram::senseRow(unsigned wl)
{
    ++stats_.rowReads;
    return bits_.row(wl);
}

void
ComputeSram::driveRow(unsigned wl, const BitRow &value, const BitRow &mask)
{
    ++stats_.rowWrites;
    bits_.writeMasked(wl, value, mask);
}

BitRow &
ComputeSram::scratch(unsigned i)
{
    while (pool_.size() <= i) {
        pool_.emplace_back(bitlines());
        ++scratchAllocs_;
    }
    return pool_[i];
}

Tick
ComputeSram::intAddSub(bool subtract, DType t, unsigned wl_a, unsigned wl_b,
                       unsigned wl_dst, const BitRow &mask)
{
    const unsigned n = dtypeBits(t);
    // Two's-complement: a - b = a + ~b + 1, so seed the carry with 1 and
    // invert the sensed b bits. Scratch rows acquired up front (a single
    // growth call, so the references below stay valid); the per-bit loop
    // is pure fused word passes over preexisting buffers.
    scratch(2);
    BitRow &carry = scratch(0);
    BitRow &sum = scratch(1);
    BitRow &b = scratch(2);
    carry.clear();
    if (subtract)
        carry.copyFrom(mask);
    for (unsigned i = 0; i < n; ++i) {
        sum.assignAnd(senseRow(wl_a + i), mask);
        if (subtract)
            b.notAndInto(senseRow(wl_b + i), mask);
        else
            b.assignAnd(senseRow(wl_b + i), mask);
        sum.fullAdderInto(b, carry);
        driveRow(wl_dst + i, sum, mask);
    }
    ++stats_.opCount;
    return lat_.opCycles(subtract ? BitOp::Sub : BitOp::Add, t);
}

Tick
ComputeSram::intMul(DType t, unsigned wl_a, unsigned wl_b, unsigned wl_dst,
                    const BitRow &mask)
{
    const unsigned n = dtypeBits(t);
    infs_assert(n <= 64, "int mul width %u too wide", n);
    // Schoolbook shift-and-add producing the low n bits (wraps modulo 2^n,
    // matching C unsigned semantics; two's-complement low bits are the same
    // for signed operands). The accumulator lives in PE latches, modeled
    // here as pooled scratch rows: acc [0,n), a [n,2n), b [2n,3n), then
    // carry and the masked addend.
    scratch(3 * n + 1); // Grow the pool once, before the bit loops.
    BitRow &carry = scratch(3 * n);
    BitRow &addend = scratch(3 * n + 1);
    for (unsigned i = 0; i < n; ++i) {
        scratch(i).clear();
        scratch(n + i).assignAnd(senseRow(wl_a + i), mask);
        scratch(2 * n + i).assignAnd(senseRow(wl_b + i), mask);
        // Account the additional per-step sensing the serial hardware does.
        stats_.rowReads += 1;
    }
    for (unsigned j = 0; j < n; ++j) {
        const BitRow &bj = scratch(2 * n + j);
        if (!bj.any())
            continue;
        carry.clear();
        for (unsigned i = 0; i + j < n; ++i) {
            addend.assignAnd(scratch(n + i), bj);
            scratch(i + j).fullAdderInto(addend, carry);
        }
    }
    for (unsigned i = 0; i < n; ++i)
        driveRow(wl_dst + i, scratch(i), mask);
    ++stats_.opCount;
    return lat_.opCycles(BitOp::Mul, t);
}

void
ComputeSram::lessThanMask(DType t, unsigned wl_a, unsigned wl_b,
                          const BitRow &mask, BitRow &lt)
{
    const unsigned n = dtypeBits(t);
    // Bit-serial subtract a - b tracking the final carry-out and the sign
    // bit of the difference; signed less-than combines them with the
    // operand signs (overflow-aware). Scratch layout: the caller passes
    // @p lt from the pool as well, so no row here is freshly allocated.
    scratch(16);
    BitRow &carry = scratch(10);
    BitRow &a = scratch(11);
    BitRow &b = scratch(12);
    BitRow &diff_sign = scratch(13);
    BitRow &a_sign = scratch(14);
    BitRow &b_sign = scratch(15);
    carry.copyFrom(mask); // Seed with 1 for two's-complement subtract.
    diff_sign.clear();
    a_sign.clear();
    b_sign.clear();
    for (unsigned i = 0; i < n; ++i) {
        a.assignAnd(senseRow(wl_a + i), mask);
        b.notAndInto(senseRow(wl_b + i), mask);
        if (i == n - 1) {
            a_sign.copyFrom(a);
            b_sign.notAndInto(b, mask); // Undo the inversion: sign(b).
        }
        a.fullAdderInto(b, carry); // a now holds the difference bit.
        if (i == n - 1)
            diff_sign.copyFrom(a);
    }
    // lt = (sign(a) != sign(b)) ? sign(a) : sign(diff)
    BitRow &signs_differ = scratch(16);
    signs_differ.copyFrom(a_sign);
    signs_differ.xorInto(b_sign);
    lt.assignSelect(a_sign, diff_sign, signs_differ);
    lt.andInto(mask);
}

Tick
ComputeSram::fpBinary(BitOp op, unsigned wl_a, unsigned wl_b, unsigned wl_dst,
                      const BitRow &mask)
{
    const unsigned n = 32;
    const simd::SimdKernels &k = simd::active();
    if (k.blockedFp) {
        // Blocked bit-plane path (DESIGN.md §14): per 64-bitline word
        // block, gather the 32 bit planes of each operand, transpose them
        // to 64 fp32 lanes, apply one IEEE op per lane, transpose back and
        // scatter under the mask word. Unmasked lanes are computed and
        // discarded (no fp traps with default rounding/exception state),
        // so the result bits match the per-element path exactly.
        const simd::FpOp fop = toFpOp(op);
        const auto mwords = mask.words();
        std::uint64_t aplanes[32], bplanes[32], rplanes[32];
        std::uint32_t alanes[64], blanes[64], rlanes[64];
        for (std::size_t wi = 0; wi < mwords.size(); ++wi) {
            const std::uint64_t mword = mwords[wi];
            if (mword == 0)
                continue;
            for (unsigned b = 0; b < n; ++b) {
                aplanes[b] = bits_.row(wl_a + b).words()[wi];
                bplanes[b] = bits_.row(wl_b + b).words()[wi];
            }
            simd::planesToLanes(k, aplanes, alanes);
            simd::planesToLanes(k, bplanes, blanes);
            k.fpLanes(fop, alanes, blanes, rlanes, 64);
            simd::lanesToPlanes(k, rlanes, rplanes);
            for (unsigned b = 0; b < n; ++b)
                bits_.row(wl_dst + b).mergeWordMasked(
                    static_cast<unsigned>(wi), rplanes[b], mword);
        }
    } else {
        forEachSetBit(mask, [&](unsigned bl) {
            float a = readFloat(bl, wl_a);
            float b = readFloat(bl, wl_b);
            float r = 0.0f;
            switch (op) {
              case BitOp::Add: r = a + b; break;
              case BitOp::Sub: r = a - b; break;
              case BitOp::Mul: r = a * b; break;
              case BitOp::Div: r = a / b; break;
              case BitOp::Max: r = a > b ? a : b; break;
              case BitOp::Min: r = a < b ? a : b; break;
              default:
                infs_panic("fpBinary: unsupported op %s", bitOpName(op));
            }
            writeFloat(bl, wl_dst, r);
        });
    }
    // Charge activations at the bit-serial rate the latency implies —
    // identical for both host paths; the hardware model is unchanged.
    Tick cycles = lat_.opCycles(op, DType::Fp32);
    stats_.rowReads += 2 * n;
    stats_.rowWrites += n;
    ++stats_.opCount;
    return cycles;
}

Tick
ComputeSram::execBinary(BitOp op, DType t, unsigned wl_a, unsigned wl_b,
                        unsigned wl_dst, const BitRow &mask)
{
    const unsigned n = dtypeBits(t);
    infs_assert(wl_a + n <= wordlines() && wl_b + n <= wordlines(),
                "operand wordlines out of range");
    if (t == DType::Fp32) {
        switch (op) {
          case BitOp::Add:
          case BitOp::Sub:
          case BitOp::Mul:
          case BitOp::Div:
          case BitOp::Max:
          case BitOp::Min:
            return fpBinary(op, wl_a, wl_b, wl_dst, mask);
          case BitOp::CmpLt: {
            BitRow &lt = scratch(17);
            lt.clear();
            const simd::SimdKernels &k = simd::active();
            if (k.blockedFp) {
                const auto mwords = mask.words();
                std::uint64_t aplanes[32], bplanes[32];
                std::uint32_t alanes[64], blanes[64];
                for (std::size_t wi = 0; wi < mwords.size(); ++wi) {
                    const std::uint64_t mword = mwords[wi];
                    if (mword == 0)
                        continue;
                    for (unsigned b = 0; b < 32; ++b) {
                        aplanes[b] = bits_.row(wl_a + b).words()[wi];
                        bplanes[b] = bits_.row(wl_b + b).words()[wi];
                    }
                    simd::planesToLanes(k, aplanes, alanes);
                    simd::planesToLanes(k, bplanes, blanes);
                    lt.mergeWordMasked(static_cast<unsigned>(wi),
                                       k.fpLtMask(alanes, blanes, 64),
                                       mword);
                }
            } else {
                forEachSetBit(mask, [&](unsigned bl) {
                    if (readFloat(bl, wl_a) < readFloat(bl, wl_b))
                        lt.set(bl, true);
                });
            }
            driveRow(wl_dst, lt, mask);
            ++stats_.opCount;
            return lat_.opCycles(BitOp::CmpLt, t);
          }
          default:
            break; // Bitwise ops fall through to the integer path.
        }
    }
    switch (op) {
      case BitOp::Add:
        return intAddSub(false, t, wl_a, wl_b, wl_dst, mask);
      case BitOp::Sub:
        return intAddSub(true, t, wl_a, wl_b, wl_dst, mask);
      case BitOp::Mul:
        return intMul(t, wl_a, wl_b, wl_dst, mask);
      case BitOp::CmpLt: {
        BitRow &lt = scratch(17);
        lessThanMask(t, wl_a, wl_b, mask, lt);
        driveRow(wl_dst, lt, mask);
        ++stats_.opCount;
        return lat_.opCycles(BitOp::CmpLt, t);
      }
      case BitOp::Max:
      case BitOp::Min: {
        scratch(19);
        BitRow &lt = scratch(17);
        lessThanMask(t, wl_a, wl_b, mask, lt);
        // Max keeps b where a < b; Min keeps a where a < b.
        BitRow &keep_b = scratch(18);
        if (op == BitOp::Max)
            keep_b.copyFrom(lt);
        else
            keep_b.notAndInto(lt, mask);
        BitRow &r = scratch(19);
        for (unsigned i = 0; i < n; ++i) {
            r.assignSelect(senseRow(wl_b + i), senseRow(wl_a + i), keep_b);
            driveRow(wl_dst + i, r, mask);
        }
        ++stats_.opCount;
        return lat_.opCycles(op, t);
      }
      case BitOp::AndB:
      case BitOp::OrB:
      case BitOp::XorB: {
        BitRow &r = scratch(17);
        for (unsigned i = 0; i < n; ++i) {
            r.copyFrom(senseRow(wl_a + i));
            const BitRow &b = senseRow(wl_b + i);
            if (op == BitOp::AndB)
                r.andInto(b);
            else if (op == BitOp::OrB)
                r.orInto(b);
            else
                r.xorInto(b);
            driveRow(wl_dst + i, r, mask);
        }
        ++stats_.opCount;
        return lat_.opCycles(op, t);
      }
      case BitOp::Div: {
        infs_assert(t == DType::Fp32 || true, "int div modeled functionally");
        forEachSetBit(mask, [&](unsigned bl) {
            auto a = static_cast<std::int64_t>(readElement(bl, wl_a, t));
            auto b = static_cast<std::int64_t>(readElement(bl, wl_b, t));
            std::int64_t r = (b == 0) ? 0 : a / b;
            writeElement(bl, wl_dst, t, static_cast<std::uint64_t>(r));
        });
        ++stats_.opCount;
        return lat_.opCycles(BitOp::Div, t);
      }
      default:
        infs_panic("execBinary: unsupported op %s", bitOpName(op));
    }
}

Tick
ComputeSram::execBinaryImm(BitOp op, DType t, unsigned wl_a,
                           std::uint64_t imm, unsigned wl_dst,
                           const BitRow &mask)
{
    // The hardware broadcasts the constant into a scratch register first
    // (§5.2: "it first broadcasts constant operands (if any) to bitlines").
    // Model with a reserved scratch area at the top wordlines.
    const unsigned n = dtypeBits(t);
    infs_assert(wordlines() >= n, "array too small for scratch");
    unsigned scratch_wl = wordlines() - n;
    Tick cost = writeImmediate(t, imm, scratch_wl, mask);
    cost += execBinary(op, t, wl_a, scratch_wl, wl_dst, mask);
    return cost;
}

Tick
ComputeSram::execUnary(BitOp op, DType t, unsigned wl_a, unsigned wl_dst,
                       const BitRow &mask)
{
    const unsigned n = dtypeBits(t);
    switch (op) {
      case BitOp::Copy: {
        for (unsigned i = 0; i < n; ++i)
            driveRow(wl_dst + i, senseRow(wl_a + i), mask);
        ++stats_.opCount;
        return lat_.opCycles(BitOp::Copy, t);
      }
      case BitOp::Relu: {
        // For both int and fp32, clearing every bit when the sign bit is
        // set yields max(x, 0) (fp32: +0.0). Row-parallel.
        scratch(18);
        BitRow &keep = scratch(17);
        keep.notAndInto(senseRow(wl_a + n - 1), mask);
        BitRow &r = scratch(18);
        for (unsigned i = 0; i < n; ++i) {
            r.assignAnd(senseRow(wl_a + i), keep);
            driveRow(wl_dst + i, r, mask);
        }
        ++stats_.opCount;
        return lat_.opCycles(BitOp::Relu, t);
      }
      default:
        infs_panic("execUnary: unsupported op %s", bitOpName(op));
    }
}

Tick
ComputeSram::execSelect(DType t, unsigned wl_pred, unsigned wl_a,
                        unsigned wl_b, unsigned wl_dst, const BitRow &mask)
{
    const unsigned n = dtypeBits(t);
    scratch(18);
    BitRow &pred = scratch(17);
    pred.assignAnd(senseRow(wl_pred), mask);
    BitRow &r = scratch(18);
    for (unsigned i = 0; i < n; ++i) {
        r.assignSelect(senseRow(wl_a + i), senseRow(wl_b + i), pred);
        driveRow(wl_dst + i, r, mask);
    }
    ++stats_.opCount;
    return lat_.opCycles(BitOp::Select, t);
}

Tick
ComputeSram::writeImmediate(DType t, std::uint64_t imm, unsigned wl_dst,
                            const BitRow &mask)
{
    const unsigned n = dtypeBits(t);
    BitRow &zeros = scratch(17);
    zeros.clear();
    for (unsigned i = 0; i < n; ++i)
        driveRow(wl_dst + i, ((imm >> i) & 1ULL) ? mask : zeros, mask);
    ++stats_.opCount;
    return n; // One write per bit row.
}

Tick
ComputeSram::shift(DType t, unsigned wl_src, unsigned wl_dst, int dist,
                   const BitRow &mask)
{
    const unsigned n = dtypeBits(t);
    scratch(19);
    BitRow &dst_mask = scratch(17);
    dst_mask.assignShifted(mask, dist);
    BitRow &src = scratch(18);
    BitRow &moved = scratch(19);
    for (unsigned i = 0; i < n; ++i) {
        src.assignAnd(senseRow(wl_src + i), mask);
        moved.assignShifted(src, dist);
        driveRow(wl_dst + i, moved, dst_mask);
        ++stats_.htreeRowMoves;
    }
    ++stats_.opCount;
    return lat_.intraShiftCycles(t);
}

Tick
ComputeSram::broadcast(DType t, unsigned src_bitline, unsigned wl_src,
                       unsigned wl_dst, const BitRow &mask)
{
    const unsigned n = dtypeBits(t);
    BitRow &zeros = scratch(17);
    zeros.clear();
    for (unsigned i = 0; i < n; ++i) {
        bool bit = senseRow(wl_src + i).get(src_bitline);
        driveRow(wl_dst + i, bit ? mask : zeros, mask);
        ++stats_.htreeRowMoves;
    }
    ++stats_.opCount;
    return lat_.intraShiftCycles(t);
}

const char *
bitOpName(BitOp op)
{
    switch (op) {
      case BitOp::Add: return "add";
      case BitOp::Sub: return "sub";
      case BitOp::Mul: return "mul";
      case BitOp::Div: return "div";
      case BitOp::Max: return "max";
      case BitOp::Min: return "min";
      case BitOp::CmpLt: return "cmplt";
      case BitOp::Select: return "select";
      case BitOp::Copy: return "copy";
      case BitOp::AndB: return "and";
      case BitOp::OrB: return "or";
      case BitOp::XorB: return "xor";
      case BitOp::Relu: return "relu";
    }
    return "?";
}

} // namespace infs
