#include "bitserial/compute_sram.hh"

#include <bit>
#include <cmath>
#include <cstring>

namespace infs {

BitRow
ComputeSram::fullMask() const
{
    BitRow m(bitlines());
    m.setRange(0, bitlines());
    return m;
}

float
ComputeSram::readFloat(unsigned bitline, unsigned wl) const
{
    std::uint32_t raw =
        static_cast<std::uint32_t>(bits_.readElement(bitline, wl, 32));
    return std::bit_cast<float>(raw);
}

void
ComputeSram::writeFloat(unsigned bitline, unsigned wl, float v)
{
    bits_.writeElement(bitline, wl, 32, std::bit_cast<std::uint32_t>(v));
}

const BitRow &
ComputeSram::senseRow(unsigned wl)
{
    ++stats_.rowReads;
    return bits_.row(wl);
}

void
ComputeSram::driveRow(unsigned wl, const BitRow &value, const BitRow &mask)
{
    ++stats_.rowWrites;
    bits_.writeMasked(wl, value, mask);
}

Tick
ComputeSram::intAddSub(bool subtract, DType t, unsigned wl_a, unsigned wl_b,
                       unsigned wl_dst, const BitRow &mask)
{
    const unsigned n = dtypeBits(t);
    // Two's-complement: a - b = a + ~b + 1, so seed the carry with 1 and
    // invert the sensed b bits.
    BitRow carry(bitlines());
    if (subtract)
        carry = mask;
    for (unsigned i = 0; i < n; ++i) {
        BitRow a = senseRow(wl_a + i) & mask;
        BitRow b = senseRow(wl_b + i) & mask;
        if (subtract)
            b = ~b & mask;
        BitRow axb = a ^ b;
        BitRow sum = axb ^ carry;
        carry = (a & b) | (carry & axb);
        driveRow(wl_dst + i, sum, mask);
    }
    ++stats_.opCount;
    return lat_.opCycles(subtract ? BitOp::Sub : BitOp::Add, t);
}

Tick
ComputeSram::intMul(DType t, unsigned wl_a, unsigned wl_b, unsigned wl_dst,
                    const BitRow &mask)
{
    const unsigned n = dtypeBits(t);
    infs_assert(n <= 64, "int mul width %u too wide", n);
    // Schoolbook shift-and-add producing the low n bits (wraps modulo 2^n,
    // matching C unsigned semantics; two's-complement low bits are the same
    // for signed operands). The accumulator lives in PE latches, modeled
    // here as local rows.
    std::vector<BitRow> acc(n, BitRow(bitlines()));
    // Sense all of a and b once up front (hardware re-senses per step; we
    // charge the activations accordingly).
    std::vector<BitRow> a(n), b(n);
    for (unsigned i = 0; i < n; ++i) {
        a[i] = senseRow(wl_a + i) & mask;
        b[i] = senseRow(wl_b + i) & mask;
        // Account the additional per-step sensing the serial hardware does.
        stats_.rowReads += 1;
    }
    for (unsigned j = 0; j < n; ++j) {
        const BitRow &bj = b[j];
        if (!bj.any())
            continue;
        BitRow carry(bitlines());
        for (unsigned i = 0; i + j < n; ++i) {
            BitRow addend = a[i] & bj;
            BitRow axb = acc[i + j] ^ addend;
            BitRow sum = axb ^ carry;
            carry = (acc[i + j] & addend) | (carry & axb);
            acc[i + j] = sum;
        }
    }
    for (unsigned i = 0; i < n; ++i)
        driveRow(wl_dst + i, acc[i], mask);
    ++stats_.opCount;
    return lat_.opCycles(BitOp::Mul, t);
}

BitRow
ComputeSram::lessThanMask(DType t, unsigned wl_a, unsigned wl_b,
                          const BitRow &mask)
{
    const unsigned n = dtypeBits(t);
    // Bit-serial subtract a - b tracking the final carry-out and the sign
    // bit of the difference; signed less-than combines them with the
    // operand signs (overflow-aware).
    BitRow carry = mask; // Seed with 1 for two's-complement subtract.
    BitRow diff_sign(bitlines());
    BitRow a_sign(bitlines()), b_sign(bitlines());
    for (unsigned i = 0; i < n; ++i) {
        BitRow a = senseRow(wl_a + i) & mask;
        BitRow b = ~(senseRow(wl_b + i)) & mask;
        BitRow axb = a ^ b;
        BitRow sum = axb ^ carry;
        carry = (a & b) | (carry & axb);
        if (i == n - 1) {
            diff_sign = sum;
            a_sign = a;
            b_sign = ~b & mask; // Undo the inversion to recover sign(b).
        }
    }
    // lt = (sign(a) != sign(b)) ? sign(a) : sign(diff)
    BitRow signs_differ = a_sign ^ b_sign;
    return ((signs_differ & a_sign) | (~signs_differ & diff_sign)) & mask;
}

Tick
ComputeSram::fpBinary(BitOp op, unsigned wl_a, unsigned wl_b, unsigned wl_dst,
                      const BitRow &mask)
{
    const unsigned n = 32;
    for (unsigned bl = 0; bl < bitlines(); ++bl) {
        if (!mask.get(bl))
            continue;
        float a = readFloat(bl, wl_a);
        float b = readFloat(bl, wl_b);
        float r = 0.0f;
        switch (op) {
          case BitOp::Add: r = a + b; break;
          case BitOp::Sub: r = a - b; break;
          case BitOp::Mul: r = a * b; break;
          case BitOp::Div: r = a / b; break;
          case BitOp::Max: r = a > b ? a : b; break;
          case BitOp::Min: r = a < b ? a : b; break;
          default: infs_panic("fpBinary: unsupported op %s", bitOpName(op));
        }
        writeFloat(bl, wl_dst, r);
    }
    // Charge activations at the bit-serial rate the latency implies.
    Tick cycles = lat_.opCycles(op, DType::Fp32);
    stats_.rowReads += 2 * n;
    stats_.rowWrites += n;
    ++stats_.opCount;
    return cycles;
}

Tick
ComputeSram::execBinary(BitOp op, DType t, unsigned wl_a, unsigned wl_b,
                        unsigned wl_dst, const BitRow &mask)
{
    const unsigned n = dtypeBits(t);
    infs_assert(wl_a + n <= wordlines() && wl_b + n <= wordlines(),
                "operand wordlines out of range");
    if (t == DType::Fp32) {
        switch (op) {
          case BitOp::Add:
          case BitOp::Sub:
          case BitOp::Mul:
          case BitOp::Div:
          case BitOp::Max:
          case BitOp::Min:
            return fpBinary(op, wl_a, wl_b, wl_dst, mask);
          case BitOp::CmpLt: {
            BitRow lt(bitlines());
            for (unsigned bl = 0; bl < bitlines(); ++bl) {
                if (!mask.get(bl))
                    continue;
                lt.set(bl, readFloat(bl, wl_a) < readFloat(bl, wl_b));
            }
            driveRow(wl_dst, lt, mask);
            ++stats_.opCount;
            return lat_.opCycles(BitOp::CmpLt, t);
          }
          default:
            break; // Bitwise ops fall through to the integer path.
        }
    }
    switch (op) {
      case BitOp::Add:
        return intAddSub(false, t, wl_a, wl_b, wl_dst, mask);
      case BitOp::Sub:
        return intAddSub(true, t, wl_a, wl_b, wl_dst, mask);
      case BitOp::Mul:
        return intMul(t, wl_a, wl_b, wl_dst, mask);
      case BitOp::CmpLt: {
        BitRow lt = lessThanMask(t, wl_a, wl_b, mask);
        driveRow(wl_dst, lt, mask);
        ++stats_.opCount;
        return lat_.opCycles(BitOp::CmpLt, t);
      }
      case BitOp::Max:
      case BitOp::Min: {
        BitRow lt = lessThanMask(t, wl_a, wl_b, mask);
        // Max keeps b where a < b; Min keeps a where a < b.
        BitRow keep_b = (op == BitOp::Max) ? lt : (~lt & mask);
        for (unsigned i = 0; i < n; ++i) {
            BitRow a = senseRow(wl_a + i);
            BitRow b = senseRow(wl_b + i);
            driveRow(wl_dst + i, (b & keep_b) | (a & ~keep_b), mask);
        }
        ++stats_.opCount;
        return lat_.opCycles(op, t);
      }
      case BitOp::AndB:
      case BitOp::OrB:
      case BitOp::XorB: {
        for (unsigned i = 0; i < n; ++i) {
            BitRow a = senseRow(wl_a + i);
            BitRow b = senseRow(wl_b + i);
            BitRow r = op == BitOp::AndB ? (a & b)
                     : op == BitOp::OrB ? (a | b)
                                        : (a ^ b);
            driveRow(wl_dst + i, r, mask);
        }
        ++stats_.opCount;
        return lat_.opCycles(op, t);
      }
      case BitOp::Div: {
        infs_assert(t == DType::Fp32 || true, "int div modeled functionally");
        for (unsigned bl = 0; bl < bitlines(); ++bl) {
            if (!mask.get(bl))
                continue;
            auto a = static_cast<std::int64_t>(readElement(bl, wl_a, t));
            auto b = static_cast<std::int64_t>(readElement(bl, wl_b, t));
            std::int64_t r = (b == 0) ? 0 : a / b;
            writeElement(bl, wl_dst, t, static_cast<std::uint64_t>(r));
        }
        ++stats_.opCount;
        return lat_.opCycles(BitOp::Div, t);
      }
      default:
        infs_panic("execBinary: unsupported op %s", bitOpName(op));
    }
}

Tick
ComputeSram::execBinaryImm(BitOp op, DType t, unsigned wl_a,
                           std::uint64_t imm, unsigned wl_dst,
                           const BitRow &mask)
{
    // The hardware broadcasts the constant into a scratch register first
    // (§5.2: "it first broadcasts constant operands (if any) to bitlines").
    // Model with a reserved scratch area at the top wordlines.
    const unsigned n = dtypeBits(t);
    infs_assert(wordlines() >= n, "array too small for scratch");
    unsigned scratch = wordlines() - n;
    Tick cost = writeImmediate(t, imm, scratch, mask);
    cost += execBinary(op, t, wl_a, scratch, wl_dst, mask);
    return cost;
}

Tick
ComputeSram::execUnary(BitOp op, DType t, unsigned wl_a, unsigned wl_dst,
                       const BitRow &mask)
{
    const unsigned n = dtypeBits(t);
    switch (op) {
      case BitOp::Copy: {
        for (unsigned i = 0; i < n; ++i)
            driveRow(wl_dst + i, senseRow(wl_a + i), mask);
        ++stats_.opCount;
        return lat_.opCycles(BitOp::Copy, t);
      }
      case BitOp::Relu: {
        // For both int and fp32, clearing every bit when the sign bit is
        // set yields max(x, 0) (fp32: +0.0). Row-parallel.
        BitRow sign = senseRow(wl_a + n - 1) & mask;
        BitRow keep = ~sign;
        for (unsigned i = 0; i < n; ++i)
            driveRow(wl_dst + i, senseRow(wl_a + i) & keep, mask);
        ++stats_.opCount;
        return lat_.opCycles(BitOp::Relu, t);
      }
      default:
        infs_panic("execUnary: unsupported op %s", bitOpName(op));
    }
}

Tick
ComputeSram::execSelect(DType t, unsigned wl_pred, unsigned wl_a,
                        unsigned wl_b, unsigned wl_dst, const BitRow &mask)
{
    const unsigned n = dtypeBits(t);
    BitRow pred = senseRow(wl_pred) & mask;
    for (unsigned i = 0; i < n; ++i) {
        BitRow a = senseRow(wl_a + i);
        BitRow b = senseRow(wl_b + i);
        driveRow(wl_dst + i, (a & pred) | (b & ~pred), mask);
    }
    ++stats_.opCount;
    return lat_.opCycles(BitOp::Select, t);
}

Tick
ComputeSram::writeImmediate(DType t, std::uint64_t imm, unsigned wl_dst,
                            const BitRow &mask)
{
    const unsigned n = dtypeBits(t);
    BitRow ones = mask;
    BitRow zeros(bitlines());
    for (unsigned i = 0; i < n; ++i)
        driveRow(wl_dst + i, ((imm >> i) & 1ULL) ? ones : zeros, mask);
    ++stats_.opCount;
    return n; // One write per bit row.
}

Tick
ComputeSram::shift(DType t, unsigned wl_src, unsigned wl_dst, int dist,
                   const BitRow &mask)
{
    const unsigned n = dtypeBits(t);
    const unsigned d = static_cast<unsigned>(dist < 0 ? -dist : dist);
    BitRow dst_mask =
        dist >= 0 ? mask.shiftedUp(d) : mask.shiftedDown(d);
    for (unsigned i = 0; i < n; ++i) {
        BitRow src = senseRow(wl_src + i) & mask;
        BitRow moved = dist >= 0 ? src.shiftedUp(d) : src.shiftedDown(d);
        driveRow(wl_dst + i, moved, dst_mask);
        ++stats_.htreeRowMoves;
    }
    ++stats_.opCount;
    return lat_.intraShiftCycles(t);
}

Tick
ComputeSram::broadcast(DType t, unsigned src_bitline, unsigned wl_src,
                       unsigned wl_dst, const BitRow &mask)
{
    const unsigned n = dtypeBits(t);
    for (unsigned i = 0; i < n; ++i) {
        bool bit = senseRow(wl_src + i).get(src_bitline);
        BitRow value(bitlines());
        if (bit)
            value = mask;
        driveRow(wl_dst + i, value, mask);
        ++stats_.htreeRowMoves;
    }
    ++stats_.opCount;
    return lat_.intraShiftCycles(t);
}

const char *
bitOpName(BitOp op)
{
    switch (op) {
      case BitOp::Add: return "add";
      case BitOp::Sub: return "sub";
      case BitOp::Mul: return "mul";
      case BitOp::Div: return "div";
      case BitOp::Max: return "max";
      case BitOp::Min: return "min";
      case BitOp::CmpLt: return "cmplt";
      case BitOp::Select: return "select";
      case BitOp::Copy: return "copy";
      case BitOp::AndB: return "and";
      case BitOp::OrB: return "or";
      case BitOp::XorB: return "xor";
      case BitOp::Relu: return "relu";
    }
    return "?";
}

} // namespace infs
