/**
 * @file
 * Bit-serial operation latency table. Integer latencies follow the paper
 * (§2.2, §5.2): an n-bit integer add takes O(n) cycles (we use n, matching
 * Eq. 1's 32-cycle int32 add), an n-bit multiply takes n^2 + 5n cycles.
 * Floating-point latencies are Duality-Cache-style calibrated constants:
 * fp32 add/sub dominated by mantissa alignment + 24-bit add + normalize,
 * fp32 mul by the 24x24 mantissa multiply, max/cmp by exponent compare.
 */

#ifndef INFS_BITSERIAL_LATENCY_HH
#define INFS_BITSERIAL_LATENCY_HH

#include <cstdint>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace infs {

// DType and dtypeBits/dtypeBytes live in sim/types.hh so configuration
// code can name element types without depending on the bitserial layer.

/** Operations executable by the bit-serial PEs. */
enum class BitOp : std::uint8_t {
    Add,
    Sub,
    Mul,
    Div,
    Max,
    Min,
    CmpLt,     ///< Produces a 1-bit mask per bitline.
    Select,    ///< Predicated move: dst = mask ? a : b.
    Copy,      ///< Wordline-to-wordline copy within the bitline.
    AndB,      ///< Bitwise AND.
    OrB,       ///< Bitwise OR.
    XorB,      ///< Bitwise XOR.
    Relu,      ///< max(x, 0).
};

/** Human-readable op name for traces and stats. */
const char *bitOpName(BitOp op);

/**
 * Latency in SRAM-array cycles for one bit-serial operation applied across
 * all bitlines of an array in parallel.
 */
class LatencyTable
{
  public:
    /** Cycles for @p op on elements of type @p t. */
    Tick
    opCycles(BitOp op, DType t) const
    {
        const unsigned n = dtypeBits(t);
        const bool fp = (t == DType::Fp32);
        switch (op) {
          case BitOp::Add:
          case BitOp::Sub:
            return fp ? fp32Add : n;
          case BitOp::Mul:
            return fp ? fp32Mul : Tick(n) * n + 5 * n;
          case BitOp::Div:
            return fp ? fp32Div : 2 * (Tick(n) * n + 5 * n);
          case BitOp::Max:
          case BitOp::Min:
          case BitOp::Relu:
            return fp ? fp32Max : 2 * Tick(n) + 2;
          case BitOp::CmpLt:
            return fp ? fp32Cmp : 2 * Tick(n);
          case BitOp::Select:
            return Tick(n) + 1;
          case BitOp::Copy:
          case BitOp::AndB:
          case BitOp::OrB:
          case BitOp::XorB:
            return Tick(n);
        }
        infs_panic("unknown BitOp");
    }

    /**
     * Cycles to shift one element of @p t by any intra-array bitline
     * distance through the H tree: one cycle per bit (the shift network
     * moves one wordline of all selected bitlines per cycle).
     */
    Tick
    intraShiftCycles(DType t) const
    {
        return dtypeBits(t);
    }

    // Calibrated fp32 latencies (cycles).
    Tick fp32Add = 334;
    Tick fp32Mul = 1026;
    Tick fp32Div = 1300;
    Tick fp32Max = 66;
    Tick fp32Cmp = 34;
};

} // namespace infs

#endif // INFS_BITSERIAL_LATENCY_HH
