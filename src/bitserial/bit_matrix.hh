/**
 * @file
 * Bit storage for one compute SRAM array: `wordlines` rows of `bitlines`
 * bits. A row is stored as packed 64-bit words so one row operation models
 * all bitline PEs operating in parallel, exactly like the hardware.
 */

#ifndef INFS_BITSERIAL_BIT_MATRIX_HH
#define INFS_BITSERIAL_BIT_MATRIX_HH

#include <cstdint>
#include <span>
#include <vector>

#include "sim/logging.hh"

namespace infs {

/** One wordline's worth of bits across all bitlines, packed 64 per word. */
class BitRow
{
  public:
    BitRow() = default;
    explicit BitRow(unsigned bits)
        : bits_(bits), words_((bits + 63) / 64, 0) {}

    unsigned bits() const { return bits_; }

    /** Packed 64-bit words, LSB-first (read-only hot-path access). */
    std::span<const std::uint64_t> words() const { return words_; }

    bool
    get(unsigned i) const
    {
        infs_assert(i < bits_, "bit index %u out of %u", i, bits_);
        return (words_[i / 64] >> (i % 64)) & 1ULL;
    }

    void
    set(unsigned i, bool v)
    {
        infs_assert(i < bits_, "bit index %u out of %u", i, bits_);
        std::uint64_t m = 1ULL << (i % 64);
        if (v)
            words_[i / 64] |= m;
        else
            words_[i / 64] &= ~m;
    }

    void
    clear()
    {
        for (auto &w : words_)
            w = 0;
    }

    /** Set bits [lo, hi) to 1 (others untouched). */
    void setRange(unsigned lo, unsigned hi);

    /** Set bits [lo, hi) to @p v (word-level; others untouched). */
    void fillRange(unsigned lo, unsigned hi, bool v);

    /** Set bits lo, lo+stride, ... (count of them) to 1. */
    void setStrided(unsigned lo, unsigned stride, unsigned count);

    /** Number of set bits. */
    unsigned popcount() const;

    bool any() const;

    // Elementwise logic across all bitlines (the parallel PE operations).
    BitRow operator&(const BitRow &o) const { return apply(o, OpAnd); }
    BitRow operator|(const BitRow &o) const { return apply(o, OpOr); }
    BitRow operator^(const BitRow &o) const { return apply(o, OpXor); }
    BitRow operator~() const;
    BitRow &operator&=(const BitRow &o) { inplace(o, OpAnd); return *this; }
    BitRow &operator|=(const BitRow &o) { inplace(o, OpOr); return *this; }
    BitRow &operator^=(const BitRow &o) { inplace(o, OpXor); return *this; }

    // ------------------------------------------------------------------
    // Fused in-place word-level passes (the allocation-free hot paths —
    // DESIGN.md §10). Every method below is a single pass over the packed
    // words with no temporaries; rows must have equal widths.
    // ------------------------------------------------------------------

    /** this &= o (named form used by the hot paths). */
    void andInto(const BitRow &o);

    /** this ^= o. */
    void xorInto(const BitRow &o);

    /** this |= o. */
    void orInto(const BitRow &o);

    /** this = ~a & m (aliasing-safe: @p a or @p m may be *this). */
    void notAndInto(const BitRow &a, const BitRow &m);

    /** this = a & b. */
    void assignAnd(const BitRow &a, const BitRow &b);

    /** this = maj(a, b, this) = (a & b) | (this & (a ^ b)) — the carry
     * half of a bit-serial full-adder step. */
    void majInto(const BitRow &a, const BitRow &b);

    /**
     * One fused full-adder step: with *this holding the partial sum,
     * updates this = this ^ addend ^ carry and carry = maj(this_old,
     * addend, carry) in a single word pass.
     */
    void fullAdderInto(const BitRow &addend, BitRow &carry);

    /** this = (a & pred) | (b & ~pred) — the predicated select. */
    void assignSelect(const BitRow &a, const BitRow &b,
                      const BitRow &pred);

    /** this = src (width must match; no reallocation). */
    void copyFrom(const BitRow &src);

    /**
     * this = src shifted by @p dist bitlines (positive = up / toward
     * higher index). Allocation-free counterpart of shiftedUp/Down;
     * @p src must not alias *this.
     */
    void assignShifted(const BitRow &src, int dist);

    /**
     * Extract bits [lo, lo + len) into @p out packed LSB-first
     * ((len + 63) / 64 words). Word-level with arbitrary alignment.
     */
    void extractTo(std::uint64_t *out, unsigned lo, unsigned len) const;

    /** Inverse of extractTo: deposit @p len bits from @p in at @p lo.
     * Bits outside [lo, lo + len) are untouched. */
    void depositFrom(const std::uint64_t *in, unsigned lo, unsigned len);

    /** this = (this & ~mask) | (value & mask) — the predicated write. */
    void mergeMasked(const BitRow &value, const BitRow &mask);

    /**
     * Word-granular predicated merge for the blocked fp path (DESIGN.md
     * §14): words()[wi] = (words()[wi] & ~mask) | (val & mask).
     */
    void
    mergeWordMasked(unsigned wi, std::uint64_t val, std::uint64_t mask)
    {
        infs_assert(wi < words_.size(), "word %u out of %zu", wi,
                    words_.size());
        words_[wi] = (words_[wi] & ~mask) | (val & mask);
    }

    bool operator==(const BitRow &o) const
    {
        return bits_ == o.bits_ && words_ == o.words_;
    }

    /** Shift the row left (toward higher bitline index) by @p n bits. */
    BitRow shiftedUp(unsigned n) const;
    /** Shift the row right (toward lower bitline index) by @p n bits. */
    BitRow shiftedDown(unsigned n) const;

  private:
    enum OpKind { OpAnd, OpOr, OpXor };

    BitRow apply(const BitRow &o, OpKind k) const;
    void inplace(const BitRow &o, OpKind k);
    void maskTail();

    // Raw word access for BitMatrix's single-pass element fast paths.
    friend class BitMatrix;

    unsigned bits_ = 0;
    std::vector<std::uint64_t> words_;
};

/**
 * The bit contents of one SRAM array: wordlines x bitlines. Wordline 0 is
 * the top row. Elements in transposed layout occupy consecutive wordlines
 * (LSB at the lowest wordline) of a single bitline.
 */
class BitMatrix
{
  public:
    BitMatrix(unsigned wordlines, unsigned bitlines)
        : wordlines_(wordlines), bitlines_(bitlines),
          rows_(wordlines, BitRow(bitlines))
    {
    }

    unsigned wordlines() const { return wordlines_; }
    unsigned bitlines() const { return bitlines_; }

    const BitRow &
    row(unsigned wl) const
    {
        infs_assert(wl < wordlines_, "wordline %u out of %u", wl, wordlines_);
        return rows_[wl];
    }

    BitRow &
    row(unsigned wl)
    {
        infs_assert(wl < wordlines_, "wordline %u out of %u", wl, wordlines_);
        return rows_[wl];
    }

    bool get(unsigned wl, unsigned bl) const { return row(wl).get(bl); }
    void set(unsigned wl, unsigned bl, bool v) { row(wl).set(bl, v); }

    /**
     * Write only the masked bitlines of a wordline: row = (row & ~mask) |
     * (value & mask). This is the predicated write the hardware performs.
     */
    void
    writeMasked(unsigned wl, const BitRow &value, const BitRow &mask)
    {
        row(wl).mergeMasked(value, mask);
    }

    /**
     * Read an element of @p bits width stored transposed on @p bitline
     * starting at wordline @p wl (LSB first). Returns the raw bit pattern.
     */
    std::uint64_t readElement(unsigned bitline, unsigned wl,
                              unsigned bits) const;

    /** Write an element (inverse of readElement). */
    void writeElement(unsigned bitline, unsigned wl, unsigned bits,
                      std::uint64_t value);

    void
    clear()
    {
        for (auto &r : rows_)
            r.clear();
    }

  private:
    unsigned wordlines_;
    unsigned bitlines_;
    std::vector<BitRow> rows_;
};

} // namespace infs

#endif // INFS_BITSERIAL_BIT_MATRIX_HH
