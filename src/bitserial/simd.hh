/**
 * @file
 * Runtime-dispatched SIMD kernels for the bit-plane hot paths
 * (DESIGN.md §14). One binary carries every implementation — a portable
 * scalar word loop, AVX2, and NEON — and the active table is selected at
 * runtime from SystemConfig::simd, the INFS_SIMD environment variable, or
 * cpuid/compile-time detection. Every table computes bit-identical
 * results; the tests in tests/bitserial/test_simd_paths.cc certify each
 * reachable path differentially against the portable one.
 *
 * Two kernel families live here:
 *  - row kernels: one pass over a BitRow's packed words (full adder,
 *    majority, select, predicated merge — the PR 4 fused word loops);
 *  - block kernels: 32x32 bit-matrix transpose and 64-lane fp32 ops, the
 *    building blocks of the chunked bit transpose (loadArray/storeArray)
 *    and the blocked fpBinary path in ComputeSram.
 *
 * SimdIsa::Off routes the row kernels to the portable code AND disables
 * the blocked fp path entirely (ComputeSram falls back to the legacy
 * per-element loop), so the pre-PR 10 execution path stays reachable and
 * testable from the same binary.
 */

#ifndef INFS_BITSERIAL_SIMD_HH
#define INFS_BITSERIAL_SIMD_HH

#include <cstddef>
#include <cstdint>

#include "sim/config.hh"

namespace infs::simd {

/** fp32 lane operation selector for SimdKernels::fpLanes. */
enum class FpOp : std::uint8_t { Add, Sub, Mul, Div, Max, Min };

/**
 * One resolved kernel table. All function pointers are non-null; `isa`
 * names the implementation for stats/bench attribution. `blockedFp` is
 * false only for the Off table (legacy per-element fp32 path).
 */
struct SimdKernels {
    SimdIsa isa = SimdIsa::Portable;
    bool blockedFp = true;

    /** sum' = sum ^ addend ^ carry; carry' = maj(sum, addend, carry). */
    void (*rowFullAdder)(std::uint64_t *sum, const std::uint64_t *addend,
                         std::uint64_t *carry, std::size_t n);
    /** dst = (a & b) | (dst & (a ^ b)) — the carry half alone. */
    void (*rowMaj)(std::uint64_t *dst, const std::uint64_t *a,
                   const std::uint64_t *b, std::size_t n);
    /** dst = (a & pred) | (b & ~pred). */
    void (*rowSelect)(std::uint64_t *dst, const std::uint64_t *a,
                      const std::uint64_t *b, const std::uint64_t *pred,
                      std::size_t n);
    /** dst = (dst & ~mask) | (val & mask). */
    void (*rowMergeMasked)(std::uint64_t *dst, const std::uint64_t *val,
                           const std::uint64_t *mask, std::size_t n);
    /** dst = a & b (dst may alias either input). */
    void (*rowAssignAnd)(std::uint64_t *dst, const std::uint64_t *a,
                         const std::uint64_t *b, std::size_t n);
    /** dst = ~a & m (dst may alias either input). */
    void (*rowNotAnd)(std::uint64_t *dst, const std::uint64_t *a,
                      const std::uint64_t *m, std::size_t n);
    /** dst &= src / dst |= src / dst ^= src. */
    void (*rowAnd)(std::uint64_t *dst, const std::uint64_t *src,
                   std::size_t n);
    void (*rowOr)(std::uint64_t *dst, const std::uint64_t *src,
                  std::size_t n);
    void (*rowXor)(std::uint64_t *dst, const std::uint64_t *src,
                   std::size_t n);

    /**
     * Plain 32x32 bit-matrix transpose: out[c] bit r == in[r] bit c
     * (LSB-first bit numbering on both sides). in and out must not alias.
     */
    void (*transpose32)(const std::uint32_t *in, std::uint32_t *out);

    /**
     * 64 independent fp32 lane ops on raw bit patterns: r[i] =
     * op(bit_cast<float>(a[i]), bit_cast<float>(b[i])). Exactly one IEEE
     * operation per lane — Max/Min use the scalar `a > b ? a : b` /
     * `a < b ? a : b` semantics (NaN and signed-zero behavior included),
     * so every ISA produces the same bit pattern.
     */
    void (*fpLanes)(FpOp op, const std::uint32_t *a, const std::uint32_t *b,
                    std::uint32_t *r, unsigned n);

    /** Bit i of the result == (float)a[i] < (float)b[i] (ordered). */
    std::uint64_t (*fpLtMask)(const std::uint32_t *a, const std::uint32_t *b,
                              unsigned n);
};

/** Best ISA the running host supports (compile-time + cpuid). */
SimdIsa detect();

/** Whether @p isa can execute on this host (Off/Portable always can). */
bool available(SimdIsa isa);

/**
 * Resolve a requested ISA to a concrete one: Auto consults INFS_SIMD then
 * detect(); a concrete request unavailable on this host falls back to the
 * detected best with a warning (unknown *names* are the caller's exit-2
 * concern — this only sees parsed values).
 */
SimdIsa resolve(SimdIsa requested);

/** Install the kernel table for @p isa (resolved first). Called by
 * InfinitySystem's constructor and by tests forcing a path. */
void setActive(SimdIsa isa);

/** The active kernel table (lazily resolved from Auto on first use). */
const SimdKernels &active();

/** ISA of the active table. */
inline SimdIsa activeIsa() { return active().isa; }

/** The table for a specific ISA (differential tests); must be
 * available(). */
const SimdKernels &kernelsFor(SimdIsa isa);

// ---------------------------------------------------------------------
// Block-transpose helpers shared by the chunked load/store paths and the
// blocked fp32 kernels: 64 fp32 lanes <-> 32 bit planes of 64 bits.
// ---------------------------------------------------------------------

/** planes[b] bit e = lanes[e] bit b, e in [0, 64). */
inline void
lanesToPlanes(const SimdKernels &k, const std::uint32_t lanes[64],
              std::uint64_t planes[32])
{
    std::uint32_t lo[32], hi[32];
    k.transpose32(lanes, lo);
    k.transpose32(lanes + 32, hi);
    for (unsigned b = 0; b < 32; ++b)
        planes[b] = static_cast<std::uint64_t>(lo[b]) |
                    (static_cast<std::uint64_t>(hi[b]) << 32);
}

/** Inverse of lanesToPlanes. */
inline void
planesToLanes(const SimdKernels &k, const std::uint64_t planes[32],
              std::uint32_t lanes[64])
{
    std::uint32_t lo[32], hi[32];
    for (unsigned b = 0; b < 32; ++b) {
        lo[b] = static_cast<std::uint32_t>(planes[b]);
        hi[b] = static_cast<std::uint32_t>(planes[b] >> 32);
    }
    k.transpose32(lo, lanes);
    k.transpose32(hi, lanes + 32);
}

} // namespace infs::simd

#endif // INFS_BITSERIAL_SIMD_HH
