/**
 * @file
 * Tensor transpose unit (TTU) model: converts elements between the normal
 * horizontal layout (a span of values) and the vertical bit-serial layout
 * inside a ComputeSram, charging a per-line conversion cost (§5.2).
 */

#ifndef INFS_BITSERIAL_TRANSPOSE_HH
#define INFS_BITSERIAL_TRANSPOSE_HH

#include <cstdint>
#include <span>

#include "bitserial/compute_sram.hh"
#include "sim/types.hh"

namespace infs {

/**
 * Functional + timing model of the TTU. One TTU sits at each L3 bank and
 * converts one cache line between layouts every `cyclesPerLine` cycles.
 */
class TensorTransposeUnit
{
  public:
    explicit TensorTransposeUnit(Tick cycles_per_line = 4)
        : cyclesPerLine_(cycles_per_line)
    {
    }

    /**
     * Transpose @p elems into @p sram: element i lands on bitline
     * (first_bitline + i) at wordlines [wl, wl + bits). Values are raw bit
     * patterns (use std::bit_cast for floats).
     * @return Cycle cost of the conversion.
     */
    Tick loadTransposed(ComputeSram &sram, std::span<const std::uint64_t>
                        elems, DType t, unsigned wl,
                        unsigned first_bitline = 0) const;

    /** Inverse of loadTransposed. @return Cycle cost. */
    Tick storeFromTransposed(const ComputeSram &sram,
                             std::span<std::uint64_t> elems, DType t,
                             unsigned wl, unsigned first_bitline = 0) const;

    /** Cycles to convert @p n elements of type @p t. */
    Tick
    conversionCycles(std::uint64_t n, DType t) const
    {
        std::uint64_t bytes = n * dtypeBytes(t);
        std::uint64_t lines = (bytes + lineBytes - 1) / lineBytes;
        return lines * cyclesPerLine_;
    }

  private:
    Tick cyclesPerLine_;
};

} // namespace infs

#endif // INFS_BITSERIAL_TRANSPOSE_HH
