#include "bitserial/transpose.hh"

#include <algorithm>

#include "bitserial/simd.hh"

namespace infs {

Tick
TensorTransposeUnit::loadTransposed(ComputeSram &sram,
                                    std::span<const std::uint64_t> elems,
                                    DType t, unsigned wl,
                                    unsigned first_bitline) const
{
    infs_assert(first_bitline + elems.size() <= sram.bitlines(),
                "transpose overflows bitlines: %zu elems at %u",
                elems.size(), first_bitline);
    const simd::SimdKernels &k = simd::active();
    if (dtypeBits(t) == 32 && k.blockedFp) {
        // Chunked bit transpose (DESIGN.md §14): 64 elements become 32
        // bit planes via two 32x32 transposes, then one depositFrom per
        // plane instead of one writeElement per element.
        BitMatrix &bm = sram.bits();
        std::uint32_t lanes[64];
        std::uint64_t planes[32];
        std::size_t i = 0;
        while (i < elems.size()) {
            const unsigned clen = static_cast<unsigned>(
                std::min<std::size_t>(elems.size() - i, 64));
            if (clen < 64)
                std::fill(lanes + clen, lanes + 64, 0u);
            for (unsigned e = 0; e < clen; ++e)
                lanes[e] = static_cast<std::uint32_t>(elems[i + e]);
            simd::lanesToPlanes(k, lanes, planes);
            const unsigned pos =
                first_bitline + static_cast<unsigned>(i);
            for (unsigned b = 0; b < 32; ++b)
                bm.row(wl + b).depositFrom(&planes[b], pos, clen);
            i += clen;
        }
        return conversionCycles(elems.size(), t);
    }
    for (std::size_t i = 0; i < elems.size(); ++i)
        sram.writeElement(first_bitline + static_cast<unsigned>(i), wl, t,
                          elems[i]);
    return conversionCycles(elems.size(), t);
}

Tick
TensorTransposeUnit::storeFromTransposed(const ComputeSram &sram,
                                         std::span<std::uint64_t> elems,
                                         DType t, unsigned wl,
                                         unsigned first_bitline) const
{
    infs_assert(first_bitline + elems.size() <= sram.bitlines(),
                "transpose overflows bitlines: %zu elems at %u",
                elems.size(), first_bitline);
    const simd::SimdKernels &k = simd::active();
    if (dtypeBits(t) == 32 && k.blockedFp) {
        const BitMatrix &bm = sram.bits();
        std::uint32_t lanes[64];
        std::uint64_t planes[32];
        std::size_t i = 0;
        while (i < elems.size()) {
            const unsigned clen = static_cast<unsigned>(
                std::min<std::size_t>(elems.size() - i, 64));
            const unsigned pos =
                first_bitline + static_cast<unsigned>(i);
            for (unsigned b = 0; b < 32; ++b)
                bm.row(wl + b).extractTo(&planes[b], pos, clen);
            simd::planesToLanes(k, planes, lanes);
            for (unsigned e = 0; e < clen; ++e)
                elems[i + e] = lanes[e];
            i += clen;
        }
        return conversionCycles(elems.size(), t);
    }
    for (std::size_t i = 0; i < elems.size(); ++i)
        elems[i] = sram.readElement(first_bitline + static_cast<unsigned>(i),
                                    wl, t);
    return conversionCycles(elems.size(), t);
}

} // namespace infs
