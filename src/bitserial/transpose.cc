#include "bitserial/transpose.hh"

namespace infs {

Tick
TensorTransposeUnit::loadTransposed(ComputeSram &sram,
                                    std::span<const std::uint64_t> elems,
                                    DType t, unsigned wl,
                                    unsigned first_bitline) const
{
    infs_assert(first_bitline + elems.size() <= sram.bitlines(),
                "transpose overflows bitlines: %zu elems at %u",
                elems.size(), first_bitline);
    for (std::size_t i = 0; i < elems.size(); ++i)
        sram.writeElement(first_bitline + static_cast<unsigned>(i), wl, t,
                          elems[i]);
    return conversionCycles(elems.size(), t);
}

Tick
TensorTransposeUnit::storeFromTransposed(const ComputeSram &sram,
                                         std::span<std::uint64_t> elems,
                                         DType t, unsigned wl,
                                         unsigned first_bitline) const
{
    infs_assert(first_bitline + elems.size() <= sram.bitlines(),
                "transpose overflows bitlines: %zu elems at %u",
                elems.size(), first_bitline);
    for (std::size_t i = 0; i < elems.size(); ++i)
        elems[i] = sram.readElement(first_bitline + static_cast<unsigned>(i),
                                    wl, t);
    return conversionCycles(elems.size(), t);
}

} // namespace infs
