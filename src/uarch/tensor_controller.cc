#include "uarch/tensor_controller.hh"

#include <algorithm>

#include "sim/fault.hh"

namespace infs {

std::uint64_t
TensorController::maskedElements(const InMemCommand &cmd,
                                 const TiledLayout &layout) const
{
    const HyperRect &t = cmd.tensor;
    if (t.empty())
        return 0;
    // Compute commands carry a positional mask only when the JIT set one
    // (reduction rounds); an unset mask (maskHi == 0) means all cells.
    if ((cmd.kind == CmdKind::Compute && cmd.maskHi <= cmd.maskLo) ||
        cmd.kind == CmdKind::BroadcastBl || cmd.kind == CmdKind::BroadcastVal)
        return static_cast<std::uint64_t>(t.volume());
    // Shift commands: count dim-k coordinates whose in-tile position lies
    // inside the mask.
    const Coord tile_k = layout.tileSize(cmd.dim);
    std::uint64_t covered = 0;
    for (Coord x = t.lo(cmd.dim); x < t.hi(cmd.dim); ++x) {
        Coord pos = ((x % tile_k) + tile_k) % tile_k;
        if (pos >= cmd.maskLo && pos < cmd.maskHi)
            ++covered;
    }
    std::uint64_t per_coord = static_cast<std::uint64_t>(
        t.volume() / t.size(cmd.dim));
    return covered * per_coord;
}

std::vector<TensorController::CmdEffect>
TensorController::computeEffects(const InMemProgram &prog,
                                 const TiledLayout &layout) const
{
    const unsigned banks = cfg_.l3.numBanks;
    std::vector<CmdEffect> effects(prog.commands.size());
    auto one = [&](std::int64_t i) {
        const InMemCommand &cmd =
            prog.commands[static_cast<std::size_t>(i)];
        CmdEffect &e = effects[static_cast<std::size_t>(i)];
        if (cmd.kind == CmdKind::Sync)
            return;
        e.elems = maskedElements(cmd, layout);
        if (cmd.kind == CmdKind::Compute ||
            cmd.kind == CmdKind::IntraShift ||
            cmd.kind == CmdKind::InterShift) {
            e.tiles = static_cast<double>(
                layout.countTilesIntersecting(cmd.tensor));
        }
        if (cmd.kind == CmdKind::InterShift) {
            // Mean hop count of the per-bank destination pattern; only
            // shifts whose tile-index delta crosses a bank actually use
            // it, but it is pure geometry so it can precompute here.
            std::int64_t stride = 1;
            for (unsigned d = 0; d < cmd.dim; ++d)
                stride *= layout.grid()[d];
            std::int64_t tile_delta = cmd.interTileDist * stride;
            std::int64_t abs_delta =
                tile_delta < 0 ? -tile_delta : tile_delta;
            if (abs_delta > 0) {
                std::int64_t bank_delta =
                    std::max<std::int64_t>(
                        abs_delta / map_.arraysPerBank(), 1) %
                    banks;
                double hops = 0.0;
                for (BankId b = 0; b < banks; ++b)
                    hops += noc_.hops(b, static_cast<BankId>(
                                             (b + bank_delta) % banks));
                e.hops = hops / banks;
            }
        }
    };
    const std::int64_t n =
        static_cast<std::int64_t>(prog.commands.size());
    // Grain keeps short programs inline; only JIT output with many
    // commands is worth fanning out.
    constexpr std::int64_t kGrain = 16;
    if (pool_ != nullptr && !pool_->inlineOnly() && n > kGrain)
        pool_->parallelFor(n, one, kGrain);
    else
        for (std::int64_t i = 0; i < n; ++i)
            one(i);
    return effects;
}

InMemExecResult
TensorController::execute(const InMemProgram &prog,
                          const TiledLayout &layout, BankId core,
                          std::uint64_t repeat)
{
    InMemExecResult res;
    if (repeat == 0)
        return res;
    const double rep = static_cast<double>(repeat);
    const unsigned bits = dtypeBits(cfg_.tensor.elemType);
    const unsigned elem_bytes = bits / 8;
    const unsigned banks = cfg_.l3.numBanks;
    // Per-bank issue model: commands of the same group (one node's tile
    // decomposition) touch disjoint arrays and overlap; groups serialize
    // (per-bank synchronous issue, §4.2).
    std::vector<Tick> busy(banks, 0);       // End of the current group.
    std::vector<Tick> group_base(banks, 0); // Start of the current group.
    std::vector<unsigned> cur_group(banks, ~0u);
    const double per_hop = cfg_.noc.routerStages + cfg_.noc.linkLatency;

    // Command dispatch from TCcore's command cache to the banks.
    noc_.accountBulk(static_cast<double>(prog.commands.size()) * 16.0 * rep,
                     noc_.avgHops(), TrafficClass::Offload);

    auto bumpBanks = [&](const std::vector<BankId> &bs, Tick lat,
                         unsigned group) {
        for (BankId b : bs) {
            if (cur_group[b] != group) {
                group_base[b] = busy[b];
                cur_group[b] = group;
            }
            busy[b] = std::max(busy[b], group_base[b] + lat);
        }
    };
    auto maxBusy = [&]() {
        Tick m = 0;
        for (Tick t : busy)
            m = std::max(m, t);
        return m;
    };

    // Pure per-command geometry, precomputed bank-parallel when a pool is
    // attached (DESIGN.md §10). The timing fold below stays sequential.
    const std::vector<CmdEffect> effects = computeEffects(prog, layout);

    // Fault model: each command issue may fail transiently (controller
    // parity catches it; bounded retry). Penalty cycles accumulate once
    // per execute() call — fault sampling does not scale with `repeat` so
    // the schedule stays a function of the command sequence alone.
    Tick fault_extra = 0;
    for (std::size_t ci = 0; ci < prog.commands.size(); ++ci) {
        const InMemCommand &cmd = prog.commands[ci];
        const CmdEffect &eff = effects[ci];
        if (fault_ && cmd.kind != CmdKind::Sync) {
            CmdFault cf = fault_->sampleCmdFault();
            if (cf.faulted) {
                ++res.faultsInjected;
                ++res.faultsDetected;
                fault_extra += fault_->recordDetection();
                bool cleared = false;
                for (unsigned r = 0; r < cfg_.fault.retryBudget; ++r) {
                    ++res.faultRetries;
                    fault_extra += fault_->recordRetry();
                    if (!cf.persistent) {
                        cleared = true;
                        break;
                    }
                }
                if (!cleared) {
                    // Hard fault: abandon the in-memory attempt; the
                    // caller degrades the region (near-memory / core).
                    fault_->recordExhausted();
                    res.failed = true;
                    break;
                }
            }
        }
        switch (cmd.kind) {
          case CmdKind::Compute: {
            Tick cyc = lat_.opCycles(cmd.op, cmd.dtype);
            if (cmd.useImm)
                cyc += bits; // Broadcast the constant first (§5.2).
            if (fault_ && fault_->sampleSramFlip()) {
                // A wordline bit flipped during the bit-serial op; row
                // parity catches it and the op re-executes.
                ++res.faultsInjected;
                ++res.faultsDetected;
                fault_extra += fault_->recordDetection();
                ++res.faultRetries;
                fault_extra += fault_->recordRetry(cyc);
            }
            bumpBanks(cmd.banks, cyc, cmd.group);
            res.computeCycles += cyc;
            res.inMemOps += eff.elems;
            // Energy: ~3 row activations per bit step in each involved
            // SRAM array (2 senses + 1 write).
            energy_.charge(EnergyEvent::SramRowActivate,
                           3.0 * bits * eff.tiles * rep);
            break;
          }
          case CmdKind::BroadcastVal: {
            Tick cyc = bits;
            bumpBanks(cmd.banks, cyc, cmd.group);
            res.moveCycles += cyc;
            break;
          }
          case CmdKind::IntraShift: {
            Tick cyc = lat_.intraShiftCycles(cmd.dtype);
            bumpBanks(cmd.banks, cyc, cmd.group);
            res.moveCycles += cyc;
            res.intraTileBytes +=
                static_cast<double>(eff.elems) * elem_bytes * rep;
            energy_.charge(EnergyEvent::HtreeRowMove,
                           bits * eff.tiles * rep);
            break;
          }
          case CmdKind::InterShift: {
            // Pack bits, traverse the H tree, and cross to the target
            // tile. Unlike intra-array shifts (bitline-parallel), the
            // crossing data serializes through each bank's H-tree port —
            // this is what makes poorly tiled layouts slow (Fig 16/17).
            double bytes_once =
                static_cast<double>(eff.elems) * elem_bytes;
            double bytes = bytes_once * rep;
            double banks_involved =
                static_cast<double>(std::max<std::size_t>(
                    cmd.banks.size(), 1));
            Tick ser = static_cast<Tick>(
                bytes_once / banks_involved /
                static_cast<double>(cfg_.l3.htreeBandwidth));
            Tick cyc = lat_.intraShiftCycles(cmd.dtype) + 8 + ser;
            bumpBanks(cmd.banks, cyc, cmd.group);
            res.moveCycles += cyc;
            res.interTileBytes += bytes;
            // Linear tile-index delta of the shift along this dimension.
            // With the contiguous tile->array mapping, only tiles whose
            // destination crosses a bank boundary inject NoC packets; the
            // rest travel the bank's H tree (§5.2).
            std::int64_t stride = 1;
            for (unsigned d = 0; d < cmd.dim; ++d)
                stride *= layout.grid()[d];
            std::int64_t tile_delta = cmd.interTileDist * stride;
            std::int64_t abs_delta =
                tile_delta < 0 ? -tile_delta : tile_delta;
            const double apb = static_cast<double>(map_.arraysPerBank());
            double crossing =
                std::min(1.0, static_cast<double>(abs_delta) / apb);
            if (crossing > 0.0 && abs_delta > 0) {
                noc_.accountBulk(bytes * crossing, eff.hops,
                                 TrafficClass::InterTile);
                res.interTileNocBytes += bytes * crossing;
                // NoC injection serialization for the crossing bytes.
                Tick noc_ser = static_cast<Tick>(
                    bytes_once * crossing / banks_involved /
                    static_cast<double>(cfg_.noc.linkBytes));
                bumpBanks(cmd.banks, lat_.intraShiftCycles(cmd.dtype) + 8 +
                                         ser + noc_ser,
                          cmd.group);
                res.moveCycles += noc_ser;
            }
            energy_.charge(EnergyEvent::HtreeRowMove,
                           2.0 * bits * rep * eff.tiles);
            break;
          }
          case CmdKind::BroadcastBl: {
            // One source row replicated across the destination region via
            // the buffered H tree; remote tiles receive it over the NoC
            // multicast. The source data serializes out of its banks.
            double bytes_once =
                static_cast<double>(eff.elems) * elem_bytes;
            double bytes = bytes_once * rep;
            double banks_involved =
                static_cast<double>(std::max<std::size_t>(
                    cmd.banks.size(), 1));
            Tick ser = static_cast<Tick>(
                bytes_once / banks_involved /
                static_cast<double>(cfg_.l3.htreeBandwidth));
            Tick cyc = lat_.intraShiftCycles(cmd.dtype) + 8 + ser;
            bumpBanks(cmd.banks, cyc, cmd.group);
            res.moveCycles += cyc;
            // Multicast: source data travels once along the tree spanning
            // the destination banks (cheap, §4.1 "broadcast is
            // inexpensive, as it can reuse the read data").
            if (cmd.banks.size() > 1)
                noc_.accountBulk(bytes,
                                 std::min<double>(noc_.avgHops(),
                                                  double(cmd.banks.size())),
                                 TrafficClass::InterTile);
            res.interTileBytes += bytes;
            energy_.charge(EnergyEvent::HtreeRowMove,
                           bits * rep *
                               static_cast<double>(cmd.banks.size()));
            break;
          }
          case CmdKind::Sync: {
            // Global barrier: every TCL3 reports sent/received counts to
            // TCcore, which broadcasts the release (§5.2).
            Tick wall = maxBusy();
            Tick sync_lat = static_cast<Tick>(2.0 * noc_.avgHops() *
                                              per_hop) +
                            8;
            for (unsigned b = 0; b < banks; ++b) {
                busy[b] = wall + sync_lat;
                group_base[b] = busy[b];
                cur_group[b] = ~0u;
            }
            res.syncCycles += sync_lat;
            noc_.accountBulk(static_cast<double>(banks) * 2.0 * 16.0 * rep,
                             noc_.avgHops(), TrafficClass::Offload);
            // TCcore round trip.
            noc_.send(core, 0, static_cast<Bytes>(16 * repeat),
                      TrafficClass::Offload);
            break;
          }
        }
    }

    // Per-command ops and per-repeat cycle components scale linearly;
    // fault penalties were accumulated once per execute() call.
    res.inMemOps *= repeat;
    res.computeCycles *= repeat;
    res.moveCycles *= repeat;
    res.syncCycles *= repeat;
    res.retryCycles = fault_extra;
    res.cycles = maxBusy() * repeat + fault_extra;
    res.bankBusy.resize(banks);
    for (unsigned b = 0; b < banks; ++b)
        res.bankBusy[b] = busy[b] * repeat;
    return res;
}

} // namespace infs
