/**
 * @file
 * Top-level system assembly (Table 2): one object owning the NoC, L3,
 * DRAM, address map, LOT, energy account, stream engine, tensor
 * controller, and JIT compiler. Executors (src/core) drive it.
 */

#ifndef INFS_UARCH_SYSTEM_HH
#define INFS_UARCH_SYSTEM_HH

#include <memory>

#include "bitserial/transpose.hh"
#include "energy/energy.hh"
#include "jit/jit.hh"
#include "jit/lot.hh"
#include "mem/address_map.hh"
#include "mem/dram.hh"
#include "mem/l3_model.hh"
#include "noc/mesh.hh"
#include "sim/config.hh"
#include "sim/fault.hh"
#include "sim/thread_pool.hh"
#include "stream/near_engine.hh"
#include "uarch/tensor_controller.hh"

namespace infs {

/** Result of preparing arrays in the transposed layout (§5.2). */
struct PrepareResult {
    Tick cycles = 0;
    Bytes movedBytes = 0;
    Bytes dramBytes = 0;
};

/** The simulated machine. */
class InfinitySystem
{
  public:
    explicit InfinitySystem(SystemConfig cfg = defaultSystemConfig());

    const SystemConfig &config() const { return cfg_; }
    MeshNoc &noc() { return noc_; }
    L3Model &l3() { return l3_; }
    DramModel &dram() { return dram_; }
    const AddressMap &map() const { return map_; }
    EnergyAccount &energy() { return energy_; }
    Lot &lot() { return lot_; }
    JitCompiler &jit() { return jit_; }
    NearStreamEngine &nearEngine() { return near_; }
    TensorController &tensorController() { return tc_; }
    const TensorTransposeUnit &ttu() const { return ttu_; }
    FaultInjector &faultInjector() { return fault_; }
    const FaultInjector &faultInjector() const { return fault_; }
    /** Host thread pool (SystemConfig::hostThreads, DESIGN.md §10). */
    ThreadPool &pool() { return pool_; }

    /**
     * Prepare @p bytes of array data in the transposed layout: reserve
     * the compute ways, flush dirty private copies, fetch (from DRAM when
     * not resident) and run the TTU (§5.2 "Prepare Transposed Data").
     * Layout conversion moves data from NUCA home banks to tile banks.
     * @param l3_residency Fraction already resident in L3.
     */
    PrepareResult prepareTransposed(Bytes bytes, double l3_residency);

    /**
     * Release transposed data: evict dirty bytes toward memory and free
     * the reserved ways (§5.2 "Delayed Release").
     */
    Tick releaseTransposed(Bytes dirty_bytes);

    /** Zero all statistics (traffic, energy, JIT, DRAM, L3). */
    void resetStats();

  private:
    SystemConfig cfg_;
    // The pool precedes every component that holds a pointer to it (and
    // outlives their teardown, being destroyed last).
    ThreadPool pool_;
    // The injector precedes every component that holds a pointer to it.
    FaultInjector fault_;
    MeshNoc noc_;
    L3Model l3_;
    DramModel dram_;
    AddressMap map_;
    EnergyAccount energy_;
    Lot lot_;
    JitCompiler jit_;
    NearStreamEngine near_;
    TensorController tc_;
    TensorTransposeUnit ttu_;
};

} // namespace infs

#endif // INFS_UARCH_SYSTEM_HH
