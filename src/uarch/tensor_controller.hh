/**
 * @file
 * Tensor controller model (TCcore + TCL3, §5.2): executes a lowered
 * in-memory program, charging per-bank occupancy, H-tree and NoC traffic
 * for inter-tile shifts, synchronization barriers, and energy.
 */

#ifndef INFS_UARCH_TENSOR_CONTROLLER_HH
#define INFS_UARCH_TENSOR_CONTROLLER_HH

#include <vector>

#include "energy/energy.hh"
#include "jit/commands.hh"
#include "jit/tiling.hh"
#include "mem/address_map.hh"
#include "noc/mesh.hh"
#include "sim/config.hh"
#include "sim/thread_pool.hh"

namespace infs {

class FaultInjector;

/** Aggregate result of executing one in-memory program. */
struct InMemExecResult {
    Tick cycles = 0;           ///< Region makespan.
    Tick computeCycles = 0;    ///< Bit-serial compute occupancy (max bank).
    Tick moveCycles = 0;       ///< Shift/broadcast occupancy (max bank).
    Tick syncCycles = 0;       ///< Barrier waiting.
    std::uint64_t inMemOps = 0;        ///< Element ops done in bitlines.
    double intraTileBytes = 0.0;       ///< Moved within SRAM arrays.
    double interTileBytes = 0.0;       ///< Moved across tiles (H tree).
    double interTileNocBytes = 0.0;    ///< Of which crossed the NoC.
    std::uint64_t faultsInjected = 0;  ///< Faults hit during this region.
    std::uint64_t faultsDetected = 0;  ///< Caught by parity/ECC.
    std::uint64_t faultRetries = 0;    ///< Bounded re-issues performed.
    Tick retryCycles = 0;              ///< Detect + re-issue time added.
    /** A fault persisted past the retry budget: the region's in-memory
     * attempt was abandoned and the caller must degrade it. */
    bool failed = false;
    /** Per-bank busy ticks at region end (repeat-scaled). Deterministic —
     * the fat-binary dispatcher folds these into its observed occupancy
     * (DESIGN.md §14). */
    std::vector<Tick> bankBusy;
};

/** Executes in-memory command programs against the system model. */
class TensorController
{
  public:
    TensorController(const SystemConfig &cfg, MeshNoc &noc,
                     const AddressMap &map, EnergyAccount &energy,
                     FaultInjector *fault = nullptr)
        : cfg_(cfg), noc_(noc), map_(map), energy_(energy), fault_(fault)
    {
    }

    /**
     * Execute @p prog over @p layout. Commands are synchronous per bank;
     * sync commands are global barriers (§4.2).
     * @param core The configuring core tile (barrier coordination).
     * @param repeat Execute the program this many times back to back
     * (iterative regions reusing memoized commands); cycles, traffic, and
     * energy all scale.
     */
    InMemExecResult execute(const InMemProgram &prog,
                            const TiledLayout &layout, BankId core,
                            std::uint64_t repeat = 1);

    /**
     * Attach a host thread pool (nullptr = inline). The per-command pure
     * geometry — masked-element counts, intersecting-tile counts, NoC hop
     * averages — is precomputed bank-parallel; the timing fold itself
     * stays sequential, so results are bit-identical for any pool size
     * (DESIGN.md §10).
     */
    void setThreadPool(ThreadPool *pool) { pool_ = pool; }

  private:
    /** Elements of @p cmd's tensor selected by its shift mask. */
    std::uint64_t maskedElements(const InMemCommand &cmd,
                                 const TiledLayout &layout) const;

    /** Pure per-command geometry, computable out of order. */
    struct CmdEffect {
        std::uint64_t elems = 0; ///< maskedElements(cmd).
        double tiles = 0.0;      ///< countTilesIntersecting(cmd.tensor).
        double hops = 0.0;       ///< Mean bank->dest hops (InterShift).
    };

    /** Compute every command's CmdEffect (parallel when pool attached). */
    std::vector<CmdEffect> computeEffects(const InMemProgram &prog,
                                          const TiledLayout &layout) const;

    SystemConfig cfg_;
    MeshNoc &noc_;
    const AddressMap &map_;
    EnergyAccount &energy_;
    FaultInjector *fault_ = nullptr;
    ThreadPool *pool_ = nullptr;
    LatencyTable lat_;
};

} // namespace infs

#endif // INFS_UARCH_TENSOR_CONTROLLER_HH
