/**
 * @file
 * Bit-accurate fabric: executes JIT-lowered in-memory programs on real
 * ComputeSram arrays (one per tile), performing the genuine bit-serial
 * arithmetic and H-tree data movement. This is the end-to-end functional
 * validation path for Alg. 1 + Alg. 2 — results are cross-checked against
 * the tDFG interpreter in tests. It models function, not time (the
 * TensorController owns timing).
 *
 * Execution is bank-parallel on the host (DESIGN.md §10): tiles are
 * independent SRAM arrays, so per-tile work inside one command fans out
 * across a thread pool, and whole commands between two Sync barriers run
 * concurrently when their touched-tile sets are disjoint (lane
 * partitioning — the simulator-side mirror of the hardware's 64
 * independent banks). Results are bit-identical for every pool size.
 */

#ifndef INFS_UARCH_BIT_EXEC_HH
#define INFS_UARCH_BIT_EXEC_HH

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "bitserial/compute_sram.hh"
#include "jit/commands.hh"
#include "jit/tiling.hh"
#include "sim/thread_pool.hh"

namespace infs {

class FaultInjector;

/**
 * Host-side execution counters for one fabric: per-command-kind counts and
 * wall time (the CI regression-triage breakdown) plus tile-mask cache
 * effectiveness. Wall time is summed across concurrently executing lanes,
 * so it is CPU time spent in each kind, not elapsed time.
 */
struct FabricStats {
    struct Kind {
        std::uint64_t count = 0;
        double wallMs = 0.0;
    };
    /** Indexed by static_cast<size_t>(CmdKind). */
    std::array<Kind, 6> byKind{};
    std::uint64_t maskCacheHits = 0;
    std::uint64_t maskCacheMisses = 0;
    /** Scratch-row pool allocations summed across tiles (steady-state
     * programs reuse pooled rows, so this stays flat after warmup). */
    std::uint64_t scratchAllocs = 0;

    /**
     * Deterministic per-bank-group occupancy: work units (per-tile command
     * visits) folded into kBankSlots groups by tile index. Unlike wallMs
     * this is a pure function of the command stream, so the fat-binary
     * dispatcher may consume it without breaking reproducibility
     * (DESIGN.md §14).
     */
    static constexpr unsigned kBankSlots = 64;
    std::array<std::uint64_t, kBankSlots> bankOps{};

    /** Occupancy imbalance over the active bank groups: max/mean - 1;
     * 0 when balanced or when nothing executed yet. */
    double
    occupancyImbalance() const
    {
        std::uint64_t total = 0, mx = 0;
        unsigned used = 0;
        for (std::uint64_t v : bankOps) {
            if (v == 0)
                continue;
            total += v;
            if (v > mx)
                mx = v;
            ++used;
        }
        if (used == 0)
            return 0.0;
        return static_cast<double>(mx) * used / static_cast<double>(total) -
               1.0;
    }
};

/** One compute SRAM per tile of a tiled layout, plus command execution. */
class BitAccurateFabric
{
  public:
    /**
     * @param layout The tiled transposed layout (tile volume must not
     * exceed @p bitlines).
     */
    BitAccurateFabric(TiledLayout layout, unsigned wordlines = 256,
                      unsigned bitlines = 256);

    const TiledLayout &layout() const { return layout_; }

    /**
     * Transpose a dense array (lattice-anchored, dim 0 innermost) into
     * the fabric at wordline slot @p wl.
     */
    void loadArray(std::span<const float> data, unsigned wl);

    /** Inverse of loadArray: read the fabric back to a dense array. */
    void storeArray(std::span<float> data, unsigned wl) const;

    /** Read a single lattice element from slot @p wl. */
    float element(const std::vector<Coord> &pt, unsigned wl) const;

    /**
     * Execute every command of @p prog, bank-parallel when a thread pool
     * is attached. Between two Sync barriers, commands whose touched-tile
     * sets are disjoint execute concurrently (each lane in program
     * order); per-tile work inside a command fans out as well. Fault
     * sampling is hoisted into a sequential pre-pass in program order, so
     * the injected schedule — and therefore the result and every counter
     * — is identical for any pool size.
     */
    void execute(const InMemProgram &prog);

    /** Execute one command (inline, legacy single-command entry). */
    void executeCommand(const InMemCommand &cmd);

    /** Direct access for tests. */
    ComputeSram &tile(std::int64_t t);

    /**
     * Attach a fault injector (nullptr detaches). Compute commands then
     * sample SRAM wordline bit flips: the flip lands in the command's
     * destination slot, row parity detects it, and the repair path
     * restores the corrupted element — so execution stays functionally
     * correct under injected faults (asserted against the tDFG
     * interpreter in tests).
     */
    void attachFaultInjector(FaultInjector *f) { fault_ = f; }

    /** Attach a host thread pool (nullptr = inline execution). */
    void setThreadPool(ThreadPool *pool) { pool_ = pool; }

    /**
     * Debug-mode precondition check (DESIGN.md §10): before running a
     * sync segment's lanes concurrently, re-verify that the lanes'
     * touched-tile sets really are disjoint — the same invariant the
     * PR-2 command hazard analyzer proves at lowering time. Aborts on
     * violation; off by default (the analyzer already gates JIT output
     * when SystemConfig::verifyLevel == Full).
     */
    void setHazardCheck(bool on) { hazardCheck_ = on; }

    /** Tiles (lattice rects intersected, shift targets, broadcast
     * destinations) command @p cmd reads or writes. Sorted, unique. */
    std::vector<std::int64_t> touchedTiles(const InMemCommand &cmd) const;

    /** Snapshot of the per-command-kind counters and cache stats. */
    FabricStats stats() const;
    void resetStats();

    /**
     * Per-tile bitline mask of cmd.tensor cells (shift-mask aware).
     * Memoized: keyed by (tile, tensor bounds, positional window), built
     * word-level on first use, served from a sharded thread-safe cache
     * afterwards (same discipline as the JIT lowering memo). The layout
     * is immutable after construction, so entries never go stale; the
     * returned reference is stable for the fabric's lifetime.
     */
    const BitRow &tileMask(const InMemCommand &cmd, std::int64_t t,
                           bool apply_shift_mask) const;

    /** Fresh, uncached build of the same mask (differential tests). */
    BitRow tileMaskUncached(const InMemCommand &cmd, std::int64_t t,
                            bool apply_shift_mask) const;

  private:
    /** Deterministically pre-sampled SRAM upset for one command. */
    struct PlannedFault {
        std::size_t cmdIndex;
        std::int64_t tile;
        unsigned wl;
        unsigned bl;
    };

    /** Apply one pre-sampled upset: flip, detect via parity, repair. */
    void applyFault(const InMemCommand &cmd, const PlannedFault &pf);
    /** Sample (legacy inline path) and apply an upset for @p cmd. */
    void injectAndRepair(const InMemCommand &cmd);
    /** Execute @p cmd's state update without fault hooks. */
    void executeNoFault(const InMemCommand &cmd);
    /** Run commands [lo, hi) of @p prog as one sync segment. */
    void executeSegment(const InMemProgram &prog, std::size_t lo,
                        std::size_t hi,
                        const std::vector<const PlannedFault *> &faults);
    /** Bitline index delta for a unit step along @p dim inside a tile. */
    std::int64_t strideInTile(unsigned dim) const;

    /** Word-level mask construction backing tileMask (setRange runs over
     * the innermost contiguous dimension). */
    BitRow buildTileMask(const InMemCommand &cmd, std::int64_t t,
                         bool apply_shift_mask) const;

    /** Allocate every tile in @p tiles (parallel loops must not race the
     * lazy allocation in tile()). */
    void ensureTiles(const std::vector<std::int64_t> &tiles);

    /**
     * emit(srcPos, dstTile, dstPos, len, fill) for one coalesced run.
     * fill == false: @p len consecutive source elements starting at
     * srcPos land at dstPos. fill == true: the single source element at
     * srcPos replicates across @p len consecutive destinations (the
     * H tree's one-to-many mode, scattered as word-level range fills).
     */
    using MoveRunFn = std::function<void(unsigned, std::int64_t, unsigned,
                                         unsigned, bool)>;

    /**
     * Enumerate the maximal coalesced runs of a tile-clipped part moved
     * by @p dist along @p dim: each run is contiguous in source bitlines
     * (dim 0 is innermost) and lands contiguously in exactly one
     * destination tile. @p window applies the Alg. 2 positional shift
     * mask [maskLo, maskHi); destinations outside the array shape along
     * @p dim are discarded (§3.2).
     */
    void forEachMoveRun(const HyperRect &part, unsigned dim, bool window,
                        Coord maskLo, Coord maskHi, Coord dist,
                        const MoveRunFn &fn) const;

    /** Broadcast special case (dim 0, unit span): per outer coordinate
     * the bcCount replicas of one source element tile a contiguous dim-0
     * destination run — emit fill runs split at tile boundaries. */
    void forEachFillRun(const HyperRect &part, Coord bcDist, Coord bcCount,
                        const MoveRunFn &fn) const;

    /** Generic broadcast enumeration: all bcCount replica moves of a
     * tile-clipped part in ONE odometer pass (the per-replica loop sits
     * inside, so scratch vectors are built once per part, not once per
     * replica — broadcasts have bcCount in the thousands). */
    void forEachBroadcastRun(const HyperRect &part, unsigned dim,
                             Coord span, Coord bcDist, Coord bcCount,
                             const MoveRunFn &fn) const;

    /**
     * Batched gather/scatter of whole bitline word-spans between tiles
     * (replaces the per-element PendingWrite path). @p enumerate is
     * called once per source tile with that tile's clipped part and an
     * emit callback; staged segment bits flow through per-source-tile
     * arenas so overlapping source/destination slots stay safe and both
     * phases fan out across the pool.
     */
    void moveRuns(const std::vector<std::int64_t> &src_tiles,
                  const HyperRect &clipped, unsigned bits, unsigned wl_src,
                  unsigned wl_dst,
                  const std::function<void(const HyperRect &,
                                           const MoveRunFn &)> &enumerate);

    void execCompute(const InMemCommand &cmd);
    void execIntraShift(const InMemCommand &cmd);
    void execInterShift(const InMemCommand &cmd);
    void execBroadcast(const InMemCommand &cmd);
    void execBroadcastVal(const InMemCommand &cmd);

    /** parallelFor over @p tiles when a pool is attached, else inline. */
    void forEachTile(const std::vector<std::int64_t> &tiles,
                     const std::function<void(std::int64_t)> &fn);

    /** Everything that identifies one memoized tile mask. */
    struct MaskKey {
        std::int64_t tile = 0;
        bool positional = false;
        unsigned dim = 0;
        Coord maskLo = 0;
        Coord maskHi = 0;
        std::vector<Coord> lo; ///< cmd.tensor bounds (clip is derived).
        std::vector<Coord> hi;

        bool operator==(const MaskKey &o) const = default;
    };

    struct MaskKeyHash {
        std::size_t operator()(const MaskKey &k) const;
    };

    /** Sharded cache (the PR 3 JIT-memo discipline: hash-picked shard,
     * per-shard lock, node-stable entries). */
    static constexpr std::size_t kMaskShards = 16;
    struct MaskShard {
        std::mutex mu;
        std::unordered_map<MaskKey, BitRow, MaskKeyHash> map;
    };

    TiledLayout layout_;
    unsigned wordlines_;
    unsigned bitlines_;
    /** Hoisted HyperRect::array(layout_.shape()) — one per fabric, not
     * one per command execution. */
    HyperRect arrayRect_;
    FaultInjector *fault_ = nullptr;
    ThreadPool *pool_ = nullptr;
    bool hazardCheck_ = false;
    // Lazily allocated tiles (large layouts touch few in tests).
    mutable std::vector<std::unique_ptr<ComputeSram>> tiles_;

    mutable std::array<MaskShard, kMaskShards> maskShards_;
    mutable std::atomic<std::uint64_t> maskHits_{0};
    mutable std::atomic<std::uint64_t> maskMisses_{0};
    mutable std::array<std::atomic<std::uint64_t>, 6> kindCount_{};
    mutable std::array<std::atomic<std::uint64_t>, 6> kindNanos_{};
    /** Per-bank-group work-unit counters (FabricStats::bankOps). */
    std::array<std::atomic<std::uint64_t>, FabricStats::kBankSlots>
        bankOps_{};
    /** Scratch-alloc total at the last resetStats() (snapshots report the
     * delta; tiles never reset their own counters). */
    std::uint64_t scratchBase_ = 0;
};

} // namespace infs

#endif // INFS_UARCH_BIT_EXEC_HH
