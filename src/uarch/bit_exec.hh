/**
 * @file
 * Bit-accurate fabric: executes JIT-lowered in-memory programs on real
 * ComputeSram arrays (one per tile), performing the genuine bit-serial
 * arithmetic and H-tree data movement. This is the end-to-end functional
 * validation path for Alg. 1 + Alg. 2 — results are cross-checked against
 * the tDFG interpreter in tests. It models function, not time (the
 * TensorController owns timing).
 */

#ifndef INFS_UARCH_BIT_EXEC_HH
#define INFS_UARCH_BIT_EXEC_HH

#include <memory>
#include <span>
#include <vector>

#include "bitserial/compute_sram.hh"
#include "jit/commands.hh"
#include "jit/tiling.hh"

namespace infs {

class FaultInjector;

/** One compute SRAM per tile of a tiled layout, plus command execution. */
class BitAccurateFabric
{
  public:
    /**
     * @param layout The tiled transposed layout (tile volume must not
     * exceed @p bitlines).
     */
    BitAccurateFabric(TiledLayout layout, unsigned wordlines = 256,
                      unsigned bitlines = 256);

    const TiledLayout &layout() const { return layout_; }

    /**
     * Transpose a dense array (lattice-anchored, dim 0 innermost) into
     * the fabric at wordline slot @p wl.
     */
    void loadArray(std::span<const float> data, unsigned wl);

    /** Inverse of loadArray: read the fabric back to a dense array. */
    void storeArray(std::span<float> data, unsigned wl) const;

    /** Read a single lattice element from slot @p wl. */
    float element(const std::vector<Coord> &pt, unsigned wl) const;

    /** Execute every command of @p prog in order (functionally). */
    void execute(const InMemProgram &prog);

    /** Execute one command. */
    void executeCommand(const InMemCommand &cmd);

    /** Direct access for tests. */
    ComputeSram &tile(std::int64_t t);

    /**
     * Attach a fault injector (nullptr detaches). Compute commands then
     * sample SRAM wordline bit flips: the flip lands in the command's
     * destination slot, row parity detects it, and the repair path
     * restores the corrupted element — so execution stays functionally
     * correct under injected faults (asserted against the tDFG
     * interpreter in tests).
     */
    void attachFaultInjector(FaultInjector *f) { fault_ = f; }

  private:
    /** Inject one bit flip into @p cmd's destination, detect, repair. */
    void injectAndRepair(const InMemCommand &cmd);
    /** Bitline index delta for a unit step along @p dim inside a tile. */
    std::int64_t strideInTile(unsigned dim) const;

    /** Per-tile bitline mask of cmd.tensor cells (shift-mask aware). */
    BitRow tileMask(const InMemCommand &cmd, std::int64_t t,
                    bool apply_shift_mask) const;

    void execCompute(const InMemCommand &cmd);
    void execIntraShift(const InMemCommand &cmd);
    void execInterShift(const InMemCommand &cmd);
    void execBroadcast(const InMemCommand &cmd);

    TiledLayout layout_;
    unsigned wordlines_;
    unsigned bitlines_;
    FaultInjector *fault_ = nullptr;
    // Lazily allocated tiles (large layouts touch few in tests).
    mutable std::vector<std::unique_ptr<ComputeSram>> tiles_;
};

} // namespace infs

#endif // INFS_UARCH_BIT_EXEC_HH
