/**
 * @file
 * Bit-accurate fabric: executes JIT-lowered in-memory programs on real
 * ComputeSram arrays (one per tile), performing the genuine bit-serial
 * arithmetic and H-tree data movement. This is the end-to-end functional
 * validation path for Alg. 1 + Alg. 2 — results are cross-checked against
 * the tDFG interpreter in tests. It models function, not time (the
 * TensorController owns timing).
 *
 * Execution is bank-parallel on the host (DESIGN.md §10): tiles are
 * independent SRAM arrays, so per-tile work inside one command fans out
 * across a thread pool, and whole commands between two Sync barriers run
 * concurrently when their touched-tile sets are disjoint (lane
 * partitioning — the simulator-side mirror of the hardware's 64
 * independent banks). Results are bit-identical for every pool size.
 */

#ifndef INFS_UARCH_BIT_EXEC_HH
#define INFS_UARCH_BIT_EXEC_HH

#include <memory>
#include <span>
#include <vector>

#include "bitserial/compute_sram.hh"
#include "jit/commands.hh"
#include "jit/tiling.hh"
#include "sim/thread_pool.hh"

namespace infs {

class FaultInjector;

/** One compute SRAM per tile of a tiled layout, plus command execution. */
class BitAccurateFabric
{
  public:
    /**
     * @param layout The tiled transposed layout (tile volume must not
     * exceed @p bitlines).
     */
    BitAccurateFabric(TiledLayout layout, unsigned wordlines = 256,
                      unsigned bitlines = 256);

    const TiledLayout &layout() const { return layout_; }

    /**
     * Transpose a dense array (lattice-anchored, dim 0 innermost) into
     * the fabric at wordline slot @p wl.
     */
    void loadArray(std::span<const float> data, unsigned wl);

    /** Inverse of loadArray: read the fabric back to a dense array. */
    void storeArray(std::span<float> data, unsigned wl) const;

    /** Read a single lattice element from slot @p wl. */
    float element(const std::vector<Coord> &pt, unsigned wl) const;

    /**
     * Execute every command of @p prog, bank-parallel when a thread pool
     * is attached. Between two Sync barriers, commands whose touched-tile
     * sets are disjoint execute concurrently (each lane in program
     * order); per-tile work inside a command fans out as well. Fault
     * sampling is hoisted into a sequential pre-pass in program order, so
     * the injected schedule — and therefore the result and every counter
     * — is identical for any pool size.
     */
    void execute(const InMemProgram &prog);

    /** Execute one command (inline, legacy single-command entry). */
    void executeCommand(const InMemCommand &cmd);

    /** Direct access for tests. */
    ComputeSram &tile(std::int64_t t);

    /**
     * Attach a fault injector (nullptr detaches). Compute commands then
     * sample SRAM wordline bit flips: the flip lands in the command's
     * destination slot, row parity detects it, and the repair path
     * restores the corrupted element — so execution stays functionally
     * correct under injected faults (asserted against the tDFG
     * interpreter in tests).
     */
    void attachFaultInjector(FaultInjector *f) { fault_ = f; }

    /** Attach a host thread pool (nullptr = inline execution). */
    void setThreadPool(ThreadPool *pool) { pool_ = pool; }

    /**
     * Debug-mode precondition check (DESIGN.md §10): before running a
     * sync segment's lanes concurrently, re-verify that the lanes'
     * touched-tile sets really are disjoint — the same invariant the
     * PR-2 command hazard analyzer proves at lowering time. Aborts on
     * violation; off by default (the analyzer already gates JIT output
     * when SystemConfig::verifyLevel == Full).
     */
    void setHazardCheck(bool on) { hazardCheck_ = on; }

    /** Tiles (lattice rects intersected, shift targets, broadcast
     * destinations) command @p cmd reads or writes. Sorted, unique. */
    std::vector<std::int64_t> touchedTiles(const InMemCommand &cmd) const;

  private:
    /** Deterministically pre-sampled SRAM upset for one command. */
    struct PlannedFault {
        std::size_t cmdIndex;
        std::int64_t tile;
        unsigned wl;
        unsigned bl;
    };

    /** Apply one pre-sampled upset: flip, detect via parity, repair. */
    void applyFault(const InMemCommand &cmd, const PlannedFault &pf);
    /** Sample (legacy inline path) and apply an upset for @p cmd. */
    void injectAndRepair(const InMemCommand &cmd);
    /** Execute @p cmd's state update without fault hooks. */
    void executeNoFault(const InMemCommand &cmd);
    /** Run commands [lo, hi) of @p prog as one sync segment. */
    void executeSegment(const InMemProgram &prog, std::size_t lo,
                        std::size_t hi,
                        const std::vector<const PlannedFault *> &faults);
    /** Bitline index delta for a unit step along @p dim inside a tile. */
    std::int64_t strideInTile(unsigned dim) const;

    /** Per-tile bitline mask of cmd.tensor cells (shift-mask aware). */
    BitRow tileMask(const InMemCommand &cmd, std::int64_t t,
                    bool apply_shift_mask) const;

    /** Allocate every tile in @p tiles (parallel loops must not race the
     * lazy allocation in tile()). */
    void ensureTiles(const std::vector<std::int64_t> &tiles);

    void execCompute(const InMemCommand &cmd);
    void execIntraShift(const InMemCommand &cmd);
    void execInterShift(const InMemCommand &cmd);
    void execBroadcast(const InMemCommand &cmd);
    void execBroadcastVal(const InMemCommand &cmd);

    /** parallelFor over @p tiles when a pool is attached, else inline. */
    void forEachTile(const std::vector<std::int64_t> &tiles,
                     const std::function<void(std::int64_t)> &fn);

    TiledLayout layout_;
    unsigned wordlines_;
    unsigned bitlines_;
    FaultInjector *fault_ = nullptr;
    ThreadPool *pool_ = nullptr;
    bool hazardCheck_ = false;
    // Lazily allocated tiles (large layouts touch few in tests).
    mutable std::vector<std::unique_ptr<ComputeSram>> tiles_;
};

} // namespace infs

#endif // INFS_UARCH_BIT_EXEC_HH
