#include "uarch/bit_exec.hh"

#include <bit>

#include "sim/fault.hh"
#include "tdfg/interp.hh"

namespace infs {

BitAccurateFabric::BitAccurateFabric(TiledLayout layout, unsigned wordlines,
                                     unsigned bitlines)
    : layout_(std::move(layout)), wordlines_(wordlines), bitlines_(bitlines)
{
    infs_assert(layout_.tileVolume() <= static_cast<std::int64_t>(bitlines),
                "tile volume %lld exceeds %u bitlines",
                static_cast<long long>(layout_.tileVolume()), bitlines);
    tiles_.resize(static_cast<std::size_t>(layout_.numTiles()));
}

ComputeSram &
BitAccurateFabric::tile(std::int64_t t)
{
    infs_assert(t >= 0 && t < layout_.numTiles(), "tile %lld out of range",
                static_cast<long long>(t));
    auto &p = tiles_[static_cast<std::size_t>(t)];
    if (!p)
        p = std::make_unique<ComputeSram>(wordlines_, bitlines_);
    return *p;
}

std::int64_t
BitAccurateFabric::strideInTile(unsigned dim) const
{
    std::int64_t s = 1;
    for (unsigned d = 0; d < dim; ++d)
        s *= layout_.tile()[d];
    return s;
}

void
BitAccurateFabric::loadArray(std::span<const float> data, unsigned wl)
{
    HyperRect rect = HyperRect::array(layout_.shape());
    std::size_t i = 0;
    for (RectIter it(rect); !it.done(); it.next(), ++i) {
        ComputeSram &s = tile(layout_.tileOf(*it));
        s.writeFloat(
            static_cast<unsigned>(layout_.positionInTile(*it)), wl,
            data[i]);
    }
    infs_assert(i == data.size(), "array size mismatch");
}

void
BitAccurateFabric::storeArray(std::span<float> data, unsigned wl) const
{
    HyperRect rect = HyperRect::array(layout_.shape());
    std::size_t i = 0;
    auto *self = const_cast<BitAccurateFabric *>(this);
    for (RectIter it(rect); !it.done(); it.next(), ++i) {
        ComputeSram &s = self->tile(layout_.tileOf(*it));
        data[i] = s.readFloat(
            static_cast<unsigned>(layout_.positionInTile(*it)), wl);
    }
}

float
BitAccurateFabric::element(const std::vector<Coord> &pt, unsigned wl) const
{
    auto *self = const_cast<BitAccurateFabric *>(this);
    ComputeSram &s = self->tile(layout_.tileOf(pt));
    return s.readFloat(static_cast<unsigned>(layout_.positionInTile(pt)),
                       wl);
}

BitRow
BitAccurateFabric::tileMask(const InMemCommand &cmd, std::int64_t t,
                            bool apply_shift_mask) const
{
    BitRow mask(bitlines_);
    HyperRect clipped =
        cmd.tensor.intersect(HyperRect::array(layout_.shape()));
    for (RectIter it(clipped); !it.done(); it.next()) {
        if (layout_.tileOf(*it) != t)
            continue;
        if (apply_shift_mask) {
            Coord tile_k = layout_.tile()[cmd.dim];
            Coord pos = (((*it)[cmd.dim] % tile_k) + tile_k) % tile_k;
            if (pos < cmd.maskLo || pos >= cmd.maskHi)
                continue;
        }
        mask.set(static_cast<unsigned>(layout_.positionInTile(*it)), true);
    }
    return mask;
}

void
BitAccurateFabric::execCompute(const InMemCommand &cmd)
{
    const bool positional = cmd.maskHi > cmd.maskLo;
    for (std::int64_t t : layout_.tilesIntersecting(cmd.tensor)) {
        BitRow mask = tileMask(cmd, t, positional);
        if (!mask.any())
            continue;
        ComputeSram &s = tile(t);
        if (cmd.useImm) {
            s.execBinaryImm(cmd.op, cmd.dtype, cmd.wlA,
                            std::bit_cast<std::uint32_t>(
                                static_cast<float>(cmd.imm)),
                            cmd.wlDst, mask);
        } else if (cmd.wlA == cmd.wlB) {
            // Unary encoding (e.g. relu, copy) or self-binary (x*x).
            if (cmd.op == BitOp::Relu || cmd.op == BitOp::Copy)
                s.execUnary(cmd.op, cmd.dtype, cmd.wlA, cmd.wlDst, mask);
            else
                s.execBinary(cmd.op, cmd.dtype, cmd.wlA, cmd.wlB,
                             cmd.wlDst, mask);
        } else {
            s.execBinary(cmd.op, cmd.dtype, cmd.wlA, cmd.wlB, cmd.wlDst,
                         mask);
        }
    }
}

void
BitAccurateFabric::execIntraShift(const InMemCommand &cmd)
{
    const std::int64_t stride = strideInTile(cmd.dim);
    const int delta =
        static_cast<int>(cmd.intraTileDist * stride);
    for (std::int64_t t : layout_.tilesIntersecting(cmd.tensor)) {
        BitRow mask = tileMask(cmd, t, true);
        if (!mask.any())
            continue;
        tile(t).shift(cmd.dtype, cmd.wlA, cmd.wlDst, delta, mask);
    }
}

void
BitAccurateFabric::execInterShift(const InMemCommand &cmd)
{
    // Elements cross tiles: per covered cell, compute the destination
    // lattice coordinate and copy the element bits (the packed H-tree /
    // NoC transfer, functionally).
    const Coord tile_k = layout_.tile()[cmd.dim];
    const Coord dist = cmd.interTileDist * tile_k + cmd.intraTileDist;
    HyperRect clipped =
        cmd.tensor.intersect(HyperRect::array(layout_.shape()));
    // Gather then scatter so overlapping source/dest slots are safe.
    std::vector<std::pair<std::vector<Coord>, std::uint64_t>> moves;
    for (RectIter it(clipped); !it.done(); it.next()) {
        Coord pos = ((((*it)[cmd.dim]) % tile_k) + tile_k) % tile_k;
        if (pos < cmd.maskLo || pos >= cmd.maskHi)
            continue;
        std::vector<Coord> dst = *it;
        dst[cmd.dim] += dist;
        if (dst[cmd.dim] < 0 ||
            dst[cmd.dim] >= layout_.shape()[cmd.dim])
            continue; // Discarded outside the bounding rect (§3.2).
        ComputeSram &s = tile(layout_.tileOf(*it));
        std::uint64_t bits = s.readElement(
            static_cast<unsigned>(layout_.positionInTile(*it)), cmd.wlA,
            cmd.dtype);
        moves.emplace_back(std::move(dst), bits);
    }
    for (auto &[dst, bits] : moves) {
        ComputeSram &s = tile(layout_.tileOf(dst));
        s.writeElement(static_cast<unsigned>(layout_.positionInTile(dst)),
                       cmd.wlDst, cmd.dtype, bits);
    }
}

void
BitAccurateFabric::execBroadcast(const InMemCommand &cmd)
{
    // Replicate the source subtensor bcCount times along dim with offset
    // bcDist (Fig 5 semantics), across tiles.
    HyperRect src =
        cmd.tensor.intersect(HyperRect::array(layout_.shape()));
    const Coord span = cmd.tensor.size(cmd.dim);
    for (RectIter it(src); !it.done(); it.next()) {
        ComputeSram &s = tile(layout_.tileOf(*it));
        std::uint64_t bits = s.readElement(
            static_cast<unsigned>(layout_.positionInTile(*it)), cmd.wlA,
            cmd.dtype);
        for (Coord j = 0; j < cmd.bcCount; ++j) {
            std::vector<Coord> dst = *it;
            dst[cmd.dim] += cmd.bcDist + j * span;
            if (dst[cmd.dim] < 0 ||
                dst[cmd.dim] >= layout_.shape()[cmd.dim])
                continue;
            ComputeSram &d = tile(layout_.tileOf(dst));
            d.writeElement(
                static_cast<unsigned>(layout_.positionInTile(dst)),
                cmd.wlDst, cmd.dtype, bits);
        }
    }
}

void
BitAccurateFabric::injectAndRepair(const InMemCommand &cmd)
{
    auto touched = layout_.tilesIntersecting(cmd.tensor);
    if (touched.empty())
        return;
    const unsigned bits = dtypeBits(cmd.dtype);
    // Pick the upset site from the SRAM stream: tile, wordline within the
    // destination slot, bitline.
    std::int64_t t =
        touched[fault_->draw(FaultDomain::Sram, touched.size())];
    unsigned wl = cmd.wlDst + static_cast<unsigned>(
                                  fault_->draw(FaultDomain::Sram, bits));
    unsigned bl = static_cast<unsigned>(
        fault_->draw(FaultDomain::Sram, bitlines_));
    ComputeSram &s = tile(t);
    const bool parity_before = s.rowParity(wl);
    const std::uint64_t good = s.readElement(bl, cmd.wlDst, cmd.dtype);
    s.flipBit(wl, bl);
    // Row parity flips on any single-bit upset — detection is certain.
    infs_assert(s.rowParity(wl) != parity_before,
                "single-bit flip must flip row parity");
    fault_->recordDetection();
    // Repair: rewrite the corrupted element (ECC correction / re-read of
    // the known-good operand) and charge one retry.
    s.writeElement(bl, cmd.wlDst, cmd.dtype, good);
    fault_->recordRetry();
}

void
BitAccurateFabric::executeCommand(const InMemCommand &cmd)
{
    switch (cmd.kind) {
      case CmdKind::Compute:
        execCompute(cmd);
        if (fault_ && fault_->sampleSramFlip())
            injectAndRepair(cmd);
        break;
      case CmdKind::IntraShift:
        execIntraShift(cmd);
        break;
      case CmdKind::InterShift:
        execInterShift(cmd);
        break;
      case CmdKind::BroadcastBl:
        execBroadcast(cmd);
        break;
      case CmdKind::BroadcastVal: {
        for (std::int64_t t = 0; t < layout_.numTiles(); ++t) {
            ComputeSram &s = tile(t);
            s.writeImmediate(cmd.dtype,
                             std::bit_cast<std::uint32_t>(
                                 static_cast<float>(cmd.imm)),
                             cmd.wlDst, s.fullMask());
        }
        break;
      }
      case CmdKind::Sync:
        break; // Ordering only; execution here is already sequential.
    }
}

void
BitAccurateFabric::execute(const InMemProgram &prog)
{
    for (const InMemCommand &cmd : prog.commands)
        executeCommand(cmd);
}

} // namespace infs
