#include "uarch/bit_exec.hh"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>
#include <unordered_map>

#include "bitserial/simd.hh"
#include "sim/fault.hh"
#include "tdfg/interp.hh"

namespace infs {

BitAccurateFabric::BitAccurateFabric(TiledLayout layout, unsigned wordlines,
                                     unsigned bitlines)
    : layout_(std::move(layout)), wordlines_(wordlines), bitlines_(bitlines),
      arrayRect_(HyperRect::array(layout_.shape()))
{
    infs_assert(layout_.tileVolume() <= static_cast<std::int64_t>(bitlines),
                "tile volume %lld exceeds %u bitlines",
                static_cast<long long>(layout_.tileVolume()), bitlines);
    tiles_.resize(static_cast<std::size_t>(layout_.numTiles()));
}

FabricStats
BitAccurateFabric::stats() const
{
    FabricStats s;
    for (std::size_t k = 0; k < s.byKind.size(); ++k) {
        s.byKind[k].count = kindCount_[k].load(std::memory_order_relaxed);
        s.byKind[k].wallMs =
            static_cast<double>(
                kindNanos_[k].load(std::memory_order_relaxed)) /
            1e6;
    }
    s.maskCacheHits = maskHits_.load(std::memory_order_relaxed);
    s.maskCacheMisses = maskMisses_.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < s.bankOps.size(); ++b)
        s.bankOps[b] = bankOps_[b].load(std::memory_order_relaxed);
    std::uint64_t scratch = 0;
    for (const auto &t : tiles_)
        if (t)
            scratch += t->scratchAllocs();
    s.scratchAllocs = scratch - scratchBase_;
    return s;
}

void
BitAccurateFabric::resetStats()
{
    for (std::size_t k = 0; k < kindCount_.size(); ++k) {
        kindCount_[k].store(0, std::memory_order_relaxed);
        kindNanos_[k].store(0, std::memory_order_relaxed);
    }
    maskHits_.store(0, std::memory_order_relaxed);
    maskMisses_.store(0, std::memory_order_relaxed);
    for (auto &b : bankOps_)
        b.store(0, std::memory_order_relaxed);
    scratchBase_ = 0;
    for (const auto &t : tiles_)
        if (t)
            scratchBase_ += t->scratchAllocs();
}

ComputeSram &
BitAccurateFabric::tile(std::int64_t t)
{
    infs_assert(t >= 0 && t < layout_.numTiles(), "tile %lld out of range",
                static_cast<long long>(t));
    auto &p = tiles_[static_cast<std::size_t>(t)];
    if (!p)
        p = std::make_unique<ComputeSram>(wordlines_, bitlines_);
    return *p;
}

void
BitAccurateFabric::ensureTiles(const std::vector<std::int64_t> &tiles)
{
    // Allocate through the pool when one is attached: with NUMA pinning
    // active, the worker that first touches a tile's SRAM pages is the
    // same worker forEachTile's deterministic chunking later hands that
    // tile to, so bank shards stay node-local (DESIGN.md §14). Callers
    // pass unique tile ids, and tiles_ is pre-sized, so concurrent slot
    // writes are disjoint.
    if (pool_ != nullptr && !pool_->inlineOnly() && tiles.size() > 1) {
        pool_->parallelFor(static_cast<std::int64_t>(tiles.size()),
                           [&](std::int64_t i) {
                               tile(tiles[static_cast<std::size_t>(i)]);
                           });
    } else {
        for (std::int64_t t : tiles)
            tile(t);
    }
}

void
BitAccurateFabric::forEachTile(const std::vector<std::int64_t> &tiles,
                               const std::function<void(std::int64_t)> &fn)
{
    // Occupancy accounting: one work unit per tile visit, folded into
    // bank groups by tile index. Pure function of the command stream.
    for (std::int64_t t : tiles)
        bankOps_[static_cast<std::size_t>(t) % FabricStats::kBankSlots]
            .fetch_add(1, std::memory_order_relaxed);
    if (pool_ != nullptr && !pool_->inlineOnly() && tiles.size() > 1) {
        pool_->parallelFor(static_cast<std::int64_t>(tiles.size()),
                           [&](std::int64_t i) {
                               fn(tiles[static_cast<std::size_t>(i)]);
                           });
    } else {
        for (std::int64_t t : tiles)
            fn(t);
    }
}

std::int64_t
BitAccurateFabric::strideInTile(unsigned dim) const
{
    std::int64_t s = 1;
    for (unsigned d = 0; d < dim; ++d)
        s *= layout_.tile()[d];
    return s;
}

void
BitAccurateFabric::loadArray(std::span<const float> data, unsigned wl)
{
    // Word-level transpose: dim 0 is innermost both in the dense array
    // and in the bitline order, so each dim-0 line maps to contiguous
    // bitline runs (split at tile boundaries). 64-element chunks are
    // bit-transposed into 32 packed words and deposited one wordline at
    // a time — one depositFrom per bit plane instead of one writeElement
    // per element.
    const auto &shape = layout_.shape();
    const auto &tsz = layout_.tile();
    const unsigned nd = static_cast<unsigned>(shape.size());
    const Coord shape0 = shape[0];
    const Coord tile0 = tsz[0];

    std::vector<std::int64_t> mult(nd);
    std::int64_t m = 1;
    for (unsigned d = 0; d < nd; ++d) {
        mult[d] = m;
        m *= tsz[d];
    }

    std::vector<Coord> pt(nd, 0), cell(nd, 0);
    std::size_t i = 0;
    std::array<std::uint64_t, 32> words;
    std::array<std::uint32_t, 64> lanes;
    const simd::SimdKernels &k = simd::active();
    for (;;) {
        std::int64_t outer = 0;
        for (unsigned d = 1; d < nd; ++d)
            outer += (pt[d] % tsz[d]) * mult[d];
        Coord c = 0;
        while (c < shape0) {
            const Coord run_end =
                std::min(shape0, (c / tile0 + 1) * tile0);
            cell.assign(pt.begin(), pt.end());
            cell[0] = c;
            BitMatrix &bm = tile(layout_.tileOf(cell)).bits();
            unsigned pos = static_cast<unsigned>(outer + c % tile0);
            while (c < run_end) {
                const unsigned clen = static_cast<unsigned>(
                    std::min<Coord>(run_end - c, 64));
                if (clen < 64)
                    lanes.fill(0);
                std::memcpy(lanes.data(), data.data() + i,
                            clen * sizeof(float));
                simd::lanesToPlanes(k, lanes.data(), words.data());
                for (unsigned b = 0; b < 32; ++b)
                    bm.row(wl + b).depositFrom(&words[b], pos, clen);
                c += clen;
                pos += clen;
                i += clen;
            }
        }
        unsigned d = 1;
        for (; d < nd; ++d) {
            if (++pt[d] < shape[d])
                break;
            pt[d] = 0;
        }
        if (d >= nd)
            break;
    }
    infs_assert(i == data.size(), "array size mismatch");
}

void
BitAccurateFabric::storeArray(std::span<float> data, unsigned wl) const
{
    // Inverse of loadArray: extract each bit plane of a chunk word-level,
    // then de-transpose into the dense array.
    const auto &shape = layout_.shape();
    const auto &tsz = layout_.tile();
    const unsigned nd = static_cast<unsigned>(shape.size());
    const Coord shape0 = shape[0];
    const Coord tile0 = tsz[0];
    auto *self = const_cast<BitAccurateFabric *>(this);

    std::vector<std::int64_t> mult(nd);
    std::int64_t m = 1;
    for (unsigned d = 0; d < nd; ++d) {
        mult[d] = m;
        m *= tsz[d];
    }

    std::vector<Coord> pt(nd, 0), cell(nd, 0);
    std::size_t i = 0;
    std::array<std::uint64_t, 32> words;
    std::array<std::uint32_t, 64> lanes;
    const simd::SimdKernels &k = simd::active();
    for (;;) {
        std::int64_t outer = 0;
        for (unsigned d = 1; d < nd; ++d)
            outer += (pt[d] % tsz[d]) * mult[d];
        Coord c = 0;
        while (c < shape0) {
            const Coord run_end =
                std::min(shape0, (c / tile0 + 1) * tile0);
            cell.assign(pt.begin(), pt.end());
            cell[0] = c;
            const BitMatrix &bm =
                self->tile(layout_.tileOf(cell)).bits();
            unsigned pos = static_cast<unsigned>(outer + c % tile0);
            while (c < run_end) {
                const unsigned clen = static_cast<unsigned>(
                    std::min<Coord>(run_end - c, 64));
                for (unsigned b = 0; b < 32; ++b)
                    bm.row(wl + b).extractTo(&words[b], pos, clen);
                simd::planesToLanes(k, words.data(), lanes.data());
                std::memcpy(data.data() + i, lanes.data(),
                            clen * sizeof(float));
                c += clen;
                pos += clen;
                i += clen;
            }
        }
        unsigned d = 1;
        for (; d < nd; ++d) {
            if (++pt[d] < shape[d])
                break;
            pt[d] = 0;
        }
        if (d >= nd)
            break;
    }
}

float
BitAccurateFabric::element(const std::vector<Coord> &pt, unsigned wl) const
{
    auto *self = const_cast<BitAccurateFabric *>(this);
    ComputeSram &s = self->tile(layout_.tileOf(pt));
    return s.readFloat(static_cast<unsigned>(layout_.positionInTile(pt)),
                       wl);
}

std::size_t
BitAccurateFabric::MaskKeyHash::operator()(const MaskKey &k) const
{
    // FNV-1a over the key fields.
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ULL;
    };
    mix(static_cast<std::uint64_t>(k.tile));
    mix(k.positional ? 1u : 0u);
    mix(k.dim);
    mix(static_cast<std::uint64_t>(k.maskLo));
    mix(static_cast<std::uint64_t>(k.maskHi));
    for (Coord c : k.lo)
        mix(static_cast<std::uint64_t>(c));
    for (Coord c : k.hi)
        mix(static_cast<std::uint64_t>(c));
    return static_cast<std::size_t>(h);
}

BitRow
BitAccurateFabric::buildTileMask(const InMemCommand &cmd, std::int64_t t,
                                 bool apply_shift_mask) const
{
    BitRow mask(bitlines_);
    // Clip to this tile's own rect so the walk is O(tile volume), not
    // O(tensor volume) — every cell visited belongs to tile t.
    HyperRect clipped =
        cmd.tensor.intersect(arrayRect_).intersect(layout_.tileRect(t));
    if (clipped.empty())
        return mask;
    const auto &tile = layout_.tile();
    const unsigned nd = clipped.dims();
    const Coord tile0 = tile[0];

    // Dim 0 is innermost: consecutive dim-0 coordinates are consecutive
    // bitlines, so per outer coordinate the selected cells form one
    // contiguous run set with a single word-level setRange. The clip lies
    // inside one tile, so pos0 = c - origin = c % tile0 and the Alg. 2
    // positional window [maskLo, maskHi) intersects the run directly.
    Coord lo0 = clipped.lo(0), hi0 = clipped.hi(0);
    if (apply_shift_mask && cmd.dim == 0) {
        const Coord origin = lo0 - lo0 % tile0;
        lo0 = std::max(lo0, origin + cmd.maskLo);
        hi0 = std::min(hi0, origin + cmd.maskHi);
        if (hi0 <= lo0)
            return mask;
    }
    const unsigned run_lo = static_cast<unsigned>(lo0 % tile0);
    const unsigned len = static_cast<unsigned>(hi0 - lo0);

    std::vector<std::int64_t> mult(nd);
    std::int64_t m = 1;
    for (unsigned d = 0; d < nd; ++d) {
        mult[d] = m;
        m *= tile[d];
    }

    // Odometer over the outer dims of the clip (dim 0 collapsed).
    std::vector<Coord> pt(nd, 0);
    for (unsigned d = 1; d < nd; ++d)
        pt[d] = clipped.lo(d);
    for (;;) {
        bool selected = true;
        if (apply_shift_mask && cmd.dim != 0) {
            const Coord pos = pt[cmd.dim] % tile[cmd.dim];
            selected = pos >= cmd.maskLo && pos < cmd.maskHi;
        }
        if (selected) {
            std::int64_t base = run_lo;
            for (unsigned d = 1; d < nd; ++d)
                base += (pt[d] % tile[d]) * mult[d];
            mask.setRange(static_cast<unsigned>(base),
                          static_cast<unsigned>(base) + len);
        }
        unsigned d = 1;
        for (; d < nd; ++d) {
            if (++pt[d] < clipped.hi(d))
                break;
            pt[d] = clipped.lo(d);
        }
        if (d >= nd)
            break;
    }
    return mask;
}

BitRow
BitAccurateFabric::tileMaskUncached(const InMemCommand &cmd, std::int64_t t,
                                    bool apply_shift_mask) const
{
    return buildTileMask(cmd, t, apply_shift_mask);
}

const BitRow &
BitAccurateFabric::tileMask(const InMemCommand &cmd, std::int64_t t,
                            bool apply_shift_mask) const
{
    MaskKey key;
    key.tile = t;
    key.positional = apply_shift_mask;
    if (apply_shift_mask) {
        key.dim = cmd.dim;
        key.maskLo = cmd.maskLo;
        key.maskHi = cmd.maskHi;
    }
    const unsigned nd = cmd.tensor.dims();
    key.lo.reserve(nd);
    key.hi.reserve(nd);
    for (unsigned d = 0; d < nd; ++d) {
        key.lo.push_back(cmd.tensor.lo(d));
        key.hi.push_back(cmd.tensor.hi(d));
    }
    MaskShard &sh = maskShards_[MaskKeyHash{}(key) % kMaskShards];
    {
        std::lock_guard<std::mutex> g(sh.mu);
        auto it = sh.map.find(key);
        if (it != sh.map.end()) {
            maskHits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    // Build outside the lock (cheap, and keeps shard contention low); a
    // racing builder loses the emplace and both return the first entry.
    maskMisses_.fetch_add(1, std::memory_order_relaxed);
    BitRow built = buildTileMask(cmd, t, apply_shift_mask);
    std::lock_guard<std::mutex> g(sh.mu);
    auto [it, inserted] = sh.map.emplace(std::move(key), std::move(built));
    return it->second;
}

void
BitAccurateFabric::execCompute(const InMemCommand &cmd)
{
    const bool positional = cmd.maskHi > cmd.maskLo;
    std::vector<std::int64_t> tiles =
        layout_.tilesIntersecting(cmd.tensor);
    ensureTiles(tiles);
    forEachTile(tiles, [&](std::int64_t t) {
        const BitRow &mask = tileMask(cmd, t, positional);
        if (!mask.any())
            return;
        ComputeSram &s = tile(t);
        if (cmd.useImm) {
            s.execBinaryImm(cmd.op, cmd.dtype, cmd.wlA,
                            std::bit_cast<std::uint32_t>(
                                static_cast<float>(cmd.imm)),
                            cmd.wlDst, mask);
        } else if (cmd.wlA == cmd.wlB) {
            // Unary encoding (e.g. relu, copy) or self-binary (x*x).
            if (cmd.op == BitOp::Relu || cmd.op == BitOp::Copy)
                s.execUnary(cmd.op, cmd.dtype, cmd.wlA, cmd.wlDst, mask);
            else
                s.execBinary(cmd.op, cmd.dtype, cmd.wlA, cmd.wlB,
                             cmd.wlDst, mask);
        } else {
            s.execBinary(cmd.op, cmd.dtype, cmd.wlA, cmd.wlB, cmd.wlDst,
                         mask);
        }
    });
}

void
BitAccurateFabric::execIntraShift(const InMemCommand &cmd)
{
    const std::int64_t stride = strideInTile(cmd.dim);
    const int delta =
        static_cast<int>(cmd.intraTileDist * stride);
    std::vector<std::int64_t> tiles =
        layout_.tilesIntersecting(cmd.tensor);
    ensureTiles(tiles);
    forEachTile(tiles, [&](std::int64_t t) {
        const BitRow &mask = tileMask(cmd, t, true);
        if (!mask.any())
            return;
        tile(t).shift(cmd.dtype, cmd.wlA, cmd.wlDst, delta, mask);
    });
}

void
BitAccurateFabric::forEachMoveRun(const HyperRect &part, unsigned dim,
                                  bool window, Coord maskLo, Coord maskHi,
                                  Coord dist, const MoveRunFn &fn) const
{
    if (part.empty())
        return;
    const auto &tile = layout_.tile();
    const unsigned nd = part.dims();
    const Coord tile0 = tile[0];
    const Coord shape_d = layout_.shape()[dim];

    // Dim-0 source run in absolute coordinates. @p part lies inside one
    // tile, so the run is one contiguous bitline span per outer
    // coordinate; when the move is along dim 0 the positional window and
    // the destination bound clip the run up front.
    Coord lo0 = part.lo(0), hi0 = part.hi(0);
    if (dim == 0) {
        if (window) {
            const Coord origin = lo0 - lo0 % tile0;
            lo0 = std::max(lo0, origin + maskLo);
            hi0 = std::min(hi0, origin + maskHi);
        }
        lo0 = std::max(lo0, -dist);
        hi0 = std::min(hi0, shape_d - dist);
        if (hi0 <= lo0)
            return;
    }

    std::vector<std::int64_t> mult(nd);
    std::int64_t m = 1;
    for (unsigned d = 0; d < nd; ++d) {
        mult[d] = m;
        m *= tile[d];
    }

    std::vector<Coord> pt(nd, 0);
    for (unsigned d = 1; d < nd; ++d)
        pt[d] = part.lo(d);
    std::vector<Coord> dst(nd, 0); // Representative destination cell.
    for (;;) {
        bool selected = true;
        Coord dst_k = 0;
        if (dim != 0) {
            // Window and destination bound act on the outer coordinate.
            const Coord pos = pt[dim] % tile[dim];
            if (window && (pos < maskLo || pos >= maskHi))
                selected = false;
            dst_k = pt[dim] + dist;
            if (dst_k < 0 || dst_k >= shape_d)
                selected = false; // Discarded outside the rect (§3.2).
        }
        if (selected) {
            std::int64_t outer = 0;
            for (unsigned d = 1; d < nd; ++d)
                outer += (pt[d] % tile[d]) * mult[d];
            if (dim != 0) {
                // The whole dim-0 run lands in one destination tile.
                dst.assign(pt.begin(), pt.end());
                dst[0] = lo0;
                dst[dim] = dst_k;
                const std::int64_t dst_outer =
                    outer - (pt[dim] % tile[dim]) * mult[dim] +
                    (dst_k % tile[dim]) * mult[dim];
                fn(static_cast<unsigned>(outer + lo0 % tile0),
                   layout_.tileOf(dst),
                   static_cast<unsigned>(dst_outer + lo0 % tile0),
                   static_cast<unsigned>(hi0 - lo0), false);
            } else {
                // Split where the destination crosses a tile boundary.
                Coord c = lo0;
                while (c < hi0) {
                    const Coord dc = c + dist; // >= 0 by the clip above.
                    const Coord seg_end =
                        std::min(hi0, (dc / tile0 + 1) * tile0 - dist);
                    dst.assign(pt.begin(), pt.end());
                    dst[0] = dc;
                    fn(static_cast<unsigned>(outer + c % tile0),
                       layout_.tileOf(dst),
                       static_cast<unsigned>(outer + dc % tile0),
                       static_cast<unsigned>(seg_end - c), false);
                    c = seg_end;
                }
            }
        }
        unsigned d = 1;
        for (; d < nd; ++d) {
            if (++pt[d] < part.hi(d))
                break;
            pt[d] = part.lo(d);
        }
        if (d >= nd)
            break;
    }
}

void
BitAccurateFabric::forEachFillRun(const HyperRect &part, Coord bcDist,
                                  Coord bcCount, const MoveRunFn &fn) const
{
    if (part.empty())
        return;
    const auto &tile = layout_.tile();
    const unsigned nd = part.dims();
    const Coord tile0 = tile[0];
    const Coord shape0 = layout_.shape()[0];
    const Coord lo0 = part.lo(0);
    infs_assert(part.hi(0) - lo0 == 1, "fill run needs unit dim-0 span");

    std::vector<std::int64_t> mult(nd);
    std::int64_t m = 1;
    for (unsigned d = 0; d < nd; ++d) {
        mult[d] = m;
        m *= tile[d];
    }

    std::vector<Coord> pt(nd, 0);
    pt[0] = lo0;
    for (unsigned d = 1; d < nd; ++d)
        pt[d] = part.lo(d);
    std::vector<Coord> dst(nd, 0);
    for (;;) {
        std::int64_t outer = 0;
        for (unsigned d = 1; d < nd; ++d)
            outer += (pt[d] % tile[d]) * mult[d];
        const unsigned srcPos =
            static_cast<unsigned>(outer + lo0 % tile0);
        // The bcCount replicas of this element tile the contiguous dim-0
        // destination range [lo0 + bcDist, lo0 + bcDist + bcCount),
        // clipped to the array and split at tile boundaries.
        Coord c = std::max<Coord>(0, lo0 + bcDist);
        const Coord end = std::min(shape0, lo0 + bcDist + bcCount);
        while (c < end) {
            const Coord seg_end = std::min(end, (c / tile0 + 1) * tile0);
            dst.assign(pt.begin(), pt.end());
            dst[0] = c;
            fn(srcPos, layout_.tileOf(dst),
               static_cast<unsigned>(outer + c % tile0),
               static_cast<unsigned>(seg_end - c), true);
            c = seg_end;
        }
        unsigned d = 1;
        for (; d < nd; ++d) {
            if (++pt[d] < part.hi(d))
                break;
            pt[d] = part.lo(d);
        }
        if (d >= nd)
            break;
    }
}

void
BitAccurateFabric::forEachBroadcastRun(const HyperRect &part, unsigned dim,
                                       Coord span, Coord bcDist,
                                       Coord bcCount,
                                       const MoveRunFn &fn) const
{
    if (part.empty())
        return;
    const auto &tile = layout_.tile();
    const unsigned nd = part.dims();
    const Coord tile0 = tile[0];
    const Coord shape_d = layout_.shape()[dim];
    const Coord lo0 = part.lo(0), hi0 = part.hi(0);

    std::vector<std::int64_t> mult(nd);
    std::int64_t m = 1;
    for (unsigned d = 0; d < nd; ++d) {
        mult[d] = m;
        m *= tile[d];
    }

    std::vector<Coord> pt(nd, 0);
    pt[0] = lo0;
    for (unsigned d = 1; d < nd; ++d)
        pt[d] = part.lo(d);
    std::vector<Coord> dst(nd, 0);
    for (;;) {
        std::int64_t outer = 0;
        for (unsigned d = 1; d < nd; ++d)
            outer += (pt[d] % tile[d]) * mult[d];
        if (dim == 0) {
            // Replica j is a dim-0 move by bcDist + j*span: clip to the
            // array and split where the destination crosses a tile edge.
            for (Coord j = 0; j < bcCount; ++j) {
                const Coord dist = bcDist + j * span;
                Coord c = std::max(lo0, -dist);
                const Coord h = std::min(hi0, shape_d - dist);
                while (c < h) {
                    const Coord dc = c + dist;
                    const Coord seg_end =
                        std::min(h, (dc / tile0 + 1) * tile0 - dist);
                    dst.assign(pt.begin(), pt.end());
                    dst[0] = dc;
                    fn(static_cast<unsigned>(outer + c % tile0),
                       layout_.tileOf(dst),
                       static_cast<unsigned>(outer + dc % tile0),
                       static_cast<unsigned>(seg_end - c), false);
                    c = seg_end;
                }
            }
        } else {
            // The dim-0 run is invariant across replicas; only the dim
            // component of the destination position changes.
            const unsigned srcPos =
                static_cast<unsigned>(outer + lo0 % tile0);
            const unsigned len = static_cast<unsigned>(hi0 - lo0);
            const Coord src_k = pt[dim];
            const std::int64_t outer_wo =
                outer - (src_k % tile[dim]) * mult[dim] + lo0 % tile0;
            for (Coord j = 0; j < bcCount; ++j) {
                const Coord dst_k = src_k + bcDist + j * span;
                if (dst_k < 0 || dst_k >= shape_d)
                    continue; // Discarded outside the rect (§3.2).
                dst.assign(pt.begin(), pt.end());
                dst[0] = lo0;
                dst[dim] = dst_k;
                fn(srcPos, layout_.tileOf(dst),
                   static_cast<unsigned>(
                       outer_wo + (dst_k % tile[dim]) * mult[dim]),
                   len, false);
            }
        }
        unsigned d = 1;
        for (; d < nd; ++d) {
            if (++pt[d] < part.hi(d))
                break;
            pt[d] = part.lo(d);
        }
        if (d >= nd)
            break;
    }
}

namespace {

/** One coalesced bitline span in flight between tiles. */
struct MoveSegment {
    std::int64_t dstTile;
    unsigned dstPos;       ///< First bitline in the destination tile.
    unsigned len;          ///< Elements in the run.
    std::size_t arenaOff;  ///< Word offset of the staged bits.
    bool fill;             ///< Replicate one staged element across len.
};

} // namespace

void
BitAccurateFabric::moveRuns(
    const std::vector<std::int64_t> &src_tiles, const HyperRect &clipped,
    unsigned bits, unsigned wl_src, unsigned wl_dst,
    const std::function<void(const HyperRect &, const MoveRunFn &)>
        &enumerate)
{
    // Two-phase gather/scatter so overlapping source/destination slots
    // are safe — and so each phase can fan out: reads are
    // per-source-tile, writes per-destination-tile, and two threads never
    // touch the same SRAM array. Each run moves whole bitline word-spans
    // (extractTo/depositFrom handle arbitrary alignment, so single
    // elements take the same path as full lines) through a
    // per-source-tile staging arena.
    std::vector<std::vector<MoveSegment>> segs(src_tiles.size());
    std::vector<std::vector<std::uint64_t>> arenas(src_tiles.size());
    auto gatherTile = [&](std::size_t i) {
        const std::int64_t st = src_tiles[i];
        HyperRect part = clipped.intersect(layout_.tileRect(st));
        if (part.empty())
            return;
        const BitMatrix &bm = tile(st).bits();
        auto &sv = segs[i];
        auto &ar = arenas[i];
        // Broadcasts enumerate the same source span once per replica;
        // stage each distinct extraction once and share the arena slot.
        std::unordered_map<std::uint64_t, std::size_t> staged;
        enumerate(part, [&](unsigned srcPos, std::int64_t dt,
                            unsigned dstPos, unsigned len, bool fill) {
            // Fill runs and single elements stage as one packed word
            // (readElement), full runs as bits word-spans (extractTo).
            const bool elem = fill || len == 1;
            const std::uint64_t key =
                (elem ? 1ULL << 63 : std::uint64_t(len)) |
                (std::uint64_t(srcPos) << 32);
            auto [it, fresh] = staged.emplace(key, ar.size());
            if (fresh) {
                if (elem) {
                    ar.push_back(bm.readElement(srcPos, wl_src, bits));
                } else {
                    const std::size_t wspan = (len + 63) / 64;
                    const std::size_t off = ar.size();
                    ar.resize(off + bits * wspan);
                    for (unsigned b = 0; b < bits; ++b)
                        bm.row(wl_src + b)
                            .extractTo(ar.data() + off + b * wspan,
                                       srcPos, len);
                }
            }
            sv.push_back({dt, dstPos, len, it->second, fill});
        });
    };
    if (pool_ != nullptr && !pool_->inlineOnly() && src_tiles.size() > 1) {
        pool_->parallelFor(static_cast<std::int64_t>(src_tiles.size()),
                           [&](std::int64_t i) {
                               gatherTile(static_cast<std::size_t>(i));
                           });
    } else {
        for (std::size_t i = 0; i < src_tiles.size(); ++i)
            gatherTile(i);
    }

    // Bucket by destination tile (sequential and deterministic: source
    // order preserved; destination cells are unique, so write order is
    // irrelevant).
    std::unordered_map<std::int64_t,
                       std::vector<std::pair<std::size_t, std::size_t>>>
        buckets;
    for (std::size_t i = 0; i < segs.size(); ++i)
        for (std::size_t k = 0; k < segs[i].size(); ++k)
            buckets[segs[i][k].dstTile].emplace_back(i, k);
    std::vector<std::int64_t> dst_tiles;
    dst_tiles.reserve(buckets.size());
    for (auto &[dt, v] : buckets)
        dst_tiles.push_back(dt);
    std::sort(dst_tiles.begin(), dst_tiles.end());
    ensureTiles(dst_tiles);

    forEachTile(dst_tiles, [&](std::int64_t dt) {
        BitMatrix &bm = tile(dt).bits();
        for (auto [i, k] : buckets.at(dt)) {
            const MoveSegment &sg = segs[i][k];
            if (sg.fill) {
                const std::uint64_t v = arenas[i][sg.arenaOff];
                for (unsigned b = 0; b < bits; ++b)
                    bm.row(wl_dst + b)
                        .fillRange(sg.dstPos, sg.dstPos + sg.len,
                                   (v >> b) & 1ULL);
            } else if (sg.len == 1) {
                bm.writeElement(sg.dstPos, wl_dst, bits,
                                arenas[i][sg.arenaOff]);
            } else {
                const std::size_t wspan = (sg.len + 63) / 64;
                for (unsigned b = 0; b < bits; ++b)
                    bm.row(wl_dst + b)
                        .depositFrom(
                            arenas[i].data() + sg.arenaOff + b * wspan,
                            sg.dstPos, sg.len);
            }
        }
    });
}

void
BitAccurateFabric::execInterShift(const InMemCommand &cmd)
{
    // Elements cross tiles: the packed H-tree / NoC transfer,
    // functionally, as run-length coalesced segment copies.
    const Coord tile_k = layout_.tile()[cmd.dim];
    const Coord dist = cmd.interTileDist * tile_k + cmd.intraTileDist;
    HyperRect clipped = cmd.tensor.intersect(arrayRect_);
    std::vector<std::int64_t> src_tiles =
        layout_.tilesIntersecting(clipped);
    ensureTiles(src_tiles);
    moveRuns(src_tiles, clipped, dtypeBits(cmd.dtype), cmd.wlA, cmd.wlDst,
             [&](const HyperRect &part, const MoveRunFn &emit) {
                 forEachMoveRun(part, cmd.dim, true, cmd.maskLo,
                                cmd.maskHi, dist, emit);
             });
}

void
BitAccurateFabric::execBroadcast(const InMemCommand &cmd)
{
    // Replicate the source subtensor bcCount times along dim with offset
    // bcDist (Fig 5 semantics), across tiles. Destination cells are
    // unique (per replica j the map is injective and replica ranges are
    // span-disjoint), so the same batched gather/scatter applies with one
    // run enumeration per replica.
    HyperRect src = cmd.tensor.intersect(arrayRect_);
    const Coord span = cmd.tensor.size(cmd.dim);
    std::vector<std::int64_t> src_tiles = layout_.tilesIntersecting(src);
    ensureTiles(src_tiles);
    if (cmd.dim == 0 && span == 1) {
        // Unit-span dim-0 broadcast (the inner-product pattern): all
        // replicas of one element form a contiguous dim-0 run, scattered
        // as word-level range fills instead of bcCount separate moves.
        moveRuns(src_tiles, src, dtypeBits(cmd.dtype), cmd.wlA, cmd.wlDst,
                 [&](const HyperRect &part, const MoveRunFn &emit) {
                     forEachFillRun(part, cmd.bcDist, cmd.bcCount, emit);
                 });
        return;
    }
    moveRuns(src_tiles, src, dtypeBits(cmd.dtype), cmd.wlA, cmd.wlDst,
             [&](const HyperRect &part, const MoveRunFn &emit) {
                 forEachBroadcastRun(part, cmd.dim, span, cmd.bcDist,
                                     cmd.bcCount, emit);
             });
}

void
BitAccurateFabric::execBroadcastVal(const InMemCommand &cmd)
{
    std::vector<std::int64_t> all(
        static_cast<std::size_t>(layout_.numTiles()));
    for (std::size_t i = 0; i < all.size(); ++i)
        all[i] = static_cast<std::int64_t>(i);
    ensureTiles(all);
    forEachTile(all, [&](std::int64_t t) {
        ComputeSram &s = tile(t);
        s.writeImmediate(cmd.dtype,
                         std::bit_cast<std::uint32_t>(
                             static_cast<float>(cmd.imm)),
                         cmd.wlDst, s.fullMask());
    });
}

void
BitAccurateFabric::applyFault(const InMemCommand &cmd,
                              const PlannedFault &pf)
{
    ComputeSram &s = tile(pf.tile);
    const bool parity_before = s.rowParity(pf.wl);
    const std::uint64_t good = s.readElement(pf.bl, cmd.wlDst, cmd.dtype);
    s.flipBit(pf.wl, pf.bl);
    // Row parity flips on any single-bit upset — detection is certain.
    infs_assert(s.rowParity(pf.wl) != parity_before,
                "single-bit flip must flip row parity");
    // Repair: rewrite the corrupted element (ECC correction / re-read of
    // the known-good operand).
    s.writeElement(pf.bl, cmd.wlDst, cmd.dtype, good);
}

void
BitAccurateFabric::injectAndRepair(const InMemCommand &cmd)
{
    auto touched = layout_.tilesIntersecting(cmd.tensor);
    if (touched.empty())
        return;
    const unsigned bits = dtypeBits(cmd.dtype);
    // Pick the upset site from the SRAM stream: tile, wordline within the
    // destination slot, bitline.
    PlannedFault pf;
    pf.cmdIndex = 0;
    pf.tile = touched[fault_->draw(FaultDomain::Sram, touched.size())];
    pf.wl = cmd.wlDst + static_cast<unsigned>(
                            fault_->draw(FaultDomain::Sram, bits));
    pf.bl = static_cast<unsigned>(
        fault_->draw(FaultDomain::Sram, bitlines_));
    fault_->recordDetection();
    applyFault(cmd, pf);
    fault_->recordRetry();
}

void
BitAccurateFabric::executeNoFault(const InMemCommand &cmd)
{
    const auto t0 = std::chrono::steady_clock::now();
    switch (cmd.kind) {
      case CmdKind::Compute:
        execCompute(cmd);
        break;
      case CmdKind::IntraShift:
        execIntraShift(cmd);
        break;
      case CmdKind::InterShift:
        execInterShift(cmd);
        break;
      case CmdKind::BroadcastBl:
        execBroadcast(cmd);
        break;
      case CmdKind::BroadcastVal:
        execBroadcastVal(cmd);
        break;
      case CmdKind::Sync:
        break; // Ordering only; handled by the segment walk.
    }
    const auto dt = std::chrono::steady_clock::now() - t0;
    const auto k = static_cast<std::size_t>(cmd.kind);
    kindCount_[k].fetch_add(1, std::memory_order_relaxed);
    kindNanos_[k].fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                .count()),
        std::memory_order_relaxed);
}

void
BitAccurateFabric::executeCommand(const InMemCommand &cmd)
{
    executeNoFault(cmd);
    if (cmd.kind == CmdKind::Compute && fault_ && fault_->sampleSramFlip())
        injectAndRepair(cmd);
}

std::vector<std::int64_t>
BitAccurateFabric::touchedTiles(const InMemCommand &cmd) const
{
    std::vector<std::int64_t> tiles;
    auto add = [&](const HyperRect &r) {
        auto v = layout_.tilesIntersecting(r.intersect(arrayRect_));
        tiles.insert(tiles.end(), v.begin(), v.end());
    };
    switch (cmd.kind) {
      case CmdKind::Compute:
      case CmdKind::IntraShift:
        add(cmd.tensor);
        break;
      case CmdKind::InterShift: {
        add(cmd.tensor);
        const Coord tile_k = layout_.tile()[cmd.dim];
        const Coord dist = cmd.interTileDist * tile_k + cmd.intraTileDist;
        add(cmd.tensor.shifted(cmd.dim, dist));
        break;
      }
      case CmdKind::BroadcastBl: {
        add(cmd.tensor);
        const Coord span = cmd.tensor.size(cmd.dim);
        for (Coord j = 0; j < cmd.bcCount; ++j)
            add(cmd.tensor.shifted(cmd.dim, cmd.bcDist + j * span));
        break;
      }
      case CmdKind::BroadcastVal: {
        tiles.resize(static_cast<std::size_t>(layout_.numTiles()));
        for (std::size_t i = 0; i < tiles.size(); ++i)
            tiles[i] = static_cast<std::int64_t>(i);
        break;
      }
      case CmdKind::Sync:
        break;
    }
    std::sort(tiles.begin(), tiles.end());
    tiles.erase(std::unique(tiles.begin(), tiles.end()), tiles.end());
    return tiles;
}

void
BitAccurateFabric::executeSegment(
    const InMemProgram &prog, std::size_t lo, std::size_t hi,
    const std::vector<const PlannedFault *> &faults)
{
    if (hi <= lo)
        return;
    auto runOne = [&](std::size_t i) {
        const InMemCommand &cmd = prog.commands[i];
        executeNoFault(cmd);
        if (faults[i] != nullptr)
            applyFault(cmd, *faults[i]);
    };
    if (pool_ == nullptr || pool_->inlineOnly() || hi - lo == 1) {
        for (std::size_t i = lo; i < hi; ++i)
            runOne(i);
        return;
    }

    // Lane partition: commands whose touched-tile sets overlap share a
    // lane and execute in program order; disjoint lanes run concurrently
    // — the host-side mirror of the banks' independence. Union-find over
    // tile ownership.
    const std::size_t n = hi - lo;
    std::vector<std::vector<std::int64_t>> touched(n);
    pool_->parallelFor(static_cast<std::int64_t>(n), [&](std::int64_t k) {
        touched[static_cast<std::size_t>(k)] =
            touchedTiles(prog.commands[lo + static_cast<std::size_t>(k)]);
    });
    std::vector<std::size_t> parent(n);
    for (std::size_t i = 0; i < n; ++i)
        parent[i] = i;
    std::function<std::size_t(std::size_t)> find =
        [&](std::size_t x) -> std::size_t {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    std::unordered_map<std::int64_t, std::size_t> tile_owner;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::int64_t t : touched[i]) {
            auto [it, inserted] = tile_owner.emplace(t, i);
            if (!inserted) {
                std::size_t a = find(it->second), b = find(i);
                if (a != b)
                    parent[b] = a;
                it->second = find(a);
            }
        }
    }
    std::unordered_map<std::size_t, std::size_t> root_lane;
    std::vector<std::vector<std::size_t>> lanes;
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t r = find(i);
        auto [it, inserted] = root_lane.emplace(r, lanes.size());
        if (inserted)
            lanes.emplace_back();
        lanes[it->second].push_back(i);
    }

    if (hazardCheck_ && lanes.size() > 1) {
        // Engine self-check (DESIGN.md §10): the lanes about to run
        // concurrently must have pairwise-disjoint tile sets — the same
        // disjointness invariant the command hazard analyzer proves at
        // lowering time (verifyLevel == Full).
        std::unordered_map<std::int64_t, std::size_t> owner;
        for (std::size_t l = 0; l < lanes.size(); ++l) {
            for (std::size_t i : lanes[l]) {
                for (std::int64_t t : touched[i]) {
                    auto [it, inserted] = owner.emplace(t, l);
                    infs_assert(inserted || it->second == l,
                                "bank-parallel hazard: tile %lld shared "
                                "by concurrent lanes %zu and %zu",
                                static_cast<long long>(t), it->second, l);
                }
            }
        }
    }

    if (lanes.size() == 1) {
        for (std::size_t i = lo; i < hi; ++i)
            runOne(i);
        return;
    }
    std::vector<std::function<void()>> tasks;
    tasks.reserve(lanes.size());
    for (const auto &lane : lanes) {
        tasks.push_back([&, lane] {
            for (std::size_t k : lane)
                runOne(lo + k);
        });
    }
    pool_->runTasks(std::move(tasks));
}

void
BitAccurateFabric::execute(const InMemProgram &prog)
{
    // Fault pre-sampling: one sequential walk in program order consumes
    // the RNG streams exactly as the legacy inline path did, so the
    // injected schedule (and every counter) is bit-identical for any
    // pool size. The state effects are applied later inside the owning
    // lane — ordered with respect to every command that shares a tile.
    std::vector<PlannedFault> planned;
    std::vector<const PlannedFault *> faults(prog.commands.size(),
                                             nullptr);
    if (fault_ != nullptr) {
        for (std::size_t i = 0; i < prog.commands.size(); ++i) {
            const InMemCommand &cmd = prog.commands[i];
            if (cmd.kind != CmdKind::Compute || !fault_->sampleSramFlip())
                continue;
            auto touched = layout_.tilesIntersecting(cmd.tensor);
            if (touched.empty())
                continue;
            const unsigned bits = dtypeBits(cmd.dtype);
            PlannedFault pf;
            pf.cmdIndex = i;
            pf.tile =
                touched[fault_->draw(FaultDomain::Sram, touched.size())];
            pf.wl = cmd.wlDst + static_cast<unsigned>(
                                    fault_->draw(FaultDomain::Sram, bits));
            pf.bl = static_cast<unsigned>(
                fault_->draw(FaultDomain::Sram, bitlines_));
            fault_->recordDetection();
            fault_->recordRetry();
            planned.push_back(pf);
        }
        for (const PlannedFault &pf : planned)
            faults[pf.cmdIndex] = &pf;
    }

    std::size_t seg_lo = 0;
    for (std::size_t i = 0; i <= prog.commands.size(); ++i) {
        if (i == prog.commands.size() ||
            prog.commands[i].kind == CmdKind::Sync) {
            executeSegment(prog, seg_lo, i, faults);
            seg_lo = i + 1;
        }
    }
}

} // namespace infs
