#include "uarch/bit_exec.hh"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "sim/fault.hh"
#include "tdfg/interp.hh"

namespace infs {

BitAccurateFabric::BitAccurateFabric(TiledLayout layout, unsigned wordlines,
                                     unsigned bitlines)
    : layout_(std::move(layout)), wordlines_(wordlines), bitlines_(bitlines)
{
    infs_assert(layout_.tileVolume() <= static_cast<std::int64_t>(bitlines),
                "tile volume %lld exceeds %u bitlines",
                static_cast<long long>(layout_.tileVolume()), bitlines);
    tiles_.resize(static_cast<std::size_t>(layout_.numTiles()));
}

ComputeSram &
BitAccurateFabric::tile(std::int64_t t)
{
    infs_assert(t >= 0 && t < layout_.numTiles(), "tile %lld out of range",
                static_cast<long long>(t));
    auto &p = tiles_[static_cast<std::size_t>(t)];
    if (!p)
        p = std::make_unique<ComputeSram>(wordlines_, bitlines_);
    return *p;
}

void
BitAccurateFabric::ensureTiles(const std::vector<std::int64_t> &tiles)
{
    for (std::int64_t t : tiles)
        tile(t);
}

void
BitAccurateFabric::forEachTile(const std::vector<std::int64_t> &tiles,
                               const std::function<void(std::int64_t)> &fn)
{
    if (pool_ != nullptr && !pool_->inlineOnly() && tiles.size() > 1) {
        pool_->parallelFor(static_cast<std::int64_t>(tiles.size()),
                           [&](std::int64_t i) {
                               fn(tiles[static_cast<std::size_t>(i)]);
                           });
    } else {
        for (std::int64_t t : tiles)
            fn(t);
    }
}

std::int64_t
BitAccurateFabric::strideInTile(unsigned dim) const
{
    std::int64_t s = 1;
    for (unsigned d = 0; d < dim; ++d)
        s *= layout_.tile()[d];
    return s;
}

void
BitAccurateFabric::loadArray(std::span<const float> data, unsigned wl)
{
    HyperRect rect = HyperRect::array(layout_.shape());
    std::size_t i = 0;
    for (RectIter it(rect); !it.done(); it.next(), ++i) {
        ComputeSram &s = tile(layout_.tileOf(*it));
        s.writeFloat(
            static_cast<unsigned>(layout_.positionInTile(*it)), wl,
            data[i]);
    }
    infs_assert(i == data.size(), "array size mismatch");
}

void
BitAccurateFabric::storeArray(std::span<float> data, unsigned wl) const
{
    HyperRect rect = HyperRect::array(layout_.shape());
    std::size_t i = 0;
    auto *self = const_cast<BitAccurateFabric *>(this);
    for (RectIter it(rect); !it.done(); it.next(), ++i) {
        ComputeSram &s = self->tile(layout_.tileOf(*it));
        data[i] = s.readFloat(
            static_cast<unsigned>(layout_.positionInTile(*it)), wl);
    }
}

float
BitAccurateFabric::element(const std::vector<Coord> &pt, unsigned wl) const
{
    auto *self = const_cast<BitAccurateFabric *>(this);
    ComputeSram &s = self->tile(layout_.tileOf(pt));
    return s.readFloat(static_cast<unsigned>(layout_.positionInTile(pt)),
                       wl);
}

BitRow
BitAccurateFabric::tileMask(const InMemCommand &cmd, std::int64_t t,
                            bool apply_shift_mask) const
{
    BitRow mask(bitlines_);
    // Clip to this tile's own rect so the walk is O(tile volume), not
    // O(tensor volume) — every cell visited belongs to tile t.
    HyperRect clipped = cmd.tensor
                            .intersect(HyperRect::array(layout_.shape()))
                            .intersect(layout_.tileRect(t));
    for (RectIter it(clipped); !it.done(); it.next()) {
        if (apply_shift_mask) {
            Coord tile_k = layout_.tile()[cmd.dim];
            Coord pos = (((*it)[cmd.dim] % tile_k) + tile_k) % tile_k;
            if (pos < cmd.maskLo || pos >= cmd.maskHi)
                continue;
        }
        mask.set(static_cast<unsigned>(layout_.positionInTile(*it)), true);
    }
    return mask;
}

void
BitAccurateFabric::execCompute(const InMemCommand &cmd)
{
    const bool positional = cmd.maskHi > cmd.maskLo;
    std::vector<std::int64_t> tiles =
        layout_.tilesIntersecting(cmd.tensor);
    ensureTiles(tiles);
    forEachTile(tiles, [&](std::int64_t t) {
        BitRow mask = tileMask(cmd, t, positional);
        if (!mask.any())
            return;
        ComputeSram &s = tile(t);
        if (cmd.useImm) {
            s.execBinaryImm(cmd.op, cmd.dtype, cmd.wlA,
                            std::bit_cast<std::uint32_t>(
                                static_cast<float>(cmd.imm)),
                            cmd.wlDst, mask);
        } else if (cmd.wlA == cmd.wlB) {
            // Unary encoding (e.g. relu, copy) or self-binary (x*x).
            if (cmd.op == BitOp::Relu || cmd.op == BitOp::Copy)
                s.execUnary(cmd.op, cmd.dtype, cmd.wlA, cmd.wlDst, mask);
            else
                s.execBinary(cmd.op, cmd.dtype, cmd.wlA, cmd.wlB,
                             cmd.wlDst, mask);
        } else {
            s.execBinary(cmd.op, cmd.dtype, cmd.wlA, cmd.wlB, cmd.wlDst,
                         mask);
        }
    });
}

void
BitAccurateFabric::execIntraShift(const InMemCommand &cmd)
{
    const std::int64_t stride = strideInTile(cmd.dim);
    const int delta =
        static_cast<int>(cmd.intraTileDist * stride);
    std::vector<std::int64_t> tiles =
        layout_.tilesIntersecting(cmd.tensor);
    ensureTiles(tiles);
    forEachTile(tiles, [&](std::int64_t t) {
        BitRow mask = tileMask(cmd, t, true);
        if (!mask.any())
            return;
        tile(t).shift(cmd.dtype, cmd.wlA, cmd.wlDst, delta, mask);
    });
}

namespace {

/** One element in flight between tiles (gather/scatter two-phase). */
struct PendingWrite {
    std::int64_t dstPos;    ///< Bitline position in the destination tile.
    std::uint64_t bits;     ///< Element bits read from the source.
};

} // namespace

void
BitAccurateFabric::execInterShift(const InMemCommand &cmd)
{
    // Elements cross tiles: per covered cell, compute the destination
    // lattice coordinate and copy the element bits (the packed H-tree /
    // NoC transfer, functionally). Two-phase gather/scatter so
    // overlapping source/dest slots are safe — and so each phase can fan
    // out: reads are per-source-tile, writes per-destination-tile, and
    // two threads never touch the same SRAM array.
    const Coord tile_k = layout_.tile()[cmd.dim];
    const Coord dist = cmd.interTileDist * tile_k + cmd.intraTileDist;
    HyperRect clipped =
        cmd.tensor.intersect(HyperRect::array(layout_.shape()));
    std::vector<std::int64_t> src_tiles = layout_.tilesIntersecting(clipped);
    ensureTiles(src_tiles);

    // Gather (parallel over source tiles; reads only).
    std::vector<std::vector<std::pair<std::int64_t, PendingWrite>>>
        gathered(src_tiles.size());
    auto gatherTile = [&](std::size_t i) {
        auto &out = gathered[i];
        std::int64_t st = src_tiles[i];
        HyperRect part = clipped.intersect(layout_.tileRect(st));
        ComputeSram &s = tile(st);
        for (RectIter it(part); !it.done(); it.next()) {
            Coord pos = ((((*it)[cmd.dim]) % tile_k) + tile_k) % tile_k;
            if (pos < cmd.maskLo || pos >= cmd.maskHi)
                continue;
            std::vector<Coord> dst = *it;
            dst[cmd.dim] += dist;
            if (dst[cmd.dim] < 0 ||
                dst[cmd.dim] >= layout_.shape()[cmd.dim])
                continue; // Discarded outside the bounding rect (§3.2).
            std::uint64_t bits = s.readElement(
                static_cast<unsigned>(layout_.positionInTile(*it)),
                cmd.wlA, cmd.dtype);
            out.emplace_back(
                layout_.tileOf(dst),
                PendingWrite{layout_.positionInTile(dst), bits});
        }
    };
    if (pool_ != nullptr && !pool_->inlineOnly() && src_tiles.size() > 1) {
        pool_->parallelFor(static_cast<std::int64_t>(src_tiles.size()),
                           [&](std::int64_t i) {
                               gatherTile(static_cast<std::size_t>(i));
                           });
    } else {
        for (std::size_t i = 0; i < src_tiles.size(); ++i)
            gatherTile(i);
    }

    // Bucket by destination tile (deterministic: source order preserved;
    // destination cells are unique, so write order is irrelevant).
    std::unordered_map<std::int64_t, std::vector<PendingWrite>> buckets;
    for (auto &per_src : gathered)
        for (auto &[dt, pw] : per_src)
            buckets[dt].push_back(pw);
    std::vector<std::int64_t> dst_tiles;
    dst_tiles.reserve(buckets.size());
    for (auto &[dt, v] : buckets)
        dst_tiles.push_back(dt);
    std::sort(dst_tiles.begin(), dst_tiles.end());
    ensureTiles(dst_tiles);

    // Scatter (parallel over destination tiles; writes only).
    forEachTile(dst_tiles, [&](std::int64_t dt) {
        ComputeSram &s = tile(dt);
        for (const PendingWrite &pw : buckets.at(dt))
            s.writeElement(static_cast<unsigned>(pw.dstPos), cmd.wlDst,
                           cmd.dtype, pw.bits);
    });
}

void
BitAccurateFabric::execBroadcast(const InMemCommand &cmd)
{
    // Replicate the source subtensor bcCount times along dim with offset
    // bcDist (Fig 5 semantics), across tiles. Same gather/scatter shape
    // as execInterShift: destination cells are unique (per replica j the
    // map is injective and replica ranges are span-disjoint).
    HyperRect src =
        cmd.tensor.intersect(HyperRect::array(layout_.shape()));
    const Coord span = cmd.tensor.size(cmd.dim);
    std::vector<std::int64_t> src_tiles = layout_.tilesIntersecting(src);
    ensureTiles(src_tiles);

    std::vector<std::vector<std::pair<std::int64_t, PendingWrite>>>
        gathered(src_tiles.size());
    auto gatherTile = [&](std::size_t i) {
        auto &out = gathered[i];
        std::int64_t st = src_tiles[i];
        HyperRect part = src.intersect(layout_.tileRect(st));
        ComputeSram &s = tile(st);
        for (RectIter it(part); !it.done(); it.next()) {
            std::uint64_t bits = s.readElement(
                static_cast<unsigned>(layout_.positionInTile(*it)),
                cmd.wlA, cmd.dtype);
            for (Coord j = 0; j < cmd.bcCount; ++j) {
                std::vector<Coord> dst = *it;
                dst[cmd.dim] += cmd.bcDist + j * span;
                if (dst[cmd.dim] < 0 ||
                    dst[cmd.dim] >= layout_.shape()[cmd.dim])
                    continue;
                out.emplace_back(
                    layout_.tileOf(dst),
                    PendingWrite{layout_.positionInTile(dst), bits});
            }
        }
    };
    if (pool_ != nullptr && !pool_->inlineOnly() && src_tiles.size() > 1) {
        pool_->parallelFor(static_cast<std::int64_t>(src_tiles.size()),
                           [&](std::int64_t i) {
                               gatherTile(static_cast<std::size_t>(i));
                           });
    } else {
        for (std::size_t i = 0; i < src_tiles.size(); ++i)
            gatherTile(i);
    }

    std::unordered_map<std::int64_t, std::vector<PendingWrite>> buckets;
    for (auto &per_src : gathered)
        for (auto &[dt, pw] : per_src)
            buckets[dt].push_back(pw);
    std::vector<std::int64_t> dst_tiles;
    dst_tiles.reserve(buckets.size());
    for (auto &[dt, v] : buckets)
        dst_tiles.push_back(dt);
    std::sort(dst_tiles.begin(), dst_tiles.end());
    ensureTiles(dst_tiles);

    forEachTile(dst_tiles, [&](std::int64_t dt) {
        ComputeSram &s = tile(dt);
        for (const PendingWrite &pw : buckets.at(dt))
            s.writeElement(static_cast<unsigned>(pw.dstPos), cmd.wlDst,
                           cmd.dtype, pw.bits);
    });
}

void
BitAccurateFabric::execBroadcastVal(const InMemCommand &cmd)
{
    std::vector<std::int64_t> all(
        static_cast<std::size_t>(layout_.numTiles()));
    for (std::size_t i = 0; i < all.size(); ++i)
        all[i] = static_cast<std::int64_t>(i);
    ensureTiles(all);
    forEachTile(all, [&](std::int64_t t) {
        ComputeSram &s = tile(t);
        s.writeImmediate(cmd.dtype,
                         std::bit_cast<std::uint32_t>(
                             static_cast<float>(cmd.imm)),
                         cmd.wlDst, s.fullMask());
    });
}

void
BitAccurateFabric::applyFault(const InMemCommand &cmd,
                              const PlannedFault &pf)
{
    ComputeSram &s = tile(pf.tile);
    const bool parity_before = s.rowParity(pf.wl);
    const std::uint64_t good = s.readElement(pf.bl, cmd.wlDst, cmd.dtype);
    s.flipBit(pf.wl, pf.bl);
    // Row parity flips on any single-bit upset — detection is certain.
    infs_assert(s.rowParity(pf.wl) != parity_before,
                "single-bit flip must flip row parity");
    // Repair: rewrite the corrupted element (ECC correction / re-read of
    // the known-good operand).
    s.writeElement(pf.bl, cmd.wlDst, cmd.dtype, good);
}

void
BitAccurateFabric::injectAndRepair(const InMemCommand &cmd)
{
    auto touched = layout_.tilesIntersecting(cmd.tensor);
    if (touched.empty())
        return;
    const unsigned bits = dtypeBits(cmd.dtype);
    // Pick the upset site from the SRAM stream: tile, wordline within the
    // destination slot, bitline.
    PlannedFault pf;
    pf.cmdIndex = 0;
    pf.tile = touched[fault_->draw(FaultDomain::Sram, touched.size())];
    pf.wl = cmd.wlDst + static_cast<unsigned>(
                            fault_->draw(FaultDomain::Sram, bits));
    pf.bl = static_cast<unsigned>(
        fault_->draw(FaultDomain::Sram, bitlines_));
    fault_->recordDetection();
    applyFault(cmd, pf);
    fault_->recordRetry();
}

void
BitAccurateFabric::executeNoFault(const InMemCommand &cmd)
{
    switch (cmd.kind) {
      case CmdKind::Compute:
        execCompute(cmd);
        break;
      case CmdKind::IntraShift:
        execIntraShift(cmd);
        break;
      case CmdKind::InterShift:
        execInterShift(cmd);
        break;
      case CmdKind::BroadcastBl:
        execBroadcast(cmd);
        break;
      case CmdKind::BroadcastVal:
        execBroadcastVal(cmd);
        break;
      case CmdKind::Sync:
        break; // Ordering only; handled by the segment walk.
    }
}

void
BitAccurateFabric::executeCommand(const InMemCommand &cmd)
{
    executeNoFault(cmd);
    if (cmd.kind == CmdKind::Compute && fault_ && fault_->sampleSramFlip())
        injectAndRepair(cmd);
}

std::vector<std::int64_t>
BitAccurateFabric::touchedTiles(const InMemCommand &cmd) const
{
    const HyperRect array = HyperRect::array(layout_.shape());
    std::vector<std::int64_t> tiles;
    auto add = [&](const HyperRect &r) {
        auto v = layout_.tilesIntersecting(r.intersect(array));
        tiles.insert(tiles.end(), v.begin(), v.end());
    };
    switch (cmd.kind) {
      case CmdKind::Compute:
      case CmdKind::IntraShift:
        add(cmd.tensor);
        break;
      case CmdKind::InterShift: {
        add(cmd.tensor);
        const Coord tile_k = layout_.tile()[cmd.dim];
        const Coord dist = cmd.interTileDist * tile_k + cmd.intraTileDist;
        add(cmd.tensor.shifted(cmd.dim, dist));
        break;
      }
      case CmdKind::BroadcastBl: {
        add(cmd.tensor);
        const Coord span = cmd.tensor.size(cmd.dim);
        for (Coord j = 0; j < cmd.bcCount; ++j)
            add(cmd.tensor.shifted(cmd.dim, cmd.bcDist + j * span));
        break;
      }
      case CmdKind::BroadcastVal: {
        tiles.resize(static_cast<std::size_t>(layout_.numTiles()));
        for (std::size_t i = 0; i < tiles.size(); ++i)
            tiles[i] = static_cast<std::int64_t>(i);
        break;
      }
      case CmdKind::Sync:
        break;
    }
    std::sort(tiles.begin(), tiles.end());
    tiles.erase(std::unique(tiles.begin(), tiles.end()), tiles.end());
    return tiles;
}

void
BitAccurateFabric::executeSegment(
    const InMemProgram &prog, std::size_t lo, std::size_t hi,
    const std::vector<const PlannedFault *> &faults)
{
    if (hi <= lo)
        return;
    auto runOne = [&](std::size_t i) {
        const InMemCommand &cmd = prog.commands[i];
        executeNoFault(cmd);
        if (faults[i] != nullptr)
            applyFault(cmd, *faults[i]);
    };
    if (pool_ == nullptr || pool_->inlineOnly() || hi - lo == 1) {
        for (std::size_t i = lo; i < hi; ++i)
            runOne(i);
        return;
    }

    // Lane partition: commands whose touched-tile sets overlap share a
    // lane and execute in program order; disjoint lanes run concurrently
    // — the host-side mirror of the banks' independence. Union-find over
    // tile ownership.
    const std::size_t n = hi - lo;
    std::vector<std::vector<std::int64_t>> touched(n);
    pool_->parallelFor(static_cast<std::int64_t>(n), [&](std::int64_t k) {
        touched[static_cast<std::size_t>(k)] =
            touchedTiles(prog.commands[lo + static_cast<std::size_t>(k)]);
    });
    std::vector<std::size_t> parent(n);
    for (std::size_t i = 0; i < n; ++i)
        parent[i] = i;
    std::function<std::size_t(std::size_t)> find =
        [&](std::size_t x) -> std::size_t {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    std::unordered_map<std::int64_t, std::size_t> tile_owner;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::int64_t t : touched[i]) {
            auto [it, inserted] = tile_owner.emplace(t, i);
            if (!inserted) {
                std::size_t a = find(it->second), b = find(i);
                if (a != b)
                    parent[b] = a;
                it->second = find(a);
            }
        }
    }
    std::unordered_map<std::size_t, std::size_t> root_lane;
    std::vector<std::vector<std::size_t>> lanes;
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t r = find(i);
        auto [it, inserted] = root_lane.emplace(r, lanes.size());
        if (inserted)
            lanes.emplace_back();
        lanes[it->second].push_back(i);
    }

    if (hazardCheck_ && lanes.size() > 1) {
        // Engine self-check (DESIGN.md §10): the lanes about to run
        // concurrently must have pairwise-disjoint tile sets — the same
        // disjointness invariant the command hazard analyzer proves at
        // lowering time (verifyLevel == Full).
        std::unordered_map<std::int64_t, std::size_t> owner;
        for (std::size_t l = 0; l < lanes.size(); ++l) {
            for (std::size_t i : lanes[l]) {
                for (std::int64_t t : touched[i]) {
                    auto [it, inserted] = owner.emplace(t, l);
                    infs_assert(inserted || it->second == l,
                                "bank-parallel hazard: tile %lld shared "
                                "by concurrent lanes %zu and %zu",
                                static_cast<long long>(t), it->second, l);
                }
            }
        }
    }

    if (lanes.size() == 1) {
        for (std::size_t i = lo; i < hi; ++i)
            runOne(i);
        return;
    }
    std::vector<std::function<void()>> tasks;
    tasks.reserve(lanes.size());
    for (const auto &lane : lanes) {
        tasks.push_back([&, lane] {
            for (std::size_t k : lane)
                runOne(lo + k);
        });
    }
    pool_->runTasks(std::move(tasks));
}

void
BitAccurateFabric::execute(const InMemProgram &prog)
{
    // Fault pre-sampling: one sequential walk in program order consumes
    // the RNG streams exactly as the legacy inline path did, so the
    // injected schedule (and every counter) is bit-identical for any
    // pool size. The state effects are applied later inside the owning
    // lane — ordered with respect to every command that shares a tile.
    std::vector<PlannedFault> planned;
    std::vector<const PlannedFault *> faults(prog.commands.size(),
                                             nullptr);
    if (fault_ != nullptr) {
        for (std::size_t i = 0; i < prog.commands.size(); ++i) {
            const InMemCommand &cmd = prog.commands[i];
            if (cmd.kind != CmdKind::Compute || !fault_->sampleSramFlip())
                continue;
            auto touched = layout_.tilesIntersecting(cmd.tensor);
            if (touched.empty())
                continue;
            const unsigned bits = dtypeBits(cmd.dtype);
            PlannedFault pf;
            pf.cmdIndex = i;
            pf.tile =
                touched[fault_->draw(FaultDomain::Sram, touched.size())];
            pf.wl = cmd.wlDst + static_cast<unsigned>(
                                    fault_->draw(FaultDomain::Sram, bits));
            pf.bl = static_cast<unsigned>(
                fault_->draw(FaultDomain::Sram, bitlines_));
            fault_->recordDetection();
            fault_->recordRetry();
            planned.push_back(pf);
        }
        for (const PlannedFault &pf : planned)
            faults[pf.cmdIndex] = &pf;
    }

    std::size_t seg_lo = 0;
    for (std::size_t i = 0; i <= prog.commands.size(); ++i) {
        if (i == prog.commands.size() ||
            prog.commands[i].kind == CmdKind::Sync) {
            executeSegment(prog, seg_lo, i, faults);
            seg_lo = i + 1;
        }
    }
}

} // namespace infs
