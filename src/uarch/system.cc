#include "uarch/system.hh"

#include <algorithm>
#include <optional>

#include "analysis/verify_cmds.hh"
#include "analysis/verify_tdfg.hh"
#include "bitserial/simd.hh"
#include "sim/numa.hh"

namespace infs {

InfinitySystem::InfinitySystem(SystemConfig cfg)
    : cfg_(cfg), pool_(cfg.hostThreads), fault_(cfg.fault), noc_(cfg.noc),
      l3_(cfg.l3), dram_(cfg.dram, cfg.core.ghz),
      map_(cfg.l3, cfg.noc.memCtrls), lot_(cfg.tensor.lotEntries),
      jit_(cfg), near_(cfg_, noc_, l3_, dram_, map_, energy_),
      tc_(cfg_, noc_, map_, energy_, &fault_), ttu_(2)
{
    // Install the SIMD kernel table before any bitserial state is touched
    // (process-global: the last constructed system wins, which is the
    // single-system reality of every tool and test binary).
    simd::setActive(cfg_.simd);
    // On multi-node hosts, pin workers round-robin across nodes so bank
    // shards stay local to the worker that owns them (DESIGN.md §14);
    // single-node hosts take the legacy unpinned path.
    if (cfg_.numaAware)
        pool_.setNumaPinning(numaTopology().nodeCpus);

    jit_.setThreadPool(&pool_);
    tc_.setThreadPool(&pool_);
    if (fault_.enabled())
        noc_.attachFaultInjector(&fault_);

    // Post-lowering verification (DESIGN.md §9): at Graphs re-check the
    // tDFG the JIT consumed; at Full additionally run the command hazard
    // analyzer. Failures surface as recoverable errors, so the executor
    // degrades the region rather than running hazardous commands.
    if (cfg_.verifyLevel != VerifyLevel::Off) {
        const VerifyLevel level = cfg_.verifyLevel;
        const SystemConfig cfg_copy = cfg_;
        jit_.setVerifyHook(
            [level, cfg_copy](const TdfgGraph &g, const InMemProgram &prog,
                              const TiledLayout &layout,
                              const AddressMap &map)
                -> std::optional<Error> {
                VerifyReport rep = verifyTdfg(g);
                if (level == VerifyLevel::Full)
                    rep.merge(verifyCommands(prog, layout, map, cfg_copy));
                if (!rep.clean()) {
                    infs_warn("verify: %s", rep.str().c_str());
                    return rep.toError();
                }
                return std::nullopt;
            });
    }
}

PrepareResult
InfinitySystem::prepareTransposed(Bytes bytes, double l3_residency)
{
    PrepareResult res;
    // Reserve the compute ways (idempotent across phases: callers release
    // at region end; here we tolerate already-reserved ways).
    if (l3_.reservedWays(0) == 0) {
        bool ok = l3_.reserveWays(cfg_.l3.computeWays);
        infs_assert(ok, "cannot reserve compute ways");
    }

    Bytes dram_bytes = static_cast<Bytes>(
        static_cast<double>(bytes) * (1.0 - l3_residency));
    res.dramBytes = dram_bytes;
    Tick dram_cycles = dram_bytes > 0 ? dram_.transfer(dram_bytes) : 0;

    // TTU conversion: one TTU per bank converts lines in parallel.
    Tick ttu_cycles =
        ttu_.conversionCycles(bytes / 4, DType::Fp32) / cfg_.l3.numBanks;

    // Layout conversion crosses banks: NUCA home bank -> tile bank.
    noc_.accountBulk(static_cast<double>(bytes), noc_.avgHops(),
                     TrafficClass::Data);
    l3_.read(0, bytes);
    l3_.write(0, bytes);
    energy_.charge(EnergyEvent::L3Access,
                   2.0 * static_cast<double>(bytes) / lineBytes);

    // Bank port bandwidth bound for the conversion sweep.
    Tick bw_cycles = l3_.streamCycles(2 * bytes, cfg_.l3.numBanks);
    res.cycles = std::max({dram_cycles, ttu_cycles, bw_cycles});
    res.movedBytes = bytes;
    return res;
}

Tick
InfinitySystem::releaseTransposed(Bytes dirty_bytes)
{
    if (l3_.reservedWays(0) > 0)
        l3_.releaseWays(l3_.reservedWays(0));
    if (dirty_bytes == 0)
        return 0;
    // Delayed release (§5.2): dirty data that fits the released cache
    // capacity stays resident as normal lines; only the overflow is
    // evicted to memory by the store stream.
    Bytes capacity = l3_.normalCapacity();
    Bytes writeback = dirty_bytes > capacity ? dirty_bytes - capacity : 0;
    if (writeback == 0)
        return 0;
    l3_.read(0, writeback);
    energy_.charge(EnergyEvent::L3Access,
                   static_cast<double>(writeback) / lineBytes);
    return dram_.transfer(writeback);
}

void
InfinitySystem::resetStats()
{
    noc_.resetStats();
    l3_.resetStats();
    dram_.resetStats();
    energy_.reset();
    jit_.resetStats();
    // Zero the fault counters AND restart the schedule from the config
    // seed, so every Executor::run() sees the identical fault sequence.
    fault_.reset();
}

} // namespace infs
