/**
 * @file
 * Shared helpers for workload factories.
 */

#ifndef INFS_WORKLOADS_COMMON_HH
#define INFS_WORKLOADS_COMMON_HH

#include "core/workload.hh"
#include "sim/rng.hh"

namespace infs {
namespace wl {

/** Fill an array with deterministic pseudo-random values in [lo, hi). */
inline void
randomFill(ArrayStore &store, ArrayId a, float lo, float hi,
           std::uint64_t seed)
{
    Rng rng(seed);
    for (float &v : store.array(a).data)
        v = rng.nextFloat(lo, hi);
}

/** Bytes of @p elems fp32 elements. */
inline Bytes
fp32Bytes(std::int64_t elems)
{
    return static_cast<Bytes>(elems) * 4;
}

} // namespace wl
} // namespace infs

#endif // INFS_WORKLOADS_COMMON_HH
