/**
 * @file
 * Jacobi stencils (Table 3: stencil1d/2d/3d): shift movement, elementwise
 * compute, iterative sweeps alternating source and destination arrays.
 */

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace infs {

namespace {

/** Common scaffolding for the three stencils. */
Workload
stencilCommon(std::string name, std::vector<Coord> shape, unsigned iters,
              unsigned points)
{
    std::int64_t elems = 1;
    for (Coord s : shape)
        elems *= s;
    Workload w;
    w.name = std::move(name);
    w.primaryShape = shape;
    w.footprintBytes = wl::fp32Bytes(2 * elems);
    w.dirtyBytes = wl::fp32Bytes(elems);

    w.setup = [shape](ArrayStore &s) {
        ArrayId a = s.declare("A", shape);
        s.declare("B", shape);
        wl::randomFill(s, a, -1, 1, 7);
    };

    Phase p;
    p.name = "sweep";
    p.iterations = iters;
    p.sameTdfgEachIter = true; // Memoized commands (§4.2: stencils).
    NearStream ld, st;
    ld.pattern = AccessPattern::linear(0, 0, elems);
    ld.forwardTo = 1;
    st.pattern = AccessPattern::linear(1, 0, elems);
    st.isStore = true;
    st.flopsPerElem = points;
    p.streams = {ld, st};
    p.coreFlopsPerIter = static_cast<std::uint64_t>(elems) * points;
    p.coreBytesPerIter = wl::fp32Bytes(2 * elems);
    w.phases.push_back(std::move(p));
    return w;
}

} // namespace

Workload
makeStencil1d(Coord n, unsigned iters)
{
    Workload w = stencilCommon("stencil1d", {n}, iters, 3);
    w.phases[0].buildTdfg = [n](std::uint64_t it) {
        ArrayId src = static_cast<ArrayId>(it % 2);
        ArrayId dst = static_cast<ArrayId>(1 - it % 2);
        TdfgGraph g(1, "stencil1d");
        NodeId a0 = g.tensor(src, HyperRect::interval(0, n - 2));
        NodeId a1 = g.tensor(src, HyperRect::interval(1, n - 1));
        NodeId a2 = g.tensor(src, HyperRect::interval(2, n));
        NodeId sum = g.compute(BitOp::Add,
                               {g.move(a0, 0, 1), a1, g.move(a2, 0, -1)});
        NodeId scaled = g.compute(BitOp::Mul, {sum, g.constant(1.0 / 3)});
        g.output(scaled, dst);
        return g;
    };
    w.reference = [n, iters](ArrayStore &s) {
        for (unsigned it = 0; it < iters; ++it) {
            auto &src = s.array(static_cast<ArrayId>(it % 2)).data;
            auto &dst = s.array(static_cast<ArrayId>(1 - it % 2)).data;
            for (Coord i = 1; i < n - 1; ++i)
                dst[i] = (src[i - 1] + src[i] + src[i + 1]) *
                         (1.0f / 3.0f);
        }
    };
    return w;
}

Workload
makeStencil2d(Coord n0, Coord n1, unsigned iters)
{
    Workload w = stencilCommon("stencil2d", {n0, n1}, iters, 5);
    w.phases[0].buildTdfg = [n0, n1](std::uint64_t it) {
        ArrayId src = static_cast<ArrayId>(it % 2);
        ArrayId dst = static_cast<ArrayId>(1 - it % 2);
        TdfgGraph g(2, "stencil2d");
        HyperRect inner = HyperRect::box2(1, n0 - 1, 1, n1 - 1);
        // Accumulate pairwise so each moved tensor's register frees
        // right after use (8 wordline registers, no spilling — §6).
        NodeId acc = g.tensor(src, inner);
        for (unsigned dim = 0; dim < 2; ++dim)
            for (Coord d : {Coord(-1), Coord(1)}) {
                NodeId t = g.tensor(src, inner.shifted(dim, d));
                acc = g.compute(BitOp::Add, {acc, g.move(t, dim, -d)});
            }
        g.output(g.compute(BitOp::Mul, {acc, g.constant(0.2)}), dst);
        return g;
    };
    w.reference = [n0, n1, iters](ArrayStore &s) {
        for (unsigned it = 0; it < iters; ++it) {
            auto &src = s.array(static_cast<ArrayId>(it % 2));
            auto &dst = s.array(static_cast<ArrayId>(1 - it % 2));
            for (Coord j = 1; j < n1 - 1; ++j)
                for (Coord i = 1; i < n0 - 1; ++i)
                    dst.at({i, j}) =
                        0.2f * (src.at({i, j}) + src.at({i - 1, j}) +
                                src.at({i + 1, j}) + src.at({i, j - 1}) +
                                src.at({i, j + 1}));
        }
    };
    return w;
}

Workload
makeStencil3d(Coord n0, Coord n1, Coord n2, unsigned iters)
{
    Workload w = stencilCommon("stencil3d", {n0, n1, n2}, iters, 7);
    w.phases[0].buildTdfg = [n0, n1, n2](std::uint64_t it) {
        ArrayId src = static_cast<ArrayId>(it % 2);
        ArrayId dst = static_cast<ArrayId>(1 - it % 2);
        TdfgGraph g(3, "stencil3d");
        HyperRect inner =
            HyperRect::box3(1, n0 - 1, 1, n1 - 1, 1, n2 - 1);
        // Pairwise accumulation keeps register pressure at four slots.
        NodeId acc = g.tensor(src, inner);
        for (unsigned dim = 0; dim < 3; ++dim) {
            for (Coord d : {Coord(-1), Coord(1)}) {
                NodeId t = g.tensor(src, inner.shifted(dim, d));
                acc = g.compute(BitOp::Add, {acc, g.move(t, dim, -d)});
            }
        }
        g.output(g.compute(BitOp::Mul, {acc, g.constant(1.0 / 7)}), dst);
        return g;
    };
    w.reference = [n0, n1, n2, iters](ArrayStore &s) {
        for (unsigned it = 0; it < iters; ++it) {
            auto &src = s.array(static_cast<ArrayId>(it % 2));
            auto &dst = s.array(static_cast<ArrayId>(1 - it % 2));
            for (Coord k = 1; k < n2 - 1; ++k)
                for (Coord j = 1; j < n1 - 1; ++j)
                    for (Coord i = 1; i < n0 - 1; ++i)
                        dst.at({i, j, k}) =
                            (1.0f / 7.0f) *
                            (src.at({i, j, k}) + src.at({i - 1, j, k}) +
                             src.at({i + 1, j, k}) + src.at({i, j - 1, k}) +
                             src.at({i, j + 1, k}) + src.at({i, j, k - 1}) +
                             src.at({i, j, k + 1}));
        }
    };
    return w;
}

} // namespace infs
