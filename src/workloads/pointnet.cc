/**
 * @file
 * PointNet++ SSG/MSG classifiers (§8 case study). Functional semantics
 * are implemented by scalar stage functions (sampling, query, gather,
 * MLP, aggregate); the timing phases carry near-memory stream forms and
 * tDFGs so the runtime's paradigm choice plays out per stage (Fig 19).
 */

#include "workloads/pointnet.hh"

#include <algorithm>
#include <cmath>

#include "workloads/common.hh"

namespace infs {

SaParams
pointNetSa(unsigned index)
{
    switch (index) {
      case 1: return {512, 32, 0.2f, {64, 64, 128}};
      case 2: return {128, 64, 0.4f, {128, 128, 256}};
      case 3: return {1, 128, 1e30f, {256, 512, 1024}};
      case 4: return {512, 16, 0.1f, {32, 32, 64}};
      case 5: return {512, 32, 0.2f, {64, 64, 128}};
      case 6: return {512, 128, 0.4f, {64, 96, 128}};
      case 7: return {128, 16, 0.2f, {64, 64, 128}};
      case 8: return {128, 32, 0.4f, {128, 128, 256}};
      case 9: return {128, 128, 0.8f, {128, 128, 256}};
      default: infs_panic("no SA%u in Table 4", index);
    }
}

namespace {

// ---------------------------------------------------------------------
// Scalar stage implementations (functional reference semantics).
// ---------------------------------------------------------------------

float
dist2(const StoredArray &coords, Coord a, Coord b)
{
    float acc = 0.0f;
    for (Coord d = 0; d < 3; ++d) {
        float diff = coords.at({d, a}) - coords.at({d, b});
        acc += diff * diff;
    }
    return acc;
}

/** Furthest-point sampling: K centroids from P points. */
void
fpsStage(ArrayStore &s, ArrayId coords_id, Coord p_count, ArrayId idx_id,
         Coord k_count)
{
    const StoredArray &coords = s.array(coords_id);
    StoredArray &idx = s.array(idx_id);
    std::vector<float> best(static_cast<std::size_t>(p_count), 1e30f);
    Coord cur = 0; // First centroid: point 0 (deterministic).
    for (Coord k = 0; k < k_count; ++k) {
        idx.data[static_cast<std::size_t>(k)] = static_cast<float>(cur);
        Coord far = 0;
        float far_d = -1.0f;
        for (Coord p = 0; p < p_count; ++p) {
            float d = dist2(coords, p, cur);
            auto &b = best[static_cast<std::size_t>(p)];
            b = std::min(b, d);
            if (b > far_d) {
                far_d = b;
                far = p;
            }
        }
        cur = far;
    }
}

/** Ball query: N neighbors within radius per centroid (first repeated). */
void
queryStage(ArrayStore &s, ArrayId coords_id, Coord p_count, ArrayId idx_id,
           Coord k_count, float radius, Coord n_count, ArrayId nbr_id)
{
    const StoredArray &coords = s.array(coords_id);
    const StoredArray &idx = s.array(idx_id);
    StoredArray &nbr = s.array(nbr_id);
    const float r2 = radius * radius;
    for (Coord k = 0; k < k_count; ++k) {
        Coord c = static_cast<Coord>(
            idx.data[static_cast<std::size_t>(k)]);
        Coord found = 0;
        Coord first = -1;
        for (Coord p = 0; p < p_count && found < n_count; ++p) {
            if (dist2(coords, p, c) <= r2) {
                if (first < 0)
                    first = p;
                nbr.data[static_cast<std::size_t>(found + n_count * k)] =
                    static_cast<float>(p);
                ++found;
            }
        }
        if (first < 0)
            first = c; // Degenerate ball: fall back to the centroid.
        for (; found < n_count; ++found)
            nbr.data[static_cast<std::size_t>(found + n_count * k)] =
                static_cast<float>(first);
    }
}

/** Gather neighbor features (coords ++ input features). */
void
gatherStage(ArrayStore &s, ArrayId coords_id, ArrayId feats_id,
            Coord feat_dim, ArrayId nbr_id, Coord total, ArrayId out_id)
{
    const StoredArray &coords = s.array(coords_id);
    const StoredArray &nbr = s.array(nbr_id);
    StoredArray &out = s.array(out_id);
    for (Coord i = 0; i < total; ++i) {
        Coord p = static_cast<Coord>(
            nbr.data[static_cast<std::size_t>(i)]);
        for (Coord d = 0; d < 3; ++d)
            out.at({d, i}) = coords.at({d, p});
        if (feat_dim > 0) {
            const StoredArray &feats = s.array(feats_id);
            for (Coord d = 0; d < feat_dim; ++d)
                out.at({3 + d, i}) = feats.at({d, p});
        }
    }
}

/** Dense layer with ReLU: out = relu(W x in). */
void
mlpStage(ArrayStore &s, ArrayId in_id, Coord din, ArrayId w_id, Coord dout,
         Coord total, ArrayId out_id)
{
    const StoredArray &in = s.array(in_id);
    const StoredArray &wt = s.array(w_id);
    StoredArray &out = s.array(out_id);
    for (Coord i = 0; i < total; ++i)
        for (Coord o = 0; o < dout; ++o) {
            float acc = 0.0f;
            for (Coord d = 0; d < din; ++d)
                acc += wt.at({o, d}) * in.at({d, i});
            out.at({o, i}) = std::max(acc, 0.0f);
        }
}

/** Max-aggregate neighbors per centroid. */
void
aggregateStage(ArrayStore &s, ArrayId in_id, Coord dout, Coord n_count,
               Coord k_count, ArrayId out_id)
{
    const StoredArray &in = s.array(in_id);
    StoredArray &out = s.array(out_id);
    for (Coord k = 0; k < k_count; ++k)
        for (Coord o = 0; o < dout; ++o) {
            float m = -1e30f;
            for (Coord n = 0; n < n_count; ++n)
                m = std::max(m, in.at({o, n + n_count * k}));
            out.at({o, k}) = m;
        }
}

/** Centroid coordinates gathered out for the next SA. */
void
centroidCoords(ArrayStore &s, ArrayId coords_id, ArrayId idx_id,
               Coord k_count, ArrayId out_id)
{
    const StoredArray &coords = s.array(coords_id);
    const StoredArray &idx = s.array(idx_id);
    StoredArray &out = s.array(out_id);
    for (Coord k = 0; k < k_count; ++k) {
        Coord p = static_cast<Coord>(
            idx.data[static_cast<std::size_t>(k)]);
        for (Coord d = 0; d < 3; ++d)
            out.at({d, k}) = coords.at({d, p});
    }
}

// ---------------------------------------------------------------------
// Workload assembly.
// ---------------------------------------------------------------------

/** Deferred array declarations so ids match planning order. */
struct ArrayPlan {
    std::string name;
    std::vector<Coord> shape;
    int fillSeed = -1; ///< >= 0: random-fill with this seed.
};

struct Builder {
    std::vector<ArrayPlan> arrays;
    Workload w;

    ArrayId
    declare(std::string name, std::vector<Coord> shape, int seed = -1)
    {
        arrays.push_back({std::move(name), std::move(shape), seed});
        return static_cast<ArrayId>(arrays.size() - 1);
    }

    /** Timing phase for an MLP layer (outer-product dataflow). */
    Phase
    mlpPhase(std::string name, ArrayId in, Coord din, ArrayId wt,
             Coord dout, Coord total, ArrayId out)
    {
        Phase p;
        p.name = std::move(name);
        p.iterations = static_cast<std::uint64_t>(din);
        p.sameTdfgEachIter = true;
        p.buildTdfg = [=](std::uint64_t iter) {
            const Coord d = static_cast<Coord>(iter);
            TdfgGraph g(2, "mlp_layer");
            NodeId row = g.tensor(in, HyperRect::box2(d, d + 1, 0, total));
            NodeId in_bc = g.broadcast(g.move(row, 0, -d), 0, 0, dout);
            NodeId wcol = g.tensor(wt, HyperRect::box2(0, dout, d, d + 1));
            NodeId w_bc = g.broadcast(g.move(wcol, 1, -d), 1, 0, total);
            NodeId acc = g.tensor(out, HyperRect::box2(0, dout, 0, total));
            NodeId mac = g.compute(
                BitOp::Add, {acc, g.compute(BitOp::Mul, {in_bc, w_bc})});
            g.output(mac, out);
            return g;
        };
        p.functionalFallback = [=](ArrayStore &s, std::uint64_t iter) {
            // Functional form runs the whole layer once on the last
            // iteration (scalar, with ReLU).
            if (iter + 1 == static_cast<std::uint64_t>(din))
                mlpStage(s, in, din, wt, dout, total, out);
        };
        NearStream si, so;
        si.pattern = AccessPattern::linear(in, 0, total);
        si.forwardTo = 1;
        so.pattern = AccessPattern::linear(out, 0, Coord(dout) * total);
        so.isStore = true;
        so.flopsPerElem = 2;
        p.streams = {si, so};
        p.coreFlopsPerIter = static_cast<std::uint64_t>(2) * dout * total;
        p.coreBytesPerIter = wl::fp32Bytes(
            total + dout + Coord(dout) * total / std::max<Coord>(din, 1));
        // MLP layers have L2-resident weights and good locality; the
        // OpenMP overhead is amortized across the whole layer.
        p.baseSyncPerIter = 100;
        return p;
    }

    /** Append one SA stage; returns {coords, feats, featDim} outputs. */
    std::tuple<ArrayId, ArrayId, Coord>
    addSa(const std::string &label, const SaParams &sa, ArrayId coords,
          ArrayId feats, Coord feat_dim, Coord p_count)
    {
        const Coord total = sa.K * sa.N;
        const Coord din0 = 3 + feat_dim;
        ArrayId idx = declare(label + ".idx", {sa.K});
        ArrayId nbr = declare(label + ".nbr", {total});
        ArrayId grouped = declare(label + ".grouped", {din0, total});
        ArrayId w1 = declare(label + ".w1", {sa.dims[0], din0}, 101);
        ArrayId l1 = declare(label + ".l1", {sa.dims[0], total});
        ArrayId w2 = declare(label + ".w2", {sa.dims[1], sa.dims[0]}, 102);
        ArrayId l2 = declare(label + ".l2", {sa.dims[1], total});
        ArrayId w3 = declare(label + ".w3", {sa.dims[2], sa.dims[1]}, 103);
        ArrayId l3 = declare(label + ".l3", {sa.dims[2], total});
        ArrayId out_feats =
            declare(label + ".out", {sa.dims[2], sa.K});
        ArrayId out_coords = declare(label + ".coords", {3, sa.K});

        // --- Furthest sample: iterative, near-memory friendly (§8).
        Phase sample;
        sample.name = label + ".sample";
        sample.iterations = static_cast<std::uint64_t>(sa.K);
        sample.functionalFallback = [=](ArrayStore &s, std::uint64_t it) {
            if (it == 0)
                fpsStage(s, coords, p_count, idx, sa.K);
        };
        NearStream scan;
        scan.pattern = AccessPattern::linear(coords, 0, 3 * p_count);
        scan.isReduce = true;
        scan.flopsPerElem = 3;
        sample.streams = {scan};
        sample.coreFlopsPerIter = static_cast<std::uint64_t>(8) * p_count;
        sample.coreBytesPerIter = wl::fp32Bytes(4 * p_count);
        w.phases.push_back(std::move(sample));

        // --- Ball query.
        Phase query;
        query.name = label + ".query";
        query.functionalFallback = [=](ArrayStore &s, std::uint64_t) {
            queryStage(s, coords, p_count, idx, sa.K, sa.radius, sa.N,
                       nbr);
            centroidCoords(s, coords, idx, sa.K, out_coords);
        };
        NearStream qscan;
        qscan.pattern = AccessPattern::linear(coords, 0, 3 * p_count);
        qscan.isReduce = true;
        qscan.flopsPerElem = static_cast<unsigned>(
            std::max<Coord>(sa.K / 8, 1));
        query.streams = {qscan};
        query.coreFlopsPerIter =
            static_cast<std::uint64_t>(8) * sa.K * p_count;
        query.coreBytesPerIter = wl::fp32Bytes(4 * p_count) * sa.K / 8;
        w.phases.push_back(std::move(query));

        // --- Gather (indirect).
        Phase gather;
        gather.name = label + ".gather";
        gather.functionalFallback = [=](ArrayStore &s, std::uint64_t) {
            gatherStage(s, coords, feats, feat_dim, nbr, total, grouped);
        };
        NearStream gi, gr;
        gi.pattern = AccessPattern::linear(nbr, 0, total);
        gi.forwardTo = 1;
        gr.pattern = AccessPattern::gather(grouped, nbr, total);
        gather.streams = {gi, gr};
        gather.coreFlopsPerIter = 0;
        gather.coreBytesPerIter = wl::fp32Bytes(Coord(din0) * total);
        w.phases.push_back(std::move(gather));

        // --- 3-layer MLP.
        w.phases.push_back(mlpPhase(label + ".mlp1", grouped, din0, w1,
                                    sa.dims[0], total, l1));
        w.phases.push_back(mlpPhase(label + ".mlp2", l1, sa.dims[0], w2,
                                    sa.dims[1], total, l2));
        w.phases.push_back(mlpPhase(label + ".mlp3", l2, sa.dims[1], w3,
                                    sa.dims[2], total, l3));

        // --- Aggregate: in-memory max reduction over the neighbors.
        Phase agg;
        agg.name = label + ".aggregate";
        agg.latticeShape = {sa.dims[2], sa.N, sa.K};
        agg.buildTdfg = [=](std::uint64_t) {
            TdfgGraph g(3, "aggregate");
            // Lattice {dout, N, K}; l3 is addressed as such by the LOT.
            NodeId t = g.tensor(
                l3, HyperRect::box3(0, sa.dims[2], 0, sa.N, 0, sa.K));
            g.output(g.reduce(t, BitOp::Max, 1), out_feats);
            return g;
        };
        agg.functionalFallback = [=](ArrayStore &s, std::uint64_t) {
            aggregateStage(s, l3, sa.dims[2], sa.N, sa.K, out_feats);
        };
        NearStream ared;
        ared.pattern =
            AccessPattern::linear(l3, 0, Coord(sa.dims[2]) * total);
        ared.isReduce = true;
        ared.flopsPerElem = 1;
        agg.streams = {ared};
        agg.coreFlopsPerIter =
            static_cast<std::uint64_t>(sa.dims[2]) * total;
        agg.coreBytesPerIter = wl::fp32Bytes(Coord(sa.dims[2]) * total);
        w.phases.push_back(std::move(agg));

        return {out_coords, out_feats, sa.dims[2]};
    }

    /** The final FC x 3 classification head (widths 512, 256, 10). */
    void
    addFc(ArrayId feats, Coord feat_dim)
    {
        Coord widths[3] = {512, 256, 10};
        ArrayId in = feats;
        Coord din = feat_dim;
        for (int l = 0; l < 3; ++l) {
            ArrayId wt = declare("fc" + std::to_string(l + 1) + ".w",
                                 {widths[l], din}, 110 + l);
            ArrayId out = declare("fc" + std::to_string(l + 1) + ".out",
                                  {widths[l], 1});
            w.phases.push_back(mlpPhase("FC" + std::to_string(l + 1), in,
                                        din, wt, widths[l], 1, out));
            in = out;
            din = widths[l];
        }
    }

    Workload
    finish(Coord points)
    {
        std::vector<ArrayPlan> plans = arrays;
        w.setup = [plans, points](ArrayStore &s) {
            for (const ArrayPlan &p : plans) {
                ArrayId id = s.declare(p.name, p.shape);
                if (p.fillSeed >= 0)
                    wl::randomFill(s, id, -0.5f, 0.5f,
                                   static_cast<std::uint64_t>(p.fillSeed));
            }
            // Input cloud: uniform random in [0, 1) (§8).
            wl::randomFill(s, 0, 0.0f, 1.0f, 99);
            // Clamp into [0,1) exactly.
            for (float &v : s.array(0).data)
                v = std::min(std::max(v + 0.5f, 0.0f), 0.999f);
        };
        // Footprint: all arrays.
        Bytes bytes = 0;
        for (const ArrayPlan &p : plans) {
            std::int64_t n = 1;
            for (Coord d : p.shape)
                n *= d;
            bytes += wl::fp32Bytes(n);
        }
        w.footprintBytes = bytes;
        w.dirtyBytes = bytes / 4;
        w.primaryShape = {pointNetSa(1).dims[2],
                          points}; // Largest MLP activation lattice.
        return std::move(w);
    }
};

} // namespace

Workload
makePointNetSSG(Coord points)
{
    Builder b;
    b.w.name = "pointnet_ssg";
    ArrayId cloud = b.declare("cloud", {3, points});
    (void)cloud;
    auto [c1, f1, d1] = b.addSa("SA1", pointNetSa(1), 0, invalidArray, 0,
                                points);
    auto [c2, f2, d2] =
        b.addSa("SA2", pointNetSa(2), c1, f1, d1, pointNetSa(1).K);
    auto [c3, f3, d3] =
        b.addSa("SA3", pointNetSa(3), c2, f2, d2, pointNetSa(2).K);
    (void)c3;
    b.addFc(f3, d3);
    return b.finish(points);
}

Workload
makePointNetMSG(Coord points)
{
    Builder b;
    b.w.name = "pointnet_msg";
    b.declare("cloud", {3, points});
    // First MSG group: SA4, SA5, SA6 share the input cloud.
    std::vector<std::tuple<ArrayId, ArrayId, Coord>> g1;
    for (unsigned i : {4u, 5u, 6u})
        g1.push_back(b.addSa("MSG1.SA" + std::to_string(i),
                             pointNetSa(i), 0, invalidArray, 0, points));
    // Concatenated features feed the second group; model with the widest
    // member (feature concatenation is a layout no-op in the store).
    auto [c_a, f_a, d_a] = g1[1];
    Coord concat1 = 0;
    for (auto &[c, f, d] : g1)
        concat1 += d;
    (void)d_a;
    std::vector<std::tuple<ArrayId, ArrayId, Coord>> g2;
    for (unsigned i : {7u, 8u, 9u})
        g2.push_back(b.addSa("MSG2.SA" + std::to_string(i),
                             pointNetSa(i), c_a, f_a,
                             std::get<2>(g1[1]), pointNetSa(4).K));
    auto [c_b, f_b, d_b] = g2[1];
    auto [c3, f3, d3] =
        b.addSa("SA3", pointNetSa(3), c_b, f_b, d_b, pointNetSa(7).K);
    (void)c3;
    (void)concat1;
    b.addFc(f3, d3);
    return b.finish(points);
}

} // namespace infs
