/**
 * @file
 * The shared seed-scenario registry: the 17 bench scenarios with their
 * tier-1 (quick) and paper-scale (full) factories. infs-bench,
 * infs-verify, and the backend differential tests all consume this one
 * table so scenario names and sizes cannot drift between tools.
 */

#ifndef INFS_WORKLOADS_REGISTRY_HH
#define INFS_WORKLOADS_REGISTRY_HH

#include <functional>
#include <string>
#include <vector>

#include "core/workload.hh"

namespace infs {

/** One named scenario with its two size points. */
struct BenchScenario {
    const char *name;
    std::function<Workload()> quick; ///< Tier-1 sizes (CI smoke).
    std::function<Workload()> full;  ///< Larger sizes for real timing.
};

/** The 17 seed scenarios. */
const std::vector<BenchScenario> &benchRegistry();

/** Lookup by name; nullptr when unknown. */
const BenchScenario *findScenario(const std::string &name);

} // namespace infs

#endif // INFS_WORKLOADS_REGISTRY_HH
