/**
 * @file
 * Gaussian elimination (Fig 4c, Fig 7): per-k region with broadcast data
 * movement; the shrinking tensors are re-lowered every iteration (no JIT
 * memoization — the paper's JIT-overhead outlier).
 *
 * Lattice convention: dim 0 = column j (innermost), dim 1 = row i.
 * A is {n, n}; B is {1, n} so rows of B share dim 1 with A.
 */

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace infs {

Workload
makeGaussElim(Coord n)
{
    Workload w;
    w.name = "gauss_elim";
    w.primaryShape = {n, n};
    w.footprintBytes = wl::fp32Bytes(n * n + n);
    w.dirtyBytes = wl::fp32Bytes(n * n + n);

    w.setup = [n](ArrayStore &s) {
        ArrayId a = s.declare("A", {n, n});
        ArrayId b = s.declare("B", {1, n});
        wl::randomFill(s, a, 1, 2, 21);
        wl::randomFill(s, b, -1, 1, 22);
        // Diagonal dominance keeps the elimination well conditioned.
        for (Coord i = 0; i < n; ++i)
            s.array(a).at({i, i}) += static_cast<float>(2 * n);
        (void)b;
    };

    Phase p;
    p.name = "eliminate";
    p.iterations = static_cast<std::uint64_t>(n - 1);
    p.sameTdfgEachIter = false; // Shrinking tensors defeat memoization.
    p.buildTdfg = [n](std::uint64_t iter) {
        const Coord k = static_cast<Coord>(iter);
        TdfgGraph g(2, "gauss_k" + std::to_string(k));
        // m[i] = A[i][k] / A[k][k] for i in (k, n).
        NodeId acol = g.tensor(0, HyperRect::box2(k, k + 1, k + 1, n),
                               "Aik");
        NodeId akk = g.tensor(0, HyperRect::box2(k, k + 1, k, k + 1),
                              "Akk");
        NodeId akk_bc = g.broadcast(akk, 1, 1, n - k - 1);
        NodeId m = g.compute(BitOp::Div, {acol, akk_bc}, "m");
        // B[i] -= m * B[k].
        NodeId bi = g.tensor(1, HyperRect::box2(0, 1, k + 1, n), "Bi");
        NodeId bk = g.tensor(1, HyperRect::box2(0, 1, k, k + 1), "bk");
        NodeId bk_bc = g.broadcast(bk, 1, 1, n - k - 1);
        NodeId m0 = g.move(m, 0, -k, "m_at_col0");
        NodeId b_new = g.compute(
            BitOp::Sub, {bi, g.compute(BitOp::Mul, {m0, bk_bc})});
        g.output(b_new, 1);
        // A[i][j] -= m * A[k][j] for i, j in (k, n).
        NodeId akj = g.tensor(0, HyperRect::box2(k + 1, n, k, k + 1),
                              "Akj");
        NodeId akj_bc = g.broadcast(akj, 1, 1, n - k - 1);
        NodeId m_bc = g.broadcast(m, 0, 1, n - k - 1);
        NodeId aij = g.tensor(0, HyperRect::box2(k + 1, n, k + 1, n),
                              "Aij");
        NodeId a_new = g.compute(
            BitOp::Sub, {aij, g.compute(BitOp::Mul, {m_bc, akj_bc})});
        g.output(a_new, 0);
        // Record the multipliers in the pivot column (standard LU form)
        // so the functional result is deterministic.
        g.output(m, 0);
        return g;
    };
    p.buildStreams = [n](std::uint64_t iter) {
        const Coord k = static_cast<Coord>(iter);
        const Coord rem = n - k - 1;
        // Near-memory form: row k broadcast, per-row multiplier division
        // and row update.
        NearStream pivot_row, update;
        pivot_row.pattern = AccessPattern::affine2(0, k * n + k + 1, rem,
                                                   0, 1);
        pivot_row.forwardTo = 1;
        update.pattern =
            AccessPattern::affine2(0, (k + 1) * n + k + 1, rem, n, rem);
        update.isStore = true;
        update.flopsPerElem = 2;
        return std::vector<NearStream>{pivot_row, update};
    };
    // Average per-iteration core cost: sum over k of 2 (n-k-1)^2 is
    // ~ 2 n^3 / 3; divide by n-1 iterations.
    p.coreFlopsPerIter =
        static_cast<std::uint64_t>(2.0 * n * n / 3.0);
    p.coreBytesPerIter = wl::fp32Bytes(n * n / 2);
    w.phases.push_back(std::move(p));

    w.reference = [n](ArrayStore &s) {
        StoredArray &a = s.array(0);
        StoredArray &b = s.array(1);
        for (Coord k = 0; k < n - 1; ++k) {
            float akk = a.at({k, k});
            for (Coord i = k + 1; i < n; ++i) {
                float m = a.at({k, i}) / akk;
                b.at({0, i}) -= m * b.at({0, k});
                for (Coord j = k + 1; j < n; ++j)
                    a.at({j, i}) -= m * a.at({j, k});
                a.at({k, i}) = m;
            }
        }
    };
    return w;
}

} // namespace infs
