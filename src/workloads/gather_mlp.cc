/**
 * @file
 * gather_mlp: an indirect gather of feature rows (near-memory) feeding a
 * dense layer (in-memory), the paper's canonical hybrid workload. The
 * dense layer uses the same inner/outer dataflow choice as mm (Fig 15).
 *
 * Arrays: Table=0 {k, rows}, Idx=1 {m}, W=2 {n, k}, G=3 {k, m},
 * Out=4 {n, m}.
 */

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace infs {

Workload
makeGatherMlp(Coord m, Coord n, Coord k, Coord rows, bool outer)
{
    Workload w;
    w.name = outer ? "gather_mlp/out" : "gather_mlp/in";
    w.primaryShape = {n, m};
    w.footprintBytes = wl::fp32Bytes(Coord(k) * rows + m + Coord(n) * k +
                                     Coord(k) * m + Coord(n) * m);
    w.dirtyBytes = wl::fp32Bytes(Coord(n) * m);

    w.setup = [=](ArrayStore &s) {
        ArrayId table = s.declare("Table", {k, rows});
        ArrayId idx = s.declare("Idx", {m});
        ArrayId wt = s.declare("W", {n, k});
        s.declare("G", {k, m});
        s.declare("Out", {n, m});
        wl::randomFill(s, table, -1, 1, 71);
        wl::randomFill(s, wt, -0.5, 0.5, 72);
        Rng rng(73);
        for (Coord i = 0; i < m; ++i)
            s.array(idx).data[static_cast<std::size_t>(i)] =
                static_cast<float>(rng.nextBounded(
                    static_cast<std::uint64_t>(rows)));
    };
    w.reference = [=](ArrayStore &s) {
        for (Coord i = 0; i < m; ++i) {
            Coord row = static_cast<Coord>(
                s.array(1).data[static_cast<std::size_t>(i)]);
            for (Coord d = 0; d < k; ++d)
                s.array(3).at({d, i}) = s.array(0).at({d, row});
        }
        for (Coord i = 0; i < m; ++i)
            for (Coord j = 0; j < n; ++j) {
                float acc = 0.0f;
                for (Coord d = 0; d < k; ++d)
                    acc += s.array(3).at({d, i}) * s.array(2).at({j, d});
                s.array(4).at({j, i}) = acc;
            }
    };

    // Phase 1: the indirect gather. Irregular: near-memory under NearL3
    // and InfS, core otherwise (§3.3 "a stream performs an indirect
    // access and lays out the data in a tensor format").
    Phase gather;
    gather.name = "gather";
    gather.functionalFallback = [=](ArrayStore &s, std::uint64_t) {
        for (Coord i = 0; i < m; ++i) {
            Coord row = static_cast<Coord>(
                s.array(1).data[static_cast<std::size_t>(i)]);
            for (Coord d = 0; d < k; ++d)
                s.array(3).at({d, i}) = s.array(0).at({d, row});
        }
    };
    NearStream gidx, grow;
    gidx.pattern = AccessPattern::linear(1, 0, m);
    gidx.forwardTo = 1;
    grow.pattern = AccessPattern::gather(0, 1, m);
    grow.isStore = false;
    grow.forwardTo = -1;
    gather.streams = {gidx, grow};
    gather.coreFlopsPerIter = 0;
    gather.coreBytesPerIter = wl::fp32Bytes(Coord(k) * m + m);
    w.phases.push_back(std::move(gather));

    // Phase 2: the dense layer Out = W x G (same shape as mm with the
    // gathered matrix as the K-side input).
    Workload dense = makeMm(m, n, k, outer);
    Phase layer = std::move(dense.phases[0]);
    layer.name = outer ? "layer_rank1" : "layer_dotcol";
    // Remap the mm array ids {A=0, B=1, C=2} -> {G=3, W=2, Out=4}.
    auto remap = [](ArrayId a) {
        switch (a) {
          case 0: return ArrayId(3);
          case 1: return ArrayId(2);
          case 2: return ArrayId(4);
          default: return a;
        }
    };
    auto base_build = layer.buildTdfg;
    layer.buildTdfg = [base_build, remap](std::uint64_t it) {
        TdfgGraph g0 = base_build(it);
        // Rebuild with remapped array ids.
        TdfgGraph g(g0.dims(), g0.name());
        std::vector<NodeId> map(g0.size());
        for (NodeId id = 0; id < g0.size(); ++id) {
            const TdfgNode &nd = g0.node(id);
            switch (nd.kind) {
              case TdfgKind::Tensor:
                map[id] = g.tensor(remap(nd.array), nd.domain, nd.name);
                break;
              case TdfgKind::ConstVal:
                map[id] = g.constant(nd.constValue, nd.name);
                break;
              case TdfgKind::Compute: {
                std::vector<NodeId> ops;
                for (NodeId op : nd.operands)
                    ops.push_back(map[op]);
                map[id] = g.compute(nd.fn, ops, nd.name);
                break;
              }
              case TdfgKind::Move:
                map[id] = g.move(map[nd.operands[0]], nd.dim, nd.dist,
                                 nd.name);
                break;
              case TdfgKind::Broadcast:
                map[id] = g.broadcast(map[nd.operands[0]], nd.dim,
                                      nd.dist, nd.count, nd.name);
                break;
              case TdfgKind::Shrink:
                map[id] = g.shrink(map[nd.operands[0]], nd.dim,
                                   nd.domain.lo(nd.dim),
                                   nd.domain.hi(nd.dim), nd.name);
                break;
              case TdfgKind::Reduce:
                map[id] = g.reduce(map[nd.operands[0]], nd.fn, nd.dim,
                                   nd.name);
                break;
              case TdfgKind::Stream: {
                AccessPattern pat = nd.pattern;
                pat.array = remap(pat.array);
                if (pat.indirectArray != invalidArray)
                    pat.indirectArray = remap(pat.indirectArray);
                NodeId in = nd.operands.empty() ? invalidNode
                                                : map[nd.operands[0]];
                map[id] = g.stream(nd.streamRole, pat, in, nd.domain,
                                   nd.name, nd.fn);
                break;
              }
            }
        }
        for (const auto &o : g0.outputs())
            g.output(map[o.node], remap(o.array));
        return g;
    };
    for (NearStream &s : layer.streams) {
        s.pattern.array = remap(s.pattern.array);
        if (s.pattern.indirectArray != invalidArray)
            s.pattern.indirectArray = remap(s.pattern.indirectArray);
    }
    for (NearStream &s : layer.residualStreams) {
        s.pattern.array = remap(s.pattern.array);
        if (s.pattern.indirectArray != invalidArray)
            s.pattern.indirectArray = remap(s.pattern.indirectArray);
    }
    w.phases.push_back(std::move(layer));
    return w;
}

} // namespace infs
