/**
 * @file
 * dwt2d: one level of an undecimated (stationary) 5/3 lifting wavelet,
 * rows then columns — shift movement with elementwise compute, matching
 * Table 3's characterization. The paper used a decimated DWT; the
 * stationary variant exercises the identical shift/compute command
 * pattern without strided tensors (see DESIGN.md substitutions).
 */

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace infs {

Workload
makeDwt2d(Coord n0, Coord n1)
{
    std::int64_t elems = static_cast<std::int64_t>(n0) * n1;
    Workload w;
    w.name = "dwt2d";
    w.primaryShape = {n0, n1};
    w.footprintBytes = wl::fp32Bytes(3 * elems);
    w.dirtyBytes = wl::fp32Bytes(2 * elems);

    w.setup = [n0, n1](ArrayStore &s) {
        ArrayId a = s.declare("A", {n0, n1});
        s.declare("D", {n0, n1});
        s.declare("S", {n0, n1});
        wl::randomFill(s, a, -2, 2, 11);
    };

    // Predict (detail) then update (smooth) along @p dim reading from
    // @p src into D (1) and S (2).
    auto buildPass = [n0, n1](ArrayId src, unsigned dim) {
        TdfgGraph g(2, dim == 0 ? "dwt_rows" : "dwt_cols");
        Coord nd = dim == 0 ? n0 : n1;
        HyperRect inner = HyperRect::box2(
            dim == 0 ? 1 : 0, dim == 0 ? n0 - 1 : n0,
            dim == 1 ? 1 : 0, dim == 1 ? n1 - 1 : n1);
        (void)nd;
        NodeId c = g.tensor(src, inner);
        NodeId l = g.move(g.tensor(src, inner.shifted(dim, -1)), dim, 1);
        NodeId r = g.move(g.tensor(src, inner.shifted(dim, 1)), dim, -1);
        // Predict: d = a - 0.5 * (left + right).
        NodeId mean = g.compute(BitOp::Mul,
                                {g.compute(BitOp::Add, {l, r}),
                                 g.constant(0.5)});
        NodeId d = g.compute(BitOp::Sub, {c, mean});
        g.output(d, 1);
        // Update: s = a + 0.25 * (d_left + d_right).
        NodeId dl = g.move(g.shrink(d, dim, inner.lo(dim), inner.hi(dim) - 1),
                           dim, 1);
        NodeId dr = g.move(g.shrink(d, dim, inner.lo(dim) + 1,
                                    inner.hi(dim)),
                           dim, -1);
        NodeId upd = g.compute(BitOp::Mul,
                               {g.compute(BitOp::Add, {dl, dr}),
                                g.constant(0.25)});
        NodeId sm = g.compute(BitOp::Add, {c, upd});
        g.output(sm, 2);
        return g;
    };

    for (unsigned dim = 0; dim < 2; ++dim) {
        Phase p;
        p.name = dim == 0 ? "rows" : "cols";
        // Rows read A; columns read the smooth output of the row pass.
        ArrayId src = dim == 0 ? 0 : 2;
        p.buildTdfg = [buildPass, src, dim](std::uint64_t) {
            return buildPass(src, dim);
        };
        NearStream ld, st1, st2;
        ld.pattern = AccessPattern::linear(src, 0, elems);
        ld.forwardTo = 1;
        st1.pattern = AccessPattern::linear(1, 0, elems);
        st1.isStore = true;
        st1.flopsPerElem = 3;
        st2.pattern = AccessPattern::linear(2, 0, elems);
        st2.isStore = true;
        st2.flopsPerElem = 3;
        p.streams = {ld, st1, st2};
        p.coreFlopsPerIter = static_cast<std::uint64_t>(elems) * 6;
        p.coreBytesPerIter = wl::fp32Bytes(3 * elems);
        w.phases.push_back(std::move(p));
    }

    w.reference = [n0, n1](ArrayStore &s) {
        auto pass = [&](const StoredArray &src, StoredArray &dd,
                        StoredArray &ss, unsigned dim) {
            Coord lim0 = dim == 0 ? n0 - 1 : n0;
            Coord lim1 = dim == 1 ? n1 - 1 : n1;
            Coord lo0 = dim == 0 ? 1 : 0;
            Coord lo1 = dim == 1 ? 1 : 0;
            auto shift = [&](Coord i, Coord j, Coord d) {
                return dim == 0 ? src.at({i + d, j}) : src.at({i, j + d});
            };
            // Predict.
            for (Coord j = lo1; j < lim1; ++j)
                for (Coord i = lo0; i < lim0; ++i)
                    dd.at({i, j}) = src.at({i, j}) -
                                    0.5f * (shift(i, j, -1) +
                                            shift(i, j, 1));
            // Update (uses predicted detail of the two neighbours; the
            // shrink keeps reads inside the computed interior).
            for (Coord j = lo1; j < lim1; ++j)
                for (Coord i = lo0; i < lim0; ++i) {
                    Coord il = dim == 0 ? i - 1 : i;
                    Coord jl = dim == 1 ? j - 1 : j;
                    Coord ir = dim == 0 ? i + 1 : i;
                    Coord jr = dim == 1 ? j + 1 : j;
                    bool l_ok = dim == 0 ? il >= lo0 : jl >= lo1;
                    bool r_ok = dim == 0 ? ir < lim0 : jr < lim1;
                    float dl = l_ok ? dd.at({il, jl}) : 0.0f;
                    float dr = r_ok ? dd.at({ir, jr}) : 0.0f;
                    if (!l_ok || !r_ok) {
                        // Outside the shrink: the tDFG writes nothing.
                        continue;
                    }
                    ss.at({i, j}) = src.at({i, j}) + 0.25f * (dl + dr);
                }
        };
        pass(s.array(0), s.array(1), s.array(2), 0);
        pass(s.array(2), s.array(1), s.array(2), 1);
    };
    return w;
}

} // namespace infs
