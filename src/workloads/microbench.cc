/**
 * @file
 * Fig 2 microbenchmarks: vec_add and array_sum.
 */

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace infs {

Workload
makeVecAdd(Coord n)
{
    Workload w;
    w.name = "vec_add";
    w.primaryShape = {n};
    w.footprintBytes = wl::fp32Bytes(3 * n);
    w.dirtyBytes = wl::fp32Bytes(n);

    w.setup = [n](ArrayStore &s) {
        ArrayId a = s.declare("A", {n});
        ArrayId b = s.declare("B", {n});
        s.declare("C", {n});
        wl::randomFill(s, a, -10, 10, 1);
        wl::randomFill(s, b, -10, 10, 2);
    };
    w.reference = [n](ArrayStore &s) {
        for (Coord i = 0; i < n; ++i)
            s.array(2).data[i] = s.array(0).data[i] + s.array(1).data[i];
    };

    Phase p;
    p.name = "add";
    p.buildTdfg = [n](std::uint64_t) {
        TdfgGraph g(1, "vec_add");
        NodeId a = g.tensor(0, HyperRect::interval(0, n), "A");
        NodeId b = g.tensor(1, HyperRect::interval(0, n), "B");
        g.output(g.compute(BitOp::Add, {a, b}), 2);
        return g;
    };
    // sDFG (Fig 1b): A and B forward to the storing stream C.
    NearStream sa, sb, sc;
    sa.pattern = AccessPattern::linear(0, 0, n);
    sa.forwardTo = 2;
    sb.pattern = AccessPattern::linear(1, 0, n);
    sb.forwardTo = 2;
    sc.pattern = AccessPattern::linear(2, 0, n);
    sc.isStore = true;
    sc.flopsPerElem = 1;
    p.streams = {sa, sb, sc};
    p.coreFlopsPerIter = static_cast<std::uint64_t>(n);
    p.coreBytesPerIter = wl::fp32Bytes(3 * n);
    w.phases.push_back(std::move(p));
    return w;
}

Workload
makeArraySum(Coord n)
{
    Workload w;
    w.name = "array_sum";
    w.primaryShape = {n};
    w.footprintBytes = wl::fp32Bytes(n);
    w.dirtyBytes = 0;

    w.setup = [n](ArrayStore &s) {
        ArrayId a = s.declare("A", {n});
        s.declare("Out", {1});
        wl::randomFill(s, a, -1, 1, 3);
    };
    w.reference = [n](ArrayStore &s) {
        // Tree-order accumulation to stay fp-comparable with the
        // in-memory reduction (pairwise); plain serial is close enough
        // for the tolerances used in tests.
        double acc = 0.0;
        for (Coord i = 0; i < n; ++i)
            acc += s.array(0).data[i];
        s.array(1).data[0] = static_cast<float>(acc);
    };

    Phase p;
    p.name = "sum";
    p.buildTdfg = [n](std::uint64_t) {
        TdfgGraph g(1, "array_sum");
        NodeId a = g.tensor(0, HyperRect::interval(0, n), "A");
        NodeId part = g.reduce(a, BitOp::Add, 0, "partial");
        // Near-memory stream collects the per-tile partials (Fig 4b).
        g.stream(StreamRole::Reduce, AccessPattern::linear(0, 0, n), part,
                 HyperRect{}, "final");
        g.output(part, 1);
        return g;
    };
    NearStream sum;
    sum.pattern = AccessPattern::linear(0, 0, n);
    sum.isReduce = true;
    sum.flopsPerElem = 1;
    p.streams = {sum};
    // Residual: final reduce of one partial per tile.
    NearStream fin;
    Coord tiles = std::max<Coord>(n / 256, 1);
    fin.pattern = AccessPattern::linear(0, 0, tiles);
    fin.isReduce = true;
    fin.flopsPerElem = 1;
    p.residualStreams = {fin};
    p.coreFlopsPerIter = static_cast<std::uint64_t>(n);
    p.coreBytesPerIter = wl::fp32Bytes(n);
    p.residualFlopsPerIter = static_cast<std::uint64_t>(tiles);
    p.residualBytesPerIter = wl::fp32Bytes(tiles);
    w.phases.push_back(std::move(p));
    return w;
}

} // namespace infs
