#include "workloads/registry.hh"

#include "workloads/pointnet.hh"
#include "workloads/workloads.hh"

namespace infs {

const std::vector<BenchScenario> &
benchRegistry()
{
    static const std::vector<BenchScenario> entries = {
        {"vec_add", [] { return makeVecAdd(512); },
         [] { return makeVecAdd(1 << 18); }},
        {"array_sum", [] { return makeArraySum(1000); },
         [] { return makeArraySum(1 << 18); }},
        {"stencil1d", [] { return makeStencil1d(256, 4); },
         [] { return makeStencil1d(1 << 16, 8); }},
        {"stencil2d", [] { return makeStencil2d(32, 24, 3); },
         [] { return makeStencil2d(256, 256, 6); }},
        {"stencil3d", [] { return makeStencil3d(16, 12, 8, 2); },
         [] { return makeStencil3d(64, 64, 32, 4); }},
        {"dwt2d", [] { return makeDwt2d(32, 32); },
         [] { return makeDwt2d(256, 256); }},
        {"gauss_elim", [] { return makeGaussElim(24); },
         [] { return makeGaussElim(96); }},
        {"conv2d", [] { return makeConv2d(24, 20); },
         [] { return makeConv2d(128, 128); }},
        {"conv3d", [] { return makeConv3d(10, 8, 4, 3); },
         [] { return makeConv3d(32, 32, 8, 8); }},
        {"mm_outer", [] { return makeMm(12, 16, 8, true); },
         [] { return makeMm(64, 64, 64, true); }},
        {"mm_inner", [] { return makeMm(12, 16, 8, false); },
         [] { return makeMm(64, 64, 64, false); }},
        {"kmeans_outer", [] { return makeKmeans(64, 8, 4, true); },
         [] { return makeKmeans(1024, 16, 8, true); }},
        {"kmeans_inner", [] { return makeKmeans(64, 8, 4, false); },
         [] { return makeKmeans(1024, 16, 8, false); }},
        {"gather_mlp_outer",
         [] { return makeGatherMlp(24, 8, 6, 40, true); },
         [] { return makeGatherMlp(128, 32, 24, 256, true); }},
        {"gather_mlp_inner",
         [] { return makeGatherMlp(24, 8, 6, 40, false); },
         [] { return makeGatherMlp(128, 32, 24, 256, false); }},
        {"pointnet_ssg", [] { return makePointNetSSG(128); },
         [] { return makePointNetSSG(512); }},
        {"pointnet_msg", [] { return makePointNetMSG(64); },
         [] { return makePointNetMSG(256); }},
    };
    return entries;
}

const BenchScenario *
findScenario(const std::string &name)
{
    for (const BenchScenario &sc : benchRegistry())
        if (name == sc.name)
            return &sc;
    return nullptr;
}

} // namespace infs
