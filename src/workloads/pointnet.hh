/**
 * @file
 * PointNet++ end-to-end case study (§8, Table 4, Fig 19): set abstraction
 * (SA) stages — furthest sample, ball query, gather, 3-layer MLP,
 * max-aggregate — composed into the SSG and MSG classifiers.
 */

#ifndef INFS_WORKLOADS_POINTNET_HH
#define INFS_WORKLOADS_POINTNET_HH

#include <array>

#include "core/workload.hh"

namespace infs {

/** One set-abstraction layer's parameters (Table 4). */
struct SaParams {
    Coord K = 512;                   ///< Centroids sampled.
    Coord N = 32;                    ///< Neighbors per centroid.
    float radius = 0.2f;             ///< Ball-query radius (Inf = all).
    std::array<Coord, 3> dims{64, 64, 128}; ///< MLP layer widths.
};

/** Table 4's SA parameter sets, 1-indexed like the paper (SA1..SA9). */
SaParams pointNetSa(unsigned index);

/**
 * The SSG classifier: SA1 -> SA2 -> SA3 -> FCx3 over @p points random
 * points (paper: 4k, normalized to [0,1)). Phases are named
 * "SA<i>.<stage>" so the Fig 19 timeline can group them.
 */
Workload makePointNetSSG(Coord points);

/** The MSG classifier: [SA4,SA5,SA6] -> [SA7,SA8,SA9] -> SA3 -> FCx3. */
Workload makePointNetMSG(Coord points);

} // namespace infs

#endif // INFS_WORKLOADS_POINTNET_HH
