/**
 * @file
 * One Lloyd iteration of k-means (§3.3's hybrid example): in-memory
 * distance computation and assignment, near-memory indirect centroid
 * accumulation. The outer dataflow accumulates squared differences one
 * feature dimension at a time over the {centers, points} lattice
 * (BC + Elem); the inner dataflow reduces along the feature dimension
 * per center (BC + Reduce).
 *
 * Arrays: X=0 {dim, points}, C=1 {centers, dim}, Dist=2 {centers,
 * points}, Assign=3 {points}, NewC=4 {centers, dim}.
 */

#include <cmath>

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace infs {

namespace {

/** Scalar assignment + accumulation shared by reference and fallback. */
void
assignAndUpdate(ArrayStore &s, Coord points, Coord dim, Coord centers)
{
    StoredArray &dist = s.array(2);
    StoredArray &assign = s.array(3);
    StoredArray &newc = s.array(4);
    std::vector<float> count(static_cast<std::size_t>(centers), 0.0f);
    for (auto &v : newc.data)
        v = 0.0f;
    for (Coord p = 0; p < points; ++p) {
        Coord best = 0;
        for (Coord c = 1; c < centers; ++c)
            if (dist.at({c, p}) < dist.at({best, p}))
                best = c;
        assign.data[static_cast<std::size_t>(p)] =
            static_cast<float>(best);
        count[static_cast<std::size_t>(best)] += 1.0f;
        for (Coord d = 0; d < dim; ++d)
            newc.at({best, d}) += s.array(0).at({d, p});
    }
    for (Coord c = 0; c < centers; ++c) {
        float k = std::max(count[static_cast<std::size_t>(c)], 1.0f);
        for (Coord d = 0; d < dim; ++d)
            newc.at({c, d}) /= k;
    }
}

} // namespace

Workload
makeKmeans(Coord points, Coord dim, Coord centers, bool outer)
{
    Workload w;
    w.name = outer ? "kmeans/out" : "kmeans/in";
    w.primaryShape = {centers, points};
    w.footprintBytes = wl::fp32Bytes(
        Coord(dim) * points + Coord(centers) * dim +
        Coord(centers) * points);
    w.dirtyBytes = wl::fp32Bytes(Coord(centers) * points);

    w.setup = [=](ArrayStore &s) {
        ArrayId x = s.declare("X", {dim, points});
        ArrayId c = s.declare("C", {centers, dim});
        s.declare("Dist", {centers, points});
        s.declare("Assign", {points});
        s.declare("NewC", {centers, dim});
        wl::randomFill(s, x, 0, 1, 61);
        wl::randomFill(s, c, 0, 1, 62);
    };
    w.reference = [=](ArrayStore &s) {
        for (Coord p = 0; p < points; ++p)
            for (Coord c = 0; c < centers; ++c) {
                float acc = 0.0f;
                for (Coord d = 0; d < dim; ++d) {
                    float diff =
                        s.array(0).at({d, p}) - s.array(1).at({c, d});
                    acc += diff * diff;
                }
                s.array(2).at({c, p}) = acc;
            }
        assignAndUpdate(s, points, dim, centers);
    };

    // Phase 1: distances.
    Phase dist;
    dist.name = "distance";
    if (outer) {
        // Accumulate (x_d - c_d)^2 over the {centers, points} lattice,
        // one feature dimension per round.
        dist.iterations = static_cast<std::uint64_t>(dim);
        dist.sameTdfgEachIter = true;
        dist.buildTdfg = [=](std::uint64_t iter) {
            const Coord d = static_cast<Coord>(iter);
            TdfgGraph g(2, "kmeans_dist_out");
            NodeId xd = g.tensor(0, HyperRect::box2(d, d + 1, 0, points),
                                 "xd");
            NodeId x_bc =
                g.broadcast(g.move(xd, 0, -d), 0, 0, centers);
            NodeId cd = g.tensor(1, HyperRect::box2(0, centers, d, d + 1),
                                 "cd");
            NodeId c_bc =
                g.broadcast(g.move(cd, 1, -d), 1, 0, points);
            NodeId diff = g.compute(BitOp::Sub, {x_bc, c_bc});
            NodeId sq = g.compute(BitOp::Mul, {diff, diff});
            NodeId acc = g.tensor(2, HyperRect::box2(0, centers, 0,
                                                     points));
            g.output(g.compute(BitOp::Add, {acc, sq}), 2);
            return g;
        };
    } else {
        // One center per round: reduce the squared difference along the
        // feature dimension ({dim, points} lattice).
        dist.iterations = static_cast<std::uint64_t>(centers);
        dist.sameTdfgEachIter = true;
        dist.buildTdfg = [=](std::uint64_t iter) {
            const Coord c = static_cast<Coord>(iter);
            TdfgGraph g(2, "kmeans_dist_in");
            NodeId x = g.tensor(0, HyperRect::box2(0, dim, 0, points),
                                "X");
            // Center c's feature vector restaged as a {dim, 1} column.
            NodeId cvec = g.stream(
                StreamRole::Load,
                AccessPattern::affine2(1, c, 1, centers, dim),
                invalidNode, HyperRect::box2(0, dim, 0, 1), "Cc");
            NodeId c_bc = g.broadcast(cvec, 1, 0, points);
            NodeId diff = g.compute(BitOp::Sub, {x, c_bc});
            NodeId sq = g.compute(BitOp::Mul, {diff, diff});
            NodeId dots = g.reduce(sq, BitOp::Add, 0, "dist");
            g.stream(StreamRole::Store,
                     AccessPattern::affine2(2, c, 1, centers, points),
                     dots, HyperRect::box2(0, 1, 0, points), "distc");
            return g;
        };
    }
    // Near-memory form of one round: the broadcast feature row of X is
    // forwarded per use; the 64 kB SEL3 buffer captures only part of the
    // reuse (the paper's kmeans anomaly: Near-L3 "is unable to capture
    // the reuse", costing 2.6x extra NoC traffic, §8).
    const Coord reuse_miss = std::max<Coord>(centers / 8, 1);
    NearStream sx, sd;
    sx.pattern = AccessPattern::linear(0, 0, points * reuse_miss);
    sx.forwardTo = 1;
    sd.pattern = AccessPattern::linear(
        2, 0, outer ? Coord(centers) * points : points);
    sd.isStore = true;
    // Each written element costs 3 ops per contributing feature pair:
    // the inner form folds all dim features into one output element.
    sd.flopsPerElem = static_cast<unsigned>(outer ? 3 : 3 * dim);
    dist.streams = {sx, sd};
    dist.coreFlopsPerIter =
        outer ? static_cast<std::uint64_t>(3) * centers * points
              : static_cast<std::uint64_t>(3) * dim * points;
    dist.coreBytesPerIter =
        outer ? wl::fp32Bytes(points + centers +
                              Coord(centers) * points / dim)
              : wl::fp32Bytes(Coord(dim) * points / centers + dim +
                              points);
    w.phases.push_back(std::move(dist));

    // Phase 2: argmin assignment (in-memory min-reduction over centers)
    // plus the indirect centroid accumulation, which is irregular and
    // runs near memory under Inf-S, in the core otherwise (§3.3).
    Phase update;
    update.name = "assign_update";
    update.buildTdfg = [=](std::uint64_t) {
        TdfgGraph g(2, "kmeans_argmin");
        NodeId d = g.tensor(2, HyperRect::box2(0, centers, 0, points));
        NodeId m = g.reduce(d, BitOp::Min, 0, "mindist");
        g.stream(StreamRole::Reduce,
                 AccessPattern::linear(2, 0, points), m, HyperRect{},
                 "collect", BitOp::Min);
        return g;
    };
    // The functional fallback performs the full assignment + update (the
    // argmin index extraction and scatter that the tDFG models only in
    // time).
    update.functionalFallback = [=](ArrayStore &s, std::uint64_t) {
        assignAndUpdate(s, points, dim, centers);
    };
    NearStream gather, scatter;
    gather.pattern = AccessPattern::gather(0, 3, points);
    gather.flopsPerElem = static_cast<unsigned>(dim);
    scatter.pattern = AccessPattern::gather(4, 3, points);
    scatter.isStore = true;
    scatter.flopsPerElem = static_cast<unsigned>(dim);
    update.residualStreams = {gather, scatter};
    // Near-L3 also offloads the irregular update (reuse-blind indirect
    // traffic — the paper's kmeans anomaly, §8).
    update.streams = {gather, scatter};
    update.residualFlopsPerIter =
        static_cast<std::uint64_t>(2) * dim * points;
    update.residualBytesPerIter = wl::fp32Bytes(2 * Coord(dim) * points);
    update.coreFlopsPerIter =
        static_cast<std::uint64_t>(centers) * points; // argmin compares
    update.coreBytesPerIter = wl::fp32Bytes(Coord(centers) * points);
    w.phases.push_back(std::move(update));
    return w;
}

} // namespace infs
