/**
 * @file
 * Dense GEMM (Fig 8): the outer-product dataflow broadcasts one column of
 * A and one row of B across the whole C every k round (BC + Elem); the
 * inner-product dataflow reduces along K (BC + Reduce). §8's Fig 15
 * compares both on every paradigm.
 *
 * Lattice: dim 0 = n (C columns, innermost), dim 1 = m (C rows).
 * Storage: A {K, M} (dim 0 = k), B {N, K} (dim 0 = n), C {N, M}.
 */

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace infs {

Workload
makeMm(Coord m, Coord n, Coord k, bool outer)
{
    Workload w;
    w.name = outer ? "mm/out" : "mm/in";
    w.primaryShape = {n, m};
    w.footprintBytes = wl::fp32Bytes(Coord(m) * k + Coord(n) * k +
                                     Coord(n) * m);
    w.dirtyBytes = wl::fp32Bytes(Coord(n) * m);

    w.setup = [=](ArrayStore &s) {
        ArrayId a = s.declare("A", {k, m});
        ArrayId b = s.declare("B", {n, k});
        s.declare("C", {n, m});
        wl::randomFill(s, a, -1, 1, 51);
        wl::randomFill(s, b, -1, 1, 52);
    };
    w.reference = [=](ArrayStore &s) {
        for (Coord i = 0; i < m; ++i)
            for (Coord j = 0; j < n; ++j) {
                float acc = 0.0f;
                for (Coord kk = 0; kk < k; ++kk)
                    acc += s.array(0).at({kk, i}) * s.array(1).at({j, kk});
                s.array(2).at({j, i}) = acc;
            }
    };

    Phase p;
    if (outer) {
        // One rank-1 update per k round (Fig 8 right).
        p.name = "rank1";
        p.iterations = static_cast<std::uint64_t>(k);
        p.sameTdfgEachIter = true; // Same commands, different source row.
        p.buildTdfg = [=](std::uint64_t iter) {
            const Coord kk = static_cast<Coord>(iter);
            TdfgGraph g(2, "mm_outer");
            // A[:, kk] lives at lattice column kk of array A; align to
            // column 0 then broadcast across all N columns.
            NodeId acol = g.tensor(0, HyperRect::box2(kk, kk + 1, 0, m),
                                   "Amk");
            NodeId a_bc =
                g.broadcast(g.move(acol, 0, -kk), 0, 0, n);
            NodeId brow = g.tensor(1, HyperRect::box2(0, n, kk, kk + 1),
                                   "Bkn");
            NodeId b_bc =
                g.broadcast(g.move(brow, 1, -kk), 1, 0, m);
            NodeId c_in = g.tensor(2, HyperRect::box2(0, n, 0, m), "C");
            NodeId prod = g.compute(BitOp::Mul, {a_bc, b_bc});
            g.output(g.compute(BitOp::Add, {c_in, prod}), 2);
            return g;
        };
    } else {
        // Inner product: one output column per round, reducing over K.
        // Lattice for the reduction: dim 0 = k, dim 1 = m.
        p.name = "dotcol";
        p.iterations = static_cast<std::uint64_t>(n);
        p.sameTdfgEachIter = true;
        p.buildTdfg = [=](std::uint64_t iter) {
            const Coord j = static_cast<Coord>(iter);
            TdfgGraph g(2, "mm_inner");
            NodeId a = g.tensor(0, HyperRect::box2(0, k, 0, m), "A");
            // B[j, :] is a {1, K} strip of B; the stream-to-tensor load
            // (§3.3) restages it as a {K, 1} column aligned with A's k
            // dimension.
            NodeId bcol = g.stream(
                StreamRole::Load,
                AccessPattern::affine2(1, j, 1, n, k), invalidNode,
                HyperRect::box2(0, k, 0, 1), "Bj_col");
            NodeId b_bc = g.broadcast(bcol, 1, 0, m);
            NodeId prod = g.compute(BitOp::Mul, {a, b_bc});
            NodeId dots = g.reduce(prod, BitOp::Add, 0, "dot");
            // Store the column of results C[j, :] through a stream.
            g.stream(StreamRole::Store,
                     AccessPattern::affine2(2, j, 1, n, m), dots,
                     HyperRect::box2(0, 1, 0, m), "Cj");
            return g;
        };
        NearStream fin;
        fin.pattern = AccessPattern::linear(2, 0, m);
        fin.isReduce = true;
        fin.flopsPerElem = 1;
        p.residualStreams = {fin};
        p.residualFlopsPerIter = static_cast<std::uint64_t>(m);
        p.residualBytesPerIter = wl::fp32Bytes(m);
    }

    // Near-memory streams (one k round of the outer form).
    NearStream sa, sb, sc;
    sa.pattern = AccessPattern::linear(0, 0, m);
    sa.forwardTo = 2;
    sb.pattern = AccessPattern::linear(1, 0, n);
    sb.forwardTo = 2;
    sc.pattern = AccessPattern::linear(2, 0, Coord(n) * m);
    sc.isStore = true;
    sc.flopsPerElem = 2;
    p.streams = {sa, sb, sc};
    p.coreFlopsPerIter = outer ? static_cast<std::uint64_t>(2) * n * m
                               : static_cast<std::uint64_t>(2) * k * m;
    // In-core memory behaviour differs per dataflow (Fig 15): the tiled
    // inner product accumulates in registers and reuses blocks in private
    // caches (C streamed once over all rounds), while the outer product
    // re-streams the whole C every rank-1 round.
    p.coreBytesPerIter =
        outer ? wl::fp32Bytes(m + n + 2 * Coord(n) * m)
              : wl::fp32Bytes(m + n + (Coord(n) * m) /
                                          std::max<Coord>(k, 1));
    w.phases.push_back(std::move(p));
    return w;
}

} // namespace infs
