/**
 * @file
 * Factory functions for the paper's benchmarks (Table 3) and the Fig 2
 * microbenchmarks. Every factory parameterizes the input size so tests
 * run small (functional + timing) and benches run the paper's sizes
 * (timing only).
 *
 * Array-id convention: each workload's setup() declares its arrays in a
 * fixed order starting at id 0; the tDFG builders reference those ids.
 */

#ifndef INFS_WORKLOADS_WORKLOADS_HH
#define INFS_WORKLOADS_WORKLOADS_HH

#include "core/workload.hh"

namespace infs {

// --- §2.2 microbenchmarks (Fig 2). ---

/** C[i] = A[i] + B[i]. Arrays: A=0, B=1, C=2. */
Workload makeVecAdd(Coord n);

/** v = sum(A[i]): in-memory partial reduce + near-memory final reduce.
 * Arrays: A=0, Out=1 (Out[0] holds the sum). */
Workload makeArraySum(Coord n);

// --- Table 3 benchmarks. ---

/** 3-point 1-D Jacobi, @p iters sweeps alternating A<->B. A=0, B=1. */
Workload makeStencil1d(Coord n, unsigned iters = 10);

/** 5-point 2-D Jacobi. A=0, B=1 with shape {n0, n1}. */
Workload makeStencil2d(Coord n0, Coord n1, unsigned iters = 10);

/** 7-point 3-D Jacobi. A=0, B=1 with shape {n0, n1, n2}. */
Workload makeStencil3d(Coord n0, Coord n1, Coord n2, unsigned iters = 10);

/**
 * Undecimated (stationary) 5/3 lifting wavelet, one level, rows then
 * columns. Shift + elementwise movement, matching Table 3's dwt2d entry.
 * Arrays: A=0 (in), D=1 (detail), S=2 (smooth).
 */
Workload makeDwt2d(Coord n0, Coord n1);

/** Gaussian elimination (Fig 4c / Fig 7). Arrays: A=0 {n, n}, B=1 {1, n}.
 * The shrinking per-k tensors defeat JIT memoization (§8). */
Workload makeGaussElim(Coord n);

/** 3x3 2-D convolution with constant weights (Fig 6). A=0, B=1. */
Workload makeConv2d(Coord n0, Coord n1);

/**
 * Multi-channel 3x3 convolution (conv3d): input {w, h, ci}, weights
 * broadcast per channel, channel contraction by in-memory reduction.
 * Arrays: In=0 {w, h, ci}, W=1 {3*3*ci, co}, Out=2 {w, h, co}.
 */
Workload makeConv3d(Coord w, Coord h, Coord ci, Coord co);

/**
 * Dense GEMM C[M,N] = A x B. @p outer selects the outer-product dataflow
 * (Fig 8, Inf-S's preferred form); otherwise inner-product (reduction).
 * Arrays: A=0 {K, M}, B=1 {N, K}, C=2 {N, M}.
 */
Workload makeMm(Coord m, Coord n, Coord k, bool outer);

/**
 * One Lloyd iteration of k-means: in-memory distance computation (+
 * argmin), near-memory indirect centroid update (§3.3). @p outer picks
 * the elementwise accumulate-over-dims dataflow; inner reduces over the
 * feature dimension. Arrays: X=0 {dim, points}, C=1 {centers, dim},
 * Dist=2 {centers, points}, Assign=3 {points}, NewC=4 {centers, dim}.
 */
Workload makeKmeans(Coord points, Coord dim, Coord centers, bool outer);

/**
 * gather_mlp: indirect gather of feature rows followed by a dense layer
 * (M x K gathered, K x N weights). Arrays: Table=0 {k, rows}, Idx=1 {m},
 * W=2 {n, k}, G=3 {k, m}, Out=4 {n, m}.
 */
Workload makeGatherMlp(Coord m, Coord n, Coord k, Coord rows, bool outer);

} // namespace infs

#endif // INFS_WORKLOADS_WORKLOADS_HH
