/**
 * @file
 * Convolutions: conv2d (3x3 single channel, Fig 6's running example) and
 * conv3d (multi-channel 3x3 with channel contraction, Table 3).
 */

#include "egraph/egraph.hh"
#include "tdfg/interp.hh"
#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace infs {

namespace {

/** The paper's Fig 6 symmetric kernel: corners C0, edges C1, center C2. */
constexpr float kC0 = 0.0625f;
constexpr float kC1 = 0.125f;
constexpr float kC2 = 0.25f;

float
conv2dWeight(Coord di, Coord dj)
{
    int taps = (di != 0) + (dj != 0);
    return taps == 2 ? kC0 : taps == 1 ? kC1 : kC2;
}

} // namespace

Workload
makeConv2d(Coord n0, Coord n1)
{
    std::int64_t elems = static_cast<std::int64_t>(n0) * n1;
    Workload w;
    w.name = "conv2d";
    w.primaryShape = {n0, n1};
    w.footprintBytes = wl::fp32Bytes(2 * elems);
    w.dirtyBytes = wl::fp32Bytes(elems);

    w.setup = [n0, n1](ArrayStore &s) {
        ArrayId a = s.declare("A", {n0, n1});
        s.declare("B", {n0, n1});
        wl::randomFill(s, a, -1, 1, 31);
    };

    Phase p;
    p.name = "conv";
    p.buildTdfg = [n0, n1](std::uint64_t) {
        TdfgGraph g(2, "conv2d");
        HyperRect inner = HyperRect::box2(1, n0 - 1, 1, n1 - 1);
        // Accumulate term by term: registers free at each fold (§6).
        NodeId acc = invalidNode;
        for (Coord dj = -1; dj <= 1; ++dj) {
            for (Coord di = -1; di <= 1; ++di) {
                NodeId t = g.tensor(
                    0, inner.shifted(0, di).shifted(1, dj));
                NodeId aligned = t;
                if (di != 0)
                    aligned = g.move(aligned, 0, -di);
                if (dj != 0)
                    aligned = g.move(aligned, 1, -dj);
                NodeId term = g.compute(
                    BitOp::Mul,
                    {aligned, g.constant(conv2dWeight(di, dj))});
                acc = acc == invalidNode
                          ? term
                          : g.compute(BitOp::Add, {acc, term});
            }
        }
        g.output(acc, 1);
        // Static compile (§3.2/Fig 6): the e-graph optimizer shares the
        // symmetric-weight multiplies across taps. Optimization is an
        // attempt: a rejected extraction keeps the unoptimized graph.
        TdfgOptimizer opt;
        Expected<ExtractionResult> res = opt.tryOptimize(g);
        if (!res) {
            infs_warn("conv2d: optimizer rejected (%s); using the "
                      "unoptimized graph", res.error().str().c_str());
            return g;
        }
        return std::move(res->graph);
    };
    NearStream ld, st;
    ld.pattern = AccessPattern::linear(0, 0, elems);
    ld.forwardTo = 1;
    st.pattern = AccessPattern::linear(1, 0, elems);
    st.isStore = true;
    st.flopsPerElem = 17;
    p.streams = {ld, st};
    p.coreFlopsPerIter = static_cast<std::uint64_t>(elems) * 17;
    p.coreBytesPerIter = wl::fp32Bytes(2 * elems);
    w.phases.push_back(std::move(p));

    w.reference = [n0, n1](ArrayStore &s) {
        for (Coord j = 1; j < n1 - 1; ++j)
            for (Coord i = 1; i < n0 - 1; ++i) {
                float acc = 0.0f;
                for (Coord dj = -1; dj <= 1; ++dj)
                    for (Coord di = -1; di <= 1; ++di)
                        acc += conv2dWeight(di, dj) *
                               s.array(0).at({i + di, j + dj});
                s.array(1).at({i, j}) = acc;
            }
    };
    return w;
}

Workload
makeConv3d(Coord width, Coord height, Coord ci, Coord co)
{
    std::int64_t spatial = static_cast<std::int64_t>(width) * height;
    std::int64_t in_elems = spatial * ci;
    Workload w;
    w.name = "conv3d";
    w.primaryShape = {width, height, ci};
    w.footprintBytes =
        wl::fp32Bytes(in_elems + spatial * co + 9 * ci * co);
    w.dirtyBytes = wl::fp32Bytes(spatial * co);

    w.setup = [=](ArrayStore &s) {
        ArrayId in = s.declare("In", {width, height, ci});
        ArrayId wts = s.declare("W", {9 * ci, co});
        s.declare("Out", {width, height, co});
        s.declare("WSlice", {1, 1, 9 * ci});
        s.declare("OSlice", {width, height, 1});
        wl::randomFill(s, in, -1, 1, 41);
        wl::randomFill(s, wts, -0.2f, 0.2f, 42);
    };

    // Weight addressing: W[(offset * ci + c), o] with offset = the 3x3
    // tap index. The functional builder reads weights through constant
    // nodes is impossible (values are runtime data), so weights are
    // injected per (tap, channel) via broadcast of 1x1x1 weight tensors
    // — too many nodes at full scale. Instead, conv3d iterates output
    // channels with per-o graphs using weight *tensors* broadcast along
    // the spatial dims through a staging array.
    //
    // Simpler, faithful structure (BC + Elem + channel Reduce): for each
    // output channel o, out_o = reduce_c sum_taps w(tap, c, o) *
    // shift(in, tap). Weights for one o form a {1, 1, 9*ci} tensor; per
    // tap we slice {1, 1, ci} and broadcast over the spatial dims.
    // The staging array WSlice (id 3) is written by setup per (o) —
    // functional runs at small sizes lay it out directly from W.
    Phase p;
    p.name = "conv_oc";
    p.iterations = static_cast<std::uint64_t>(co);
    p.sameTdfgEachIter = true; // Same command structure every o.
    p.buildTdfg = [=](std::uint64_t o) {
        (void)o;
        TdfgGraph g(3, "conv3d_oc");
        HyperRect inner = HyperRect::box3(1, width - 1, 1, height - 1, 0,
                                          ci);
        // Accumulate taps pairwise (register pressure, §6).
        NodeId acc = invalidNode;
        unsigned tap = 0;
        for (Coord dj = -1; dj <= 1; ++dj) {
            for (Coord di = -1; di <= 1; ++di, ++tap) {
                NodeId t = g.tensor(
                    0, inner.shifted(0, di).shifted(1, dj));
                NodeId aligned = t;
                if (di != 0)
                    aligned = g.move(aligned, 0, -di);
                if (dj != 0)
                    aligned = g.move(aligned, 1, -dj);
                // Per-channel weights for this tap staged in WSlice (id
                // 3) shaped {1, 1, 9*ci}: slice [tap*ci, (tap+1)*ci).
                NodeId ws = g.tensor(
                    3, HyperRect::box3(0, 1, 0, 1, tap * ci,
                                       (tap + 1) * ci));
                NodeId ws_at0 = g.move(ws, 2, -Coord(tap) * ci);
                NodeId ws_bc = g.broadcast(
                    g.broadcast(ws_at0, 0, 1, width - 2), 1, 1,
                    height - 2);
                NodeId term = g.compute(BitOp::Mul, {aligned, ws_bc});
                acc = acc == invalidNode
                          ? term
                          : g.compute(BitOp::Add, {acc, term});
            }
        }
        NodeId out_c = g.reduce(acc, BitOp::Add, 2);
        g.output(out_c, 4); // OSlice {w, h, 1}.
        return g;
    };
    // Functional mode: stage W[:, o] into WSlice, run the per-o tDFG,
    // then scatter OSlice into Out[:, :, o]. The staging corresponds to
    // the weight-broadcast streams the hardware would run.
    auto build = p.buildTdfg;
    p.functionalFallback = [=](ArrayStore &s, std::uint64_t o) {
        for (Coord t = 0; t < 9 * ci; ++t)
            s.array(3).at({0, 0, t}) =
                s.array(1).at({t, static_cast<Coord>(o)});
        TdfgGraph g = build(o);
        TdfgInterpreter interp(s);
        interp.run(g);
        for (Coord j = 0; j < height; ++j)
            for (Coord i = 0; i < width; ++i)
                s.array(2).at({i, j, static_cast<Coord>(o)}) =
                    s.array(4).at({i, j, 0});
    };
    NearStream ld, st;
    ld.pattern = AccessPattern::linear(0, 0, in_elems);
    ld.forwardTo = 1;
    st.pattern = AccessPattern::linear(2, 0, spatial);
    st.isStore = true;
    st.flopsPerElem = static_cast<unsigned>(2 * 9 * ci);
    p.streams = {ld, st};
    p.coreFlopsPerIter =
        static_cast<std::uint64_t>(spatial) * 2 * 9 * ci;
    // The 16 MB multi-channel input exceeds the private caches, so the
    // core re-streams it for every output channel.
    p.coreBytesPerIter = wl::fp32Bytes(in_elems + spatial);
    w.phases.push_back(std::move(p));

    w.reference = [=](ArrayStore &s) {
        for (Coord o = 0; o < co; ++o)
            for (Coord j = 1; j < height - 1; ++j)
                for (Coord i = 1; i < width - 1; ++i) {
                    float acc = 0.0f;
                    unsigned tap = 0;
                    for (Coord dj = -1; dj <= 1; ++dj)
                        for (Coord di = -1; di <= 1; ++di, ++tap)
                            for (Coord c = 0; c < ci; ++c)
                                acc += s.array(0).at(
                                           {i + di, j + dj, c}) *
                                       s.array(1).at(
                                           {Coord(tap) * ci + c, o});
                    s.array(2).at({i, j, o}) = acc;
                }
    };
    return w;
}

} // namespace infs
