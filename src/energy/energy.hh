/**
 * @file
 * Energy and area models. Per-event energy constants are CACTI-22nm-style
 * estimates (the paper obtains SRAM/H-tree energy from CACTI and chip area
 * from McPAT + Neural Cache's die analysis). Absolute joules are
 * approximate; the evaluation (Fig. 18) only relies on the relative
 * energy between paradigms, which is set by event *counts* times these
 * per-event costs.
 */

#ifndef INFS_ENERGY_ENERGY_HH
#define INFS_ENERGY_ENERGY_HH

#include <array>
#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace infs {

/** Energy event categories. */
enum class EnergyEvent : std::uint8_t {
    CoreOp,          ///< One scalar/SIMD-lane fp32 op in a core.
    CoreStatic,      ///< Per-core per-cycle static+clock overhead.
    L1Access,        ///< One 64 B L1 line access.
    L2Access,        ///< One 64 B L2 line access.
    L3Access,        ///< One 64 B L3 bank line access.
    NocHopFlit,      ///< One 32 B flit traversing one router+link.
    DramAccess,      ///< One 64 B DRAM line transfer.
    SramRowActivate, ///< One 256-bit compute-SRAM wordline activation.
    HtreeRowMove,    ///< One 256-bit row moved through the bank H tree.
    StreamEngineOp,  ///< One near-stream computation at SEL3.
};

inline constexpr unsigned numEnergyEvents = 10;

/** Name for dumps. */
const char *energyEventName(EnergyEvent e);

/**
 * Per-event energy in picojoules. Documented estimates at 22 nm:
 *  - CoreOp 15 pJ: fp32 FMA + register/bypass overhead in an OOO core.
 *  - L1/L2/L3 access 20/40/100 pJ per 64 B line (CACTI-like, incl. tags).
 *  - NoC hop 25 pJ per 32 B flit (router + link at 22 nm).
 *  - DRAM 1300 pJ per 64 B line (~20 pJ/bit interface+array).
 *  - SRAM row activation 5 pJ per 256-bit wordline (small 8 kB subarray).
 *  - H-tree row move 10 pJ (drives the bank-level tree).
 *  - Stream engine op 8 pJ (short in-order pipeline near the bank).
 */
struct EnergyCosts {
    std::array<double, numEnergyEvents> pj{
        15.0,   // CoreOp
        0.0,    // CoreStatic (folded into op costs by default)
        20.0,   // L1Access
        40.0,   // L2Access
        100.0,  // L3Access
        25.0,   // NocHopFlit
        1300.0, // DramAccess
        5.0,    // SramRowActivate
        10.0,   // HtreeRowMove
        8.0,    // StreamEngineOp
    };

    double of(EnergyEvent e) const { return pj[static_cast<unsigned>(e)]; }
};

/** Accumulates event counts and reports energy in joules. */
class EnergyAccount
{
  public:
    explicit EnergyAccount(EnergyCosts costs = EnergyCosts{})
        : costs_(costs)
    {
    }

    void
    charge(EnergyEvent e, double count = 1.0)
    {
        counts_[static_cast<unsigned>(e)] += count;
    }

    double count(EnergyEvent e) const
    {
        return counts_[static_cast<unsigned>(e)];
    }

    /** Energy of one category in joules. */
    double
    joules(EnergyEvent e) const
    {
        return counts_[static_cast<unsigned>(e)] * costs_.of(e) * 1e-12;
    }

    /** Total energy in joules. */
    double totalJoules() const;

    void reset() { counts_.fill(0.0); }

    const EnergyCosts &costs() const { return costs_; }

  private:
    EnergyCosts costs_;
    std::array<double, numEnergyEvents> counts_{};
};

/**
 * Chip area model (§8 "Energy and Area"): the paper reports 66.75 mm² of
 * in-memory compute overhead (extra sense amps, write drivers, second
 * decoder, PEs) and 28.16 mm² of near-memory support logic on a McPAT
 * 22 nm baseline, totalling 6.52% whole-chip overhead.
 */
struct AreaModel {
    double baselineMm2 = 1360.8;   ///< McPAT whole-CPU baseline.
    double inMemoryMm2 = 66.75;    ///< Compute-SRAM enhancement.
    double nearMemoryMm2 = 28.16;  ///< Stream engines + TCs + LOT.

    double totalMm2() const
    {
        return baselineMm2 + inMemoryMm2 + nearMemoryMm2;
    }

    /** Fractional overhead over the full enhanced chip. */
    double overheadFraction() const
    {
        return (inMemoryMm2 + nearMemoryMm2) / totalMm2();
    }
};

} // namespace infs

#endif // INFS_ENERGY_ENERGY_HH
