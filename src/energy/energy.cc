#include "energy/energy.hh"

namespace infs {

const char *
energyEventName(EnergyEvent e)
{
    switch (e) {
      case EnergyEvent::CoreOp: return "core_op";
      case EnergyEvent::CoreStatic: return "core_static";
      case EnergyEvent::L1Access: return "l1_access";
      case EnergyEvent::L2Access: return "l2_access";
      case EnergyEvent::L3Access: return "l3_access";
      case EnergyEvent::NocHopFlit: return "noc_hop_flit";
      case EnergyEvent::DramAccess: return "dram_access";
      case EnergyEvent::SramRowActivate: return "sram_row_activate";
      case EnergyEvent::HtreeRowMove: return "htree_row_move";
      case EnergyEvent::StreamEngineOp: return "stream_engine_op";
    }
    return "?";
}

double
EnergyAccount::totalJoules() const
{
    double total = 0.0;
    for (unsigned i = 0; i < numEnergyEvents; ++i)
        total += counts_[i] * costs_.pj[i] * 1e-12;
    return total;
}

} // namespace infs
