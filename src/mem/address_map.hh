/**
 * @file
 * Static-NUCA address mapping: physical addresses interleave across L3
 * banks at a 1 kB granule (Table 2), and across memory controllers at the
 * mesh edge. Also provides the tiled-layout remap used for transposed
 * arrays: tiles map contiguously to SRAM arrays, SRAM arrays to compute
 * ways of banks in order.
 */

#ifndef INFS_MEM_ADDRESS_MAP_HH
#define INFS_MEM_ADDRESS_MAP_HH

#include <cstdint>

#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace infs {

/** Location of one SRAM array within the L3. */
struct ArrayLocation {
    BankId bank = 0;
    unsigned way = 0;
    unsigned arrayInWay = 0;
    bool operator==(const ArrayLocation &o) const = default;
};

/** Static NUCA mapping plus the tile -> SRAM-array mapping. */
class AddressMap
{
  public:
    explicit AddressMap(const L3Config &l3, unsigned mem_ctrls = 16)
        : l3_(l3), memCtrls_(mem_ctrls)
    {
    }

    /** Home L3 bank of a physical address (1 kB interleave). */
    BankId
    homeBank(Addr addr) const
    {
        return static_cast<BankId>((addr / l3_.interleave) % l3_.numBanks);
    }

    /** Memory controller serving a physical address. */
    unsigned
    memCtrl(Addr addr) const
    {
        return static_cast<unsigned>((addr / l3_.interleave) % memCtrls_);
    }

    /** Number of compute SRAM arrays per bank. */
    unsigned
    arraysPerBank() const
    {
        return l3_.computeWays * l3_.arraysPerWay;
    }

    /** Total compute SRAM arrays in the system. */
    std::uint64_t
    totalArrays() const
    {
        return std::uint64_t(l3_.numBanks) * arraysPerBank();
    }

    /**
     * Map global tile index -> SRAM array location. Tiles map
     * contiguously to SRAM arrays (§5.2: "tiles are mapped contiguously
     * to SRAM arrays, it is straightforward to locate the actual
     * bitline"), filling one bank's compute arrays before the next.
     */
    ArrayLocation
    tileToArray(std::uint64_t tile) const
    {
        // Layouts larger than the array pool execute in waves; tiles wrap
        // onto the physical arrays.
        tile %= totalArrays();
        ArrayLocation loc;
        loc.bank = static_cast<BankId>(tile / arraysPerBank());
        std::uint64_t idx = tile % arraysPerBank();
        loc.way = static_cast<unsigned>(idx / l3_.arraysPerWay);
        loc.arrayInWay = static_cast<unsigned>(idx % l3_.arraysPerWay);
        return loc;
    }

    /** Inverse of tileToArray. */
    std::uint64_t
    arrayToTile(const ArrayLocation &loc) const
    {
        std::uint64_t idx =
            std::uint64_t(loc.way) * l3_.arraysPerWay + loc.arrayInWay;
        return std::uint64_t(loc.bank) * arraysPerBank() + idx;
    }

    const L3Config &l3() const { return l3_; }

  private:
    L3Config l3_;
    unsigned memCtrls_;
};

} // namespace infs

#endif // INFS_MEM_ADDRESS_MAP_HH
