/**
 * @file
 * Bandwidth-limited DRAM model (DDR4-3200, 25.6 GB/s per Table 2). The
 * executors account aggregate transfers; the model converts bytes to
 * occupancy cycles and tracks totals for traffic and energy statistics.
 */

#ifndef INFS_MEM_DRAM_HH
#define INFS_MEM_DRAM_HH

#include <cstdint>

#include "sim/config.hh"
#include "sim/types.hh"

namespace infs {

/** Aggregate DRAM bandwidth/latency model. */
class DramModel
{
  public:
    explicit DramModel(const DramConfig &cfg, double core_ghz = 2.0)
        : cfg_(cfg), ghz_(core_ghz)
    {
    }

    /**
     * Account a bulk transfer of @p bytes (read or write).
     * @return Occupancy in core cycles at peak bandwidth, plus the loaded
     * access latency for the first line.
     */
    Tick
    transfer(Bytes bytes)
    {
        totalBytes_ += bytes;
        return occupancy(bytes) + cfg_.latency;
    }

    /** Cycles the channel is busy moving @p bytes (no latency). */
    Tick
    occupancy(Bytes bytes) const
    {
        double cycles = static_cast<double>(bytes) / cfg_.bytesPerCycle(ghz_);
        return static_cast<Tick>(cycles + 0.5);
    }

    Bytes totalBytes() const { return totalBytes_; }
    void resetStats() { totalBytes_ = 0; }

    const DramConfig &config() const { return cfg_; }

  private:
    DramConfig cfg_;
    double ghz_;
    Bytes totalBytes_ = 0;
};

} // namespace infs

#endif // INFS_MEM_DRAM_HH
