/**
 * @file
 * Shared L3 model: per-bank access accounting, way reservation for
 * in-memory computing, and aggregate streaming bandwidth. Each bank's data
 * port moves `htreeBandwidth` bytes per cycle (Table 2: 5-level H tree,
 * 64 B total bandwidth per bank).
 */

#ifndef INFS_MEM_L3_MODEL_HH
#define INFS_MEM_L3_MODEL_HH

#include <cstdint>
#include <vector>

#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace infs {

/** Shared L3 cache model (timing + occupancy accounting; no tag array). */
class L3Model
{
  public:
    explicit L3Model(const L3Config &cfg)
        : cfg_(cfg), reservedWays_(cfg.numBanks, 0)
    {
    }

    const L3Config &config() const { return cfg_; }

    /** Account @p bytes read from bank @p bank. */
    void
    read(BankId bank, Bytes bytes)
    {
        checkBank(bank);
        bytesRead_ += bytes;
    }

    /** Account @p bytes written to bank @p bank. */
    void
    write(BankId bank, Bytes bytes)
    {
        checkBank(bank);
        bytesWritten_ += bytes;
    }

    /**
     * Cycles for @p banks banks to stream @p bytes in aggregate at their
     * combined port bandwidth, plus one bank access latency.
     */
    Tick
    streamCycles(Bytes bytes, unsigned banks) const
    {
        infs_assert(banks > 0 && banks <= cfg_.numBanks,
                    "bad bank count %u", banks);
        double bw = static_cast<double>(cfg_.htreeBandwidth) * banks;
        return static_cast<Tick>(static_cast<double>(bytes) / bw + 0.5) +
               cfg_.bankLatency;
    }

    /**
     * Reserve @p ways compute ways in every bank for in-memory computing.
     * @return false if more ways are requested than reservable.
     */
    bool
    reserveWays(unsigned ways)
    {
        if (ways > cfg_.computeWays)
            return false;
        for (auto &r : reservedWays_) {
            if (r + ways > cfg_.computeWays)
                return false;
        }
        for (auto &r : reservedWays_)
            r += ways;
        return true;
    }

    /** Release @p ways previously reserved compute ways in every bank. */
    void
    releaseWays(unsigned ways)
    {
        for (auto &r : reservedWays_) {
            infs_assert(r >= ways, "releasing %u of %u reserved ways", ways,
                        r);
            r -= ways;
        }
    }

    unsigned
    reservedWays(BankId bank) const
    {
        checkBank(bank);
        return reservedWays_[bank];
    }

    /** Cache capacity left for normal (non-compute) use, in bytes. */
    Bytes
    normalCapacity() const
    {
        Bytes per_way =
            Bytes(cfg_.arraysPerWay) * cfg_.arrayBytes() * cfg_.numBanks;
        unsigned free_ways = cfg_.waysPerBank - reservedWays_[0];
        return per_way * free_ways;
    }

    Bytes bytesRead() const { return bytesRead_; }
    Bytes bytesWritten() const { return bytesWritten_; }

    void
    resetStats()
    {
        bytesRead_ = 0;
        bytesWritten_ = 0;
    }

  private:
    void
    checkBank(BankId bank) const
    {
        infs_assert(bank < cfg_.numBanks, "bank %u out of %u", bank,
                    cfg_.numBanks);
    }

    L3Config cfg_;
    std::vector<unsigned> reservedWays_;
    Bytes bytesRead_ = 0;
    Bytes bytesWritten_ = 0;
};

} // namespace infs

#endif // INFS_MEM_L3_MODEL_HH
