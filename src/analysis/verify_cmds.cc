#include "analysis/verify_cmds.hh"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace infs {

namespace {

/**
 * One analyzable command with its effects resolved against the layout.
 * Dependences are bank-granular: a command only reads/writes cells whose
 * owning bank appears in its bank list (per-bank synchronous issue, §4.2),
 * so the rects here are over-approximations the bank filter tightens.
 */
struct Rec {
    std::size_t idx = 0;
    const InMemCommand *c = nullptr;
    HyperRect src;     ///< Read region, clamped to the array bounds.
    HyperRect dst;     ///< Written region, clamped to the array bounds.
    /** Inter-tile effect: the write lands in other banks asynchronously
     * and becomes visible only after a Sync (InterShift always; a
     * BroadcastBl whose replication escapes one tile). */
    bool async = false;
    std::vector<BankId> banks; ///< Sorted copy of the command's banks.
};

std::string
cmdWhere(std::size_t idx, const InMemCommand &c)
{
    return "cmd " + std::to_string(idx) + " (" + c.str() + ")";
}

/** Wordline slots a command reads (slot = start wordline). */
std::vector<unsigned>
readSlots(const InMemCommand &c)
{
    switch (c.kind) {
      case CmdKind::IntraShift:
      case CmdKind::InterShift:
      case CmdKind::BroadcastBl:
        return {c.wlA};
      case CmdKind::Compute:
        return c.useImm ? std::vector<unsigned>{c.wlA}
                        : std::vector<unsigned>{c.wlA, c.wlB};
      case CmdKind::BroadcastVal:
      case CmdKind::Sync:
        return {};
    }
    return {};
}

bool
sortedIntersects(const std::vector<BankId> &a, const std::vector<BankId> &b)
{
    auto ia = a.begin();
    auto ib = b.begin();
    while (ia != a.end() && ib != b.end()) {
        if (*ia < *ib)
            ++ia;
        else if (*ib < *ia)
            ++ib;
        else
            return true;
    }
    return false;
}

/**
 * Same-group commands restating one logical effect over different windows
 * (the reduce lowering emits its cross-tile rounds once per subtensor)
 * are exempt from the disjointness check when every effect parameter
 * matches — only the window rect may differ.
 */
bool
sameEffectParams(const InMemCommand &a, const InMemCommand &b)
{
    return a.kind == b.kind && a.dim == b.dim && a.maskLo == b.maskLo &&
           a.maskHi == b.maskHi && a.interTileDist == b.interTileDist &&
           a.intraTileDist == b.intraTileDist && a.bcCount == b.bcCount &&
           a.bcDist == b.bcDist && a.op == b.op && a.useImm == b.useImm &&
           a.imm == b.imm && a.wlA == b.wlA && a.wlB == b.wlB &&
           a.wlDst == b.wlDst;
}

bool
isShift(CmdKind k)
{
    return k == CmdKind::IntraShift || k == CmdKind::InterShift;
}

} // namespace

VerifyReport
verifyCommands(const InMemProgram &prog, const TiledLayout &layout,
               const AddressMap &map, const SystemConfig &cfg)
{
    VerifyReport rep("commands");
    const unsigned dims = layout.dims();
    const unsigned bits = dtypeBits(cfg.tensor.elemType);
    const unsigned raw_slots = bits ? cfg.l3.wordlines / bits : 0;
    // Mirror JitCompiler::numSlots(): the top slot is reserved.
    const unsigned num_slots = raw_slots > 1 ? raw_slots - 1 : 0;
    const unsigned wl_cap = num_slots * bits;
    const HyperRect array_rect = HyperRect::array(layout.shape());

    // ---- (d) LOT consistency: array home slots and output slots.
    auto checkSlotWl = [&](unsigned wl, const std::string &where,
                           const char *what) {
        if (bits && wl % bits != 0) {
            rep.add(VerifyCode::CmdSlotMisaligned, where,
                    std::string(what) + " wordline " + std::to_string(wl) +
                        " not aligned to " + std::to_string(bits) +
                        "-bit slots");
            return false;
        }
        if (wl >= wl_cap) {
            rep.add(VerifyCode::CmdSlotOutOfRange, where,
                    std::string(what) + " wordline " + std::to_string(wl) +
                        " beyond the " + std::to_string(num_slots) +
                        "-slot capacity (top slot reserved)");
            return false;
        }
        return true;
    };
    {
        std::set<ArrayId> seen_arrays;
        std::set<unsigned> seen_wls;
        for (const auto &[array, wl] : prog.arraySlots) {
            const std::string where =
                "lot array" + std::to_string(array);
            if (!seen_arrays.insert(array).second) {
                rep.add(VerifyCode::LotInconsistent, where,
                        "array has two home slots");
            }
            if (!seen_wls.insert(wl).second) {
                rep.add(VerifyCode::LotInconsistent, where,
                        "home wordline " + std::to_string(wl) +
                            " shared with another array");
            }
            checkSlotWl(wl, where, "home");
        }
        if (prog.arraySlots.size() > cfg.tensor.lotEntries) {
            rep.add(VerifyCode::LotInconsistent, "lot",
                    std::to_string(prog.arraySlots.size()) +
                        " arrays exceed the " +
                        std::to_string(cfg.tensor.lotEntries) +
                        "-entry LOT");
        }
        for (const auto &[array, wl] : prog.outputSlots) {
            const std::string where =
                "output array" + std::to_string(array);
            checkSlotWl(wl, where, "output");
            if (!seen_arrays.count(array)) {
                rep.add(VerifyCode::LotInconsistent, where,
                        "output array has no LOT home slot");
            }
        }
    }

    // ---- Per-command static checks; clean commands become hazard Recs.
    std::vector<Rec> recs;
    std::vector<std::size_t> syncs;
    for (std::size_t i = 0; i < prog.commands.size(); ++i) {
        const InMemCommand &c = prog.commands[i];
        if (c.kind == CmdKind::Sync) {
            syncs.push_back(i);
            continue;
        }
        const std::string where = cmdWhere(i, c);
        const std::size_t before = rep.size();

        if (c.tensor.dims() != dims) {
            rep.add(VerifyCode::CmdRankMismatch, where,
                    "tensor rank " + std::to_string(c.tensor.dims()) +
                        " != layout rank " + std::to_string(dims));
            continue;
        }
        const HyperRect region = c.tensor.intersect(array_rect);
        if (region.empty()) {
            rep.add(VerifyCode::CmdEmptyTensor, where,
                    "tensor " + c.tensor.str() +
                        " does not intersect the array bounds");
            continue;
        }

        const bool uses_dim = isShift(c.kind) ||
                              c.kind == CmdKind::BroadcastBl ||
                              (c.kind == CmdKind::Compute &&
                               c.maskHi > c.maskLo);
        if (uses_dim && c.dim >= dims) {
            rep.add(VerifyCode::CmdDimOutOfRank, where,
                    "dim " + std::to_string(c.dim) + " out of layout rank " +
                        std::to_string(dims));
            continue;
        }
        const Coord tile_k = uses_dim ? layout.tileSize(c.dim) : 0;

        if (isShift(c.kind)) {
            if (c.maskLo < 0 || c.maskLo >= c.maskHi || c.maskHi > tile_k) {
                rep.add(VerifyCode::CmdBadMask, where,
                        "shift mask [" + std::to_string(c.maskLo) + "," +
                            std::to_string(c.maskHi) +
                            ") outside tile positions [0," +
                            std::to_string(tile_k) + ")");
            }
            const Coord intra_abs = std::abs(c.intraTileDist);
            if (c.kind == CmdKind::IntraShift &&
                (c.interTileDist != 0 || c.intraTileDist == 0)) {
                rep.add(VerifyCode::CmdBadShiftDist, where,
                        "intra-tile shift must move within the tile only");
            } else if (c.kind == CmdKind::InterShift &&
                       c.interTileDist == 0) {
                rep.add(VerifyCode::CmdBadShiftDist, where,
                        "inter-tile shift with zero tile distance");
            } else if (intra_abs >= tile_k) {
                rep.add(VerifyCode::CmdBadShiftDist, where,
                        "intra-tile distance " +
                            std::to_string(c.intraTileDist) +
                            " exceeds the tile size " +
                            std::to_string(tile_k));
            }
        } else if (c.kind == CmdKind::Compute && c.maskHi > 0 &&
                   (c.maskLo < 0 || c.maskLo >= c.maskHi ||
                    c.maskHi > tile_k)) {
            rep.add(VerifyCode::CmdBadMask, where,
                    "compute mask [" + std::to_string(c.maskLo) + "," +
                        std::to_string(c.maskHi) +
                        ") outside tile positions [0," +
                        std::to_string(tile_k) + ")");
        } else if (c.kind == CmdKind::BroadcastBl && c.bcCount < 1) {
            rep.add(VerifyCode::CmdBadBroadcast, where,
                    "replication count " + std::to_string(c.bcCount) +
                        " < 1");
        }

        checkSlotWl(c.wlDst, where, "destination");
        for (unsigned wl : readSlots(c))
            checkSlotWl(wl, where, "source");

        if (c.banks.empty()) {
            rep.add(VerifyCode::CmdBankInvalid, where, "no banks recorded");
        } else {
            for (BankId b : c.banks) {
                if (b >= static_cast<BankId>(cfg.l3.numBanks)) {
                    rep.add(VerifyCode::CmdBankInvalid, where,
                            "bank " + std::to_string(b) + " beyond the " +
                                std::to_string(cfg.l3.numBanks) +
                                "-bank L3");
                    break;
                }
            }
        }
        if (rep.size() != before)
            continue; // Statically broken: exclude from hazard analysis.

        Rec r;
        r.idx = i;
        r.c = &c;
        r.src = region;
        switch (c.kind) {
          case CmdKind::IntraShift:
          case CmdKind::InterShift:
            r.dst = c.tensor
                        .shifted(c.dim, c.interTileDist * tile_k +
                                            c.intraTileDist)
                        .intersect(array_rect);
            r.async = c.kind == CmdKind::InterShift;
            break;
          case CmdKind::BroadcastBl: {
            const Coord span = c.tensor.size(c.dim);
            r.dst = c.tensor
                        .withDim(c.dim, c.tensor.lo(c.dim) + c.bcDist,
                                 c.tensor.lo(c.dim) + c.bcDist +
                                     c.bcCount * span)
                        .intersect(array_rect);
            r.async = c.bcCount * span > tile_k;
            break;
          }
          default:
            r.dst = region;
            break;
        }
        r.banks = c.banks;
        std::sort(r.banks.begin(), r.banks.end());
        recs.push_back(std::move(r));
    }

    auto syncBetween = [&](std::size_t a, std::size_t b) {
        auto it = std::upper_bound(syncs.begin(), syncs.end(), a);
        return it != syncs.end() && *it < b;
    };
    auto depBanks = [&](const HyperRect &overlap) {
        std::vector<BankId> banks = layout.banksFor(overlap, map);
        std::sort(banks.begin(), banks.end());
        return banks;
    };

    // ---- (a) Alg. 1 disjointness within each command group.
    {
        std::unordered_map<unsigned, std::vector<const Rec *>> groups;
        for (const Rec &r : recs)
            groups[r.c->group].push_back(&r);
        for (const auto &[group, members] : groups) {
            for (std::size_t j = 1; j < members.size(); ++j) {
                for (std::size_t k = 0; k < j; ++k) {
                    const InMemCommand &a = *members[k]->c;
                    const InMemCommand &b = *members[j]->c;
                    if (a.tensor.intersect(b.tensor)
                            .intersect(array_rect)
                            .empty())
                        continue;
                    // A multi-operand compute lowers to a fold chain:
                    // same-group computes over one region are sequential
                    // per-bank steps, not parallel tiles.
                    if (a.kind == CmdKind::Compute &&
                        b.kind == CmdKind::Compute)
                        continue;
                    // Alg. 2 lowers one mv into shifts over complementary
                    // position masks: the moved element sets are disjoint
                    // even though the subtensor rects coincide.
                    if (isShift(a.kind) && isShift(b.kind) &&
                        (a.maskHi <= b.maskLo || b.maskHi <= a.maskLo))
                        continue;
                    if (sameEffectParams(a, b))
                        continue;
                    rep.add(VerifyCode::IntraGroupOverlap,
                            cmdWhere(members[j]->idx, b),
                            "overlaps " + cmdWhere(members[k]->idx, a) +
                                " within group " + std::to_string(group) +
                                " — Alg. 1 tiles must be disjoint");
                }
            }
        }
    }

    // ---- (c) Asynchronous inter-tile effects need a Sync before any
    // dependent command (per-bank issue does not order cross-bank data).
    for (const Rec &w : recs) {
        if (!w.async)
            continue;
        auto next_sync = std::upper_bound(syncs.begin(), syncs.end(), w.idx);
        const std::size_t bound = next_sync != syncs.end()
                                      ? *next_sync
                                      : prog.commands.size();
        for (const Rec &r : recs) {
            if (r.idx <= w.idx || r.idx >= bound)
                continue;
            if (r.c->group == w.c->group)
                continue;
            bool reads = false;
            for (unsigned s : readSlots(*r.c))
                reads |= s == w.c->wlDst;
            if (reads) {
                const HyperRect o = w.dst.intersect(r.src);
                if (!o.empty() && sortedIntersects(depBanks(o), r.banks)) {
                    rep.add(r.c->kind == CmdKind::Compute
                                ? VerifyCode::MissingSync
                                : VerifyCode::RawHazard,
                            cmdWhere(r.idx, *r.c),
                            "consumes wl " + std::to_string(w.c->wlDst) +
                                " from " + cmdWhere(w.idx, *w.c) +
                                " with no Sync in between");
                    continue;
                }
            }
            if (r.c->wlDst == w.c->wlDst) {
                const HyperRect o = w.dst.intersect(r.dst);
                if (!o.empty() && sortedIntersects(depBanks(o), r.banks)) {
                    rep.add(VerifyCode::WawHazard, cmdWhere(r.idx, *r.c),
                            "overwrites wl " + std::to_string(w.c->wlDst) +
                                " written by " + cmdWhere(w.idx, *w.c) +
                                " with no Sync in between");
                }
            }
        }
    }

    // ---- (b) Local RAW coverage: the most recent writer of the cells a
    // command reads must share the dependence banks (per-bank program
    // order is then the ordering edge); a writer whose bank list misses
    // them never delivers the value to the reader's banks.
    {
        std::unordered_map<unsigned, std::vector<const Rec *>> writers;
        for (const Rec &r : recs)
            writers[r.c->wlDst].push_back(&r);
        for (const Rec &r : recs) {
            for (unsigned s : readSlots(*r.c)) {
                auto it = writers.find(s);
                if (it == writers.end())
                    continue; // Preloaded slot (array home / stream load).
                const auto &ws = it->second;
                for (auto wi = ws.rbegin(); wi != ws.rend(); ++wi) {
                    const Rec &w = **wi;
                    if (w.idx >= r.idx || w.c->group == r.c->group)
                        continue;
                    const HyperRect o = w.dst.intersect(r.src);
                    if (o.empty())
                        continue;
                    std::vector<BankId> dep = depBanks(o);
                    if (!sortedIntersects(dep, r.banks))
                        continue; // Cells the reader never touches.
                    // Most recent relevant writer decides; older writers
                    // are shadowed. Async writers were handled above.
                    if (!w.async && !sortedIntersects(dep, w.banks)) {
                        rep.add(VerifyCode::RawHazard, cmdWhere(r.idx, *r.c),
                                "reads wl " + std::to_string(s) + " over " +
                                    o.str() + " from " +
                                    cmdWhere(w.idx, *w.c) +
                                    ", whose banks never produce those "
                                    "cells (no ordering edge)");
                    }
                    break;
                }
            }
        }
    }

    return rep;
}

Expected<bool>
checkCommands(const InMemProgram &prog, const TiledLayout &layout,
              const AddressMap &map, const SystemConfig &cfg)
{
    VerifyReport rep = verifyCommands(prog, layout, map, cfg);
    if (!rep.clean())
        return rep.toError();
    return true;
}

} // namespace infs
