/**
 * @file
 * Level-1 static analysis: the tDFG verifier. Checks the structural
 * invariants the builder DSL normally guarantees (operand ids in range,
 * topological operand order — which makes the SSA graph acyclic with a
 * single definition per value) and the per-kind semantic invariants of
 * Fig 5 (domain inference, dim within rank, non-empty Compute
 * intersections, Shrink/Reduce legality, Stream pattern coherence), so an
 * illegal e-graph rewrite or a corrupted deserialized graph is caught at
 * the rewrite, not at interp time (DESIGN.md §9).
 */

#ifndef INFS_ANALYSIS_VERIFY_TDFG_HH
#define INFS_ANALYSIS_VERIFY_TDFG_HH

#include "analysis/diag.hh"
#include "tdfg/graph.hh"

namespace infs {

/** Run every tDFG invariant check over @p g; never aborts. */
VerifyReport verifyTdfg(const TdfgGraph &g);

/**
 * Convenience for degradation paths: true when @p g verifies clean, else
 * the report collapsed into a recoverable VerifyFailed Error.
 */
Expected<bool> checkTdfg(const TdfgGraph &g);

} // namespace infs

#endif // INFS_ANALYSIS_VERIFY_TDFG_HH
