#include "analysis/verify_tdfg.hh"

#include <string>
#include <vector>

namespace infs {

namespace {

/** "node 3 (mv3)" locator for diagnostics. */
std::string
nodeWhere(const TdfgGraph &g, NodeId id)
{
    return "node " + std::to_string(id) + " (" + g.node(id).name + ")";
}

/** Operand-count legality per kind; max == unsatisfiable means "any". */
void
expectedOperands(TdfgKind k, StreamRole role, std::size_t &min,
                 std::size_t &max)
{
    switch (k) {
      case TdfgKind::Tensor:
      case TdfgKind::ConstVal:
        min = max = 0;
        break;
      case TdfgKind::Compute:
        min = 1;
        max = ~std::size_t(0);
        break;
      case TdfgKind::Move:
      case TdfgKind::Broadcast:
      case TdfgKind::Shrink:
      case TdfgKind::Reduce:
        min = max = 1;
        break;
      case TdfgKind::Stream:
        min = max = role == StreamRole::Load ? 0 : 1;
        break;
    }
}

bool
isAssociative(BitOp fn)
{
    return fn == BitOp::Add || fn == BitOp::Mul || fn == BitOp::Max ||
           fn == BitOp::Min;
}

} // namespace

VerifyReport
verifyTdfg(const TdfgGraph &g)
{
    VerifyReport rep("tdfg '" + g.name() + "'");
    const unsigned dims = g.dims();
    const NodeId n_nodes = static_cast<NodeId>(g.size());

    // A node participates in semantic checks only when it and all its
    // operands are structurally sound; otherwise recomputing its domain
    // would chase dangling ids.
    std::vector<bool> sound(n_nodes, true);

    for (NodeId id = 0; id < n_nodes; ++id) {
        const TdfgNode &n = g.node(id);
        const std::string where = nodeWhere(g, id);

        // ---- Structural: operand range and topological (SSA) order.
        for (NodeId op : n.operands) {
            if (op >= n_nodes) {
                rep.add(VerifyCode::OperandOutOfRange, where,
                        "operand " + std::to_string(op) +
                            " beyond node table of " +
                            std::to_string(n_nodes));
                sound[id] = false;
            } else if (op >= id) {
                // Operands must strictly precede their user: a forward or
                // self reference breaks the topological order that keeps
                // the SSA graph acyclic.
                rep.add(VerifyCode::OperandOrder, where,
                        "operand " + std::to_string(op) +
                            " not defined before its use (cycle)");
                sound[id] = false;
            } else if (!sound[op]) {
                sound[id] = false;
            }
        }

        std::size_t min_ops = 0, max_ops = 0;
        expectedOperands(n.kind, n.streamRole, min_ops, max_ops);
        if (n.operands.size() < min_ops || n.operands.size() > max_ops) {
            rep.add(VerifyCode::OperandCount, where,
                    std::string(tdfgKindName(n.kind)) + " with " +
                        std::to_string(n.operands.size()) + " operands");
            sound[id] = false;
        }

        // ---- Domain/rank consistency.
        if (n.infiniteDomain != (n.kind == TdfgKind::ConstVal)) {
            rep.add(VerifyCode::InfiniteMismatch, where,
                    n.infiniteDomain
                        ? "only const nodes cover the infinite lattice"
                        : "const node without an infinite domain");
            sound[id] = false;
            continue;
        }
        if (!n.infiniteDomain && n.domain.dims() != dims) {
            rep.add(VerifyCode::RankMismatch, where,
                    "domain rank " + std::to_string(n.domain.dims()) +
                        " != lattice rank " + std::to_string(dims));
            sound[id] = false;
            continue;
        }

        // ---- dim parameter range (independent of operand soundness).
        switch (n.kind) {
          case TdfgKind::Move:
          case TdfgKind::Broadcast:
          case TdfgKind::Shrink:
          case TdfgKind::Reduce:
            if (n.dim >= dims) {
                rep.add(VerifyCode::DimOutOfRank, where,
                        "dim " + std::to_string(n.dim) +
                            " out of lattice rank " + std::to_string(dims));
                sound[id] = false;
            }
            break;
          default:
            break;
        }
        if (!sound[id])
            continue;

        // ---- Per-kind semantics: recompute the domain the builders would
        // have inferred and compare (Fig 5 / appendix Eq. 5).
        auto operandDomain = [&](NodeId op) -> const HyperRect * {
            const TdfgNode &o = g.node(op);
            if (o.infiniteDomain) {
                rep.add(VerifyCode::OperandCount, where,
                        std::string(tdfgKindName(n.kind)) +
                            " of an infinite (const) operand");
                return nullptr;
            }
            if (o.domain.dims() != dims)
                return nullptr; // Already diagnosed at the operand.
            return &o.domain;
        };

        switch (n.kind) {
          case TdfgKind::Tensor:
            if (n.array == invalidArray)
                rep.add(VerifyCode::DomainMismatch, where,
                        "tensor without a source array");
            break;
          case TdfgKind::ConstVal:
            break;
          case TdfgKind::Compute: {
            HyperRect acc;
            bool have = false, skip = false;
            for (NodeId op : n.operands) {
                const TdfgNode &o = g.node(op);
                if (o.infiniteDomain)
                    continue;
                if (o.domain.dims() != dims) {
                    skip = true;
                    break;
                }
                acc = have ? acc.intersect(o.domain) : o.domain;
                have = true;
            }
            if (skip)
                break;
            if (!have) {
                rep.add(VerifyCode::EmptyComputeDomain, where,
                        "compute with only constant operands has no "
                        "finite domain");
                break;
            }
            if (acc.empty()) {
                rep.add(VerifyCode::EmptyComputeDomain, where,
                        "operand intersection " + acc.str() +
                            " is empty — operands misaligned");
                break;
            }
            if (!(n.domain == acc)) {
                rep.add(VerifyCode::DomainMismatch, where,
                        "domain " + n.domain.str() +
                            " != operand intersection " + acc.str());
            }
            break;
          }
          case TdfgKind::Move: {
            const HyperRect *src = operandDomain(n.operands[0]);
            if (!src)
                break;
            HyperRect want = src->shifted(n.dim, n.dist);
            if (!(n.domain == want)) {
                rep.add(VerifyCode::DomainMismatch, where,
                        "domain " + n.domain.str() + " != source " +
                            src->str() + " shifted by " +
                            std::to_string(n.dist));
            }
            break;
          }
          case TdfgKind::Broadcast: {
            const HyperRect *src = operandDomain(n.operands[0]);
            if (!src)
                break;
            if (n.count < 1) {
                rep.add(VerifyCode::DomainMismatch, where,
                        "broadcast count " + std::to_string(n.count) +
                            " < 1");
                break;
            }
            Coord span = src->size(n.dim);
            HyperRect want =
                src->withDim(n.dim, src->lo(n.dim) + n.dist,
                             src->lo(n.dim) + n.dist + n.count * span);
            if (!(n.domain == want)) {
                rep.add(VerifyCode::DomainMismatch, where,
                        "domain " + n.domain.str() +
                            " != broadcast image " + want.str());
            }
            break;
          }
          case TdfgKind::Shrink: {
            const HyperRect *src = operandDomain(n.operands[0]);
            if (!src)
                break;
            const Coord p = n.domain.lo(n.dim), q = n.domain.hi(n.dim);
            if (p > q || p < src->lo(n.dim) || q > src->hi(n.dim)) {
                rep.add(VerifyCode::BadShrinkRange, where,
                        "shrink [" + std::to_string(p) + "," +
                            std::to_string(q) + ") escapes source " +
                            src->str());
                break;
            }
            if (!(n.domain == src->withDim(n.dim, p, q))) {
                rep.add(VerifyCode::DomainMismatch, where,
                        "shrink changes dimensions other than dim " +
                            std::to_string(n.dim));
            }
            break;
          }
          case TdfgKind::Reduce: {
            if (!isAssociative(n.fn)) {
                rep.add(VerifyCode::BadReduceOp, where,
                        std::string("reduce with non-associative ") +
                            bitOpName(n.fn));
            }
            const HyperRect *src = operandDomain(n.operands[0]);
            if (!src)
                break;
            HyperRect want = src->withDim(n.dim, src->lo(n.dim),
                                          src->lo(n.dim) + 1);
            if (!(n.domain == want)) {
                rep.add(VerifyCode::DomainMismatch, where,
                        "domain " + n.domain.str() +
                            " != collapsed source " + want.str());
            }
            break;
          }
          case TdfgKind::Stream: {
            if (!n.pattern.valid()) {
                rep.add(VerifyCode::BadStreamPattern, where,
                        "invalid access pattern");
                break;
            }
            if (n.streamRole == StreamRole::Reduce) {
                HyperRect want =
                    HyperRect::array(std::vector<Coord>(dims, 1));
                if (!(n.domain == want)) {
                    rep.add(VerifyCode::BadStreamPattern, where,
                            "reduce stream must produce a scalar cell, "
                            "got " + n.domain.str());
                }
            }
            break;
          }
        }
    }

    for (const TdfgGraph::Output &o : g.outputs()) {
        if (o.node >= n_nodes) {
            rep.add(VerifyCode::BadOutput, "output",
                    "references missing node " + std::to_string(o.node));
            continue;
        }
        if (g.node(o.node).infiniteDomain) {
            rep.add(VerifyCode::BadOutput, nodeWhere(g, o.node),
                    "output references an infinite tensor");
        }
    }
    return rep;
}

Expected<bool>
checkTdfg(const TdfgGraph &g)
{
    VerifyReport rep = verifyTdfg(g);
    if (!rep.clean())
        return rep.toError();
    return true;
}

} // namespace infs
