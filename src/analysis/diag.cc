#include "analysis/diag.hh"

#include <sstream>

namespace infs {

const char *
verifyCodeName(VerifyCode c)
{
    switch (c) {
      case VerifyCode::OperandOutOfRange: return "operand_out_of_range";
      case VerifyCode::OperandOrder: return "operand_order";
      case VerifyCode::OperandCount: return "operand_count";
      case VerifyCode::InfiniteMismatch: return "infinite_mismatch";
      case VerifyCode::RankMismatch: return "rank_mismatch";
      case VerifyCode::DimOutOfRank: return "dim_out_of_rank";
      case VerifyCode::EmptyComputeDomain: return "empty_compute_domain";
      case VerifyCode::DomainMismatch: return "domain_mismatch";
      case VerifyCode::BadShrinkRange: return "bad_shrink_range";
      case VerifyCode::BadReduceOp: return "bad_reduce_op";
      case VerifyCode::BadStreamPattern: return "bad_stream_pattern";
      case VerifyCode::BadOutput: return "bad_output";
      case VerifyCode::CmdRankMismatch: return "cmd_rank_mismatch";
      case VerifyCode::CmdDimOutOfRank: return "cmd_dim_out_of_rank";
      case VerifyCode::CmdEmptyTensor: return "cmd_empty_tensor";
      case VerifyCode::CmdBadMask: return "cmd_bad_mask";
      case VerifyCode::CmdBadShiftDist: return "cmd_bad_shift_dist";
      case VerifyCode::CmdBadBroadcast: return "cmd_bad_broadcast";
      case VerifyCode::CmdSlotOutOfRange: return "cmd_slot_out_of_range";
      case VerifyCode::CmdSlotMisaligned: return "cmd_slot_misaligned";
      case VerifyCode::CmdBankInvalid: return "cmd_bank_invalid";
      case VerifyCode::IntraGroupOverlap: return "intra_group_overlap";
      case VerifyCode::RawHazard: return "raw_hazard";
      case VerifyCode::WawHazard: return "waw_hazard";
      case VerifyCode::MissingSync: return "missing_sync";
      case VerifyCode::LotInconsistent: return "lot_inconsistent";
    }
    return "unknown";
}

std::string
VerifyDiag::str() const
{
    return "[" + std::string(verifyCodeName(code)) + "] " + where + ": " +
           message;
}

bool
VerifyReport::has(VerifyCode code) const
{
    for (const VerifyDiag &d : diags_)
        if (d.code == code)
            return true;
    return false;
}

std::size_t
VerifyReport::count(VerifyCode code) const
{
    std::size_t n = 0;
    for (const VerifyDiag &d : diags_)
        n += d.code == code;
    return n;
}

void
VerifyReport::add(VerifyCode code, std::string where, std::string message)
{
    diags_.push_back(
        VerifyDiag{code, std::move(where), std::move(message)});
}

void
VerifyReport::merge(const VerifyReport &other)
{
    diags_.insert(diags_.end(), other.diags_.begin(), other.diags_.end());
}

std::string
VerifyReport::str() const
{
    std::ostringstream os;
    if (clean()) {
        os << subject_ << ": clean";
        return os.str();
    }
    os << subject_ << ": " << diags_.size() << " diagnostic"
       << (diags_.size() == 1 ? "" : "s") << "\n";
    for (const VerifyDiag &d : diags_)
        os << "  " << d.str() << "\n";
    return os.str();
}

Error
VerifyReport::toError() const
{
    infs_assert(!clean(), "toError() on a clean report");
    std::string msg = subject_ + ": " + diags_.front().str();
    if (diags_.size() > 1) {
        msg += " (+" + std::to_string(diags_.size() - 1) +
               " more diagnostic" + (diags_.size() == 2 ? "" : "s") + ")";
    }
    return Error{ErrCode::VerifyFailed, std::move(msg)};
}

} // namespace infs
