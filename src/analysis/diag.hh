/**
 * @file
 * Diagnostic vocabulary of the static-analysis subsystem: one VerifyCode
 * per invariant the two verifiers (tDFG level, command level) check, plus
 * the VerifyReport the passes accumulate into. Reports convert into the
 * runtime's recoverable infs::Expected layer so a failed verification
 * degrades the region exactly like a failed lowering (DESIGN.md §9).
 */

#ifndef INFS_ANALYSIS_DIAG_HH
#define INFS_ANALYSIS_DIAG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/expected.hh"

namespace infs {

/** Machine-readable verifier diagnostic codes (catalog in DESIGN.md §9). */
enum class VerifyCode : std::uint8_t {
    // ---- tDFG verifier (VerifyLevel::Graphs and up). ----
    OperandOutOfRange,  ///< Operand id beyond the node table (dangling).
    OperandOrder,       ///< Operand not strictly earlier (cycle / non-SSA).
    OperandCount,       ///< Operand count illegal for the node kind.
    InfiniteMismatch,   ///< infiniteDomain flag disagrees with the kind.
    RankMismatch,       ///< Domain rank differs from the lattice rank.
    DimOutOfRank,       ///< dim parameter >= lattice rank.
    EmptyComputeDomain, ///< Compute input intersection is empty.
    DomainMismatch,     ///< Stored domain differs from the recomputed one.
    BadShrinkRange,     ///< Shrink range escapes the source domain.
    BadReduceOp,        ///< Reduce with a non-associative function.
    BadStreamPattern,   ///< Stream pattern invalid / role incoherent.
    BadOutput,          ///< Output references a missing/infinite node.

    // ---- Command hazard analyzer (VerifyLevel::Full). ----
    CmdRankMismatch,    ///< Command tensor rank differs from the layout.
    CmdDimOutOfRank,    ///< Command dim >= layout rank.
    CmdEmptyTensor,     ///< Tensor does not intersect the array bounds.
    CmdBadMask,         ///< Shift/compute mask outside [0, tileSize).
    CmdBadShiftDist,    ///< Shift distances inconsistent with the kind.
    CmdBadBroadcast,    ///< BroadcastBl with a non-positive count.
    CmdSlotOutOfRange,  ///< Wordline beyond the slot capacity.
    CmdSlotMisaligned,  ///< Wordline not a multiple of the element bits.
    CmdBankInvalid,     ///< Empty or out-of-range bank list.
    IntraGroupOverlap,  ///< Alg. 1 disjointness broken within a group.
    RawHazard,          ///< Read-after-write without an ordering edge.
    WawHazard,          ///< Write-after-write without an ordering edge.
    MissingSync,        ///< Inter-tile movement unsynchronized before use.
    LotInconsistent,    ///< Array/output slot table inconsistent (LOT).
};

/** Stable short name, e.g. "operand_out_of_range". */
const char *verifyCodeName(VerifyCode c);

/** One verifier finding: code, location, human-readable message. */
struct VerifyDiag {
    VerifyCode code;
    std::string where;   ///< "node 3 (mv3)" / "cmd 12 (inter_shift ...)".
    std::string message;

    /** "[code] where: message" rendering. */
    std::string str() const;
};

/** Accumulated findings of one verifier run over one subject. */
class VerifyReport
{
  public:
    explicit VerifyReport(std::string subject = "")
        : subject_(std::move(subject))
    {
    }

    const std::string &subject() const { return subject_; }
    const std::vector<VerifyDiag> &diags() const { return diags_; }

    bool clean() const { return diags_.empty(); }
    std::size_t size() const { return diags_.size(); }

    /** Whether any finding carries @p code. */
    bool has(VerifyCode code) const;
    /** Number of findings carrying @p code. */
    std::size_t count(VerifyCode code) const;

    void add(VerifyCode code, std::string where, std::string message);
    /** Append all findings of @p other (e.g. graph + command reports). */
    void merge(const VerifyReport &other);

    /** Multi-line report; "<subject>: clean" when no findings. */
    std::string str() const;

    /**
     * Collapse into one recoverable Error (first finding + total count)
     * for the degradation paths that consume infs::Expected.
     */
    Error toError() const;

  private:
    std::string subject_;
    std::vector<VerifyDiag> diags_;
};

} // namespace infs

#endif // INFS_ANALYSIS_DIAG_HH
