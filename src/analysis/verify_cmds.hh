/**
 * @file
 * Level-2 static analysis: the lowered-command hazard analyzer. Checks an
 * InMemProgram against the §4.2 execution model — per-bank synchronous
 * issue, asynchronous inter-tile movement committed only by Sync — and
 * reports: (a) intra-group tile overlaps breaking Alg. 1's disjointness,
 * (b) RAW hazards whose dependence banks carry no ordering edge, (c)
 * InterShift/BroadcastBl results consumed without an intervening Sync,
 * and (d) wordline slot-capacity and LOT-consistency violations
 * (DESIGN.md §9).
 */

#ifndef INFS_ANALYSIS_VERIFY_CMDS_HH
#define INFS_ANALYSIS_VERIFY_CMDS_HH

#include "analysis/diag.hh"
#include "jit/commands.hh"
#include "jit/tiling.hh"
#include "mem/address_map.hh"
#include "sim/config.hh"

namespace infs {

/**
 * Run every command-stream invariant check over @p prog as lowered for
 * @p layout. @p map resolves tiles to banks (dependences are tracked at
 * bank granularity: a command only touches cells its bank list owns);
 * @p cfg supplies the element type and L3 geometry. Never aborts.
 */
VerifyReport verifyCommands(const InMemProgram &prog,
                            const TiledLayout &layout, const AddressMap &map,
                            const SystemConfig &cfg);

/** True when @p prog verifies clean, else a VerifyFailed Error. */
Expected<bool> checkCommands(const InMemProgram &prog,
                             const TiledLayout &layout,
                             const AddressMap &map, const SystemConfig &cfg);

} // namespace infs

#endif // INFS_ANALYSIS_VERIFY_CMDS_HH
