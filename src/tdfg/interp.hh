/**
 * @file
 * Reference (functional) interpreter for the tDFG. Defines the semantics
 * every backend must match: executors and the bit-serial engine are
 * validated against this interpreter in tests.
 */

#ifndef INFS_TDFG_INTERP_HH
#define INFS_TDFG_INTERP_HH

#include <unordered_map>
#include <vector>

#include "tdfg/array_store.hh"
#include "tdfg/graph.hh"

namespace infs {

/** A materialized tensor: dense values over its lattice domain. */
struct TensorValue {
    HyperRect domain;
    std::vector<float> data;  ///< dim 0 innermost, relative to domain lo.
    bool isConst = false;
    float constVal = 0.0f;

    /** Value at an absolute lattice coordinate (must be inside domain). */
    float at(const std::vector<Coord> &pt) const;
    float &at(const std::vector<Coord> &pt);

    /** Allocate zeroed data over @p d. */
    static TensorValue dense(const HyperRect &d);
};

/** Iterates every lattice cell of a hyperrectangle (dim 0 fastest). */
class RectIter
{
  public:
    explicit RectIter(const HyperRect &r);

    bool done() const { return done_; }
    const std::vector<Coord> &operator*() const { return pt_; }
    void next();

  private:
    const HyperRect &rect_;
    std::vector<Coord> pt_;
    bool done_;
};

/**
 * Evaluates a tDFG against an ArrayStore. Outputs and store streams write
 * back into the store; reduce streams produce scalar results retrievable
 * afterwards.
 */
class TdfgInterpreter
{
  public:
    explicit TdfgInterpreter(ArrayStore &store) : store_(store) {}

    /** Evaluate the whole graph in node order. */
    void run(const TdfgGraph &g);

    /** Value produced by a node during the last run. */
    const TensorValue &value(NodeId id) const;

    /** Scalar result of a reduce stream from the last run. */
    float streamReduceResult(NodeId id) const;

    /** Total scalar fp operations performed (for cross-checking costs). */
    std::uint64_t flopCount() const { return flops_; }

  private:
    TensorValue evalNode(const TdfgGraph &g, const TdfgNode &n);
    TensorValue evalCompute(const TdfgGraph &g, const TdfgNode &n);
    TensorValue evalReduce(const TdfgNode &n);
    TensorValue evalStream(const TdfgGraph &g, const TdfgNode &n, NodeId id);
    void writeOutput(const TdfgGraph &g, const TdfgGraph::Output &o);

    static float applyOp(BitOp fn, float a, float b);

    ArrayStore &store_;
    std::vector<TensorValue> values_;
    std::unordered_map<NodeId, float> reduceResults_;
    std::uint64_t flops_ = 0;
};

} // namespace infs

#endif // INFS_TDFG_INTERP_HH
