/**
 * @file
 * The tensor dataflow graph (tDFG, §3.2): the paper's IR and program
 * representation. Nodes are tensors positioned in a global lattice space;
 * the graph is SSA (nodes always produce new tensors). Fig 5 defines node
 * semantics; this header implements them with automatic domain inference.
 */

#ifndef INFS_TDFG_GRAPH_HH
#define INFS_TDFG_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "bitserial/latency.hh"
#include "stream/pattern.hh"
#include "tdfg/hyperrect.hh"

namespace infs {

/** Index of a node within its graph. */
using NodeId = std::uint32_t;
inline constexpr NodeId invalidNode = ~NodeId(0);

/** tDFG node kinds (Fig 5 plus the appendix's shrink node). */
enum class TdfgKind : std::uint8_t {
    Tensor,     ///< Hyperrectangle of an array's elements.
    ConstVal,   ///< Infinite tensor with a constant at all cells.
    Compute,    ///< Elementwise f over the intersection of inputs.
    Move,       ///< Shift by dist along a dimension.
    Broadcast,  ///< Replicate count times along a dimension.
    Shrink,     ///< Resize a dimension (appendix Eq. 5); lowered to a nop.
    Reduce,     ///< Collapse a dimension with an associative op.
    Stream,     ///< Embedded near-memory stream (§3.3).
};

const char *tdfgKindName(TdfgKind k);

/** Role of an embedded stream node. */
enum class StreamRole : std::uint8_t {
    Load,    ///< Reads array data into a tensor (or normal values).
    Store,   ///< Writes a tensor back through an (possibly indirect) pattern.
    Reduce,  ///< Final reduction of in-memory partial results (Fig 4b).
};

/** One tDFG node. Parameter fields are meaningful per kind. */
struct TdfgNode {
    TdfgKind kind = TdfgKind::Tensor;
    std::vector<NodeId> operands;

    /** Domain in the lattice space; ignored when infiniteDomain. */
    HyperRect domain;
    /** ConstVal nodes cover the whole lattice. */
    bool infiniteDomain = false;

    ArrayId array = invalidArray;    ///< Tensor: source array.
    double constValue = 0.0;         ///< ConstVal.
    BitOp fn = BitOp::Add;           ///< Compute / Reduce.
    unsigned dim = 0;                ///< Move / Broadcast / Shrink / Reduce.
    Coord dist = 0;                  ///< Move / Broadcast offset.
    Coord count = 0;                 ///< Broadcast replication count.
    StreamRole streamRole = StreamRole::Load;
    AccessPattern pattern;           ///< Stream access pattern.
    std::string name;                ///< Debug label.

    bool isStream() const { return kind == TdfgKind::Stream; }
};

/** Aggregate counts the runtime uses for the Eq. 2 offload decision. */
struct TdfgSummary {
    unsigned numNodes = 0;
    unsigned numCompute = 0;
    unsigned numMove = 0;
    unsigned numBroadcast = 0;
    unsigned numReduce = 0;
    unsigned numStream = 0;
    std::int64_t maxTensorElems = 0;
    /** Sum of bit-serial latencies over compute/move/bc/reduce nodes —
     * the "# of each op" hints the compiler embeds so the runtime can
     * evaluate Eq. 2 without walking the graph (§4.3). */
    Tick opCycles = 0;
};

/**
 * A tensor dataflow graph over an N-dimensional lattice space. Nodes are
 * appended in topological order (operands must already exist), keeping the
 * graph SSA and trivially schedulable.
 */
class TdfgGraph
{
  public:
    explicit TdfgGraph(unsigned dims, std::string name = "tdfg")
        : dims_(dims), name_(std::move(name))
    {
        infs_assert(dims >= 1 && dims <= 3,
                    "lattice rank %u unsupported (max 3, §5.2)", dims);
    }

    unsigned dims() const { return dims_; }
    const std::string &name() const { return name_; }

    std::size_t size() const { return nodes_.size(); }
    const TdfgNode &node(NodeId id) const;
    const std::vector<TdfgNode> &nodes() const { return nodes_; }

    // ------------------------------------------------------------------
    // Construction (the kernel-builder DSL; stands in for the paper's
    // LLVM extraction pass — see DESIGN.md substitutions).
    // ------------------------------------------------------------------

    /** Input tensor: the array region @p rect of array @p array. */
    NodeId tensor(ArrayId array, HyperRect rect, std::string name = "");

    /** Constant at every lattice cell. */
    NodeId constant(double value, std::string name = "");

    /** Elementwise compute over the intersection of @p inputs. */
    NodeId compute(BitOp fn, std::vector<NodeId> inputs,
                   std::string name = "");

    /** Move @p a by @p dist along @p dim. */
    NodeId move(NodeId a, unsigned dim, Coord dist, std::string name = "");

    /** Broadcast @p a @p count times along @p dim with offset @p dist. */
    NodeId broadcast(NodeId a, unsigned dim, Coord dist, Coord count,
                     std::string name = "");

    /** Shrink dimension @p dim of @p a to [p, q) (appendix Eq. 5). */
    NodeId shrink(NodeId a, unsigned dim, Coord p, Coord q,
                  std::string name = "");

    /** Reduce @p a along @p dim with associative @p fn. */
    NodeId reduce(NodeId a, BitOp fn, unsigned dim, std::string name = "");

    /**
     * Embedded stream. Load streams take no operand; store/reduce streams
     * consume @p input. Store streams produce a tensor covering the
     * touched cells (@p rect).
     */
    NodeId stream(StreamRole role, AccessPattern pattern,
                  NodeId input = invalidNode, HyperRect rect = HyperRect{},
                  std::string name = "", BitOp reduce_fn = BitOp::Add);

    /** Mark @p node's tensor as written back to array @p array. */
    void output(NodeId node, ArrayId array);

    /**
     * Append @p n verbatim, bypassing every builder invariant (operand
     * ordering, domain inference, rank checks). For deserializers and the
     * adversarial corpora of the tDFG verifier (tests/analysis); regular
     * construction goes through the typed builders above.
     */
    NodeId appendUnchecked(TdfgNode n);

    struct Output {
        NodeId node;
        ArrayId array;
    };
    const std::vector<Output> &outputs() const { return outputs_; }

    /** Domain of a node (must not be infinite). */
    const HyperRect &domainOf(NodeId id) const;

    /** Aggregate counts for the runtime's quick decisions (§4.3). */
    TdfgSummary summarize() const;

    /**
     * Structural validation: operand ordering, domain ranks, non-empty
     * compute domains, outputs produce tensors. Panics on violation when
     * @p fatal, else returns false.
     */
    bool validate(bool fatal = true) const;

    /** Multi-line text dump for debugging and golden tests. */
    std::string dump() const;

  private:
    NodeId append(TdfgNode n);
    HyperRect intersectOperands(const std::vector<NodeId> &ids) const;

    unsigned dims_;
    std::string name_;
    std::vector<TdfgNode> nodes_;
    std::vector<Output> outputs_;
};

} // namespace infs

#endif // INFS_TDFG_GRAPH_HH
