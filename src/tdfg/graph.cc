#include "tdfg/graph.hh"

#include <sstream>

namespace infs {

const char *
tdfgKindName(TdfgKind k)
{
    switch (k) {
      case TdfgKind::Tensor: return "tensor";
      case TdfgKind::ConstVal: return "const";
      case TdfgKind::Compute: return "cmp";
      case TdfgKind::Move: return "mv";
      case TdfgKind::Broadcast: return "bc";
      case TdfgKind::Shrink: return "shrink";
      case TdfgKind::Reduce: return "reduce";
      case TdfgKind::Stream: return "strm";
    }
    return "?";
}

const TdfgNode &
TdfgGraph::node(NodeId id) const
{
    infs_assert(id < nodes_.size(), "node %u out of %zu", id, nodes_.size());
    return nodes_[id];
}

NodeId
TdfgGraph::append(TdfgNode n)
{
    NodeId id = static_cast<NodeId>(nodes_.size());
    for (NodeId op : n.operands)
        infs_assert(op < id, "operand %u of node %u not yet defined", op,
                    id);
    if (n.name.empty())
        n.name = std::string(tdfgKindName(n.kind)) + std::to_string(id);
    nodes_.push_back(std::move(n));
    return id;
}

NodeId
TdfgGraph::appendUnchecked(TdfgNode n)
{
    NodeId id = static_cast<NodeId>(nodes_.size());
    if (n.name.empty())
        n.name = std::string(tdfgKindName(n.kind)) + std::to_string(id);
    nodes_.push_back(std::move(n));
    return id;
}

HyperRect
TdfgGraph::intersectOperands(const std::vector<NodeId> &ids) const
{
    HyperRect acc;
    bool have = false;
    for (NodeId id : ids) {
        const TdfgNode &n = node(id);
        if (n.infiniteDomain)
            continue;
        if (!have) {
            acc = n.domain;
            have = true;
        } else {
            acc = acc.intersect(n.domain);
        }
    }
    infs_assert(have, "compute with only constant operands");
    return acc;
}

NodeId
TdfgGraph::tensor(ArrayId array, HyperRect rect, std::string name)
{
    infs_assert(rect.dims() == dims_, "tensor rank %u != lattice rank %u",
                rect.dims(), dims_);
    TdfgNode n;
    n.kind = TdfgKind::Tensor;
    n.array = array;
    n.domain = std::move(rect);
    n.name = std::move(name);
    return append(std::move(n));
}

NodeId
TdfgGraph::constant(double value, std::string name)
{
    TdfgNode n;
    n.kind = TdfgKind::ConstVal;
    n.constValue = value;
    n.infiniteDomain = true;
    n.name = std::move(name);
    return append(std::move(n));
}

NodeId
TdfgGraph::compute(BitOp fn, std::vector<NodeId> inputs, std::string name)
{
    infs_assert(!inputs.empty(), "compute needs operands");
    TdfgNode n;
    n.kind = TdfgKind::Compute;
    n.fn = fn;
    n.domain = intersectOperands(inputs);
    n.operands = std::move(inputs);
    n.name = std::move(name);
    infs_assert(!n.domain.empty(),
                "compute '%s' has empty domain %s — operands misaligned?",
                n.name.c_str(), n.domain.str().c_str());
    return append(std::move(n));
}

NodeId
TdfgGraph::move(NodeId a, unsigned dim, Coord dist, std::string name)
{
    infs_assert(dim < dims_, "move dim %u out of rank %u", dim, dims_);
    TdfgNode n;
    n.kind = TdfgKind::Move;
    n.operands = {a};
    n.dim = dim;
    n.dist = dist;
    n.domain = domainOf(a).shifted(dim, dist);
    n.name = std::move(name);
    return append(std::move(n));
}

NodeId
TdfgGraph::broadcast(NodeId a, unsigned dim, Coord dist, Coord count,
                     std::string name)
{
    infs_assert(dim < dims_, "broadcast dim %u out of rank %u", dim, dims_);
    infs_assert(count >= 1, "broadcast count must be >= 1");
    const HyperRect &src = domainOf(a);
    Coord span = src.size(dim);
    TdfgNode n;
    n.kind = TdfgKind::Broadcast;
    n.operands = {a};
    n.dim = dim;
    n.dist = dist;
    n.count = count;
    // Copies land at offsets dist, dist+span, ..., dist+(count-1)*span.
    n.domain = src.withDim(dim, src.lo(dim) + dist,
                           src.lo(dim) + dist + count * span);
    n.name = std::move(name);
    return append(std::move(n));
}

NodeId
TdfgGraph::shrink(NodeId a, unsigned dim, Coord p, Coord q, std::string name)
{
    infs_assert(dim < dims_, "shrink dim %u out of rank %u", dim, dims_);
    const HyperRect &src = domainOf(a);
    infs_assert(p >= src.lo(dim) && q <= src.hi(dim),
                "shrink [%lld,%lld) escapes source %s",
                static_cast<long long>(p), static_cast<long long>(q),
                src.str().c_str());
    TdfgNode n;
    n.kind = TdfgKind::Shrink;
    n.operands = {a};
    n.dim = dim;
    n.domain = src.withDim(dim, p, q);
    n.name = std::move(name);
    return append(std::move(n));
}

NodeId
TdfgGraph::reduce(NodeId a, BitOp fn, unsigned dim, std::string name)
{
    infs_assert(dim < dims_, "reduce dim %u out of rank %u", dim, dims_);
    infs_assert(fn == BitOp::Add || fn == BitOp::Max || fn == BitOp::Min ||
                    fn == BitOp::Mul,
                "reduce needs an associative op, got %s", bitOpName(fn));
    const HyperRect &src = domainOf(a);
    TdfgNode n;
    n.kind = TdfgKind::Reduce;
    n.operands = {a};
    n.fn = fn;
    n.dim = dim;
    n.domain = src.withDim(dim, src.lo(dim), src.lo(dim) + 1);
    n.name = std::move(name);
    return append(std::move(n));
}

NodeId
TdfgGraph::stream(StreamRole role, AccessPattern pattern, NodeId input,
                  HyperRect rect, std::string name, BitOp reduce_fn)
{
    infs_assert(pattern.valid(), "invalid stream access pattern");
    TdfgNode n;
    n.kind = TdfgKind::Stream;
    n.streamRole = role;
    n.fn = reduce_fn;
    n.pattern = std::move(pattern);
    n.name = std::move(name);
    if (role == StreamRole::Load) {
        infs_assert(input == invalidNode, "load stream takes no operand");
        infs_assert(rect.dims() == dims_, "load stream needs a tensor rect");
        n.domain = std::move(rect);
    } else {
        infs_assert(input != invalidNode, "store/reduce stream needs input");
        n.operands = {input};
        if (role == StreamRole::Store) {
            // Tensor value: bounding rect of the touched cells (§3.3).
            n.domain = rect.dims() == dims_ ? std::move(rect)
                                            : domainOf(input);
        } else {
            // Reduce streams produce normal (scalar) values.
            n.domain = HyperRect::array(std::vector<Coord>(dims_, 1));
        }
    }
    return append(std::move(n));
}

void
TdfgGraph::output(NodeId node_id, ArrayId array)
{
    const TdfgNode &n = node(node_id);
    infs_assert(!n.infiniteDomain, "cannot output an infinite tensor");
    outputs_.push_back(Output{node_id, array});
}

const HyperRect &
TdfgGraph::domainOf(NodeId id) const
{
    const TdfgNode &n = node(id);
    infs_assert(!n.infiniteDomain, "node %u has infinite domain", id);
    return n.domain;
}

TdfgSummary
TdfgGraph::summarize() const
{
    TdfgSummary s;
    LatencyTable lat;
    s.numNodes = static_cast<unsigned>(nodes_.size());
    for (const TdfgNode &n : nodes_) {
        switch (n.kind) {
          case TdfgKind::Compute:
            ++s.numCompute;
            s.opCycles += lat.opCycles(n.fn, DType::Fp32) *
                          std::max<std::size_t>(n.operands.size() - 1, 1);
            break;
          case TdfgKind::Move:
            ++s.numMove;
            s.opCycles += lat.intraShiftCycles(DType::Fp32);
            break;
          case TdfgKind::Broadcast:
            ++s.numBroadcast;
            s.opCycles += lat.intraShiftCycles(DType::Fp32);
            break;
          case TdfgKind::Reduce:
            ++s.numReduce;
            s.opCycles += 8 * lat.opCycles(n.fn, DType::Fp32);
            break;
          case TdfgKind::Stream: ++s.numStream; break;
          default: break;
        }
        if (!n.infiniteDomain)
            s.maxTensorElems =
                std::max(s.maxTensorElems, n.domain.volume());
    }
    return s;
}

bool
TdfgGraph::validate(bool fatal) const
{
    auto fail = [&](const std::string &msg) {
        if (fatal)
            infs_panic("tDFG '%s' invalid: %s", name_.c_str(), msg.c_str());
        return false;
    };
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        const TdfgNode &n = nodes_[id];
        for (NodeId op : n.operands) {
            if (op >= id)
                return fail("node " + std::to_string(id) +
                            " uses later node " + std::to_string(op));
        }
        if (!n.infiniteDomain && n.domain.dims() != dims_)
            return fail("node " + std::to_string(id) + " rank mismatch");
        if (n.kind == TdfgKind::Compute && n.domain.empty())
            return fail("compute node " + std::to_string(id) +
                        " has empty domain");
    }
    for (const Output &o : outputs_) {
        if (o.node >= nodes_.size())
            return fail("output references missing node");
        if (nodes_[o.node].infiniteDomain)
            return fail("output references infinite tensor");
    }
    return true;
}

std::string
TdfgGraph::dump() const
{
    std::ostringstream os;
    os << "tdfg " << name_ << " dims=" << dims_ << "\n";
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        const TdfgNode &n = nodes_[id];
        os << "  %" << id << " = " << tdfgKindName(n.kind);
        switch (n.kind) {
          case TdfgKind::Tensor:
            os << " array" << n.array << " " << n.domain.str();
            break;
          case TdfgKind::ConstVal:
            os << " " << n.constValue;
            break;
          case TdfgKind::Compute:
            os << " " << bitOpName(n.fn);
            break;
          case TdfgKind::Move:
            os << " dim=" << n.dim << " dist=" << n.dist;
            break;
          case TdfgKind::Broadcast:
            os << " dim=" << n.dim << " dist=" << n.dist
               << " count=" << n.count;
            break;
          case TdfgKind::Shrink:
            os << " dim=" << n.dim << " to=" << n.domain.str();
            break;
          case TdfgKind::Reduce:
            os << " " << bitOpName(n.fn) << " dim=" << n.dim;
            break;
          case TdfgKind::Stream:
            os << (n.streamRole == StreamRole::Load ? " load"
                   : n.streamRole == StreamRole::Store ? " store"
                                                       : " reduce");
            break;
        }
        if (!n.operands.empty()) {
            os << " (";
            for (std::size_t i = 0; i < n.operands.size(); ++i)
                os << (i ? ", %" : "%") << n.operands[i];
            os << ")";
        }
        if (!n.infiniteDomain && n.kind != TdfgKind::Tensor)
            os << " : " << n.domain.str();
        os << "\n";
    }
    for (const Output &o : outputs_)
        os << "  output %" << o.node << " -> array" << o.array << "\n";
    return os.str();
}

} // namespace infs
