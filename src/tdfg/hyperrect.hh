/**
 * @file
 * Hyperrectangles in the tDFG's global lattice space (§3.2). A tensor is a
 * hyperrectangle set of lattice cells [p0,q0) x ... x [pN-1,qN-1); compute
 * nodes operate on the intersection of their operands' rectangles.
 */

#ifndef INFS_TDFG_HYPERRECT_HH
#define INFS_TDFG_HYPERRECT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace infs {

/** Coordinate in the lattice space. */
using Coord = std::int64_t;

/**
 * An N-dimensional half-open hyperrectangle in the lattice space.
 * Dimension 0 is the innermost / contiguous-in-address dimension.
 */
class HyperRect
{
  public:
    HyperRect() = default;

    /** Construct from per-dimension [lo, hi) bounds. */
    HyperRect(std::vector<Coord> lo, std::vector<Coord> hi)
        : lo_(std::move(lo)), hi_(std::move(hi))
    {
        infs_assert(lo_.size() == hi_.size(), "bound rank mismatch");
    }

    /** Convenience: a 1-D interval. */
    static HyperRect
    interval(Coord p, Coord q)
    {
        return HyperRect({p}, {q});
    }

    /** Convenience: a 2-D box [p0,q0) x [p1,q1). */
    static HyperRect
    box2(Coord p0, Coord q0, Coord p1, Coord q1)
    {
        return HyperRect({p0, p1}, {q0, q1});
    }

    /** Convenience: a 3-D box. */
    static HyperRect
    box3(Coord p0, Coord q0, Coord p1, Coord q1, Coord p2, Coord q2)
    {
        return HyperRect({p0, p1, p2}, {q0, q1, q2});
    }

    /** An array of the given sizes anchored at the origin. */
    static HyperRect
    array(const std::vector<Coord> &sizes)
    {
        return HyperRect(std::vector<Coord>(sizes.size(), 0), sizes);
    }

    unsigned dims() const { return static_cast<unsigned>(lo_.size()); }

    Coord lo(unsigned d) const { checkDim(d); return lo_[d]; }
    Coord hi(unsigned d) const { checkDim(d); return hi_[d]; }
    Coord size(unsigned d) const { checkDim(d); return hi_[d] - lo_[d]; }

    /** True when any dimension is empty (or the rect has no dims). */
    bool empty() const;

    /** Number of lattice cells; 0 when empty. */
    std::int64_t volume() const;

    /** Does the cell at @p pt lie inside? */
    bool contains(const std::vector<Coord> &pt) const;

    /** Is @p inner entirely inside this rect? */
    bool containsRect(const HyperRect &inner) const;

    /** Elementwise intersection; empty dims clamp to zero-size. */
    HyperRect intersect(const HyperRect &o) const;

    /** Minimal rect covering both (the bounding hyperrectangle). */
    HyperRect boundingUnion(const HyperRect &o) const;

    /** Rect translated by @p dist along dimension @p dim. */
    HyperRect shifted(unsigned dim, Coord dist) const;

    /** Rect with dimension @p dim replaced by [p, q). */
    HyperRect withDim(unsigned dim, Coord p, Coord q) const;

    bool operator==(const HyperRect &o) const
    {
        return lo_ == o.lo_ && hi_ == o.hi_;
    }

    /** "[p0,q0)x[p1,q1)" rendering for diagnostics. */
    std::string str() const;

  private:
    void
    checkDim(unsigned d) const
    {
        infs_assert(d < dims(), "dim %u out of rank %u", d, dims());
    }

    std::vector<Coord> lo_;
    std::vector<Coord> hi_;
};

} // namespace infs

#endif // INFS_TDFG_HYPERRECT_HH
