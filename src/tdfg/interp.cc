#include "tdfg/interp.hh"

#include <algorithm>
#include <utility>
#include <cmath>

namespace infs {

TensorValue
TensorValue::dense(const HyperRect &d)
{
    TensorValue v;
    v.domain = d;
    v.data.assign(static_cast<std::size_t>(std::max<std::int64_t>(
                      d.volume(), 0)),
                  0.0f);
    return v;
}

namespace {

std::int64_t
relIndex(const HyperRect &d, const std::vector<Coord> &pt)
{
    std::int64_t lin = 0;
    std::int64_t mult = 1;
    for (unsigned dim = 0; dim < d.dims(); ++dim) {
        infs_assert(pt[dim] >= d.lo(dim) && pt[dim] < d.hi(dim),
                    "point outside tensor domain %s", d.str().c_str());
        lin += (pt[dim] - d.lo(dim)) * mult;
        mult *= d.size(dim);
    }
    return lin;
}

} // namespace

float
TensorValue::at(const std::vector<Coord> &pt) const
{
    if (isConst)
        return constVal;
    return data[static_cast<std::size_t>(relIndex(domain, pt))];
}

float &
TensorValue::at(const std::vector<Coord> &pt)
{
    infs_assert(!isConst, "cannot write a const tensor");
    return data[static_cast<std::size_t>(relIndex(domain, pt))];
}

RectIter::RectIter(const HyperRect &r) : rect_(r), done_(r.empty())
{
    pt_.resize(r.dims());
    for (unsigned d = 0; d < r.dims(); ++d)
        pt_[d] = r.lo(d);
}

void
RectIter::next()
{
    infs_assert(!done_, "iterating past the end");
    for (unsigned d = 0; d < rect_.dims(); ++d) {
        if (++pt_[d] < rect_.hi(d))
            return;
        pt_[d] = rect_.lo(d);
    }
    done_ = true;
}

float
TdfgInterpreter::applyOp(BitOp fn, float a, float b)
{
    switch (fn) {
      case BitOp::Add: return a + b;
      case BitOp::Sub: return a - b;
      case BitOp::Mul: return a * b;
      case BitOp::Div: return a / b;
      case BitOp::Max: return a > b ? a : b;
      case BitOp::Min: return a < b ? a : b;
      case BitOp::CmpLt: return a < b ? 1.0f : 0.0f;
      case BitOp::Copy: return a;
      case BitOp::Relu: return a > 0.0f ? a : 0.0f;
      default:
        infs_panic("interp: unsupported op %s", bitOpName(fn));
    }
}

void
TdfgInterpreter::run(const TdfgGraph &g)
{
    g.validate();
    values_.clear();
    reduceResults_.clear();
    flops_ = 0;
    values_.reserve(g.size());
    for (NodeId id = 0; id < g.size(); ++id)
        values_.push_back(evalNode(g, g.node(id)));
    for (const auto &o : g.outputs())
        writeOutput(g, o);
}

const TensorValue &
TdfgInterpreter::value(NodeId id) const
{
    infs_assert(id < values_.size(), "no value for node %u", id);
    return values_[id];
}

float
TdfgInterpreter::streamReduceResult(NodeId id) const
{
    auto it = reduceResults_.find(id);
    infs_assert(it != reduceResults_.end(),
                "node %u produced no reduce result", id);
    return it->second;
}

TensorValue
TdfgInterpreter::evalNode(const TdfgGraph &g, const TdfgNode &n)
{
    switch (n.kind) {
      case TdfgKind::Tensor: {
        const StoredArray &arr = store_.array(n.array);
        infs_assert(arr.rect().containsRect(n.domain),
                    "tensor %s escapes array '%s' (%s)",
                    n.domain.str().c_str(), arr.name.c_str(),
                    arr.rect().str().c_str());
        TensorValue v = TensorValue::dense(n.domain);
        for (RectIter it(n.domain); !it.done(); it.next())
            v.at(*it) = arr.at(*it);
        return v;
      }
      case TdfgKind::ConstVal: {
        TensorValue v;
        v.isConst = true;
        v.constVal = static_cast<float>(n.constValue);
        return v;
      }
      case TdfgKind::Compute:
        return evalCompute(g, n);
      case TdfgKind::Move: {
        // SSA move: same data, shifted domain.
        TensorValue v = values_[n.operands[0]];
        infs_assert(!v.isConst, "move of const tensor is meaningless");
        v.domain = v.domain.shifted(n.dim, n.dist);
        return v;
      }
      case TdfgKind::Shrink: {
        const TensorValue &src = values_[n.operands[0]];
        TensorValue v = TensorValue::dense(n.domain);
        for (RectIter it(n.domain); !it.done(); it.next())
            v.at(*it) = src.at(*it);
        return v;
      }
      case TdfgKind::Broadcast: {
        const TensorValue &src = values_[n.operands[0]];
        TensorValue v = TensorValue::dense(n.domain);
        Coord span = src.domain.size(n.dim);
        Coord src_lo = src.domain.lo(n.dim);
        for (RectIter it(n.domain); !it.done(); it.next()) {
            std::vector<Coord> pt = *it;
            // Fold the broadcast dimension back into the source copy.
            Coord off = pt[n.dim] - (src_lo + n.dist);
            pt[n.dim] = src_lo + (off % span + span) % span;
            v.at(*it) = src.at(pt);
        }
        return v;
      }
      case TdfgKind::Reduce:
        return evalReduce(n);
      case TdfgKind::Stream: {
        NodeId id = static_cast<NodeId>(values_.size());
        return evalStream(g, n, id);
      }
    }
    infs_panic("unknown tDFG node kind");
}

TensorValue
TdfgInterpreter::evalCompute(const TdfgGraph &g, const TdfgNode &n)
{
    (void)g;
    TensorValue out = TensorValue::dense(n.domain);
    const unsigned n_ops = static_cast<unsigned>(n.operands.size());
    infs_assert(n_ops >= 1, "compute without operands");
    for (RectIter it(n.domain); !it.done(); it.next()) {
        const TensorValue &first = values_[n.operands[0]];
        float acc = std::as_const(first).at(*it);
        if (n_ops == 1) {
            acc = applyOp(n.fn, acc, 0.0f);
            ++flops_;
        }
        for (unsigned i = 1; i < n_ops; ++i) {
            const TensorValue &opv = values_[n.operands[i]];
            acc = applyOp(n.fn, acc, std::as_const(opv).at(*it));
            ++flops_;
        }
        out.at(*it) = acc;
    }
    return out;
}

TensorValue
TdfgInterpreter::evalReduce(const TdfgNode &n)
{
    const TensorValue &src = values_[n.operands[0]];
    TensorValue out = TensorValue::dense(n.domain);
    const HyperRect &sd = src.domain;
    bool first_written = false;
    (void)first_written;
    for (RectIter it(n.domain); !it.done(); it.next()) {
        std::vector<Coord> pt = *it;
        float acc = 0.0f;
        bool first = true;
        for (Coord k = sd.lo(n.dim); k < sd.hi(n.dim); ++k) {
            pt[n.dim] = k;
            float v = src.at(pt);
            if (first) {
                acc = v;
                first = false;
            } else {
                acc = applyOp(n.fn, acc, v);
                ++flops_;
            }
        }
        out.at(*it) = acc;
    }
    return out;
}

TensorValue
TdfgInterpreter::evalStream(const TdfgGraph &g, const TdfgNode &n, NodeId id)
{
    const AccessPattern &p = n.pattern;
    StoredArray &arr = store_.array(p.array);
    // Enumerate the affine index sequence.
    std::vector<std::int64_t> seq;
    std::int64_t total = p.numElements();
    seq.reserve(static_cast<std::size_t>(total));
    std::vector<std::int64_t> ctr(p.counts.size(), 0);
    for (std::int64_t e = 0; e < total; ++e) {
        std::int64_t idx = p.start;
        for (std::size_t d = 0; d < ctr.size(); ++d)
            idx += ctr[d] * p.strides[d];
        if (p.indirect()) {
            const StoredArray &ind = store_.array(p.indirectArray);
            infs_assert(idx >= 0 &&
                            idx < static_cast<std::int64_t>(ind.data.size()),
                        "indirect index stream out of bounds");
            idx = static_cast<std::int64_t>(ind.data[
                static_cast<std::size_t>(idx)]);
        }
        infs_assert(idx >= 0 &&
                        idx < static_cast<std::int64_t>(arr.data.size()),
                    "stream index %lld out of array '%s'",
                    static_cast<long long>(idx), arr.name.c_str());
        seq.push_back(idx);
        for (std::size_t d = 0; d < ctr.size(); ++d) {
            if (++ctr[d] < p.counts[d])
                break;
            ctr[d] = 0;
        }
    }

    switch (n.streamRole) {
      case StreamRole::Load: {
        TensorValue v = TensorValue::dense(n.domain);
        infs_assert(static_cast<std::int64_t>(seq.size()) ==
                        n.domain.volume(),
                    "load stream length %zu != tensor volume %lld",
                    seq.size(),
                    static_cast<long long>(n.domain.volume()));
        std::size_t e = 0;
        for (RectIter it(n.domain); !it.done(); it.next())
            v.at(*it) = arr.data[static_cast<std::size_t>(seq[e++])];
        return v;
      }
      case StreamRole::Store: {
        const TensorValue &src = values_[n.operands[0]];
        infs_assert(static_cast<std::int64_t>(seq.size()) ==
                        src.domain.volume(),
                    "store stream length %zu != tensor volume %lld",
                    seq.size(),
                    static_cast<long long>(src.domain.volume()));
        std::size_t e = 0;
        for (RectIter it(src.domain); !it.done(); it.next())
            arr.data[static_cast<std::size_t>(seq[e++])] = src.at(*it);
        // The produced tensor value covers the touched cells.
        TensorValue v = TensorValue::dense(n.domain);
        if (!n.domain.empty() && !p.indirect() &&
            n.domain == src.domain) {
            v = src;
            v.domain = n.domain;
        }
        return v;
      }
      case StreamRole::Reduce: {
        const TensorValue &src = values_[n.operands[0]];
        float acc = 0.0f;
        bool first = true;
        for (RectIter it(src.domain); !it.done(); it.next()) {
            float x = src.at(*it);
            if (first) {
                acc = x;
                first = false;
            } else {
                acc = applyOp(n.fn, acc, x);
                ++flops_;
            }
        }
        reduceResults_[id] = acc;
        TensorValue v = TensorValue::dense(n.domain);
        if (!v.data.empty())
            v.data[0] = acc;
        (void)g;
        return v;
      }
    }
    infs_panic("unknown stream role");
}

void
TdfgInterpreter::writeOutput(const TdfgGraph &g, const TdfgGraph::Output &o)
{
    (void)g;
    const TensorValue &v = values_[o.node];
    StoredArray &arr = store_.array(o.array);
    HyperRect writable = arr.rect().intersect(v.domain);
    // Data moved/broadcast outside the global bounding rect is discarded
    // (§3.2), so clamp to the array's rect.
    for (RectIter it(writable); !it.done(); it.next())
        arr.at(*it) = v.at(*it);
}

} // namespace infs
