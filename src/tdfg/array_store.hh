/**
 * @file
 * Functional backing store for declared arrays (the inf_array API's data).
 * Arrays are dense fp32 with dimension 0 innermost in memory, matching the
 * lattice convention. Lattice coordinates equal array indices (arrays are
 * anchored at the origin, §3.2).
 */

#ifndef INFS_TDFG_ARRAY_STORE_HH
#define INFS_TDFG_ARRAY_STORE_HH

#include <span>
#include <string>
#include <vector>

#include "stream/pattern.hh"
#include "tdfg/hyperrect.hh"

namespace infs {

/** A named dense fp32 array registered with the runtime. */
struct StoredArray {
    std::string name;
    std::vector<Coord> sizes;  ///< Per-dimension size, dim 0 innermost.
    std::vector<float> data;

    std::int64_t
    numElements() const
    {
        std::int64_t n = 1;
        for (Coord s : sizes)
            n *= s;
        return n;
    }

    /** Linear index of a multi-dim coordinate (dim 0 innermost). */
    std::int64_t
    linearIndex(const std::vector<Coord> &idx) const
    {
        infs_assert(idx.size() == sizes.size(), "index rank mismatch");
        std::int64_t lin = 0;
        std::int64_t mult = 1;
        for (std::size_t d = 0; d < sizes.size(); ++d) {
            infs_assert(idx[d] >= 0 && idx[d] < sizes[d],
                        "index %lld out of [0,%lld) in dim %zu of %s",
                        static_cast<long long>(idx[d]),
                        static_cast<long long>(sizes[d]), d, name.c_str());
            lin += idx[d] * mult;
            mult *= sizes[d];
        }
        return lin;
    }

    float &at(const std::vector<Coord> &idx) { return data[linearIndex(idx)]; }
    float at(const std::vector<Coord> &idx) const
    {
        return data[linearIndex(idx)];
    }

    /** Whole-array rect anchored at the origin. */
    HyperRect rect() const { return HyperRect::array(sizes); }
};

/** Registry of arrays; ids are dense and stable. */
class ArrayStore
{
  public:
    /** Declare a zero-initialized array. */
    ArrayId
    declare(std::string name, std::vector<Coord> sizes)
    {
        StoredArray a;
        a.name = std::move(name);
        a.sizes = std::move(sizes);
        a.data.assign(static_cast<std::size_t>(a.numElements()), 0.0f);
        arrays_.push_back(std::move(a));
        return static_cast<ArrayId>(arrays_.size() - 1);
    }

    StoredArray &
    array(ArrayId id)
    {
        infs_assert(id >= 0 && static_cast<std::size_t>(id) < arrays_.size(),
                    "unknown array %d", id);
        return arrays_[static_cast<std::size_t>(id)];
    }

    const StoredArray &
    array(ArrayId id) const
    {
        infs_assert(id >= 0 && static_cast<std::size_t>(id) < arrays_.size(),
                    "unknown array %d", id);
        return arrays_[static_cast<std::size_t>(id)];
    }

    std::span<float> data(ArrayId id) { return array(id).data; }
    std::span<const float> data(ArrayId id) const { return array(id).data; }

    std::size_t size() const { return arrays_.size(); }

  private:
    std::vector<StoredArray> arrays_;
};

} // namespace infs

#endif // INFS_TDFG_ARRAY_STORE_HH
