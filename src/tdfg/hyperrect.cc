#include "tdfg/hyperrect.hh"

#include <algorithm>
#include <sstream>

namespace infs {

bool
HyperRect::empty() const
{
    if (lo_.empty())
        return true;
    for (unsigned d = 0; d < dims(); ++d)
        if (hi_[d] <= lo_[d])
            return true;
    return false;
}

std::int64_t
HyperRect::volume() const
{
    if (empty())
        return 0;
    std::int64_t v = 1;
    for (unsigned d = 0; d < dims(); ++d)
        v *= (hi_[d] - lo_[d]);
    return v;
}

bool
HyperRect::contains(const std::vector<Coord> &pt) const
{
    infs_assert(pt.size() == lo_.size(), "point rank mismatch");
    for (unsigned d = 0; d < dims(); ++d)
        if (pt[d] < lo_[d] || pt[d] >= hi_[d])
            return false;
    return true;
}

bool
HyperRect::containsRect(const HyperRect &inner) const
{
    infs_assert(inner.dims() == dims(), "rect rank mismatch");
    if (inner.empty())
        return true;
    for (unsigned d = 0; d < dims(); ++d)
        if (inner.lo_[d] < lo_[d] || inner.hi_[d] > hi_[d])
            return false;
    return true;
}

HyperRect
HyperRect::intersect(const HyperRect &o) const
{
    infs_assert(o.dims() == dims(), "rect rank mismatch: %u vs %u", dims(),
                o.dims());
    std::vector<Coord> lo(dims()), hi(dims());
    for (unsigned d = 0; d < dims(); ++d) {
        lo[d] = std::max(lo_[d], o.lo_[d]);
        hi[d] = std::min(hi_[d], o.hi_[d]);
        if (hi[d] < lo[d])
            hi[d] = lo[d];
    }
    return HyperRect(std::move(lo), std::move(hi));
}

HyperRect
HyperRect::boundingUnion(const HyperRect &o) const
{
    infs_assert(o.dims() == dims(), "rect rank mismatch");
    if (empty())
        return o;
    if (o.empty())
        return *this;
    std::vector<Coord> lo(dims()), hi(dims());
    for (unsigned d = 0; d < dims(); ++d) {
        lo[d] = std::min(lo_[d], o.lo_[d]);
        hi[d] = std::max(hi_[d], o.hi_[d]);
    }
    return HyperRect(std::move(lo), std::move(hi));
}

HyperRect
HyperRect::shifted(unsigned dim, Coord dist) const
{
    checkDim(dim);
    HyperRect r = *this;
    r.lo_[dim] += dist;
    r.hi_[dim] += dist;
    return r;
}

HyperRect
HyperRect::withDim(unsigned dim, Coord p, Coord q) const
{
    checkDim(dim);
    HyperRect r = *this;
    r.lo_[dim] = p;
    r.hi_[dim] = q;
    return r;
}

std::string
HyperRect::str() const
{
    std::ostringstream os;
    for (unsigned d = 0; d < dims(); ++d) {
        if (d)
            os << "x";
        os << "[" << lo_[d] << "," << hi_[d] << ")";
    }
    return os.str();
}

} // namespace infs
