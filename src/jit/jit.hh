/**
 * @file
 * The JIT runtime compiler (§4.2): lowers a scheduled tDFG into in-memory
 * commands for a chosen tiled layout — tensor decomposition (Alg. 1),
 * mv-to-shift compilation (Alg. 2), compute/broadcast/reduce lowering,
 * mapping to L3 banks, synchronization insertion, and memoization.
 */

#ifndef INFS_JIT_JIT_HH
#define INFS_JIT_JIT_HH

#include <array>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "jit/commands.hh"
#include "jit/decompose.hh"
#include "jit/tiling.hh"
#include "sim/config.hh"
#include "sim/expected.hh"
#include "sim/thread_pool.hh"
#include "tdfg/graph.hh"

namespace infs {

/**
 * Lower one mv of @p tensor by @p dist along @p dim into shift commands
 * (paper Alg. 2). Commands whose mask does not intersect the tensor are
 * filtered out. Does not fill the banks field.
 */
std::vector<InMemCommand> compileMove(const HyperRect &tensor, unsigned dim,
                                      Coord dist, Coord tile_k);

/** Per-node lowering result: where each node's value lives. */
struct NodeLocation {
    unsigned wl = 0;        ///< Start wordline of the value.
    bool resident = false;  ///< True once assigned.
};

/** JIT statistics across a compiler's lifetime. */
struct JitStats {
    std::uint64_t lowerings = 0;   ///< Cold lowering runs.
    std::uint64_t memoHits = 0;    ///< Programs served from the cache.
    Tick totalJitTicks = 0;        ///< Modeled lowering time total.
    CmdStats cmd;                  ///< Command-optimizer work, summed over
                                   ///< cold lowerings (SystemConfig::cmdOpt).
};

/**
 * The dynamic compiler. One instance per runtime; memoizes lowered
 * programs across repeated executions of the same region (§4.2
 * "Memoization", key for iterative algorithms like stencils).
 */
class JitCompiler
{
  public:
    explicit JitCompiler(const SystemConfig &cfg) : cfg_(cfg) {}

    /**
     * Lower @p g for layout @p layout, reporting user-triggerable
     * failures (out of wordline slots, unsupported mv distance, layout
     * constraint violations) as recoverable diagnostics so the runtime
     * can degrade the region to near-memory or core execution instead
     * of aborting. @p memo_key identifies the (region, parameters) pair
     * for memoization; pass "" to disable.
     * @returns shared program (possibly from cache) or an Error.
     */
    Expected<std::shared_ptr<const InMemProgram>>
    tryLower(const TdfgGraph &g, const TiledLayout &layout,
             const AddressMap &map, const std::string &memo_key = "");

    /**
     * Lower @p g, treating any failure as fatal. Legacy entry point for
     * callers (tests, benches) with no degradation path.
     */
    std::shared_ptr<const InMemProgram>
    lower(const TdfgGraph &g, const TiledLayout &layout,
          const AddressMap &map, const std::string &memo_key = "");

    /**
     * Fat-binary lowering (DESIGN.md §14): lower @p g once per candidate
     * layout, returning one program (or diagnostic) per layout in order.
     * Each candidate memoizes under `memo_key + "@" + <tile signature>`
     * so repeated regions hit the cache per schedule, and the executor
     * can pick any of them at dispatch time. Candidates fan out across
     * the attached pool; results are identical for any pool size.
     */
    std::vector<Expected<std::shared_ptr<const InMemProgram>>>
    lowerCandidates(const TdfgGraph &g,
                    const std::vector<TiledLayout> &layouts,
                    const AddressMap &map, const std::string &memo_key);

    /** Snapshot of the accumulated statistics (mutex-consistent). */
    JitStats stats() const
    {
        std::lock_guard<std::mutex> lock(statsMu_);
        return stats_;
    }
    void resetStats()
    {
        std::lock_guard<std::mutex> lock(statsMu_);
        stats_ = JitStats{};
    }

    /**
     * Attach a host thread pool (nullptr = inline). Per-subtensor command
     * generation inside one lowering fans out, and tryLower itself
     * becomes safe to call from concurrent pre-lowering tasks: the memo
     * cache is sharded by key hash with per-shard locks and the stats
     * sit behind their own mutex (DESIGN.md §10). Emitted programs are
     * identical for any pool size.
     */
    void setThreadPool(ThreadPool *pool) { pool_ = pool; }

    /**
     * Post-lowering verification callback (SystemConfig::verifyLevel).
     * Runs on every cold lowering before the program is memoized; a
     * returned Error rejects the program and tryLower reports it, so the
     * runtime degrades the region instead of executing hazardous
     * commands. Installed by InfinitySystem rather than constructed here
     * to keep the analysis layer out of the JIT's dependencies.
     */
    using VerifyHook = std::function<std::optional<Error>(
        const TdfgGraph &, const InMemProgram &, const TiledLayout &,
        const AddressMap &)>;
    void setVerifyHook(VerifyHook hook) { verify_ = std::move(hook); }

    /** Number of wordline slots available per array (e.g. 7 for fp32 on
     * 256-wordline arrays; the top slot is reserved for constants). */
    unsigned
    numSlots() const
    {
        const unsigned bits = dtypeBits(cfg_.tensor.elemType);
        const unsigned slots = bits ? cfg_.l3.wordlines / bits : 0;
        return slots > 1 ? slots - 1 : 0; // Guard the wordlines<bits case.
    }

  private:
    Expected<InMemProgram> doLower(const TdfgGraph &g,
                                   const TiledLayout &layout,
                                   const AddressMap &map);

    /** One lock-sharded slice of the memoization cache. */
    struct MemoShard {
        std::mutex mu;
        std::unordered_map<std::string,
                           std::shared_ptr<const InMemProgram>>
            map;
    };
    static constexpr std::size_t kMemoShards = 16;
    MemoShard &shardFor(const std::string &key)
    {
        return memo_[std::hash<std::string>{}(key) % kMemoShards];
    }

    SystemConfig cfg_;
    mutable std::mutex statsMu_;
    JitStats stats_;
    VerifyHook verify_;
    ThreadPool *pool_ = nullptr;
    std::array<MemoShard, kMemoShards> memo_;
};

/** Eq. 2 offload decision (§4.3). */
struct OffloadDecision {
    bool inMemory = false;
    double coreCycles = 0.0;   ///< LHS: core at peak throughput.
    double inMemCycles = 0.0;  ///< RHS: op latencies + JIT time.
};

/**
 * Decide in- vs near-memory from the tDFG's aggregate hints (the compiler
 * embeds these so the runtime never walks the graph, §4.3).
 */
OffloadDecision decideOffload(const TdfgSummary &summary,
                              const SystemConfig &cfg,
                              bool jit_precompiled = false);

} // namespace infs

#endif // INFS_JIT_JIT_HH
