/**
 * @file
 * Algorithm 1: decompose a tensor along tile boundaries so boundary tiles
 * are handled by separate commands.
 */

#ifndef INFS_JIT_DECOMPOSE_HH
#define INFS_JIT_DECOMPOSE_HH

#include <vector>

#include "sim/expected.hh"
#include "tdfg/hyperrect.hh"

namespace infs {

/**
 * Recursively decompose an N-D tensor along the tile boundary in each
 * dimension (paper Alg. 1). The result is a partition of @p tensor into
 * subtensors that are each either tile-aligned (the middle) or contained
 * in one boundary tile row (head/tail) per dimension.
 */
std::vector<HyperRect> decomposeTensor(const HyperRect &tensor,
                                       const std::vector<Coord> &tile);

/**
 * Recoverable form of decomposeTensor: malformed inputs (rank mismatch,
 * non-positive tile dimension) come back as a LayoutConstraint diagnostic
 * instead of aborting, so the runtime can degrade the region.
 */
Expected<std::vector<HyperRect>>
tryDecomposeTensor(const HyperRect &tensor, const std::vector<Coord> &tile);

} // namespace infs

#endif // INFS_JIT_DECOMPOSE_HH
