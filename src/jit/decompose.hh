/**
 * @file
 * Algorithm 1: decompose a tensor along tile boundaries so boundary tiles
 * are handled by separate commands.
 */

#ifndef INFS_JIT_DECOMPOSE_HH
#define INFS_JIT_DECOMPOSE_HH

#include <vector>

#include "tdfg/hyperrect.hh"

namespace infs {

/**
 * Recursively decompose an N-D tensor along the tile boundary in each
 * dimension (paper Alg. 1). The result is a partition of @p tensor into
 * subtensors that are each either tile-aligned (the middle) or contained
 * in one boundary tile row (head/tail) per dimension.
 */
std::vector<HyperRect> decomposeTensor(const HyperRect &tensor,
                                       const std::vector<Coord> &tile);

} // namespace infs

#endif // INFS_JIT_DECOMPOSE_HH
