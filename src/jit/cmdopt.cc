#include "jit/cmdopt.hh"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace infs {

namespace {

/**
 * Per-command effect record, resolved against the layout exactly as the
 * hazard analyzer resolves it (src/analysis/verify_cmds.cc): clamped
 * read/write regions, the asynchronous-inter-tile flag, and a sorted bank
 * list. Every rewrite condition below is stated over these records so the
 * pass licenses itself with the same dependence facts the analyzer checks.
 */
struct Eff {
    HyperRect src;     ///< Read region, clamped to the array bounds.
    HyperRect dst;     ///< Written region, clamped to the array bounds.
    bool async = false; ///< Write lands in other banks after a Sync only.
    std::vector<BankId> banks; ///< Sorted copy of the command's banks.
};

/** Wordline slots a command reads (mirror of the analyzer's readSlots). */
std::vector<unsigned>
readSlots(const InMemCommand &c)
{
    switch (c.kind) {
      case CmdKind::IntraShift:
      case CmdKind::InterShift:
      case CmdKind::BroadcastBl:
        return {c.wlA};
      case CmdKind::Compute:
        return c.useImm ? std::vector<unsigned>{c.wlA}
                        : std::vector<unsigned>{c.wlA, c.wlB};
      case CmdKind::BroadcastVal:
      case CmdKind::Sync:
        return {};
    }
    return {};
}

bool
sortedIntersects(const std::vector<BankId> &a, const std::vector<BankId> &b)
{
    auto ia = a.begin();
    auto ib = b.begin();
    while (ia != a.end() && ib != b.end()) {
        if (*ia < *ib)
            ++ia;
        else if (*ib < *ia)
            ++ib;
        else
            return true;
    }
    return false;
}

bool
isShift(CmdKind k)
{
    return k == CmdKind::IntraShift || k == CmdKind::InterShift;
}

Eff
effectOf(const InMemCommand &c, const TiledLayout &layout,
         const HyperRect &array_rect)
{
    Eff e;
    e.src = c.tensor.intersect(array_rect);
    switch (c.kind) {
      case CmdKind::IntraShift:
      case CmdKind::InterShift: {
        const Coord tile_k = layout.tileSize(c.dim);
        e.dst = c.tensor
                    .shifted(c.dim,
                             c.interTileDist * tile_k + c.intraTileDist)
                    .intersect(array_rect);
        e.async = c.kind == CmdKind::InterShift;
        break;
      }
      case CmdKind::BroadcastBl: {
        const Coord span = c.tensor.size(c.dim);
        e.dst = c.tensor
                    .withDim(c.dim, c.tensor.lo(c.dim) + c.bcDist,
                             c.tensor.lo(c.dim) + c.bcDist +
                                 c.bcCount * span)
                    .intersect(array_rect);
        e.async = c.bcCount * span > layout.tileSize(c.dim);
        break;
      }
      default:
        e.dst = e.src;
        break;
    }
    e.banks = c.banks;
    std::sort(e.banks.begin(), e.banks.end());
    return e;
}

/** All fields that define a command's byte-level effect except the window
 * rect and the bank list (the analyzer's sameEffectParams plus dtype). */
bool
sameEffect(const InMemCommand &a, const InMemCommand &b)
{
    return a.kind == b.kind && a.dim == b.dim && a.maskLo == b.maskLo &&
           a.maskHi == b.maskHi && a.interTileDist == b.interTileDist &&
           a.intraTileDist == b.intraTileDist && a.bcCount == b.bcCount &&
           a.bcDist == b.bcDist && a.op == b.op && a.dtype == b.dtype &&
           a.useImm == b.useImm && a.imm == b.imm && a.wlA == b.wlA &&
           a.wlB == b.wlB && a.wlDst == b.wlDst;
}

/**
 * The per-bank busy-time charge TensorController::execute levies for one
 * InterShift, reproduced bit-for-bit (maskedElements walk, H-tree
 * serialization truncation, NoC-injection serialization when the tile
 * delta crosses a bank). The coalescing guard compares these so a merged
 * command never charges any bank more than the originals did.
 */
Tick
interShiftLatency(const InMemCommand &c, const TiledLayout &layout,
                  const AddressMap &map, const SystemConfig &cfg)
{
    const unsigned bits = dtypeBits(cfg.tensor.elemType);
    const unsigned elem_bytes = bits / 8;
    const HyperRect &t = c.tensor;
    std::uint64_t elems = 0;
    if (!t.empty()) {
        const Coord tile_k = layout.tileSize(c.dim);
        std::uint64_t covered = 0;
        for (Coord x = t.lo(c.dim); x < t.hi(c.dim); ++x) {
            Coord pos = ((x % tile_k) + tile_k) % tile_k;
            if (pos >= c.maskLo && pos < c.maskHi)
                ++covered;
        }
        elems = covered *
                static_cast<std::uint64_t>(t.volume() / t.size(c.dim));
    }
    const double bytes_once = static_cast<double>(elems) * elem_bytes;
    const double banks_involved =
        static_cast<double>(std::max<std::size_t>(c.banks.size(), 1));
    Tick lat = dtypeBits(c.dtype) + 8 +
               static_cast<Tick>(
                   bytes_once / banks_involved /
                   static_cast<double>(cfg.l3.htreeBandwidth));
    std::int64_t stride = 1;
    for (unsigned d = 0; d < c.dim; ++d)
        stride *= layout.grid()[d];
    std::int64_t tile_delta = c.interTileDist * stride;
    std::int64_t abs_delta = tile_delta < 0 ? -tile_delta : tile_delta;
    const double crossing = std::min(
        1.0, static_cast<double>(abs_delta) /
                 static_cast<double>(map.arraysPerBank()));
    if (crossing > 0.0 && abs_delta > 0) {
        lat += static_cast<Tick>(
            bytes_once * crossing / banks_involved /
            static_cast<double>(cfg.noc.linkBytes));
    }
    return lat;
}

} // namespace

CmdStats
optimizeCommands(InMemProgram &prog, const TiledLayout &layout,
                 const AddressMap &map, const SystemConfig &cfg,
                 const CmdOptOptions &opts)
{
    CmdStats st;
    std::vector<InMemCommand> &cmds = prog.commands;
    const unsigned dims = layout.dims();
    const HyperRect array_rect = HyperRect::array(layout.shape());

    // Resolve effects up front; a command the analyzer would reject
    // statically (rank mismatch, empty region, dim out of rank, no banks)
    // makes the whole stream opaque — the JIT never emits such commands,
    // and rewriting around one cannot be licensed by dependence facts.
    std::vector<Eff> eff(cmds.size());
    for (std::size_t i = 0; i < cmds.size(); ++i) {
        const InMemCommand &c = cmds[i];
        if (c.kind == CmdKind::Sync)
            continue;
        if (c.tensor.dims() != dims ||
            c.tensor.intersect(array_rect).empty() || c.banks.empty()) {
            prog.opt = st;
            return st;
        }
        const bool uses_dim =
            isShift(c.kind) || c.kind == CmdKind::BroadcastBl ||
            (c.kind == CmdKind::Compute && c.maskHi > c.maskLo);
        if (uses_dim && c.dim >= dims) {
            prog.opt = st;
            return st;
        }
        eff[i] = effectOf(c, layout, array_rect);
    }

    std::vector<char> alive(cmds.size(), 1);

    // True when command x writes any cell command j reads or writes
    // (slot-matched, cell-granular): x between a rewrite's source and
    // target positions invalidates the rewrite.
    auto writesConflict = [&](std::size_t x, std::size_t j) {
        if (cmds[x].kind == CmdKind::Sync)
            return false;
        for (unsigned s : readSlots(cmds[j])) {
            if (cmds[x].wlDst == s &&
                !eff[x].dst.intersect(eff[j].src).empty())
                return true;
        }
        return cmds[x].wlDst == cmds[j].wlDst &&
               !eff[x].dst.intersect(eff[j].dst).empty();
    };
    // True when command x reads any cell command j writes (hoisting j
    // above x would let x observe j's effect too early).
    auto readsConflict = [&](std::size_t x, std::size_t j) {
        for (unsigned s : readSlots(cmds[x])) {
            if (s == cmds[j].wlDst &&
                !eff[x].src.intersect(eff[j].dst).empty())
                return true;
        }
        return false;
    };

    // ---- Pass 1: redundant-command elimination. Command j is removable
    // when an identical earlier command i (all effect parameters, window
    // rect, bank list) exists with no intervening write to any cell j
    // reads or writes: re-executing j then writes exactly the bytes i
    // already wrote. In-place commands (dst slot among the read slots,
    // e.g. compute fold-chain steps) are never byte-idempotent and are
    // excluded. The backward scan stops at the first clobbering write, so
    // only a still-fresh twin ever matches.
    if (opts.dedup) {
        for (std::size_t j = 0; j < cmds.size(); ++j) {
            if (!alive[j] || cmds[j].kind == CmdKind::Sync)
                continue;
            bool in_place = false;
            for (unsigned s : readSlots(cmds[j]))
                in_place |= s == cmds[j].wlDst;
            if (in_place)
                continue;
            for (std::size_t i = j; i-- > 0;) {
                if (!alive[i] || cmds[i].kind == CmdKind::Sync)
                    continue;
                if (sameEffect(cmds[i], cmds[j]) &&
                    cmds[i].tensor == cmds[j].tensor &&
                    eff[i].banks == eff[j].banks) {
                    alive[j] = 0;
                    if (cmds[j].kind == CmdKind::BroadcastBl ||
                        cmds[j].kind == CmdKind::BroadcastVal)
                        ++st.dedupedBroadcasts;
                    else
                        ++st.dedupedCommands;
                    break;
                }
                if (writesConflict(i, j))
                    break;
            }
        }
    }

    // ---- Pass 2: movement coalescing. Same-group shift commands
    // restating one logical move over different windows (the reduce
    // lowering emits its rounds once per decomposed subtensor) merge into
    // one wider command when the window rects exactly partition their
    // bounding union (identical cell set, so the moved bytes are
    // identical), nothing in between touches the cells being hoisted, no
    // barrier is crossed, and — for inter-tile shifts, whose H-tree
    // serialization grows with the window — the merged per-bank latency
    // does not exceed either original's.
    if (opts.coalesce) {
        for (std::size_t j = 0; j < cmds.size(); ++j) {
            if (!alive[j] || !isShift(cmds[j].kind))
                continue;
            for (std::size_t i = j; i-- > 0;) {
                if (cmds[i].kind == CmdKind::Sync)
                    break; // Never hoist movement across a barrier.
                if (!alive[i])
                    continue;
                if (cmds[i].group == cmds[j].group &&
                    sameEffect(cmds[i], cmds[j])) {
                    const HyperRect &a = cmds[i].tensor;
                    const HyperRect &b = cmds[j].tensor;
                    HyperRect u = a.boundingUnion(b);
                    if (!a.intersect(b).empty() ||
                        u.volume() != a.volume() + b.volume())
                        break; // Not an exact partition; no wider move.
                    InMemCommand merged = cmds[i];
                    merged.tensor = u;
                    merged.banks.clear();
                    std::set_union(eff[i].banks.begin(), eff[i].banks.end(),
                                   eff[j].banks.begin(), eff[j].banks.end(),
                                   std::back_inserter(merged.banks));
                    if (merged.kind == CmdKind::InterShift) {
                        const Tick m =
                            interShiftLatency(merged, layout, map, cfg);
                        if (m > interShiftLatency(cmds[i], layout, map,
                                                  cfg) ||
                            m > interShiftLatency(cmds[j], layout, map,
                                                  cfg))
                            break; // Merging would slow a bank down.
                    }
                    const Coord tile_k = layout.tileSize(merged.dim);
                    if (merged.maskLo > 0 || merged.maskHi < tile_k)
                        ++st.hoistedMasks;
                    cmds[i] = std::move(merged);
                    eff[i] = effectOf(cmds[i], layout, array_rect);
                    alive[j] = 0;
                    ++st.fusedMoves;
                    break;
                }
                if (writesConflict(i, j) || readsConflict(i, j))
                    break;
            }
        }
    }

    // ---- Pass 3: Sync elision (analyzer rule (c), inverted). Walk the
    // stream tracking the asynchronous inter-tile writers still pending
    // since the last KEPT barrier. A barrier is elided when no pending
    // writer has a dependent consumer — a cross-bank read of its
    // destination slot over overlapping cells, or a same-slot overlapping
    // overwrite — before the next barrier; the pending set then carries
    // forward, so the extended window is re-checked at that next barrier.
    // A kept barrier discharges all pending movement. The trailing commit
    // barrier is kept whenever movement is still pending at program end
    // (§5.3: context switches wait on it).
    if (opts.syncElision) {
        std::size_t last_cmd = 0;
        bool any_cmd = false;
        for (std::size_t i = 0; i < cmds.size(); ++i) {
            if (alive[i] && cmds[i].kind != CmdKind::Sync) {
                last_cmd = i;
                any_cmd = true;
            }
        }
        auto depends = [&](std::size_t w, std::size_t r) {
            if (cmds[r].group == cmds[w].group)
                return false; // Same-group restatement exemption.
            for (unsigned s : readSlots(cmds[r])) {
                if (s != cmds[w].wlDst)
                    continue;
                const HyperRect o = eff[w].dst.intersect(eff[r].src);
                if (o.empty())
                    continue;
                std::vector<BankId> dep = layout.banksFor(o, map);
                std::sort(dep.begin(), dep.end());
                if (sortedIntersects(dep, eff[r].banks))
                    return true;
            }
            if (cmds[r].wlDst == cmds[w].wlDst) {
                const HyperRect o = eff[w].dst.intersect(eff[r].dst);
                if (!o.empty()) {
                    std::vector<BankId> dep = layout.banksFor(o, map);
                    std::sort(dep.begin(), dep.end());
                    if (sortedIntersects(dep, eff[r].banks))
                        return true;
                }
            }
            return false;
        };
        std::vector<std::size_t> pending;
        for (std::size_t i = 0; i < cmds.size(); ++i) {
            if (!alive[i])
                continue;
            if (cmds[i].kind != CmdKind::Sync) {
                if (eff[i].async)
                    pending.push_back(i);
                continue;
            }
            if (!any_cmd || i > last_cmd) {
                // Trailing barrier: the §5.3 commit point. Keep it while
                // movement is pending; once one is kept, the rest elide.
                if (pending.empty()) {
                    alive[i] = 0;
                    ++st.elidedSyncs;
                } else {
                    pending.clear();
                }
                continue;
            }
            bool needed = false;
            for (std::size_t r = i + 1;
                 r < cmds.size() && !needed; ++r) {
                if (!alive[r])
                    continue;
                if (cmds[r].kind == CmdKind::Sync)
                    break; // Window ends at the next barrier.
                for (std::size_t w : pending) {
                    if (depends(w, r)) {
                        needed = true;
                        break;
                    }
                }
            }
            if (needed) {
                pending.clear();
            } else {
                alive[i] = 0;
                ++st.elidedSyncs;
            }
        }
    }

    std::size_t out = 0;
    for (std::size_t i = 0; i < cmds.size(); ++i) {
        if (alive[i]) {
            if (out != i)
                cmds[out] = std::move(cmds[i]);
            ++out;
        }
    }
    cmds.resize(out);
    prog.recount();
    prog.opt = st;
    return st;
}

} // namespace infs
