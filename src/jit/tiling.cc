#include "jit/tiling.hh"

#include <algorithm>
#include <cmath>

namespace infs {

LayoutHints
LayoutHints::fromGraph(const TdfgGraph &g)
{
    LayoutHints h;
    for (const TdfgNode &n : g.nodes()) {
        switch (n.kind) {
          case TdfgKind::Move:
            if (n.dist != 0)
                h.shiftDims.insert(n.dim);
            break;
          case TdfgKind::Broadcast:
            h.broadcastDims.insert(n.dim);
            break;
          case TdfgKind::Reduce:
            h.reduceDim = n.dim;
            break;
          default:
            break;
        }
    }
    return h;
}

TiledLayout::TiledLayout(std::vector<Coord> shape, std::vector<Coord> tile)
    : shape_(std::move(shape)), tile_(std::move(tile))
{
    infs_assert(shape_.size() == tile_.size(),
                "shape rank %zu != tile rank %zu", shape_.size(),
                tile_.size());
    grid_.resize(shape_.size());
    for (std::size_t d = 0; d < shape_.size(); ++d) {
        infs_assert(tile_[d] > 0, "tile dim %zu must be positive", d);
        grid_[d] = (shape_[d] + tile_[d] - 1) / tile_[d];
    }
}

Expected<TiledLayout>
TiledLayout::make(std::vector<Coord> shape, std::vector<Coord> tile)
{
    using Result = Expected<TiledLayout>;
    if (shape.size() != tile.size()) {
        return Result::failure(
            ErrCode::LayoutConstraint,
            "shape rank " + std::to_string(shape.size()) +
                " != tile rank " + std::to_string(tile.size()));
    }
    for (std::size_t d = 0; d < tile.size(); ++d) {
        if (tile[d] <= 0) {
            return Result::failure(ErrCode::LayoutConstraint,
                                   "tile dim " + std::to_string(d) +
                                       " must be positive");
        }
    }
    return TiledLayout(std::move(shape), std::move(tile));
}

std::int64_t
TiledLayout::numTiles() const
{
    std::int64_t n = 1;
    for (Coord g : grid_)
        n *= g;
    return n;
}

std::int64_t
TiledLayout::tileVolume() const
{
    std::int64_t v = 1;
    for (Coord t : tile_)
        v *= t;
    return v;
}

std::int64_t
TiledLayout::tileOf(const std::vector<Coord> &pt) const
{
    infs_assert(pt.size() == shape_.size(), "point rank mismatch");
    std::int64_t idx = 0;
    std::int64_t mult = 1;
    for (std::size_t d = 0; d < shape_.size(); ++d) {
        Coord td = pt[d] / tile_[d];
        infs_assert(pt[d] >= 0 && td < grid_[d], "point outside array");
        idx += td * mult;
        mult *= grid_[d];
    }
    return idx;
}

std::int64_t
TiledLayout::positionInTile(const std::vector<Coord> &pt) const
{
    std::int64_t idx = 0;
    std::int64_t mult = 1;
    for (std::size_t d = 0; d < shape_.size(); ++d) {
        idx += (pt[d] % tile_[d]) * mult;
        mult *= tile_[d];
    }
    return idx;
}

std::vector<std::int64_t>
TiledLayout::tilesIntersecting(const HyperRect &r) const
{
    std::vector<std::int64_t> out;
    if (r.empty())
        return out;
    // Tile-grid sub-rectangle covered by r (clamped to the array).
    std::vector<Coord> lo(dims()), hi(dims());
    for (unsigned d = 0; d < dims(); ++d) {
        Coord rlo = std::max<Coord>(r.lo(d), 0);
        Coord rhi = std::min<Coord>(r.hi(d), shape_[d]);
        if (rhi <= rlo)
            return out;
        lo[d] = rlo / tile_[d];
        hi[d] = (rhi - 1) / tile_[d] + 1;
    }
    // Enumerate the tile sub-grid.
    std::vector<Coord> t = lo;
    while (true) {
        std::int64_t idx = 0, mult = 1;
        for (unsigned d = 0; d < dims(); ++d) {
            idx += t[d] * mult;
            mult *= grid_[d];
        }
        out.push_back(idx);
        unsigned d = 0;
        for (; d < dims(); ++d) {
            if (++t[d] < hi[d])
                break;
            t[d] = lo[d];
        }
        if (d == dims())
            break;
    }
    return out;
}

HyperRect
TiledLayout::tileRect(std::int64_t t) const
{
    infs_assert(t >= 0 && t < numTiles(), "tile %lld out of range",
                static_cast<long long>(t));
    std::vector<Coord> lo(dims()), hi(dims());
    for (unsigned d = 0; d < dims(); ++d) {
        Coord td = t % grid_[d];
        t /= grid_[d];
        lo[d] = td * tile_[d];
        hi[d] = std::min<Coord>(lo[d] + tile_[d], shape_[d]);
    }
    return HyperRect(std::move(lo), std::move(hi));
}

std::int64_t
TiledLayout::countTilesIntersecting(const HyperRect &r) const
{
    if (r.empty())
        return 0;
    std::int64_t count = 1;
    for (unsigned d = 0; d < dims(); ++d) {
        Coord rlo = std::max<Coord>(r.lo(d), 0);
        Coord rhi = std::min<Coord>(r.hi(d), shape_[d]);
        if (rhi <= rlo)
            return 0;
        count *= (rhi - 1) / tile_[d] - rlo / tile_[d] + 1;
    }
    return count;
}

std::vector<BankId>
TiledLayout::banksFor(const HyperRect &r, const AddressMap &map) const
{
    std::vector<BankId> banks;
    const unsigned num_banks = map.l3().numBanks;
    std::vector<bool> seen(num_banks, false);
    // Lazy enumeration with early exit: once every bank participates
    // there is nothing left to learn (large tensors hit all banks within
    // the first few tiles of the round-robin mapping).
    if (r.empty())
        return banks;
    std::vector<Coord> lo(dims()), hi(dims());
    for (unsigned d = 0; d < dims(); ++d) {
        Coord rlo = std::max<Coord>(r.lo(d), 0);
        Coord rhi = std::min<Coord>(r.hi(d), shape_[d]);
        if (rhi <= rlo)
            return banks;
        lo[d] = rlo / tile_[d];
        hi[d] = (rhi - 1) / tile_[d] + 1;
    }
    std::vector<Coord> t = lo;
    while (true) {
        std::int64_t idx = 0, mult = 1;
        for (unsigned d = 0; d < dims(); ++d) {
            idx += t[d] * mult;
            mult *= grid_[d];
        }
        BankId b = map.tileToArray(static_cast<std::uint64_t>(idx)).bank;
        if (!seen[b]) {
            seen[b] = true;
            banks.push_back(b);
            if (banks.size() == num_banks)
                break;
        }
        unsigned d = 0;
        for (; d < dims(); ++d) {
            if (++t[d] < hi[d])
                break;
            t[d] = lo[d];
        }
        if (d == dims())
            break;
    }
    std::sort(banks.begin(), banks.end());
    return banks;
}

bool
TiledLayout::fits(const AddressMap &map) const
{
    return static_cast<std::uint64_t>(numTiles()) <= map.totalArrays();
}

namespace {

/** Recursively enumerate factorizations of @p remaining across dims. */
void
enumerateTiles(std::int64_t remaining, unsigned dim, unsigned dims,
               std::vector<Coord> &cur,
               std::vector<std::vector<Coord>> &out)
{
    if (dim == dims - 1) {
        cur[dim] = remaining;
        out.push_back(cur);
        return;
    }
    for (Coord t = 1; t <= remaining; t *= 2) {
        if (remaining % t != 0)
            continue;
        cur[dim] = t;
        enumerateTiles(remaining / t, dim + 1, dims, cur, out);
    }
}

} // namespace

std::vector<std::vector<Coord>>
TilingPolicy::validTiles(const std::vector<Coord> &shape,
                         unsigned elem_bytes) const
{
    std::vector<std::vector<Coord>> out;
    const unsigned dims = static_cast<unsigned>(shape.size());
    if (dims == 0 || dims > 3)
        return out;
    const std::int64_t B = l3_.bitlines;
    const std::int64_t L =
        static_cast<std::int64_t>(lineBytes / elem_bytes);
    const std::int64_t W =
        static_cast<std::int64_t>(l3_.computeWays) * l3_.arraysPerWay;

    // Innermost dimension must align to the cache line so transposed lines
    // are not split across banks (§4.1).
    if (shape[0] % L != 0)
        return out;

    std::vector<Coord> cur(dims, 1);
    std::vector<std::vector<Coord>> all;
    enumerateTiles(B, 0, dims, cur, all);
    for (auto &tile : all) {
        // Constraint 1 holds by construction (prod == B).
        // Constraint 2: T0 * W mod L == 0.
        if ((tile[0] * W) % L != 0)
            continue;
        out.push_back(tile);
    }
    return out;
}

double
TilingPolicy::score(const std::vector<Coord> &tile,
                    const std::vector<Coord> &shape,
                    const LayoutHints &hints) const
{
    // Higher is better. Priority weights: reduction 1.5e3 per doubling,
    // shift imbalance 1e3 per log2 step, broadcast 1 ("we prioritize by
    // the order of reduction, shift, and broadcast", §4.1). Reduction
    // outranks broadcast outright; against shifts the balanced tile
    // wins once the imbalance cost of growing the reduced dimension
    // exceeds the extra in-tile reduction rounds.
    double s = 0.0;
    const unsigned dims = static_cast<unsigned>(tile.size());

    if (hints.reduceDim && *hints.reduceDim < dims) {
        unsigned r = *hints.reduceDim;
        // Larger tile on the reduced dimension allows more rounds of
        // in-memory reduction; cap at the array extent (a tile larger
        // than the data adds nothing).
        double useful =
            static_cast<double>(std::min<Coord>(tile[r], shape[r]));
        s += 1.5e3 * std::log2(useful);
    }
    if (!hints.shiftDims.empty()) {
        // Close-to-square across the shifted dims: penalize imbalance.
        double imbalance = 0.0;
        double target = std::log2(static_cast<double>(l3_.bitlines)) /
                        static_cast<double>(dims);
        for (unsigned d = 0; d < dims; ++d)
            imbalance += std::abs(std::log2(
                             static_cast<double>(tile[d])) - target);
        s += 1e3 * (-imbalance);
    }
    for (unsigned d : hints.broadcastDims) {
        (void)d;
        // Smaller innermost tile spreads a broadcast row over more banks.
        s += -std::log2(static_cast<double>(tile[0]));
        break; // One broadcast contribution is enough.
    }
    return s;
}

TileDecision
TilingPolicy::choose(const std::vector<Coord> &shape, unsigned elem_bytes,
                     const LayoutHints &hints) const
{
    TileDecision best;
    for (const auto &tile : validTiles(shape, elem_bytes)) {
        double sc = score(tile, shape, hints);
        if (!best.valid || sc > best.score) {
            best.valid = true;
            best.tile = tile;
            best.score = sc;
        }
    }
    return best;
}

std::vector<TileDecision>
TilingPolicy::candidates(const std::vector<Coord> &shape,
                         unsigned elem_bytes, const LayoutHints &hints,
                         unsigned max_n) const
{
    std::vector<TileDecision> out;
    if (max_n == 0)
        return out;
    std::vector<TileDecision> all;
    for (const auto &tile : validTiles(shape, elem_bytes)) {
        TileDecision d;
        d.valid = true;
        d.tile = tile;
        d.score = score(tile, shape, hints);
        all.push_back(std::move(d));
    }
    if (all.empty())
        return out;
    // Stable sort keeps enumeration order among equal scores, so
    // candidates[0] is exactly the choose() winner (choose keeps the
    // earliest tile on ties via its strict `>` comparison).
    std::stable_sort(all.begin(), all.end(),
                     [](const TileDecision &a, const TileDecision &b) {
                         return a.score > b.score;
                     });
    const unsigned dims = static_cast<unsigned>(shape.size());
    const bool pin_reduce = hints.reduceDim && *hints.reduceDim < dims;
    const Coord reduce_tile =
        pin_reduce ? all.front().tile[*hints.reduceDim] : 0;
    for (TileDecision &d : all) {
        if (pin_reduce && d.tile[*hints.reduceDim] != reduce_tile)
            continue;
        out.push_back(std::move(d));
        if (out.size() == max_n)
            break;
    }
    return out;
}

} // namespace infs
