#include "jit/jit.hh"

#include <algorithm>
#include <optional>
#include <sstream>

#include "jit/cmdopt.hh"

namespace infs {

const char *
cmdKindName(CmdKind k)
{
    switch (k) {
      case CmdKind::IntraShift: return "intra_shift";
      case CmdKind::InterShift: return "inter_shift";
      case CmdKind::Compute: return "compute";
      case CmdKind::BroadcastBl: return "bc";
      case CmdKind::BroadcastVal: return "bc_imm";
      case CmdKind::Sync: return "sync";
    }
    return "?";
}

std::string
InMemCommand::str() const
{
    std::ostringstream os;
    os << cmdKindName(kind);
    switch (kind) {
      case CmdKind::IntraShift:
      case CmdKind::InterShift:
        os << " " << tensor.str() << " dim=" << dim << " mask=[" << maskLo
           << "," << maskHi << ") inter=" << interTileDist
           << " intra=" << intraTileDist;
        break;
      case CmdKind::Compute:
        os << " " << bitOpName(op) << " " << tensor.str() << " wl=" << wlA
           << (useImm ? ",imm" : ",") << (useImm ? "" : std::to_string(wlB))
           << "->" << wlDst;
        break;
      case CmdKind::BroadcastBl:
        os << " " << tensor.str() << " dim=" << dim << " count=" << bcCount;
        break;
      case CmdKind::BroadcastVal:
        os << " imm=" << imm << " ->" << wlDst;
        break;
      case CmdKind::Sync:
        break;
    }
    return os.str();
}

std::vector<InMemCommand>
compileMove(const HyperRect &tensor, unsigned dim, Coord dist, Coord tile_k)
{
    // Paper Alg. 2.
    std::vector<InMemCommand> out;
    if (dist == 0 || tensor.empty())
        return out;
    const Coord d_abs = dist > 0 ? dist : -dist;
    const Coord d_inter = d_abs / tile_k;
    const Coord d_intra = d_abs % tile_k;
    const Coord d_intra_c = tile_k - d_intra; // Complement.

    // Positions within the tile covered by the tensor along dim k: the
    // mask intersects these; empty intersections are filtered (§4.2).
    auto maskNonEmpty = [&](Coord mask_lo, Coord mask_hi) {
        Coord span = tensor.size(dim);
        if (span >= tile_k)
            return mask_hi > mask_lo;
        // Wrapped interval of covered positions [plo, plo+span).
        Coord plo = ((tensor.lo(dim) % tile_k) + tile_k) % tile_k;
        for (Coord m = mask_lo; m < mask_hi; ++m) {
            Coord rel = (m - plo + 2 * tile_k) % tile_k;
            if (rel < span)
                return true;
        }
        return false;
    };

    auto shift = [&](Coord mask_lo, Coord mask_hi, Coord inter,
                     Coord intra) {
        if (!maskNonEmpty(mask_lo, mask_hi))
            return;
        InMemCommand c;
        c.kind = inter == 0 ? CmdKind::IntraShift : CmdKind::InterShift;
        c.tensor = tensor;
        c.dim = dim;
        c.maskLo = mask_lo;
        c.maskHi = mask_hi;
        c.interTileDist = inter;
        c.intraTileDist = intra;
        out.push_back(std::move(c));
    };

    if (dist > 0) { // Shift forward (Alg. 2 l. 5-8).
        shift(0, d_intra_c, d_inter, d_intra);
        if (d_intra > 0)
            shift(d_intra_c, tile_k, d_inter + 1, -d_intra_c);
    } else { // Shift backward (Alg. 2 l. 9-12).
        if (d_intra > 0)
            shift(0, d_intra, -(d_inter + 1), d_intra_c);
        shift(d_intra, tile_k, -d_inter, -d_intra);
    }
    return out;
}

namespace {

/** Ceil log2 for reduction round counts. */
unsigned
ceilLog2(Coord v)
{
    unsigned r = 0;
    Coord p = 1;
    while (p < v) {
        p <<= 1;
        ++r;
    }
    return r;
}

} // namespace

Expected<InMemProgram>
JitCompiler::doLower(const TdfgGraph &g, const TiledLayout &layout,
                     const AddressMap &map)
{
    InMemProgram prog;
    const DType elem = cfg_.tensor.elemType;
    const unsigned bits = dtypeBits(elem);
    const unsigned num_slots = numSlots();
    // Recoverable failure raised by the allocation lambdas; checked after
    // every allocation site so the first diagnostic wins.
    std::optional<Error> err;

    // ---- Wordline allocation (the static compiler's register allocation
    // of §3.4; slot = `bits` consecutive wordlines). Arrays referenced by
    // tensor/output nodes get stable home slots; temporaries reuse slots
    // freed at their last use. No spilling (§6 limitation 3).
    std::unordered_map<ArrayId, unsigned> array_slot;
    auto arrayHome = [&](ArrayId a) -> unsigned {
        auto it = array_slot.find(a);
        if (it != array_slot.end())
            return it->second;
        unsigned slot = static_cast<unsigned>(array_slot.size());
        if (slot >= num_slots) {
            if (!err) {
                err = Error{ErrCode::OutOfSlots,
                            "tDFG '" + g.name() +
                                "': out of wordline slots for arrays (" +
                                std::to_string(num_slots) +
                                " available) — register spilling "
                                "unsupported (§6)"};
            }
            return 0;
        }
        array_slot.emplace(a, slot);
        return slot;
    };
    // Pre-assign homes for all arrays touched (inputs and outputs).
    for (const TdfgNode &n : g.nodes())
        if (n.kind == TdfgKind::Tensor)
            arrayHome(n.array);
    for (const auto &o : g.outputs())
        arrayHome(o.array);
    if (err)
        return *err;

    // Last use of each node.
    std::vector<NodeId> last_use(g.size());
    for (NodeId id = 0; id < g.size(); ++id) {
        last_use[id] = id;
        for (NodeId op : g.node(id).operands)
            last_use[op] = id;
    }
    for (const auto &o : g.outputs())
        last_use[o.node] = static_cast<NodeId>(g.size());

    std::vector<bool> slot_busy(num_slots, false);
    for (const auto &[a, s] : array_slot)
        slot_busy[s] = true;
    std::vector<NodeLocation> loc(g.size());
    std::vector<int> node_slot(g.size(), -1);

    auto allocSlot = [&](NodeId id) -> unsigned {
        for (unsigned s = 0; s < num_slots; ++s) {
            if (!slot_busy[s]) {
                slot_busy[s] = true;
                node_slot[id] = static_cast<int>(s);
                return s;
            }
        }
        if (!err) {
            err = Error{ErrCode::OutOfSlots,
                        "tDFG '" + g.name() +
                            "': out of wordline registers (" +
                            std::to_string(num_slots) +
                            " slots) — register spilling unsupported (§6)"};
        }
        return 0;
    };
    auto freeDeadSlots = [&](NodeId now) {
        // Free slots whose owner was last consumed by the node just
        // processed (including self-owned dead values).
        for (NodeId id = 0; id <= now; ++id) {
            if (node_slot[id] >= 0 && last_use[id] == now) {
                slot_busy[static_cast<unsigned>(node_slot[id])] = false;
                node_slot[id] = -1;
            }
        }
    };

    // ---- Lowering proper.
    bool pending_inter_tile = false;
    auto syncIfPending = [&]() {
        if (!pending_inter_tile)
            return;
        InMemCommand s;
        s.kind = CmdKind::Sync;
        prog.commands.push_back(std::move(s));
        pending_inter_tile = false;
    };

    auto banksOf = [&](const HyperRect &r) {
        return layout.banksFor(r, map);
    };

    // Per-subtensor command generation. Alg. 1's decomposition makes the
    // subtensors independent once the node's wordlines are allocated, so
    // each one builds its commands into a private vector — bank-parallel
    // when a pool is attached (DESIGN.md §10) — and the vectors splice in
    // decomposition order: the emitted program is identical for any pool
    // size. @p fn sets its bool out-param to request a pending inter-tile
    // sync.
    auto lowerSubs = [&](const std::vector<HyperRect> &subs,
                         const std::function<void(
                             const HyperRect &, std::vector<InMemCommand> &,
                             bool &)> &fn) {
        if (pool_ != nullptr && !pool_->inlineOnly() && subs.size() > 1) {
            std::vector<std::vector<InMemCommand>> outs(subs.size());
            std::vector<char> inter(subs.size(), 0);
            pool_->parallelFor(
                static_cast<std::int64_t>(subs.size()),
                [&](std::int64_t i) {
                    bool f = false;
                    fn(subs[static_cast<std::size_t>(i)],
                       outs[static_cast<std::size_t>(i)], f);
                    inter[static_cast<std::size_t>(i)] = f ? 1 : 0;
                });
            for (std::size_t i = 0; i < subs.size(); ++i) {
                for (InMemCommand &c : outs[i])
                    prog.commands.push_back(std::move(c));
                if (inter[i] != 0)
                    pending_inter_tile = true;
            }
        } else {
            for (const HyperRect &sub : subs) {
                std::vector<InMemCommand> out;
                bool f = false;
                fn(sub, out, f);
                for (InMemCommand &c : out)
                    prog.commands.push_back(std::move(c));
                if (f)
                    pending_inter_tile = true;
            }
        }
    };

    for (NodeId id = 0; id < g.size(); ++id) {
        const TdfgNode &n = g.node(id);
        switch (n.kind) {
          case TdfgKind::Tensor: {
            loc[id] = {arrayHome(n.array) * bits, true};
            break;
          }
          case TdfgKind::ConstVal: {
            // Constants are broadcast by the TC right before the consuming
            // compute (§5.2); no standalone command.
            break;
          }
          case TdfgKind::Shrink: {
            loc[id] = loc[n.operands[0]]; // Lowered to a nop (appendix).
            break;
          }
          case TdfgKind::Move: {
            syncIfPending();
            const NodeLocation &src = loc[n.operands[0]];
            infs_assert(src.resident, "move of non-resident node");
            if (n.dim >= layout.dims()) {
                return Error{ErrCode::UnsupportedMove,
                             "tDFG '" + g.name() + "': mv along dim " +
                                 std::to_string(n.dim) + " of a rank-" +
                                 std::to_string(layout.dims()) + " layout"};
            }
            const Coord mv_abs = n.dist >= 0 ? n.dist : -n.dist;
            if (mv_abs >= layout.shape()[n.dim]) {
                return Error{ErrCode::UnsupportedMove,
                             "tDFG '" + g.name() + "': mv distance " +
                                 std::to_string(n.dist) +
                                 " exceeds array extent " +
                                 std::to_string(layout.shape()[n.dim]) +
                                 " along dim " + std::to_string(n.dim)};
            }
            unsigned dst_wl = allocSlot(id) * bits;
            if (err)
                return *err;
            // Alg. 1 then Alg. 2 per decomposed subtensor.
            const HyperRect &src_dom = g.domainOf(n.operands[0]);
            auto subs = tryDecomposeTensor(src_dom, layout.tile());
            if (!subs)
                return subs.error();
            lowerSubs(*subs, [&](const HyperRect &sub,
                                 std::vector<InMemCommand> &out,
                                 bool &inter) {
                for (InMemCommand c :
                     compileMove(sub, n.dim, n.dist,
                                 layout.tileSize(n.dim))) {
                    c.group = id;
                    c.dtype = elem;
                    c.wlA = src.wl;
                    c.wlDst = dst_wl;
                    c.banks = banksOf(
                        sub.boundingUnion(sub.shifted(n.dim, n.dist)
                                              .intersect(HyperRect::array(
                                                  layout.shape()))));
                    if (c.kind == CmdKind::InterShift)
                        inter = true;
                    out.push_back(std::move(c));
                }
            });
            loc[id] = {dst_wl, true};
            break;
          }
          case TdfgKind::Broadcast: {
            syncIfPending();
            const NodeLocation &src = loc[n.operands[0]];
            infs_assert(src.resident, "broadcast of non-resident node");
            unsigned dst_wl = allocSlot(id) * bits;
            if (err)
                return *err;
            const HyperRect &src_dom = g.domainOf(n.operands[0]);
            auto subs = tryDecomposeTensor(src_dom, layout.tile());
            if (!subs)
                return subs.error();
            lowerSubs(*subs, [&](const HyperRect &sub,
                                 std::vector<InMemCommand> &out,
                                 bool &inter) {
                InMemCommand c;
                c.kind = CmdKind::BroadcastBl;
                c.group = id;
                c.tensor = sub;
                c.dim = n.dim;
                c.bcCount = n.count;
                c.bcDist = n.dist;
                c.dtype = elem;
                c.wlA = src.wl;
                c.wlDst = dst_wl;
                // Banks: source plus the whole destination region.
                HyperRect dst = n.domain.intersect(
                    HyperRect::array(layout.shape()));
                c.banks = banksOf(sub.boundingUnion(dst));
                // Broadcasts beyond one tile traverse the H tree/NoC.
                if (n.count * src_dom.size(n.dim) > layout.tileSize(n.dim))
                    inter = true;
                out.push_back(std::move(c));
            });
            loc[id] = {dst_wl, true};
            break;
          }
          case TdfgKind::Compute: {
            syncIfPending();
            unsigned dst_wl = allocSlot(id) * bits;
            if (err)
                return *err;
            // Chain n-ary computes into binary commands.
            // Gather tensor operands and at most the constants as imms.
            std::vector<NodeId> tensor_ops;
            std::vector<double> imms;
            for (NodeId op : n.operands) {
                if (g.node(op).kind == TdfgKind::ConstVal)
                    imms.push_back(g.node(op).constValue);
                else
                    tensor_ops.push_back(op);
            }
            infs_assert(!tensor_ops.empty(), "compute with only consts");
            auto subs = tryDecomposeTensor(n.domain, layout.tile());
            if (!subs)
                return subs.error();
            lowerSubs(*subs, [&](const HyperRect &sub,
                                 std::vector<InMemCommand> &out, bool &) {
                auto banks = banksOf(sub);
                unsigned cur_wl = loc[tensor_ops[0]].wl;
                // Fold further tensor operands pairwise.
                for (std::size_t i = 1; i < tensor_ops.size(); ++i) {
                    InMemCommand c;
                    c.kind = CmdKind::Compute;
                    c.group = id;
                    c.op = n.fn;
                    c.dtype = elem;
                    c.tensor = sub;
                    c.wlA = cur_wl;
                    c.wlB = loc[tensor_ops[i]].wl;
                    c.wlDst = dst_wl;
                    c.banks = banks;
                    out.push_back(std::move(c));
                    cur_wl = dst_wl;
                }
                // Fold constants as immediate operands.
                for (double imm : imms) {
                    InMemCommand c;
                    c.kind = CmdKind::Compute;
                    c.group = id;
                    c.op = n.fn;
                    c.dtype = elem;
                    c.tensor = sub;
                    c.wlA = cur_wl;
                    c.useImm = true;
                    c.imm = imm;
                    c.wlDst = dst_wl;
                    c.banks = banks;
                    out.push_back(std::move(c));
                    cur_wl = dst_wl;
                }
                // Unary non-const compute (e.g. relu): single command.
                if (tensor_ops.size() == 1 && imms.empty()) {
                    InMemCommand c;
                    c.kind = CmdKind::Compute;
                    c.group = id;
                    c.op = n.fn;
                    c.dtype = elem;
                    c.tensor = sub;
                    c.wlA = cur_wl;
                    c.wlB = cur_wl;
                    c.wlDst = dst_wl;
                    c.banks = banks;
                    out.push_back(std::move(c));
                }
            });
            loc[id] = {dst_wl, true};
            break;
          }
          case TdfgKind::Reduce: {
            syncIfPending();
            const NodeLocation &src = loc[n.operands[0]];
            unsigned dst_wl = allocSlot(id) * bits;
            if (err)
                return *err;
            // Scratch register for the shifted operand of each tree
            // round (the accumulator cannot alias its own shift source).
            unsigned tmp_slot = ~0u;
            for (unsigned sslot = 0; sslot < num_slots; ++sslot) {
                if (!slot_busy[sslot]) {
                    slot_busy[sslot] = true;
                    tmp_slot = sslot;
                    break;
                }
            }
            if (tmp_slot == ~0u) {
                return Error{ErrCode::OutOfSlots,
                             "tDFG '" + g.name() +
                                 "': no scratch wordline register for "
                                 "reduction (§6)"};
            }
            unsigned tmp_wl = tmp_slot * bits;
            const HyperRect &src_dom = g.domainOf(n.operands[0]);
            // §4.2: interleaving compute and intra-tile shift commands to
            // fully reduce each tile on the reduced dimension, then
            // inter-tile rounds (synchronized) to combine the per-tile
            // partials when the reduced extent spans multiple tiles.
            Coord extent = std::min<Coord>(src_dom.size(n.dim),
                                           layout.tileSize(n.dim));
            unsigned rounds = ceilLog2(extent);
            Coord tiles_along =
                (src_dom.size(n.dim) + layout.tileSize(n.dim) - 1) /
                layout.tileSize(n.dim);
            unsigned inter_rounds = ceilLog2(tiles_along);
            auto subs = tryDecomposeTensor(src_dom, layout.tile());
            if (!subs)
                return subs.error();
            lowerSubs(*subs, [&](const HyperRect &sub,
                                 std::vector<InMemCommand> &out, bool &) {
                auto banks = banksOf(sub);
                unsigned cur_wl = src.wl;
                Coord live = std::min<Coord>(sub.size(n.dim),
                                             layout.tileSize(n.dim));
                for (unsigned r = 0; r < rounds; ++r) {
                    // Halving tree over IN-TILE positions, every tile in
                    // parallel: positions [0, live/2) accumulate
                    // positions [live/2, live) shifted down by live/2.
                    // The positional masks carry the live regions so
                    // element accounting matches the tree reduction.
                    Coord half = std::max<Coord>((live + 1) / 2, 1);
                    InMemCommand sh;
                    sh.kind = CmdKind::IntraShift;
                    // Reduction rounds depend on each other: distinct
                    // groups per round (2 * r + phase) per subtensor.
                    sh.group = id * 64 + 2 * r;
                    sh.tensor = sub;
                    sh.dim = n.dim;
                    sh.maskLo = half;
                    sh.maskHi = live;
                    sh.interTileDist = 0;
                    sh.intraTileDist = -half;
                    sh.dtype = elem;
                    sh.wlA = cur_wl;
                    sh.wlDst = tmp_wl;
                    sh.banks = banks;
                    out.push_back(std::move(sh));
                    InMemCommand c;
                    c.kind = CmdKind::Compute;
                    c.group = id * 64 + 2 * r + 1;
                    c.op = n.fn;
                    c.dtype = elem;
                    c.tensor = sub;
                    c.dim = n.dim;
                    c.maskLo = 0;
                    c.maskHi = half;
                    c.wlA = cur_wl;
                    c.wlB = tmp_wl;
                    c.wlDst = dst_wl;
                    c.banks = banks;
                    out.push_back(std::move(c));
                    cur_wl = dst_wl;
                    live = half;
                }
                // Cross-tile combination: tree rounds of inter-tile
                // shifts, each a global synchronization point (§4.2).
                Coord live_tiles = tiles_along;
                for (unsigned r = 0; r < inter_rounds; ++r) {
                    Coord half_tiles =
                        std::max<Coord>((live_tiles + 1) / 2, 1);
                    Coord active = half_tiles;
                    HyperRect part = sub.withDim(
                        n.dim, sub.lo(n.dim),
                        sub.lo(n.dim) +
                            std::max<Coord>(live_tiles *
                                                layout.tileSize(n.dim),
                                            1));
                    InMemCommand sh;
                    sh.kind = CmdKind::InterShift;
                    sh.group = id * 64 + 32 + 2 * r;
                    sh.tensor = part;
                    sh.dim = n.dim;
                    // Only the per-tile partials (one lane per tile,
                    // position 0 after the in-tile reduction) move.
                    sh.maskLo = 0;
                    sh.maskHi = 1;
                    sh.interTileDist = -half_tiles;
                    live_tiles = half_tiles;
                    sh.intraTileDist = 0;
                    sh.dtype = elem;
                    sh.wlA = cur_wl;
                    sh.wlDst = tmp_wl;
                    sh.banks = banks;
                    out.push_back(std::move(sh));
                    InMemCommand sync;
                    sync.kind = CmdKind::Sync;
                    out.push_back(std::move(sync));
                    InMemCommand c;
                    c.kind = CmdKind::Compute;
                    c.group = id * 64 + 33 + 2 * r;
                    c.op = n.fn;
                    c.dtype = elem;
                    // One partial lane (position 0) per surviving tile.
                    c.tensor = sub.withDim(
                        n.dim, sub.lo(n.dim),
                        sub.lo(n.dim) +
                            std::max<Coord>(active *
                                                layout.tileSize(n.dim),
                                            1));
                    c.dim = n.dim;
                    c.maskLo = 0;
                    c.maskHi = 1;
                    c.wlA = cur_wl;
                    c.wlB = tmp_wl;
                    c.wlDst = dst_wl;
                    c.banks = banks;
                    out.push_back(std::move(c));
                    cur_wl = dst_wl;
                }
            });
            slot_busy[tmp_slot] = false; // Scratch freed after the node.
            loc[id] = {dst_wl, true};
            break;
          }
          case TdfgKind::Stream: {
            // Near-memory side; no in-memory command. A store stream's
            // tensor value lives at its input's location; a load stream
            // lays its data into freshly allocated wordlines
            // (stream-to-tensor, §3.3).
            if (!n.operands.empty())
                loc[id] = loc[n.operands[0]];
            else
                loc[id] = {allocSlot(id) * bits, true};
            break;
          }
        }
        if (err)
            return *err;
        freeDeadSlots(id);
    }
    // Final sync so all inter-tile movement commits before the region
    // completes (context switches wait on this, §5.3).
    syncIfPending();

    for (const auto &[a, s] : array_slot)
        prog.arraySlots.emplace_back(a, s * bits);
    for (const auto &o : g.outputs())
        prog.outputSlots.emplace_back(o.array, loc[o.node].wl);

    prog.recount();

    // ---- JIT time model (§4.2): division of labor leaves mapping and
    // command generation; bank mapping is the O(Nbank x Ncmd) term.
    const TensorConfig &tc = cfg_.tensor;
    double bank_work = 0;
    for (const InMemCommand &c : prog.commands)
        bank_work += static_cast<double>(c.banks.size());
    prog.jitTicks = tc.jitFixedCycles +
                    Tick(tc.jitPerNodeCycles) * g.size() +
                    Tick(tc.jitPerCommandCycles) * prog.commands.size() +
                    static_cast<Tick>(bank_work * 0.5);
    return prog;
}

Expected<std::shared_ptr<const InMemProgram>>
JitCompiler::tryLower(const TdfgGraph &g, const TiledLayout &layout,
                      const AddressMap &map, const std::string &memo_key)
{
    using Result = Expected<std::shared_ptr<const InMemProgram>>;
    if (!memo_key.empty()) {
        MemoShard &shard = shardFor(memo_key);
        std::lock_guard<std::mutex> lock(shard.mu);
        auto it = shard.map.find(memo_key);
        if (it != shard.map.end()) {
            std::lock_guard<std::mutex> slock(statsMu_);
            ++stats_.memoHits;
            return Result(it->second);
        }
    }
    auto lowered = doLower(g, layout, map);
    if (!lowered)
        return lowered.error();
    if (verify_) {
        if (std::optional<Error> err = verify_(g, *lowered, layout, map))
            return *std::move(err);
    }
    if (cfg_.cmdOpt) {
        // Optimize a copy so a verify rejection can fall back to the raw
        // stream (the raw stream just passed the hook above, so the region
        // still executes — the bailout only foregoes the optimization).
        InMemProgram optimized = *lowered;
        CmdOptOptions opts;
        opts.syncElision = cfg_.cmdOptSyncElision;
        optimizeCommands(optimized, layout, map, cfg_, opts);
        bool accept = true;
        if (verify_) {
            if (verify_(g, optimized, layout, map))
                accept = false;
        }
        if (accept) {
            *lowered = std::move(optimized);
        } else {
            lowered->opt = CmdStats{};
            lowered->opt.bailouts = 1;
        }
    }
    auto prog = std::make_shared<InMemProgram>(std::move(*lowered));
    {
        std::lock_guard<std::mutex> lock(statsMu_);
        ++stats_.lowerings;
        stats_.totalJitTicks += prog->jitTicks;
        stats_.cmd.accumulate(prog->opt);
    }
    if (!memo_key.empty()) {
        auto memoized = std::make_shared<InMemProgram>(*prog);
        memoized->memoized = true;
        memoized->jitTicks = 0; // Cached reuse skips lowering.
        MemoShard &shard = shardFor(memo_key);
        std::lock_guard<std::mutex> lock(shard.mu);
        // A concurrent pre-lowering of the same key may have won the
        // race; emplace keeps the first entry (identical program).
        shard.map.emplace(memo_key, std::move(memoized));
    }
    return Result(std::shared_ptr<const InMemProgram>(std::move(prog)));
}

std::shared_ptr<const InMemProgram>
JitCompiler::lower(const TdfgGraph &g, const TiledLayout &layout,
                   const AddressMap &map, const std::string &memo_key)
{
    auto res = tryLower(g, layout, map, memo_key);
    if (!res) {
        infs_fatal("tDFG '%s': lowering failed with no degradation path: "
                   "%s",
                   g.name().c_str(), res.error().str().c_str());
    }
    return *res;
}

std::vector<Expected<std::shared_ptr<const InMemProgram>>>
JitCompiler::lowerCandidates(const TdfgGraph &g,
                             const std::vector<TiledLayout> &layouts,
                             const AddressMap &map,
                             const std::string &memo_key)
{
    using ProgOr = Expected<std::shared_ptr<const InMemProgram>>;
    auto candKey = [&](const TiledLayout &layout) {
        if (memo_key.empty())
            return std::string();
        std::string sig;
        for (Coord t : layout.tile()) {
            if (!sig.empty())
                sig += 'x';
            sig += std::to_string(t);
        }
        return memo_key + "@" + sig;
    };
    std::vector<std::optional<ProgOr>> out(layouts.size());
    auto one = [&](std::size_t c) {
        out[c] = tryLower(g, layouts[c], map, candKey(layouts[c]));
    };
    if (pool_ == nullptr || pool_->inlineOnly() || layouts.size() <= 1) {
        for (std::size_t c = 0; c < layouts.size(); ++c)
            one(c);
    } else {
        std::vector<std::function<void()>> tasks;
        tasks.reserve(layouts.size());
        for (std::size_t c = 0; c < layouts.size(); ++c)
            tasks.push_back([&one, c] { one(c); });
        pool_->runTasks(std::move(tasks));
    }
    std::vector<ProgOr> res;
    res.reserve(out.size());
    for (auto &o : out)
        res.push_back(std::move(*o));
    return res;
}

OffloadDecision
decideOffload(const TdfgSummary &summary, const SystemConfig &cfg,
              bool jit_precompiled)
{
    OffloadDecision d;
    LatencyTable lat;
    // LHS: N_elem x N_op / TP_core.
    double n_ops = summary.numCompute + summary.numReduce;
    d.coreCycles = static_cast<double>(summary.maxTensorElems) * n_ops /
                   cfg.basePeakOpsPerCycle();
    // RHS: sum of op latencies (fully parallel, no N_elem) + JIT time.
    // The summary carries the aggregate op cycles (per-op-kind counts x
    // latencies) the compiler embeds as hints (§4.3).
    (void)lat;
    double op_lat = static_cast<double>(summary.opCycles);
    double jit = jit_precompiled
                     ? 0.0
                     : double(summary.numNodes) *
                           cfg.tensor.jitPerNodeCycles +
                           cfg.tensor.jitFixedCycles;
    d.inMemCycles = op_lat + jit;
    d.inMemory = d.coreCycles > d.inMemCycles;
    return d;
}

} // namespace infs
