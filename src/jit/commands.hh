/**
 * @file
 * In-memory commands the JIT runtime lowers the tDFG into (§4.2) and the
 * tensor controllers execute (§5.2). Shift commands carry the five
 * arguments of Alg. 2: tensor, dimension, shift mask (positions within the
 * tile), and inter-/intra-tile distances.
 */

#ifndef INFS_JIT_COMMANDS_HH
#define INFS_JIT_COMMANDS_HH

#include <string>
#include <vector>
#include <utility>

#include "bitserial/latency.hh"
#include "sim/types.hh"
#include "stream/pattern.hh"
#include "tdfg/hyperrect.hh"

namespace infs {

/** Kinds of in-memory commands. */
enum class CmdKind : std::uint8_t {
    IntraShift,   ///< Move bitlines within each SRAM array (H tree).
    InterShift,   ///< Move bitlines across tiles (H tree + NoC).
    Compute,      ///< Bit-serial op across selected bitlines.
    BroadcastBl,  ///< Replicate a tile row/column to aligned bitlines.
    BroadcastVal, ///< Broadcast an immediate to selected bitlines.
    Sync,         ///< Global barrier for inter-tile movement (§4.2).
};

const char *cmdKindName(CmdKind k);

/** One lowered in-memory command. */
struct InMemCommand {
    CmdKind kind = CmdKind::Compute;

    /**
     * Producing tDFG node. Commands sharing a group come from one node's
     * tile decomposition (Alg. 1): they touch disjoint tiles, so their
     * SRAM arrays execute them concurrently; ordering applies between
     * groups (per-bank synchronous issue, §4.2).
     */
    unsigned group = 0;

    /** Decomposed subtensor this command applies to. */
    HyperRect tensor;

    // --- Shift / broadcast fields (Alg. 2). ---
    unsigned dim = 0;        ///< Shift dimension k.
    Coord maskLo = 0;        ///< Shift mask [maskLo, maskHi) within tile.
    Coord maskHi = 0;
    Coord interTileDist = 0; ///< Tiles to cross (sign = direction).
    Coord intraTileDist = 0; ///< Bitlines to move within the tile.
    Coord bcCount = 1;       ///< BroadcastBl: replication count.
    Coord bcDist = 0;        ///< BroadcastBl: destination offset.

    // --- Compute fields. ---
    BitOp op = BitOp::Add;
    DType dtype = DType::Fp32;
    unsigned wlA = 0;        ///< Source operand wordline.
    unsigned wlB = 0;        ///< Second operand wordline.
    unsigned wlDst = 0;      ///< Destination wordline.
    bool useImm = false;
    double imm = 0.0;

    /** Banks whose tiles this command touches (step 3 of §4.2). */
    std::vector<BankId> banks;

    /** One-line rendering for traces and golden tests. */
    std::string str() const;
};

/**
 * Work performed by the command-stream optimizer (src/jit/cmdopt.hh) on
 * one lowered program. Every counter is a count of commands *removed* or
 * barriers *elided*, so the optimized stream's per-kind counts are never
 * larger than the raw stream's (pinned by tests/jit/test_cmdopt_property).
 */
struct CmdStats {
    unsigned fusedMoves = 0;        ///< Shift commands merged into wider ones.
    unsigned dedupedBroadcasts = 0; ///< Redundant broadcasts removed.
    unsigned dedupedCommands = 0;   ///< Other provably redundant commands.
    unsigned hoistedMasks = 0;      ///< Repeated tile-mask setups merged.
    unsigned elidedSyncs = 0;       ///< Barriers the hazard facts disprove.
    unsigned bailouts = 0;          ///< Optimized stream rejected; raw kept.

    void
    accumulate(const CmdStats &o)
    {
        fusedMoves += o.fusedMoves;
        dedupedBroadcasts += o.dedupedBroadcasts;
        dedupedCommands += o.dedupedCommands;
        hoistedMasks += o.hoistedMasks;
        elidedSyncs += o.elidedSyncs;
        bailouts += o.bailouts;
    }
};

/** A fully lowered in-memory program plus lowering statistics. */
struct InMemProgram {
    std::vector<InMemCommand> commands;

    /** Wordline home slot (first wordline) assigned to each array. */
    std::vector<std::pair<ArrayId, unsigned>> arraySlots;
    /** Where each output array's result tensor lives after execution. */
    std::vector<std::pair<ArrayId, unsigned>> outputSlots;

    // Lowering statistics for Fig. 13/14 and the JIT-overhead study.
    unsigned numIntraShift = 0;
    unsigned numInterShift = 0;
    unsigned numCompute = 0;
    unsigned numBroadcast = 0;
    unsigned numSync = 0;
    Tick jitTicks = 0;       ///< Modeled JIT lowering time (§4.2).
    bool memoized = false;   ///< Reused from the memoization cache.
    CmdStats opt;            ///< Command-optimizer work on this program.

    void
    recount()
    {
        numIntraShift = numInterShift = numCompute = numBroadcast =
            numSync = 0;
        for (const InMemCommand &c : commands) {
            switch (c.kind) {
              case CmdKind::IntraShift: ++numIntraShift; break;
              case CmdKind::InterShift: ++numInterShift; break;
              case CmdKind::Compute: ++numCompute; break;
              case CmdKind::BroadcastBl:
              case CmdKind::BroadcastVal: ++numBroadcast; break;
              case CmdKind::Sync: ++numSync; break;
            }
        }
    }
};

} // namespace infs

#endif // INFS_JIT_COMMANDS_HH
