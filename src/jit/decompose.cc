#include "jit/decompose.hh"

#include "sim/logging.hh"

namespace infs {

namespace {

/** Decompose dimensions [dim, N) and cross with the given prefix ranges. */
void
decomposeFrom(const HyperRect &tensor, const std::vector<Coord> &tile,
              unsigned dim, std::vector<std::pair<Coord, Coord>> &prefix,
              std::vector<HyperRect> &out)
{
    const unsigned dims = tensor.dims();
    if (dim == dims) {
        std::vector<Coord> lo(dims), hi(dims);
        for (unsigned d = 0; d < dims; ++d) {
            lo[d] = prefix[d].first;
            hi[d] = prefix[d].second;
        }
        out.emplace_back(std::move(lo), std::move(hi));
        return;
    }

    const Coord p = tensor.lo(dim), q = tensor.hi(dim), t = tile[dim];
    infs_assert(p < q, "empty tensor dimension %u", dim);
    infs_assert(t > 0, "tile dim %u must be positive", dim);
    // Alg. 1 lines 3-4: align p and q to tile boundaries.
    auto floordiv = [](Coord a, Coord b) {
        return a >= 0 ? a / b : -((-a + b - 1) / b);
    };
    Coord a = floordiv(p, t) * t;
    Coord b = floordiv(p + t - 1, t) * t;
    Coord c = floordiv(q, t) * t;
    Coord d2 = floordiv(q + t - 1, t) * t;
    (void)d2;

    auto emit = [&](Coord lo, Coord hi) {
        if (lo >= hi)
            return;
        prefix[dim] = {lo, hi};
        decomposeFrom(tensor, tile, dim + 1, prefix, out);
    };

    if (b <= c) {
        // a <= p < b <= c <= q < d: head / middle / tail (Alg. 1 l. 8-16).
        if (a < p) {
            emit(p, b); // Head interval (p not tile-aligned).
            emit(b, c); // Possible middle interval.
        } else {
            emit(p, c); // p aligns with a: one aligned interval.
        }
        if (c < q)
            emit(c, q); // Possible tail interval.
    } else {
        // Entire range within one tile: no decomposition in this dim.
        emit(p, q);
    }
}

} // namespace

std::vector<HyperRect>
decomposeTensor(const HyperRect &tensor, const std::vector<Coord> &tile)
{
    auto res = tryDecomposeTensor(tensor, tile);
    infs_assert(res.ok(), "decomposeTensor: %s", res.error().str().c_str());
    return std::move(res.value());
}

Expected<std::vector<HyperRect>>
tryDecomposeTensor(const HyperRect &tensor, const std::vector<Coord> &tile)
{
    using Result = Expected<std::vector<HyperRect>>;
    if (tensor.dims() != tile.size()) {
        return Result::failure(
            ErrCode::LayoutConstraint,
            "tensor rank " + std::to_string(tensor.dims()) +
                " != tile rank " + std::to_string(tile.size()));
    }
    for (std::size_t d = 0; d < tile.size(); ++d) {
        if (tile[d] <= 0) {
            return Result::failure(ErrCode::LayoutConstraint,
                                   "tile dim " + std::to_string(d) +
                                       " must be positive");
        }
    }
    std::vector<HyperRect> out;
    if (tensor.empty())
        return out;
    std::vector<std::pair<Coord, Coord>> prefix(tensor.dims());
    decomposeFrom(tensor, tile, 0, prefix, out);
    return out;
}

} // namespace infs
