/**
 * @file
 * Transposed data layout selection (§4.1). A tile is the set of data
 * dimensions mapped to one SRAM array; the runtime searches tile sizes
 * meeting the paper's two constraints and picks one with movement-aware
 * heuristics (reduction > shift > broadcast priority).
 */

#ifndef INFS_JIT_TILING_HH
#define INFS_JIT_TILING_HH

#include <optional>
#include <set>
#include <vector>

#include "mem/address_map.hh"
#include "sim/config.hh"
#include "sim/expected.hh"
#include "tdfg/graph.hh"

namespace infs {

/** Data-movement hints the compiler derives from the tDFG (§3.4). */
struct LayoutHints {
    std::set<unsigned> shiftDims;      ///< Dimensions mv nodes shift along.
    std::set<unsigned> broadcastDims;  ///< Dimensions bc nodes expand.
    std::optional<unsigned> reduceDim; ///< Reduced dimension, if any.

    /** Derive hints by scanning a tDFG's data-movement nodes. */
    static LayoutHints fromGraph(const TdfgGraph &g);
};

/**
 * The tiled, transposed layout of one array: how lattice coordinates map
 * to (tile, position-in-tile), and tiles map contiguously to SRAM arrays.
 */
class TiledLayout
{
  public:
    TiledLayout() = default;
    TiledLayout(std::vector<Coord> shape, std::vector<Coord> tile);

    /**
     * Validating factory: rank mismatch or a non-positive tile dimension
     * comes back as a LayoutConstraint diagnostic (the constructor
     * asserts instead). Use this on user-supplied tiles (forceTile).
     */
    static Expected<TiledLayout> make(std::vector<Coord> shape,
                                      std::vector<Coord> tile);

    unsigned dims() const { return static_cast<unsigned>(shape_.size()); }
    const std::vector<Coord> &shape() const { return shape_; }
    const std::vector<Coord> &tile() const { return tile_; }
    Coord tileSize(unsigned d) const { return tile_[d]; }

    /** Tiles per dimension (ceil division; boundary tiles possible). */
    const std::vector<Coord> &grid() const { return grid_; }

    /** Total number of tiles. */
    std::int64_t numTiles() const;

    /** Bitlines per tile (product of tile dims). */
    std::int64_t tileVolume() const;

    /** Linear tile index containing a lattice coordinate. */
    std::int64_t tileOf(const std::vector<Coord> &pt) const;

    /** Bitline index within the tile for a lattice coordinate. */
    std::int64_t positionInTile(const std::vector<Coord> &pt) const;

    /** Linear tile indices whose tiles intersect @p r. */
    std::vector<std::int64_t> tilesIntersecting(const HyperRect &r) const;

    /**
     * Lattice rectangle covered by tile @p t, clamped to the array shape
     * (boundary tiles are partial). Lets per-tile walks iterate O(tile
     * volume) cells instead of filtering the whole tensor by tileOf().
     */
    HyperRect tileRect(std::int64_t t) const;

    /** Number of tiles intersecting @p r (O(dims), no enumeration). */
    std::int64_t countTilesIntersecting(const HyperRect &r) const;

    /** L3 banks owning any tile intersecting @p r. */
    std::vector<BankId> banksFor(const HyperRect &r,
                                 const AddressMap &map) const;

    /** Whether a whole-array element count fits the available arrays. */
    bool fits(const AddressMap &map) const;

  private:
    std::vector<Coord> shape_;
    std::vector<Coord> tile_;
    std::vector<Coord> grid_;
};

/** Result of the runtime's tile-size search. */
struct TileDecision {
    bool valid = false;
    std::vector<Coord> tile;
    double score = 0.0;
};

/**
 * §4.1 tile-size search. @p elem_bytes is the element size, @p shape the
 * array shape (dim 0 innermost / contiguous).
 */
class TilingPolicy
{
  public:
    explicit TilingPolicy(const L3Config &l3) : l3_(l3) {}

    /**
     * All tile sizes satisfying the constraints:
     *  (1) prod(T_i) == bitlines per SRAM array;
     *  (2) T0 * W mod L == 0 (W arrays/bank, L elements/line);
     * plus the array's innermost dimension aligning to the cache line
     * (S0 mod L == 0). Returns empty when the array is not tileable (then
     * in-memory computing is disabled, §4.1).
     */
    std::vector<std::vector<Coord>>
    validTiles(const std::vector<Coord> &shape, unsigned elem_bytes) const;

    /**
     * Pick a tile using the movement heuristics:
     *  - reduction favors a large tile on the reduced dimension;
     *  - shifts favor close-to-square tiles;
     *  - broadcast reads favor a small innermost tile;
     *  - priority: reduction > shift > broadcast.
     */
    TileDecision choose(const std::vector<Coord> &shape, unsigned elem_bytes,
                        const LayoutHints &hints) const;

    /** Score one candidate (exposed for the Fig. 16/17 oracle sweep). */
    double score(const std::vector<Coord> &tile,
                 const std::vector<Coord> &shape,
                 const LayoutHints &hints) const;

    /**
     * Fat-binary candidate set (DESIGN.md §14): the choose() winner first,
     * then the next-best-scoring valid tiles, capped at @p max_n. When the
     * hints name a reduced dimension, every candidate shares the winner's
     * tile size on that dimension — the in-memory reduction tree's shape
     * (and therefore the non-associative fp sum order) is a function of
     * tileSize(reduceDim), so pinning it keeps all candidates bit-identical
     * and the dispatcher free to pick any of them. Deterministic: ties
     * resolve by validTiles() enumeration order. Empty when the shape is
     * untileable.
     */
    std::vector<TileDecision>
    candidates(const std::vector<Coord> &shape, unsigned elem_bytes,
               const LayoutHints &hints, unsigned max_n) const;

  private:
    L3Config l3_;
};

} // namespace infs

#endif // INFS_JIT_TILING_HH
