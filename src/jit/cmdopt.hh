/**
 * @file
 * Command-stream optimizer: a peephole/scheduling pass over the lowered
 * in-memory program, run between Alg. 2 lowering and backend execution
 * (SystemConfig::cmdOpt, DESIGN.md §13). Three sub-passes, in order:
 *
 *  1. redundant-command elimination — a command identical to an earlier
 *     one (all effect parameters, window rect, AND bank list) is removed
 *     when nothing in between wrote any cell it reads or writes and it is
 *     not in-place (re-execution is then byte-idempotent); broadcasts
 *     whose destination bitlines are provably already populated are the
 *     canonical case;
 *  2. movement coalescing — same-group shift commands restating one
 *     logical effect over different windows (the reduce lowering emits
 *     its rounds once per decomposed subtensor) merge into one wider
 *     command when their rects exactly partition the bounding union, no
 *     intervening command touches the moved cells, and the merged
 *     inter-tile serialization latency does not exceed either original's
 *     (per-bank busy times never increase);
 *  3. Sync elision — a barrier is removed when the hazard analyzer's
 *     dependence facts (src/analysis/verify_cmds.cc rule (c), mirrored
 *     here) prove no cross-bank RAW/WAW spans it: every asynchronous
 *     inter-tile writer still pending at the barrier has no dependent
 *     consumer before the next kept barrier. The final commit barrier is
 *     always kept while async movement is pending (§5.3).
 *
 * Soundness: rewrites 1-2 preserve the bytes of every lattice cell by
 * construction (idempotent re-execution / exact window partition of one
 * cell-wise effect), and removing a Sync never changes bits on any
 * backend — the bit fabric partitions lanes by touched-tile overlap, so
 * same-tile dependences are ordered regardless of barrier placement, and
 * the functional backend replays sequentially. What elision must (and
 * does) preserve is hazard-analyzer cleanliness; infs-verify re-checks
 * every optimized stream and the JIT falls back to the raw stream when a
 * verify hook reports any diagnostic.
 */

#ifndef INFS_JIT_CMDOPT_HH
#define INFS_JIT_CMDOPT_HH

#include "jit/commands.hh"
#include "jit/tiling.hh"
#include "mem/address_map.hh"
#include "sim/config.hh"

namespace infs {

/** Per-sub-pass switches (ablation harness; all on in production). */
struct CmdOptOptions {
    bool dedup = true;
    bool coalesce = true;
    bool syncElision = true;
};

/**
 * Optimize @p prog in place for @p layout and return the work counters
 * (also stored into prog.opt). Per-kind command counts are refreshed via
 * recount(); jitTicks and slot tables are untouched.
 */
CmdStats optimizeCommands(InMemProgram &prog, const TiledLayout &layout,
                          const AddressMap &map, const SystemConfig &cfg,
                          const CmdOptOptions &opts = {});

} // namespace infs

#endif // INFS_JIT_CMDOPT_HH
