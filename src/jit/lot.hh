/**
 * @file
 * Layout override table (LOT, §5.2 Table 1): tracks arrays cached in the
 * transposed layout. The runtime initializes entries; the microarchitecture
 * consults them to map physical addresses to bitlines and to block normal
 * requests while transposition is in flight.
 */

#ifndef INFS_JIT_LOT_HH
#define INFS_JIT_LOT_HH

#include <optional>
#include <vector>

#include "jit/tiling.hh"
#include "sim/types.hh"
#include "stream/pattern.hh"

namespace infs {

/** Transpose state of a LOT region (Table 1 "trans"). */
enum class TransposeState : std::uint8_t {
    NotTransposed = 0,  ///< Data cached normally (or not at all).
    InFlight = 1,       ///< TTU converting; core requests blocked.
    Transposed = 2,     ///< Data resident in bit-serial layout.
};

/** One LOT region (Table 1). */
struct LotEntry {
    ArrayId array = invalidArray; ///< Which inf_array this region backs.
    Addr base = 0;                ///< Base physical address.
    Addr end = 0;                 ///< End physical address.
    unsigned elemBytes = 4;       ///< Element size.
    TiledLayout layout;           ///< Array + tile shape (S_i, T_i).
    unsigned startWordline = 0;   ///< "wl": first wordline of this array.
    TransposeState trans = TransposeState::NotTransposed;
};

/** The layout override table: a small fully-associative region table. */
class Lot
{
  public:
    explicit Lot(unsigned entries = 16) : capacity_(entries) {}

    unsigned capacity() const { return capacity_; }
    std::size_t size() const { return entries_.size(); }

    /** Install a region; fails (nullopt) when the table is full. */
    std::optional<unsigned>
    install(LotEntry entry)
    {
        if (entries_.size() >= capacity_)
            return std::nullopt;
        entries_.push_back(std::move(entry));
        return static_cast<unsigned>(entries_.size() - 1);
    }

    /** Look up the region containing a physical address. */
    LotEntry *
    findByAddr(Addr addr)
    {
        for (LotEntry &e : entries_)
            if (addr >= e.base && addr < e.end)
                return &e;
        return nullptr;
    }

    /** Look up the region backing an array. */
    LotEntry *
    findByArray(ArrayId array)
    {
        for (LotEntry &e : entries_)
            if (e.array == array)
                return &e;
        return nullptr;
    }

    const std::vector<LotEntry> &entries() const { return entries_; }
    std::vector<LotEntry> &entries() { return entries_; }

    /**
     * Acquire the single-thread in-memory lock (§6 limitation 1).
     * @return false when another thread holds it.
     */
    bool
    lock(int thread)
    {
        if (owner_ >= 0 && owner_ != thread)
            return false;
        owner_ = thread;
        return true;
    }

    void
    unlock(int thread)
    {
        if (owner_ == thread)
            owner_ = -1;
    }

    bool locked() const { return owner_ >= 0; }

    void
    clear()
    {
        entries_.clear();
        owner_ = -1;
    }

  private:
    unsigned capacity_;
    std::vector<LotEntry> entries_;
    int owner_ = -1;
};

} // namespace infs

#endif // INFS_JIT_LOT_HH
