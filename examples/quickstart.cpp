/**
 * @file
 * Quickstart: declare arrays, build a tDFG with the kernel-builder DSL,
 * run it functionally through the interpreter, and execute it on the
 * simulated machine under every paradigm.
 *
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/executor.hh"
#include "tdfg/interp.hh"
#include "workloads/workloads.hh"

using namespace infs;

int
main()
{
    // ------------------------------------------------------------------
    // 1. The inf_array view: declare arrays and build a tDFG by hand.
    //    B[i] = (A[i-1] + A[i] + A[i+1]) / 3
    // ------------------------------------------------------------------
    const Coord n = 64;
    ArrayStore store;
    ArrayId A = store.declare("A", {n});
    ArrayId B = store.declare("B", {n});
    for (Coord i = 0; i < n; ++i)
        store.array(A).data[i] = static_cast<float>(i % 7);

    TdfgGraph g(1, "smooth");
    NodeId a0 = g.tensor(A, HyperRect::interval(0, n - 2));
    NodeId a1 = g.tensor(A, HyperRect::interval(1, n - 1));
    NodeId a2 = g.tensor(A, HyperRect::interval(2, n));
    // mv nodes align the neighbours in the global lattice space (Fig 4a).
    NodeId sum = g.compute(BitOp::Add,
                           {g.move(a0, 0, 1), a1, g.move(a2, 0, -1)});
    NodeId out = g.compute(BitOp::Mul, {sum, g.constant(1.0 / 3)});
    g.output(out, B);

    std::printf("tDFG:\n%s\n", g.dump().c_str());

    TdfgInterpreter interp(store);
    interp.run(g);
    std::printf("B[1..5] = %.3f %.3f %.3f %.3f %.3f\n",
                store.array(B).data[1], store.array(B).data[2],
                store.array(B).data[3], store.array(B).data[4],
                store.array(B).data[5]);

    // ------------------------------------------------------------------
    // 2. The workload view: run a packaged benchmark under each paradigm
    //    on the simulated 64-core / 144 MB-L3 machine (Table 2).
    // ------------------------------------------------------------------
    Workload w = makeStencil1d(4 << 20, 10);
    std::printf("\n%s on %s\n", w.name.c_str(),
                defaultSystemConfig().summary().c_str());
    double base = 0.0;
    for (Paradigm p : {Paradigm::Base, Paradigm::NearL3, Paradigm::InL3,
                       Paradigm::InfS}) {
        InfinitySystem sys;
        Executor exec(sys, p);
        ExecStats st = exec.run(w);
        if (p == Paradigm::Base)
            base = double(st.cycles);
        std::printf("  %-8s %12llu cycles  (%.2fx)  in-mem ops %.0f%%\n",
                    paradigmName(p),
                    static_cast<unsigned long long>(st.cycles),
                    base / double(st.cycles),
                    100.0 * st.inMemOpFraction());
    }
    return 0;
}
