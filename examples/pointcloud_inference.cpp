/**
 * @file
 * Domain example: PointNet++ SSG classification inference (the paper's
 * §8 case study) on a synthetic point cloud, reporting the per-stage
 * timeline under each paradigm and the class scores.
 *
 *   ./build/examples/pointcloud_inference [points=1024]
 */

#include <cstdio>
#include <cstdlib>

#include "core/executor.hh"
#include "workloads/pointnet.hh"

using namespace infs;

int
main(int argc, char **argv)
{
    const Coord points = argc > 1 ? std::atol(argv[1]) : 1024;
    Workload w = makePointNetSSG(points);

    // Functional inference.
    InfinitySystem sys;
    Executor exec(sys, Paradigm::InfS);
    ArrayStore store;
    ExecStats st = exec.run(w, &store);

    const StoredArray &scores =
        store.array(static_cast<ArrayId>(store.size() - 1));
    std::printf("PointNet++ SSG on %lld points — class scores:\n",
                (long long)points);
    for (std::size_t c = 0; c < scores.data.size(); ++c)
        std::printf("  class %zu: %8.4f\n", c, scores.data[c]);

    std::printf("\nInf-S stage timeline (top stages):\n");
    Tick total = st.cycles ? st.cycles : 1;
    for (const auto &[name, t] : st.phaseCycles)
        if (double(t) / double(total) > 0.02)
            std::printf("  %-20s %10llu cycles (%4.1f%%)\n", name.c_str(),
                        static_cast<unsigned long long>(t),
                        100.0 * double(t) / double(total));

    std::printf("\nEnd-to-end paradigm comparison (4k points, timing "
                "only):\n");
    Workload big = makePointNetSSG(4096);
    double base = 0.0;
    for (Paradigm p : {Paradigm::Base, Paradigm::NearL3, Paradigm::InL3,
                       Paradigm::InfS}) {
        InfinitySystem s2;
        ExecStats r = Executor(s2, p).run(big);
        if (p == Paradigm::Base)
            base = double(r.cycles);
        std::printf("  %-8s %12llu cycles (%.2fx; paper Inf-S: 1.69x)\n",
                    paradigmName(p),
                    static_cast<unsigned long long>(r.cycles),
                    base / double(r.cycles));
    }
    return 0;
}
