/**
 * @file
 * Domain example: hybrid in-/near-memory k-means (§3.3's motivating
 * case). The distance computation runs in the L3 SRAM bitlines while the
 * irregular centroid update runs near memory — and the functional result
 * is checked against a scalar reference.
 *
 *   ./build/examples/hybrid_clustering [points=4096] [dims=16] [centers=8]
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/executor.hh"
#include "workloads/workloads.hh"

using namespace infs;

int
main(int argc, char **argv)
{
    const Coord points = argc > 1 ? std::atol(argv[1]) : 4096;
    const Coord dims = argc > 2 ? std::atol(argv[2]) : 16;
    const Coord centers = argc > 3 ? std::atol(argv[3]) : 8;

    Workload w = makeKmeans(points, dims, centers, /*outer=*/true);

    // Functional run (small sizes): interpreter + fallback stages.
    InfinitySystem sys;
    Executor exec(sys, Paradigm::InfS);
    ArrayStore got;
    ExecStats st = exec.run(w, &got);

    // Scalar reference for validation.
    ArrayStore want;
    w.setup(want);
    w.reference(want);
    double max_err = 0.0;
    for (std::size_t i = 0; i < got.array(2).data.size(); ++i)
        max_err = std::max(
            max_err, std::abs(double(got.array(2).data[i]) -
                              double(want.array(2).data[i])));
    std::printf("k-means (%lld points, %lld dims, %lld centers)\n",
                (long long)points, (long long)dims, (long long)centers);
    std::printf("max |distance| error vs scalar reference: %.2e\n",
                max_err);

    // Where did the work run?
    std::printf("\nInf-S phase timeline:\n");
    for (const auto &[name, t] : st.phaseCycles)
        std::printf("  %-16s %10llu cycles\n", name.c_str(),
                    static_cast<unsigned long long>(t));
    std::printf("in-memory op fraction: %.0f%% (distances in bitlines, "
                "indirect update near memory)\n",
                100.0 * st.inMemOpFraction());

    // Paradigm comparison at the paper's scale (timing only).
    std::printf("\nAt the paper's scale (32k x 128, 128 centers):\n");
    Workload big = makeKmeans(32 << 10, 128, 128, true);
    double base = 0.0;
    for (Paradigm p : {Paradigm::Base, Paradigm::NearL3, Paradigm::InL3,
                       Paradigm::InfS}) {
        InfinitySystem s2;
        ExecStats r = Executor(s2, p).run(big);
        if (p == Paradigm::Base)
            base = double(r.cycles);
        std::printf("  %-8s %12llu cycles (%.2fx)\n", paradigmName(p),
                    static_cast<unsigned long long>(r.cycles),
                    base / double(r.cycles));
    }
    return 0;
}
