/**
 * @file
 * Domain example: an image-processing pipeline (3x3 blur + wavelet
 * decomposition) showing the e-graph optimizer's compute reuse and the
 * runtime's tile choice.
 *
 *   ./build/examples/image_pipeline [side=512]
 */

#include <cstdio>
#include <cstdlib>

#include "core/executor.hh"
#include "egraph/egraph.hh"
#include "workloads/workloads.hh"

using namespace infs;

int
main(int argc, char **argv)
{
    const Coord side = argc > 1 ? std::atol(argv[1]) : 512;

    // --- The optimizer at work: conv2d's symmetric 3x3 kernel.
    TdfgGraph g(2, "blur3x3");
    HyperRect inner = HyperRect::box2(1, side - 1, 1, side - 1);
    NodeId acc = invalidNode;
    for (Coord dj = -1; dj <= 1; ++dj)
        for (Coord di = -1; di <= 1; ++di) {
            NodeId t = g.tensor(0, inner.shifted(0, di).shifted(1, dj));
            NodeId aligned = t;
            if (di != 0)
                aligned = g.move(aligned, 0, -di);
            if (dj != 0)
                aligned = g.move(aligned, 1, -dj);
            int taps = (di != 0) + (dj != 0);
            double wgt = taps == 2 ? 0.0625 : taps == 1 ? 0.125 : 0.25;
            NodeId term = g.compute(BitOp::Mul,
                                    {aligned, g.constant(wgt)});
            acc = acc == invalidNode ? term
                                     : g.compute(BitOp::Add, {acc, term});
        }
    g.output(acc, 1);

    auto countMuls = [](const TdfgGraph &gr) {
        unsigned n = 0;
        for (const TdfgNode &nd : gr.nodes())
            n += (nd.kind == TdfgKind::Compute && nd.fn == BitOp::Mul);
        return n;
    };
    TdfgOptimizer opt;
    ExtractionResult res = opt.optimize(g);
    std::printf("blur3x3: %u multiplies before, %u after equality "
                "saturation (%u rewrites, %u rounds)\n",
                countMuls(g), countMuls(res.graph), opt.rewritesApplied(),
                opt.iterationsRun());

    // --- End-to-end: blur then wavelet on the simulated machine.
    for (const char *stage : {"conv2d", "dwt2d"}) {
        Workload w = stage[0] == 'c' ? makeConv2d(side, side)
                                     : makeDwt2d(side, side);
        std::printf("\n%s (%lld x %lld):\n", stage, (long long)side,
                    (long long)side);
        double base = 0.0;
        for (Paradigm p :
             {Paradigm::Base, Paradigm::NearL3, Paradigm::InfS}) {
            InfinitySystem sys;
            ExecStats st = Executor(sys, p).run(w);
            if (p == Paradigm::Base)
                base = double(st.cycles);
            std::printf("  %-8s %10llu cycles (%.2fx), tile ",
                        paradigmName(p),
                        static_cast<unsigned long long>(st.cycles),
                        base / double(st.cycles));
            if (st.chosenTile.empty())
                std::printf("n/a");
            for (Coord t : st.chosenTile)
                std::printf("%lld ", (long long)t);
            std::printf("\n");
        }
    }
    return 0;
}
