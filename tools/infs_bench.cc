/**
 * @file
 * infs-bench: one CLI driving the seed-workload registry through the
 * timing executor and a selectable execution backend, emitting a stable
 * JSON schema for CI regression gating (scripts/bench_diff.py).
 *
 * Per workload it reports:
 *  - wall_ms        host wall-clock for the timed section (exec + backend)
 *  - exec_wall_ms   Executor timing-model run
 *  - fabric_wall_ms backend job passes (bit-accurate when --backend fabric)
 *  - sim_cycles     simulated cycles (deterministic; the CI gate)
 *  - backend_sim_cycles  cycle replay of the job (fabric/timing backends)
 *  - jit_ticks      modeled JIT lowering time
 *  - noc_hop_bytes  total NoC traffic (bytes x hops over all classes)
 *  - checksum       FNV-1a over the job output bit patterns
 *  - speedup_vs_1t  wall-clock speedup vs a --threads 1 rerun
 *
 * Simulated quantities are identical for any --threads value; only the
 * wall-clock fields change (DESIGN.md §10). The functional backend's
 * checksums are byte-identical to the fabric's (DESIGN.md §12), so
 * per-PR CI runs it for speed while nightly re-runs the fabric.
 *
 * Exit status: 0 success, 2 usage error (unknown scenario or backend
 * names fail upfront, before anything runs).
 */

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/backend.hh"
#include "core/executor.hh"
#include "egraph/egraph.hh"
#include "uarch/system.hh"
#include "workloads/registry.hh"

namespace {

using namespace infs;

/**
 * Optimization-stack switches for one measurement (the `--ablate`
 * harness, DESIGN.md §13). The defaults mirror production: command
 * optimizer on, e-graph off (floating-point reassociation changes bits,
 * so it stays opt-in), memoization on.
 */
struct Knobs {
    bool cmdOpt = true;      ///< SystemConfig::cmdOpt.
    bool syncElision = true; ///< SystemConfig::cmdOptSyncElision.
    bool memo = true;        ///< Phase::sameTdfgEachIter left as authored.
    bool egraph = false;     ///< TdfgOptimizer on every built graph.
};

/** One ablation measurement: the deterministic signals only. */
struct AblationRow {
    std::string variant;
    std::uint64_t simCycles = 0;
    std::uint64_t jobSimCycles = 0;
    std::uint64_t jitTicks = 0;
    std::uint64_t checksum = 0;
    unsigned commands = 0; ///< Optimized job command count (0 = no job).
    CmdStats cmd;
};

/** Per-workload measurement row (medians over the timed repeats). */
struct Row {
    std::string name;
    double wallMs = 0.0;
    double wallMsMin = 0.0;
    double wallMsMax = 0.0;
    double execWallMs = 0.0;
    double fabricWallMs = 0.0;
    double fabricWallMsMin = 0.0;
    double fabricWallMsMax = 0.0;
    std::uint64_t simCycles = 0;
    std::uint64_t backendSimCycles = 0; ///< Job cycle replay (0 = none).
    std::uint64_t jobSimCycles = 0;     ///< Job timing replay (0 = none).
    std::uint64_t jitTicks = 0;
    double nocHopBytes = 0.0;
    std::uint64_t checksum = 0;
    double speedup = 1.0;
    unsigned commands = 0; ///< Job command count after optimization.
    CmdStats cmd; ///< Command-optimizer counters (exec run + job pass).
    FabricStats fabric; ///< Per-command-kind breakdown (fabric backend).
    SimdIsa simdIsa = SimdIsa::Portable; ///< Resolved SIMD kernel table.
    unsigned numaNodes = 1;    ///< NUMA nodes the pool pins across.
    int scheduleId = -1;       ///< Fat-binary pick (-1 = single schedule).
    unsigned scheduleCandidates = 0; ///< Candidates the dispatcher saw.
    std::vector<AblationRow> ablation; ///< Filled in --ablate mode.
};

/**
 * Apply the graph-level knobs to a freshly built workload. The config
 * knobs (cmdOpt, syncElision) apply in benchOne instead.
 */
void
applyKnobs(Workload &w, const Knobs &k)
{
    for (Phase &p : w.phases) {
        if (!k.memo)
            p.sameTdfgEachIter = false; // Defeat memoization: re-lower.
        if (k.egraph && p.buildTdfg) {
            auto build = p.buildTdfg;
            p.buildTdfg = [build](std::uint64_t it) {
                TdfgGraph g = build(it);
                TdfgOptimizer opt;
                if (auto res = opt.tryOptimize(g))
                    return std::move(res->graph);
                return g; // Saturation budget blown: keep the raw graph.
            };
        }
    }
}

/** Lower median of a non-empty sample (deterministic for even sizes). */
double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    return v[(v.size() - 1) / 2];
}

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Cap on lattice volume for the per-scenario job pass: bit-serial
 * simulation is O(volume x bits) per command, so paper-scale workloads
 * would take minutes on the fabric backend. Scenarios above the cap skip
 * the job pass (checksum falls back to the functional store hash). */
constexpr std::int64_t kJobVolumeCap = 1 << 18;

/**
 * One full measurement of a workload at a given thread count: one untimed
 * warmup iteration, then @p repeat timed iterations whose lower medians
 * (and min/max) populate the row. Simulated quantities and the checksum
 * are identical every iteration by construction — verified here.
 */
Row
benchOne(const BenchScenario &sc, bool quick, unsigned threads,
         unsigned repeat, ExecBackendKind backend, SimdIsa simd,
         const Knobs &knobs = {})
{
    // Full runtime behavior: preparation, JIT, Eq. 2 adaptivity all
    // included (assumeTransposed stays at the factory default).
    Workload w = quick ? sc.quick() : sc.full();
    applyKnobs(w, knobs);
    SystemConfig cfg = testSystemConfig();
    cfg.hostThreads = threads;
    cfg.backend = backend;
    cfg.simd = simd;
    cfg.cmdOpt = knobs.cmdOpt;
    cfg.cmdOptSyncElision = knobs.syncElision;

    Row row;
    row.name = sc.name;

    std::vector<double> execMs, backendMs, wallMs;
    for (unsigned r = 0; r <= repeat; ++r) {
        // Fresh system per iteration: persistent state (the JIT memo)
        // must not make later repeats cheaper than the first.
        InfinitySystem sys(cfg);
        auto t0 = std::chrono::steady_clock::now();
        ExecStats st = Executor(sys, Paradigm::InfS).run(w);
        const double exec_ms = msSince(t0);

        // Per-scenario job pass on the selected backend: the first
        // primary-layout phase lowered and executed on deterministic
        // inputs (bit-accurate when the backend produces bits).
        BackendResult br;
        double backend_ms = 0.0;
        auto job = planPrimaryJob(w, cfg, &sys.pool(), kJobVolumeCap);
        if (job) {
            auto bt0 = std::chrono::steady_clock::now();
            auto be = makeBackend(backend, cfg);
            be->setThreadPool(&sys.pool());
            br = be->runJob(*job);
            backend_ms = msSince(bt0);
            // The job pass's fabric-side cache counters ride along in
            // ExecStats (schema v5); the timing walk alone has no fabric.
            st.maskCacheHits = br.fabric.maskCacheHits;
            st.maskCacheMisses = br.fabric.maskCacheMisses;
            st.scratchAllocs = br.fabric.scratchAllocs;
        }

        if (r == 0) {
            // Warmup: record the deterministic quantities, discard time.
            row.simdIsa = st.simdIsa;
            row.numaNodes = st.numaNodes;
            row.scheduleId = st.scheduleId;
            row.scheduleCandidates = st.scheduleCandidates;
            row.simCycles = static_cast<std::uint64_t>(st.cycles);
            row.backendSimCycles =
                static_cast<std::uint64_t>(br.simCycles);
            row.jitTicks = static_cast<std::uint64_t>(st.jitCycles);
            for (double v : st.nocHopBytes)
                row.nocHopBytes += v;
            row.checksum = br.checksum;
            // Command-optimizer observability: the executor run's
            // counters plus the job program's own, and a command-level
            // cycle replay of the job (backend-independent, so the
            // cmdopt effect on the stream is visible even when the
            // executor routes the scenario off the fabric).
            row.cmd = sys.jit().stats().cmd;
            if (job) {
                row.cmd.accumulate(job->prog->opt);
                row.commands =
                    static_cast<unsigned>(job->prog->commands.size());
                row.jobSimCycles = static_cast<std::uint64_t>(
                    replayTiming(cfg, *job, &sys.pool()).simCycles);
            }
            continue;
        }
        if (br.checksum != row.checksum ||
            static_cast<std::uint64_t>(st.cycles) != row.simCycles ||
            static_cast<std::uint64_t>(br.simCycles) !=
                row.backendSimCycles) {
            std::fprintf(stderr,
                         "%s: non-deterministic repeat (checksum or "
                         "sim_cycles changed)\n",
                         sc.name);
            std::exit(1);
        }
        execMs.push_back(exec_ms);
        backendMs.push_back(backend_ms);
        wallMs.push_back(exec_ms + backend_ms);
        row.fabric = br.fabric;
    }

    row.execWallMs = median(execMs);
    row.fabricWallMs = median(backendMs);
    row.fabricWallMsMin =
        *std::min_element(backendMs.begin(), backendMs.end());
    row.fabricWallMsMax =
        *std::max_element(backendMs.begin(), backendMs.end());
    row.wallMs = median(wallMs);
    row.wallMsMin = *std::min_element(wallMs.begin(), wallMs.end());
    row.wallMsMax = *std::max_element(wallMs.begin(), wallMs.end());

    if (row.checksum == 0) {
        // No job pass covered this scenario (near-memory-only result,
        // untileable layout, over the volume cap, or a timing-only
        // backend): hash the executor's functional output arrays instead
        // so every scenario carries a deterministic signal. Untimed —
        // functional mode is not the measured path.
        InfinitySystem sys(cfg);
        ArrayStore store;
        Executor(sys, Paradigm::InfS).run(w, &store);
        std::uint64_t h = 0xcbf29ce484222325ull;
        for (std::size_t id = 0; id < store.size(); ++id)
            for (float v : store.data(static_cast<ArrayId>(id)))
                h = fnv1aWord(h, std::bit_cast<std::uint32_t>(v));
        row.checksum = h;
    }
    return row;
}

void
writeCmdStats(std::FILE *f, const char *indent, const CmdStats &c,
              bool trailing_comma)
{
    std::fprintf(f,
                 "%s\"cmd_stats\": {\"fused_moves\": %u, "
                 "\"deduped_broadcasts\": %u, \"deduped_commands\": %u, "
                 "\"hoisted_masks\": %u, \"elided_syncs\": %u, "
                 "\"bailouts\": %u}%s\n",
                 indent, c.fusedMoves, c.dedupedBroadcasts,
                 c.dedupedCommands, c.hoistedMasks, c.elidedSyncs,
                 c.bailouts, trailing_comma ? "," : "");
}

void
writeJson(std::FILE *f, const std::vector<Row> &rows, bool quick,
          unsigned threads, unsigned repeat, ExecBackendKind backend,
          const Knobs &knobs)
{
    // Host-level dispatch facts: identical across rows (one process, one
    // resolved kernel table), so they live at the top level.
    const SimdIsa isa =
        rows.empty() ? SimdIsa::Portable : rows.front().simdIsa;
    const unsigned numa_nodes =
        rows.empty() ? 1u : rows.front().numaNodes;
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": \"infs-bench-v5\",\n");
    std::fprintf(f, "  \"backend\": \"%s\",\n", backendName(backend));
    std::fprintf(f, "  \"simd_isa\": \"%s\",\n", simdIsaName(isa));
    std::fprintf(f, "  \"numa_nodes\": %u,\n", numa_nodes);
    std::fprintf(f, "  \"mode\": \"%s\",\n", quick ? "quick" : "full");
    std::fprintf(f, "  \"threads\": %u,\n", threads);
    std::fprintf(f, "  \"repeat\": %u,\n", repeat);
    std::fprintf(f, "  \"cmdopt\": %s,\n",
                 knobs.cmdOpt ? "true" : "false");
    std::fprintf(f, "  \"workloads\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(f, "    {\n");
        std::fprintf(f, "      \"name\": \"%s\",\n", r.name.c_str());
        std::fprintf(f, "      \"wall_ms\": %.3f,\n", r.wallMs);
        std::fprintf(f, "      \"wall_ms_min\": %.3f,\n", r.wallMsMin);
        std::fprintf(f, "      \"wall_ms_max\": %.3f,\n", r.wallMsMax);
        std::fprintf(f, "      \"exec_wall_ms\": %.3f,\n", r.execWallMs);
        std::fprintf(f, "      \"fabric_wall_ms\": %.3f,\n",
                     r.fabricWallMs);
        std::fprintf(f, "      \"fabric_wall_ms_min\": %.3f,\n",
                     r.fabricWallMsMin);
        std::fprintf(f, "      \"fabric_wall_ms_max\": %.3f,\n",
                     r.fabricWallMsMax);
        std::fprintf(f, "      \"sim_cycles\": %llu,\n",
                     static_cast<unsigned long long>(r.simCycles));
        std::fprintf(f, "      \"backend_sim_cycles\": %llu,\n",
                     static_cast<unsigned long long>(r.backendSimCycles));
        std::fprintf(f, "      \"job_sim_cycles\": %llu,\n",
                     static_cast<unsigned long long>(r.jobSimCycles));
        std::fprintf(f, "      \"commands\": %u,\n", r.commands);
        std::fprintf(f, "      \"schedule_id\": %d,\n", r.scheduleId);
        std::fprintf(f, "      \"schedule_candidates\": %u,\n",
                     r.scheduleCandidates);
        writeCmdStats(f, "      ", r.cmd, true);
        std::fprintf(f, "      \"jit_ticks\": %llu,\n",
                     static_cast<unsigned long long>(r.jitTicks));
        std::fprintf(f, "      \"noc_hop_bytes\": %.1f,\n", r.nocHopBytes);
        std::fprintf(f, "      \"checksum\": \"0x%016llx\",\n",
                     static_cast<unsigned long long>(r.checksum));
        std::fprintf(f, "      \"fabric_breakdown\": {\n");
        for (std::size_t k = 0; k < r.fabric.byKind.size(); ++k) {
            std::fprintf(
                f, "        \"%s\": {\"count\": %llu, \"wall_ms\": %.3f},\n",
                cmdKindName(static_cast<CmdKind>(k)),
                static_cast<unsigned long long>(r.fabric.byKind[k].count),
                r.fabric.byKind[k].wallMs);
        }
        std::fprintf(f, "        \"mask_cache_hits\": %llu,\n",
                     static_cast<unsigned long long>(
                         r.fabric.maskCacheHits));
        std::fprintf(f, "        \"mask_cache_misses\": %llu,\n",
                     static_cast<unsigned long long>(
                         r.fabric.maskCacheMisses));
        std::fprintf(f, "        \"scratch_allocs\": %llu,\n",
                     static_cast<unsigned long long>(
                         r.fabric.scratchAllocs));
        std::fprintf(f, "        \"bank_occupancy_imbalance\": %.4f\n",
                     r.fabric.occupancyImbalance());
        std::fprintf(f, "      },\n");
        if (!r.ablation.empty()) {
            std::fprintf(f, "      \"ablation\": [\n");
            for (std::size_t a = 0; a < r.ablation.size(); ++a) {
                const AblationRow &ab = r.ablation[a];
                std::fprintf(f, "        {\n");
                std::fprintf(f, "          \"variant\": \"%s\",\n",
                             ab.variant.c_str());
                std::fprintf(
                    f, "          \"sim_cycles\": %llu,\n",
                    static_cast<unsigned long long>(ab.simCycles));
                std::fprintf(
                    f, "          \"job_sim_cycles\": %llu,\n",
                    static_cast<unsigned long long>(ab.jobSimCycles));
                std::fprintf(
                    f, "          \"jit_ticks\": %llu,\n",
                    static_cast<unsigned long long>(ab.jitTicks));
                std::fprintf(f, "          \"commands\": %u,\n",
                             ab.commands);
                std::fprintf(
                    f, "          \"checksum\": \"0x%016llx\",\n",
                    static_cast<unsigned long long>(ab.checksum));
                writeCmdStats(f, "          ", ab.cmd, false);
                std::fprintf(f, "        }%s\n",
                             a + 1 < r.ablation.size() ? "," : "");
            }
            std::fprintf(f, "      ],\n");
        }
        std::fprintf(f, "      \"speedup_vs_1t\": %.3f\n", r.speedup);
        std::fprintf(f, "    }%s\n", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--quick|--full] [--backend fabric|functional|timing]\n"
        "       [--simd auto|off|portable|avx2|neon] [--threads N]\n"
        "       [--repeat N] [--json out.json]\n"
        "       [--no-cmdopt] [--ablate] [--list-scenarios] "
        "[workload...]\n"
        "Benchmark the seed workloads; default --quick over the whole "
        "registry.\n"
        "--no-cmdopt disables the lowered-command optimizer "
        "(SystemConfig::cmdOpt).\n"
        "--ablate adds per-scenario rows for the optimization stack "
        "(cmdopt,\n"
        "  sync elision, JIT memoization off; e-graph on) to the JSON "
        "output.\n"
        "--backend selects the execution backend for the per-scenario job "
        "pass\n"
        "  (default fabric; functional is bit-identical and faster, "
        "timing is\n"
        "  cycles-only). Unknown scenario or backend names exit 2 before "
        "running.\n"
        "--simd pins the bitserial SIMD kernel table (default auto = "
        "detect;\n"
        "  every value is bit-identical — off also disables the blocked "
        "fp path).\n"
        "  Unknown values exit 2 before running.\n"
        "--threads 0 uses all hardware threads; simulated results are "
        "identical for any value.\n"
        "--repeat N (default 3) runs N timed iterations after one "
        "untimed warmup and reports medians plus min/max.\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = true;
    unsigned threads = 0;
    unsigned repeat = 3;
    bool ablate = false;
    Knobs knobs;
    ExecBackendKind backend = ExecBackendKind::Fabric;
    SimdIsa simd = SimdIsa::Auto;
    std::string json_path;
    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--full") {
            quick = false;
        } else if (arg == "--no-cmdopt") {
            knobs.cmdOpt = false;
        } else if (arg == "--ablate") {
            ablate = true;
        } else if (arg == "--backend" && i + 1 < argc) {
            const std::string name = argv[++i];
            if (!parseBackendName(name, backend)) {
                std::fprintf(stderr, "unknown backend '%s'\n",
                             name.c_str());
                return usage(argv[0]);
            }
        } else if (arg == "--simd" && i + 1 < argc) {
            const std::string name = argv[++i];
            if (!parseSimdIsaName(name, simd)) {
                std::fprintf(stderr, "unknown simd isa '%s'\n",
                             name.c_str());
                return usage(argv[0]);
            }
        } else if (arg == "--threads" && i + 1 < argc) {
            threads = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg == "--repeat" && i + 1 < argc) {
            repeat = static_cast<unsigned>(std::atoi(argv[++i]));
            if (repeat == 0)
                repeat = 1;
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--list-scenarios" || arg == "--list") {
            for (const BenchScenario &sc : benchRegistry())
                std::printf("%s\n", sc.name);
            return 0;
        } else if (arg.rfind("-", 0) == 0) {
            return usage(argv[0]);
        } else {
            names.push_back(arg);
        }
    }

    // Fail loudly BEFORE running anything: a typo'd scenario must not
    // silently bench nothing (CI would gate on an empty row set).
    for (const std::string &name : names) {
        if (findScenario(name) == nullptr) {
            std::fprintf(stderr,
                         "unknown scenario '%s'; --list-scenarios shows "
                         "the registry\n",
                         name.c_str());
            return usage(argv[0]);
        }
    }

    std::printf("backend: %s\n", backendName(backend));
    std::vector<Row> rows;
    for (const BenchScenario &sc : benchRegistry()) {
        if (!names.empty() &&
            std::find(names.begin(), names.end(), sc.name) == names.end())
            continue;
        Row row = benchOne(sc, quick, threads, repeat, backend, simd,
                           knobs);
        if (threads != 1) {
            // Wall-clock baseline for the speedup column; simulated
            // results are identical by construction.
            Row base =
                benchOne(sc, quick, 1, repeat, backend, simd, knobs);
            if (row.wallMs > 0.0)
                row.speedup = base.wallMs / row.wallMs;
        }
        if (ablate) {
            // The deterministic signals of each optimization-stack
            // variant, one untimed repeat each. "base" restates the main
            // row so a consumer can diff within the array alone.
            struct Variant {
                const char *name;
                Knobs k;
            };
            Knobs base = knobs;
            Knobs no_cmdopt = knobs, no_elision = knobs, no_memo = knobs,
                  egraph_on = knobs;
            no_cmdopt.cmdOpt = false;
            no_elision.syncElision = false;
            no_memo.memo = false;
            egraph_on.egraph = true;
            const Variant variants[] = {{"base", base},
                                        {"cmdopt_off", no_cmdopt},
                                        {"sync_elision_off", no_elision},
                                        {"memo_off", no_memo},
                                        {"egraph_on", egraph_on}};
            for (const Variant &v : variants) {
                Row r =
                    benchOne(sc, quick, threads, 1, backend, simd, v.k);
                AblationRow ab;
                ab.variant = v.name;
                ab.simCycles = r.simCycles;
                ab.jobSimCycles = r.jobSimCycles;
                ab.jitTicks = r.jitTicks;
                ab.checksum = r.checksum;
                ab.commands = r.commands;
                ab.cmd = r.cmd;
                row.ablation.push_back(std::move(ab));
            }
        }
        std::printf("%-18s wall %8.2f ms  (exec %7.2f + backend %7.2f)  "
                    "cycles %12llu  jit %8llu  speedup %5.2fx\n",
                    row.name.c_str(), row.wallMs, row.execWallMs,
                    row.fabricWallMs,
                    static_cast<unsigned long long>(row.simCycles),
                    static_cast<unsigned long long>(row.jitTicks),
                    row.speedup);
        rows.push_back(std::move(row));
    }

    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         json_path.c_str());
            return 2;
        }
        writeJson(f, rows, quick, threads, repeat, backend, knobs);
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
