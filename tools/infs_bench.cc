/**
 * @file
 * infs-bench: one CLI driving the seed-workload registry through the
 * timing executor and the bit-accurate fabric, emitting a stable JSON
 * schema for CI regression gating (scripts/bench_diff.py).
 *
 * Per workload it reports:
 *  - wall_ms        host wall-clock for the timed section (exec + fabric)
 *  - exec_wall_ms   Executor timing-model run
 *  - fabric_wall_ms bit-accurate fabric passes (the bank-parallel meat)
 *  - sim_cycles     simulated cycles (deterministic; the CI gate)
 *  - jit_ticks      modeled JIT lowering time
 *  - noc_hop_bytes  total NoC traffic (bytes x hops over all classes)
 *  - checksum       FNV-1a over the fabric output bit patterns
 *  - speedup_vs_1t  wall-clock speedup vs a --threads 1 rerun
 *
 * Simulated quantities are identical for any --threads value; only the
 * wall-clock fields change (DESIGN.md §10).
 *
 * Exit status: 0 success, 2 usage error.
 */

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/executor.hh"
#include "jit/jit.hh"
#include "mem/address_map.hh"
#include "sim/rng.hh"
#include "uarch/bit_exec.hh"
#include "uarch/system.hh"
#include "workloads/pointnet.hh"
#include "workloads/workloads.hh"

namespace {

using namespace infs;

struct Scenario {
    const char *name;
    std::function<Workload()> quick; ///< Tier-1 sizes (CI smoke).
    std::function<Workload()> full;  ///< Larger sizes for real timing.
};

/** The 17 seed scenarios, quick sizes matching infs-verify's tier-1
 * registry. */
const std::vector<Scenario> &
registry()
{
    static const std::vector<Scenario> entries = {
        {"vec_add", [] { return makeVecAdd(512); },
         [] { return makeVecAdd(1 << 18); }},
        {"array_sum", [] { return makeArraySum(1000); },
         [] { return makeArraySum(1 << 18); }},
        {"stencil1d", [] { return makeStencil1d(256, 4); },
         [] { return makeStencil1d(1 << 16, 8); }},
        {"stencil2d", [] { return makeStencil2d(32, 24, 3); },
         [] { return makeStencil2d(256, 256, 6); }},
        {"stencil3d", [] { return makeStencil3d(16, 12, 8, 2); },
         [] { return makeStencil3d(64, 64, 32, 4); }},
        {"dwt2d", [] { return makeDwt2d(32, 32); },
         [] { return makeDwt2d(256, 256); }},
        {"gauss_elim", [] { return makeGaussElim(24); },
         [] { return makeGaussElim(96); }},
        {"conv2d", [] { return makeConv2d(24, 20); },
         [] { return makeConv2d(128, 128); }},
        {"conv3d", [] { return makeConv3d(10, 8, 4, 3); },
         [] { return makeConv3d(32, 32, 8, 8); }},
        {"mm_outer", [] { return makeMm(12, 16, 8, true); },
         [] { return makeMm(64, 64, 64, true); }},
        {"mm_inner", [] { return makeMm(12, 16, 8, false); },
         [] { return makeMm(64, 64, 64, false); }},
        {"kmeans_outer", [] { return makeKmeans(64, 8, 4, true); },
         [] { return makeKmeans(1024, 16, 8, true); }},
        {"kmeans_inner", [] { return makeKmeans(64, 8, 4, false); },
         [] { return makeKmeans(1024, 16, 8, false); }},
        {"gather_mlp_outer",
         [] { return makeGatherMlp(24, 8, 6, 40, true); },
         [] { return makeGatherMlp(128, 32, 24, 256, true); }},
        {"gather_mlp_inner",
         [] { return makeGatherMlp(24, 8, 6, 40, false); },
         [] { return makeGatherMlp(128, 32, 24, 256, false); }},
        {"pointnet_ssg", [] { return makePointNetSSG(128); },
         [] { return makePointNetSSG(512); }},
        {"pointnet_msg", [] { return makePointNetMSG(64); },
         [] { return makePointNetMSG(256); }},
    };
    return entries;
}

/** Per-workload measurement row (medians over the timed repeats). */
struct Row {
    std::string name;
    double wallMs = 0.0;
    double wallMsMin = 0.0;
    double wallMsMax = 0.0;
    double execWallMs = 0.0;
    double fabricWallMs = 0.0;
    double fabricWallMsMin = 0.0;
    double fabricWallMsMax = 0.0;
    std::uint64_t simCycles = 0;
    std::uint64_t jitTicks = 0;
    double nocHopBytes = 0.0;
    std::uint64_t checksum = 0;
    double speedup = 1.0;
    FabricStats fabric; ///< Per-command-kind breakdown (last repeat).
};

/** Lower median of a non-empty sample (deterministic for even sizes). */
double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    return v[(v.size() - 1) / 2];
}

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

std::uint64_t
fnv1a(std::uint64_t h, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Cap on lattice volume for the fabric pass: bit-serial simulation is
 * O(volume x bits) per command, so paper-scale workloads would take
 * minutes. Scenarios above the cap skip the fabric pass (checksum 0). */
constexpr std::int64_t kFabricVolumeCap = 1 << 18;

/**
 * Bit-accurate fabric pass: lower the workload's first primary-layout
 * tensor phase and execute it on real bitlines with the system pool
 * attached — this is where --threads buys bank-parallel wall time.
 * Deterministic inputs, deterministic checksum.
 */
double
fabricPass(const Workload &w, const SystemConfig &cfg, ThreadPool *pool,
           std::uint64_t &checksum, FabricStats &stats)
{
    LayoutHints hints;
    bool have_tdfg = false;
    for (const Phase &p : w.phases) {
        if (!p.buildTdfg)
            continue;
        LayoutHints h = LayoutHints::fromGraph(p.buildTdfg(0));
        hints.shiftDims.insert(h.shiftDims.begin(), h.shiftDims.end());
        hints.broadcastDims.insert(h.broadcastDims.begin(),
                                   h.broadcastDims.end());
        if (h.reduceDim)
            hints.reduceDim = h.reduceDim;
        have_tdfg = true;
    }
    if (!have_tdfg)
        return 0.0;
    TilingPolicy policy(cfg.l3);
    TileDecision tile = policy.choose(w.primaryShape, w.elemBytes, hints);
    if (!tile.valid)
        return 0.0;
    auto made = TiledLayout::make(w.primaryShape, tile.tile);
    if (!made)
        return 0.0;
    TiledLayout layout = std::move(*made);
    std::int64_t volume = 1;
    for (Coord s : layout.shape())
        volume *= s;
    if (volume > kFabricVolumeCap)
        return 0.0;

    AddressMap map(cfg.l3, cfg.noc.memCtrls);
    JitCompiler jit(cfg);
    jit.setThreadPool(pool);
    for (const Phase &p : w.phases) {
        if (!p.buildTdfg)
            continue;
        TdfgGraph g = p.buildTdfg(0);
        if (!p.latticeShape.empty() || g.dims() != layout.dims())
            continue; // Primary-layout phases only.
        auto prog_or = jit.tryLower(g, layout, map);
        if (!prog_or)
            continue;
        const InMemProgram &prog = **prog_or;

        const auto vol = static_cast<std::size_t>(volume);
        BitAccurateFabric fab(layout);
        fab.setThreadPool(pool);
        const auto t0 = std::chrono::steady_clock::now();
        for (const auto &[id, wl] : prog.arraySlots) {
            std::vector<float> data(vol);
            Rng rng(static_cast<std::uint64_t>(id) + 101);
            for (auto &v : data)
                v = rng.nextFloat(-4, 4);
            fab.loadArray(data, wl);
        }
        fab.execute(prog);
        std::uint64_t h = 0xcbf29ce484222325ull;
        std::vector<float> out(vol);
        for (const auto &[id, wl] : prog.outputSlots) {
            fab.storeArray(out, wl);
            for (float v : out)
                h = fnv1a(h, std::bit_cast<std::uint32_t>(v));
        }
        checksum = h;
        stats = fab.stats();
        return msSince(t0);
    }
    return 0.0;
}

/**
 * One full measurement of a workload at a given thread count: one untimed
 * warmup iteration, then @p repeat timed iterations whose lower medians
 * (and min/max) populate the row. Simulated quantities and the checksum
 * are identical every iteration by construction — verified here.
 */
Row
benchOne(const Scenario &sc, bool quick, unsigned threads, unsigned repeat)
{
    // Full runtime behavior: preparation, JIT, Eq. 2 adaptivity all
    // included (assumeTransposed stays at the factory default).
    Workload w = quick ? sc.quick() : sc.full();
    SystemConfig cfg = testSystemConfig();
    cfg.hostThreads = threads;

    Row row;
    row.name = sc.name;

    std::vector<double> execMs, fabricMs, wallMs;
    for (unsigned r = 0; r <= repeat; ++r) {
        // Fresh system per iteration: persistent state (the JIT memo)
        // must not make later repeats cheaper than the first.
        InfinitySystem sys(cfg);
        auto t0 = std::chrono::steady_clock::now();
        ExecStats st = Executor(sys, Paradigm::InfS).run(w);
        const double exec_ms = msSince(t0);

        std::uint64_t checksum = 0;
        FabricStats fs;
        const double fabric_ms =
            fabricPass(w, cfg, &sys.pool(), checksum, fs);

        if (r == 0) {
            // Warmup: record the deterministic quantities, discard time.
            row.simCycles = static_cast<std::uint64_t>(st.cycles);
            row.jitTicks = static_cast<std::uint64_t>(st.jitCycles);
            for (double v : st.nocHopBytes)
                row.nocHopBytes += v;
            row.checksum = checksum;
            continue;
        }
        if (checksum != row.checksum ||
            static_cast<std::uint64_t>(st.cycles) != row.simCycles) {
            std::fprintf(stderr,
                         "%s: non-deterministic repeat (checksum or "
                         "sim_cycles changed)\n",
                         sc.name);
            std::exit(1);
        }
        execMs.push_back(exec_ms);
        fabricMs.push_back(fabric_ms);
        wallMs.push_back(exec_ms + fabric_ms);
        row.fabric = fs;
    }

    row.execWallMs = median(execMs);
    row.fabricWallMs = median(fabricMs);
    row.fabricWallMsMin = *std::min_element(fabricMs.begin(), fabricMs.end());
    row.fabricWallMsMax = *std::max_element(fabricMs.begin(), fabricMs.end());
    row.wallMs = median(wallMs);
    row.wallMsMin = *std::min_element(wallMs.begin(), wallMs.end());
    row.wallMsMax = *std::max_element(wallMs.begin(), wallMs.end());

    if (row.checksum == 0) {
        // No fabric pass covered this scenario (near-memory-only result
        // or untileable layout): hash the executor's functional output
        // arrays instead so every scenario carries a bit-exactness
        // signal. Untimed — functional mode is not the measured path.
        InfinitySystem sys(cfg);
        ArrayStore store;
        Executor(sys, Paradigm::InfS).run(w, &store);
        std::uint64_t h = 0xcbf29ce484222325ull;
        for (std::size_t id = 0; id < store.size(); ++id)
            for (float v : store.data(static_cast<ArrayId>(id)))
                h = fnv1a(h, std::bit_cast<std::uint32_t>(v));
        row.checksum = h;
    }
    return row;
}

void
writeJson(std::FILE *f, const std::vector<Row> &rows, bool quick,
          unsigned threads, unsigned repeat)
{
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": \"infs-bench-v2\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", quick ? "quick" : "full");
    std::fprintf(f, "  \"threads\": %u,\n", threads);
    std::fprintf(f, "  \"repeat\": %u,\n", repeat);
    std::fprintf(f, "  \"workloads\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(f, "    {\n");
        std::fprintf(f, "      \"name\": \"%s\",\n", r.name.c_str());
        std::fprintf(f, "      \"wall_ms\": %.3f,\n", r.wallMs);
        std::fprintf(f, "      \"wall_ms_min\": %.3f,\n", r.wallMsMin);
        std::fprintf(f, "      \"wall_ms_max\": %.3f,\n", r.wallMsMax);
        std::fprintf(f, "      \"exec_wall_ms\": %.3f,\n", r.execWallMs);
        std::fprintf(f, "      \"fabric_wall_ms\": %.3f,\n",
                     r.fabricWallMs);
        std::fprintf(f, "      \"fabric_wall_ms_min\": %.3f,\n",
                     r.fabricWallMsMin);
        std::fprintf(f, "      \"fabric_wall_ms_max\": %.3f,\n",
                     r.fabricWallMsMax);
        std::fprintf(f, "      \"sim_cycles\": %llu,\n",
                     static_cast<unsigned long long>(r.simCycles));
        std::fprintf(f, "      \"jit_ticks\": %llu,\n",
                     static_cast<unsigned long long>(r.jitTicks));
        std::fprintf(f, "      \"noc_hop_bytes\": %.1f,\n", r.nocHopBytes);
        std::fprintf(f, "      \"checksum\": \"0x%016llx\",\n",
                     static_cast<unsigned long long>(r.checksum));
        std::fprintf(f, "      \"fabric_breakdown\": {\n");
        for (std::size_t k = 0; k < r.fabric.byKind.size(); ++k) {
            std::fprintf(
                f, "        \"%s\": {\"count\": %llu, \"wall_ms\": %.3f},\n",
                cmdKindName(static_cast<CmdKind>(k)),
                static_cast<unsigned long long>(r.fabric.byKind[k].count),
                r.fabric.byKind[k].wallMs);
        }
        std::fprintf(f, "        \"mask_cache_hits\": %llu,\n",
                     static_cast<unsigned long long>(
                         r.fabric.maskCacheHits));
        std::fprintf(f, "        \"mask_cache_misses\": %llu\n",
                     static_cast<unsigned long long>(
                         r.fabric.maskCacheMisses));
        std::fprintf(f, "      },\n");
        std::fprintf(f, "      \"speedup_vs_1t\": %.3f\n", r.speedup);
        std::fprintf(f, "    }%s\n", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
}

int
usage(const char *argv0)
{
    std::printf(
        "usage: %s [--quick|--full] [--threads N] [--repeat N] "
        "[--json out.json] [--list] [workload...]\n"
        "Benchmark the seed workloads; default --quick over the whole "
        "registry.\n"
        "--threads 0 uses all hardware threads; simulated results are "
        "identical for any value.\n"
        "--repeat N (default 3) runs N timed iterations after one "
        "untimed warmup and reports medians plus min/max.\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = true;
    unsigned threads = 0;
    unsigned repeat = 3;
    std::string json_path;
    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--full") {
            quick = false;
        } else if (arg == "--threads" && i + 1 < argc) {
            threads = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg == "--repeat" && i + 1 < argc) {
            repeat = static_cast<unsigned>(std::atoi(argv[++i]));
            if (repeat == 0)
                repeat = 1;
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--list") {
            for (const Scenario &sc : registry())
                std::printf("%s\n", sc.name);
            return 0;
        } else if (arg.rfind("-", 0) == 0) {
            return usage(argv[0]);
        } else {
            names.push_back(arg);
        }
    }

    std::vector<Row> rows;
    std::size_t matched = 0;
    for (const Scenario &sc : registry()) {
        if (!names.empty() &&
            std::find(names.begin(), names.end(), sc.name) == names.end())
            continue;
        ++matched;
        Row row = benchOne(sc, quick, threads, repeat);
        if (threads != 1) {
            // Wall-clock baseline for the speedup column; simulated
            // results are identical by construction.
            Row base = benchOne(sc, quick, 1, repeat);
            if (row.wallMs > 0.0)
                row.speedup = base.wallMs / row.wallMs;
        }
        std::printf("%-18s wall %8.2f ms  (exec %7.2f + fabric %7.2f)  "
                    "cycles %12llu  jit %8llu  speedup %5.2fx\n",
                    row.name.c_str(), row.wallMs, row.execWallMs,
                    row.fabricWallMs,
                    static_cast<unsigned long long>(row.simCycles),
                    static_cast<unsigned long long>(row.jitTicks),
                    row.speedup);
        rows.push_back(std::move(row));
    }
    if (!names.empty() && matched != names.size()) {
        std::printf("unknown workload name; --list shows the registry\n");
        return 2;
    }

    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (!f) {
            std::printf("cannot open %s for writing\n", json_path.c_str());
            return 2;
        }
        writeJson(f, rows, quick, threads, repeat);
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
