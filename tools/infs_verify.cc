/**
 * @file
 * infs-verify: run the static-analysis suite (DESIGN.md §9) over the seed
 * workloads from the command line. Level `graphs` verifies every phase's
 * tDFG as built and again after e-graph optimization; level `full`
 * additionally lowers each tDFG exactly as the executor would and runs
 * the command hazard analyzer over the result.
 *
 * With --backend=NAME the tool also executes each workload's primary
 * lowered job on the selected execution backend (DESIGN.md §12) and
 * prints its checksum and replay cycles — a quick dynamic cross-check on
 * top of the static analyses.
 *
 * Exit status: 0 all requested subjects verify clean, 1 diagnostics were
 * reported, 2 usage error (unknown workload or backend names fail
 * upfront, before anything runs).
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/verify_cmds.hh"
#include "analysis/verify_tdfg.hh"
#include "core/backend.hh"
#include "core/executor.hh"
#include "egraph/egraph.hh"
#include "jit/cmdopt.hh"
#include "jit/jit.hh"
#include "mem/address_map.hh"
#include "workloads/registry.hh"

namespace {

using namespace infs;

/**
 * Verify one workload: every tDFG phase, its optimized form, and (at
 * Full) the lowered command stream under the layout the executor would
 * choose. Returns the number of diagnostics reported.
 */
std::size_t
verifyWorkload(const Workload &w, VerifyLevel level, bool verbose,
               bool check_cmdopt)
{
    SystemConfig cfg = testSystemConfig();
    cfg.verifyLevel = level;
    // Lower the raw stream here; the command optimizer's output is
    // verified explicitly below so any diagnostic it introduces is
    // attributed to the optimizer, not to lowering.
    cfg.cmdOpt = false;
    std::size_t n_diags = 0;
    auto report = [&](const VerifyReport &rep, const std::string &subject) {
        if (rep.clean()) {
            if (verbose)
                std::printf("  %s: clean\n", subject.c_str());
            return;
        }
        n_diags += rep.size();
        std::printf("  %s\n", rep.str().c_str());
    };

    // Replicate the executor's layout choice (§4.1): hints from every
    // tensor phase, one primary layout for the region.
    LayoutHints hints;
    bool have_tdfg = false;
    for (const Phase &p : w.phases) {
        if (!p.buildTdfg)
            continue;
        LayoutHints h = LayoutHints::fromGraph(p.buildTdfg(0));
        hints.shiftDims.insert(h.shiftDims.begin(), h.shiftDims.end());
        hints.broadcastDims.insert(h.broadcastDims.begin(),
                                   h.broadcastDims.end());
        if (h.reduceDim)
            hints.reduceDim = h.reduceDim;
        have_tdfg = true;
    }
    if (!have_tdfg) {
        if (verbose)
            std::printf("  no tensor phases; nothing to verify\n");
        return 0;
    }
    TilingPolicy policy(cfg.l3);
    TileDecision tile = policy.choose(w.primaryShape, w.elemBytes, hints);
    TiledLayout layout;
    bool have_layout = false;
    if (tile.valid) {
        if (auto made = TiledLayout::make(w.primaryShape, tile.tile)) {
            layout = std::move(*made);
            have_layout = true;
        }
    }

    AddressMap map(cfg.l3, cfg.noc.memCtrls);
    JitCompiler jit(cfg);
    for (const Phase &p : w.phases) {
        if (!p.buildTdfg)
            continue;
        TdfgGraph g0 = p.buildTdfg(0);
        report(verifyTdfg(g0), "tdfg '" + g0.name() + "'");

        // After e-graph optimization the extracted graph must still
        // verify (tryOptimize re-checks internally; surface its report).
        TdfgOptimizer opt;
        Expected<ExtractionResult> opt_res = opt.tryOptimize(g0);
        if (!opt_res) {
            ++n_diags;
            std::printf("  tdfg '%s' optimized: %s\n", g0.name().c_str(),
                        opt_res.error().str().c_str());
        } else {
            report(verifyTdfg(opt_res->graph),
                   "tdfg '" + opt_res->graph.name() + "'");
        }

        if (level != VerifyLevel::Full)
            continue;

        // Phase-local layout exactly as the executor resolves it.
        const TiledLayout *use_layout = have_layout ? &layout : nullptr;
        TiledLayout phase_layout;
        if (!p.latticeShape.empty() || g0.dims() != layout.dims()) {
            std::vector<Coord> shape =
                p.latticeShape.empty() ? w.primaryShape : p.latticeShape;
            TileDecision td;
            if (shape.size() == g0.dims())
                td = policy.choose(shape, w.elemBytes,
                                   LayoutHints::fromGraph(g0));
            use_layout = nullptr;
            if (td.valid) {
                if (auto made = TiledLayout::make(shape, td.tile)) {
                    phase_layout = std::move(*made);
                    use_layout = &phase_layout;
                }
            }
        }
        if (use_layout == nullptr) {
            if (verbose)
                std::printf("  phase '%s': no in-memory layout; the "
                            "executor would not lower it\n",
                            p.name.c_str());
            continue;
        }
        auto prog_or = jit.tryLower(g0, *use_layout, map);
        if (!prog_or) {
            // A lowering refusal degrades at runtime; it is not a
            // hazard, so report it only for visibility.
            if (verbose)
                std::printf("  phase '%s': not lowerable (%s)\n",
                            p.name.c_str(),
                            prog_or.error().str().c_str());
            continue;
        }
        report(verifyCommands(**prog_or, *use_layout, map, cfg),
               "phase '" + p.name + "' commands");

        // The optimizer must preserve hazard-freedom: rerun the full
        // analyzer over the optimized form of the same stream.
        if (check_cmdopt) {
            InMemProgram opt_prog = **prog_or;
            optimizeCommands(opt_prog, *use_layout, map, cfg);
            report(verifyCommands(opt_prog, *use_layout, map, cfg),
                   "phase '" + p.name + "' optimized commands");
        }
    }
    return n_diags;
}

/** Cap matching infs-bench: backends skip outsized job passes. */
constexpr std::int64_t kJobVolumeCap = 1 << 18;

/**
 * Execute the workload's primary lowered job on @p backend and print the
 * result. Purely informational (checksums are pinned by the differential
 * tests, not here); returns no diagnostics.
 */
void
runBackendPass(const Workload &w, ExecBackendKind backend)
{
    SystemConfig cfg = testSystemConfig();
    cfg.backend = backend;
    auto job = planPrimaryJob(w, cfg, nullptr, kJobVolumeCap);
    if (!job) {
        std::printf("  backend %s: no lowerable primary job\n",
                    backendName(backend));
        return;
    }
    BackendResult r = makeBackend(backend, cfg)->runJob(*job);
    std::printf("  backend %s: checksum 0x%016llx%s", backendName(backend),
                static_cast<unsigned long long>(r.checksum),
                r.bitAccurate ? " (bit-accurate)" : "");
    if (r.hasTiming)
        std::printf("  cycles %llu",
                    static_cast<unsigned long long>(r.simCycles));
    std::printf("\n");
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--list] [--level=graphs|full] "
        "[--backend=fabric|functional|timing]\n"
        "       [--no-cmdopt] [--verbose] [--all | workload...]\n"
        "Verify seed workloads with the static-analysis suite "
        "(DESIGN.md §9).\n"
        "At level full each lowered stream is verified twice: raw, and "
        "again after\n"
        "  the command optimizer (DESIGN.md §13); --no-cmdopt skips the "
        "second pass.\n"
        "--backend additionally executes each workload's primary lowered "
        "job on\n"
        "  the named execution backend and prints its checksum/cycles.\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    VerifyLevel level = VerifyLevel::Full;
    bool verbose = false;
    bool all = false;
    bool check_cmdopt = true;
    bool run_backend = false;
    ExecBackendKind backend = ExecBackendKind::Fabric;
    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list") {
            for (const BenchScenario &sc : benchRegistry())
                std::printf("%s\n", sc.name);
            return 0;
        } else if (arg == "--level=graphs") {
            level = VerifyLevel::Graphs;
        } else if (arg == "--level=full") {
            level = VerifyLevel::Full;
        } else if (arg.rfind("--backend=", 0) == 0) {
            const std::string name = arg.substr(10);
            if (!parseBackendName(name, backend)) {
                std::fprintf(stderr, "unknown backend '%s'\n",
                             name.c_str());
                return usage(argv[0]);
            }
            run_backend = true;
        } else if (arg == "--no-cmdopt") {
            check_cmdopt = false;
        } else if (arg == "--verbose" || arg == "-v") {
            verbose = true;
        } else if (arg == "--all") {
            all = true;
        } else if (arg.rfind("-", 0) == 0) {
            return usage(argv[0]);
        } else {
            names.push_back(arg);
        }
    }
    if (!all && names.empty())
        return usage(argv[0]);

    // Fail loudly BEFORE verifying anything: a typo'd name must not
    // silently verify a subset.
    for (const std::string &name : names) {
        if (findScenario(name) == nullptr) {
            std::fprintf(stderr,
                         "unknown workload '%s'; --list shows the "
                         "registry\n",
                         name.c_str());
            return usage(argv[0]);
        }
    }

    std::size_t total = 0;
    std::size_t run = 0;
    for (const BenchScenario &sc : benchRegistry()) {
        const bool wanted =
            all || std::find(names.begin(), names.end(), sc.name) !=
                       names.end();
        if (!wanted)
            continue;
        ++run;
        std::printf("%s:\n", sc.name);
        Workload w = sc.quick();
        std::size_t n = verifyWorkload(w, level, verbose, check_cmdopt);
        if (run_backend)
            runBackendPass(w, backend);
        std::printf("  %zu diagnostic%s\n", n, n == 1 ? "" : "s");
        total += n;
    }
    std::printf("%s: %zu diagnostic%s across %zu workload%s\n",
                verifyLevelName(level), total, total == 1 ? "" : "s", run,
                run == 1 ? "" : "s");
    return total == 0 ? 0 : 1;
}
