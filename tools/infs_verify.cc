/**
 * @file
 * infs-verify: run the static-analysis suite (DESIGN.md §9) over the seed
 * workloads from the command line. Level `graphs` verifies every phase's
 * tDFG as built and again after e-graph optimization; level `full`
 * additionally lowers each tDFG exactly as the executor would and runs
 * the command hazard analyzer over the result.
 *
 * Exit status: 0 all requested subjects verify clean, 1 diagnostics were
 * reported, 2 usage error.
 */

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "analysis/verify_cmds.hh"
#include "analysis/verify_tdfg.hh"
#include "core/executor.hh"
#include "egraph/egraph.hh"
#include "jit/jit.hh"
#include "mem/address_map.hh"
#include "workloads/pointnet.hh"
#include "workloads/workloads.hh"

namespace {

using namespace infs;

struct Entry {
    const char *name;
    std::function<Workload()> make;
};

/** The seed workloads at their tier-1 test sizes. */
const std::vector<Entry> &
registry()
{
    static const std::vector<Entry> entries = {
        {"vec_add", [] { return makeVecAdd(512); }},
        {"array_sum", [] { return makeArraySum(1000); }},
        {"stencil1d", [] { return makeStencil1d(256, 4); }},
        {"stencil2d", [] { return makeStencil2d(32, 24, 3); }},
        {"stencil3d", [] { return makeStencil3d(16, 12, 8, 2); }},
        {"dwt2d", [] { return makeDwt2d(32, 32); }},
        {"gauss_elim", [] { return makeGaussElim(24); }},
        {"conv2d", [] { return makeConv2d(24, 20); }},
        {"conv3d", [] { return makeConv3d(10, 8, 4, 3); }},
        {"mm_outer", [] { return makeMm(12, 16, 8, true); }},
        {"mm_inner", [] { return makeMm(12, 16, 8, false); }},
        {"kmeans_outer", [] { return makeKmeans(64, 8, 4, true); }},
        {"kmeans_inner", [] { return makeKmeans(64, 8, 4, false); }},
        {"gather_mlp_outer", [] { return makeGatherMlp(24, 8, 6, 40, true); }},
        {"gather_mlp_inner",
         [] { return makeGatherMlp(24, 8, 6, 40, false); }},
        {"pointnet_ssg", [] { return makePointNetSSG(128); }},
        {"pointnet_msg", [] { return makePointNetMSG(64); }},
    };
    return entries;
}

/**
 * Verify one workload: every tDFG phase, its optimized form, and (at
 * Full) the lowered command stream under the layout the executor would
 * choose. Returns the number of diagnostics reported.
 */
std::size_t
verifyWorkload(const Workload &w, VerifyLevel level, bool verbose)
{
    SystemConfig cfg = testSystemConfig();
    cfg.verifyLevel = level;
    std::size_t n_diags = 0;
    auto report = [&](const VerifyReport &rep, const std::string &subject) {
        if (rep.clean()) {
            if (verbose)
                std::printf("  %s: clean\n", subject.c_str());
            return;
        }
        n_diags += rep.size();
        std::printf("  %s\n", rep.str().c_str());
    };

    // Replicate the executor's layout choice (§4.1): hints from every
    // tensor phase, one primary layout for the region.
    LayoutHints hints;
    bool have_tdfg = false;
    for (const Phase &p : w.phases) {
        if (!p.buildTdfg)
            continue;
        LayoutHints h = LayoutHints::fromGraph(p.buildTdfg(0));
        hints.shiftDims.insert(h.shiftDims.begin(), h.shiftDims.end());
        hints.broadcastDims.insert(h.broadcastDims.begin(),
                                   h.broadcastDims.end());
        if (h.reduceDim)
            hints.reduceDim = h.reduceDim;
        have_tdfg = true;
    }
    if (!have_tdfg) {
        if (verbose)
            std::printf("  no tensor phases; nothing to verify\n");
        return 0;
    }
    TilingPolicy policy(cfg.l3);
    TileDecision tile = policy.choose(w.primaryShape, w.elemBytes, hints);
    TiledLayout layout;
    bool have_layout = false;
    if (tile.valid) {
        if (auto made = TiledLayout::make(w.primaryShape, tile.tile)) {
            layout = std::move(*made);
            have_layout = true;
        }
    }

    AddressMap map(cfg.l3, cfg.noc.memCtrls);
    JitCompiler jit(cfg);
    for (const Phase &p : w.phases) {
        if (!p.buildTdfg)
            continue;
        TdfgGraph g0 = p.buildTdfg(0);
        report(verifyTdfg(g0), "tdfg '" + g0.name() + "'");

        // After e-graph optimization the extracted graph must still
        // verify (tryOptimize re-checks internally; surface its report).
        TdfgOptimizer opt;
        Expected<ExtractionResult> opt_res = opt.tryOptimize(g0);
        if (!opt_res) {
            ++n_diags;
            std::printf("  tdfg '%s' optimized: %s\n", g0.name().c_str(),
                        opt_res.error().str().c_str());
        } else {
            report(verifyTdfg(opt_res->graph),
                   "tdfg '" + opt_res->graph.name() + "'");
        }

        if (level != VerifyLevel::Full)
            continue;

        // Phase-local layout exactly as the executor resolves it.
        const TiledLayout *use_layout = have_layout ? &layout : nullptr;
        TiledLayout phase_layout;
        if (!p.latticeShape.empty() || g0.dims() != layout.dims()) {
            std::vector<Coord> shape =
                p.latticeShape.empty() ? w.primaryShape : p.latticeShape;
            TileDecision td;
            if (shape.size() == g0.dims())
                td = policy.choose(shape, w.elemBytes,
                                   LayoutHints::fromGraph(g0));
            use_layout = nullptr;
            if (td.valid) {
                if (auto made = TiledLayout::make(shape, td.tile)) {
                    phase_layout = std::move(*made);
                    use_layout = &phase_layout;
                }
            }
        }
        if (use_layout == nullptr) {
            if (verbose)
                std::printf("  phase '%s': no in-memory layout; the "
                            "executor would not lower it\n",
                            p.name.c_str());
            continue;
        }
        auto prog_or = jit.tryLower(g0, *use_layout, map);
        if (!prog_or) {
            // A lowering refusal degrades at runtime; it is not a
            // hazard, so report it only for visibility.
            if (verbose)
                std::printf("  phase '%s': not lowerable (%s)\n",
                            p.name.c_str(),
                            prog_or.error().str().c_str());
            continue;
        }
        report(verifyCommands(**prog_or, *use_layout, map, cfg),
               "phase '" + p.name + "' commands");
    }
    return n_diags;
}

int
usage(const char *argv0)
{
    std::printf(
        "usage: %s [--list] [--level=graphs|full] [--verbose] "
        "[--all | workload...]\n"
        "Verify seed workloads with the static-analysis suite "
        "(DESIGN.md §9).\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    VerifyLevel level = VerifyLevel::Full;
    bool verbose = false;
    bool all = false;
    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list") {
            for (const Entry &e : registry())
                std::printf("%s\n", e.name);
            return 0;
        } else if (arg == "--level=graphs") {
            level = VerifyLevel::Graphs;
        } else if (arg == "--level=full") {
            level = VerifyLevel::Full;
        } else if (arg == "--verbose" || arg == "-v") {
            verbose = true;
        } else if (arg == "--all") {
            all = true;
        } else if (arg.rfind("-", 0) == 0) {
            return usage(argv[0]);
        } else {
            names.push_back(arg);
        }
    }
    if (!all && names.empty())
        return usage(argv[0]);

    std::size_t total = 0;
    std::size_t run = 0;
    for (const Entry &e : registry()) {
        const bool wanted =
            all || std::find(names.begin(), names.end(), e.name) !=
                       names.end();
        if (!wanted)
            continue;
        ++run;
        std::printf("%s:\n", e.name);
        std::size_t n = verifyWorkload(e.make(), level, verbose);
        std::printf("  %zu diagnostic%s\n", n, n == 1 ? "" : "s");
        total += n;
    }
    if (run != (all ? registry().size() : names.size())) {
        std::printf("unknown workload name; --list shows the registry\n");
        return 2;
    }
    std::printf("%s: %zu diagnostic%s across %zu workload%s\n",
                verifyLevelName(level), total, total == 1 ? "" : "s", run,
                run == 1 ? "" : "s");
    return total == 0 ? 0 : 1;
}
