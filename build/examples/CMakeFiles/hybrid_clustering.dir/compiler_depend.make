# Empty compiler generated dependencies file for hybrid_clustering.
# This may be replaced when dependencies are built.
