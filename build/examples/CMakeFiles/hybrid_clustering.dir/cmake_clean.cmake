file(REMOVE_RECURSE
  "CMakeFiles/hybrid_clustering.dir/hybrid_clustering.cpp.o"
  "CMakeFiles/hybrid_clustering.dir/hybrid_clustering.cpp.o.d"
  "hybrid_clustering"
  "hybrid_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
