# Empty compiler generated dependencies file for pointcloud_inference.
# This may be replaced when dependencies are built.
