file(REMOVE_RECURSE
  "CMakeFiles/pointcloud_inference.dir/pointcloud_inference.cpp.o"
  "CMakeFiles/pointcloud_inference.dir/pointcloud_inference.cpp.o.d"
  "pointcloud_inference"
  "pointcloud_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pointcloud_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
