# Empty dependencies file for bench_fig12_noc_traffic.
# This may be replaced when dependencies are built.
