file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_dataflow.dir/bench_fig15_dataflow.cc.o"
  "CMakeFiles/bench_fig15_dataflow.dir/bench_fig15_dataflow.cc.o.d"
  "bench_fig15_dataflow"
  "bench_fig15_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
