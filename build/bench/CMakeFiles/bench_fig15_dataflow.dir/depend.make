# Empty dependencies file for bench_fig15_dataflow.
# This may be replaced when dependencies are built.
