file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_paradigms.dir/bench_fig2_paradigms.cc.o"
  "CMakeFiles/bench_fig2_paradigms.dir/bench_fig2_paradigms.cc.o.d"
  "bench_fig2_paradigms"
  "bench_fig2_paradigms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_paradigms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
