file(REMOVE_RECURSE
  "CMakeFiles/bench_area_model.dir/bench_area_model.cc.o"
  "CMakeFiles/bench_area_model.dir/bench_area_model.cc.o.d"
  "bench_area_model"
  "bench_area_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_area_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
