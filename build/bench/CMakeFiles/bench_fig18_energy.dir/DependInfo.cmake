
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig18_energy.cc" "bench/CMakeFiles/bench_fig18_energy.dir/bench_fig18_energy.cc.o" "gcc" "bench/CMakeFiles/bench_fig18_energy.dir/bench_fig18_energy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/infs_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/infs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/egraph/CMakeFiles/infs_egraph.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/infs_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/infs_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/infs_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/jit/CMakeFiles/infs_jit.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/infs_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/tdfg/CMakeFiles/infs_tdfg.dir/DependInfo.cmake"
  "/root/repo/build/src/bitserial/CMakeFiles/infs_bitserial.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/infs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
