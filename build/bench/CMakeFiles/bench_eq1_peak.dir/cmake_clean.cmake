file(REMOVE_RECURSE
  "CMakeFiles/bench_eq1_peak.dir/bench_eq1_peak.cc.o"
  "CMakeFiles/bench_eq1_peak.dir/bench_eq1_peak.cc.o.d"
  "bench_eq1_peak"
  "bench_eq1_peak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq1_peak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
