file(REMOVE_RECURSE
  "CMakeFiles/bench_jit_overheads.dir/bench_jit_overheads.cc.o"
  "CMakeFiles/bench_jit_overheads.dir/bench_jit_overheads.cc.o.d"
  "bench_jit_overheads"
  "bench_jit_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_jit_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
