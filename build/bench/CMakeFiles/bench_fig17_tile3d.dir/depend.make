# Empty dependencies file for bench_fig17_tile3d.
# This may be replaced when dependencies are built.
