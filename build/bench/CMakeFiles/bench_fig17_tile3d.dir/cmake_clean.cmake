file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_tile3d.dir/bench_fig17_tile3d.cc.o"
  "CMakeFiles/bench_fig17_tile3d.dir/bench_fig17_tile3d.cc.o.d"
  "bench_fig17_tile3d"
  "bench_fig17_tile3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_tile3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
