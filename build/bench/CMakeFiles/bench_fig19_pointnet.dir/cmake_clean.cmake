file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_pointnet.dir/bench_fig19_pointnet.cc.o"
  "CMakeFiles/bench_fig19_pointnet.dir/bench_fig19_pointnet.cc.o.d"
  "bench_fig19_pointnet"
  "bench_fig19_pointnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_pointnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
