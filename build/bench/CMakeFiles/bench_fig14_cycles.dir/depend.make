# Empty dependencies file for bench_fig14_cycles.
# This may be replaced when dependencies are built.
