# Empty dependencies file for bench_fig13_infs_traffic.
# This may be replaced when dependencies are built.
