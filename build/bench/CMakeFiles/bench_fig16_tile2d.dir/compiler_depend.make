# Empty compiler generated dependencies file for bench_fig16_tile2d.
# This may be replaced when dependencies are built.
