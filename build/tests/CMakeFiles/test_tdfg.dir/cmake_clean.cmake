file(REMOVE_RECURSE
  "CMakeFiles/test_tdfg.dir/tdfg/test_graph.cc.o"
  "CMakeFiles/test_tdfg.dir/tdfg/test_graph.cc.o.d"
  "CMakeFiles/test_tdfg.dir/tdfg/test_hyperrect.cc.o"
  "CMakeFiles/test_tdfg.dir/tdfg/test_hyperrect.cc.o.d"
  "CMakeFiles/test_tdfg.dir/tdfg/test_interp.cc.o"
  "CMakeFiles/test_tdfg.dir/tdfg/test_interp.cc.o.d"
  "test_tdfg"
  "test_tdfg.pdb"
  "test_tdfg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tdfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
