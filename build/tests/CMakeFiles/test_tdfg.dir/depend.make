# Empty dependencies file for test_tdfg.
# This may be replaced when dependencies are built.
