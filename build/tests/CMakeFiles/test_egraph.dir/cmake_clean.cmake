file(REMOVE_RECURSE
  "CMakeFiles/test_egraph.dir/egraph/test_egraph.cc.o"
  "CMakeFiles/test_egraph.dir/egraph/test_egraph.cc.o.d"
  "CMakeFiles/test_egraph.dir/egraph/test_optimizer.cc.o"
  "CMakeFiles/test_egraph.dir/egraph/test_optimizer.cc.o.d"
  "test_egraph"
  "test_egraph.pdb"
  "test_egraph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_egraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
