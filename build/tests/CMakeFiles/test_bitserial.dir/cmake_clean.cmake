file(REMOVE_RECURSE
  "CMakeFiles/test_bitserial.dir/bitserial/test_bit_matrix.cc.o"
  "CMakeFiles/test_bitserial.dir/bitserial/test_bit_matrix.cc.o.d"
  "CMakeFiles/test_bitserial.dir/bitserial/test_compute_sram.cc.o"
  "CMakeFiles/test_bitserial.dir/bitserial/test_compute_sram.cc.o.d"
  "CMakeFiles/test_bitserial.dir/bitserial/test_latency.cc.o"
  "CMakeFiles/test_bitserial.dir/bitserial/test_latency.cc.o.d"
  "CMakeFiles/test_bitserial.dir/bitserial/test_transpose.cc.o"
  "CMakeFiles/test_bitserial.dir/bitserial/test_transpose.cc.o.d"
  "test_bitserial"
  "test_bitserial.pdb"
  "test_bitserial[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitserial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
