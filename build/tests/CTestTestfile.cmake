# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_bitserial[1]_include.cmake")
include("/root/repo/build/tests/test_noc[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_tdfg[1]_include.cmake")
include("/root/repo/build/tests/test_egraph[1]_include.cmake")
include("/root/repo/build/tests/test_jit[1]_include.cmake")
include("/root/repo/build/tests/test_stream[1]_include.cmake")
include("/root/repo/build/tests/test_uarch[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_executor[1]_include.cmake")
