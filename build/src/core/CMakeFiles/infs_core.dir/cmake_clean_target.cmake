file(REMOVE_RECURSE
  "libinfs_core.a"
)
