# Empty compiler generated dependencies file for infs_core.
# This may be replaced when dependencies are built.
