file(REMOVE_RECURSE
  "CMakeFiles/infs_core.dir/executor.cc.o"
  "CMakeFiles/infs_core.dir/executor.cc.o.d"
  "libinfs_core.a"
  "libinfs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
