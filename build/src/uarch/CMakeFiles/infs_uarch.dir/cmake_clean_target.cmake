file(REMOVE_RECURSE
  "libinfs_uarch.a"
)
