# Empty compiler generated dependencies file for infs_uarch.
# This may be replaced when dependencies are built.
