file(REMOVE_RECURSE
  "CMakeFiles/infs_uarch.dir/bit_exec.cc.o"
  "CMakeFiles/infs_uarch.dir/bit_exec.cc.o.d"
  "CMakeFiles/infs_uarch.dir/system.cc.o"
  "CMakeFiles/infs_uarch.dir/system.cc.o.d"
  "CMakeFiles/infs_uarch.dir/tensor_controller.cc.o"
  "CMakeFiles/infs_uarch.dir/tensor_controller.cc.o.d"
  "libinfs_uarch.a"
  "libinfs_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infs_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
