file(REMOVE_RECURSE
  "libinfs_egraph.a"
)
