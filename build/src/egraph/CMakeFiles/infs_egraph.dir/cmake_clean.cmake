file(REMOVE_RECURSE
  "CMakeFiles/infs_egraph.dir/egraph.cc.o"
  "CMakeFiles/infs_egraph.dir/egraph.cc.o.d"
  "CMakeFiles/infs_egraph.dir/optimizer.cc.o"
  "CMakeFiles/infs_egraph.dir/optimizer.cc.o.d"
  "libinfs_egraph.a"
  "libinfs_egraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infs_egraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
