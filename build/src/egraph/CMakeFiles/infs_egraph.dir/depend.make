# Empty dependencies file for infs_egraph.
# This may be replaced when dependencies are built.
